// ddbg_target: a debuggable TCP-runtime workload with the control-socket
// session server attached — the process `ddbg` connects to.
//
//   ddbg_target --workload ring --n 6 --port-file /tmp/port
//               --run-for 60 --stop-file /tmp/stop --metrics-out m.json
//               --record /tmp/rec --chaos "drop=0.02,delay=0.05"
//
// Prints "DDBG_CONTROL_PORT=<port>" on stdout once the listener is live
// (and publishes port + PID to --port-file atomically — see
// debugger/port_file.hpp for the stale-entry handling).  Runs until
// --run-for elapses or --stop-file appears, then tears down and writes the
// final ddbg.metrics.v1 snapshot (wrapped in the bench envelope
// tools/validate_metrics.py checks) to --metrics-out.
//
// --record DIR attaches a ReplayRecorder to the whole stack and writes
// DIR/replay.log at shutdown; a `replay load DIR/replay.log` + `replay
// run` in any attached ddbg session (or tools/replay_run) then re-executes
// the run deterministically in the simulator.  --chaos SPEC runs the
// workload under a fault plan (net/fault_plan.hpp spec syntax) — with
// --record, the fault draws are logged as annotations and the replay is
// the fault-free equivalent run.
//
// Workloads:
//   ring       token ring (default) — lively, deadlock-free
//   gossip     unbounded gossip ring
//   resources  greedy resource ring — deadlocks almost immediately, for
//              exercising the `deadlock` verdict end to end
#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "debugger/harness.hpp"
#include "debugger/port_file.hpp"
#include "debugger/session_server.hpp"
#include "replay/recorder.hpp"
#include "replay/replay_session.hpp"
#include "workload/behaviors.hpp"
#include "workload/resources.hpp"

using namespace ddbg;

namespace {

struct Options {
  std::string workload = "ring";
  std::uint32_t n = 6;
  std::uint32_t fanout = 0;  // 0 = flat debugger
  int run_for_seconds = 60;
  std::string port_file;
  std::string stop_file;
  std::string metrics_out;
  std::string record_dir;
  std::string chaos;
  std::uint64_t seed = 1;
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--workload ring|gossip|resources] [--n N] [--fanout K]\n"
      "          [--run-for SECONDS] [--port-file PATH] [--stop-file PATH]\n"
      "          [--metrics-out PATH] [--record DIR] [--chaos SPEC]\n"
      "          [--seed S]\n",
      argv0);
  return 2;
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--workload") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.workload = v;
    } else if (arg == "--n") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.n = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--fanout") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.fanout = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--run-for") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.run_for_seconds = std::atoi(v);
    } else if (arg == "--port-file") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.port_file = v;
    } else if (arg == "--stop-file") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.stop_file = v;
    } else if (arg == "--metrics-out") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.metrics_out = v;
    } else if (arg == "--record") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.record_dir = v;
    } else if (arg == "--chaos") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.chaos = v;
    } else if (arg == "--seed") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.seed = static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
    } else {
      return usage(argv[0]);
    }
  }
  if (opt.n < 2) {
    std::fprintf(stderr, "ddbg_target: --n must be >= 2\n");
    return 2;
  }

  // One factory for record and replay (replay/replay_session.hpp): the
  // processes a later `replay run` builds are these exact behaviors.  The
  // resources workload's acquire_delay is tuned to close the circular wait
  // past thread-startup skew even on the real network.
  auto built = make_named_workload(opt.workload, opt.n);
  if (!built.ok()) {
    std::fprintf(stderr, "ddbg_target: %s\n",
                 built.error().message().c_str());
    return 2;
  }
  Topology topology = std::move(built.value().topology);
  std::vector<ProcessPtr> processes = std::move(built.value().processes);

  HarnessConfig hcfg;
  hcfg.seed = opt.seed;
  hcfg.debugger_fanout = opt.fanout;
  if (!opt.chaos.empty()) {
    auto plan = FaultPlan::parse(opt.chaos, opt.seed);
    if (!plan.ok()) {
      std::fprintf(stderr, "ddbg_target: bad --chaos spec: %s\n",
                   plan.error().message().c_str());
      return 2;
    }
    hcfg.faults = std::make_shared<FaultPlan>(std::move(plan).value());
  }
  std::shared_ptr<ReplayRecorder> recorder;
  if (!opt.record_dir.empty()) {
    ReplayLogHeader header;
    header.seed = opt.seed;
    header.substrate = "tcp";
    header.workload = opt.workload;
    header.num_user_processes = opt.n;
    header.debugger_fanout = opt.fanout;
    header.num_channels = static_cast<std::uint32_t>(
        (opt.fanout == 0 ? topology.with_debugger()
                         : topology.with_debugger_tree(opt.fanout))
            .num_channels());
    header.fault_spec = opt.chaos;
    recorder = std::make_shared<ReplayRecorder>(header);
    hcfg.replay = recorder;
  }
  TcpDebugHarness harness(topology, std::move(processes), std::move(hcfg));
  if (recorder != nullptr) recorder->set_metrics(&harness.tcp().metrics());

  TcpHost host(harness.tcp());
  SessionServerConfig scfg;
  scfg.num_user_processes = opt.n;
  SessionServer server(host, harness.debugger(), harness.debugger_id(),
                       &harness.tcp().metrics(), scfg);
  server.set_metrics_json_source([&harness] {
    return harness.tcp().metrics().snapshot(harness.tcp().now()).to_json();
  });
  // The live server answers `replay ...` commands itself: sessions can load
  // the log of a *previous* recorded run (or, after shutdown, this one) and
  // time-travel through it in a private simulation.
  ReplayCommandHandler replay_handler;
  server.set_replay_handler(replay_handler.bound());
  harness.tcp().set_control_acceptor(server.acceptor());

  if (!harness.start()) {
    std::fprintf(stderr, "ddbg_target: runtime failed to start\n");
    return 1;
  }
  const std::uint16_t port = harness.tcp().control_port();
  std::printf("DDBG_CONTROL_PORT=%u\n", port);
  std::fflush(stdout);
  if (!opt.port_file.empty()) {
    // Atomic publish (tmp + rename) with our PID so a client never dials a
    // torn entry or a port left behind by a dead target.
    auto status = write_port_file(opt.port_file, port);
    if (!status.ok()) {
      std::fprintf(stderr, "ddbg_target: %s\n",
                   status.error().message().c_str());
    }
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(opt.run_for_seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (!opt.stop_file.empty() && file_exists(opt.stop_file)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  // Order matters: the server must release its sessions (and any held
  // halt) while the runtime can still run the resume commands.
  server.stop();
  if (recorder != nullptr) {
    const std::string log_path =
        opt.record_dir + "/" + kReplayLogFileName;
    auto saved = recorder->save(log_path);
    if (saved.ok()) {
      std::printf("ddbg_target: wrote %s (%zu records)\n", log_path.c_str(),
                  recorder->records());
    } else {
      std::fprintf(stderr, "ddbg_target: %s\n",
                   saved.error().message().c_str());
    }
  }
  const std::string metrics_json =
      harness.tcp().metrics().snapshot(harness.tcp().now()).to_json();
  harness.shutdown();

  if (!opt.metrics_out.empty()) {
    std::ofstream out(opt.metrics_out);
    out << "{\"schema\":\"ddbg.bench.metrics.v1\",\"bench\":\"ddbg_target\","
        << "\"runs\":[{\"label\":\"" << opt.workload << "_n"
        << opt.n << "\",\"metrics\":" << metrics_json << "}]}\n";
  }
  std::printf("ddbg_target: served %llu sessions\n",
              static_cast<unsigned long long>(server.sessions_served()));
  return 0;
}
