// ddbg_target: a debuggable TCP-runtime workload with the control-socket
// session server attached — the process `ddbg` connects to.
//
//   ddbg_target --workload ring --n 6 --port-file /tmp/port
//               --run-for 60 --stop-file /tmp/stop --metrics-out m.json
//
// Prints "DDBG_CONTROL_PORT=<port>" on stdout once the listener is live
// (and writes the bare port number to --port-file, atomically enough for a
// shell `until [ -s file ]` loop).  Runs until --run-for elapses or
// --stop-file appears, then tears down and writes the final
// ddbg.metrics.v1 snapshot (wrapped in the bench envelope
// tools/validate_metrics.py checks) to --metrics-out.
//
// Workloads:
//   ring       token ring (default) — lively, deadlock-free
//   gossip     unbounded gossip ring
//   resources  greedy resource ring — deadlocks almost immediately, for
//              exercising the `deadlock` verdict end to end
#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "debugger/harness.hpp"
#include "debugger/session_server.hpp"
#include "workload/behaviors.hpp"
#include "workload/resources.hpp"

using namespace ddbg;

namespace {

struct Options {
  std::string workload = "ring";
  std::uint32_t n = 6;
  std::uint32_t fanout = 0;  // 0 = flat debugger
  int run_for_seconds = 60;
  std::string port_file;
  std::string stop_file;
  std::string metrics_out;
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--workload ring|gossip|resources] [--n N] [--fanout K]\n"
      "          [--run-for SECONDS] [--port-file PATH] [--stop-file PATH]\n"
      "          [--metrics-out PATH]\n",
      argv0);
  return 2;
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--workload") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.workload = v;
    } else if (arg == "--n") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.n = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--fanout") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.fanout = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--run-for") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.run_for_seconds = std::atoi(v);
    } else if (arg == "--port-file") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.port_file = v;
    } else if (arg == "--stop-file") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.stop_file = v;
    } else if (arg == "--metrics-out") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.metrics_out = v;
    } else {
      return usage(argv[0]);
    }
  }
  if (opt.n < 2) {
    std::fprintf(stderr, "ddbg_target: --n must be >= 2\n");
    return 2;
  }

  Topology topology = Topology::ring(opt.n);
  std::vector<ProcessPtr> processes;
  if (opt.workload == "ring") {
    TokenRingConfig config;
    config.rounds = 1'000'000;  // effectively: until shutdown
    config.hop_delay = Duration::millis(1);
    processes = make_token_ring(opt.n, config);
  } else if (opt.workload == "gossip") {
    GossipConfig config;
    config.send_interval = Duration::millis(1);
    processes = make_gossip(opt.n, config);
  } else if (opt.workload == "resources") {
    topology = resource_ring_topology(opt.n);
    ResourceRingConfig config;
    // Hold own resource well past thread-startup skew before requesting
    // the neighbor's, so the greedy ring closes its circular wait on the
    // first acquisition cycle even on the real network.
    config.acquire_delay = Duration::millis(50);
    processes = make_resource_ring(opt.n, config);
  } else {
    std::fprintf(stderr, "ddbg_target: unknown workload '%s'\n",
                 opt.workload.c_str());
    return 2;
  }

  HarnessConfig hcfg;
  hcfg.debugger_fanout = opt.fanout;
  TcpDebugHarness harness(topology, std::move(processes), std::move(hcfg));

  TcpHost host(harness.tcp());
  SessionServerConfig scfg;
  scfg.num_user_processes = opt.n;
  SessionServer server(host, harness.debugger(), harness.debugger_id(),
                       &harness.tcp().metrics(), scfg);
  server.set_metrics_json_source([&harness] {
    return harness.tcp().metrics().snapshot(harness.tcp().now()).to_json();
  });
  harness.tcp().set_control_acceptor(server.acceptor());

  if (!harness.start()) {
    std::fprintf(stderr, "ddbg_target: runtime failed to start\n");
    return 1;
  }
  const std::uint16_t port = harness.tcp().control_port();
  std::printf("DDBG_CONTROL_PORT=%u\n", port);
  std::fflush(stdout);
  if (!opt.port_file.empty()) {
    std::ofstream out(opt.port_file);
    out << port << "\n";
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(opt.run_for_seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (!opt.stop_file.empty() && file_exists(opt.stop_file)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  // Order matters: the server must release its sessions (and any held
  // halt) while the runtime can still run the resume commands.
  server.stop();
  const std::string metrics_json =
      harness.tcp().metrics().snapshot(harness.tcp().now()).to_json();
  harness.shutdown();

  if (!opt.metrics_out.empty()) {
    std::ofstream out(opt.metrics_out);
    out << "{\"schema\":\"ddbg.bench.metrics.v1\",\"bench\":\"ddbg_target\","
        << "\"runs\":[{\"label\":\"" << opt.workload << "_n"
        << opt.n << "\",\"metrics\":" << metrics_json << "}]}\n";
  }
  std::printf("ddbg_target: served %llu sessions\n",
              static_cast<unsigned long long>(server.sessions_served()));
  return 0;
}
