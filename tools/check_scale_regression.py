#!/usr/bin/env python3
"""Compare bench wall-clock numbers against a committed baseline.

Both inputs are BENCH_<name>.json files ("ddbg.bench.metrics.v1"
envelopes) whose run labels embed the measured wall time, e.g.

    "tree n=256 seq wall_ms=41.03"                      (bench_scale)
    "tier n=256 fanout=16 halt wall_ms=5.62"            (bench_scale)
    "incast senders=8 lanes=4 msgs=64000 wall_ms=35.5 msgs_per_sec=1803726"
                                                        (bench_tcp_soak)

Labels are matched after stripping the volatile wall_ms=/speedup=/
msgs_per_sec= fields; for every label present in both files the current
wall time is compared to the baseline and a regression beyond the
threshold (default 25%) is reported.  Exits non-zero on regressions unless
--warn-only is given; the CI smoke jobs gate with a generous threshold
that absorbs shared-runner noise while still catching order-of-magnitude
slowdowns.

Usage:  tools/check_scale_regression.py baseline.json current.json
            [--threshold 0.25] [--warn-only]
Stdlib only.
"""
import argparse
import json
import re
import sys

WALL_RE = re.compile(r"wall_ms=([0-9.]+)")
VOLATILE_RE = re.compile(r"\s*(?:wall_ms|speedup|msgs_per_sec)=[0-9.]+")


def load_walls(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "ddbg.bench.metrics.v1":
        raise ValueError(f"{path}: not a ddbg.bench.metrics.v1 envelope")
    walls = {}
    for run in doc.get("runs", []):
        label = run.get("label", "")
        match = WALL_RE.search(label)
        if not match:
            continue
        key = VOLATILE_RE.sub("", label).strip()
        walls[key] = float(match.group(1))
    return walls


def main(argv):
    parser = argparse.ArgumentParser(
        description="bench_scale wall-clock regression check")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional slowdown (default 0.25)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit zero")
    args = parser.parse_args(argv[1:])

    base = load_walls(args.baseline)
    cur = load_walls(args.current)
    shared = sorted(set(base) & set(cur))
    if not shared:
        print("check_scale_regression: no common labels between "
              f"{args.baseline} and {args.current}", file=sys.stderr)
        return 0 if args.warn_only else 1

    regressions = 0
    for key in shared:
        ratio = cur[key] / base[key] if base[key] > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + args.threshold:
            regressions += 1
            flag = f"  <-- REGRESSION (>{args.threshold:.0%} slower)"
        print(f"{key}: baseline {base[key]:.2f} ms, "
              f"current {cur[key]:.2f} ms ({ratio:.2f}x){flag}")
    for key in sorted(set(cur) - set(base)):
        print(f"{key}: no baseline (new configuration)")

    if regressions:
        print(f"{regressions} regression(s) beyond "
              f"{args.threshold:.0%} of baseline", file=sys.stderr)
        return 0 if args.warn_only else 1
    print(f"ok: {len(shared)} labels within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
