#!/usr/bin/env python3
"""Compare bench wall-clock numbers against a committed baseline.

Both inputs are BENCH_<name>.json files ("ddbg.bench.metrics.v1"
envelopes) whose run labels embed the measured wall time, e.g.

    "tree n=256 seq wall_ms=41.03"                      (bench_scale)
    "tier n=256 fanout=16 halt wall_ms=5.62"            (bench_scale)
    "incast senders=8 lanes=4 msgs=64000 wall_ms=35.5 msgs_per_sec=1803726"
                                                        (bench_tcp_soak)

Labels are matched after stripping the volatile wall_ms=/speedup=/
msgs_per_sec= fields; for every label present in both files the current
wall time is compared to the baseline and a regression beyond the
threshold (default 25%) is reported.  Exits non-zero on regressions unless
--warn-only is given; the CI smoke jobs gate with a generous threshold
that absorbs shared-runner noise while still catching order-of-magnitude
slowdowns.

A baseline at or near zero (a run too fast for the wall-clock's
resolution, or a placeholder row) cannot anchor a ratio: any measurable
current time would divide into a spurious infinite regression.  Such
labels are skipped with a warning instead of being compared.

Usage:  tools/check_scale_regression.py baseline.json current.json
            [--threshold 0.25] [--warn-only]
        tools/check_scale_regression.py --self-test
Stdlib only.
"""
import argparse
import json
import re
import sys
import tempfile

WALL_RE = re.compile(r"wall_ms=([0-9.]+)")
VOLATILE_RE = re.compile(r"\s*(?:wall_ms|speedup|msgs_per_sec)=[0-9.]+")

# Baselines at or below this are unusable as a ratio denominator: 0.05 ms
# is the scale of timer resolution plus print formatting truncation.
MIN_BASELINE_MS = 0.05


def load_walls(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "ddbg.bench.metrics.v1":
        raise ValueError(f"{path}: not a ddbg.bench.metrics.v1 envelope")
    walls = {}
    for run in doc.get("runs", []):
        label = run.get("label", "")
        match = WALL_RE.search(label)
        if not match:
            continue
        key = VOLATILE_RE.sub("", label).strip()
        walls[key] = float(match.group(1))
    return walls


def compare(base, cur, threshold, out=sys.stdout, err=sys.stderr):
    """Compare label->wall_ms maps; returns (regressions, compared, skipped)."""
    regressions = 0
    compared = 0
    skipped = 0
    for key in sorted(set(base) & set(cur)):
        if base[key] <= MIN_BASELINE_MS:
            skipped += 1
            print(f"{key}: baseline {base[key]:.2f} ms is at/below the "
                  f"{MIN_BASELINE_MS} ms resolution floor -- skipped "
                  "(cannot anchor a ratio)", file=out)
            continue
        compared += 1
        ratio = cur[key] / base[key]
        flag = ""
        if ratio > 1.0 + threshold:
            regressions += 1
            flag = f"  <-- REGRESSION (>{threshold:.0%} slower)"
        print(f"{key}: baseline {base[key]:.2f} ms, "
              f"current {cur[key]:.2f} ms ({ratio:.2f}x){flag}", file=out)
    for key in sorted(set(cur) - set(base)):
        print(f"{key}: no baseline (new configuration)", file=out)
    return regressions, compared, skipped


def self_test():
    """Unit checks for the comparison logic, runnable in CI with no bench
    artifacts: zero and near-zero baselines must be skipped (not divided
    by), real regressions must still be flagged, and the envelope loader
    must strip volatile fields."""
    import io

    sink = io.StringIO()

    # Zero / near-zero baselines: skipped, never a ZeroDivisionError or a
    # spurious infinite regression.
    regressions, compared, skipped = compare(
        {"a": 0.0, "b": 0.04, "c": 10.0}, {"a": 5.0, "b": 5.0, "c": 10.5},
        threshold=0.25, out=sink)
    assert regressions == 0, f"spurious regression: {sink.getvalue()}"
    assert compared == 1 and skipped == 2, (compared, skipped)

    # A real regression on a healthy baseline is still caught.
    regressions, compared, skipped = compare(
        {"c": 10.0}, {"c": 20.0}, threshold=0.25, out=sink)
    assert regressions == 1 and compared == 1 and skipped == 0

    # At the floor exactly: skipped (<=, not <).
    regressions, compared, skipped = compare(
        {"d": MIN_BASELINE_MS}, {"d": 100.0}, threshold=0.25, out=sink)
    assert regressions == 0 and skipped == 1

    # Loader: volatile fields are stripped from the matching key and the
    # wall time is extracted.
    doc = {
        "schema": "ddbg.bench.metrics.v1",
        "bench": "self_test",
        "runs": [
            {"label": "tree n=256 seq wall_ms=41.03", "metrics": {}},
            {"label": "incast n=8 wall_ms=35.5 msgs_per_sec=1803726",
             "metrics": {}},
            {"label": "no wall time here", "metrics": {}},
        ],
    }
    with tempfile.NamedTemporaryFile("w", suffix=".json") as f:
        json.dump(doc, f)
        f.flush()
        walls = load_walls(f.name)
    assert walls == {"tree n=256 seq": 41.03, "incast n=8": 35.5}, walls

    print("self-test ok")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="bench_scale wall-clock regression check")
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("current", nargs="?")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional slowdown (default 0.25)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit zero")
    parser.add_argument("--self-test", action="store_true",
                        help="run built-in unit checks and exit")
    args = parser.parse_args(argv[1:])

    if args.self_test:
        return self_test()
    if args.baseline is None or args.current is None:
        parser.error("baseline and current are required unless --self-test")

    base = load_walls(args.baseline)
    cur = load_walls(args.current)
    if not set(base) & set(cur):
        print("check_scale_regression: no common labels between "
              f"{args.baseline} and {args.current}", file=sys.stderr)
        return 0 if args.warn_only else 1

    regressions, compared, skipped = compare(base, cur, args.threshold)
    if skipped:
        print(f"warning: {skipped} label(s) skipped on a near-zero baseline",
              file=sys.stderr)
    if regressions:
        print(f"{regressions} regression(s) beyond "
              f"{args.threshold:.0%} of baseline", file=sys.stderr)
        return 0 if args.warn_only else 1
    print(f"ok: {compared} labels within {args.threshold:.0%} of baseline"
          + (f" ({skipped} skipped)" if skipped else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
