// ddbg: the interactive multi-session debugger CLI.
//
// Connects to a ddbg_target (or any embedder of SessionServer) over its
// loopback control socket and drives a debugging session with the command
// language of debugger/session_repl.hpp.
//
//   ddbg --port 41233                 # interactive REPL
//   ddbg --port-file /tmp/port        # port published by ddbg_target
//   ddbg --port 41233 --batch s.ddbg --assert "no deadlock"
//
// Batch mode runs the script line by line, echoing each command, and
// stops at the first failure.  Exit codes (stable, asserted by CI):
//   0  every command succeeded and every assertion held
//   2  could not connect to the target
//   3  a command failed or the protocol broke
//   4  an `expect` line or --assert substring did not match
//   5  the target stopped answering within the response deadline
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "debugger/port_file.hpp"
#include "debugger/session_client.hpp"
#include "debugger/session_repl.hpp"

using namespace ddbg;

namespace {

struct Options {
  int port = 0;
  std::string port_file;
  std::string batch;
  std::vector<std::string> asserts;
  int connect_retry_seconds = 10;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--port P | --port-file PATH) [--batch SCRIPT]\n"
               "          [--assert SUBSTRING]... [--connect-retry SECONDS]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.port = std::atoi(v);
    } else if (arg == "--port-file") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.port_file = v;
    } else if (arg == "--batch") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.batch = v;
    } else if (arg == "--assert") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.asserts.emplace_back(v);
    } else if (arg == "--connect-retry") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.connect_retry_seconds = std::atoi(v);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      return usage(argv[0]);
    }
  }

  // Retry connecting: the target may still be binding its listener (CI
  // starts both concurrently), and the port file may not exist yet.
  SessionClient client;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(opt.connect_retry_seconds);
  std::string last_error = "no port given";
  while (true) {
    int port = opt.port;
    if (port == 0 && !opt.port_file.empty()) {
      // read_port_file rejects torn, malformed and stale entries (a file
      // whose recorded server PID is dead) — all of them read as "not
      // ready" and we keep polling until the retry deadline.
      auto entry = read_port_file(opt.port_file);
      if (entry.ok()) {
        port = entry.value().port;
      } else {
        last_error = entry.error().message();
      }
    }
    if (port != 0) {
      auto status = client.connect(static_cast<std::uint16_t>(port));
      if (status.ok()) break;
      last_error = status.error().message();
    } else if (opt.port_file.empty()) {
      return usage(argv[0]);
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr, "ddbg: cannot connect: %s\n", last_error.c_str());
      return kReplExitConnect;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  ReplConfig config;
  std::vector<std::string> transcript;
  config.transcript = &transcript;

  int code;
  if (opt.batch.empty()) {
    config.interactive = true;
    code = run_repl(client, std::cin, std::cout, config);
  } else {
    std::ifstream script(opt.batch);
    if (!script) {
      std::fprintf(stderr, "ddbg: cannot open batch script %s\n",
                   opt.batch.c_str());
      return 2;
    }
    config.interactive = false;
    code = run_repl(client, script, std::cout, config);
  }
  if (code != kReplExitOk) return code;

  for (const std::string& needle : opt.asserts) {
    bool found = false;
    for (const std::string& entry : transcript) {
      if (entry.find(needle) != std::string::npos) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "ddbg: assert FAILED: '%s' not in transcript\n",
                   needle.c_str());
      return kReplExitAssert;
    }
    std::printf("assert ok: '%s'\n", needle.c_str());
  }
  return kReplExitOk;
}
