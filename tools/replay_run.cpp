// replay_run: re-execute a recorded replay log in the simulator.
//
//   replay_run --log rec/replay.log --runs 2
//              --report-out report.txt --metrics-out metrics.json
//              [--cut K]
//
// Loads the log, rebuilds the recorded named workload
// (replay/replay_session.hpp) and replays it --runs times (default 2),
// asserting that every run produces byte-identical reports and metrics —
// the determinism claim CI pins.  The first run's report and metrics are
// written to the requested files; the metrics JSON is wrapped in the bench
// envelope tools/validate_metrics.py checks.
//
// Exit codes (stable, asserted by CI):
//   0  replay complete, all runs byte-identical, every cut matched
//   1  replay diverged (cut mismatch, missing input, divergent hash)
//   2  usage / unreadable log
//   3  runs were not byte-identical (replay nondeterminism)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "replay/replay_driver.hpp"
#include "replay/replay_session.hpp"

using namespace ddbg;

namespace {

struct Options {
  std::string log_path;
  std::string report_out;
  std::string metrics_out;
  std::uint64_t cut = 0;  // 0 = full replay
  int runs = 2;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --log PATH [--runs N] [--cut K]\n"
               "          [--report-out PATH] [--metrics-out PATH]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--log") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.log_path = v;
    } else if (arg == "--report-out") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.report_out = v;
    } else if (arg == "--metrics-out") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.metrics_out = v;
    } else if (arg == "--cut") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.cut = std::strtoull(v, nullptr, 10);
    } else if (arg == "--runs") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.runs = std::atoi(v);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      return usage(argv[0]);
    }
  }
  if (opt.log_path.empty() || opt.runs < 1) return usage(argv[0]);

  auto log = ReplayLog::load(opt.log_path);
  if (!log.ok()) {
    std::fprintf(stderr, "replay_run: %s\n",
                 log.error().message().c_str());
    return 2;
  }
  std::printf("%s\n", log.value().describe().c_str());

  std::vector<ReplayDriver::Report> reports;
  for (int run = 0; run < opt.runs; ++run) {
    auto built = make_named_workload(log.value().header.workload,
                                     log.value().header.num_user_processes);
    if (!built.ok()) {
      std::fprintf(stderr, "replay_run: %s\n",
                   built.error().message().c_str());
      return 2;
    }
    ReplayDriver::Options options;
    options.stop_after_cut = opt.cut;
    ReplayDriver driver(log.value(), built.value().topology,
                        std::move(built.value().processes), options);
    reports.push_back(driver.run());
    std::printf("--- run %d ---\n%s", run + 1,
                reports.back().describe().c_str());
  }

  for (std::size_t i = 1; i < reports.size(); ++i) {
    if (reports[i].describe() != reports[0].describe() ||
        reports[i].metrics_json != reports[0].metrics_json) {
      std::fprintf(stderr,
                   "replay_run: run %zu is not byte-identical to run 1 — "
                   "replay nondeterminism\n",
                   i + 1);
      return 3;
    }
  }

  const ReplayDriver::Report& report = reports.front();
  if (!opt.report_out.empty()) {
    std::ofstream out(opt.report_out, std::ios::trunc);
    out << report.describe();
  }
  if (!opt.metrics_out.empty()) {
    std::ofstream out(opt.metrics_out, std::ios::trunc);
    out << "{\"schema\":\"ddbg.bench.metrics.v1\",\"bench\":\"replay_run\","
        << "\"runs\":[{\"label\":\"replay_"
        << log.value().header.workload << "_n"
        << log.value().header.num_user_processes
        << "\",\"metrics\":" << report.metrics_json << "}]}\n";
  }

  if (!report.ok() || report.cuts_matched != report.cuts ||
      report.divergences != 0) {
    std::fprintf(stderr, "replay_run: replay diverged\n%s",
                 report.describe().c_str());
    return 1;
  }
  std::printf("replay_run: %d run(s) byte-identical, %llu/%llu cuts "
              "matched, 0 divergences\n",
              opt.runs,
              static_cast<unsigned long long>(report.cuts_matched),
              static_cast<unsigned long long>(report.cuts));
  return 0;
}
