#!/usr/bin/env python3
"""Validate BENCH_*.json metrics files against the ddbg schemas.

Checks the "ddbg.bench.metrics.v1" envelope and every embedded
"ddbg.metrics.v1" snapshot: required keys, integer-only counters, traffic
classes, per-channel/per-process shape and cross-checked totals.

Usage:  tools/validate_metrics.py BENCH_e7_overhead.json [more.json ...]
Exits non-zero on the first malformed file.  Stdlib only.
"""
import json
import sys

TRAFFIC_CLASSES = [
    "app", "halt_marker", "snapshot_marker", "predicate_marker", "control",
]
SPAN_NAMES = ["halt_wave", "snapshot_wave", "breakpoint_notify", "arm"]
LATENCY_KEYS = {"count", "total_ns", "min_ns", "max_ns"}
TRANSPORT_KEYS = {
    "pool_hits", "pool_misses", "deliver_batches", "deliver_batch_messages",
    "max_deliver_batch", "write_batches", "write_batch_frames",
    "max_write_batch", "epoll_wakeups", "frames_per_wakeup_max",
    "eagain_deferrals", "mux_channels_per_socket", "faults_injected",
    "retransmits", "dup_suppressed", "reconnects", "resync_replayed",
    "channel_down",
}
FAULT_KINDS = ["drop", "duplicate", "reorder", "delay", "partition", "reset"]
TIER_KEYS = {"tree_fanout", "acks_aggregated", "markers_suppressed"}
SESSION_KEYS = {
    "opened", "closed", "active_peak", "requests", "request_errors",
    "halts_handed_off", "halts_released",
}
REPLAY_LOGGED_KEYS = [
    "deliveries_logged", "timer_sets_logged", "timer_fires_logged",
    "cuts_logged", "annotations_logged",
]
REPLAY_KEYS = set(REPLAY_LOGGED_KEYS) | {
    "records_logged", "log_bytes", "deliveries_replayed", "timers_replayed",
    "cuts_replayed", "divergences",
}
RUNTIMES = {"sim", "threads", "tcp"}


class ValidationError(Exception):
    pass


def expect(cond, message):
    if not cond:
        raise ValidationError(message)


def check_class_counts(obj, where):
    for direction in ("sent", "delivered"):
        counts = obj.get(direction)
        expect(isinstance(counts, dict), f"{where}: missing '{direction}'")
        expect(set(counts) == set(TRAFFIC_CLASSES),
               f"{where}: '{direction}' classes {sorted(counts)} != "
               f"{sorted(TRAFFIC_CLASSES)}")
        for name, value in counts.items():
            expect(isinstance(value, int) and value >= 0,
                   f"{where}: {direction}.{name} not a non-negative int")


def check_latency(obj, where):
    expect(isinstance(obj, dict) and set(obj) == LATENCY_KEYS,
           f"{where}: latency keys {sorted(obj) if isinstance(obj, dict) else obj}")
    for key, value in obj.items():
        expect(isinstance(value, int) and value >= 0,
               f"{where}: {key} not a non-negative int")
    if obj["count"] == 0:
        expect(obj["total_ns"] == 0 and obj["min_ns"] == 0,
               f"{where}: empty stat with non-zero total/min")
    else:
        expect(obj["min_ns"] <= obj["max_ns"], f"{where}: min > max")
        expect(obj["total_ns"] >= obj["max_ns"], f"{where}: total < max")


def check_snapshot(snap, where):
    expect(snap.get("schema") == "ddbg.metrics.v1",
           f"{where}: schema {snap.get('schema')!r}")
    expect(snap.get("runtime") in RUNTIMES,
           f"{where}: runtime {snap.get('runtime')!r}")
    expect(isinstance(snap.get("elapsed_ns"), int),
           f"{where}: elapsed_ns not an int")

    totals = snap.get("totals")
    expect(isinstance(totals, dict), f"{where}: missing totals")
    check_class_counts(totals, f"{where}.totals")
    for key in ("messages_sent", "messages_delivered", "bytes_sent",
                "bytes_delivered"):
        expect(isinstance(totals.get(key), int) and totals[key] >= 0,
               f"{where}.totals: {key} not a non-negative int")
    expect(totals["messages_sent"] ==
           sum(totals["sent"][c] for c in TRAFFIC_CLASSES),
           f"{where}.totals: messages_sent != sum of classes")
    expect(totals["messages_delivered"] ==
           sum(totals["delivered"][c] for c in TRAFFIC_CLASSES),
           f"{where}.totals: messages_delivered != sum of classes")

    transport = snap.get("transport")
    expect(isinstance(transport, dict), f"{where}: missing transport")
    expect(set(transport) == TRANSPORT_KEYS,
           f"{where}: transport keys {sorted(transport)} != "
           f"{sorted(TRANSPORT_KEYS)}")
    for key, value in transport.items():
        if key == "faults_injected":
            continue
        expect(isinstance(value, int) and value >= 0,
               f"{where}.transport: {key} not a non-negative int")
    faults = transport["faults_injected"]
    expect(isinstance(faults, dict) and list(faults) == FAULT_KINDS,
           f"{where}.transport: faults_injected keys "
           f"{sorted(faults) if isinstance(faults, dict) else faults} != "
           f"{FAULT_KINDS}")
    for kind, value in faults.items():
        expect(isinstance(value, int) and value >= 0,
               f"{where}.transport: faults_injected.{kind} "
               f"not a non-negative int")
    # Recovery counters only move when their cause did: a resync implies a
    # reconnect; a reconnect implies a reset fault or an observed channel
    # loss; a suppressed duplicate implies an injected duplicate or a
    # retransmitted/replayed frame that raced its own ack.
    expect(transport["resync_replayed"] == 0 or transport["reconnects"] > 0,
           f"{where}.transport: resync_replayed without reconnects")
    expect(transport["reconnects"] == 0 or
           faults["reset"] + transport["channel_down"] > 0,
           f"{where}.transport: reconnects without reset/channel_down")
    expect(transport["dup_suppressed"] == 0 or
           faults["duplicate"] + transport["retransmits"] +
           transport["resync_replayed"] > 0,
           f"{where}.transport: dup_suppressed without a duplicate source")
    # Every send acquires one pooled buffer; preloaded (restored) channel
    # contents acquire without a send, hence >= rather than ==.
    expect(transport["pool_hits"] + transport["pool_misses"] >=
           totals["messages_sent"],
           f"{where}.transport: pool acquires < messages_sent")
    expect(transport["deliver_batch_messages"] ==
           totals["messages_delivered"],
           f"{where}.transport: batch messages != messages_delivered")
    expect(transport["max_deliver_batch"] <=
           transport["deliver_batch_messages"],
           f"{where}.transport: max_deliver_batch exceeds total")
    expect(transport["write_batch_frames"] >= transport["max_write_batch"],
           f"{where}.transport: max_write_batch exceeds total frames")
    # Epoll reactor counters only move on the TCP substrate, and a parsed
    # frame or a deferred write implies the reactor actually woke up.
    if snap.get("runtime") != "tcp":
        for key in ("epoll_wakeups", "frames_per_wakeup_max",
                    "eagain_deferrals", "mux_channels_per_socket"):
            expect(transport[key] == 0,
                   f"{where}.transport: {key} nonzero off the tcp runtime")
    expect(transport["frames_per_wakeup_max"] == 0 or
           transport["epoll_wakeups"] > 0,
           f"{where}.transport: frames parsed without any epoll wakeup")
    expect(transport["eagain_deferrals"] == 0 or
           transport["epoll_wakeups"] > 0,
           f"{where}.transport: eagain deferrals without any epoll wakeup")
    # A wakeup cannot retire more frames than were ever delivered plus the
    # reliability traffic (acks/duplicates) that rides the same sockets; the
    # cheap sound bound is against total frames written.
    expect(transport["frames_per_wakeup_max"] == 0 or
           transport["write_batch_frames"] > 0 or
           totals["messages_delivered"] > 0,
           f"{where}.transport: frames_per_wakeup_max without any traffic")

    tier = snap.get("tier")
    expect(isinstance(tier, dict) and set(tier) == TIER_KEYS,
           f"{where}: tier keys "
           f"{sorted(tier) if isinstance(tier, dict) else tier} != "
           f"{sorted(TIER_KEYS)}")
    for key, value in tier.items():
        expect(isinstance(value, int) and value >= 0,
               f"{where}.tier: {key} not a non-negative int")
    # Aggregated acks only exist where a debugger tier observed children.
    expect(tier["acks_aggregated"] == 0 or tier["tree_fanout"] > 0,
           f"{where}.tier: acks_aggregated without any tree fanout")
    # A suppressed marker is a wave echo that was not sent: some wave
    # markers must have gone out for an echo to exist at all.
    expect(tier["markers_suppressed"] == 0 or
           totals["sent"]["halt_marker"] +
           totals["sent"]["snapshot_marker"] > 0,
           f"{where}.tier: markers_suppressed without any wave markers")

    session = snap.get("session")
    expect(isinstance(session, dict) and set(session) == SESSION_KEYS,
           f"{where}: session keys "
           f"{sorted(session) if isinstance(session, dict) else session} != "
           f"{sorted(SESSION_KEYS)}")
    for key, value in session.items():
        expect(isinstance(value, int) and value >= 0,
               f"{where}.session: {key} not a non-negative int")
    # A session closes at most once per open, and the concurrency peak can
    # never exceed how many sessions ever existed.
    expect(session["closed"] <= session["opened"],
           f"{where}.session: closed exceeds opened")
    expect(session["active_peak"] <= session["opened"],
           f"{where}.session: active_peak exceeds opened")
    expect(session["request_errors"] <= session["requests"],
           f"{where}.session: request_errors exceeds requests")
    # Disconnect-mid-halt outcomes require sessions that actually closed.
    expect(session["halts_handed_off"] + session["halts_released"] <=
           session["closed"],
           f"{where}.session: halt teardown outcomes exceed closed sessions")
    expect(session["requests"] == 0 or session["opened"] > 0,
           f"{where}.session: requests without any session")

    replay = snap.get("replay")
    expect(isinstance(replay, dict) and set(replay) == REPLAY_KEYS,
           f"{where}: replay keys "
           f"{sorted(replay) if isinstance(replay, dict) else replay} != "
           f"{sorted(REPLAY_KEYS)}")
    for key, value in replay.items():
        expect(isinstance(value, int) and value >= 0,
               f"{where}.replay: {key} not a non-negative int")
    # records_logged is derived, never counted: it must equal the sum of
    # the per-kind logged counters exactly.
    expect(replay["records_logged"] ==
           sum(replay[k] for k in REPLAY_LOGGED_KEYS),
           f"{where}.replay: records_logged != sum of per-kind counters")
    # A recording and a replay never share a registry: the recorded run
    # logs, the replaying simulation replays.
    expect(replay["records_logged"] == 0 or
           replay["deliveries_replayed"] + replay["timers_replayed"] +
           replay["cuts_replayed"] == 0,
           f"{where}.replay: one registry both logged and replayed records")

    processes = snap.get("processes")
    expect(isinstance(processes, list), f"{where}: missing processes")
    for i, proc in enumerate(processes):
        pwhere = f"{where}.processes[{i}]"
        expect(isinstance(proc.get("id"), int), f"{pwhere}: missing id")
        check_class_counts(proc, pwhere)
        for key in ("bytes_sent", "bytes_delivered", "max_queue_depth"):
            expect(isinstance(proc.get(key), int) and proc[key] >= 0,
                   f"{pwhere}: {key} not a non-negative int")

    channels = snap.get("channels")
    expect(isinstance(channels, list), f"{where}: missing channels")
    channel_bytes_sent = 0
    for i, chan in enumerate(channels):
        cwhere = f"{where}.channels[{i}]"
        for key in ("id", "source", "destination"):
            expect(isinstance(chan.get(key), int), f"{cwhere}: missing {key}")
        expect(isinstance(chan.get("control"), bool),
               f"{cwhere}: control not a bool")
        check_class_counts(chan, cwhere)
        for key in ("bytes_sent", "bytes_delivered", "send_blocked_ns",
                    "max_backlog"):
            expect(isinstance(chan.get(key), int) and chan[key] >= 0,
                   f"{cwhere}: {key} not a non-negative int")
        channel_bytes_sent += chan["bytes_sent"]
    expect(channel_bytes_sent == totals["bytes_sent"],
           f"{where}: per-channel bytes_sent does not sum to totals")

    latencies = snap.get("latencies")
    expect(isinstance(latencies, dict) and set(latencies) == set(SPAN_NAMES),
           f"{where}: latencies keys "
           f"{sorted(latencies) if isinstance(latencies, dict) else latencies}")
    for name in SPAN_NAMES:
        check_latency(latencies[name], f"{where}.latencies.{name}")

    # Convergecast bound: each completed wave produces at most one combined
    # report per non-root tier node, and there are fewer tier nodes than
    # processes, so acks_aggregated <= waves * (num_processes - 1).
    waves = (latencies["halt_wave"]["count"] +
             latencies["snapshot_wave"]["count"])
    if waves > 0 and len(processes) > 1:
        expect(tier["acks_aggregated"] <= waves * (len(processes) - 1),
               f"{where}.tier: acks_aggregated {tier['acks_aggregated']} "
               f"exceeds {waves} waves x {len(processes) - 1} nodes")


def check_file(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    expect(doc.get("schema") == "ddbg.bench.metrics.v1",
           f"envelope schema {doc.get('schema')!r}")
    expect(isinstance(doc.get("bench"), str) and doc["bench"],
           "envelope missing bench name")
    runs = doc.get("runs")
    expect(isinstance(runs, list), "envelope missing runs array")
    for i, run in enumerate(runs):
        expect(isinstance(run.get("label"), str) and run["label"],
               f"runs[{i}]: missing label")
        expect(isinstance(run.get("metrics"), dict),
               f"runs[{i}]: missing metrics object")
        check_snapshot(run["metrics"], f"runs[{i}]({run['label']})")
    return len(runs)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            count = check_file(path)
        except (ValidationError, json.JSONDecodeError, OSError) as err:
            print(f"FAIL {path}: {err}", file=sys.stderr)
            return 1
        print(f"ok   {path}: {count} runs")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
