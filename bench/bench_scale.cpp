// Scale sweep: sequential vs windowed-parallel simulation.
//
// Sweeps N in {64, 256, 1024} over {ring, tree, complete} topologies and
// runs the same multi-token workload under the classic sequential event
// loop (workers=1) and the conservative time-windowed parallel engine
// (workers=4).  For every configuration it
//
//   1. times both modes (min of kTimingReps wall-clock repetitions),
//   2. re-runs both with a recording transport observer and checks that
//      the observer stream, event count, final virtual clock, workload
//      checksum — and, where affordable, the full ddbg.metrics.v1 JSON —
//      are byte-identical, aborting the binary on any divergence,
//   3. records both snapshots into BENCH_scale.json with the measured
//      wall-clock and speedup embedded in the run labels.
//
// A second table sweeps the hierarchical debugger tier: halt waves through
// a fanout-16 aggregator tree over up to 100k simulated processes, each
// wave verified complete and cut-consistent (see print_tier_table).
//
// Environment knobs (all optional, for CI smoke jobs):
//   DDBG_SCALE_N          comma list restricting the N sweep (e.g. "256")
//   DDBG_SCALE_TREE_N     comma list restricting the tier sweep
//   DDBG_SCALE_TRACE_DIR  directory to dump per-mode observer traces into,
//                         as <topo>_n<N>_{seq,par}.trace, for external diff
//   DDBG_METRICS_DIR      where BENCH_scale.json goes (bench_util.hpp)
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/consistency.hpp"
#include "bench/bench_util.hpp"
#include "net/transport_hooks.hpp"

namespace ddbg::bench {
namespace {

// Every process injects one token at start; each token is forwarded kHops
// times with kSpin rounds of deterministic integer mixing per delivery
// (standing in for a real handler body).  N concurrent tokens advance in
// lockstep — one window per hop — so the parallel engine has N events to
// distribute per window.
constexpr std::uint32_t kHops = 48;
constexpr std::uint32_t kSpin = 2000;
constexpr int kTimingReps = 3;

class ScaleTokenProcess final : public Process {
 public:
  void on_start(ProcessContext& ctx) override {
    forward(ctx, kHops, ctx.self().value());
  }

  void on_message(ProcessContext& ctx, ChannelId /*in*/,
                  Message message) override {
    ByteReader reader(message.payload);
    const auto hops = reader.u32();
    const auto value = reader.u64();
    if (!hops.ok() || !value.ok()) return;
    std::uint64_t mixed = value.value();
    for (std::uint32_t i = 0; i < kSpin; ++i) {
      mixed ^= mixed >> 33;
      mixed *= 0xff51afd7ed558ccdULL;
      mixed ^= mixed >> 29;
      mixed += 0x9e3779b97f4a7c15ULL;
    }
    checksum_ += mixed;
    ++handled_;
    if (hops.value() > 0) forward(ctx, hops.value() - 1, mixed);
  }

  [[nodiscard]] std::uint64_t checksum() const { return checksum_; }
  [[nodiscard]] std::uint64_t handled() const { return handled_; }

 private:
  void forward(ProcessContext& ctx, std::uint32_t hops, std::uint64_t value) {
    const auto& out = ctx.topology().out_channels(ctx.self());
    ByteWriter writer;
    writer.u32(hops);
    writer.u64(value);
    ctx.send(out[value % out.size()],
             Message::application(std::move(writer).take()));
  }

  std::uint64_t checksum_ = 0;
  std::uint64_t handled_ = 0;
};

std::vector<ProcessPtr> make_scale_tokens(std::uint32_t n) {
  std::vector<ProcessPtr> processes;
  processes.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    processes.push_back(std::make_unique<ScaleTokenProcess>());
  }
  return processes;
}

class RecordingObserver final : public TransportObserver {
 public:
  void on_send(TimePoint when, ChannelId channel,
               const Message& message) override {
    log_ << "S " << when.ns << " " << channel.value() << " "
         << message.payload.size() << "\n";
  }
  void on_deliver(TimePoint when, ChannelId channel,
                  const Message& message) override {
    log_ << "D " << when.ns << " " << channel.value() << " "
         << message.payload.size() << "\n";
  }
  [[nodiscard]] std::string str() const { return log_.str(); }

 private:
  std::ostringstream log_;
};

struct Config {
  const char* topo;
  std::uint32_t n;
  Topology (*make)(std::uint32_t);
};

Topology make_ring(std::uint32_t n) { return Topology::ring(n); }
Topology make_tree(std::uint32_t n) { return Topology::tree(n, 2); }
Topology make_complete(std::uint32_t n) { return Topology::complete(n); }

std::unique_ptr<Simulation> make_sim(const Config& config,
                                     std::uint32_t workers) {
  SimulationConfig sim_config;
  sim_config.seed = 1;
  sim_config.workers = workers;
  sim_config.latency = constant_latency(Duration::millis(1));
  return std::make_unique<Simulation>(config.make(config.n),
                                      make_scale_tokens(config.n),
                                      std::move(sim_config));
}

std::uint64_t checksum_sum(Simulation& sim, std::uint32_t n) {
  std::uint64_t sum = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    sum += dynamic_cast<const ScaleTokenProcess&>(sim.process(ProcessId(i)))
               .checksum();
  }
  return sum;
}

double time_mode(const Config& config, std::uint32_t workers) {
  double best_ms = 0;
  for (int rep = 0; rep < kTimingReps; ++rep) {
    auto sim = make_sim(config, workers);
    const auto start = std::chrono::steady_clock::now();
    sim->run_until_quiescent();
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (rep == 0 || ms < best_ms) best_ms = ms;
    benchmark::DoNotOptimize(checksum_sum(*sim, config.n));
  }
  return best_ms;
}

void write_trace(const Config& config, const char* mode,
                 const std::string& trace) {
  const char* dir = std::getenv("DDBG_SCALE_TRACE_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path = std::string(dir) + "/" + config.topo + "_n" +
                           std::to_string(config.n) + "_" + mode + ".trace";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_scale: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fwrite(trace.data(), 1, trace.size(), f);
  std::fclose(f);
}

void fail(const Config& config, const char* what) {
  std::fprintf(stderr,
               "bench_scale: %s n=%u: parallel run diverged from "
               "sequential (%s)\n",
               config.topo, config.n, what);
  std::exit(1);
}

// Returns {seq_wall_ms, par_wall_ms} and records both metrics snapshots.
std::pair<double, double> run_config(const Config& config) {
  const double seq_ms = time_mode(config, 1);
  const double par_ms = time_mode(config, 4);
  const double speedup = par_ms > 0 ? seq_ms / par_ms : 0;

  // Verification pass: both modes under a recording observer.
  auto seq = make_sim(config, 1);
  RecordingObserver seq_observer;
  seq->set_observer(&seq_observer);
  seq->run_until_quiescent();
  auto par = make_sim(config, 4);
  RecordingObserver par_observer;
  par->set_observer(&par_observer);
  par->run_until_quiescent();

  if (seq_observer.str() != par_observer.str()) fail(config, "observer");
  if (seq->events_processed() != par->events_processed())
    fail(config, "event count");
  if (seq->now().ns != par->now().ns) fail(config, "final clock");
  if (checksum_sum(*seq, config.n) != checksum_sum(*par, config.n))
    fail(config, "workload checksum");
  write_trace(config, "seq", seq_observer.str());
  write_trace(config, "par", par_observer.str());

  // Metrics snapshots materialize channels sparsely (only channels with
  // recorded activity appear), so even complete(1024) — ~1M channel slots,
  // ~50k of them active — compares and records in milliseconds.  Every
  // seq/par configuration therefore gets JSON-verified and a
  // BENCH_scale.json row; the only remaining exclusion in this binary is
  // the tier sweep's N >= 10k rows (see run_tier_config below).
  const std::string seq_json = seq->metrics().snapshot(seq->now()).to_json();
  const std::string par_json = par->metrics().snapshot(par->now()).to_json();
  if (seq_json != par_json) fail(config, "metrics JSON");
  char label[128];
  std::snprintf(label, sizeof label, "%s n=%u seq wall_ms=%.2f",
                config.topo, config.n, seq_ms);
  record_metrics(label, *seq);
  std::snprintf(label, sizeof label,
                "%s n=%u par workers=4 wall_ms=%.2f speedup=%.2f",
                config.topo, config.n, par_ms, speedup);
  record_metrics(label, *par);
  return {seq_ms, par_ms};
}

// ---------------------------------------------------------------------------
// Hierarchical debugger tier: halt-wave sweep
// ---------------------------------------------------------------------------
//
// Users on a binary tree topology run an endless token workload; a
// hierarchical debugger tier (with_debugger_tree) halts the computation
// mid-flight and assembles S_h by convergecast.  Each row is verified:
//
//   * completeness — every user contributes exactly one snapshot;
//   * message conservation — sum(sent_p) == sum(received_p) + messages
//     recorded in channel states.  With FIFO channels and Lemma 2.2 this
//     holds exactly on a consistent cut, and it costs O(n), so it is the
//     cut criterion that still works at N=100k;
//   * vector-clock cut consistency below N=10k.  Clocks are O(n) per
//     process — tens of gigabytes across 100k processes — so large rows
//     run with stamping off and rely on conservation instead.  This and
//     the metrics-JSON skip below are the only exclusions at scale;
//   * tier counters — exactly one aggregated ack per aggregator per wave,
//     suppression strictly positive in tree mode.
//
// Environment: DDBG_SCALE_TREE_N (comma list) overrides the N sweep.
constexpr std::uint32_t kTierFanout = 16;

class TierLoadProcess final : public Process {
 public:
  void on_start(ProcessContext& ctx) override {
    send_token(ctx, ctx.self().value() * 0x9e3779b97f4a7c15ULL + 1);
  }

  void on_message(ProcessContext& ctx, ChannelId /*in*/,
                  Message message) override {
    ByteReader reader(message.payload);
    const auto value = reader.u64();
    if (!value.ok()) return;
    ++received_;
    std::uint64_t mixed = value.value();
    mixed ^= mixed >> 33;
    mixed *= 0xff51afd7ed558ccdULL;
    mixed ^= mixed >> 29;
    send_token(ctx, mixed);
  }

  [[nodiscard]] Bytes snapshot_state() const override {
    ByteWriter writer;
    writer.u64(sent_);
    writer.u64(received_);
    return std::move(writer).take();
  }
  [[nodiscard]] std::string describe_state() const override { return "tier"; }

 private:
  void send_token(ProcessContext& ctx, std::uint64_t value) {
    // The wired topology includes this process's control channel; tokens
    // ride the application channels only.
    if (app_out_.empty()) {
      for (const ChannelId c : ctx.topology().out_channels(ctx.self())) {
        if (!ctx.topology().channel(c).is_control) app_out_.push_back(c);
      }
    }
    ByteWriter writer;
    writer.u64(value);
    ++sent_;
    ctx.send(app_out_[value % app_out_.size()],
             Message::application(std::move(writer).take()));
  }

  std::vector<ChannelId> app_out_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
};

void tier_fail(std::uint32_t n, std::uint32_t fanout, const char* what) {
  std::fprintf(stderr, "bench_scale: tier n=%u fanout=%u: %s\n", n, fanout,
               what);
  std::exit(1);
}

// One halt wave through a debugger tier (fanout == 0: flat debugger
// baseline).  Returns {workload_ms, halt_ms} wall-clock.
std::pair<double, double> run_tier_config(std::uint32_t n,
                                          std::uint32_t fanout) {
  const bool vclocks = n < 10000;
  HarnessConfig config;
  config.seed = 1;
  config.debugger_fanout = fanout;
  config.latency = constant_latency(Duration::millis(1));
  config.shim_options.stamp_vector_clocks = vclocks;
  std::vector<ProcessPtr> users;
  users.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    users.push_back(std::make_unique<TierLoadProcess>());
  }

  auto t0 = std::chrono::steady_clock::now();
  SimDebugHarness harness(Topology::tree(n, 2), std::move(users),
                          std::move(config));
  harness.sim().run_for(Duration::millis(30));
  auto t1 = std::chrono::steady_clock::now();
  harness.session().halt();
  auto wave = harness.session().wait_for_halt(Duration::seconds(120));
  auto t2 = std::chrono::steady_clock::now();
  const double run_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double halt_ms =
      std::chrono::duration<double, std::milli>(t2 - t1).count();

  if (!wave.has_value() || !wave->complete) {
    tier_fail(n, fanout, "halt wave did not complete");
  }
  if (wave->state.size() != n) tier_fail(n, fanout, "missing snapshots");

  // Vector-clock cut criterion where clocks fit in memory.
  if (vclocks && !consistent_cut(wave->state)) {
    tier_fail(n, fanout, "vector-clock cut inconsistency");
  }

  // Conservation-based cut check (O(n), valid at any scale).
  const Topology& topology = harness.topology();
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t recorded = 0;
  for (const ProcessSnapshot& snapshot : wave->state.take_all()) {
    ByteReader reader(snapshot.state);
    const auto s = reader.u64();
    const auto r = reader.u64();
    if (!s.ok() || !r.ok()) tier_fail(n, fanout, "undecodable state");
    sent += s.value();
    received += r.value();
    for (const ChannelState& channel : snapshot.in_channels) {
      if (!topology.channel(channel.channel).is_control) {
        recorded += channel.messages.size();
      }
    }
  }
  if (sent != received + recorded) {
    std::fprintf(stderr,
                 "bench_scale: tier n=%u fanout=%u: conservation broken: "
                 "sent=%llu received=%llu recorded=%llu\n",
                 n, fanout, static_cast<unsigned long long>(sent),
                 static_cast<unsigned long long>(received),
                 static_cast<unsigned long long>(recorded));
    std::exit(1);
  }

  const auto tier = harness.sim().metrics().snapshot().tier;
  if (fanout == 0) {
    if (tier.acks_aggregated != 0) tier_fail(n, fanout, "flat mode acked");
  } else {
    // One combined report per aggregator per wave, never more than one ack
    // per non-root tier node.
    if (tier.acks_aggregated != topology.num_aggregators() ||
        tier.acks_aggregated >= n) {
      tier_fail(n, fanout, "aggregated ack count off");
    }
    if (tier.markers_suppressed == 0) tier_fail(n, fanout, "no suppression");
    if (tier.tree_fanout == 0 || tier.tree_fanout > fanout) {
      tier_fail(n, fanout, "tree fanout gauge off");
    }
  }

  // The ddbg.metrics.v1 snapshot JSON includes every *active* channel —
  // ~4n of them here — so rows at N >= 10k are deliberately not recorded
  // into BENCH_scale.json: the file would be dominated by channel entries
  // while the verification above already carries the signal.  This skip
  // and the vclock one are the documented large-N exclusions.
  if (n < 10000) {
    char label[128];
    std::snprintf(label, sizeof label,
                  "tier n=%u fanout=%u halt wall_ms=%.2f", n, fanout,
                  halt_ms);
    record_metrics(label, harness.sim());
  } else {
    print_row("  (skipping BENCH_scale.json row and vclock cut check for "
              "tier n=%u: per-channel JSON and O(n^2) clock memory; "
              "conservation check performed instead)",
              n);
  }
  return {run_ms, halt_ms};
}

std::vector<std::uint32_t> tier_sizes() {
  std::vector<std::uint32_t> sizes = {256, 10000, 100000};
  const char* env = std::getenv("DDBG_SCALE_TREE_N");
  if (env == nullptr || *env == '\0') return sizes;
  sizes.clear();
  std::stringstream stream(env);
  std::string item;
  while (std::getline(stream, item, ',')) {
    sizes.push_back(static_cast<std::uint32_t>(std::stoul(item)));
  }
  return sizes;
}

void print_tier_table() {
  print_header(
      "Hierarchical debugger tier: halt-wave scale sweep",
      "Binary-tree workload halted mid-flight through a fanout-16 debugger\n"
      "tier; every wave verified complete, conservation-clean and (below\n"
      "10k) vector-clock consistent.  The flat row shows the O(channels)\n"
      "single-debugger baseline at the smallest N.");
  print_row("%8s %8s %7s %12s %12s", "mode", "n", "fanout", "run ms",
            "halt ms");
  bool flat_done = false;
  for (const std::uint32_t n : tier_sizes()) {
    if (!flat_done) {
      // Flat baseline once, at the smallest N: the root owns all 2n
      // control channels, which is exactly the ceiling the tier removes.
      const auto [run_ms, halt_ms] = run_tier_config(n, 0);
      print_row("%8s %8u %7u %12.1f %12.1f", "flat", n, 0, run_ms, halt_ms);
      flat_done = true;
    }
    const auto [run_ms, halt_ms] = run_tier_config(n, kTierFanout);
    print_row("%8s %8u %7u %12.1f %12.1f", "tier", n, kTierFanout, run_ms,
              halt_ms);
  }
  print_row("\n(every wave above completed with a verified consistent cut)");
}

std::vector<std::uint32_t> sweep_sizes() {
  std::vector<std::uint32_t> sizes = {64, 256, 1024};
  const char* env = std::getenv("DDBG_SCALE_N");
  if (env == nullptr || *env == '\0') return sizes;
  sizes.clear();
  std::stringstream stream(env);
  std::string item;
  while (std::getline(stream, item, ',')) {
    sizes.push_back(static_cast<std::uint32_t>(std::stoul(item)));
  }
  return sizes;
}

void print_table() {
  print_header(
      "Scale sweep: sequential vs windowed-parallel simulation",
      "N concurrent tokens, 48 hops each, deterministic per-hop mixing "
      "work.\nThe parallel engine (4 workers, 1ms lookahead windows) must "
      "be byte-identical\nto the sequential loop and faster once windows "
      "hold enough events.");
  print_row("%9s %6s %12s %12s %9s", "topology", "n", "seq ms", "par4 ms",
            "speedup");
  for (const std::uint32_t n : sweep_sizes()) {
    const Config configs[] = {{"ring", n, make_ring},
                              {"tree", n, make_tree},
                              {"complete", n, make_complete}};
    for (const Config& config : configs) {
      const auto [seq_ms, par_ms] = run_config(config);
      print_row("%9s %6u %12.2f %12.2f %8.2fx", config.topo, n, seq_ms,
                par_ms, par_ms > 0 ? seq_ms / par_ms : 0);
    }
  }
  print_row("\n(every row verified byte-identical between modes before "
            "timing was reported)");
}

void BM_Window(benchmark::State& state) {
  const Config config{"ring", 256, make_ring};
  const auto workers = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    auto sim = make_sim(config, workers);
    sim->run_until_quiescent();
    benchmark::DoNotOptimize(checksum_sum(*sim, config.n));
  }
  state.SetLabel(workers == 1 ? "sequential" : "parallel");
}
BENCHMARK(BM_Window)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ddbg::bench

int main(int argc, char** argv) {
  ddbg::bench::print_table();
  ddbg::bench::print_tier_table();
  ddbg::bench::write_metrics_json("scale");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
