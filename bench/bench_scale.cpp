// Scale sweep: sequential vs windowed-parallel simulation.
//
// Sweeps N in {64, 256, 1024} over {ring, tree, complete} topologies and
// runs the same multi-token workload under the classic sequential event
// loop (workers=1) and the conservative time-windowed parallel engine
// (workers=4).  For every configuration it
//
//   1. times both modes (min of kTimingReps wall-clock repetitions),
//   2. re-runs both with a recording transport observer and checks that
//      the observer stream, event count, final virtual clock, workload
//      checksum — and, where affordable, the full ddbg.metrics.v1 JSON —
//      are byte-identical, aborting the binary on any divergence,
//   3. records both snapshots into BENCH_scale.json with the measured
//      wall-clock and speedup embedded in the run labels.
//
// Environment knobs (all optional, for CI smoke jobs):
//   DDBG_SCALE_N          comma list restricting the N sweep (e.g. "256")
//   DDBG_SCALE_TRACE_DIR  directory to dump per-mode observer traces into,
//                         as <topo>_n<N>_{seq,par}.trace, for external diff
//   DDBG_METRICS_DIR      where BENCH_scale.json goes (bench_util.hpp)
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "net/transport_hooks.hpp"

namespace ddbg::bench {
namespace {

// Every process injects one token at start; each token is forwarded kHops
// times with kSpin rounds of deterministic integer mixing per delivery
// (standing in for a real handler body).  N concurrent tokens advance in
// lockstep — one window per hop — so the parallel engine has N events to
// distribute per window.
constexpr std::uint32_t kHops = 48;
constexpr std::uint32_t kSpin = 2000;
constexpr int kTimingReps = 3;

class ScaleTokenProcess final : public Process {
 public:
  void on_start(ProcessContext& ctx) override {
    forward(ctx, kHops, ctx.self().value());
  }

  void on_message(ProcessContext& ctx, ChannelId /*in*/,
                  Message message) override {
    ByteReader reader(message.payload);
    const auto hops = reader.u32();
    const auto value = reader.u64();
    if (!hops.ok() || !value.ok()) return;
    std::uint64_t mixed = value.value();
    for (std::uint32_t i = 0; i < kSpin; ++i) {
      mixed ^= mixed >> 33;
      mixed *= 0xff51afd7ed558ccdULL;
      mixed ^= mixed >> 29;
      mixed += 0x9e3779b97f4a7c15ULL;
    }
    checksum_ += mixed;
    ++handled_;
    if (hops.value() > 0) forward(ctx, hops.value() - 1, mixed);
  }

  [[nodiscard]] std::uint64_t checksum() const { return checksum_; }
  [[nodiscard]] std::uint64_t handled() const { return handled_; }

 private:
  void forward(ProcessContext& ctx, std::uint32_t hops, std::uint64_t value) {
    const auto& out = ctx.topology().out_channels(ctx.self());
    ByteWriter writer;
    writer.u32(hops);
    writer.u64(value);
    ctx.send(out[value % out.size()],
             Message::application(std::move(writer).take()));
  }

  std::uint64_t checksum_ = 0;
  std::uint64_t handled_ = 0;
};

std::vector<ProcessPtr> make_scale_tokens(std::uint32_t n) {
  std::vector<ProcessPtr> processes;
  processes.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    processes.push_back(std::make_unique<ScaleTokenProcess>());
  }
  return processes;
}

class RecordingObserver final : public TransportObserver {
 public:
  void on_send(TimePoint when, ChannelId channel,
               const Message& message) override {
    log_ << "S " << when.ns << " " << channel.value() << " "
         << message.payload.size() << "\n";
  }
  void on_deliver(TimePoint when, ChannelId channel,
                  const Message& message) override {
    log_ << "D " << when.ns << " " << channel.value() << " "
         << message.payload.size() << "\n";
  }
  [[nodiscard]] std::string str() const { return log_.str(); }

 private:
  std::ostringstream log_;
};

struct Config {
  const char* topo;
  std::uint32_t n;
  Topology (*make)(std::uint32_t);
};

Topology make_ring(std::uint32_t n) { return Topology::ring(n); }
Topology make_tree(std::uint32_t n) { return Topology::tree(n, 2); }
Topology make_complete(std::uint32_t n) { return Topology::complete(n); }

std::unique_ptr<Simulation> make_sim(const Config& config,
                                     std::uint32_t workers) {
  SimulationConfig sim_config;
  sim_config.seed = 1;
  sim_config.workers = workers;
  sim_config.latency = constant_latency(Duration::millis(1));
  return std::make_unique<Simulation>(config.make(config.n),
                                      make_scale_tokens(config.n),
                                      std::move(sim_config));
}

std::uint64_t checksum_sum(Simulation& sim, std::uint32_t n) {
  std::uint64_t sum = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    sum += dynamic_cast<const ScaleTokenProcess&>(sim.process(ProcessId(i)))
               .checksum();
  }
  return sum;
}

double time_mode(const Config& config, std::uint32_t workers) {
  double best_ms = 0;
  for (int rep = 0; rep < kTimingReps; ++rep) {
    auto sim = make_sim(config, workers);
    const auto start = std::chrono::steady_clock::now();
    sim->run_until_quiescent();
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (rep == 0 || ms < best_ms) best_ms = ms;
    benchmark::DoNotOptimize(checksum_sum(*sim, config.n));
  }
  return best_ms;
}

void write_trace(const Config& config, const char* mode,
                 const std::string& trace) {
  const char* dir = std::getenv("DDBG_SCALE_TRACE_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path = std::string(dir) + "/" + config.topo + "_n" +
                           std::to_string(config.n) + "_" + mode + ".trace";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_scale: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fwrite(trace.data(), 1, trace.size(), f);
  std::fclose(f);
}

void fail(const Config& config, const char* what) {
  std::fprintf(stderr,
               "bench_scale: %s n=%u: parallel run diverged from "
               "sequential (%s)\n",
               config.topo, config.n, what);
  std::exit(1);
}

// Returns {seq_wall_ms, par_wall_ms} and records both metrics snapshots.
std::pair<double, double> run_config(const Config& config) {
  const double seq_ms = time_mode(config, 1);
  const double par_ms = time_mode(config, 4);
  const double speedup = par_ms > 0 ? seq_ms / par_ms : 0;

  // Verification pass: both modes under a recording observer.
  auto seq = make_sim(config, 1);
  RecordingObserver seq_observer;
  seq->set_observer(&seq_observer);
  seq->run_until_quiescent();
  auto par = make_sim(config, 4);
  RecordingObserver par_observer;
  par->set_observer(&par_observer);
  par->run_until_quiescent();

  if (seq_observer.str() != par_observer.str()) fail(config, "observer");
  if (seq->events_processed() != par->events_processed())
    fail(config, "event count");
  if (seq->now().ns != par->now().ns) fail(config, "final clock");
  if (checksum_sum(*seq, config.n) != checksum_sum(*par, config.n))
    fail(config, "workload checksum");
  write_trace(config, "seq", seq_observer.str());
  write_trace(config, "par", par_observer.str());

  // The metrics snapshot materializes every channel; on complete(1024)
  // that is ~1M channel objects and a few hundred MB of JSON, so the JSON
  // comparison and BENCH_scale.json rows are limited to the configurations
  // where the snapshot is not itself the bottleneck.
  if (seq->topology().num_channels() <= 100000) {
    const std::string seq_json = seq->metrics().snapshot(seq->now()).to_json();
    const std::string par_json = par->metrics().snapshot(par->now()).to_json();
    if (seq_json != par_json) fail(config, "metrics JSON");
    char label[128];
    std::snprintf(label, sizeof label, "%s n=%u seq wall_ms=%.2f",
                  config.topo, config.n, seq_ms);
    record_metrics(label, *seq);
    std::snprintf(label, sizeof label,
                  "%s n=%u par workers=4 wall_ms=%.2f speedup=%.2f",
                  config.topo, config.n, par_ms, speedup);
    record_metrics(label, *par);
  } else {
    print_row("  (skipping metrics JSON for %s n=%u: O(N^2) channels make "
              "the snapshot dominate)",
              config.topo, config.n);
  }
  return {seq_ms, par_ms};
}

std::vector<std::uint32_t> sweep_sizes() {
  std::vector<std::uint32_t> sizes = {64, 256, 1024};
  const char* env = std::getenv("DDBG_SCALE_N");
  if (env == nullptr || *env == '\0') return sizes;
  sizes.clear();
  std::stringstream stream(env);
  std::string item;
  while (std::getline(stream, item, ',')) {
    sizes.push_back(static_cast<std::uint32_t>(std::stoul(item)));
  }
  return sizes;
}

void print_table() {
  print_header(
      "Scale sweep: sequential vs windowed-parallel simulation",
      "N concurrent tokens, 48 hops each, deterministic per-hop mixing "
      "work.\nThe parallel engine (4 workers, 1ms lookahead windows) must "
      "be byte-identical\nto the sequential loop and faster once windows "
      "hold enough events.");
  print_row("%9s %6s %12s %12s %9s", "topology", "n", "seq ms", "par4 ms",
            "speedup");
  for (const std::uint32_t n : sweep_sizes()) {
    const Config configs[] = {{"ring", n, make_ring},
                              {"tree", n, make_tree},
                              {"complete", n, make_complete}};
    for (const Config& config : configs) {
      const auto [seq_ms, par_ms] = run_config(config);
      print_row("%9s %6u %12.2f %12.2f %8.2fx", config.topo, n, seq_ms,
                par_ms, par_ms > 0 ? seq_ms / par_ms : 0);
    }
  }
  print_row("\n(every row verified byte-identical between modes before "
            "timing was reported)");
}

void BM_Window(benchmark::State& state) {
  const Config config{"ring", 256, make_ring};
  const auto workers = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    auto sim = make_sim(config, workers);
    sim->run_until_quiescent();
    benchmark::DoNotOptimize(checksum_sum(*sim, config.n));
  }
  state.SetLabel(workers == 1 ? "sequential" : "parallel");
}
BENCHMARK(BM_Window)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ddbg::bench

int main(int argc, char** argv) {
  ddbg::bench::print_table();
  ddbg::bench::write_metrics_json("scale");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
