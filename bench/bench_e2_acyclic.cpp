// Experiment E2 (figure 2, section 2.2.2): on an acyclic producer-consumer
// pipeline, halting initiated at the consumer cannot reach upstream with
// the basic algorithm; the extended model (debugger process with control
// channels) halts everything.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "core/debug_shim.hpp"

namespace ddbg::bench {
namespace {

struct AcyclicResult {
  std::uint32_t depth = 0;
  std::uint32_t basic_halted = 0;     // of depth processes
  std::uint32_t extended_halted = 0;  // of depth processes
  double extended_latency_ms = 0;
  bool extended_complete = false;
};

AcyclicResult run_depth(std::uint32_t depth, std::uint64_t seed) {
  AcyclicResult result;
  result.depth = depth;

  PipelineConfig pipeline;
  pipeline.items = 0;  // unbounded producer

  {
    // Basic algorithm: no debugger; the consumer spontaneously halts.
    Topology topology = Topology::pipeline(depth);
    Simulation sim(topology,
                   wrap_in_shims(topology, make_pipeline(depth, pipeline)),
                   [&] {
                     SimulationConfig config;
                     config.seed = seed;
                     return config;
                   }());
    sim.run_for(Duration::millis(20));
    sim.post(ProcessId(depth - 1), [](ProcessContext& ctx, Process& process) {
      dynamic_cast<DebugShim&>(process).initiate_halt(ctx);
    });
    sim.run_for(Duration::seconds(2));
    for (std::uint32_t i = 0; i < depth; ++i) {
      if (dynamic_cast<DebugShim&>(sim.process(ProcessId(i))).halted()) {
        ++result.basic_halted;
      }
    }
  }
  {
    // Extended model: same pipeline, halt initiated from the debugger.
    HarnessConfig config;
    config.seed = seed;
    SimDebugHarness harness(Topology::pipeline(depth),
                            make_pipeline(depth, pipeline),
                            std::move(config));
    harness.sim().run_for(Duration::millis(20));
    const TimePoint start = harness.sim().now();
    harness.session().halt();
    auto wave = harness.session().wait_for_halt(Duration::seconds(30));
    result.extended_complete = wave.has_value();
    if (wave.has_value()) {
      result.extended_latency_ms = (wave->completed_at - start).to_millis();
    }
    for (std::uint32_t i = 0; i < depth; ++i) {
      if (harness.shim(ProcessId(i)).halted()) ++result.extended_halted;
    }
    record_metrics("extended depth=" + std::to_string(depth), harness.sim());
  }
  return result;
}

void print_table() {
  print_header(
      "E2: acyclic pipelines (figure 2)",
      "Basic Halting Algorithm initiated at the consumer vs extended model "
      "(debugger).\nPaper claim: the basic algorithm cannot halt upstream "
      "processes of an acyclic graph;\nthe debugger process's control "
      "channels make the network strongly connected.");
  print_row("%6s %14s %17s %17s %14s", "depth", "basic_halted",
            "extended_halted", "extended_S_h", "ext_lat_ms");
  for (const std::uint32_t depth : {2u, 4u, 8u, 16u}) {
    const AcyclicResult r = run_depth(depth, 1);
    print_row("%6u %10u/%-3u %13u/%-3u %17s %14.2f", r.depth, r.basic_halted,
              depth, r.extended_halted, depth,
              r.extended_complete ? "complete" : "INCOMPLETE",
              r.extended_latency_ms);
  }
  print_row("\n(the basic algorithm strands everything upstream of the "
            "consumer: 1/%s halted)",
            "n");
}

void BM_ExtendedHaltPipeline(benchmark::State& state) {
  const auto depth = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    PipelineConfig pipeline;
    pipeline.items = 0;
    const HaltRunMetrics metrics =
        run_halt_wave(Topology::pipeline(depth),
                      make_pipeline(depth, pipeline), seed++,
                      Duration::millis(20));
    benchmark::DoNotOptimize(metrics.completed);
  }
}
BENCHMARK(BM_ExtendedHaltPipeline)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ddbg::bench

int main(int argc, char** argv) {
  ddbg::bench::print_table();
  ddbg::bench::write_metrics_json("e2_acyclic");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
