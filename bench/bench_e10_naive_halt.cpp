// Experiment E10 (section 4's IDD critique; section 2's motivation): the
// naive out-of-band halt loses in-flight information.
//
// Both schemes stop a gossip ring at roughly the same moment.  The naive
// scheme freezes each process where a randomly-delayed "signal" finds it,
// with no markers and no channel recording; messages in flight at the
// freeze are unaccounted (dropped on arrival).  The Halting Algorithm
// records every in-flight message as channel state.  The table accounts
// for every application message against the trace.
#include <benchmark/benchmark.h>

#include "analysis/consistency.hpp"
#include "baselines/naive_halt.hpp"
#include "bench/bench_util.hpp"

namespace ddbg::bench {
namespace {

constexpr std::uint32_t kN = 8;

struct NaiveRow {
  std::size_t in_flight = 0;     // per trace, at the cut
  std::size_t recorded = 0;      // captured in channel states
  std::size_t lost = 0;          // unaccounted
  std::uint64_t dropped = 0;     // arrivals at frozen processes
  bool cut_consistent = false;
};

NaiveRow run_naive(Duration latency, std::uint64_t seed) {
  Trace trace;
  Topology topology = Topology::ring(kN);
  NaiveHaltShim::Options options;
  options.trace_sink = trace.sink();
  SimulationConfig config;
  config.seed = seed;
  config.latency = uniform_latency(latency, latency + Duration::millis(1));
  Simulation sim(topology,
                 wrap_in_naive_shims(topology, make_gossip(kN, GossipConfig{}),
                                     options),
                 std::move(config));
  sim.run_for(Duration::millis(50));
  // The out-of-band signals: each process freezes after an independent
  // random delay (the unpredictable delivery of a stop command).
  Rng rng(seed ^ 0xabcdef);
  for (std::uint32_t i = 0; i < kN; ++i) {
    const Duration delay{rng.next_in(0, 2 * latency.ns)};
    sim.schedule_call(sim.now() + delay, [&sim, i] {
      sim.post(ProcessId(i), [](ProcessContext& ctx, Process& process) {
        dynamic_cast<NaiveHaltShim&>(process).halt_now(ctx);
      });
    });
  }
  sim.run_for(Duration::seconds(1));

  GlobalState state{HaltId(1)};
  std::uint64_t dropped = 0;
  for (std::uint32_t i = 0; i < kN; ++i) {
    auto& shim = dynamic_cast<NaiveHaltShim&>(sim.process(ProcessId(i)));
    state.add(shim.snapshot());
    dropped += shim.dropped_messages();
  }
  const MessageAccounting accounting = account_messages(trace, state);
  NaiveRow row;
  row.in_flight = accounting.in_flight_per_trace;
  row.recorded = accounting.recorded_in_channels;
  row.lost = accounting.lost_messages;
  row.dropped = dropped;
  row.cut_consistent = consistent_cut(state);
  return row;
}

NaiveRow run_halting(Duration latency, std::uint64_t seed) {
  Trace trace;
  HarnessConfig config;
  config.seed = seed;
  config.latency = uniform_latency(latency, latency + Duration::millis(1));
  config.shim_options.trace_sink = trace.sink();
  SimDebugHarness harness(Topology::ring(kN), make_gossip(kN, GossipConfig{}),
                          std::move(config));
  harness.sim().run_for(Duration::millis(50));
  harness.session().halt();
  auto wave = harness.session().wait_for_halt(Duration::seconds(60));
  NaiveRow row;
  if (!wave.has_value()) return row;
  const MessageAccounting accounting = account_messages(trace, wave->state);
  row.in_flight = accounting.in_flight_per_trace;
  row.recorded = accounting.recorded_in_channels;
  row.lost = accounting.lost_messages;
  row.dropped = 0;
  row.cut_consistent = consistent_cut(wave->state);
  record_metrics("halting latency_ms=" + std::to_string(latency.ns / 1000000),
                 harness.sim());
  return row;
}

void print_table() {
  print_header(
      "E10: naive out-of-band halt vs the Halting Algorithm (section 4)",
      "Gossip ring of 8; the cut's in-flight messages accounted against the "
      "event trace.\nPaper claim: without markers 'some information may be "
      "lost or recorded\nincorrectly' — the naive scheme has no channel "
      "states, so every in-flight message\nis unaccounted; the Halting "
      "Algorithm records all of them.");
  print_row("%12s %10s %10s %10s %10s %10s %12s", "latency_ms", "scheme",
            "inflight", "recorded", "lost", "dropped", "consistent");
  for (const std::int64_t latency_ms : {1, 4, 16, 64}) {
    const NaiveRow naive = run_naive(Duration::millis(latency_ms), 31);
    const NaiveRow halting = run_halting(Duration::millis(latency_ms), 31);
    print_row("%12lld %10s %10zu %10zu %10zu %10llu %12s",
              static_cast<long long>(latency_ms), "naive", naive.in_flight,
              naive.recorded, naive.lost,
              static_cast<unsigned long long>(naive.dropped),
              naive.cut_consistent ? "yes" : "NO");
    print_row("%12s %10s %10zu %10zu %10zu %10llu %12s", "", "halting",
              halting.in_flight, halting.recorded, halting.lost,
              static_cast<unsigned long long>(halting.dropped),
              halting.cut_consistent ? "yes" : "NO");
  }
  print_row("\n(the naive cut of process states is itself consistent — it "
            "is a real-time cut —\nbut the global state is incomplete: "
            "lost == inflight.  The Halting Algorithm\nrecords recorded == "
            "inflight with 0 lost)");
}

void BM_NaiveVsHalting(benchmark::State& state) {
  const bool halting = state.range(0) == 1;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const NaiveRow row = halting ? run_halting(Duration::millis(4), seed)
                                 : run_naive(Duration::millis(4), seed);
    ++seed;
    benchmark::DoNotOptimize(row.in_flight);
  }
  state.SetLabel(halting ? "halting" : "naive");
}
BENCHMARK(BM_NaiveVsHalting)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ddbg::bench

int main(int argc, char** argv) {
  ddbg::bench::print_table();
  ddbg::bench::write_metrics_json("e10_naive_halt");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
