// Experiment E1 (Theorem 2, figure 1): the halted global state S_h equals
// the recorded global state S_r on identical deterministic executions.
//
// For each topology size, the same seeded execution is run twice: once with
// a C&L recording wave initiated at time T (the program keeps running), and
// once with a halting wave initiated at time T.  The two global states are
// compared with the Theorem-2 equivalence predicate, and the table reports
// the in-flight messages captured by each.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"

namespace ddbg::bench {
namespace {

struct EquivalenceResult {
  bool equal = false;
  std::size_t channel_messages_recorded = 0;
  std::size_t channel_messages_halted = 0;
  double record_latency_ms = 0;
  double halt_latency_ms = 0;
};

EquivalenceResult run_pair(std::uint32_t n, std::uint64_t seed) {
  const Duration point = Duration::millis(50);
  Rng topo_rng(seed);
  const Topology topology =
      Topology::random_strongly_connected(n, n, topo_rng);

  EquivalenceResult result;
  GlobalState recorded;
  // Chaos knobs: with DDBG_FAULT_PLAN set, both runs face the identical
  // seeded adversary — Theorem 2 must survive the lossy transport too.
  const std::shared_ptr<FaultPlan> faults = FaultPlan::from_env();
  {
    HarnessConfig config;
    config.seed = seed;
    config.faults = faults;
    SimDebugHarness harness(topology, make_gossip(n, GossipConfig{}),
                            std::move(config));
    harness.sim().run_for(point);
    const TimePoint start = harness.sim().now();
    auto wave = harness.session().take_snapshot(Duration::seconds(60));
    if (!wave.has_value()) return result;
    recorded = wave->state;
    result.record_latency_ms = (wave->completed_at - start).to_millis();
    result.channel_messages_recorded = recorded.total_channel_messages();
  }
  {
    HarnessConfig config;
    config.seed = seed;
    config.faults = faults;
    SimDebugHarness harness(topology, make_gossip(n, GossipConfig{}),
                            std::move(config));
    harness.sim().run_for(point);
    const TimePoint start = harness.sim().now();
    harness.session().halt();
    auto wave = harness.session().wait_for_halt(Duration::seconds(60));
    if (!wave.has_value()) return result;
    result.halt_latency_ms = (wave->completed_at - start).to_millis();
    result.channel_messages_halted = wave->state.total_channel_messages();
    result.equal = wave->state.equivalent(recorded);
    record_metrics(
        "halt n=" + std::to_string(n) + " seed=" + std::to_string(seed),
        harness.sim());
  }
  return result;
}

void print_table() {
  print_header(
      "E1: S_h == S_r (Theorem 2)",
      "Same seeded execution, recorded (C&L) vs halted; states must be "
      "equivalent.\nPaper claim: the halted state equals the recorded state "
      "in process states and channel contents.");
  print_row("%4s %6s %10s %12s %12s %14s %12s", "n", "seed", "equal",
            "rec_msgs", "halt_msgs", "rec_lat_ms", "halt_lat_ms");
  int failures = 0;
  for (const std::uint32_t n : {2u, 4u, 8u, 16u, 32u}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const EquivalenceResult r = run_pair(n, seed);
      if (!r.equal) ++failures;
      print_row("%4u %6llu %10s %12zu %12zu %14.2f %12.2f", n,
                static_cast<unsigned long long>(seed),
                r.equal ? "YES" : "NO", r.channel_messages_recorded,
                r.channel_messages_halted, r.record_latency_ms,
                r.halt_latency_ms);
    }
  }
  print_row("\nequivalence failures: %d (paper predicts 0)", failures);
}

void BM_HaltWave(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  double latency_ms = 0;
  std::uint64_t waves = 0;
  for (auto _ : state) {
    Rng topo_rng(seed);
    const Topology topology =
        Topology::random_strongly_connected(n, n, topo_rng);
    const HaltRunMetrics metrics = run_halt_wave(
        topology, make_gossip(n, GossipConfig{}), seed++, Duration::millis(20));
    latency_ms += metrics.halt_latency_ms;
    ++waves;
    benchmark::DoNotOptimize(metrics.completed);
  }
  state.counters["virtual_halt_latency_ms"] =
      benchmark::Counter(latency_ms / static_cast<double>(waves));
}
BENCHMARK(BM_HaltWave)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ddbg::bench

int main(int argc, char** argv) {
  ddbg::bench::print_table();
  ddbg::bench::write_metrics_json("e1_equivalence");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
