// Record/replay bench: what recording costs and what replay buys.
//
//   1. Record+replay table — a token ring with a mid-run halt wave is
//      recorded in the simulator, then re-executed by the ReplayDriver.
//      Rows report the log's record counts and encoded size, and assert
//      the replay reproduced the recorded consistent cut exactly
//      (equivalent() on S_h) with zero divergences — the tentpole claim,
//      regenerated on every bench run.
//   2. Timing loops — wall-clock of the same run with recording off vs on
//      (the per-event append + hash overhead) and of a full replay.
//
//   DDBG_METRICS_DIR   where BENCH_replay.json goes (bench_util.hpp); the
//                      snapshots carry the `replay` metrics block.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "replay/recorder.hpp"
#include "replay/replay_driver.hpp"
#include "sim/latency_model.hpp"

namespace ddbg::bench {
namespace {

constexpr std::uint32_t kRounds = 30;
constexpr Duration kWait = Duration::seconds(300);

std::vector<ProcessPtr> ring_users(std::uint32_t n) {
  TokenRingConfig config;
  config.rounds = kRounds;
  config.hop_delay = Duration::millis(1);
  return make_token_ring(n, config);
}

// Run the ring with an optional recorder attached: let the token make a
// few hops, drive one halt/resume cycle, then run to quiescence.
void run_recorded(std::uint32_t n, const std::shared_ptr<ReplayRecorder>& rec) {
  HarnessConfig config;
  config.seed = 7;
  config.latency = std::make_unique<ConstantLatency>(Duration::millis(2));
  config.replay = rec;
  SimDebugHarness harness(Topology::ring(n), ring_users(n), std::move(config));
  if (rec != nullptr) rec->set_metrics(&harness.sim().metrics());

  Simulation& sim = harness.sim();
  sim.run_until(TimePoint{} + Duration::millis(20));
  harness.session().halt();
  if (!harness.session().wait_for_halt(kWait).has_value()) {
    std::fprintf(stderr, "bench_replay: halt wave did not complete\n");
    std::abort();
  }
  harness.session().resume(kWait);
  sim.run_until_quiescent();
}

ReplayLog record_ring(std::uint32_t n) {
  ReplayLogHeader header;
  header.seed = 7;
  header.substrate = "sim";
  header.num_user_processes = n;
  header.num_channels =
      static_cast<std::uint32_t>(Topology::ring(n).with_debugger()
                                     .num_channels());
  auto recorder = std::make_shared<ReplayRecorder>(header);
  run_recorded(n, recorder);
  return recorder->log();
}

void replay_table() {
  print_header("record/replay",
               "a recorded run replays input-for-input in the simulator; "
               "the replayed halt cut is equivalent() to the recorded S_h");
  print_row("%6s %9s %10s %9s %7s %6s %10s", "N", "records", "log_bytes",
            "delivers", "timers", "cuts", "replay");
  for (const std::uint32_t n : {4U, 8U, 16U}) {
    ReplayLog log = record_ring(n);
    const std::size_t bytes = log.encode().size();

    ReplayDriver driver(log, Topology::ring(n), ring_users(n));
    ReplayDriver::Report report = driver.run();
    const bool ok = report.ok() && report.cuts_matched == report.cuts &&
                    report.divergences == 0;
    print_row("%6u %9zu %10zu %9llu %7llu %6llu %10s", n, log.records.size(),
              bytes,
              static_cast<unsigned long long>(report.deliveries),
              static_cast<unsigned long long>(report.timer_fires),
              static_cast<unsigned long long>(report.cuts),
              ok ? "exact" : "DIVERGED");
    if (!ok) {
      std::fprintf(stderr, "bench_replay: replay diverged at N=%u:\n%s", n,
                   report.describe().c_str());
      std::abort();
    }
    record_metrics("replay_n" + std::to_string(n), driver.harness().sim());
  }
}

void bm_record(benchmark::State& state, bool record) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    std::shared_ptr<ReplayRecorder> recorder;
    if (record) {
      ReplayLogHeader header;
      header.seed = 7;
      header.substrate = "sim";
      header.num_user_processes = n;
      recorder = std::make_shared<ReplayRecorder>(header);
    }
    run_recorded(n, recorder);
    if (recorder != nullptr) {
      benchmark::DoNotOptimize(recorder->records());
    }
  }
}

void BM_RingRecordOff(benchmark::State& state) { bm_record(state, false); }
void BM_RingRecordOn(benchmark::State& state) { bm_record(state, true); }

void BM_RingReplay(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const ReplayLog log = record_ring(n);
  for (auto _ : state) {
    ReplayDriver driver(log, Topology::ring(n), ring_users(n));
    ReplayDriver::Report report = driver.run();
    benchmark::DoNotOptimize(report.deliveries);
  }
}

BENCHMARK(BM_RingRecordOff)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RingRecordOn)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RingReplay)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ddbg::bench

int main(int argc, char** argv) {
  ddbg::bench::replay_table();
  ddbg::bench::write_metrics_json("replay");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
