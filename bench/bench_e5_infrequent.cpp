// Experiment E5 (section 2.2.2, problem 1): infrequently-interacting
// processes halt late under the basic algorithm; the extended model is flat.
//
// Every process is wrapped in a LazyProcess that services peer channels
// only at its interaction points (a poll every `poll_interval`), but — per
// section 2.2.3 — always accepts debugger traffic immediately.  Under the
// basic algorithm a peer's halt marker therefore waits for the next poll;
// under the extended model the debugger's marker arrives on a control
// channel and halts the process at once.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "core/debug_shim.hpp"
#include "workload/lazy.hpp"

namespace ddbg::bench {
namespace {

constexpr std::uint32_t kN = 6;

std::vector<ProcessPtr> lazy_shims(const Topology& topology,
                                   Duration poll_interval,
                                   DebugShim::Options options) {
  std::vector<ProcessPtr> shims =
      wrap_in_shims(topology, make_gossip(kN, GossipConfig{}), options);
  std::vector<ProcessPtr> wrapped;
  wrapped.reserve(shims.size());
  for (auto& shim : shims) {
    wrapped.push_back(
        std::make_unique<LazyProcess>(std::move(shim), poll_interval));
  }
  return wrapped;
}

// Time from initiation until every user process has halted.
struct LatencyResult {
  bool all_halted = false;
  double last_halt_ms = 0;
};

LatencyResult run_basic(Duration poll_interval, std::uint64_t seed) {
  Topology topology = Topology::ring(kN);
  auto last_halt = std::make_shared<TimePoint>();
  auto halted_count = std::make_shared<std::uint32_t>(0);

  SimulationConfig config;
  config.seed = seed;
  DebugShim::Options options;
  Simulation* sim_ptr = nullptr;
  options.on_halted = [&sim_ptr, last_halt, halted_count](HaltId) {
    ++*halted_count;
    *last_halt = sim_ptr->now();
  };
  Simulation sim(topology, lazy_shims(topology, poll_interval, options),
                 std::move(config));
  sim_ptr = &sim;
  sim.run_for(Duration::millis(20));
  const TimePoint start = sim.now();
  sim.post(ProcessId(0), [](ProcessContext& ctx, Process& process) {
    auto& lazy = dynamic_cast<LazyProcess&>(process);
    dynamic_cast<DebugShim&>(lazy.inner()).initiate_halt(ctx);
  });
  sim.run_until_condition([&] { return *halted_count == kN; },
                          sim.now() + Duration::seconds(120));
  LatencyResult result;
  result.all_halted = *halted_count == kN;
  result.last_halt_ms = (*last_halt - start).to_millis();
  return result;
}

LatencyResult run_extended(Duration poll_interval, std::uint64_t seed) {
  Topology topology = Topology::ring(kN).with_debugger();
  auto last_halt = std::make_shared<TimePoint>();
  auto halted_count = std::make_shared<std::uint32_t>(0);

  SimulationConfig config;
  config.seed = seed;
  DebugShim::Options options;
  Simulation* sim_ptr = nullptr;
  options.on_halted = [&sim_ptr, last_halt, halted_count](HaltId) {
    ++*halted_count;
    *last_halt = sim_ptr->now();
  };

  std::vector<ProcessPtr> processes =
      lazy_shims(topology, poll_interval, options);
  auto debugger = std::make_unique<DebuggerProcess>();
  DebuggerProcess* debugger_ptr = debugger.get();
  processes.push_back(std::move(debugger));

  Simulation sim(topology, std::move(processes), std::move(config));
  sim_ptr = &sim;
  sim.run_for(Duration::millis(20));
  const TimePoint start = sim.now();
  sim.post(topology.debugger_id(), [debugger_ptr](ProcessContext& ctx,
                                                  Process&) {
    debugger_ptr->initiate_halt(ctx);
  });
  sim.run_until_condition([&] { return *halted_count == kN; },
                          sim.now() + Duration::seconds(120));
  // Let the halt reports drain back to the debugger so the recorded
  // snapshot contains a completed halt-wave latency span.  Channel-state
  // assembly waits for peer-channel markers, which a lazy process only
  // sees at its next poll, so the drain must cover a couple of polls.
  sim.run_for(Duration{3 * poll_interval.ns + Duration::millis(200).ns});
  record_metrics(
      "extended poll_ms=" + std::to_string(poll_interval.ns / 1000000), sim);
  LatencyResult result;
  result.all_halted = *halted_count == kN;
  result.last_halt_ms = (*last_halt - start).to_millis();
  return result;
}

void print_table() {
  print_header(
      "E5: infrequent interactions (section 2.2.2, problem 1)",
      "Ring of 6 processes that service peer channels only every "
      "poll_interval,\nbut always accept debugger messages.  Time until the "
      "last process halts.\nPaper claim: basic-algorithm halting waits for "
      "the application's own\ninteraction points; the debugger process "
      "removes the dependence.");
  print_row("%14s %18s %20s", "poll_ms", "basic_last_halt_ms",
            "extended_last_halt_ms");
  for (const std::int64_t poll_ms : {5, 20, 80, 320, 1280}) {
    const LatencyResult basic = run_basic(Duration::millis(poll_ms), 1);
    const LatencyResult extended = run_extended(Duration::millis(poll_ms), 1);
    print_row("%14lld %18.2f %20.2f", static_cast<long long>(poll_ms),
              basic.all_halted ? basic.last_halt_ms : -1.0,
              extended.all_halted ? extended.last_halt_ms : -1.0);
  }
  print_row("\n(basic grows with the interaction interval; extended stays "
            "flat at ~1 control hop)");
}

void BM_ExtendedLazyHalt(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_extended(Duration::millis(state.range(0)), seed++).all_halted);
  }
}
BENCHMARK(BM_ExtendedLazyHalt)->Arg(5)->Arg(320)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ddbg::bench

int main(int argc, char** argv) {
  ddbg::bench::print_table();
  ddbg::bench::write_metrics_json("e5_infrequent");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
