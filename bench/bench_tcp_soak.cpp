// TCP transport soak: the epoll reactor and pair-multiplexed sockets under
// sustained load, plus halt waves through a debugger tier whose every
// control hop crosses a real socket.
//
//   1. Incast throughput — W senders burst M messages down L lanes each
//      into one sink.  All W*L channels are multiplexed over W sockets
//      (one per host pair); the table reports messages/sec and the
//      reactor's wakeup/batching counters.  The run aborts if anything is
//      lost, reordered, or if the socket count is not exactly W.
//   2. Tier halt-wave sweep — users on a ring forward hop-limited tokens
//      under a fanout-16 debugger tier, all over TCP loopback.  Once the
//      workload quiesces, a halt wave runs root -> aggregators -> users
//      and back; each wave is verified complete, conservation-clean and
//      (at the smallest N) vector-clock consistent.
//
// Environment knobs (all optional, for CI smoke jobs):
//   DDBG_SOAK_N         comma list restricting the tier sweep (e.g. "64")
//   DDBG_SOAK_MESSAGES  burst size per lane for the incast table
//   DDBG_METRICS_DIR    where BENCH_tcp_soak.json goes (bench_util.hpp)
//
// Sizing note: the TCP runtime spawns one reactor thread and one wake pipe
// per process, so the default sweep tops out at N=1024 (~6.5k fds); larger
// sweeps need a raised fd limit and are opt-in via DDBG_SOAK_N.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/consistency.hpp"
#include "bench/bench_util.hpp"
#include "runtime/tcp_runtime.hpp"

namespace ddbg::bench {
namespace {

constexpr Duration kWait = Duration::seconds(120);

// ---------------------------------------------------------------------------
// Incast throughput over multiplexed sockets
// ---------------------------------------------------------------------------

constexpr std::uint32_t kIncastSenders = 8;
constexpr std::uint32_t kIncastLanes = 4;

std::uint32_t incast_messages() {
  const char* env = std::getenv("DDBG_SOAK_MESSAGES");
  if (env == nullptr || *env == '\0') return 2000;
  return static_cast<std::uint32_t>(std::stoul(env));
}

// Bursts `count` numbered messages down every out-channel from on_start.
class IncastSender final : public Process {
 public:
  explicit IncastSender(std::uint32_t count) : count_(count) {}
  void on_start(ProcessContext& ctx) override {
    for (std::uint32_t i = 0; i < count_; ++i) {
      for (const ChannelId c : ctx.topology().out_channels(ctx.self())) {
        ByteWriter writer;
        writer.u32(i);
        ctx.send(c, Message::application(std::move(writer).take()));
      }
    }
  }
  void on_message(ProcessContext&, ChannelId, Message) override {}

 private:
  std::uint32_t count_;
};

// Counts arrivals and checks per-channel FIFO numbering as it goes.
class IncastSink final : public Process {
 public:
  void on_message(ProcessContext& ctx, ChannelId channel,
                  Message message) override {
    if (next_.empty()) {
      next_.resize(ctx.topology().channels().size(), 0);
    }
    ByteReader reader(message.payload);
    const std::uint32_t value = reader.u32().value_or(0xffffffff);
    if (value != next_[channel.value()]) ordered.store(false);
    next_[channel.value()] += 1;
    received.fetch_add(1, std::memory_order_acq_rel);
  }
  std::atomic<std::uint64_t> received{0};
  std::atomic<bool> ordered{true};

 private:
  std::vector<std::uint32_t> next_;  // reactor delivers serially per process
};

void soak_fail(const char* what) {
  std::fprintf(stderr, "bench_tcp_soak: %s\n", what);
  std::exit(1);
}

// Runs one incast and returns {wall_ms, msgs_per_sec}; when `record` is
// set, the transport snapshot lands in BENCH_tcp_soak.json.
std::pair<double, double> run_incast(std::uint32_t senders,
                                     std::uint32_t lanes,
                                     std::uint32_t messages, bool record) {
  Topology topology(senders + 1);
  const ProcessId sink_id(senders);
  for (std::uint32_t s = 0; s < senders; ++s) {
    for (std::uint32_t lane = 0; lane < lanes; ++lane) {
      topology.add_channel(ProcessId(s), sink_id);
    }
  }
  std::vector<ProcessPtr> processes;
  for (std::uint32_t s = 0; s < senders; ++s) {
    processes.push_back(std::make_unique<IncastSender>(messages));
  }
  auto sink = std::make_unique<IncastSink>();
  IncastSink* sink_ptr = sink.get();
  processes.push_back(std::move(sink));

  const std::uint64_t expected =
      static_cast<std::uint64_t>(senders) * lanes * messages;
  TcpRuntime runtime(std::move(topology), std::move(processes));
  // The economics the reactor exists for: W*L channels over W sockets.
  if (runtime.data_socket_count() != senders) soak_fail("socket count off");
  if (runtime.max_channels_per_socket() != lanes) soak_fail("mux gauge off");

  const auto start = std::chrono::steady_clock::now();
  if (!runtime.start()) soak_fail("start failed");
  if (!TcpRuntime::wait_until(
          [&] { return sink_ptr->received.load() >= expected; }, kWait)) {
    soak_fail("incast did not drain");
  }
  const auto stop = std::chrono::steady_clock::now();
  runtime.shutdown();

  if (!sink_ptr->ordered.load()) soak_fail("per-channel FIFO broken");
  if (runtime.stats().messages_delivered != expected) {
    soak_fail("delivery count off");
  }
  const auto transport = runtime.metrics().snapshot(runtime.now()).transport;
  if (transport.epoll_wakeups == 0) soak_fail("no epoll wakeups counted");
  if (transport.frames_per_wakeup_max == 0) soak_fail("no batching counted");

  const double wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  const double rate = wall_ms > 0 ? expected / (wall_ms / 1000.0) : 0;
  if (record) {
    char label[160];
    std::snprintf(label, sizeof label,
                  "incast senders=%u lanes=%u msgs=%llu wall_ms=%.2f "
                  "msgs_per_sec=%.0f",
                  senders, lanes,
                  static_cast<unsigned long long>(expected), wall_ms, rate);
    record_metrics(label, runtime.metrics(), runtime.now());
  }
  return {wall_ms, rate};
}

void print_incast_table() {
  print_header(
      "TCP incast: multiplexed channels over the epoll reactor",
      "W senders burst down L lanes each into one sink over real loopback\n"
      "sockets; all W*L channels share W sockets (one per host pair).\n"
      "Verified: nothing lost, per-channel FIFO, socket count == W.");
  print_row("%8s %6s %10s %12s %14s", "senders", "lanes", "msgs", "wall ms",
            "msgs/sec");
  const std::uint32_t messages = incast_messages();
  const auto [wall_ms, rate] =
      run_incast(kIncastSenders, kIncastLanes, messages, /*record=*/true);
  print_row("%8u %6u %10llu %12.1f %14.0f", kIncastSenders, kIncastLanes,
            static_cast<unsigned long long>(
                static_cast<std::uint64_t>(kIncastSenders) * kIncastLanes *
                messages),
            wall_ms, rate);
  print_row("\n(channels multiplexed %u:1 onto sockets; FIFO and delivery "
            "counts verified)",
            kIncastLanes);
}

// ---------------------------------------------------------------------------
// Tier halt waves over TCP
// ---------------------------------------------------------------------------

constexpr std::uint32_t kTierFanout = 16;
constexpr std::uint32_t kTokenHops = 256;
constexpr std::uint32_t kInjectEvery = 64;

// Ring user forwarding hop-limited tokens; every (kInjectEvery)-th process
// injects one at start, so the workload quiesces after a bounded number of
// socket deliveries and the halt below measures the pure control-plane
// wave.  snapshot_state carries sent/received for the conservation check.
class SoakUser final : public Process {
 public:
  explicit SoakUser(std::shared_ptr<std::atomic<std::uint64_t>> hops_done)
      : hops_done_(std::move(hops_done)) {}

  void on_start(ProcessContext& ctx) override {
    if (ctx.self().value() % kInjectEvery == 0) send_token(ctx, kTokenHops);
  }

  void on_message(ProcessContext& ctx, ChannelId, Message message) override {
    ByteReader reader(message.payload);
    const auto budget = reader.u32();
    if (!budget.ok()) return;
    ++received_;
    hops_done_->fetch_add(1, std::memory_order_acq_rel);
    if (budget.value() > 0) send_token(ctx, budget.value() - 1);
  }

  [[nodiscard]] Bytes snapshot_state() const override {
    ByteWriter writer;
    writer.u64(sent_);
    writer.u64(received_);
    return std::move(writer).take();
  }
  [[nodiscard]] std::string describe_state() const override { return "soak"; }

 private:
  void send_token(ProcessContext& ctx, std::uint32_t budget) {
    if (app_out_.empty()) {
      for (const ChannelId c : ctx.topology().out_channels(ctx.self())) {
        if (!ctx.topology().channel(c).is_control) app_out_.push_back(c);
      }
    }
    ByteWriter writer;
    writer.u32(budget);
    ++sent_;
    ctx.send(app_out_[0], Message::application(std::move(writer).take()));
  }

  std::shared_ptr<std::atomic<std::uint64_t>> hops_done_;
  std::vector<ChannelId> app_out_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
};

void tier_fail(std::uint32_t n, const char* what) {
  std::fprintf(stderr, "bench_tcp_soak: tier n=%u: %s\n", n, what);
  std::exit(1);
}

// One tier halt wave over TCP at N users.  Returns {run_ms, halt_ms}.
std::pair<double, double> run_tier_config(std::uint32_t n) {
  const bool vclocks = n <= 256;  // clock payloads cross real sockets
  auto hops_done = std::make_shared<std::atomic<std::uint64_t>>(0);
  std::vector<ProcessPtr> users;
  users.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    users.push_back(std::make_unique<SoakUser>(hops_done));
  }
  HarnessConfig config;
  config.seed = 1;
  config.debugger_fanout = kTierFanout;
  config.shim_options.stamp_vector_clocks = vclocks;

  TcpDebugHarness harness(Topology::ring(n), std::move(users),
                          std::move(config));
  // Fd economics at scale: the tier wires 2 control channels per tree edge
  // plus the ring, yet every host pair still costs exactly one socket.
  const std::size_t channels = harness.topology().channels().size();
  if (harness.tcp().data_socket_count() >= channels) {
    tier_fail(n, "muxing saved no sockets");
  }

  const std::uint64_t injectors = (n + kInjectEvery - 1) / kInjectEvery;
  const std::uint64_t expected_hops =
      injectors * (static_cast<std::uint64_t>(kTokenHops) + 1);

  auto t0 = std::chrono::steady_clock::now();
  if (!harness.start()) tier_fail(n, "start failed");
  if (!TcpRuntime::wait_until(
          [&] { return hops_done->load() >= expected_hops; }, kWait)) {
    tier_fail(n, "workload did not quiesce");
  }
  auto t1 = std::chrono::steady_clock::now();
  harness.session().halt();
  auto wave = harness.session().wait_for_halt(kWait);
  auto t2 = std::chrono::steady_clock::now();
  const double run_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double halt_ms =
      std::chrono::duration<double, std::milli>(t2 - t1).count();

  if (!wave.has_value() || !wave->complete) {
    tier_fail(n, "halt wave did not complete");
  }
  if (wave->state.size() != n) tier_fail(n, "missing snapshots");
  if (vclocks && !consistent_cut(wave->state)) {
    tier_fail(n, "vector-clock cut inconsistency");
  }

  // Conservation-based cut check (O(n), valid at any scale).
  const Topology& topology = harness.topology();
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t recorded = 0;
  for (const ProcessSnapshot& snapshot : wave->state.take_all()) {
    ByteReader reader(snapshot.state);
    const auto s = reader.u64();
    const auto r = reader.u64();
    if (!s.ok() || !r.ok()) tier_fail(n, "undecodable state");
    sent += s.value();
    received += r.value();
    for (const ChannelState& channel : snapshot.in_channels) {
      if (!topology.channel(channel.channel).is_control) {
        recorded += channel.messages.size();
      }
    }
  }
  if (sent != received + recorded) tier_fail(n, "conservation broken");

  harness.shutdown();
  const auto transport =
      harness.tcp().metrics().snapshot(harness.tcp().now()).transport;
  if (transport.epoll_wakeups == 0) tier_fail(n, "no epoll wakeups counted");
  char label[160];
  std::snprintf(label, sizeof label,
                "tier n=%u fanout=%u sockets=%zu channels=%zu halt "
                "wall_ms=%.2f",
                n, kTierFanout, harness.tcp().data_socket_count(), channels,
                halt_ms);
  record_metrics(label, harness.tcp().metrics(), harness.tcp().now());
  return {run_ms, halt_ms};
}

std::vector<std::uint32_t> tier_sizes() {
  std::vector<std::uint32_t> sizes = {256, 1024};
  const char* env = std::getenv("DDBG_SOAK_N");
  if (env == nullptr || *env == '\0') return sizes;
  sizes.clear();
  std::stringstream stream(env);
  std::string item;
  while (std::getline(stream, item, ',')) {
    sizes.push_back(static_cast<std::uint32_t>(std::stoul(item)));
  }
  return sizes;
}

void print_tier_table() {
  print_header(
      "Tier halt waves over TCP loopback",
      "Ring users forward hop-limited tokens under a fanout-16 debugger\n"
      "tier; every marker, snapshot and ack crosses a multiplexed socket.\n"
      "Each wave verified complete and conservation-clean (vector-clock\n"
      "consistent at the smallest N).");
  print_row("%8s %7s %12s %12s", "n", "fanout", "run ms", "halt ms");
  for (const std::uint32_t n : tier_sizes()) {
    const auto [run_ms, halt_ms] = run_tier_config(n);
    print_row("%8u %7u %12.1f %12.1f", n, kTierFanout, run_ms, halt_ms);
  }
  print_row("\n(every wave above completed on a verified cut over TCP)");
}

void BM_Incast(benchmark::State& state) {
  const auto messages = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    const auto [wall_ms, rate] =
        run_incast(4, kIncastLanes, messages, /*record=*/false);
    benchmark::DoNotOptimize(rate);
  }
  state.SetLabel("4 senders, " + std::to_string(kIncastLanes) + " lanes");
}
BENCHMARK(BM_Incast)->Arg(500)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ddbg::bench

int main(int argc, char** argv) {
  ddbg::bench::print_incast_table();
  ddbg::bench::print_tier_table();
  ddbg::bench::write_metrics_json("tcp_soak");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
