// Experiment E4 (figure 4, section 3.5): the SCP set of a conjunctive
// predicate splits into ordered-SCP (detectable by Linked Predicates) and
// unordered-SCP (not detectable in time).  The ordered fraction grows with
// the amount of communication between the two processes, because messages
// are what create happened-before edges.
#include <benchmark/benchmark.h>

#include "analysis/scp.hpp"
#include "analysis/trace.hpp"
#include "bench/bench_util.hpp"

namespace ddbg::bench {
namespace {

struct ScpRow {
  std::int64_t interval_ms;
  ScpAnalysis vclock_analysis;
  bool mechanisms_agree = false;
};

ScpRow run_rate(std::int64_t interval_ms, std::uint64_t seed) {
  Trace trace;
  GossipConfig gossip;
  gossip.send_interval = Duration::millis(interval_ms);
  gossip.max_sends = 40;

  HarnessConfig config;
  config.seed = seed;
  config.shim_options.trace_sink = trace.sink();
  SimDebugHarness harness(Topology::complete(2), make_gossip(2, gossip),
                          std::move(config));
  harness.sim().run_for(Duration::seconds(60));
  record_metrics("interval_ms=" + std::to_string(interval_ms),
                 harness.sim());

  const auto sp0 = SimplePredicate::message_sent(ProcessId(0));
  const auto sp1 = SimplePredicate::message_sent(ProcessId(1));

  ScpRow row;
  row.interval_ms = interval_ms;
  row.vclock_analysis = analyze_scp(trace, sp0, sp1);
  const ScpAnalysis graph_analysis = analyze_scp_via_graph(trace, sp0, sp1);
  row.mechanisms_agree =
      graph_analysis.ordered_pairs == row.vclock_analysis.ordered_pairs &&
      graph_analysis.unordered_pairs == row.vclock_analysis.unordered_pairs;
  return row;
}

void print_table() {
  print_header(
      "E4: ordered-SCP vs unordered-SCP (figure 4)",
      "Two processes, SP1 = p0:sent, SP2 = p1:sent; every satisfaction pair "
      "classified by\nvector clocks (cross-checked against an explicit "
      "happened-before graph).\nPaper claim: SCP splits into ordered and "
      "unordered pairs; only ordered pairs are\ndetectable by Linked "
      "Predicates.  Satisfactions that fall within one message\n"
      "delivery latency of each other are concurrent (figure 4's "
      "unordered pair).");
  print_row("%12s %8s %8s %10s %12s %16s %10s", "interval_ms", "|SP1|",
            "|SP2|", "ordered", "unordered", "ordered_frac", "agree");
  for (const std::int64_t interval : {1, 2, 5, 10, 25, 50}) {
    const ScpRow row = run_rate(interval, 7);
    print_row("%12lld %8zu %8zu %10zu %12zu %16.3f %10s",
              static_cast<long long>(interval),
              row.vclock_analysis.satisfactions_sp1,
              row.vclock_analysis.satisfactions_sp2,
              row.vclock_analysis.ordered_pairs,
              row.vclock_analysis.unordered_pairs,
              row.vclock_analysis.ordered_fraction(),
              row.mechanisms_agree ? "yes" : "NO");
  }
  print_row("\n(sends bursting faster than the delivery latency overlap "
            "concurrently -> more\nunordered pairs; once the interval "
            "exceeds the latency each message orders the\nnext batch and "
            "the ordered fraction saturates)");
}

void BM_ScpClassification(benchmark::State& state) {
  // Wall cost of classifying all pairs of a recorded trace.
  Trace trace;
  GossipConfig gossip;
  gossip.max_sends = static_cast<std::uint32_t>(state.range(0));
  HarnessConfig config;
  config.seed = 3;
  config.shim_options.trace_sink = trace.sink();
  SimDebugHarness harness(Topology::complete(2), make_gossip(2, gossip),
                          std::move(config));
  harness.sim().run_for(Duration::seconds(60));
  const auto sp0 = SimplePredicate::message_sent(ProcessId(0));
  const auto sp1 = SimplePredicate::message_sent(ProcessId(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_scp(trace, sp0, sp1).ordered_pairs);
  }
}
BENCHMARK(BM_ScpClassification)->Arg(20)->Arg(80)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ddbg::bench

int main(int argc, char** argv) {
  ddbg::bench::print_table();
  ddbg::bench::write_metrics_json("e4_scp");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
