# Included from the top-level CMakeLists (not add_subdirectory) so that
# build/bench/ contains only the experiment binaries — `for b in
# build/bench/*; do $b; done` regenerates every experiment with no clutter.

macro(ddbg_bench name)
  add_executable(${name} bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE
    ddbg_debugger ddbg_analysis ddbg_baselines ddbg_workload
    benchmark::benchmark)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endmacro()

ddbg_bench(bench_e1_equivalence)
ddbg_bench(bench_e2_acyclic)
ddbg_bench(bench_e3_debugger_model)
ddbg_bench(bench_e4_scp)
ddbg_bench(bench_e5_infrequent)
ddbg_bench(bench_e6_linked_predicates)
ddbg_bench(bench_e7_overhead)
ddbg_bench(bench_e8_unordered_cp)
ddbg_bench(bench_e9_halt_order)
ddbg_bench(bench_e10_naive_halt)
ddbg_bench(bench_ablation_routing)
ddbg_bench(bench_scale)
ddbg_bench(bench_tcp_soak)
ddbg_bench(bench_replay)
target_link_libraries(bench_replay PRIVATE ddbg_replay)
