// Experiment E7 (section 4): steady-state overhead of debugging
// architectures.
//
//   plain     — the uninstrumented application
//   shim      — marker-based debugging agent, no vector clocks
//   shim+vc   — marker-based agent with piggybacked vector clocks
//   hub       — BUGNET/Schiffenbaur-style central rerouting
//
// Paper claim: rerouting through a central hub roughly doubles the message
// count, adds a second hop of latency to every application message, and
// perturbs the program; the marker-based approach costs nothing while no
// wave is in progress (vector clocks add bytes, not messages).
#include <benchmark/benchmark.h>

#include "baselines/central_hub.hpp"
#include "bench/bench_util.hpp"

namespace ddbg::bench {
namespace {

constexpr Duration kRun = Duration::millis(300);

struct OverheadRow {
  const char* config;
  std::uint64_t app_progress = 0;  // items the application itself got done
  std::uint64_t messages = 0;      // wire messages
  std::uint64_t bytes = 0;         // wire bytes
  double hops_per_payload = 1.0;
};

std::uint64_t gossip_progress(Simulation& sim, std::uint32_t n) {
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    Process* process = &sim.process(ProcessId(i));
    if (auto* shim = dynamic_cast<DebugShim*>(process)) {
      total += dynamic_cast<GossipProcess&>(shim->user()).received();
    } else if (auto* gossip = dynamic_cast<GossipProcess*>(process)) {
      total += gossip->received();
    }
  }
  return total;
}

OverheadRow run_plain(std::uint32_t n, std::uint64_t seed) {
  Topology topology = Topology::ring(n);
  SimulationConfig config;
  config.seed = seed;
  Simulation sim(topology, make_gossip(n, GossipConfig{}), std::move(config));
  sim.run_for(kRun);
  record_metrics("plain n=" + std::to_string(n), sim);
  return OverheadRow{"plain", gossip_progress(sim, n),
                     sim.stats().messages_sent, sim.stats().bytes_sent, 1.0};
}

OverheadRow run_shim(std::uint32_t n, std::uint64_t seed, bool vclocks) {
  HarnessConfig config;
  config.seed = seed;
  config.shim_options.stamp_vector_clocks = vclocks;
  SimDebugHarness harness(Topology::ring(n), make_gossip(n, GossipConfig{}),
                          std::move(config));
  harness.sim().run_for(kRun);
  record_metrics(std::string(vclocks ? "shim+vc" : "shim") +
                     " n=" + std::to_string(n),
                 harness.sim());
  return OverheadRow{vclocks ? "shim+vc" : "shim",
                     gossip_progress(harness.sim(), n),
                     harness.sim().stats().messages_sent,
                     harness.sim().stats().bytes_sent, 1.0};
}

OverheadRow run_hub(std::uint32_t n, std::uint64_t seed) {
  const HubTopology hub_info = make_hub_topology(Topology::ring(n));
  SimulationConfig config;
  config.seed = seed;
  Simulation sim(hub_info.topology,
                 wrap_for_hub(hub_info, make_gossip(n, GossipConfig{})),
                 std::move(config));
  sim.run_for(kRun);
  std::uint64_t progress = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    auto& client = dynamic_cast<HubClientShim&>(sim.process(ProcessId(i)));
    (void)client;
  }
  // Progress: received counts live inside the wrapped users; walk clients.
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::string state =
        sim.process(ProcessId(i)).describe_state();  // "sent=X received=Y"
    const auto pos = state.find("received=");
    if (pos != std::string::npos) {
      progress += std::strtoull(state.c_str() + pos + 9, nullptr, 10);
    }
  }
  record_metrics("hub n=" + std::to_string(n), sim);
  return OverheadRow{"hub", progress, sim.stats().messages_sent,
                     sim.stats().bytes_sent, 2.0};
}

void print_table() {
  print_header(
      "E7: steady-state overhead of debugging architectures (section 4)",
      "Gossip ring, 300ms of virtual time, no halting wave in progress.\n"
      "Paper claim: central-hub rerouting ~doubles messages and hops; the "
      "marker-based\napproach adds no messages while idle (vector clocks "
      "add bytes only).");
  print_row("%4s %10s %12s %12s %12s %10s %14s", "n", "config", "delivered",
            "messages", "bytes", "hops", "bytes/msg");
  for (const std::uint32_t n : {4u, 8u, 16u}) {
    const OverheadRow rows[] = {run_plain(n, 1), run_shim(n, 1, false),
                                run_shim(n, 1, true), run_hub(n, 1)};
    for (const OverheadRow& row : rows) {
      print_row("%4u %10s %12llu %12llu %12llu %10.1f %14.1f", n, row.config,
                static_cast<unsigned long long>(row.app_progress),
                static_cast<unsigned long long>(row.messages),
                static_cast<unsigned long long>(row.bytes),
                row.hops_per_payload,
                row.messages == 0
                    ? 0.0
                    : static_cast<double>(row.bytes) /
                          static_cast<double>(row.messages));
    }
  }
  print_row("\n(hub: ~2x messages and 2 hops per payload; shim matches "
            "plain's message count)");
}

void BM_SteadyState(benchmark::State& state) {
  // Wall-clock cost of simulating 300ms under each configuration.
  const std::uint32_t n = 8;
  const int config = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  const char* labels[] = {"plain", "shim", "shim+vc", "hub"};
  for (auto _ : state) {
    OverheadRow row;
    switch (config) {
      case 0: row = run_plain(n, seed); break;
      case 1: row = run_shim(n, seed, false); break;
      case 2: row = run_shim(n, seed, true); break;
      default: row = run_hub(n, seed); break;
    }
    ++seed;
    benchmark::DoNotOptimize(row.messages);
  }
  state.SetLabel(labels[config]);
}
BENCHMARK(BM_SteadyState)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ddbg::bench

int main(int argc, char** argv) {
  ddbg::bench::print_table();
  ddbg::bench::write_metrics_json("e7_overhead");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
