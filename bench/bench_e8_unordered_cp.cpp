// Experiment E8 (section 3.5): the unordered interpretation of Conjunctive
// Predicates cannot halt the computation in time.
//
// Both processes increment a watched counter; the breakpoint is
// "p0:sent>=K & p1:sent>=K".  Under the ordered interpretation the
// permutation chains halt at the completing event; under the unordered
// interpretation each satisfaction is first reported to the debugger, which
// halts only after gathering all of them.  "Overshoot" is how far each
// counter ran past K before its process froze — the paper's "impossible for
// the processes to halt soon enough to preserve the meaningful states".
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"

namespace ddbg::bench {
namespace {

constexpr std::int64_t kThreshold = 5;

struct OvershootRow {
  bool halted = false;
  std::int64_t overshoot_p0 = 0;
  std::int64_t overshoot_p1 = 0;
  double halt_latency_ms = 0;
};

OvershootRow run_mode(bool unordered, Duration control_latency,
                      std::uint64_t seed) {
  GossipConfig gossip;
  gossip.send_interval = Duration::millis(2);

  HarnessConfig config;
  config.seed = seed;
  config.latency =
      uniform_latency(control_latency, control_latency + Duration::millis(1));
  SimDebugHarness harness(Topology::complete(2), make_gossip(2, gossip),
                          std::move(config));
  std::string expr = "p0:sent>=" + std::to_string(kThreshold) +
                     " & p1:sent>=" + std::to_string(kThreshold);
  if (unordered) expr += " [unordered]";
  auto bp = harness.session().set_breakpoint(expr);
  OvershootRow row;
  if (!bp.ok()) return row;
  const TimePoint start = harness.sim().now();
  auto wave = harness.session().wait_for_halt(Duration::seconds(120));
  row.halted = wave.has_value();
  if (!wave.has_value()) return row;
  row.halt_latency_ms = (wave->completed_at - start).to_millis();
  const auto& p0 =
      dynamic_cast<GossipProcess&>(harness.shim(ProcessId(0)).user());
  const auto& p1 =
      dynamic_cast<GossipProcess&>(harness.shim(ProcessId(1)).user());
  row.overshoot_p0 = static_cast<std::int64_t>(p0.sent()) - kThreshold;
  row.overshoot_p1 = static_cast<std::int64_t>(p1.sent()) - kThreshold;
  record_metrics(std::string(unordered ? "unordered" : "ordered") +
                     " latency_ms=" +
                     std::to_string(control_latency.ns / 1000000),
                 harness.sim());
  return row;
}

void print_table() {
  print_header(
      "E8: ordered vs unordered conjunction (section 3.5)",
      "Breakpoint p0:sent>=5 & p1:sent>=5; overshoot = how far each counter "
      "ran past 5\nbefore its process froze.  Paper claim: the unordered "
      "interpretation requires a\ngather at the debugger and cannot preserve "
      "the states; the ordered interpretation\n(compiled to Linked "
      "Predicates) halts at the satisfying event.");
  print_row("%12s %12s %14s %14s %12s", "latency_ms", "mode", "overshoot_p0",
            "overshoot_p1", "halt_ms");
  for (const std::int64_t latency_ms : {1, 4, 16, 64}) {
    for (const bool unordered : {false, true}) {
      const OvershootRow row =
          run_mode(unordered, Duration::millis(latency_ms), 21);
      print_row("%12lld %12s %14lld %14lld %12.2f",
                static_cast<long long>(latency_ms),
                unordered ? "unordered" : "ordered",
                static_cast<long long>(row.overshoot_p0),
                static_cast<long long>(row.overshoot_p1),
                row.halted ? row.halt_latency_ms : -1.0);
    }
  }
  print_row("\n(both modes pay the breakpoint-arming delay, but the ordered "
            "interpretation halts\nat the satisfying event plus one marker "
            "flight, while the unordered gather adds a\nround trip through "
            "the debugger — its extra overshoot grows with latency)");
}

void BM_ConjunctionModes(benchmark::State& state) {
  const bool unordered = state.range(0) == 1;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_mode(unordered, Duration::millis(4), seed++).halted);
  }
  state.SetLabel(unordered ? "unordered" : "ordered");
}
BENCHMARK(BM_ConjunctionModes)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ddbg::bench

int main(int argc, char** argv) {
  ddbg::bench::print_table();
  ddbg::bench::write_metrics_json("e8_unordered_cp");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
