// Experiment E6 (section 3.6): Linked-Predicate detection cost — predicate
// markers and detection-to-halt latency as a function of chain length, on a
// ring (adjacent stages ship markers on direct channels) and on a star
// (markers routed through the debugger).
#include <benchmark/benchmark.h>

#include <sstream>

#include "bench/bench_util.hpp"

namespace ddbg::bench {
namespace {

std::string chain_expression(std::uint32_t length) {
  // p1:event(token) -> p2:event(token) -> ...
  std::ostringstream out;
  for (std::uint32_t i = 1; i <= length; ++i) {
    if (i > 1) out << " -> ";
    out << "p" << i << ":event(token)";
  }
  return out.str();
}

struct LpRow {
  bool halted = false;
  double time_to_halt_ms = 0;
  std::uint64_t predicate_markers = 0;  // direct app-channel markers
  std::uint64_t route_hops = 0;         // control messages total (incl routing)
};

LpRow run_chain(const Topology& topology, std::uint32_t n,
                std::uint32_t chain_length, std::uint64_t seed) {
  TokenRingConfig ring_config;
  ring_config.rounds = 1000;
  HarnessConfig config;
  config.seed = seed;
  SimDebugHarness harness(topology, make_token_ring(n, ring_config),
                          std::move(config));
  const TimePoint start = harness.sim().now();
  auto bp =
      harness.session().set_breakpoint(chain_expression(chain_length));
  LpRow row;
  if (!bp.ok()) return row;
  auto wave = harness.session().wait_for_halt(Duration::seconds(120));
  row.halted = wave.has_value();
  if (wave.has_value()) {
    row.time_to_halt_ms = (wave->completed_at - start).to_millis();
  }
  row.predicate_markers = harness.sim().stats().predicate_markers_sent;
  row.route_hops = harness.sim().stats().control_messages_sent;
  record_metrics("ring chain=" + std::to_string(chain_length),
                 harness.sim());
  return row;
}

void print_table() {
  print_header(
      "E6: Linked-Predicate detection (section 3.6)",
      "Token ring; chain p1:event(token) -> p2:... of increasing depth.\n"
      "'ring' ships predicate markers on direct channels (adjacent stages); "
      "'star'\nhas no direct channels between spokes, so markers are routed "
      "through the debugger.\nPaper claim: one marker per stage transition; "
      "detection follows the happened-before chain.");
  print_row("%8s %8s %8s %14s %14s %12s", "topo", "n", "chain",
            "direct_mkrs", "ctl_msgs", "halt_ms");
  for (const std::uint32_t chain : {1u, 2u, 3u, 4u, 5u, 6u}) {
    const std::uint32_t n = 8;
    const LpRow ring = run_chain(Topology::ring(n), n, chain, 11);
    print_row("%8s %8u %8u %14llu %14llu %12.2f", "ring", n, chain,
              static_cast<unsigned long long>(ring.predicate_markers),
              static_cast<unsigned long long>(ring.route_hops),
              ring.halted ? ring.time_to_halt_ms : -1.0);
  }
  for (const std::uint32_t chain : {2u, 4u, 6u}) {
    const std::uint32_t n = 8;
    // Star: token still travels a logical ring via the hub?  A star has no
    // ring channels; instead reuse the ring workload on a ring topology but
    // force routing by chaining non-adjacent processes.
    std::ostringstream expr;
    // p1 -> p4 -> p7: no direct ring channels between them.
    const std::uint32_t hops[] = {1, 4, 7};
    for (std::uint32_t i = 0; i < std::min<std::uint32_t>(chain / 2, 3u); ++i) {
      if (i > 0) expr << " -> ";
      expr << "p" << hops[i] << ":event(token)";
    }
    TokenRingConfig ring_config;
    ring_config.rounds = 1000;
    HarnessConfig config;
    config.seed = 13;
    SimDebugHarness harness(Topology::ring(n), make_token_ring(n, ring_config),
                            std::move(config));
    const TimePoint start = harness.sim().now();
    auto bp = harness.session().set_breakpoint(expr.str());
    if (!bp.ok()) continue;
    auto wave = harness.session().wait_for_halt(Duration::seconds(120));
    print_row("%8s %8u %8u %14llu %14llu %12.2f", "routed", n, chain / 2,
              static_cast<unsigned long long>(
                  harness.sim().stats().predicate_markers_sent),
              static_cast<unsigned long long>(
                  harness.sim().stats().control_messages_sent),
              wave.has_value() ? (wave->completed_at - start).to_millis()
                               : -1.0);
  }
  print_row("\n(direct markers grow with chain depth on the ring; "
            "non-adjacent chains route via the debugger instead)");
}

void BM_LpDetection(benchmark::State& state) {
  const auto chain = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_chain(Topology::ring(8), 8, chain, seed++).halted);
  }
}
BENCHMARK(BM_LpDetection)->Arg(2)->Arg(6)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ddbg::bench

int main(int argc, char** argv) {
  ddbg::bench::print_table();
  ddbg::bench::write_metrics_json("e6_linked_predicates");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
