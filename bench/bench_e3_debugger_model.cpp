// Experiment E3 (figure 3, section 2.2.3): the debugger-process model.
// Halt latency, marker counts and control traffic across topology families
// and sizes — the cost profile of consistent halting in the extended model.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"

namespace ddbg::bench {
namespace {

Topology make_topology(const std::string& family, std::uint32_t n,
                       std::uint64_t seed) {
  if (family == "ring") return Topology::ring(n);
  if (family == "star") return Topology::star(n);
  if (family == "pipeline") return Topology::pipeline(n);
  Rng rng(seed);
  return Topology::random_strongly_connected(n, 2 * n, rng);
}

void print_table() {
  print_header(
      "E3: the extended model (figure 3)",
      "Halt latency and marker cost from a debugger-initiated wave, per "
      "topology family and size.\nPaper claim: one debugger process with "
      "control channels suffices for any topology;\nmarkers per wave are "
      "bounded by the channel count.");
  print_row("%10s %4s %10s %12s %14s %14s %12s", "family", "n", "lat_ms",
            "halt_mkrs", "channels+ctl", "chan_state", "complete");
  for (const std::string family : {"ring", "star", "pipeline", "random"}) {
    for (const std::uint32_t n : {2u, 4u, 8u, 16u, 32u, 64u}) {
      const Topology topology = make_topology(family, n, n);
      const std::size_t total_channels =
          topology.num_channels() + 2 * topology.num_processes();
      const std::string label = family + " n=" + std::to_string(n);
      const HaltRunMetrics metrics = run_halt_wave(
          topology, make_gossip(n, GossipConfig{}), n, Duration::millis(20),
          Duration::seconds(60), label.c_str());
      print_row("%10s %4u %10.2f %12llu %14zu %14zu %12s", family.c_str(), n,
                metrics.halt_latency_ms,
                static_cast<unsigned long long>(metrics.halt_markers),
                total_channels, metrics.channel_state_messages,
                metrics.completed ? "yes" : "NO");
    }
  }
  print_row("\n(halt_mkrs <= channels+ctl: each channel carries at most one "
            "marker per wave)");
}

void BM_HaltLatencyByFamily(benchmark::State& state) {
  const std::uint32_t n = 16;
  const char* families[] = {"ring", "star", "pipeline", "random"};
  const std::string family = families[state.range(0)];
  std::uint64_t seed = 1;
  double latency = 0;
  std::uint64_t waves = 0;
  for (auto _ : state) {
    const HaltRunMetrics metrics =
        run_halt_wave(make_topology(family, n, seed),
                      make_gossip(n, GossipConfig{}), seed, Duration::millis(20));
    ++seed;
    latency += metrics.halt_latency_ms;
    ++waves;
  }
  state.SetLabel(family);
  state.counters["virtual_halt_latency_ms"] =
      benchmark::Counter(latency / static_cast<double>(waves));
}
BENCHMARK(BM_HaltLatencyByFamily)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ddbg::bench

int main(int argc, char** argv) {
  ddbg::bench::print_table();
  ddbg::bench::write_metrics_json("e3_debugger_model");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
