// Ablation: predicate-marker routing policy.
//
// DESIGN.md's routing decision: ship predicate markers on direct
// application channels when they exist, falling back to a hop through the
// debugger process otherwise.  This bench ablates the decision by forcing
// all markers through the debugger and compares detection latency and
// message counts on chains where direct channels exist (a token ring with
// adjacent-stage chains).
#include <benchmark/benchmark.h>

#include <sstream>

#include "bench/bench_util.hpp"

namespace ddbg::bench {
namespace {

struct RoutingRow {
  bool halted = false;
  double time_to_halt_ms = 0;
  std::uint64_t direct_markers = 0;
  std::uint64_t control_messages = 0;
};

RoutingRow run_chain(std::uint32_t chain, bool force_routed,
                     std::uint64_t seed) {
  const std::uint32_t n = 8;
  TokenRingConfig ring_config;
  ring_config.rounds = 1000;
  HarnessConfig config;
  config.seed = seed;
  config.shim_options.route_markers_via_debugger = force_routed;
  SimDebugHarness harness(Topology::ring(n), make_token_ring(n, ring_config),
                          std::move(config));
  std::ostringstream expr;
  for (std::uint32_t i = 1; i <= chain; ++i) {
    if (i > 1) expr << " -> ";
    expr << "p" << i << ":event(token)";
  }
  const TimePoint start = harness.sim().now();
  auto bp = harness.session().set_breakpoint(expr.str());
  RoutingRow row;
  if (!bp.ok()) return row;
  auto wave = harness.session().wait_for_halt(Duration::seconds(120));
  row.halted = wave.has_value();
  if (wave.has_value()) {
    row.time_to_halt_ms = (wave->completed_at - start).to_millis();
  }
  row.direct_markers = harness.sim().stats().predicate_markers_sent;
  row.control_messages = harness.sim().stats().control_messages_sent;
  record_metrics(std::string(force_routed ? "routed" : "direct") +
                     " chain=" + std::to_string(chain),
                 harness.sim());
  return row;
}

void print_table() {
  print_header(
      "ABLATION: predicate-marker routing (direct vs via-debugger)",
      "Token ring, adjacent-stage chains where direct channels exist.\n"
      "Design decision under test: prefer direct application channels for "
      "predicate\nmarkers; the ablation forces every marker through the "
      "debugger instead.");
  print_row("%8s %10s %14s %14s %12s", "chain", "policy", "direct_mkrs",
            "ctl_msgs", "halt_ms");
  for (const std::uint32_t chain : {2u, 4u, 6u}) {
    for (const bool forced : {false, true}) {
      const RoutingRow row = run_chain(chain, forced, 17);
      print_row("%8u %10s %14llu %14llu %12.2f", chain,
                forced ? "routed" : "direct",
                static_cast<unsigned long long>(row.direct_markers),
                static_cast<unsigned long long>(row.control_messages),
                row.halted ? row.time_to_halt_ms : -1.0);
    }
  }
  print_row("\n(routing through the debugger doubles the marker's hop count "
            "and adds control\ntraffic, but detection still works — the "
            "fallback is correct, just costlier)");
}

void BM_RoutingPolicy(benchmark::State& state) {
  const bool forced = state.range(0) == 1;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_chain(4, forced, seed++).halted);
  }
  state.SetLabel(forced ? "routed" : "direct");
}
BENCHMARK(BM_RoutingPolicy)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ddbg::bench

int main(int argc, char** argv) {
  ddbg::bench::print_table();
  ddbg::bench::write_metrics_json("ablation_routing");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
