// Experiment E9 (section 2.2.4): halt-order information.
//
// Each process appends its name to the halt marker before forwarding, so a
// received marker describes which processes already halted.  This bench
// verifies the paths are *true* halt orders (every process named in a path
// really halted earlier, checked against on_halted timestamps) and reports
// path-length statistics per topology.
#include <benchmark/benchmark.h>

#include <map>

#include "analysis/stats.hpp"
#include "bench/bench_util.hpp"

namespace ddbg::bench {
namespace {

struct HaltOrderRow {
  bool complete = false;
  bool paths_truthful = false;  // every path prefix halted earlier
  double mean_path_len = 0;
  double max_path_len = 0;
};

HaltOrderRow run_topology(const Topology& topology, std::uint32_t n,
                          bool spontaneous, std::uint64_t seed) {
  auto halt_times = std::make_shared<std::map<ProcessId, TimePoint>>();
  Simulation* sim_ptr = nullptr;

  HarnessConfig config;
  config.seed = seed;
  // Capture per-process halt instants.
  struct Tracker {
    std::shared_ptr<std::map<ProcessId, TimePoint>> times;
    Simulation** sim;
    ProcessId next{0};
  };
  // on_halted carries no process id, so bind one callback per shim through
  // wrap order: instead, record via describe — simpler: use local report.
  config.shim_options.local_halt_report =
      [halt_times, &sim_ptr](ProcessId p, std::uint64_t,
                             const ProcessSnapshot& snapshot) {
        (*halt_times)[p] = snapshot.captured_at;
        (void)sim_ptr;
      };
  SimDebugHarness harness(topology, make_gossip(n, GossipConfig{}),
                          std::move(config));
  sim_ptr = &harness.sim();
  harness.sim().run_for(Duration::millis(20));
  if (spontaneous) {
    harness.sim().post(ProcessId(0), [](ProcessContext& ctx, Process& process) {
      dynamic_cast<DebugShim&>(process).initiate_halt(ctx);
    });
  } else {
    harness.session().halt();
  }
  auto wave = harness.session().wait_for_halt(Duration::seconds(60));

  HaltOrderRow row;
  row.complete = wave.has_value();
  if (!wave.has_value()) return row;

  row.paths_truthful = true;
  std::vector<double> lengths;
  const ProcessId d = harness.debugger_id();
  for (const auto& [p, path] : wave->halt_paths) {
    lengths.push_back(static_cast<double>(path.size()));
    const TimePoint own = halt_times->at(p);
    for (const ProcessId predecessor : path) {
      if (predecessor == d) continue;  // the debugger never halts
      auto it = halt_times->find(predecessor);
      if (it == halt_times->end() || it->second > own) {
        row.paths_truthful = false;
      }
    }
  }
  const Summary summary = summarize(lengths);
  row.mean_path_len = summary.mean;
  row.max_path_len = summary.max;
  record_metrics(std::string(spontaneous ? "p0" : "debugger") +
                     " n=" + std::to_string(n),
                 harness.sim());
  return row;
}

void print_table() {
  print_header(
      "E9: halt-order information (section 2.2.4)",
      "Halt markers accumulate the names of already-halted processes.\n"
      "'truthful' = every process named in a path halted no later than the "
      "path's receiver.\nPaper claim: the marker path tells the programmer "
      "the order in which processes halted.");
  print_row("%10s %4s %12s %12s %14s %12s", "family", "n", "initiator",
            "truthful", "mean_path", "max_path");
  for (const std::uint32_t n : {4u, 8u, 16u, 32u}) {
    for (const bool spontaneous : {false, true}) {
      Rng rng(n);
      const struct {
        const char* name;
        Topology topology;
      } topologies[] = {
          {"ring", Topology::ring(n)},
          {"star", Topology::star(n)},
          {"random", Topology::random_strongly_connected(n, n, rng)},
      };
      for (const auto& entry : topologies) {
        const HaltOrderRow row =
            run_topology(entry.topology, n, spontaneous, n);
        print_row("%10s %4u %12s %12s %14.2f %12.0f", entry.name, n,
                  spontaneous ? "p0" : "debugger",
                  row.complete ? (row.paths_truthful ? "yes" : "NO")
                               : "incomplete",
                  row.mean_path_len, row.max_path_len);
      }
    }
  }
  print_row("\n(debugger-initiated waves have short paths — one control "
            "hop; spontaneous waves\ngrow paths along the application "
            "topology)");
}

void BM_HaltOrderCollection(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_topology(Topology::ring(n), n, false, seed++).complete);
  }
}
BENCHMARK(BM_HaltOrderCollection)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ddbg::bench

int main(int argc, char** argv) {
  ddbg::bench::print_table();
  ddbg::bench::write_metrics_json("e9_halt_order");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
