// Shared helpers for the experiment benches.
//
// Every bench binary regenerates one experiment from DESIGN.md's index: it
// prints a paper-style table of the experiment's rows (deterministic,
// virtual-time metrics from the simulator) and then runs google-benchmark
// timings for the wall-clock cost of the operations involved.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "debugger/harness.hpp"
#include "workload/behaviors.hpp"

namespace ddbg::bench {

inline void print_header(const char* experiment, const char* claim) {
  std::printf("\n==== %s ====\n%s\n\n", experiment, claim);
}

inline void print_row(const char* format, ...) {
  va_list args;
  va_start(args, format);
  std::vfprintf(stdout, format, args);
  va_end(args);
  std::printf("\n");
}

// Metrics from driving one halting wave to completion on the simulator.
struct HaltRunMetrics {
  bool completed = false;
  double halt_latency_ms = 0;   // virtual time: initiation -> S_h complete
  std::uint64_t halt_markers = 0;
  std::uint64_t control_messages = 0;
  std::uint64_t app_messages = 0;
  std::size_t channel_state_messages = 0;
  std::size_t processes = 0;
};

// Runs `workload` on `topology` (+debugger) for `warmup`, initiates a halt
// from the debugger, and reports wave metrics.
inline HaltRunMetrics run_halt_wave(const Topology& topology,
                                    std::vector<ProcessPtr> processes,
                                    std::uint64_t seed, Duration warmup,
                                    Duration limit = Duration::seconds(60)) {
  HarnessConfig config;
  config.seed = seed;
  SimDebugHarness harness(topology, std::move(processes), std::move(config));
  harness.sim().run_for(warmup);
  const std::uint64_t markers_before = harness.sim().stats().halt_markers_sent;
  const std::uint64_t app_before = harness.sim().stats().app_messages_sent;
  const TimePoint start = harness.sim().now();
  harness.session().halt();
  auto wave = harness.session().wait_for_halt(limit);

  HaltRunMetrics metrics;
  metrics.completed = wave.has_value();
  if (wave.has_value()) {
    metrics.halt_latency_ms = (wave->completed_at - start).to_millis();
    metrics.channel_state_messages = wave->state.total_channel_messages();
    metrics.processes = wave->state.size();
  }
  metrics.halt_markers =
      harness.sim().stats().halt_markers_sent - markers_before;
  metrics.control_messages = harness.sim().stats().control_messages_sent;
  metrics.app_messages = harness.sim().stats().app_messages_sent - app_before;
  return metrics;
}

}  // namespace ddbg::bench
