// Shared helpers for the experiment benches.
//
// Every bench binary regenerates one experiment from DESIGN.md's index: it
// prints a paper-style table of the experiment's rows (deterministic,
// virtual-time metrics from the simulator) and then runs google-benchmark
// timings for the wall-clock cost of the operations involved.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "debugger/harness.hpp"
#include "obs/metrics.hpp"
#include "workload/behaviors.hpp"

namespace ddbg::bench {

inline void print_header(const char* experiment, const char* claim) {
  std::printf("\n==== %s ====\n%s\n\n", experiment, claim);
}

inline void print_row(const char* format, ...) {
  va_list args;
  va_start(args, format);
  std::vfprintf(stdout, format, args);
  va_end(args);
  std::printf("\n");
}

// ---------------------------------------------------------------------------
// Metrics JSON emission.
//
// Each bench binary collects one MetricsRegistry snapshot per labelled table
// row (record_metrics) and writes them as BENCH_<name>.json — an array of
// "ddbg.metrics.v1" snapshots under the "ddbg.bench.metrics.v1" envelope —
// into $DDBG_METRICS_DIR (default: the working directory).  The file is
// written once, after the table and before the google-benchmark timing
// loops; record_metrics calls made by re-runs inside timing loops are
// ignored so the file reflects the deterministic table pass only.
// ---------------------------------------------------------------------------

namespace detail {

struct MetricsSink {
  bool written = false;
  std::vector<std::pair<std::string, std::string>> runs;  // label, json

  static MetricsSink& instance() {
    static MetricsSink sink;
    return sink;
  }
};

}  // namespace detail

// Records a labelled snapshot of `registry` for the bench's JSON output.
inline void record_metrics(std::string label,
                           const obs::MetricsRegistry& registry,
                           TimePoint now) {
  detail::MetricsSink& sink = detail::MetricsSink::instance();
  if (sink.written) return;
  sink.runs.emplace_back(std::move(label),
                         registry.snapshot(now).to_json());
}

inline void record_metrics(std::string label, const Simulation& sim) {
  record_metrics(std::move(label), sim.metrics(), sim.now());
}

// Writes BENCH_<bench_name>.json and freezes the sink.  Safe to call when
// nothing was recorded (writes an empty runs array).
inline void write_metrics_json(const char* bench_name) {
  detail::MetricsSink& sink = detail::MetricsSink::instance();
  if (sink.written) return;
  sink.written = true;
  const char* dir = std::getenv("DDBG_METRICS_DIR");
  std::string path = dir != nullptr && *dir != '\0' ? std::string(dir) : ".";
  path += "/BENCH_";
  path += bench_name;
  path += ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\"schema\":\"ddbg.bench.metrics.v1\",\"bench\":\"%s\","
                  "\"runs\":[",
               bench_name);
  for (std::size_t i = 0; i < sink.runs.size(); ++i) {
    std::fprintf(f, "%s{\"label\":\"%s\",\"metrics\":%s}",
                 i == 0 ? "" : ",", sink.runs[i].first.c_str(),
                 sink.runs[i].second.c_str());
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("metrics written to %s (%zu runs)\n", path.c_str(),
              sink.runs.size());
}

// Metrics from driving one halting wave to completion on the simulator.
struct HaltRunMetrics {
  bool completed = false;
  double halt_latency_ms = 0;   // virtual time: initiation -> S_h complete
  std::uint64_t halt_markers = 0;
  std::uint64_t control_messages = 0;
  std::uint64_t app_messages = 0;
  std::size_t channel_state_messages = 0;
  std::size_t processes = 0;
};

// Runs `workload` on `topology` (+debugger) for `warmup`, initiates a halt
// from the debugger, and reports wave metrics.
inline HaltRunMetrics run_halt_wave(const Topology& topology,
                                    std::vector<ProcessPtr> processes,
                                    std::uint64_t seed, Duration warmup,
                                    Duration limit = Duration::seconds(60),
                                    const char* metrics_label = nullptr) {
  HarnessConfig config;
  config.seed = seed;
  // Chaos knobs: DDBG_FAULT_PLAN / DDBG_FAULT_SEED turn the fault
  // adversary on for any halting bench; unset means the reliable fast
  // paths run untouched and tables stay byte-identical.
  config.faults = FaultPlan::from_env();
  SimDebugHarness harness(topology, std::move(processes), std::move(config));
  harness.sim().run_for(warmup);
  const std::uint64_t markers_before = harness.sim().stats().halt_markers_sent;
  const std::uint64_t app_before = harness.sim().stats().app_messages_sent;
  const TimePoint start = harness.sim().now();
  harness.session().halt();
  auto wave = harness.session().wait_for_halt(limit);

  HaltRunMetrics metrics;
  metrics.completed = wave.has_value();
  if (wave.has_value()) {
    metrics.halt_latency_ms = (wave->completed_at - start).to_millis();
    metrics.channel_state_messages = wave->state.total_channel_messages();
    metrics.processes = wave->state.size();
  }
  metrics.halt_markers =
      harness.sim().stats().halt_markers_sent - markers_before;
  metrics.control_messages = harness.sim().stats().control_messages_sent;
  metrics.app_messages = harness.sim().stats().app_messages_sent - app_before;
  if (metrics_label != nullptr) record_metrics(metrics_label, harness.sim());
  return metrics;
}

}  // namespace ddbg::bench
