// An interactive distributed-debugger session on the *multithreaded*
// runtime: a gossip ring runs on real threads while you set breakpoints,
// halt, inspect and resume from the keyboard.
//
// Commands:
//   break <expr>      set a breakpoint, e.g.  break p1:sent>=20
//   clear <id>        remove a breakpoint
//   halt              halt the computation consistently
//   state             show the halted global state S_h
//   snapshot          take a C&L recording without stopping anything
//   inspect <pid>     query one process's live state
//   hits              list breakpoint hits
//   resume            continue the halted computation
//   quit              shut down
//
// When stdin is closed (e.g. piped), a scripted demo session runs instead.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "debugger/harness.hpp"
#include "workload/behaviors.hpp"

using namespace ddbg;

namespace {

constexpr std::uint32_t kProcesses = 4;
constexpr Duration kWait = Duration::seconds(10);

void show_wave(const DebuggerProcess::WaveInfo& wave) {
  std::printf("%s", wave.state.describe().c_str());
  std::printf("halt order:\n");
  for (const auto& [process, path] : wave.halt_paths) {
    std::printf("  %s via [", to_string(process).c_str());
    for (std::size_t i = 0; i < path.size(); ++i) {
      std::printf("%s%s", i ? "," : "", to_string(path[i]).c_str());
    }
    std::printf("]%s\n", path.empty() ? " (initiator)" : "");
  }
}

bool handle(RuntimeDebugHarness& harness, const std::string& line) {
  std::istringstream input(line);
  std::string command;
  input >> command;
  if (command.empty()) return true;

  if (command == "quit" || command == "exit") return false;

  if (command == "break") {
    std::string expr;
    std::getline(input, expr);
    auto bp = harness.session().set_breakpoint(expr);
    if (bp.ok()) {
      std::printf("breakpoint #%u armed: %s\n", bp.value().value(),
                  expr.c_str());
    } else {
      std::printf("error: %s\n", bp.error().to_string().c_str());
    }
    return true;
  }
  if (command == "clear") {
    std::uint32_t id = 0;
    input >> id;
    harness.session().clear_breakpoint(BreakpointId(id));
    std::printf("breakpoint #%u cleared\n", id);
    return true;
  }
  if (command == "halt") {
    harness.session().halt();
    auto wave = harness.session().wait_for_halt(kWait);
    if (wave.has_value()) {
      std::printf("halted (wave %llu)\n",
                  static_cast<unsigned long long>(wave->id));
    } else {
      std::printf("halt did not complete in time\n");
    }
    return true;
  }
  if (command == "state") {
    auto wave = harness.debugger().latest_halt_wave();
    if (wave.has_value() && wave->complete) {
      show_wave(*wave);
    } else {
      std::printf("no complete halted state; use 'halt' or wait for a "
                  "breakpoint\n");
    }
    return true;
  }
  if (command == "snapshot") {
    auto wave = harness.session().take_snapshot(kWait);
    if (wave.has_value()) {
      std::printf("%s", wave->state.describe().c_str());
    } else {
      std::printf("recording did not complete in time\n");
    }
    return true;
  }
  if (command == "inspect") {
    std::uint32_t pid = 0;
    input >> pid;
    auto report = harness.session().inspect(ProcessId(pid), kWait);
    if (report.has_value()) {
      std::printf("%s: %s\n", to_string(report->process).c_str(),
                  report->description.c_str());
    } else {
      std::printf("no report from p%u\n", pid);
    }
    return true;
  }
  if (command == "hits") {
    for (const auto& hit : harness.session().hits()) {
      std::printf("  #%u at %s: %s\n", hit.breakpoint.value(),
                  to_string(hit.process).c_str(), hit.description.c_str());
    }
    return true;
  }
  if (command == "resume") {
    harness.session().resume();
    std::printf("resumed\n");
    return true;
  }
  std::printf("unknown command '%s'\n", command.c_str());
  return true;
}

void scripted_demo(RuntimeDebugHarness& harness) {
  std::printf("\n(stdin closed; running scripted demo)\n\n");
  const char* script[] = {
      "inspect 0",       "break p2:sent>=10", "hits", "state",
      "resume",          "snapshot",          "halt", "state",
      "resume",          "inspect 1",
  };
  for (const char* line : script) {
    std::printf("ddbg> %s\n", line);
    if (line == std::string("hits") || line == std::string("state")) {
      // Give the breakpoint a moment to fire before reading results.
      Runtime::wait_until(
          [&] { return harness.debugger().latest_halt_complete(); },
          Duration::seconds(5));
    }
    handle(harness, line);
  }
}

}  // namespace

int main() {
  GossipConfig gossip;
  gossip.send_interval = Duration::millis(1);
  RuntimeDebugHarness harness(Topology::ring(kProcesses),
                              make_gossip(kProcesses, gossip));
  harness.start();
  std::printf("gossip ring of %u processes running on %u threads; "
              "type 'halt', 'break p1:sent>=20', ...\n",
              kProcesses, kProcesses + 1);

  std::string line;
  bool interactive = false;
  std::printf("ddbg> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    interactive = true;
    if (!handle(harness, line)) break;
    std::printf("ddbg> ");
    std::fflush(stdout);
  }
  if (!interactive) scripted_demo(harness);
  harness.shutdown();
  std::printf("bye\n");
  return 0;
}
