// An interactive distributed-debugger session over the real control-socket
// protocol: a gossip ring runs on the TCP runtime with a SessionServer
// attached, and this process connects to its own control port like any
// external `ddbg` client would — same parser, same wire format, same
// command set (debugger/session_repl.hpp):
//
//   break <expr>   clear <id>   halt   state   snapshot   inspect <pid>
//   deadlock       hits         metrics        resume     quit
//
// When stdin is closed (e.g. piped), a scripted demo session runs instead.
#include <unistd.h>

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "debugger/harness.hpp"
#include "debugger/session_client.hpp"
#include "debugger/session_repl.hpp"
#include "debugger/session_server.hpp"
#include "workload/behaviors.hpp"

using namespace ddbg;

namespace {

constexpr std::uint32_t kProcesses = 4;

int scripted_demo(SessionClient& client) {
  std::printf("\n(stdin closed; running scripted demo)\n\n");
  const char* script =
      "inspect 0\n"
      "break p2:sent>=10\n"
      "expect breakpoint\n"
      "halt\n"
      "expect halted\n"
      "state\n"
      "hits\n"
      "resume\n"
      "expect resumed\n"
      "snapshot\n"
      "quit\n";
  std::istringstream in(script);
  ReplConfig config;
  config.interactive = false;  // echo commands, stop on first failure
  return run_repl(client, in, std::cout, config);
}

}  // namespace

int main() {
  GossipConfig gossip;
  gossip.send_interval = Duration::millis(1);
  TcpDebugHarness harness(Topology::ring(kProcesses),
                          make_gossip(kProcesses, gossip));

  TcpHost host(harness.tcp());
  SessionServerConfig scfg;
  scfg.num_user_processes = kProcesses;
  SessionServer server(host, harness.debugger(), harness.debugger_id(),
                       &harness.tcp().metrics(), scfg);
  server.set_metrics_json_source([&harness] {
    return harness.tcp().metrics().snapshot(harness.tcp().now()).to_json();
  });
  harness.tcp().set_control_acceptor(server.acceptor());

  if (!harness.start()) {
    std::printf("runtime failed to start\n");
    return 1;
  }
  std::printf("gossip ring of %u processes on the TCP runtime; control "
              "port %u (try `ddbg --port %u` from another terminal)\n",
              kProcesses, harness.tcp().control_port(),
              harness.tcp().control_port());

  SessionClient client;
  if (auto status = client.connect(harness.tcp().control_port());
      !status.ok()) {
    std::printf("connect failed: %s\n", status.error().message().c_str());
    return 1;
  }

  int code = 0;
  if (::isatty(STDIN_FILENO) != 0) {
    ReplConfig config;  // interactive defaults
    code = run_repl(client, std::cin, std::cout, config);
  } else if (std::cin.peek() != std::istream::traits_type::eof()) {
    ReplConfig config;  // piped script: batch semantics
    config.interactive = false;
    code = run_repl(client, std::cin, std::cout, config);
  } else {
    code = scripted_demo(client);
  }

  client.close();
  server.stop();
  harness.shutdown();
  std::printf("bye\n");
  return code;
}
