// Hunting a distributed deadlock with consistent halting.
//
// Four processes share ring-ordered resources; the greedy acquisition
// order deadlocks.  The computation is halted consistently and the
// waits-for analysis runs on S_h — including the recorded channel
// contents, which is what makes the verdict sound (a grant already in
// flight is not a deadlock, and only S_h can see it).
#include <cstdio>

#include "analysis/deadlock.hpp"
#include "debugger/harness.hpp"
#include "workload/resources.hpp"

using namespace ddbg;

namespace {

int analyze(ResourceStrategy strategy, const char* label) {
  std::printf("--- %s acquisition order ---\n", label);
  ResourceRingConfig config;
  config.strategy = strategy;
  SimDebugHarness harness(resource_ring_topology(4),
                          make_resource_ring(4, config));
  harness.sim().run_for(Duration::seconds(1));
  harness.session().halt();
  auto wave = harness.session().wait_for_halt(Duration::seconds(10));
  if (!wave.has_value()) {
    std::fprintf(stderr, "halt did not complete\n");
    return 1;
  }
  std::printf("%s", wave->state.describe().c_str());

  auto report = find_deadlock(wave->state);
  if (!report.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 report.error().to_string().c_str());
    return 1;
  }
  std::printf("blocked: %zu, rescued by in-flight messages: %zu\n",
              report.value().blocked_processes,
              report.value().rescued_by_channel_state);
  if (report.value().deadlocked) {
    std::printf("DEADLOCK — circular wait: ");
    for (std::size_t i = 0; i < report.value().cycle.size(); ++i) {
      std::printf("%s -> ", to_string(report.value().cycle[i]).c_str());
    }
    std::printf("%s\n\n", to_string(report.value().cycle.front()).c_str());
  } else {
    std::printf("no deadlock: the system is live\n\n");
    harness.session().resume();
    harness.sim().run_for(Duration::millis(100));
    std::printf("after resuming 100ms: p0 %s\n\n",
                harness.shim(ProcessId(0)).describe_state().c_str());
  }
  return 0;
}

}  // namespace

int main() {
  if (analyze(ResourceStrategy::kGreedy, "greedy (deadlock-prone)") != 0) {
    return 1;
  }
  return analyze(ResourceStrategy::kPolite,
                 "polite (p0 reverses its order)");
}
