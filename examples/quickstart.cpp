// Quickstart: set a distributed breakpoint on a token ring, halt the whole
// computation consistently, inspect the global state, resume.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "debugger/harness.hpp"
#include "workload/behaviors.hpp"

int main() {
  using namespace ddbg;

  // A 4-process token ring, each wrapped in a debug shim, plus the debugger
  // process d with control channels (the paper's extended model).
  TokenRingConfig ring_config;
  ring_config.rounds = 50;
  SimDebugHarness harness(Topology::ring(4),
                          make_token_ring(4, ring_config));

  // A Linked Predicate: halt when the token has been seen at p1, then
  // (causally later) at p3.
  auto bp = harness.session().set_breakpoint(
      "p1:event(token) -> p3:event(token)");
  if (!bp.ok()) {
    std::fprintf(stderr, "breakpoint error: %s\n",
                 bp.error().to_string().c_str());
    return 1;
  }
  std::printf("breakpoint #%u armed: p1:event(token) -> p3:event(token)\n",
              bp.value().value());

  // Run until the breakpoint fires and the Halting Algorithm assembles a
  // complete, consistent global state S_h.
  auto wave = harness.session().wait_for_halt(Duration::seconds(10));
  if (!wave.has_value()) {
    std::fprintf(stderr, "no halt within the time limit\n");
    return 1;
  }

  std::printf("\n--- halted (wave %llu) at virtual time %s ---\n",
              static_cast<unsigned long long>(wave->id),
              to_string(wave->completed_at).c_str());
  std::printf("%s", wave->state.describe().c_str());

  for (const auto& hit : harness.session().hits()) {
    std::printf("breakpoint #%u hit at %s (%s)\n", hit.breakpoint.value(),
                to_string(hit.process).c_str(), hit.description.c_str());
  }

  // The halt-order information of section 2.2.4: each process's marker path.
  std::printf("\nhalt order (marker paths):\n");
  for (const auto& [process, path] : wave->halt_paths) {
    std::printf("  %s halted via [", to_string(process).c_str());
    for (std::size_t i = 0; i < path.size(); ++i) {
      std::printf("%s%s", i ? "," : "", to_string(path[i]).c_str());
    }
    std::printf("]%s\n", path.empty() ? " (spontaneous initiator)" : "");
  }

  // Resume and let the ring finish.
  harness.session().resume();
  harness.sim().run_for(Duration::seconds(2));
  const auto& p0 = dynamic_cast<TokenRingProcess&>(
      harness.shim(ProcessId(0)).user());
  std::printf("\nresumed; p0 has now seen the token %u times\n",
              p0.tokens_seen());
  return 0;
}
