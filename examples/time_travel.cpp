// Time-travel debugging: halt a distributed bank, carry the complete
// global state S_h away, and re-materialize it later in a brand-new
// system — process states and in-flight transfers included.
//
// This is the practical payoff of the Halting Algorithm's completeness
// guarantee: the naive out-of-band halt of experiment E10 cannot do this,
// because it never captures the channel contents.
#include <cstdio>

#include "debugger/restore.hpp"
#include "workload/behaviors.hpp"

using namespace ddbg;

int main() {
  BankConfig bank;
  bank.initial_balance = 1000;
  constexpr std::uint32_t kBanks = 3;
  const std::int64_t expected =
      static_cast<std::int64_t>(kBanks) * bank.initial_balance;

  GlobalState halted;
  {
    SimDebugHarness original(Topology::complete(kBanks),
                             make_bank(kBanks, bank));
    original.sim().run_for(Duration::millis(40));
    original.session().halt();
    auto wave = original.session().wait_for_halt(Duration::seconds(10));
    if (!wave.has_value()) return 1;
    halted = wave->state;
    std::printf("--- original run halted ---\n%s\n",
                halted.describe().c_str());
  }  // the original system is gone

  std::printf("--- restoring S_h into a fresh system ---\n");
  SimDebugHarness restored(Topology::complete(kBanks),
                           make_bank(kBanks, bank));
  auto status = restore_into(restored, halted);
  if (!status.ok()) {
    std::fprintf(stderr, "restore failed: %s\n",
                 status.error().to_string().c_str());
    return 1;
  }
  std::printf("restored %zu process states and %zu in-flight transfers\n\n",
              halted.size(), halted.total_channel_messages());

  restored.sim().run_for(Duration::millis(40));
  restored.session().halt();
  auto wave = restored.session().wait_for_halt(Duration::seconds(10));
  if (!wave.has_value()) return 1;
  std::printf("--- restored run, halted again later ---\n%s\n",
              wave->state.describe().c_str());

  auto total = BankProcess::total_money(wave->state);
  std::printf("money audit after restore + more transfers: %lld "
              "(expected %lld) %s\n",
              static_cast<long long>(total.value_or(-1)),
              static_cast<long long>(expected),
              total.value_or(-1) == expected ? "- conserved" : "- LOST!");
  return total.value_or(-1) == expected ? 0 : 1;
}
