// Exploring figure 4: which satisfaction pairs of a conjunctive predicate
// are ordered (detectable by a Linked Predicate) and which are unordered?
//
// Two processes exchange messages while both repeatedly satisfy a Simple
// Predicate; the analysis layer classifies every (t1, t2) pair of the SCP
// set by vector clocks and prints a figure-4-style map.
#include <cstdio>

#include "analysis/scp.hpp"
#include "analysis/trace.hpp"
#include "debugger/harness.hpp"
#include "workload/behaviors.hpp"

using namespace ddbg;

int main() {
  Trace trace;
  GossipConfig gossip;
  gossip.send_interval = Duration::millis(2);
  gossip.max_sends = 8;

  HarnessConfig config;
  config.seed = 42;
  config.shim_options.trace_sink = trace.sink();
  SimDebugHarness harness(Topology::complete(2), make_gossip(2, gossip),
                          std::move(config));
  harness.sim().run_for(Duration::seconds(5));

  const auto sp1 = SimplePredicate::message_sent(ProcessId(0));
  const auto sp2 = SimplePredicate::message_sent(ProcessId(1));
  const ScpAnalysis analysis = analyze_scp(trace, sp1, sp2, /*keep_pairs=*/true);

  std::printf("SP1 = p0:sent (%zu satisfactions), SP2 = p1:sent (%zu)\n",
              analysis.satisfactions_sp1, analysis.satisfactions_sp2);
  std::printf("SCP = %zu pairs: %zu ordered, %zu unordered "
              "(ordered fraction %.2f)\n\n",
              analysis.total_pairs(), analysis.ordered_pairs,
              analysis.unordered_pairs, analysis.ordered_fraction());

  // Figure-4-style grid: rows = SP1 satisfactions (p0's virtual times),
  // columns = SP2 satisfactions; '<' first-before-second, '>' the reverse,
  // '.' concurrent (unordered-SCP).
  std::printf("      ");
  for (std::size_t j = 0; j < analysis.satisfactions_sp2; ++j) {
    std::printf("t2%-3zu", j);
  }
  std::printf("\n");
  for (std::size_t i = 0; i < analysis.satisfactions_sp1; ++i) {
    std::printf("t1%-4zu", i);
    for (std::size_t j = 0; j < analysis.satisfactions_sp2; ++j) {
      const ScpPair& pair =
          analysis.pairs[i * analysis.satisfactions_sp2 + j];
      const char mark = pair.order == CausalOrder::kBefore   ? '<'
                        : pair.order == CausalOrder::kAfter  ? '>'
                        : pair.order == CausalOrder::kEqual  ? '='
                                                             : '.';
      std::printf("  %c  ", mark);
    }
    std::printf("\n");
  }
  std::printf("\n'<' / '>' ordered pair (detectable via SP1->SP2 or "
              "SP2->SP1 Linked Predicates)\n");
  std::printf("'.'       unordered pair (figure 4's (t12, t22): no Linked "
              "Predicate can see it)\n");

  // Show one concrete pair of each kind, like the paper's figure.
  for (const ScpPair& pair : analysis.pairs) {
    if (pair.order == CausalOrder::kBefore) {
      std::printf("\nexample ordered pair:   %s  -->  %s\n",
                  pair.first.describe().c_str(),
                  pair.second.describe().c_str());
      break;
    }
  }
  for (const ScpPair& pair : analysis.pairs) {
    if (pair.order == CausalOrder::kConcurrent) {
      std::printf("example unordered pair: %s  ||   %s\n",
                  pair.first.describe().c_str(),
                  pair.second.describe().c_str());
      break;
    }
  }
  return 0;
}
