// Debugging an acyclic producer/consumer pipeline — the paper's figure-2
// scenario.  The basic halting algorithm cannot halt the producer from the
// consumer's side; the debugger process's control channels can.  This
// example demonstrates both, then resumes the pipeline and halts it again
// at a consumer-side breakpoint.
#include <cstdio>

#include "core/debug_shim.hpp"
#include "debugger/harness.hpp"
#include "workload/behaviors.hpp"

using namespace ddbg;

namespace {

void demonstrate_basic_failure() {
  std::printf("--- basic algorithm, no debugger process ---\n");
  PipelineConfig config;
  config.items = 0;  // endless producer
  Topology topology = Topology::pipeline(4);
  Simulation sim(topology, wrap_in_shims(topology, make_pipeline(4, config)));
  sim.run_for(Duration::millis(20));

  // The consumer (p3) decides to halt.
  sim.post(ProcessId(3), [](ProcessContext& ctx, Process& process) {
    dynamic_cast<DebugShim&>(process).initiate_halt(ctx);
  });
  sim.run_for(Duration::millis(300));

  for (std::uint32_t i = 0; i < 4; ++i) {
    auto& shim = dynamic_cast<DebugShim&>(sim.process(ProcessId(i)));
    std::printf("  p%u: %-28s %s\n", i, shim.describe_state().c_str(),
                shim.halted() ? "[HALTED]" : "[still running]");
  }
  std::printf("  -> the halt marker has no path back to the producer "
              "(figure 2's problem)\n\n");
}

int demonstrate_extended_model() {
  std::printf("--- extended model: debugger process d ---\n");
  PipelineConfig config;
  config.items = 0;
  SimDebugHarness harness(Topology::pipeline(4), make_pipeline(4, config));
  harness.sim().run_for(Duration::millis(20));

  harness.session().halt();
  auto wave = harness.session().wait_for_halt(Duration::seconds(10));
  if (!wave.has_value()) {
    std::fprintf(stderr, "halt did not complete\n");
    return 1;
  }
  std::printf("%s", wave->state.describe().c_str());
  std::printf("  -> every stage halted; in-flight items are preserved as "
              "channel state\n\n");

  std::printf("--- resume, then break when the consumer has 40 items ---\n");
  harness.session().resume();
  auto bp = harness.session().set_breakpoint("p3:consumed>=40");
  if (!bp.ok()) {
    std::fprintf(stderr, "bad breakpoint: %s\n",
                 bp.error().to_string().c_str());
    return 1;
  }
  auto second = harness.session().wait_for_halt(Duration::seconds(30));
  if (!second.has_value()) {
    std::fprintf(stderr, "breakpoint never fired\n");
    return 1;
  }
  std::printf("%s", second->state.describe().c_str());
  for (const auto& hit : harness.session().hits()) {
    std::printf("  breakpoint #%u hit at %s: %s\n", hit.breakpoint.value(),
                to_string(hit.process).c_str(), hit.description.c_str());
  }
  return 0;
}

}  // namespace

int main() {
  demonstrate_basic_failure();
  return demonstrate_extended_model();
}
