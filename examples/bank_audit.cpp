// Auditing a distributed bank: the classic motivation for consistent
// global states.  Processes continuously transfer money; an audit that
// reads balances at arbitrary real times sees money appear or vanish, but
// a halted state S_h (or a recorded state S_r — Theorem 2 says they are
// the same) always conserves the total, because in-flight transfers are
// captured as channel state.
//
// Also shows a conjunctive breakpoint in both interpretations.
#include <cstdio>

#include "debugger/harness.hpp"
#include "workload/behaviors.hpp"

using namespace ddbg;

namespace {

constexpr std::uint32_t kBanks = 4;

std::int64_t naive_audit(SimDebugHarness& harness) {
  // Read each balance directly, no coordination: the kind of audit the
  // paper's section 2 warns about.
  std::int64_t total = 0;
  for (std::uint32_t i = 0; i < kBanks; ++i) {
    total +=
        dynamic_cast<BankProcess&>(harness.shim(ProcessId(i)).user()).balance();
  }
  return total;
}

}  // namespace

int main() {
  BankConfig bank;
  bank.initial_balance = 1000;
  SimDebugHarness harness(Topology::complete(kBanks), make_bank(kBanks, bank));
  const std::int64_t expected =
      static_cast<std::int64_t>(kBanks) * bank.initial_balance;
  std::printf("4 banks, %lld total money, continuous random transfers\n\n",
              static_cast<long long>(expected));

  harness.sim().run_for(Duration::millis(40));

  // 1. Uncoordinated audit: balances read while transfers are in flight.
  std::printf("naive audit (no coordination): %lld  %s\n",
              static_cast<long long>(naive_audit(harness)),
              naive_audit(harness) == expected
                  ? "(got lucky: nothing was in flight)"
                  : "<-- money \"missing\" in transit!");

  // 2. C&L recording: consistent, and the program never stopped.
  auto recorded = harness.session().take_snapshot(Duration::seconds(10));
  if (!recorded.has_value()) return 1;
  auto recorded_total = BankProcess::total_money(recorded->state);
  std::printf("recorded state S_r audit:      %lld  (consistent, program "
              "kept running)\n",
              static_cast<long long>(recorded_total.value_or(-1)));

  // 3. Halted state: consistent, and the program is stopped for inspection.
  harness.session().halt();
  auto halted = harness.session().wait_for_halt(Duration::seconds(10));
  if (!halted.has_value()) return 1;
  auto halted_total = BankProcess::total_money(halted->state);
  std::printf("halted state S_h audit:        %lld  (consistent, program "
              "frozen)\n\n",
              static_cast<long long>(halted_total.value_or(-1)));
  std::printf("%s", halted->state.describe().c_str());

  // 4. Resume and set a conjunctive breakpoint: both p0 and p1 poor at
  //    causally-related instants (the detectable, ordered interpretation).
  harness.session().resume();
  auto bp = harness.session().set_breakpoint("p0:balance<990 & p1:balance<990");
  if (!bp.ok()) {
    std::fprintf(stderr, "bad breakpoint: %s\n", bp.error().to_string().c_str());
    return 1;
  }
  auto conj = harness.session().wait_for_halt(Duration::seconds(30));
  if (conj.has_value()) {
    std::printf("\nconjunctive breakpoint fired; at the halt:\n");
    for (std::uint32_t i = 0; i < 2; ++i) {
      std::printf("  p%u %s\n", i,
                  harness.shim(ProcessId(i)).describe_state().c_str());
    }
    auto total = BankProcess::total_money(conj->state);
    std::printf("  audit still conserves: %lld\n",
                static_cast<long long>(total.value_or(-1)));
  } else {
    std::printf("\nconjunctive breakpoint did not fire in time\n");
  }
  return 0;
}
