// Unit/integration tests of the DebugShim itself: event generation, clock
// stamping, variable tracking, control handling and report plumbing.
#include <gtest/gtest.h>

#include "analysis/trace.hpp"
#include "core/debug_shim.hpp"
#include "debugger/harness.hpp"
#include "sim/simulation.hpp"
#include "tests/test_util.hpp"
#include "workload/behaviors.hpp"

namespace ddbg {
namespace {

// A small instrumented process exercising the whole DebugApi.
class Instrumented final : public Debuggable {
 public:
  void on_start(ProcessContext& ctx) override {
    debug().enter_procedure("on_start");
    debug().set_var("x", 1);
    debug().event("ready");
    if (!ctx.topology().out_channels(ctx.self()).empty()) {
      for (const ChannelId c : ctx.topology().out_channels(ctx.self())) {
        if (!ctx.topology().channel(c).is_control) {
          ctx.send(c, Message::application(Bytes{42}));
        }
      }
    }
  }
  void on_message(ProcessContext&, ChannelId, Message message) override {
    debug().set_var("x", static_cast<std::int64_t>(message.payload.size()));
    debug().event("got_message");
  }

  [[nodiscard]] Bytes snapshot_state() const override { return Bytes{7}; }
  [[nodiscard]] std::string describe_state() const override { return "inst"; }
};

Topology pair_topology() {
  Topology t(2);
  t.add_channel(ProcessId(0), ProcessId(1));
  return t;
}

TEST(DebugShim, EmitsLifecycleAndApiEvents) {
  Trace trace;
  DebugShim::Options options;
  options.trace_sink = trace.sink();
  Topology topology = pair_topology();
  std::vector<ProcessPtr> users;
  users.push_back(std::make_unique<Instrumented>());
  users.push_back(std::make_unique<Instrumented>());
  Simulation sim(topology, wrap_in_shims(topology, std::move(users), options));
  sim.run_until_quiescent();

  const auto events = trace.events();
  auto count = [&](ProcessId p, LocalEventKind kind) {
    std::size_t n = 0;
    for (const LocalEvent& event : events) {
      if (event.process == p && event.kind == kind) ++n;
    }
    return n;
  };
  EXPECT_EQ(count(ProcessId(0), LocalEventKind::kProcessStarted), 1u);
  EXPECT_EQ(count(ProcessId(0), LocalEventKind::kProcedureEntered), 1u);
  EXPECT_EQ(count(ProcessId(0), LocalEventKind::kUserEvent), 1u);
  EXPECT_EQ(count(ProcessId(0), LocalEventKind::kStateChange), 1u);
  EXPECT_EQ(count(ProcessId(0), LocalEventKind::kMessageSent), 1u);
  EXPECT_EQ(count(ProcessId(0), LocalEventKind::kChannelCreated), 1u);
  EXPECT_EQ(count(ProcessId(1), LocalEventKind::kMessageReceived), 1u);
  // p1 never sends (no outgoing app channel).
  EXPECT_EQ(count(ProcessId(1), LocalEventKind::kMessageSent), 0u);
}

TEST(DebugShim, EventsHaveMonotonicLocalSeqAndLamport) {
  Trace trace;
  DebugShim::Options options;
  options.trace_sink = trace.sink();
  Topology topology = pair_topology();
  std::vector<ProcessPtr> users;
  users.push_back(std::make_unique<Instrumented>());
  users.push_back(std::make_unique<Instrumented>());
  Simulation sim(topology, wrap_in_shims(topology, std::move(users), options));
  sim.run_until_quiescent();

  std::map<ProcessId, std::uint64_t> last_seq;
  std::map<ProcessId, std::uint64_t> last_lamport;
  for (const LocalEvent& event : trace.events()) {
    if (last_seq.contains(event.process)) {
      EXPECT_GT(event.local_seq, last_seq[event.process]);
      EXPECT_GT(event.lamport, last_lamport[event.process]);
    }
    last_seq[event.process] = event.local_seq;
    last_lamport[event.process] = event.lamport;
  }
}

TEST(DebugShim, ReceiveLamportExceedsSendLamport) {
  Trace trace;
  DebugShim::Options options;
  options.trace_sink = trace.sink();
  Topology topology = pair_topology();
  std::vector<ProcessPtr> users;
  users.push_back(std::make_unique<Instrumented>());
  users.push_back(std::make_unique<Instrumented>());
  Simulation sim(topology, wrap_in_shims(topology, std::move(users), options));
  sim.run_until_quiescent();

  std::map<std::uint64_t, std::uint64_t> send_lamport;
  for (const LocalEvent& event : trace.events()) {
    if (event.kind == LocalEventKind::kMessageSent) {
      send_lamport[event.message_id] = event.lamport;
    }
  }
  bool checked = false;
  for (const LocalEvent& event : trace.events()) {
    if (event.kind == LocalEventKind::kMessageReceived) {
      ASSERT_TRUE(send_lamport.contains(event.message_id));
      EXPECT_GT(event.lamport, send_lamport[event.message_id]);
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(DebugShim, VectorClockStampingCanBeDisabled) {
  Trace trace;
  DebugShim::Options options;
  options.trace_sink = trace.sink();
  options.stamp_vector_clocks = false;
  Topology topology = pair_topology();
  std::vector<ProcessPtr> users;
  users.push_back(std::make_unique<Instrumented>());
  users.push_back(std::make_unique<Instrumented>());

  TransportStats stats_with;
  {
    Simulation sim(topology,
                   wrap_in_shims(topology, std::move(users), options));
    sim.run_until_quiescent();
    stats_with = sim.stats();
  }
  // With stamping on, the app message carries the clock -> more bytes.
  std::vector<ProcessPtr> users2;
  users2.push_back(std::make_unique<Instrumented>());
  users2.push_back(std::make_unique<Instrumented>());
  DebugShim::Options options2;
  options2.stamp_vector_clocks = true;
  Simulation sim2(topology, wrap_in_shims(topology, std::move(users2),
                                          options2));
  sim2.run_until_quiescent();
  EXPECT_GT(sim2.stats().bytes_sent, stats_with.bytes_sent);
}

TEST(DebugShim, VarTableTracksLatestValue) {
  Topology topology = pair_topology();
  std::vector<ProcessPtr> users;
  users.push_back(std::make_unique<Instrumented>());
  users.push_back(std::make_unique<Instrumented>());
  Simulation sim(topology, wrap_in_shims(topology, std::move(users)));
  sim.run_until_quiescent();
  auto& shim0 = dynamic_cast<DebugShim&>(sim.process(ProcessId(0)));
  auto& shim1 = dynamic_cast<DebugShim&>(sim.process(ProcessId(1)));
  EXPECT_EQ(shim0.var("x"), 1);
  EXPECT_EQ(shim1.var("x"), 1);  // payload size of the received message
  EXPECT_EQ(shim0.var("missing"), 0);
}

TEST(DebugShim, SnapshotDelegatesToUser) {
  Topology topology = pair_topology();
  std::vector<ProcessPtr> users;
  users.push_back(std::make_unique<Instrumented>());
  users.push_back(std::make_unique<Instrumented>());
  Simulation sim(topology, wrap_in_shims(topology, std::move(users)));
  sim.run_until_quiescent();
  auto& shim = dynamic_cast<DebugShim&>(sim.process(ProcessId(0)));
  EXPECT_EQ(shim.snapshot_state(), Bytes{7});
  EXPECT_EQ(shim.describe_state(), "inst");
}

TEST(DebugShim, StopSelfEmitsTerminatedEvent) {
  class Stopper final : public Debuggable {
   public:
    void on_start(ProcessContext& ctx) override { ctx.stop_self(); }
    void on_message(ProcessContext&, ChannelId, Message) override {}
  };
  Trace trace;
  DebugShim::Options options;
  options.trace_sink = trace.sink();
  Topology topology(1);
  std::vector<ProcessPtr> users;
  users.push_back(std::make_unique<Stopper>());
  Simulation sim(topology, wrap_in_shims(topology, std::move(users), options));
  sim.run_until_quiescent();
  bool terminated = false;
  for (const LocalEvent& event : trace.events()) {
    if (event.kind == LocalEventKind::kProcessTerminated) terminated = true;
  }
  EXPECT_TRUE(terminated);
}

TEST(DebugShim, UninstrumentedRunHasNoDebugApiEffects) {
  // A Debuggable process without a shim: debug() calls are no-ops.
  Topology topology = pair_topology();
  testing::FakeContext ctx(ProcessId(1), &topology);
  Instrumented bare;
  bare.on_message(ctx, ChannelId(0), Message::application(Bytes{1, 2, 3}));
  SUCCEED();  // no crash: the null DebugApi swallowed the calls
}

TEST(DebugShim, HaltsViaBreakpointOnUserEvent) {
  TokenRingConfig ring_config;
  ring_config.rounds = 100;
  SimDebugHarness harness(Topology::ring(3), make_token_ring(3, ring_config));
  ASSERT_TRUE(harness.session().set_breakpoint("p0:enter(forward_token)").ok());
  auto wave = harness.session().wait_for_halt(Duration::seconds(30));
  ASSERT_TRUE(wave.has_value());
  EXPECT_TRUE(harness.shim(ProcessId(0)).halted());
}

TEST(DebugShim, ArmedWatchCountTracksDisarm) {
  GossipConfig gossip;
  SimDebugHarness harness(Topology::ring(3), make_gossip(3, gossip));
  auto bp = harness.session().set_breakpoint("p0:event(never)");
  ASSERT_TRUE(bp.ok());
  harness.sim().run_for(Duration::millis(20));
  EXPECT_EQ(harness.shim(ProcessId(0)).armed_watches(), 1u);
  harness.session().clear_breakpoint(bp.value());
  harness.sim().run_for(Duration::millis(20));
  EXPECT_EQ(harness.shim(ProcessId(0)).armed_watches(), 0u);
}

}  // namespace
}  // namespace ddbg
