// Parallel-vs-sequential simulator equivalence.
//
// The parallel engine's contract (sim/simulation.hpp) is not "statistically
// similar": every externally observable artifact — transport observer
// stream, debug-shim trace, metrics JSON, final process states, event and
// clock counters — must be byte-identical to the sequential engine for the
// same (topology, workload, latency model, fault plan, seed), on any worker
// count.  These tests run the same system under both engines and compare
// the raw bytes, across random topologies, seeds, latency models, timers,
// halt waves and fault-plan chaos.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/debug_shim.hpp"
#include "core/event.hpp"
#include "net/fault_plan.hpp"
#include "net/topology.hpp"
#include "net/transport_hooks.hpp"
#include "sim/simulation.hpp"
#include "workload/behaviors.hpp"

namespace ddbg {
namespace {

// Records the full send/deliver stream, one line per callback.
class RecordingObserver final : public TransportObserver {
 public:
  void on_send(TimePoint when, ChannelId channel,
               const Message& message) override {
    log_ << "S " << when.ns << " " << channel.value() << " "
         << message.describe() << "\n";
  }
  void on_deliver(TimePoint when, ChannelId channel,
                  const Message& message) override {
    log_ << "D " << when.ns << " " << channel.value() << " "
         << message.describe() << "\n";
  }
  [[nodiscard]] std::string str() const { return log_.str(); }

 private:
  std::ostringstream log_;
};

struct Capture {
  std::string observer_log;
  std::string trace_log;    // shim LocalEvents, in trace-sink order
  std::string report_log;   // halt/resume/armed callbacks, in order
  std::string final_states; // describe_state() per process
  std::string metrics_json;
  std::uint64_t events_processed = 0;
  std::int64_t final_now = 0;
  std::uint32_t workers_used = 0;
};

struct RunSpec {
  std::uint64_t seed = 1;
  std::uint32_t workers = 1;
  // Factory because a LatencyModel is consumed by the SimulationConfig.
  std::function<std::unique_ptr<LatencyModel>()> latency;
  std::shared_ptr<FaultPlan> faults;
  // Called once the simulation exists, before it runs (halt injection &c).
  std::function<void(Simulation&)> script;
};

using ProcessFactory = std::function<std::vector<ProcessPtr>()>;

Capture run_system(const Topology& topology, const ProcessFactory& users,
                   const RunSpec& spec) {
  Capture capture;
  std::ostringstream trace;
  std::ostringstream reports;

  DebugShim::Options options;
  options.trace_sink = [&trace](const LocalEvent& event) {
    trace << event.describe() << "\n";
  };
  options.on_halted = [&reports](HaltId wave) {
    reports << "halted " << wave.value() << "\n";
  };
  options.on_resumed = [&reports](HaltId wave) {
    reports << "resumed " << wave.value() << "\n";
  };
  options.local_halt_report = [&reports](ProcessId p, std::uint64_t wave,
                                         const ProcessSnapshot& snapshot) {
    ByteWriter writer;
    snapshot.encode(writer);
    reports << "halt-report " << p.value() << " " << wave << " "
            << writer.size() << "b\n";
  };
  options.local_snapshot_report = [&reports](ProcessId p, std::uint64_t wave,
                                             const ProcessSnapshot& snapshot) {
    ByteWriter writer;
    snapshot.encode(writer);
    reports << "snapshot-report " << p.value() << " " << wave << " "
            << writer.size() << "b\n";
  };

  SimulationConfig config;
  config.seed = spec.seed;
  config.workers = spec.workers;
  if (spec.latency) config.latency = spec.latency();
  config.faults = spec.faults;

  Simulation sim(topology, wrap_in_shims(topology, users(), options),
                 std::move(config));
  RecordingObserver observer;
  sim.set_observer(&observer);
  capture.workers_used = sim.effective_workers();
  if (spec.script) spec.script(sim);
  EXPECT_TRUE(sim.run_until_quiescent());

  std::ostringstream states;
  for (const ProcessId p : topology.process_ids()) {
    states << p.value() << ": " << sim.process(p).describe_state() << "\n";
  }
  capture.observer_log = observer.str();
  capture.trace_log = trace.str();
  capture.report_log = reports.str();
  capture.final_states = states.str();
  capture.metrics_json = sim.metrics().snapshot(sim.now()).to_json();
  capture.events_processed = sim.events_processed();
  capture.final_now = sim.now().ns;
  return capture;
}

void expect_identical(const Capture& seq, const Capture& par,
                      const std::string& label) {
  EXPECT_EQ(seq.observer_log, par.observer_log) << label;
  EXPECT_EQ(seq.trace_log, par.trace_log) << label;
  EXPECT_EQ(seq.report_log, par.report_log) << label;
  EXPECT_EQ(seq.final_states, par.final_states) << label;
  EXPECT_EQ(seq.metrics_json, par.metrics_json) << label;
  EXPECT_EQ(seq.events_processed, par.events_processed) << label;
  EXPECT_EQ(seq.final_now, par.final_now) << label;
}

ProcessFactory token_ring_factory(std::uint32_t n, std::uint32_t rounds) {
  return [n, rounds] {
    std::vector<ProcessPtr> users;
    for (std::uint32_t i = 0; i < n; ++i) {
      TokenRingConfig config;
      config.rounds = rounds;
      users.push_back(std::make_unique<TokenRingProcess>(config));
    }
    return users;
  };
}

ProcessFactory gossip_factory(std::uint32_t n, std::uint32_t max_sends) {
  return [n, max_sends] {
    std::vector<ProcessPtr> users;
    for (std::uint32_t i = 0; i < n; ++i) {
      GossipConfig config;
      config.max_sends = max_sends;
      users.push_back(std::make_unique<GossipProcess>(config));
    }
    return users;
  };
}

TEST(SimParallel, TokenRingByteIdenticalAcrossWorkerCounts) {
  const Topology topology = Topology::ring(8);
  RunSpec spec;
  spec.seed = 11;
  spec.workers = 1;
  const Capture seq = run_system(topology, token_ring_factory(8, 20), spec);
  ASSERT_GT(seq.events_processed, 0u);
  for (const std::uint32_t workers : {2u, 3u, 4u, 8u}) {
    spec.workers = workers;
    const Capture par = run_system(topology, token_ring_factory(8, 20), spec);
    EXPECT_GT(par.workers_used, 1u);
    expect_identical(seq, par, "workers=" + std::to_string(workers));
  }
}

TEST(SimParallel, GossipOnRandomTopologiesAndSeedsByteIdentical) {
  for (const std::uint64_t seed : {1u, 7u, 23u}) {
    Rng topo_rng(seed * 977);
    const std::vector<Topology> shapes = {
        Topology::ring(5),
        Topology::tree(9),
        Topology::complete(4),
        Topology::random_strongly_connected(6, 8, topo_rng),
    };
    for (std::size_t s = 0; s < shapes.size(); ++s) {
      const Topology& topology = shapes[s];
      const auto users = gossip_factory(topology.num_processes(), 12);
      RunSpec spec;
      spec.seed = seed;
      spec.workers = 1;
      const Capture seq = run_system(topology, users, spec);
      spec.workers = 4;
      const Capture par = run_system(topology, users, spec);
      expect_identical(seq, par,
                       "seed=" + std::to_string(seed) +
                           " shape=" + std::to_string(s));
    }
  }
}

TEST(SimParallel, LatencyModelsByteIdentical) {
  const Topology topology = Topology::tree(9);
  const auto users = gossip_factory(9, 10);
  const std::vector<
      std::pair<std::string, std::function<std::unique_ptr<LatencyModel>()>>>
      models = {
          {"constant", [] { return constant_latency(Duration::millis(2)); }},
          {"uniform",
           [] {
             return uniform_latency(Duration::millis(1), Duration::millis(5));
           }},
          {"exponential",
           [] {
             return exponential_latency(Duration::millis(3),
                                        Duration::micros(500));
           }},
      };
  for (const auto& [name, factory] : models) {
    RunSpec spec;
    spec.seed = 5;
    spec.latency = factory;
    spec.workers = 1;
    const Capture seq = run_system(topology, users, spec);
    spec.workers = 4;
    const Capture par = run_system(topology, users, spec);
    EXPECT_GT(par.workers_used, 1u) << name;
    expect_identical(seq, par, name);
  }
}

TEST(SimParallel, ZeroLookaheadFallsBackToSequential) {
  const Topology topology = Topology::ring(4);
  RunSpec spec;
  spec.workers = 8;
  spec.latency = [] { return constant_latency(Duration{0}); };
  const Capture zero =
      run_system(topology, token_ring_factory(4, 3), spec);
  EXPECT_EQ(zero.workers_used, 1u);

  spec.latency = [] {
    return uniform_latency(Duration{0}, Duration::millis(2));
  };
  const Capture zero_low =
      run_system(topology, token_ring_factory(4, 3), spec);
  EXPECT_EQ(zero_low.workers_used, 1u);
}

TEST(SimParallel, WorkersCappedByProcessCount) {
  const Topology topology = Topology::ring(3);
  RunSpec spec;
  spec.workers = 64;
  spec.seed = 3;
  const Capture par = run_system(topology, token_ring_factory(3, 5), spec);
  EXPECT_EQ(par.workers_used, 3u);
  spec.workers = 1;
  const Capture seq = run_system(topology, token_ring_factory(3, 5), spec);
  expect_identical(seq, par, "capped workers");
}

TEST(SimParallel, HaltWavesByteIdentical) {
  // Inject a spontaneous halt mid-run and a resume after it: the halt
  // markers, buffered channel state, halt reports and resume replay must
  // come out identical while surrounding traffic executes in parallel
  // windows.
  const Topology topology = Topology::ring(6);
  const auto script = [](Simulation& sim) {
    sim.schedule_call(TimePoint{Duration::millis(40).ns}, [&sim] {
      sim.post(ProcessId(2), [](ProcessContext& ctx, Process& process) {
        dynamic_cast<DebugShim&>(process).initiate_halt(ctx);
      });
    });
  };
  RunSpec spec;
  spec.seed = 17;
  spec.script = script;
  spec.workers = 1;
  const Capture seq = run_system(topology, token_ring_factory(6, 40), spec);
  EXPECT_NE(seq.report_log.find("halted"), std::string::npos);
  spec.workers = 4;
  const Capture par = run_system(topology, token_ring_factory(6, 40), spec);
  expect_identical(seq, par, "halt wave");
}

TEST(SimParallel, FaultPlanChaosByteIdentical) {
  // Drops, duplicates, reordering, delays and resets drive the reliability
  // layer's retransmit/ack/reconnect machinery; all of it must replay
  // identically through the windowed engine.
  FaultSpec fault_spec;
  fault_spec.drop = 0.10;
  fault_spec.duplicate = 0.08;
  fault_spec.reorder = 0.08;
  fault_spec.delay = 0.08;
  fault_spec.reset = 0.02;
  const Topology topology = Topology::ring(6);
  for (const std::uint64_t seed : {2u, 9u}) {
    RunSpec spec;
    spec.seed = seed;
    spec.faults = std::make_shared<FaultPlan>(fault_spec, seed * 31);
    spec.workers = 1;
    const Capture seq = run_system(topology, token_ring_factory(6, 15), spec);
    spec.workers = 4;
    const Capture par = run_system(topology, token_ring_factory(6, 15), spec);
    expect_identical(seq, par, "faults seed=" + std::to_string(seed));
  }
}

TEST(SimParallel, RepeatedRunsOnOneEngineAreStable) {
  // Guards against nondeterminism *within* the parallel engine itself
  // (e.g. an unstaged effect whose order depends on thread scheduling).
  const Topology topology = Topology::complete(5);
  const auto users = gossip_factory(5, 15);
  RunSpec spec;
  spec.seed = 29;
  spec.workers = 4;
  const Capture first = run_system(topology, users, spec);
  for (int i = 0; i < 3; ++i) {
    const Capture again = run_system(topology, users, spec);
    expect_identical(first, again, "repeat " + std::to_string(i));
  }
}

}  // namespace
}  // namespace ddbg
