// Test utilities: a fake ProcessContext that records sends, for unit-testing
// the per-process engines without a runtime.
#pragma once

#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "net/process.hpp"

namespace ddbg::testing {

class FakeContext final : public ProcessContext {
 public:
  FakeContext(ProcessId self, const Topology* topology)
      : self_(self), topology_(topology), rng_(7) {}

  [[nodiscard]] ProcessId self() const override { return self_; }
  [[nodiscard]] TimePoint now() const override { return now_; }
  [[nodiscard]] const Topology& topology() const override {
    return *topology_;
  }

  void send(ChannelId channel, Message message) override {
    sent.emplace_back(channel, std::move(message));
  }

  TimerId set_timer(Duration delay) override {
    timers.push_back(delay);
    return TimerId(static_cast<std::uint32_t>(timers.size()));
  }
  void cancel_timer(TimerId timer) override { cancelled.push_back(timer); }
  [[nodiscard]] Rng& rng() override { return rng_; }
  void stop_self() override { stopped = true; }

  void advance(Duration d) { now_ = now_ + d; }

  // Sent halt markers only, in order.
  [[nodiscard]] std::vector<std::pair<ChannelId, HaltMarkerData>>
  halt_markers() const {
    std::vector<std::pair<ChannelId, HaltMarkerData>> markers;
    for (const auto& [channel, message] : sent) {
      if (message.kind == MessageKind::kHaltMarker) {
        markers.emplace_back(channel, *message.halt);
      }
    }
    return markers;
  }

  std::vector<std::pair<ChannelId, Message>> sent;
  std::vector<Duration> timers;
  std::vector<TimerId> cancelled;
  bool stopped = false;

 private:
  ProcessId self_;
  const Topology* topology_;
  Rng rng_;
  TimePoint now_{0};
};

}  // namespace ddbg::testing
