// Unit tests for Lamport clocks, vector clocks and the happened-before
// graph, including a cross-check of the two ordering mechanisms.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "clock/happened_before.hpp"
#include "clock/lamport.hpp"
#include "clock/vector_clock.hpp"
#include "common/serialization.hpp"

// Global allocation counter for the hot-path allocation tests below.
// Replacing operator new is binary-wide, so keep the hooks trivial.
namespace {
std::atomic<std::size_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ddbg {
namespace {

TEST(LamportClock, TicksMonotonically) {
  LamportClock clock;
  EXPECT_EQ(clock.now(), 0u);
  EXPECT_EQ(clock.tick(), 1u);
  EXPECT_EQ(clock.tick(), 2u);
  EXPECT_EQ(clock.now(), 2u);
}

TEST(LamportClock, ReceiveAdvancesPastMessage) {
  LamportClock clock;
  clock.tick();  // 1
  EXPECT_EQ(clock.on_receive(10), 11u);
  EXPECT_EQ(clock.now(), 11u);
}

TEST(LamportClock, ReceiveOfOldMessageStillTicks) {
  LamportClock clock;
  for (int i = 0; i < 5; ++i) clock.tick();
  EXPECT_EQ(clock.on_receive(2), 6u);
}

TEST(LamportClock, SendReceiveOrdersEvents) {
  LamportClock sender;
  LamportClock receiver;
  const std::uint64_t send_time = sender.on_send();
  const std::uint64_t receive_time = receiver.on_receive(send_time);
  EXPECT_LT(send_time, receive_time);
}

TEST(VectorClock, FreshClocksAreEqual) {
  VectorClock a;
  VectorClock b;
  EXPECT_EQ(a.compare(b), CausalOrder::kEqual);
}

TEST(VectorClock, TickMakesAfter) {
  VectorClock a;
  VectorClock b = a;
  b.tick(ProcessId(0));
  EXPECT_EQ(a.compare(b), CausalOrder::kBefore);
  EXPECT_EQ(b.compare(a), CausalOrder::kAfter);
  EXPECT_TRUE(a.before(b));
}

TEST(VectorClock, IndependentTicksAreConcurrent) {
  VectorClock a;
  VectorClock b;
  a.tick(ProcessId(0));
  b.tick(ProcessId(1));
  EXPECT_EQ(a.compare(b), CausalOrder::kConcurrent);
  EXPECT_TRUE(a.concurrent_with(b));
}

TEST(VectorClock, MessageTransferOrders) {
  // p0 sends to p1; p1's post-receive clock dominates p0's send clock.
  VectorClock p0;
  VectorClock p1;
  p0.tick(ProcessId(0));  // send event
  const VectorClock message = p0;
  p1.on_receive(ProcessId(1), message);
  EXPECT_TRUE(message.before(p1));
  // But p0's *later* events stay concurrent with p1.
  p0.tick(ProcessId(0));
  EXPECT_EQ(p0.compare(p1), CausalOrder::kConcurrent);
}

TEST(VectorClock, MergeTakesComponentwiseMax) {
  VectorClock a(3);
  VectorClock b(3);
  a.tick(ProcessId(0));
  a.tick(ProcessId(0));
  b.tick(ProcessId(2));
  a.merge(b);
  EXPECT_EQ(a.at(ProcessId(0)), 2u);
  EXPECT_EQ(a.at(ProcessId(2)), 1u);
}

TEST(VectorClock, DifferentSizesCompare) {
  VectorClock small;
  small.tick(ProcessId(0));
  VectorClock large(8);
  large.tick(ProcessId(0));
  EXPECT_EQ(small.compare(large), CausalOrder::kEqual);
  large.tick(ProcessId(7));
  EXPECT_EQ(small.compare(large), CausalOrder::kBefore);
}

TEST(VectorClock, SerializationRoundTrip) {
  VectorClock clock(4);
  clock.tick(ProcessId(1));
  clock.tick(ProcessId(1));
  clock.tick(ProcessId(3));
  ByteWriter writer;
  clock.encode(writer);
  ByteReader reader(writer.buffer());
  auto decoded = VectorClock::decode(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().compare(clock), CausalOrder::kEqual);
}

TEST(VectorClock, ToString) {
  VectorClock clock(2);
  clock.tick(ProcessId(1));
  EXPECT_EQ(clock.to_string(), "[0,1]");
}

TEST(HappenedBefore, ProgramOrder) {
  HappenedBeforeGraph graph;
  const EventIndex a = graph.add_event(ProcessId(0));
  const EventIndex b = graph.add_event(ProcessId(0));
  graph.add_edge(a, b);
  EXPECT_TRUE(graph.happened_before(a, b));
  EXPECT_FALSE(graph.happened_before(b, a));
  EXPECT_FALSE(graph.happened_before(a, a));
}

TEST(HappenedBefore, MessageEdge) {
  HappenedBeforeGraph graph;
  const EventIndex send = graph.add_event(ProcessId(0));
  const EventIndex receive = graph.add_event(ProcessId(1));
  graph.register_send(42, send);
  graph.link_receive(42, receive);
  EXPECT_TRUE(graph.happened_before(send, receive));
}

TEST(HappenedBefore, Transitivity) {
  HappenedBeforeGraph graph;
  const EventIndex a = graph.add_event(ProcessId(0));
  const EventIndex b = graph.add_event(ProcessId(1));
  const EventIndex c = graph.add_event(ProcessId(2));
  graph.add_edge(a, b);
  graph.add_edge(b, c);
  EXPECT_TRUE(graph.happened_before(a, c));
  EXPECT_FALSE(graph.happened_before(c, a));
}

TEST(HappenedBefore, ConcurrentEvents) {
  HappenedBeforeGraph graph;
  const EventIndex a = graph.add_event(ProcessId(0));
  const EventIndex b = graph.add_event(ProcessId(1));
  EXPECT_TRUE(graph.concurrent(a, b));
  EXPECT_FALSE(graph.concurrent(a, a));
}

TEST(HappenedBefore, UnmatchedReceiveTolerated) {
  HappenedBeforeGraph graph;
  const EventIndex r = graph.add_event(ProcessId(1));
  graph.link_receive(99, r);  // no registered send: no edge, no crash
  EXPECT_EQ(graph.num_events(), 1u);
}

// Cross-check vector clocks against the explicit graph on a small diamond:
//   p0: a1 -> a2 (send m1) -> a3
//   p1: b1 (recv m1) -> b2
TEST(HappenedBefore, AgreesWithVectorClocks) {
  VectorClock vc_p0;
  VectorClock vc_p1;
  HappenedBeforeGraph graph;

  const EventIndex a1 = graph.add_event(ProcessId(0));
  vc_p0.tick(ProcessId(0));
  const VectorClock vc_a1 = vc_p0;

  const EventIndex a2 = graph.add_event(ProcessId(0));
  graph.add_edge(a1, a2);
  vc_p0.tick(ProcessId(0));
  const VectorClock vc_a2 = vc_p0;
  graph.register_send(1, a2);

  const EventIndex b1 = graph.add_event(ProcessId(1));
  graph.link_receive(1, b1);
  vc_p1.on_receive(ProcessId(1), vc_a2);
  const VectorClock vc_b1 = vc_p1;

  const EventIndex a3 = graph.add_event(ProcessId(0));
  graph.add_edge(a2, a3);
  vc_p0.tick(ProcessId(0));
  const VectorClock vc_a3 = vc_p0;

  EXPECT_TRUE(graph.happened_before(a1, b1));
  EXPECT_TRUE(vc_a1.before(vc_b1));
  EXPECT_TRUE(graph.concurrent(a3, b1));
  EXPECT_TRUE(vc_a3.concurrent_with(vc_b1));
}

// Vector-clock merge and comparison sit on the per-message hot path (every
// stamped send/receive); once the clocks have reached their full width,
// neither operation may allocate.
TEST(VectorClock, MergeAndCompareAreAllocationFreeOnceSized) {
  constexpr std::uint32_t kProcs = 64;
  VectorClock a;
  VectorClock b;
  a.tick(ProcessId(kProcs - 1));  // size both to full width up front
  b.tick(ProcessId(kProcs - 1));
  for (std::uint32_t i = 0; i < kProcs; i += 3) a.tick(ProcessId(i));
  for (std::uint32_t i = 1; i < kProcs; i += 2) b.tick(ProcessId(i));

  const std::size_t before = g_allocation_count.load();
  for (int round = 0; round < 100; ++round) {
    a.merge(b);
    b.merge(a);
    (void)a.compare(b);
    (void)b.compare(a);
    a.tick(ProcessId(round % kProcs));
    b.on_receive(ProcessId((round + 7) % kProcs), a);
  }
  EXPECT_EQ(g_allocation_count.load(), before)
      << "merge/compare/tick allocated on pre-sized clocks";
}

TEST(VectorClock, CompareAgainstWiderClockIsAllocationFree) {
  VectorClock narrow;
  VectorClock wide;
  narrow.tick(ProcessId(2));
  wide.tick(ProcessId(40));
  wide.tick(ProcessId(3));
  const std::size_t before = g_allocation_count.load();
  // Zero-extension comparison in both directions, no temporaries.
  EXPECT_EQ(narrow.compare(wide), CausalOrder::kConcurrent);
  EXPECT_EQ(wide.compare(narrow), CausalOrder::kConcurrent);
  EXPECT_EQ(g_allocation_count.load(), before);
}

}  // namespace
}  // namespace ddbg
