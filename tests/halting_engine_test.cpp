// Direct unit tests of the HaltingEngine and SnapshotEngine state machines
// (marker rules, wave ids, channel-state assembly, resume) using a fake
// context — no runtime involved.
#include <gtest/gtest.h>

#include "core/halting.hpp"
#include "core/snapshot.hpp"
#include "tests/test_util.hpp"

namespace ddbg {
namespace {

using testing::FakeContext;

// p0 <-> p1 <-> p2 ring: each process one in, one out.
struct RingFixture {
  Topology topology = Topology::ring(3);
  ProcessId self{1};
  FakeContext ctx{ProcessId(1), &topology};

  std::vector<HaltId> halts;
  std::vector<ProcessSnapshot> completions;
  int captures = 0;

  HaltingEngine make_engine() {
    return HaltingEngine(
        self, &topology,
        HaltingEngine::Callbacks{
            [this] {
              ++captures;
              ProcessSnapshot snapshot;
              snapshot.process = self;
              snapshot.state = Bytes{static_cast<std::uint8_t>(captures)};
              snapshot.description = "capture" + std::to_string(captures);
              return snapshot;
            },
            [this](HaltId id, const std::vector<ProcessId>&) {
              halts.push_back(id);
            },
            [this](const ProcessSnapshot& snapshot) {
              completions.push_back(snapshot);
            }});
  }

  [[nodiscard]] ChannelId in_channel() const {
    return topology.in_channels(self)[0];  // from p0
  }
  [[nodiscard]] ChannelId out_channel() const {
    return topology.out_channels(self)[0];  // to p2
  }
};

TEST(HaltingEngine, SpontaneousInitiationSendsMarkersAndHalts) {
  RingFixture fx;
  HaltingEngine engine = fx.make_engine();
  EXPECT_FALSE(engine.halted());
  EXPECT_EQ(engine.last_halt_id(), 0u);

  engine.initiate(fx.ctx);
  EXPECT_TRUE(engine.halted());
  EXPECT_EQ(engine.last_halt_id(), 1u);
  const auto markers = fx.ctx.halt_markers();
  ASSERT_EQ(markers.size(), 1u);  // one outgoing channel
  EXPECT_EQ(markers[0].first, fx.out_channel());
  EXPECT_EQ(markers[0].second.halt_id, HaltId(1));
  // Section 2.2.4: the marker carries the initiator's name.
  ASSERT_EQ(markers[0].second.halt_path.size(), 1u);
  EXPECT_EQ(markers[0].second.halt_path[0], fx.self);
  ASSERT_EQ(fx.halts.size(), 1u);
  EXPECT_EQ(fx.halts[0], HaltId(1));
}

TEST(HaltingEngine, InitiateTwiceIsIdempotent) {
  RingFixture fx;
  HaltingEngine engine = fx.make_engine();
  engine.initiate(fx.ctx);
  engine.initiate(fx.ctx);
  EXPECT_EQ(engine.last_halt_id(), 1u);
  EXPECT_EQ(fx.ctx.halt_markers().size(), 1u);
  EXPECT_EQ(fx.captures, 1);
}

TEST(HaltingEngine, MarkerReceiptAdoptsWaveAndForwards) {
  RingFixture fx;
  HaltingEngine engine = fx.make_engine();
  engine.on_halt_marker(fx.ctx, fx.in_channel(),
                        HaltMarkerData{HaltId(3), {ProcessId(0)}});
  EXPECT_TRUE(engine.halted());
  EXPECT_EQ(engine.last_halt_id(), 3u);
  const auto markers = fx.ctx.halt_markers();
  ASSERT_EQ(markers.size(), 1u);
  EXPECT_EQ(markers[0].second.halt_id, HaltId(3));
  // Path extended with our own name.
  ASSERT_EQ(markers[0].second.halt_path.size(), 2u);
  EXPECT_EQ(markers[0].second.halt_path[0], ProcessId(0));
  EXPECT_EQ(markers[0].second.halt_path[1], fx.self);
  // The first marker's channel is empty; with one in-channel the local
  // snapshot is immediately complete.  Channel states are sparse: an empty
  // channel records no entry at all.
  ASSERT_EQ(fx.completions.size(), 1u);
  EXPECT_TRUE(fx.completions[0].in_channels.empty());
  EXPECT_EQ(fx.completions[0].halt_path.size(), 1u);
}

TEST(HaltingEngine, StaleMarkerIgnored) {
  RingFixture fx;
  HaltingEngine engine = fx.make_engine();
  engine.on_halt_marker(fx.ctx, fx.in_channel(), HaltMarkerData{HaltId(2), {}});
  const auto resume = engine.resume();
  EXPECT_FALSE(engine.halted());
  fx.ctx.sent.clear();
  // A marker for an old wave must be ignored entirely.
  engine.on_halt_marker(fx.ctx, fx.in_channel(), HaltMarkerData{HaltId(1), {}});
  engine.on_halt_marker(fx.ctx, fx.in_channel(), HaltMarkerData{HaltId(2), {}});
  EXPECT_FALSE(engine.halted());
  EXPECT_TRUE(fx.ctx.sent.empty());
}

TEST(HaltingEngine, ChannelStateRecordsPreMarkerMessages) {
  // Two in-channels: p0->p1 (ring) plus an extra p2->p1 channel.
  Topology topology = Topology::ring(3);
  const ChannelId extra = topology.add_channel(ProcessId(2), ProcessId(1));
  FakeContext ctx(ProcessId(1), &topology);
  std::vector<ProcessSnapshot> completions;
  HaltingEngine engine(
      ProcessId(1), &topology,
      HaltingEngine::Callbacks{[] { return ProcessSnapshot{}; },
                               nullptr,
                               [&](const ProcessSnapshot& snapshot) {
                                 completions.push_back(snapshot);
                               }});
  const ChannelId ring_in = topology.in_channels(ProcessId(1))[0];

  engine.initiate(ctx);
  // Messages arriving before each channel's marker belong to the channel
  // state (Lemma 2.2).
  EXPECT_TRUE(engine.intercept_message(ring_in,
                                       Message::application(Bytes{1})));
  EXPECT_TRUE(engine.intercept_message(extra, Message::application(Bytes{2})));
  EXPECT_TRUE(engine.intercept_message(extra, Message::application(Bytes{3})));
  EXPECT_TRUE(completions.empty());

  engine.on_halt_marker(ctx, ring_in, HaltMarkerData{HaltId(1), {}});
  EXPECT_TRUE(completions.empty());  // extra channel still open
  // Post-marker traffic on ring_in is NOT channel state.
  EXPECT_TRUE(engine.intercept_message(ring_in,
                                       Message::application(Bytes{9})));

  engine.on_halt_marker(ctx, extra, HaltMarkerData{HaltId(1), {}});
  ASSERT_EQ(completions.size(), 1u);
  const ProcessSnapshot& snapshot = completions[0];
  ASSERT_EQ(snapshot.in_channels.size(), 2u);
  std::size_t ring_slot =
      snapshot.in_channels[0].channel == ring_in ? 0 : 1;
  EXPECT_EQ(snapshot.in_channels[ring_slot].messages,
            (std::vector<Bytes>{{1}}));
  EXPECT_EQ(snapshot.in_channels[1 - ring_slot].messages,
            (std::vector<Bytes>{{2}, {3}}));
}

TEST(HaltingEngine, ResumeReturnsBufferedInArrivalOrder) {
  RingFixture fx;
  HaltingEngine engine = fx.make_engine();
  engine.initiate(fx.ctx);
  EXPECT_TRUE(
      engine.intercept_message(fx.in_channel(), Message::application(Bytes{1})));
  EXPECT_TRUE(
      engine.intercept_message(fx.in_channel(), Message::application(Bytes{2})));
  EXPECT_TRUE(engine.intercept_timer(TimerId(7)));

  const auto resume = engine.resume();
  EXPECT_FALSE(engine.halted());
  ASSERT_EQ(resume.messages.size(), 2u);
  EXPECT_EQ(resume.messages[0].second.payload, Bytes{1});
  EXPECT_EQ(resume.messages[1].second.payload, Bytes{2});
  ASSERT_EQ(resume.timers.size(), 1u);
  EXPECT_EQ(resume.timers[0], TimerId(7));
  // After resume the engine intercepts nothing.
  EXPECT_FALSE(
      engine.intercept_message(fx.in_channel(), Message::application(Bytes{3})));
  EXPECT_FALSE(engine.intercept_timer(TimerId(8)));
}

TEST(HaltingEngine, NewWaveAfterResumeGetsHigherId) {
  RingFixture fx;
  HaltingEngine engine = fx.make_engine();
  engine.initiate(fx.ctx);
  (void)engine.resume();
  engine.initiate(fx.ctx);
  EXPECT_EQ(engine.last_halt_id(), 2u);
  const auto markers = fx.ctx.halt_markers();
  ASSERT_EQ(markers.size(), 2u);
  EXPECT_EQ(markers[1].second.halt_id, HaltId(2));
}

TEST(HaltingEngine, RunningProcessInterceptsNothing) {
  RingFixture fx;
  HaltingEngine engine = fx.make_engine();
  EXPECT_FALSE(
      engine.intercept_message(fx.in_channel(), Message::application({})));
  EXPECT_FALSE(engine.intercept_timer(TimerId(1)));
}

TEST(HaltingEngine, LaterWaveMarkerBufferedWhileHalted) {
  RingFixture fx;
  HaltingEngine engine = fx.make_engine();
  engine.initiate(fx.ctx);  // wave 1
  // Anything offered to intercept_message while halted stays "in the
  // channel" and comes back on resume — the generic buffering contract,
  // whatever the message kind.  (The shim itself routes later-wave markers
  // to on_halt_marker, which adopts the wave; see the tests below.)
  Message marker = Message::halt_marker(HaltId(2), {ProcessId(0)});
  EXPECT_TRUE(engine.intercept_message(fx.in_channel(), marker));
  const auto resume = engine.resume();
  ASSERT_EQ(resume.messages.size(), 1u);
  EXPECT_EQ(resume.messages[0].second.kind, MessageKind::kHaltMarker);
}

// Two initiators race: a wave-2 marker reaches a process already halted in
// wave 1.  The engine must adopt the newer wave — not re-enter the Halt
// Routine (which asserts against double entry) and not wedge the marker.
TEST(HaltingEngine, NewerWaveMarkerWhileHaltedAdoptsWave) {
  RingFixture fx;
  HaltingEngine engine = fx.make_engine();
  engine.initiate(fx.ctx);  // wave 1: spontaneous halt
  ASSERT_TRUE(engine.halted());
  ASSERT_EQ(fx.captures, 1);

  engine.on_halt_marker(fx.ctx, fx.in_channel(),
                        HaltMarkerData{HaltId(2), {ProcessId(0)}});

  EXPECT_TRUE(engine.halted());
  EXPECT_EQ(engine.last_halt_id(), 2u);
  // State was captured once, at the original halt instant: nothing ran
  // in between, so the wave-1 capture stands for wave 2.
  EXPECT_EQ(fx.captures, 1);
  // Both waves announced through on_halt...
  ASSERT_EQ(fx.halts.size(), 2u);
  EXPECT_EQ(fx.halts[0], HaltId(1));
  EXPECT_EQ(fx.halts[1], HaltId(2));
  // ...and both forwarded markers, the second with the new wave id and the
  // initiator's path extended with our own name.
  const auto markers = fx.ctx.halt_markers();
  ASSERT_EQ(markers.size(), 2u);
  EXPECT_EQ(markers[0].second.halt_id, HaltId(1));
  EXPECT_EQ(markers[1].second.halt_id, HaltId(2));
  ASSERT_EQ(markers[1].second.halt_path.size(), 2u);
  EXPECT_EQ(markers[1].second.halt_path[0], ProcessId(0));
  EXPECT_EQ(markers[1].second.halt_path[1], fx.self);
  // The marker's channel closed wave 2's recording; with one in-channel
  // the local snapshot is complete, for wave 2 only.
  ASSERT_EQ(fx.completions.size(), 1u);
  EXPECT_EQ(fx.completions[0].halt_path.size(), 1u);
  EXPECT_EQ(fx.completions[0].halt_path[0], ProcessId(0));
}

TEST(HaltingEngine, AdoptedWaveReseedsChannelStateFromBufferedMessages) {
  RingFixture fx;
  HaltingEngine engine = fx.make_engine();
  engine.initiate(fx.ctx);  // wave 1
  // An application message arrives while halted: logically in the channel.
  Message app = Message::application(Bytes{0x42});
  EXPECT_TRUE(engine.intercept_message(fx.in_channel(), app));

  engine.on_halt_marker(fx.ctx, fx.in_channel(),
                        HaltMarkerData{HaltId(2), {ProcessId(0)}});

  // Wave 2's channel state includes the buffered message: it was in the
  // channel before wave 2's marker (Lemma 2.2).
  ASSERT_EQ(fx.completions.size(), 1u);
  ASSERT_EQ(fx.completions[0].in_channels.size(), 1u);
  ASSERT_EQ(fx.completions[0].in_channels[0].messages.size(), 1u);
  EXPECT_EQ(fx.completions[0].in_channels[0].messages[0], Bytes{0x42});
  // Resume still replays it to the application exactly once.
  const auto resume = engine.resume();
  ASSERT_EQ(resume.messages.size(), 1u);
  EXPECT_EQ(resume.messages[0].first, fx.in_channel());
  EXPECT_EQ(resume.messages[0].second.kind, MessageKind::kApplication);
}

TEST(HaltingEngine, CompletionReportedOnce) {
  RingFixture fx;
  HaltingEngine engine = fx.make_engine();
  engine.on_halt_marker(fx.ctx, fx.in_channel(), HaltMarkerData{HaltId(1), {}});
  EXPECT_EQ(fx.completions.size(), 1u);
  // Duplicate same-wave marker does not re-report.
  engine.on_halt_marker(fx.ctx, fx.in_channel(), HaltMarkerData{HaltId(1), {}});
  EXPECT_EQ(fx.completions.size(), 1u);
}

TEST(HaltingEngine, ProcessWithNoChannelsCompletesImmediately) {
  Topology topology(2);
  topology.add_channel(ProcessId(0), ProcessId(1));
  FakeContext ctx(ProcessId(0), &topology);  // p0: out only, no in
  std::vector<ProcessSnapshot> completions;
  HaltingEngine engine(
      ProcessId(0), &topology,
      HaltingEngine::Callbacks{[] { return ProcessSnapshot{}; },
                               nullptr,
                               [&](const ProcessSnapshot& snapshot) {
                                 completions.push_back(snapshot);
                               }});
  engine.initiate(ctx);
  EXPECT_EQ(completions.size(), 1u);
}

// ---- SnapshotEngine ----

struct SnapshotFixture {
  Topology topology = Topology::ring(3);
  ProcessId self{1};
  FakeContext ctx{ProcessId(1), &topology};
  std::vector<ProcessSnapshot> completions;
  int captures = 0;

  SnapshotEngine make_engine() {
    return SnapshotEngine(
        self, &topology,
        SnapshotEngine::Callbacks{
            [this] {
              ++captures;
              ProcessSnapshot snapshot;
              snapshot.process = self;
              return snapshot;
            },
            [this](const ProcessSnapshot& snapshot) {
              completions.push_back(snapshot);
            }});
  }

  [[nodiscard]] ChannelId in_channel() const {
    return topology.in_channels(self)[0];
  }
};

TEST(SnapshotEngine, InitiateRecordsAndSendsMarkers) {
  SnapshotFixture fx;
  SnapshotEngine engine = fx.make_engine();
  engine.initiate(fx.ctx);
  EXPECT_TRUE(engine.recording());
  EXPECT_EQ(fx.captures, 1);
  ASSERT_EQ(fx.ctx.sent.size(), 1u);
  EXPECT_EQ(fx.ctx.sent[0].second.kind, MessageKind::kSnapshotMarker);
  EXPECT_EQ(fx.ctx.sent[0].second.snapshot->snapshot_id, 1u);
}

TEST(SnapshotEngine, RecordsChannelUntilMarker) {
  SnapshotFixture fx;
  SnapshotEngine engine = fx.make_engine();
  engine.initiate(fx.ctx);
  engine.observe_app_message(fx.in_channel(), Message::application(Bytes{5}));
  engine.on_marker(fx.ctx, fx.in_channel(), SnapshotMarkerData{1});
  ASSERT_EQ(fx.completions.size(), 1u);
  ASSERT_EQ(fx.completions[0].in_channels.size(), 1u);
  EXPECT_EQ(fx.completions[0].in_channels[0].messages,
            (std::vector<Bytes>{{5}}));
  EXPECT_FALSE(engine.recording());
}

TEST(SnapshotEngine, FirstMarkerMeansEmptyChannel) {
  SnapshotFixture fx;
  SnapshotEngine engine = fx.make_engine();
  engine.on_marker(fx.ctx, fx.in_channel(), SnapshotMarkerData{4});
  ASSERT_EQ(fx.completions.size(), 1u);
  // Sparse channel states: an empty channel records no entry at all.
  EXPECT_TRUE(fx.completions[0].in_channels.empty());
  EXPECT_EQ(engine.last_snapshot_id(), 4u);
}

TEST(SnapshotEngine, PostMarkerTrafficNotRecorded) {
  SnapshotFixture fx;
  SnapshotEngine engine = fx.make_engine();
  engine.on_marker(fx.ctx, fx.in_channel(), SnapshotMarkerData{1});
  engine.observe_app_message(fx.in_channel(), Message::application(Bytes{9}));
  ASSERT_EQ(fx.completions.size(), 1u);
  EXPECT_TRUE(fx.completions[0].in_channels.empty());
}

TEST(SnapshotEngine, SequentialWaves) {
  SnapshotFixture fx;
  SnapshotEngine engine = fx.make_engine();
  engine.on_marker(fx.ctx, fx.in_channel(), SnapshotMarkerData{1});
  engine.on_marker(fx.ctx, fx.in_channel(), SnapshotMarkerData{2});
  EXPECT_EQ(fx.completions.size(), 2u);
  EXPECT_EQ(engine.last_snapshot_id(), 2u);
  // Stale wave ignored.
  engine.on_marker(fx.ctx, fx.in_channel(), SnapshotMarkerData{1});
  EXPECT_EQ(fx.completions.size(), 2u);
}

TEST(SnapshotEngine, ObserveWhileIdleIsNoop) {
  SnapshotFixture fx;
  SnapshotEngine engine = fx.make_engine();
  engine.observe_app_message(fx.in_channel(), Message::application(Bytes{1}));
  EXPECT_FALSE(engine.recording());
  EXPECT_TRUE(fx.completions.empty());
}

}  // namespace
}  // namespace ddbg
