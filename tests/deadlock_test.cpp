// Tests for the resource-ring workload and consistent-snapshot deadlock
// detection: real circular waits are found, phantom deadlocks (unblocking
// message in flight) are not.
#include <gtest/gtest.h>

#include "analysis/consistency.hpp"
#include "analysis/deadlock.hpp"
#include "debugger/harness.hpp"
#include "workload/resources.hpp"

namespace ddbg {
namespace {

constexpr Duration kWait = Duration::seconds(60);

HarnessConfig seeded(std::uint64_t seed) {
  HarnessConfig config;
  config.seed = seed;
  return config;
}

TEST(ResourceRing, PoliteRingMakesProgress) {
  ResourceRingConfig config;
  config.strategy = ResourceStrategy::kPolite;
  config.max_work_units = 5;
  SimDebugHarness harness(resource_ring_topology(3),
                          make_resource_ring(3, config), seeded(71));
  harness.sim().run_for(Duration::seconds(5));
  for (std::uint32_t i = 0; i < 3; ++i) {
    const auto& process = dynamic_cast<ResourceRingProcess&>(
        harness.shim(ProcessId(i)).user());
    EXPECT_EQ(process.work_done(), 5u) << "p" << i;
  }
}

TEST(ResourceRing, GreedyRingDeadlocks) {
  ResourceRingConfig config;
  config.strategy = ResourceStrategy::kGreedy;
  SimDebugHarness harness(resource_ring_topology(4),
                          make_resource_ring(4, config), seeded(72));
  harness.sim().run_for(Duration::seconds(2));
  // No work gets done beyond possibly the first instants: everyone blocked.
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_NE(harness.shim(ProcessId(i)).describe_state().find("BLOCKED"),
              std::string::npos)
        << "p" << i;
  }
}

// acquire_delay (holding own for a while before requesting) exists for
// the threaded runtime, where real scheduling skew otherwise keeps the
// circular hold windows from overlapping; in the simulator it must not
// change the verdict.
TEST(ResourceRing, GreedyRingWithAcquireDelayDeadlocks) {
  ResourceRingConfig config;
  config.strategy = ResourceStrategy::kGreedy;
  config.acquire_delay = Duration::millis(5);
  SimDebugHarness harness(resource_ring_topology(3),
                          make_resource_ring(3, config), seeded(74));
  harness.sim().run_for(Duration::seconds(2));
  harness.session().halt();
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  auto report = find_deadlock(wave->state);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().deadlocked);
  EXPECT_EQ(report.value().blocked_processes, 3u);
}

TEST(Deadlock, DetectedInHaltedState) {
  ResourceRingConfig config;
  config.strategy = ResourceStrategy::kGreedy;
  SimDebugHarness harness(resource_ring_topology(4),
                          make_resource_ring(4, config), seeded(73));
  harness.sim().run_for(Duration::seconds(1));
  harness.session().halt();
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  EXPECT_TRUE(consistent_cut(wave->state));

  auto report = find_deadlock(wave->state);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().deadlocked);
  // The circular wait spans the whole ring.
  EXPECT_EQ(report.value().cycle.size(), 4u);
  EXPECT_EQ(report.value().blocked_processes, 4u);
  EXPECT_EQ(report.value().rescued_by_channel_state, 0u);
}

TEST(Deadlock, NotReportedForPoliteRing) {
  ResourceRingConfig config;
  config.strategy = ResourceStrategy::kPolite;
  SimDebugHarness harness(resource_ring_topology(3),
                          make_resource_ring(3, config), seeded(74));
  harness.sim().run_for(Duration::millis(50));
  harness.session().halt();
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  auto report = find_deadlock(wave->state);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().deadlocked);
}

TEST(Deadlock, PhantomSuppressedByChannelState) {
  // Synthetic S_h: p0 and p1 both "blocked waiting for grant", forming a
  // 2-cycle on paper — but p0's grant is already in flight, recorded in
  // its channel state.  With channel contents the cycle does not close;
  // without them (the naive baseline) it would.
  GlobalState state{HaltId(1)};

  auto blocked_snapshot = [](ProcessId p, bool grant_in_flight) {
    ProcessSnapshot snapshot;
    snapshot.process = p;
    ByteWriter writer;
    writer.u8(1u << 0);  // holding_own
    writer.u8(2);        // Phase::kWaitingForGrant
    writer.u32(0);
    snapshot.state = std::move(writer).take();
    if (grant_in_flight) {
      snapshot.in_channels.push_back(ChannelState{
          ChannelId(0),
          {ResourceRingProcess::encode_message(ResourceMessage::kGrant)}});
    }
    return snapshot;
  };

  state.add(blocked_snapshot(ProcessId(0), /*grant_in_flight=*/true));
  state.add(blocked_snapshot(ProcessId(1), /*grant_in_flight=*/false));

  auto report = find_deadlock(state);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().deadlocked);
  EXPECT_EQ(report.value().blocked_processes, 2u);
  EXPECT_EQ(report.value().rescued_by_channel_state, 1u);

  // Without the in-flight grant the same cut is a true 2-cycle.
  GlobalState stuck{HaltId(2)};
  stuck.add(blocked_snapshot(ProcessId(0), false));
  stuck.add(blocked_snapshot(ProcessId(1), false));
  auto stuck_report = find_deadlock(stuck);
  ASSERT_TRUE(stuck_report.ok());
  EXPECT_TRUE(stuck_report.value().deadlocked);
  EXPECT_EQ(stuck_report.value().cycle.size(), 2u);
}

TEST(Deadlock, MixedChainWithoutCycle) {
  // p0 waits on p1 (grant); p1 is running: a chain, not a cycle.
  GlobalState state{HaltId(1)};
  ProcessSnapshot blocked;
  blocked.process = ProcessId(0);
  {
    ByteWriter writer;
    writer.u8(1);   // holding_own
    writer.u8(2);   // kWaitingForGrant
    writer.u32(3);
    blocked.state = std::move(writer).take();
  }
  ProcessSnapshot running;
  running.process = ProcessId(1);
  {
    ByteWriter writer;
    writer.u8(0);
    writer.u8(0);  // kThinking
    writer.u32(7);
    running.state = std::move(writer).take();
  }
  state.add(blocked);
  state.add(running);
  auto report = find_deadlock(state);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().deadlocked);
  EXPECT_EQ(report.value().blocked_processes, 1u);
}

TEST(Deadlock, RejectsTinySystems) {
  GlobalState state{HaltId(1)};
  EXPECT_FALSE(find_deadlock(state).ok());
}

TEST(Deadlock, StablePropertyPersistsAcrossWaves) {
  // A deadlock seen in wave 1 is still there in wave 2 (stability).
  ResourceRingConfig config;
  config.strategy = ResourceStrategy::kGreedy;
  SimDebugHarness harness(resource_ring_topology(3),
                          make_resource_ring(3, config), seeded(75));
  harness.sim().run_for(Duration::seconds(1));
  harness.session().halt();
  auto first = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(find_deadlock(first->state).value().deadlocked);

  harness.session().resume();
  harness.sim().run_for(Duration::millis(100));
  harness.session().halt();
  const bool second_complete = harness.sim().run_until_condition(
      [&] { return harness.debugger().halt_complete(2); },
      harness.sim().now() + kWait);
  ASSERT_TRUE(second_complete);
  auto second = harness.debugger().halt_wave(2);
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(find_deadlock(second->state).value().deadlocked);
}

}  // namespace
}  // namespace ddbg
