// Unit tests for the DebuggerProcess itself, driven with a fake context:
// marker forwarding, wave bookkeeping, report collection, breakpoint
// arming, route-marker forwarding and the resume watermark.
#include <gtest/gtest.h>

#include "debugger/debugger_process.hpp"
#include "tests/test_util.hpp"

namespace ddbg {
namespace {

using testing::FakeContext;

struct Fixture {
  Topology topology = Topology::ring(2).with_debugger();  // p0, p1, d=p2
  FakeContext ctx{ProcessId(2), &topology};
  DebuggerProcess debugger;

  Fixture() { debugger.on_start(ctx); }

  [[nodiscard]] ChannelId from(ProcessId p) const {
    return topology.control_from(p);
  }

  ProcessSnapshot snapshot_for(ProcessId p) {
    ProcessSnapshot snapshot;
    snapshot.process = p;
    snapshot.state = Bytes{static_cast<std::uint8_t>(p.value())};
    return snapshot;
  }

  void deliver_command(ProcessId reporter, const Command& command) {
    debugger.on_message(ctx, from(reporter),
                        Message::control(command.encode()));
  }
};

TEST(DebuggerProcess, InitiateHaltBroadcastsMarkers) {
  Fixture fx;
  const std::uint64_t wave = fx.debugger.initiate_halt(fx.ctx);
  EXPECT_EQ(wave, 1u);
  const auto markers = fx.ctx.halt_markers();
  ASSERT_EQ(markers.size(), 2u);  // one per user process
  for (const auto& [channel, data] : markers) {
    EXPECT_EQ(data.halt_id, HaltId(1));
    ASSERT_EQ(data.halt_path.size(), 1u);
    EXPECT_EQ(data.halt_path[0], ProcessId(2));  // d's own name
    EXPECT_TRUE(fx.topology.channel(channel).is_control);
  }
  EXPECT_EQ(fx.debugger.markers_forwarded(), 2u);
}

TEST(DebuggerProcess, IncomingMarkerAdoptedAndForwarded) {
  Fixture fx;
  fx.debugger.on_message(
      fx.ctx, fx.from(ProcessId(0)),
      Message::halt_marker(HaltId(5), {ProcessId(0)}));
  EXPECT_EQ(fx.debugger.last_halt_id(), 5u);
  const auto markers = fx.ctx.halt_markers();
  ASSERT_EQ(markers.size(), 2u);
  // Path extended with d's name.
  EXPECT_EQ(markers[0].second.halt_path.size(), 2u);
  EXPECT_EQ(markers[0].second.halt_path[1], ProcessId(2));
  // Duplicate marker of the same wave: no re-forwarding.
  fx.debugger.on_message(fx.ctx, fx.from(ProcessId(1)),
                         Message::halt_marker(HaltId(5), {ProcessId(1)}));
  EXPECT_EQ(fx.ctx.halt_markers().size(), 2u);
}

TEST(DebuggerProcess, CollectsHaltReportsIntoWave) {
  Fixture fx;
  fx.debugger.initiate_halt(fx.ctx);
  EXPECT_FALSE(fx.debugger.latest_halt_complete());

  fx.deliver_command(ProcessId(0), Command::halt_report(
                                       ProcessId(0), 1,
                                       fx.snapshot_for(ProcessId(0))));
  EXPECT_FALSE(fx.debugger.latest_halt_complete());
  fx.deliver_command(ProcessId(1), Command::halt_report(
                                       ProcessId(1), 1,
                                       fx.snapshot_for(ProcessId(1))));
  EXPECT_TRUE(fx.debugger.latest_halt_complete());
  auto wave = fx.debugger.latest_halt_wave();
  ASSERT_TRUE(wave.has_value());
  EXPECT_EQ(wave->state.size(), 2u);
  EXPECT_TRUE(wave->state.has(ProcessId(0)));
  EXPECT_TRUE(wave->state.has(ProcessId(1)));
}

TEST(DebuggerProcess, ResumeWatermarkHidesOldWave) {
  Fixture fx;
  fx.debugger.initiate_halt(fx.ctx);
  fx.deliver_command(ProcessId(0), Command::halt_report(
                                       ProcessId(0), 1,
                                       fx.snapshot_for(ProcessId(0))));
  fx.deliver_command(ProcessId(1), Command::halt_report(
                                       ProcessId(1), 1,
                                       fx.snapshot_for(ProcessId(1))));
  ASSERT_TRUE(fx.debugger.latest_halt_complete());
  fx.debugger.resume_all(fx.ctx);
  EXPECT_FALSE(fx.debugger.latest_halt_complete());
  // The historical wave stays queryable.
  EXPECT_TRUE(fx.debugger.halt_complete(1));
}

TEST(DebuggerProcess, ResumeBroadcastsResumeCommands) {
  Fixture fx;
  fx.debugger.initiate_halt(fx.ctx);
  fx.ctx.sent.clear();
  fx.debugger.resume_all(fx.ctx);
  std::size_t resumes = 0;
  for (const auto& [channel, message] : fx.ctx.sent) {
    ASSERT_EQ(message.kind, MessageKind::kControl);
    auto command = Command::decode(message.payload);
    ASSERT_TRUE(command.ok());
    EXPECT_EQ(command.value().kind, CommandKind::kResume);
    EXPECT_EQ(command.value().wave_id, 1u);
    ++resumes;
  }
  EXPECT_EQ(resumes, 2u);
}

TEST(DebuggerProcess, ResumeWithNoWaveIsNoop) {
  Fixture fx;
  fx.debugger.resume_all(fx.ctx);
  EXPECT_TRUE(fx.ctx.sent.empty());
}

TEST(DebuggerProcess, SetLinkedBreakpointArmsFirstStageProcesses) {
  Fixture fx;
  BreakpointSpec spec;
  spec.kind = BreakpointSpec::Kind::kLinked;
  DisjunctivePredicate dp;
  dp.alternatives.push_back(SimplePredicate::user_event(ProcessId(0), "a"));
  dp.alternatives.push_back(SimplePredicate::user_event(ProcessId(1), "b"));
  DisjunctivePredicate dp2;
  dp2.alternatives.push_back(SimplePredicate::user_event(ProcessId(1), "c"));
  spec.linked = LinkedPredicate::chain({dp, dp2});

  const BreakpointId bp = fx.debugger.set_breakpoint(fx.ctx, spec);
  EXPECT_TRUE(bp.valid());
  // Both p0 and p1 are involved in the first DP: two arm commands.
  std::size_t arms = 0;
  for (const auto& [channel, message] : fx.ctx.sent) {
    auto command = Command::decode(message.payload);
    ASSERT_TRUE(command.ok());
    if (command.value().kind == CommandKind::kArmPredicate) {
      EXPECT_EQ(command.value().breakpoint, bp);
      auto lp = LinkedPredicate::decode_from_bytes(command.value().predicate);
      ASSERT_TRUE(lp.ok());
      EXPECT_EQ(lp.value().depth(), 2u);
      ++arms;
    }
  }
  EXPECT_EQ(arms, 2u);
}

TEST(DebuggerProcess, OrderedConjunctionArmsAllPermutations) {
  Fixture fx;
  BreakpointSpec spec;
  spec.kind = BreakpointSpec::Kind::kConjunctive;
  spec.conjunctive.terms.push_back(
      SimplePredicate::user_event(ProcessId(0), "a"));
  spec.conjunctive.terms.push_back(
      SimplePredicate::user_event(ProcessId(1), "b"));
  fx.debugger.set_breakpoint(fx.ctx, spec);
  // 2 permutations x 1 first-stage process each.
  std::size_t arms = 0;
  for (const auto& [channel, message] : fx.ctx.sent) {
    auto command = Command::decode(message.payload);
    if (command.ok() &&
        command.value().kind == CommandKind::kArmPredicate) {
      ++arms;
    }
  }
  EXPECT_EQ(arms, 2u);
}

TEST(DebuggerProcess, RouteMarkerForwardedToTarget) {
  Fixture fx;
  LinkedPredicate lp;
  DisjunctivePredicate dp;
  dp.alternatives.push_back(SimplePredicate::user_event(ProcessId(1), "x"));
  lp = LinkedPredicate::single(dp);
  fx.deliver_command(
      ProcessId(0),
      Command::route_marker(ProcessId(0), ProcessId(1), BreakpointId(9),
                            lp.encode_to_bytes(), 1, true));
  ASSERT_EQ(fx.ctx.sent.size(), 1u);
  const auto& [channel, message] = fx.ctx.sent[0];
  EXPECT_EQ(channel, fx.topology.control_to(ProcessId(1)));
  auto command = Command::decode(message.payload);
  ASSERT_TRUE(command.ok());
  EXPECT_EQ(command.value().kind, CommandKind::kArmPredicate);
  EXPECT_EQ(command.value().breakpoint, BreakpointId(9));
  EXPECT_EQ(command.value().stage_index, 1u);
  EXPECT_TRUE(command.value().monitor);
}

TEST(DebuggerProcess, HitsAndHitCounts) {
  Fixture fx;
  fx.deliver_command(ProcessId(0), Command::breakpoint_hit(
                                       ProcessId(0), BreakpointId(3), "a"));
  fx.deliver_command(ProcessId(1), Command::breakpoint_hit(
                                       ProcessId(1), BreakpointId(3), "b"));
  fx.deliver_command(ProcessId(1), Command::breakpoint_hit(
                                       ProcessId(1), BreakpointId(4), "c"));
  EXPECT_EQ(fx.debugger.hits().size(), 3u);
  EXPECT_EQ(fx.debugger.hit_count(BreakpointId(3)), 2u);
  EXPECT_EQ(fx.debugger.hit_count(BreakpointId(4)), 1u);
  EXPECT_EQ(fx.debugger.hit_count(BreakpointId(5)), 0u);
}

TEST(DebuggerProcess, StateReportsStored) {
  Fixture fx;
  EXPECT_FALSE(fx.debugger.state_report(ProcessId(0)).has_value());
  fx.deliver_command(ProcessId(0), Command::state_report(
                                       ProcessId(0),
                                       fx.snapshot_for(ProcessId(0))));
  auto report = fx.debugger.state_report(ProcessId(0));
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->state, Bytes{0});
}

TEST(DebuggerProcess, SnapshotWaveCollection) {
  Fixture fx;
  const std::uint64_t wave = fx.debugger.initiate_snapshot(fx.ctx);
  EXPECT_EQ(wave, 1u);
  std::size_t markers = 0;
  for (const auto& [channel, message] : fx.ctx.sent) {
    if (message.kind == MessageKind::kSnapshotMarker) ++markers;
  }
  EXPECT_EQ(markers, 2u);
  EXPECT_FALSE(fx.debugger.snapshot_complete(1));
  fx.deliver_command(ProcessId(0), Command::snapshot_report(
                                       ProcessId(0), 1,
                                       fx.snapshot_for(ProcessId(0))));
  fx.deliver_command(ProcessId(1), Command::snapshot_report(
                                       ProcessId(1), 1,
                                       fx.snapshot_for(ProcessId(1))));
  EXPECT_TRUE(fx.debugger.snapshot_complete(1));
}

TEST(DebuggerProcess, MalformedControlMessageIgnored) {
  Fixture fx;
  fx.debugger.on_message(fx.ctx, fx.from(ProcessId(0)),
                         Message::control(Bytes{0xff, 0x00}));
  EXPECT_EQ(fx.debugger.last_halt_id(), 0u);  // nothing changed, no crash
}

}  // namespace
}  // namespace ddbg
