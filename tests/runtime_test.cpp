// Integration tests on the multithreaded runtime: real concurrency, real
// races between handlers — the algorithms must still produce consistent
// halted states.
//
// No wall-clock sleeps: every test synchronizes on observable state
// (atomic workload counters, armed-watch counts, wave completion) so it
// passes deterministically under load, `ctest -j` and TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "analysis/consistency.hpp"
#include "debugger/harness.hpp"
#include "workload/behaviors.hpp"

namespace ddbg {
namespace {

constexpr Duration kWait = Duration::seconds(15);

class Counter final : public Process {
 public:
  void on_message(ProcessContext&, ChannelId, Message) override {
    received.fetch_add(1);
  }
  std::atomic<int> received{0};
};

class StartBurst final : public Process {
 public:
  explicit StartBurst(int count) : count_(count) {}
  void on_start(ProcessContext& ctx) override {
    for (int i = 0; i < count_; ++i) {
      for (const ChannelId c : ctx.topology().out_channels(ctx.self())) {
        ctx.send(c, Message::application(Bytes{static_cast<std::uint8_t>(i)}));
      }
    }
  }
  void on_message(ProcessContext&, ChannelId, Message) override {}

 private:
  int count_;
};

TEST(Runtime, DeliversMessagesAcrossThreads) {
  Topology topology(2);
  topology.add_channel(ProcessId(0), ProcessId(1));
  std::vector<ProcessPtr> processes;
  processes.push_back(std::make_unique<StartBurst>(100));
  auto counter = std::make_unique<Counter>();
  Counter* counter_ptr = counter.get();
  processes.push_back(std::move(counter));

  Runtime runtime(std::move(topology), std::move(processes));
  runtime.start();
  EXPECT_TRUE(Runtime::wait_until(
      [&] { return counter_ptr->received.load() == 100; }, kWait));
  runtime.shutdown();
  EXPECT_EQ(runtime.stats().messages_sent, 100u);
}

TEST(Runtime, TimersFire) {
  class Ticker final : public Process {
   public:
    void on_start(ProcessContext& ctx) override {
      ctx.set_timer(Duration::millis(1));
    }
    void on_timer(ProcessContext& ctx, TimerId) override {
      if (ticks.fetch_add(1) + 1 < 5) ctx.set_timer(Duration::millis(1));
    }
    void on_message(ProcessContext&, ChannelId, Message) override {}
    std::atomic<int> ticks{0};
  };
  Topology topology(1);
  std::vector<ProcessPtr> processes;
  auto ticker = std::make_unique<Ticker>();
  Ticker* ticker_ptr = ticker.get();
  processes.push_back(std::move(ticker));
  Runtime runtime(std::move(topology), std::move(processes));
  runtime.start();
  EXPECT_TRUE(Runtime::wait_until(
      [&] { return ticker_ptr->ticks.load() >= 5; }, kWait));
  runtime.shutdown();
}

TEST(Runtime, PostAndCall) {
  Topology topology(1);
  std::vector<ProcessPtr> processes;
  processes.push_back(std::make_unique<Counter>());
  Runtime runtime(std::move(topology), std::move(processes));
  runtime.start();
  std::atomic<bool> ran{false};
  EXPECT_TRUE(runtime.call(
      ProcessId(0),
      [&](ProcessContext& ctx, Process&) {
        EXPECT_EQ(ctx.self(), ProcessId(0));
        ran = true;
      },
      kWait));
  EXPECT_TRUE(ran.load());
  runtime.shutdown();
}

TEST(Runtime, CancelledTimerDoesNotFire) {
  // A worker fires timers in deadline order, so a sentinel timer with a
  // deadline *after* the cancelled one proves the cancelled timer's window
  // has fully passed — no wall-clock sleep needed.
  class CancelTicker final : public Process {
   public:
    void on_start(ProcessContext& ctx) override {
      const TimerId cancelled = ctx.set_timer(Duration::millis(10));
      ctx.cancel_timer(cancelled);
      ctx.set_timer(Duration::millis(1));  // first tick
    }
    void on_timer(ProcessContext& ctx, TimerId) override {
      if (ticks.fetch_add(1) + 1 == 1) {
        // Sentinel: lands at ~21ms, past the cancelled timer's 10ms
        // deadline.  If cancellation were broken, the cancelled timer
        // would fire between the two ticks.
        ctx.set_timer(Duration::millis(20));
      }
    }
    void on_message(ProcessContext&, ChannelId, Message) override {}
    std::atomic<int> ticks{0};
  };
  Topology topology(1);
  std::vector<ProcessPtr> processes;
  auto ticker = std::make_unique<CancelTicker>();
  CancelTicker* ticker_ptr = ticker.get();
  processes.push_back(std::move(ticker));
  Runtime runtime(std::move(topology), std::move(processes));
  runtime.start();
  EXPECT_TRUE(
      Runtime::wait_until([&] { return ticker_ptr->ticks.load() >= 2; }, kWait));
  runtime.shutdown();
  EXPECT_EQ(ticker_ptr->ticks.load(), 2);
}

// Regression: timer ids came from a static counter shared by every
// runtime instance in the process, so a second runtime started at
// whatever the first left off (non-deterministic ids, eventual wrap).
// Ids must restart at 1 per instance.
TEST(Runtime, TimerIdsRestartPerRuntimeInstance) {
  class FirstTimerIdRecorder final : public Process {
   public:
    void on_start(ProcessContext& ctx) override {
      first_id.store(ctx.set_timer(Duration::millis(1)).value());
    }
    void on_message(ProcessContext&, ChannelId, Message) override {}
    void on_timer(ProcessContext&, TimerId) override { fired.store(true); }
    std::atomic<std::uint32_t> first_id{0};
    std::atomic<bool> fired{false};
  };
  for (int instance = 0; instance < 2; ++instance) {
    Topology topology(1);
    std::vector<ProcessPtr> processes;
    auto recorder = std::make_unique<FirstTimerIdRecorder>();
    FirstTimerIdRecorder* recorder_ptr = recorder.get();
    processes.push_back(std::move(recorder));
    Runtime runtime(std::move(topology), std::move(processes));
    runtime.start();
    ASSERT_TRUE(Runtime::wait_until(
        [&] { return recorder_ptr->fired.load(); }, kWait));
    runtime.shutdown();
    EXPECT_EQ(recorder_ptr->first_id.load(), 1u)
        << "instance " << instance;
  }
}

TEST(Runtime, ShutdownIsIdempotentAndSafe) {
  Topology topology(2);
  topology.add_channel(ProcessId(0), ProcessId(1));
  std::vector<ProcessPtr> processes;
  processes.push_back(std::make_unique<StartBurst>(10));
  processes.push_back(std::make_unique<Counter>());
  Runtime runtime(std::move(topology), std::move(processes));
  runtime.start();
  runtime.shutdown();
  runtime.shutdown();
}

// ---- Full debugger stack on real threads ----

// Deterministic warm-up: wait until a process demonstrably sent traffic
// instead of sleeping and hoping the scheduler ran it.
const GossipProcess& gossip_at(RuntimeDebugHarness& harness, std::uint32_t p) {
  return dynamic_cast<const GossipProcess&>(harness.shim(ProcessId(p)).user());
}

TEST(RuntimeDebugger, HaltGossipConsistently) {
  GossipConfig gossip;
  gossip.send_interval = Duration::micros(200);
  RuntimeDebugHarness harness(Topology::ring(4), make_gossip(4, gossip));
  harness.start();
  ASSERT_TRUE(Runtime::wait_until(
      [&] { return gossip_at(harness, 0).sent() >= 5; }, kWait));
  harness.session().halt();
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  EXPECT_EQ(wave->state.size(), 4u);
  EXPECT_TRUE(consistent_cut(wave->state));
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(harness.shim(ProcessId(i)).halted());
  }
  harness.shutdown();
}

TEST(RuntimeDebugger, BankConservationUnderRealRaces) {
  BankConfig bank;
  bank.transfer_interval = Duration::micros(300);
  RuntimeDebugHarness harness(Topology::complete(4), make_bank(4, bank));
  harness.start();
  // Halt only after real money is in motion.
  ASSERT_TRUE(Runtime::wait_until(
      [&] {
        return dynamic_cast<const BankProcess&>(
                   harness.shim(ProcessId(0)).user())
                   .transfers_made() >= 3;
      },
      kWait));
  harness.session().halt();
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  auto total = BankProcess::total_money(wave->state);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total.value(), 4 * bank.initial_balance);
  harness.shutdown();
}

TEST(RuntimeDebugger, BreakpointFiresOnThreads) {
  TokenRingConfig ring_config;
  ring_config.rounds = 1000;
  ring_config.hop_delay = Duration::micros(200);
  // Hold the token until the breakpoint is armed on p1: arming travels as
  // an asynchronous control message, and a free-running ring would race it
  // past the first two hops.
  ring_config.start_gate = std::make_shared<std::atomic<bool>>(false);
  RuntimeDebugHarness harness(Topology::ring(3),
                              make_token_ring(3, ring_config));
  harness.start();
  auto bp = harness.session().set_breakpoint("(p1:event(token))^2");
  ASSERT_TRUE(bp.ok());
  ASSERT_TRUE(harness.wait_for_armed(1, kWait));
  ring_config.start_gate->store(true, std::memory_order_release);
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  const auto& p1 = dynamic_cast<TokenRingProcess&>(
      harness.shim(ProcessId(1)).user());
  EXPECT_EQ(p1.tokens_seen(), 2u);
  harness.shutdown();
}

TEST(RuntimeDebugger, HaltResumeCycles) {
  GossipConfig gossip;
  gossip.send_interval = Duration::micros(300);
  RuntimeDebugHarness harness(Topology::ring(3), make_gossip(3, gossip));
  harness.start();
  for (std::uint64_t wave_id = 1; wave_id <= 3; ++wave_id) {
    // The system must demonstrably make progress between waves.
    const std::uint64_t sent_before = gossip_at(harness, 0).sent();
    ASSERT_TRUE(Runtime::wait_until(
        [&] { return gossip_at(harness, 0).sent() > sent_before + 2; },
        kWait));
    harness.session().halt();
    const bool complete = Runtime::wait_until(
        [&] { return harness.debugger().halt_complete(wave_id); }, kWait);
    ASSERT_TRUE(complete) << "wave " << wave_id;
    auto wave = harness.debugger().halt_wave(wave_id);
    ASSERT_TRUE(wave.has_value());
    EXPECT_TRUE(consistent_cut(wave->state)) << "wave " << wave_id;
    harness.session().resume();
  }
  harness.shutdown();
}

TEST(RuntimeDebugger, SnapshotWhileRunning) {
  GossipConfig gossip;
  gossip.send_interval = Duration::micros(200);
  RuntimeDebugHarness harness(Topology::ring(3), make_gossip(3, gossip));
  harness.start();
  ASSERT_TRUE(Runtime::wait_until(
      [&] { return gossip_at(harness, 0).sent() >= 2; }, kWait));
  auto snapshot = harness.session().take_snapshot(kWait);
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->state.size(), 3u);
  EXPECT_TRUE(consistent_cut(snapshot->state));
  EXPECT_FALSE(harness.shim(ProcessId(0)).halted());
  harness.shutdown();
}

TEST(RuntimeDebugger, InspectProcess) {
  GossipConfig gossip;
  RuntimeDebugHarness harness(Topology::ring(3), make_gossip(3, gossip));
  harness.start();
  auto report = harness.session().inspect(ProcessId(2), kWait);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->process, ProcessId(2));
  harness.shutdown();
}

}  // namespace
}  // namespace ddbg
