// Unit tests for the application workloads on the simulator.
#include <gtest/gtest.h>

#include "sim/simulation.hpp"
#include "workload/behaviors.hpp"
#include "workload/lazy.hpp"

namespace ddbg {
namespace {

TEST(TokenRing, CompletesConfiguredRounds) {
  TokenRingConfig config;
  config.rounds = 5;
  Simulation sim(Topology::ring(4), make_token_ring(4, config));
  EXPECT_TRUE(sim.run_until_quiescent());
  for (std::uint32_t i = 0; i < 4; ++i) {
    const auto& process =
        dynamic_cast<TokenRingProcess&>(sim.process(ProcessId(i)));
    EXPECT_EQ(process.tokens_seen(), 5u) << "p" << i;
  }
  // 5 rounds x 4 hops = 20 token messages.
  EXPECT_EQ(sim.stats().app_messages_sent, 20u);
}

TEST(TokenRing, SnapshotStateReflectsProgress) {
  TokenRingConfig config;
  config.rounds = 2;
  Simulation sim(Topology::ring(3), make_token_ring(3, config));
  sim.run_until_quiescent();
  const auto& process =
      dynamic_cast<TokenRingProcess&>(sim.process(ProcessId(1)));
  const Bytes state = process.snapshot_state();
  ByteReader reader(state);
  EXPECT_EQ(reader.u32().value(), 2u);  // tokens_seen
  EXPECT_NE(process.describe_state().find("tokens_seen=2"),
            std::string::npos);
}

TEST(Pipeline, AllItemsFlowToConsumer) {
  PipelineConfig config;
  config.items = 25;
  Simulation sim(Topology::pipeline(4), make_pipeline(4, config));
  EXPECT_TRUE(sim.run_until_quiescent());
  const auto& consumer =
      dynamic_cast<PipelineProcess&>(sim.process(ProcessId(3)));
  EXPECT_EQ(consumer.items_seen(), 25u);
  // Checksum preserved along the chain: sum 1..25.
  const auto& producer =
      dynamic_cast<PipelineProcess&>(sim.process(ProcessId(0)));
  EXPECT_EQ(producer.snapshot_state(), consumer.snapshot_state());
}

TEST(Pipeline, UnboundedProducerKeepsGoing) {
  PipelineConfig config;
  config.items = 0;
  Simulation sim(Topology::pipeline(2), make_pipeline(2, config));
  sim.run_for(Duration::millis(50));
  const auto& producer =
      dynamic_cast<PipelineProcess&>(sim.process(ProcessId(0)));
  EXPECT_GT(producer.items_seen(), 10u);
}

TEST(Gossip, MaxSendsRespected) {
  GossipConfig config;
  config.max_sends = 7;
  Simulation sim(Topology::ring(3), make_gossip(3, config));
  EXPECT_TRUE(sim.run_until_quiescent());
  std::uint64_t total_sent = 0;
  std::uint64_t total_received = 0;
  for (std::uint32_t i = 0; i < 3; ++i) {
    const auto& process =
        dynamic_cast<GossipProcess&>(sim.process(ProcessId(i)));
    EXPECT_EQ(process.sent(), 7u);
    total_sent += process.sent();
    total_received += process.received();
  }
  EXPECT_EQ(total_sent, total_received);
}

TEST(Gossip, PayloadSizeHonored) {
  GossipConfig config;
  config.max_sends = 1;
  config.payload_bytes = 64;
  Simulation sim(Topology::ring(2), make_gossip(2, config));
  sim.run_until_quiescent();
  EXPECT_GE(sim.stats().bytes_sent, 2u * 64u);
}

TEST(Bank, ConservationAtQuiescence) {
  BankConfig config;
  config.max_transfers = 20;
  Simulation sim(Topology::complete(4), make_bank(4, config));
  EXPECT_TRUE(sim.run_until_quiescent());
  std::int64_t total = 0;
  for (std::uint32_t i = 0; i < 4; ++i) {
    total += dynamic_cast<BankProcess&>(sim.process(ProcessId(i))).balance();
  }
  EXPECT_EQ(total, 4 * config.initial_balance);
}

TEST(Bank, NeverOverdraws) {
  BankConfig config;
  config.max_transfers = 50;
  config.max_transfer = 500;
  Simulation sim(Topology::complete(3), make_bank(3, config));
  sim.run_until_quiescent();
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_GE(dynamic_cast<BankProcess&>(sim.process(ProcessId(i))).balance(),
              0);
  }
}

TEST(Bank, DecodeHelpers) {
  BankConfig config;
  BankProcess bank(config);
  auto balance = BankProcess::decode_balance(bank.snapshot_state());
  ASSERT_TRUE(balance.ok());
  EXPECT_EQ(balance.value(), config.initial_balance);
  EXPECT_FALSE(BankProcess::decode_balance(Bytes{1}).ok());
  EXPECT_FALSE(BankProcess::decode_transfer(Bytes{}).ok());
}

TEST(Bank, TotalMoneyCountsChannels) {
  GlobalState state{HaltId(1)};
  BankConfig config;
  ProcessSnapshot s0;
  s0.process = ProcessId(0);
  s0.state = BankProcess(config).snapshot_state();  // 1000
  ByteWriter transfer;
  transfer.u64(250);
  s0.in_channels.push_back(
      ChannelState{ChannelId(0), {std::move(transfer).take()}});
  state.add(s0);
  auto total = BankProcess::total_money(state);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total.value(), 1250);
}

TEST(Lazy, DefersAppTrafficUntilPoll) {
  // p0 bursts 5 messages; p1 is lazy with a 50ms poll.
  class Burst final : public Process {
   public:
    void on_start(ProcessContext& ctx) override {
      for (int i = 0; i < 5; ++i) {
        ctx.send(ctx.topology().out_channels(ctx.self())[0],
                 Message::application(Bytes{static_cast<std::uint8_t>(i)}));
      }
    }
    void on_message(ProcessContext&, ChannelId, Message) override {}
  };
  class Sink final : public Process {
   public:
    void on_message(ProcessContext&, ChannelId, Message) override {
      ++received;
    }
    int received = 0;
  };

  Topology topology(2);
  topology.add_channel(ProcessId(0), ProcessId(1));
  std::vector<ProcessPtr> processes;
  processes.push_back(std::make_unique<Burst>());
  auto sink = std::make_unique<Sink>();
  Sink* sink_ptr = sink.get();
  processes.push_back(
      std::make_unique<LazyProcess>(std::move(sink), Duration::millis(50)));
  Simulation sim(std::move(topology), std::move(processes));

  sim.run_until(TimePoint{Duration::millis(30).ns});
  EXPECT_EQ(sink_ptr->received, 0);  // delivered but stashed
  auto& lazy = dynamic_cast<LazyProcess&>(sim.process(ProcessId(1)));
  EXPECT_EQ(lazy.stashed(), 5u);
  sim.run_until(TimePoint{Duration::millis(60).ns});
  EXPECT_EQ(sink_ptr->received, 5);
  EXPECT_EQ(lazy.stashed(), 0u);
}

TEST(Lazy, InnerTimersStillWork) {
  class Ticker final : public Process {
   public:
    void on_start(ProcessContext& ctx) override {
      ctx.set_timer(Duration::millis(3));
    }
    void on_timer(ProcessContext&, TimerId) override { ++ticks; }
    void on_message(ProcessContext&, ChannelId, Message) override {}
    int ticks = 0;
  };
  Topology topology(1);
  std::vector<ProcessPtr> processes;
  auto ticker = std::make_unique<Ticker>();
  Ticker* ticker_ptr = ticker.get();
  processes.push_back(
      std::make_unique<LazyProcess>(std::move(ticker), Duration::millis(100)));
  Simulation sim(std::move(topology), std::move(processes));
  sim.run_until(TimePoint{Duration::millis(10).ns});
  EXPECT_EQ(ticker_ptr->ticks, 1);  // inner timer, not the poll timer
}

}  // namespace
}  // namespace ddbg
