// Unit tests for the breakpoint text-language parser.
#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "core/predicate_parser.hpp"

namespace ddbg {
namespace {

TEST(Parser, SimpleUserEvent) {
  auto spec = parse_breakpoint("p0:event(token)");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().kind, BreakpointSpec::Kind::kLinked);
  ASSERT_EQ(spec.value().linked.stages.size(), 1u);
  const auto& sp = spec.value().linked.first().alternatives.at(0);
  EXPECT_EQ(sp.process, ProcessId(0));
  EXPECT_EQ(sp.kind, LocalEventKind::kUserEvent);
  EXPECT_EQ(sp.name, "token");
}

TEST(Parser, ProcedureEntry) {
  auto spec = parse_breakpoint("p3:enter(handle_request)");
  ASSERT_TRUE(spec.ok());
  const auto& sp = spec.value().linked.first().alternatives.at(0);
  EXPECT_EQ(sp.process, ProcessId(3));
  EXPECT_EQ(sp.kind, LocalEventKind::kProcedureEntered);
  EXPECT_EQ(sp.name, "handle_request");
}

TEST(Parser, BuiltinEventKinds) {
  const struct {
    const char* text;
    LocalEventKind kind;
  } cases[] = {
      {"p0:sent", LocalEventKind::kMessageSent},
      {"p0:recv", LocalEventKind::kMessageReceived},
      {"p0:started", LocalEventKind::kProcessStarted},
      {"p0:terminated", LocalEventKind::kProcessTerminated},
  };
  for (const auto& c : cases) {
    auto spec = parse_breakpoint(c.text);
    ASSERT_TRUE(spec.ok()) << c.text;
    EXPECT_EQ(spec.value().linked.first().alternatives.at(0).kind, c.kind)
        << c.text;
  }
}

TEST(Parser, VarComparisons) {
  auto spec = parse_breakpoint("p1:balance<=42");
  ASSERT_TRUE(spec.ok());
  const auto& sp = spec.value().linked.first().alternatives.at(0);
  EXPECT_EQ(sp.kind, LocalEventKind::kStateChange);
  EXPECT_EQ(sp.name, "balance");
  EXPECT_EQ(sp.op, CompareOp::kLe);
  EXPECT_EQ(sp.value, 42);
}

TEST(Parser, AllComparisonOps) {
  const struct {
    const char* text;
    CompareOp op;
  } cases[] = {
      {"p0:x==1", CompareOp::kEq}, {"p0:x!=1", CompareOp::kNe},
      {"p0:x<1", CompareOp::kLt},  {"p0:x<=1", CompareOp::kLe},
      {"p0:x>1", CompareOp::kGt},  {"p0:x>=1", CompareOp::kGe},
  };
  for (const auto& c : cases) {
    auto spec = parse_breakpoint(c.text);
    ASSERT_TRUE(spec.ok()) << c.text;
    EXPECT_EQ(spec.value().linked.first().alternatives.at(0).op, c.op)
        << c.text;
  }
}

TEST(Parser, Disjunction) {
  auto spec = parse_breakpoint("p0:event(a) | p1:event(b) | p2:recv");
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec.value().linked.stages.size(), 1u);
  EXPECT_EQ(spec.value().linked.first().alternatives.size(), 3u);
}

TEST(Parser, LinkedChain) {
  auto spec = parse_breakpoint("p0:event(a) -> p1:event(b) -> p2:event(c)");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().linked.stages.size(), 3u);
  EXPECT_EQ(spec.value().linked.depth(), 3u);
}

TEST(Parser, RepetitionWithParens) {
  auto spec = parse_breakpoint("p0:event(a) -> (p1:event(b))^3");
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec.value().linked.stages.size(), 2u);
  EXPECT_EQ(spec.value().linked.stages[1].repeat, 3u);
  EXPECT_EQ(spec.value().linked.depth(), 4u);
}

TEST(Parser, GroupedDisjunctionWithRepetition) {
  auto spec = parse_breakpoint("(p0:event(a) | p1:event(b))^2 -> p2:recv");
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec.value().linked.stages.size(), 2u);
  EXPECT_EQ(spec.value().linked.stages[0].repeat, 2u);
  EXPECT_EQ(spec.value().linked.stages[0].dp.alternatives.size(), 2u);
}

TEST(Parser, ConjunctionDefaultsOrdered) {
  auto spec = parse_breakpoint("p0:x==7 & p1:y==9");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().kind, BreakpointSpec::Kind::kConjunctive);
  EXPECT_EQ(spec.value().mode, ConjunctionMode::kOrdered);
  EXPECT_EQ(spec.value().conjunctive.terms.size(), 2u);
}

TEST(Parser, ConjunctionUnorderedMode) {
  auto spec = parse_breakpoint("p0:x==7 & p1:y==9 [unordered]");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().mode, ConjunctionMode::kUnordered);
}

TEST(Parser, ConjunctionExplicitOrderedMode) {
  auto spec = parse_breakpoint("p0:x==7 & p1:y==9 [ordered]");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().mode, ConjunctionMode::kOrdered);
}

TEST(Parser, MonitorModifierOnLinked) {
  auto spec = parse_breakpoint("p0:event(a) -> p1:event(b) [monitor]");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().action, BreakpointAction::kMonitor);
  EXPECT_EQ(spec.value().kind, BreakpointSpec::Kind::kLinked);
}

TEST(Parser, MonitorModifierOnConjunction) {
  auto spec = parse_breakpoint("p0:x==1 & p1:y==2 [unordered] [monitor]");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().mode, ConjunctionMode::kUnordered);
  EXPECT_EQ(spec.value().action, BreakpointAction::kMonitor);
}

TEST(Parser, HaltModifierIsDefaultAndExplicit) {
  auto implicit = parse_breakpoint("p0:event(a)");
  ASSERT_TRUE(implicit.ok());
  EXPECT_EQ(implicit.value().action, BreakpointAction::kHalt);
  auto explicit_halt = parse_breakpoint("p0:event(a) [halt]");
  ASSERT_TRUE(explicit_halt.ok());
  EXPECT_EQ(explicit_halt.value().action, BreakpointAction::kHalt);
}

TEST(Parser, OrderedModifierRejectedOnLinked) {
  EXPECT_FALSE(parse_breakpoint("p0:event(a) [ordered]").ok());
  EXPECT_FALSE(parse_breakpoint("p0:event(a) -> p1:recv [unordered]").ok());
}

TEST(Parser, VariableNamedLikeKeyword) {
  // "sent" followed by a comparison is a watched variable, not the
  // message-sent event.
  auto spec = parse_breakpoint("p0:sent>=5");
  ASSERT_TRUE(spec.ok());
  const auto& sp = spec.value().linked.first().alternatives.at(0);
  EXPECT_EQ(sp.kind, LocalEventKind::kStateChange);
  EXPECT_EQ(sp.name, "sent");
  EXPECT_EQ(sp.op, CompareOp::kGe);
}

TEST(Parser, ChannelFilterOnMessageEvents) {
  auto sent = parse_breakpoint("p0:sent(3)");
  ASSERT_TRUE(sent.ok());
  EXPECT_EQ(sent.value().linked.first().alternatives.at(0).channel_filter,
            ChannelId(3));
  auto recv = parse_breakpoint("p1:recv(0)");
  ASSERT_TRUE(recv.ok());
  EXPECT_EQ(recv.value().linked.first().alternatives.at(0).channel_filter,
            ChannelId(0));
  // Round trip through describe.
  EXPECT_EQ(parse_breakpoint(sent.value().describe()).value().describe(),
            sent.value().describe());
  // Malformed filters.
  EXPECT_FALSE(parse_breakpoint("p0:sent(").ok());
  EXPECT_FALSE(parse_breakpoint("p0:sent(x)").ok());
}

TEST(Parser, NegativeComparisonValue) {
  auto spec = parse_breakpoint("p1:balance<-10");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().linked.first().alternatives.at(0).value, -10);
}

TEST(Parser, WhitespaceInsensitive) {
  auto spec = parse_breakpoint("  p0:event(a)->p1:event(b)  ");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().linked.stages.size(), 2u);
}

TEST(Parser, DescribeRoundTrip) {
  // parse(describe(parse(x))) == parse(x) for a representative sample.
  const char* samples[] = {
      "p0:event(token)",
      "p0:event(a) | p1:event(b)",
      "p0:event(a) -> (p1:event(b))^2 -> p2:recv",
      "p1:balance<0",
  };
  for (const char* text : samples) {
    auto first = parse_breakpoint(text);
    ASSERT_TRUE(first.ok()) << text;
    auto second = parse_breakpoint(first.value().describe());
    ASSERT_TRUE(second.ok()) << first.value().describe();
    EXPECT_EQ(first.value().describe(), second.value().describe());
  }
}

TEST(Parser, Errors) {
  const char* bad[] = {
      "",                      // empty
      "p0",                    // missing predicate
      "p0:",                   // missing predicate body
      "q0:event(a)",           // bad process name
      "p:event(a)",            // missing process number
      "p0:event(",             // unterminated
      "p0:event(a) ->",        // dangling arrow
      "p0:x=7",                // single '=' is not an operator
      "p0:x==",                // missing value
      "p0:event(a) | ",        // dangling pipe
      "p0:event(a) & ",        // dangling amp
      "p0:x==1 & p1:y==2 [sideways]",  // unknown mode
      "(p0:event(a))^0",       // zero repetition
      "p0:event(a) extra",     // trailing tokens
      "p0:event(a) @ p1:recv", // bad character
  };
  for (const char* text : bad) {
    auto spec = parse_breakpoint(text);
    EXPECT_FALSE(spec.ok()) << "should not parse: '" << text << "'";
    if (!spec.ok()) {
      EXPECT_EQ(spec.error().code(), ErrorCode::kParseError) << text;
    }
  }
}

TEST(Parser, MalformedBoundaryCorpus) {
  // Inputs at the edges of the grammar: empty, truncated constructs, and
  // integer literals near/past the representable ranges.  Every one must
  // come back as a clean parse error — never wrap, never UB.
  const char* bad[] = {
      "",                                   // empty input
      "p0:event(",                          // unterminated event(
      "-> p0:recv",                         // stray leading arrow
      "p0:recv ->",                         // stray trailing arrow
      "p0:x==9223372036854775808",          // INT64_MAX + 1
      "p0:x==99999999999999999999999999",   // way past 2^63
      "p0:x<-9223372036854775809",          // below INT64_MIN
      "(p0:recv)^9223372036854775808",      // overflowing repetition count
      "(p0:recv)^0",                        // zero repetition
      "p4294967296:recv",                   // process id past 2^32 - 1
      "p99999999999999999999:recv",         // process id past 2^64
      "p0:sent(4294967296)",                // channel id past 2^32 - 1
  };
  for (const char* text : bad) {
    auto spec = parse_breakpoint(text);
    ASSERT_FALSE(spec.ok()) << "should not parse: '" << text << "'";
    EXPECT_EQ(spec.error().code(), ErrorCode::kParseError) << text;
  }
}

TEST(Parser, IntegerBoundaryValuesStillAccepted) {
  // The exact extremes of the representable range must keep parsing.
  auto max = parse_breakpoint("p0:x==9223372036854775807");  // INT64_MAX
  ASSERT_TRUE(max.ok());
  EXPECT_EQ(max.value().linked.first().alternatives.at(0).value,
            std::numeric_limits<std::int64_t>::max());
  auto near_min = parse_breakpoint("p0:x==-9223372036854775807");
  ASSERT_TRUE(near_min.ok());
  EXPECT_EQ(near_min.value().linked.first().alternatives.at(0).value,
            -std::numeric_limits<std::int64_t>::max());
  auto big_proc = parse_breakpoint("p4294967295:recv");
  ASSERT_TRUE(big_proc.ok());
}

TEST(Parser, ErrorsCarryColumnPositions) {
  // Frontends print "syntax error at column k" pointing at the offending
  // character; 1-based columns.
  const struct {
    const char* text;
    const char* expect;  // substring of the error message
  } cases[] = {
      {"", "column 1"},
      {"p0:event(a) @ p1:recv", "column 13"},
      {"p0:x==99999999999999999999", "column 7"},
      {"p0:event(a) ->", "column 15"},
      {"q0:event(a)", "column 1"},
      {"p0:event(a) [sideways]", "column 14"},
  };
  for (const auto& c : cases) {
    auto spec = parse_breakpoint(c.text);
    ASSERT_FALSE(spec.ok()) << c.text;
    EXPECT_NE(spec.error().message().find("syntax error at column"),
              std::string::npos)
        << c.text << " -> " << spec.error().message();
    EXPECT_NE(spec.error().message().find(c.expect), std::string::npos)
        << c.text << " -> " << spec.error().message();
  }
}

TEST(Parser, SingleTermConjunctionRejected) {
  // '&' requires at least two terms; a lone atom is a linked predicate.
  auto one = parse_breakpoint("p0:x==1 &");
  EXPECT_FALSE(one.ok());
}

TEST(Parser, ParseLinkedOnlyRejectsConjunction) {
  EXPECT_TRUE(parse_linked_predicate("p0:event(a) -> p1:recv").ok());
  EXPECT_FALSE(parse_linked_predicate("p0:x==1 & p1:y==2").ok());
}

TEST(Parser, LargeProcessNumber) {
  auto spec = parse_breakpoint("p123:event(x)");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().linked.first().alternatives.at(0).process,
            ProcessId(123));
}

}  // namespace
}  // namespace ddbg
