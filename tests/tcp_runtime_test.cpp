// Integration tests for the TCP loopback runtime: the same processes,
// shims, halting algorithm and debugger running over real sockets.
//
// No wall-clock sleeps: tests synchronize on observable state (atomic
// workload counters, armed-watch hooks, wave completion) so they pass
// deterministically under load, `ctest -j` and TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <thread>

#include "analysis/consistency.hpp"
#include "core/debug_shim.hpp"
#include "debugger/debugger_process.hpp"
#include "debugger/harness.hpp"  // TcpHost session adapter
#include "debugger/session.hpp"
#include "runtime/tcp_runtime.hpp"
#include "workload/behaviors.hpp"

namespace ddbg {
namespace {

constexpr Duration kWait = Duration::seconds(20);

class Counter final : public Process {
 public:
  void on_message(ProcessContext&, ChannelId, Message message) override {
    last_payload = message.payload;
    received.fetch_add(1);
  }
  std::atomic<int> received{0};
  Bytes last_payload;
};

class StartBurst final : public Process {
 public:
  explicit StartBurst(int count) : count_(count) {}
  void on_start(ProcessContext& ctx) override {
    for (int i = 0; i < count_; ++i) {
      for (const ChannelId c : ctx.topology().out_channels(ctx.self())) {
        ByteWriter writer;
        writer.u32(static_cast<std::uint32_t>(i));
        ctx.send(c, Message::application(std::move(writer).take()));
      }
    }
  }
  void on_message(ProcessContext&, ChannelId, Message) override {}

 private:
  int count_;
};

TEST(TcpRuntime, DeliversFramedMessages) {
  Topology topology(2);
  topology.add_channel(ProcessId(0), ProcessId(1));
  std::vector<ProcessPtr> processes;
  processes.push_back(std::make_unique<StartBurst>(200));
  auto counter = std::make_unique<Counter>();
  Counter* counter_ptr = counter.get();
  processes.push_back(std::move(counter));

  TcpRuntime runtime(std::move(topology), std::move(processes));
  ASSERT_TRUE(runtime.start());
  EXPECT_TRUE(TcpRuntime::wait_until(
      [&] { return counter_ptr->received.load() == 200; }, kWait));
  runtime.shutdown();
  EXPECT_EQ(runtime.stats().messages_sent, 200u);
  EXPECT_EQ(runtime.stats().messages_delivered, 200u);
  // Last frame decoded intact (payload = 199, little-endian).
  ByteReader reader(counter_ptr->last_payload);
  EXPECT_EQ(reader.u32().value(), 199u);
}

TEST(TcpRuntime, FifoPerChannel) {
  // A receiver that asserts in-order arrival.
  class OrderChecker final : public Process {
   public:
    void on_message(ProcessContext&, ChannelId, Message message) override {
      ByteReader reader(message.payload);
      const std::uint32_t value = reader.u32().value_or(0xffffffff);
      if (value != next.load()) ordered.store(false);
      next.fetch_add(1);
    }
    std::atomic<std::uint32_t> next{0};
    std::atomic<bool> ordered{true};
  };
  Topology topology(2);
  topology.add_channel(ProcessId(0), ProcessId(1));
  std::vector<ProcessPtr> processes;
  processes.push_back(std::make_unique<StartBurst>(500));
  auto checker = std::make_unique<OrderChecker>();
  OrderChecker* checker_ptr = checker.get();
  processes.push_back(std::move(checker));
  TcpRuntime runtime(std::move(topology), std::move(processes));
  ASSERT_TRUE(runtime.start());
  EXPECT_TRUE(TcpRuntime::wait_until(
      [&] { return checker_ptr->next.load() == 500; }, kWait));
  runtime.shutdown();
  EXPECT_TRUE(checker_ptr->ordered.load());
}

TEST(TcpRuntime, TimersAndPost) {
  class Ticker final : public Process {
   public:
    void on_start(ProcessContext& ctx) override {
      ctx.set_timer(Duration::millis(1));
    }
    void on_timer(ProcessContext& ctx, TimerId) override {
      if (ticks.fetch_add(1) + 1 < 3) ctx.set_timer(Duration::millis(1));
    }
    void on_message(ProcessContext&, ChannelId, Message) override {}
    std::atomic<int> ticks{0};
  };
  Topology topology(1);
  std::vector<ProcessPtr> processes;
  auto ticker = std::make_unique<Ticker>();
  Ticker* ticker_ptr = ticker.get();
  processes.push_back(std::move(ticker));
  TcpRuntime runtime(std::move(topology), std::move(processes));
  ASSERT_TRUE(runtime.start());
  EXPECT_TRUE(TcpRuntime::wait_until(
      [&] { return ticker_ptr->ticks.load() >= 3; }, kWait));
  std::atomic<bool> ran{false};
  runtime.post(ProcessId(0), [&](ProcessContext& ctx, Process&) {
    EXPECT_EQ(ctx.self(), ProcessId(0));
    ran.store(true);
  });
  EXPECT_TRUE(TcpRuntime::wait_until([&] { return ran.load(); }, kWait));
  runtime.shutdown();
}

// The flagship: a full halting wave over real sockets.
TEST(TcpRuntime, HaltingAlgorithmOverSockets) {
  GossipConfig gossip;
  gossip.send_interval = Duration::millis(1);

  Topology topology = Topology::ring(3).with_debugger();
  std::vector<ProcessPtr> processes =
      wrap_in_shims(topology, make_gossip(3, gossip));
  auto debugger = std::make_unique<DebuggerProcess>();
  DebuggerProcess* debugger_ptr = debugger.get();
  processes.push_back(std::move(debugger));

  TcpRuntime runtime(topology, std::move(processes));
  ASSERT_TRUE(runtime.start());
  TcpHost host(runtime);
  DebuggerSession session(host, *debugger_ptr, topology.debugger_id());

  // Halt only once gossip demonstrably flows over the sockets.
  const auto& p0 = dynamic_cast<GossipProcess&>(
      dynamic_cast<DebugShim&>(runtime.process(ProcessId(0))).user());
  ASSERT_TRUE(
      TcpRuntime::wait_until([&] { return p0.sent() >= 5; }, kWait));
  session.halt();
  auto wave = session.wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  EXPECT_EQ(wave->state.size(), 3u);
  EXPECT_TRUE(consistent_cut(wave->state));
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(
        dynamic_cast<DebugShim&>(runtime.process(ProcessId(i))).halted());
  }

  // Resume over sockets, then verify the gossip keeps flowing.
  const std::uint64_t sent_at_halt = p0.sent();
  session.resume();
  EXPECT_TRUE(TcpRuntime::wait_until(
      [&] { return p0.sent() > sent_at_halt + 3; }, kWait));
  runtime.shutdown();
}

TEST(TcpRuntime, BreakpointOverSockets) {
  TokenRingConfig ring_config;
  ring_config.rounds = 1000;
  ring_config.hop_delay = Duration::micros(500);
  // Hold the token until the breakpoint is armed on p2: the arm command is
  // an asynchronous control message, and a free-running ring would race it
  // past the first two hops.
  ring_config.start_gate = std::make_shared<std::atomic<bool>>(false);

  auto armed = std::make_shared<std::atomic<std::size_t>>(0);
  DebugShim::Options shim_options;
  shim_options.on_armed = [armed](ProcessId, BreakpointId) {
    armed->fetch_add(1, std::memory_order_acq_rel);
  };

  Topology topology = Topology::ring(3).with_debugger();
  std::vector<ProcessPtr> processes =
      wrap_in_shims(topology, make_token_ring(3, ring_config), shim_options);
  auto debugger = std::make_unique<DebuggerProcess>();
  DebuggerProcess* debugger_ptr = debugger.get();
  processes.push_back(std::move(debugger));

  TcpRuntime runtime(topology, std::move(processes));
  ASSERT_TRUE(runtime.start());
  TcpHost host(runtime);
  DebuggerSession session(host, *debugger_ptr, topology.debugger_id());

  auto bp = session.set_breakpoint("(p2:event(token))^2");
  ASSERT_TRUE(bp.ok());
  ASSERT_TRUE(TcpRuntime::wait_until(
      [&] { return armed->load(std::memory_order_acquire) >= 1; }, kWait));
  ring_config.start_gate->store(true, std::memory_order_release);
  auto wave = session.wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  const auto& p2 = dynamic_cast<TokenRingProcess&>(
      dynamic_cast<DebugShim&>(runtime.process(ProcessId(2))).user());
  EXPECT_EQ(p2.tokens_seen(), 2u);
  runtime.shutdown();
}

TEST(TcpRuntime, BankConservationOverSockets) {
  BankConfig bank;
  bank.transfer_interval = Duration::micros(500);

  Topology topology = Topology::complete(3).with_debugger();
  std::vector<ProcessPtr> processes =
      wrap_in_shims(topology, make_bank(3, bank));
  auto debugger = std::make_unique<DebuggerProcess>();
  DebuggerProcess* debugger_ptr = debugger.get();
  processes.push_back(std::move(debugger));

  TcpRuntime runtime(topology, std::move(processes));
  ASSERT_TRUE(runtime.start());
  TcpHost host(runtime);
  DebuggerSession session(host, *debugger_ptr, topology.debugger_id());

  // Halt only once transfers are demonstrably crossing the wire.
  const auto& b0 = dynamic_cast<BankProcess&>(
      dynamic_cast<DebugShim&>(runtime.process(ProcessId(0))).user());
  ASSERT_TRUE(TcpRuntime::wait_until(
      [&] { return b0.transfers_made() >= 3; }, kWait));
  session.halt();
  auto wave = session.wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  auto total = BankProcess::total_money(wave->state);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total.value(), 3 * bank.initial_balance);
  runtime.shutdown();
}

// ---- Shutdown paths (previously untested: the file never compiled) ----

// Shutdown with traffic still in flight must not hang, leak threads or
// sockets (ASan/TSan verify the leak/race half), or crash on writes to
// half-closed channels (SIGPIPE hardening in write_all).
TEST(TcpRuntime, ShutdownMidTrafficIsClean) {
  GossipConfig gossip;
  gossip.send_interval = Duration::micros(200);
  Topology topology = Topology::complete(3);
  std::vector<ProcessPtr> processes = make_gossip(3, gossip);
  auto* p0 = dynamic_cast<GossipProcess*>(processes[0].get());

  TcpRuntime runtime(std::move(topology), std::move(processes));
  ASSERT_TRUE(runtime.start());
  ASSERT_TRUE(
      TcpRuntime::wait_until([&] { return p0->sent() >= 20; }, kWait));
  runtime.shutdown();   // mid-traffic: inboxes and sockets still busy
  runtime.shutdown();   // idempotent
  const TransportStats stats = runtime.stats();
  EXPECT_GE(stats.messages_sent, 20u);
  // Delivery stops at shutdown; nothing may be delivered twice.
  EXPECT_LE(stats.messages_delivered, stats.messages_sent);
}

// Halting mid-traffic buffers application messages as channel state; a
// shutdown in that halted state (no resume) must still tear down cleanly.
TEST(TcpRuntime, HaltThenShutdownIsClean) {
  GossipConfig gossip;
  gossip.send_interval = Duration::micros(300);

  Topology topology = Topology::ring(3).with_debugger();
  std::vector<ProcessPtr> processes =
      wrap_in_shims(topology, make_gossip(3, gossip));
  auto debugger = std::make_unique<DebuggerProcess>();
  DebuggerProcess* debugger_ptr = debugger.get();
  processes.push_back(std::move(debugger));

  TcpRuntime runtime(topology, std::move(processes));
  ASSERT_TRUE(runtime.start());
  TcpHost host(runtime);
  DebuggerSession session(host, *debugger_ptr, topology.debugger_id());

  const auto& p0 = dynamic_cast<GossipProcess&>(
      dynamic_cast<DebugShim&>(runtime.process(ProcessId(0))).user());
  ASSERT_TRUE(
      TcpRuntime::wait_until([&] { return p0.sent() >= 5; }, kWait));
  session.halt();
  auto wave = session.wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  // Shut down while every user process is halted and channel state is
  // buffered; the destructor then closes all fds a second time (no-op).
  runtime.shutdown();
}

// Destruction without an explicit shutdown() call must shut down too.
TEST(TcpRuntime, DestructorShutsDown) {
  GossipConfig gossip;
  gossip.send_interval = Duration::micros(200);
  Topology topology(2);
  topology.add_channel(ProcessId(0), ProcessId(1));
  topology.add_channel(ProcessId(1), ProcessId(0));
  std::vector<ProcessPtr> processes = make_gossip(2, gossip);
  auto* p0 = dynamic_cast<GossipProcess*>(processes[0].get());
  {
    TcpRuntime runtime(std::move(topology), std::move(processes));
    ASSERT_TRUE(runtime.start());
    ASSERT_TRUE(
        TcpRuntime::wait_until([&] { return p0->sent() >= 5; }, kWait));
  }  // ~TcpRuntime joins all workers and closes all sockets
}

// Regression: a peer-closed fd used to stay armed in the poll set, so the
// reactor spun on POLLIN|POLLHUP at 100% CPU.  A retired slot must leave
// the reactor blocking, and the remaining live channels must keep working.
TEST(TcpRuntime, PeerCloseDoesNotBusySpinReactor) {
  Topology topology(3);
  topology.add_channel(ProcessId(0), ProcessId(1));  // ch0, will half-close
  topology.add_channel(ProcessId(2), ProcessId(1));  // ch1, stays live
  std::vector<ProcessPtr> processes;
  processes.push_back(std::make_unique<StartBurst>(50));
  auto counter = std::make_unique<Counter>();
  Counter* counter_ptr = counter.get();
  processes.push_back(std::move(counter));
  processes.push_back(std::make_unique<Counter>());  // p2: sends on demand

  TcpRuntime runtime(std::move(topology), std::move(processes));
  ASSERT_TRUE(runtime.start());
  ASSERT_TRUE(TcpRuntime::wait_until(
      [&] { return counter_ptr->received.load() == 50; }, kWait));

  // p1 observes EOF on ch0 and must retire the slot, then go back to
  // blocking in poll.
  runtime.half_close_channel(ChannelId(0));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const std::uint64_t idle_start = runtime.poll_iterations();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const std::uint64_t idle_iterations =
      runtime.poll_iterations() - idle_start;
  // A busy-spinning reactor would rack up hundreds of thousands of
  // iterations in 300ms of idle time; a healthy one blocks (the margin
  // allows stray wakeups under load).
  EXPECT_LT(idle_iterations, 1000u)
      << "reactor busy-spinning after peer close";

  // The other inbound channel still delivers.
  runtime.post(ProcessId(2), [](ProcessContext& ctx, Process&) {
    for (int i = 0; i < 20; ++i) {
      ctx.send(ChannelId(1), Message::application(Bytes{0x5a}));
    }
  });
  EXPECT_TRUE(TcpRuntime::wait_until(
      [&] { return counter_ptr->received.load() == 70; }, kWait));
  runtime.shutdown();
}

// Records the TimerId handed to the first set_timer call of the run.
class FirstTimerIdRecorder final : public Process {
 public:
  void on_start(ProcessContext& ctx) override {
    first_id.store(ctx.set_timer(Duration::millis(1)).value());
  }
  void on_message(ProcessContext&, ChannelId, Message) override {}
  void on_timer(ProcessContext&, TimerId) override { fired.store(true); }
  std::atomic<std::uint32_t> first_id{0};
  std::atomic<bool> fired{false};
};

// Regression: timer ids came from a static counter shared by every
// runtime instance in the process, so a second runtime started at
// whatever the first left off (non-deterministic ids, eventual wrap).
// Ids must restart at 1 per instance.
TEST(TcpRuntime, TimerIdsRestartPerRuntimeInstance) {
  for (int instance = 0; instance < 2; ++instance) {
    Topology topology(1);
    std::vector<ProcessPtr> processes;
    auto recorder = std::make_unique<FirstTimerIdRecorder>();
    FirstTimerIdRecorder* recorder_ptr = recorder.get();
    processes.push_back(std::move(recorder));
    TcpRuntime runtime(std::move(topology), std::move(processes));
    ASSERT_TRUE(runtime.start());
    ASSERT_TRUE(TcpRuntime::wait_until(
        [&] { return recorder_ptr->fired.load(); }, kWait));
    runtime.shutdown();
    EXPECT_EQ(recorder_ptr->first_id.load(), 1u)
        << "instance " << instance;
  }
}

// ---- Epoll reactor: multiplexing, backpressure, timer clamping ----

// All channels between one unordered process pair share a single TCP
// connection; the frame's channel-id prefix demultiplexes.  Eight lanes
// each way between two processes must cost exactly one socket.
TEST(TcpRuntime, MultiplexesChannelsOverOneSocketPerPair) {
  constexpr std::uint32_t kLanes = 8;
  constexpr int kPerLane = 40;
  Topology topology(2);
  for (std::uint32_t lane = 0; lane < kLanes; ++lane) {
    topology.add_channel(ProcessId(0), ProcessId(1));
    topology.add_channel(ProcessId(1), ProcessId(0));
  }
  std::vector<ProcessPtr> processes;
  processes.push_back(std::make_unique<StartBurst>(kPerLane));
  auto counter = std::make_unique<Counter>();
  Counter* counter_ptr = counter.get();
  processes.push_back(std::move(counter));

  TcpRuntime runtime(std::move(topology), std::move(processes));
  EXPECT_EQ(runtime.data_socket_count(), 1u);
  EXPECT_EQ(runtime.max_channels_per_socket(), 2 * kLanes);
  ASSERT_TRUE(runtime.start());
  EXPECT_TRUE(TcpRuntime::wait_until(
      [&] {
        return counter_ptr->received.load() ==
               kPerLane * static_cast<int>(kLanes);
      },
      kWait));
  runtime.shutdown();
  const auto transport = runtime.metrics().snapshot(runtime.now()).transport;
  EXPECT_EQ(transport.mux_channels_per_socket, 2 * kLanes);
  EXPECT_GT(transport.epoll_wakeups, 0u);
  EXPECT_GT(transport.frames_per_wakeup_max, 0u);
}

// A receiver whose worker thread can be parked from the test (a posted
// closure spins until released), wedging the whole inbound direction so
// the sender's kernel buffer demonstrably fills.
class StallableCounter final : public Process {
 public:
  void on_message(ProcessContext&, ChannelId, Message message) override {
    ByteReader reader(message.payload);
    const std::uint32_t value = reader.u32().value_or(0xffffffff);
    if (value != next.load()) ordered.store(false);
    next.fetch_add(1);
  }
  std::atomic<std::uint32_t> next{0};
  std::atomic<bool> ordered{true};
};

// Satellite of the epoll rewrite: a short write / EAGAIN on the
// nonblocking send path must park the queue on EPOLLOUT and resume without
// losing or reordering anything.  A tiny SO_SNDBUF plus a stalled receiver
// forces the condition deterministically.
TEST(TcpRuntime, ShortWriteBackpressureRecoversInOrder) {
  constexpr std::uint32_t kCount = 64;
  constexpr std::uint32_t kPayload = 8 * 1024;
  Topology topology(2);
  topology.add_channel(ProcessId(0), ProcessId(1));
  std::vector<ProcessPtr> processes;
  processes.push_back(std::make_unique<Counter>());  // p0 sends on command
  auto checker = std::make_unique<StallableCounter>();
  StallableCounter* checker_ptr = checker.get();
  processes.push_back(std::move(checker));

  TcpRuntimeConfig config;
  config.sndbuf_bytes = 4 * 1024;  // kernel clamps to its minimum
  config.rcvbuf_bytes = 4 * 1024;
  TcpRuntime runtime(std::move(topology), std::move(processes), config);
  ASSERT_TRUE(runtime.start());

  // Park the receiver's worker so nothing drains.
  auto release = std::make_shared<std::atomic<bool>>(false);
  auto parked = std::make_shared<std::atomic<bool>>(false);
  runtime.post(ProcessId(1), [release, parked](ProcessContext&, Process&) {
    parked->store(true);
    while (!release->load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  ASSERT_TRUE(TcpRuntime::wait_until([&] { return parked->load(); }, kWait));

  // Burst far more bytes than both socket buffers hold: the sender MUST
  // hit EAGAIN or a partial sendmsg and defer to EPOLLOUT.
  runtime.post(ProcessId(0), [](ProcessContext& ctx, Process&) {
    for (std::uint32_t i = 0; i < kCount; ++i) {
      ByteWriter writer;
      writer.u32(i);
      Bytes payload = std::move(writer).take();
      payload.resize(kPayload, 0xab);
      ctx.send(ChannelId(0), Message::application(std::move(payload)));
    }
  });
  ASSERT_TRUE(TcpRuntime::wait_until(
      [&] {
        return runtime.metrics().snapshot(runtime.now()).transport
                   .eagain_deferrals >= 1;
      },
      kWait));

  release->store(true);
  EXPECT_TRUE(TcpRuntime::wait_until(
      [&] { return checker_ptr->next.load() == kCount; }, kWait));
  runtime.shutdown();
  EXPECT_TRUE(checker_ptr->ordered.load()) << "backpressure broke FIFO";
  const auto transport = runtime.metrics().snapshot(runtime.now()).transport;
  EXPECT_GE(transport.eagain_deferrals, 1u);
  EXPECT_EQ(runtime.stats().messages_delivered, kCount);
}

// Arms a timer on command and records how long it took to fire.
class TimerProbe final : public Process {
 public:
  void arm(ProcessContext& ctx, Duration delay) {
    armed_at_ = std::chrono::steady_clock::now();
    ctx.set_timer(delay);
  }
  void on_timer(ProcessContext&, TimerId) override {
    fire_latency_ms.store(std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - armed_at_)
                              .count());
    fired.store(true);
  }
  void on_message(ProcessContext&, ChannelId, Message) override {}
  std::atomic<bool> fired{false};
  std::atomic<long> fire_latency_ms{-1};

 private:
  std::chrono::steady_clock::time_point armed_at_;
};

// Regression (old blocking write path): a sender wedged against a full
// socket buffer blocked the whole worker, so its own user timers could not
// fire until the receiver drained.  The nonblocking reactor must fire the
// timer while the out-queue is still parked on EPOLLOUT.
TEST(TcpRuntime, UserTimerFiresWhileSenderBackpressured) {
  Topology topology(2);
  topology.add_channel(ProcessId(0), ProcessId(1));
  std::vector<ProcessPtr> processes;
  auto probe = std::make_unique<TimerProbe>();
  TimerProbe* probe_ptr = probe.get();
  processes.push_back(std::move(probe));
  processes.push_back(std::make_unique<Counter>());

  TcpRuntimeConfig config;
  config.sndbuf_bytes = 4 * 1024;
  config.rcvbuf_bytes = 4 * 1024;
  TcpRuntime runtime(std::move(topology), std::move(processes), config);
  ASSERT_TRUE(runtime.start());

  auto release = std::make_shared<std::atomic<bool>>(false);
  auto parked = std::make_shared<std::atomic<bool>>(false);
  runtime.post(ProcessId(1), [release, parked](ProcessContext&, Process&) {
    parked->store(true);
    while (!release->load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  ASSERT_TRUE(TcpRuntime::wait_until([&] { return parked->load(); }, kWait));

  runtime.post(ProcessId(0), [probe_ptr](ProcessContext& ctx, Process&) {
    for (std::uint32_t i = 0; i < 64; ++i) {
      ctx.send(ChannelId(0),
               Message::application(Bytes(8 * 1024, 0xcd)));
    }
    probe_ptr->arm(ctx, Duration::millis(10));
  });
  // The timer must fire while the receiver is still parked (queue still
  // backpressured), not after the drain.
  ASSERT_TRUE(
      TcpRuntime::wait_until([&] { return probe_ptr->fired.load(); }, kWait));
  EXPECT_FALSE(release->load());
  release->store(true);
  runtime.shutdown();
}

// Satellite 2: the reactor's sleep must clamp against the nearest USER
// timer even when the reliability layer's own deadlines (here a 2s
// retransmit after a partitioned first attempt) are much further out.
TEST(TcpRuntime, UserTimerNotDelayedByRetransmitBackoff) {
  Topology topology(2);
  topology.add_channel(ProcessId(0), ProcessId(1));
  std::vector<ProcessPtr> processes;
  auto probe = std::make_unique<TimerProbe>();
  TimerProbe* probe_ptr = probe.get();
  processes.push_back(std::move(probe));
  auto counter = std::make_unique<Counter>();
  Counter* counter_ptr = counter.get();
  processes.push_back(std::move(counter));

  // First transmission attempt on the channel is swallowed (partition
  // window [0, 1)); the retransmit only becomes due after 2 seconds.
  FaultSpec spec;
  spec.partition_from = 0;
  spec.partition_until = 1;
  TcpRuntimeConfig config;
  auto plan = std::make_shared<FaultPlan>(FaultSpec{}, 1);
  plan->set_channel(ChannelId(0), spec);
  config.faults = std::move(plan);
  config.reliable.rto_initial = Duration::seconds(2);
  config.reliable.rto_max = Duration::seconds(2);
  TcpRuntime runtime(std::move(topology), std::move(processes), config);
  ASSERT_TRUE(runtime.start());

  runtime.post(ProcessId(0), [probe_ptr](ProcessContext& ctx, Process&) {
    ctx.send(ChannelId(0), Message::application(Bytes{0x01}));
    probe_ptr->arm(ctx, Duration::millis(10));
  });
  ASSERT_TRUE(
      TcpRuntime::wait_until([&] { return probe_ptr->fired.load(); }, kWait));
  // With the sleep clamped only by the reliability deadline the timer
  // could not fire before the 2s retransmit; prove it fired well inside.
  EXPECT_LT(probe_ptr->fire_latency_ms.load(), 1000)
      << "user timer slept through the retransmit backoff";
  // The partitioned message still arrives once the backoff expires.
  EXPECT_TRUE(TcpRuntime::wait_until(
      [&] { return counter_ptr->received.load() == 1; }, kWait));
  runtime.shutdown();
}

}  // namespace
}  // namespace ddbg
