// Integration tests for the TCP loopback runtime: the same processes,
// shims, halting algorithm and debugger running over real sockets.
//
// No wall-clock sleeps: tests synchronize on observable state (atomic
// workload counters, armed-watch hooks, wave completion) so they pass
// deterministically under load, `ctest -j` and TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <thread>

#include "analysis/consistency.hpp"
#include "core/debug_shim.hpp"
#include "debugger/debugger_process.hpp"
#include "debugger/session.hpp"
#include "runtime/tcp_runtime.hpp"
#include "workload/behaviors.hpp"

namespace ddbg {
namespace {

constexpr Duration kWait = Duration::seconds(20);

class TcpHost final : public SessionHost {
 public:
  explicit TcpHost(TcpRuntime& runtime) : runtime_(runtime) {}
  void post(ProcessId target,
            std::function<void(ProcessContext&, Process&)> action) override {
    runtime_.post(target, std::move(action));
  }
  bool wait(const std::function<bool()>& condition,
            Duration timeout) override {
    return TcpRuntime::wait_until(condition, timeout);
  }

 private:
  TcpRuntime& runtime_;
};

class Counter final : public Process {
 public:
  void on_message(ProcessContext&, ChannelId, Message message) override {
    last_payload = message.payload;
    received.fetch_add(1);
  }
  std::atomic<int> received{0};
  Bytes last_payload;
};

class StartBurst final : public Process {
 public:
  explicit StartBurst(int count) : count_(count) {}
  void on_start(ProcessContext& ctx) override {
    for (int i = 0; i < count_; ++i) {
      for (const ChannelId c : ctx.topology().out_channels(ctx.self())) {
        ByteWriter writer;
        writer.u32(static_cast<std::uint32_t>(i));
        ctx.send(c, Message::application(std::move(writer).take()));
      }
    }
  }
  void on_message(ProcessContext&, ChannelId, Message) override {}

 private:
  int count_;
};

TEST(TcpRuntime, DeliversFramedMessages) {
  Topology topology(2);
  topology.add_channel(ProcessId(0), ProcessId(1));
  std::vector<ProcessPtr> processes;
  processes.push_back(std::make_unique<StartBurst>(200));
  auto counter = std::make_unique<Counter>();
  Counter* counter_ptr = counter.get();
  processes.push_back(std::move(counter));

  TcpRuntime runtime(std::move(topology), std::move(processes));
  ASSERT_TRUE(runtime.start());
  EXPECT_TRUE(TcpRuntime::wait_until(
      [&] { return counter_ptr->received.load() == 200; }, kWait));
  runtime.shutdown();
  EXPECT_EQ(runtime.stats().messages_sent, 200u);
  EXPECT_EQ(runtime.stats().messages_delivered, 200u);
  // Last frame decoded intact (payload = 199, little-endian).
  ByteReader reader(counter_ptr->last_payload);
  EXPECT_EQ(reader.u32().value(), 199u);
}

TEST(TcpRuntime, FifoPerChannel) {
  // A receiver that asserts in-order arrival.
  class OrderChecker final : public Process {
   public:
    void on_message(ProcessContext&, ChannelId, Message message) override {
      ByteReader reader(message.payload);
      const std::uint32_t value = reader.u32().value_or(0xffffffff);
      if (value != next.load()) ordered.store(false);
      next.fetch_add(1);
    }
    std::atomic<std::uint32_t> next{0};
    std::atomic<bool> ordered{true};
  };
  Topology topology(2);
  topology.add_channel(ProcessId(0), ProcessId(1));
  std::vector<ProcessPtr> processes;
  processes.push_back(std::make_unique<StartBurst>(500));
  auto checker = std::make_unique<OrderChecker>();
  OrderChecker* checker_ptr = checker.get();
  processes.push_back(std::move(checker));
  TcpRuntime runtime(std::move(topology), std::move(processes));
  ASSERT_TRUE(runtime.start());
  EXPECT_TRUE(TcpRuntime::wait_until(
      [&] { return checker_ptr->next.load() == 500; }, kWait));
  runtime.shutdown();
  EXPECT_TRUE(checker_ptr->ordered.load());
}

TEST(TcpRuntime, TimersAndPost) {
  class Ticker final : public Process {
   public:
    void on_start(ProcessContext& ctx) override {
      ctx.set_timer(Duration::millis(1));
    }
    void on_timer(ProcessContext& ctx, TimerId) override {
      if (ticks.fetch_add(1) + 1 < 3) ctx.set_timer(Duration::millis(1));
    }
    void on_message(ProcessContext&, ChannelId, Message) override {}
    std::atomic<int> ticks{0};
  };
  Topology topology(1);
  std::vector<ProcessPtr> processes;
  auto ticker = std::make_unique<Ticker>();
  Ticker* ticker_ptr = ticker.get();
  processes.push_back(std::move(ticker));
  TcpRuntime runtime(std::move(topology), std::move(processes));
  ASSERT_TRUE(runtime.start());
  EXPECT_TRUE(TcpRuntime::wait_until(
      [&] { return ticker_ptr->ticks.load() >= 3; }, kWait));
  std::atomic<bool> ran{false};
  runtime.post(ProcessId(0), [&](ProcessContext& ctx, Process&) {
    EXPECT_EQ(ctx.self(), ProcessId(0));
    ran.store(true);
  });
  EXPECT_TRUE(TcpRuntime::wait_until([&] { return ran.load(); }, kWait));
  runtime.shutdown();
}

// The flagship: a full halting wave over real sockets.
TEST(TcpRuntime, HaltingAlgorithmOverSockets) {
  GossipConfig gossip;
  gossip.send_interval = Duration::millis(1);

  Topology topology = Topology::ring(3).with_debugger();
  std::vector<ProcessPtr> processes =
      wrap_in_shims(topology, make_gossip(3, gossip));
  auto debugger = std::make_unique<DebuggerProcess>();
  DebuggerProcess* debugger_ptr = debugger.get();
  processes.push_back(std::move(debugger));

  TcpRuntime runtime(topology, std::move(processes));
  ASSERT_TRUE(runtime.start());
  TcpHost host(runtime);
  DebuggerSession session(host, *debugger_ptr, topology.debugger_id());

  // Halt only once gossip demonstrably flows over the sockets.
  const auto& p0 = dynamic_cast<GossipProcess&>(
      dynamic_cast<DebugShim&>(runtime.process(ProcessId(0))).user());
  ASSERT_TRUE(
      TcpRuntime::wait_until([&] { return p0.sent() >= 5; }, kWait));
  session.halt();
  auto wave = session.wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  EXPECT_EQ(wave->state.size(), 3u);
  EXPECT_TRUE(consistent_cut(wave->state));
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(
        dynamic_cast<DebugShim&>(runtime.process(ProcessId(i))).halted());
  }

  // Resume over sockets, then verify the gossip keeps flowing.
  const std::uint64_t sent_at_halt = p0.sent();
  session.resume();
  EXPECT_TRUE(TcpRuntime::wait_until(
      [&] { return p0.sent() > sent_at_halt + 3; }, kWait));
  runtime.shutdown();
}

TEST(TcpRuntime, BreakpointOverSockets) {
  TokenRingConfig ring_config;
  ring_config.rounds = 1000;
  ring_config.hop_delay = Duration::micros(500);
  // Hold the token until the breakpoint is armed on p2: the arm command is
  // an asynchronous control message, and a free-running ring would race it
  // past the first two hops.
  ring_config.start_gate = std::make_shared<std::atomic<bool>>(false);

  auto armed = std::make_shared<std::atomic<std::size_t>>(0);
  DebugShim::Options shim_options;
  shim_options.on_armed = [armed](ProcessId, BreakpointId) {
    armed->fetch_add(1, std::memory_order_acq_rel);
  };

  Topology topology = Topology::ring(3).with_debugger();
  std::vector<ProcessPtr> processes =
      wrap_in_shims(topology, make_token_ring(3, ring_config), shim_options);
  auto debugger = std::make_unique<DebuggerProcess>();
  DebuggerProcess* debugger_ptr = debugger.get();
  processes.push_back(std::move(debugger));

  TcpRuntime runtime(topology, std::move(processes));
  ASSERT_TRUE(runtime.start());
  TcpHost host(runtime);
  DebuggerSession session(host, *debugger_ptr, topology.debugger_id());

  auto bp = session.set_breakpoint("(p2:event(token))^2");
  ASSERT_TRUE(bp.ok());
  ASSERT_TRUE(TcpRuntime::wait_until(
      [&] { return armed->load(std::memory_order_acquire) >= 1; }, kWait));
  ring_config.start_gate->store(true, std::memory_order_release);
  auto wave = session.wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  const auto& p2 = dynamic_cast<TokenRingProcess&>(
      dynamic_cast<DebugShim&>(runtime.process(ProcessId(2))).user());
  EXPECT_EQ(p2.tokens_seen(), 2u);
  runtime.shutdown();
}

TEST(TcpRuntime, BankConservationOverSockets) {
  BankConfig bank;
  bank.transfer_interval = Duration::micros(500);

  Topology topology = Topology::complete(3).with_debugger();
  std::vector<ProcessPtr> processes =
      wrap_in_shims(topology, make_bank(3, bank));
  auto debugger = std::make_unique<DebuggerProcess>();
  DebuggerProcess* debugger_ptr = debugger.get();
  processes.push_back(std::move(debugger));

  TcpRuntime runtime(topology, std::move(processes));
  ASSERT_TRUE(runtime.start());
  TcpHost host(runtime);
  DebuggerSession session(host, *debugger_ptr, topology.debugger_id());

  // Halt only once transfers are demonstrably crossing the wire.
  const auto& b0 = dynamic_cast<BankProcess&>(
      dynamic_cast<DebugShim&>(runtime.process(ProcessId(0))).user());
  ASSERT_TRUE(TcpRuntime::wait_until(
      [&] { return b0.transfers_made() >= 3; }, kWait));
  session.halt();
  auto wave = session.wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  auto total = BankProcess::total_money(wave->state);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total.value(), 3 * bank.initial_balance);
  runtime.shutdown();
}

// ---- Shutdown paths (previously untested: the file never compiled) ----

// Shutdown with traffic still in flight must not hang, leak threads or
// sockets (ASan/TSan verify the leak/race half), or crash on writes to
// half-closed channels (SIGPIPE hardening in write_all).
TEST(TcpRuntime, ShutdownMidTrafficIsClean) {
  GossipConfig gossip;
  gossip.send_interval = Duration::micros(200);
  Topology topology = Topology::complete(3);
  std::vector<ProcessPtr> processes = make_gossip(3, gossip);
  auto* p0 = dynamic_cast<GossipProcess*>(processes[0].get());

  TcpRuntime runtime(std::move(topology), std::move(processes));
  ASSERT_TRUE(runtime.start());
  ASSERT_TRUE(
      TcpRuntime::wait_until([&] { return p0->sent() >= 20; }, kWait));
  runtime.shutdown();   // mid-traffic: inboxes and sockets still busy
  runtime.shutdown();   // idempotent
  const TransportStats stats = runtime.stats();
  EXPECT_GE(stats.messages_sent, 20u);
  // Delivery stops at shutdown; nothing may be delivered twice.
  EXPECT_LE(stats.messages_delivered, stats.messages_sent);
}

// Halting mid-traffic buffers application messages as channel state; a
// shutdown in that halted state (no resume) must still tear down cleanly.
TEST(TcpRuntime, HaltThenShutdownIsClean) {
  GossipConfig gossip;
  gossip.send_interval = Duration::micros(300);

  Topology topology = Topology::ring(3).with_debugger();
  std::vector<ProcessPtr> processes =
      wrap_in_shims(topology, make_gossip(3, gossip));
  auto debugger = std::make_unique<DebuggerProcess>();
  DebuggerProcess* debugger_ptr = debugger.get();
  processes.push_back(std::move(debugger));

  TcpRuntime runtime(topology, std::move(processes));
  ASSERT_TRUE(runtime.start());
  TcpHost host(runtime);
  DebuggerSession session(host, *debugger_ptr, topology.debugger_id());

  const auto& p0 = dynamic_cast<GossipProcess&>(
      dynamic_cast<DebugShim&>(runtime.process(ProcessId(0))).user());
  ASSERT_TRUE(
      TcpRuntime::wait_until([&] { return p0.sent() >= 5; }, kWait));
  session.halt();
  auto wave = session.wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  // Shut down while every user process is halted and channel state is
  // buffered; the destructor then closes all fds a second time (no-op).
  runtime.shutdown();
}

// Destruction without an explicit shutdown() call must shut down too.
TEST(TcpRuntime, DestructorShutsDown) {
  GossipConfig gossip;
  gossip.send_interval = Duration::micros(200);
  Topology topology(2);
  topology.add_channel(ProcessId(0), ProcessId(1));
  topology.add_channel(ProcessId(1), ProcessId(0));
  std::vector<ProcessPtr> processes = make_gossip(2, gossip);
  auto* p0 = dynamic_cast<GossipProcess*>(processes[0].get());
  {
    TcpRuntime runtime(std::move(topology), std::move(processes));
    ASSERT_TRUE(runtime.start());
    ASSERT_TRUE(
        TcpRuntime::wait_until([&] { return p0->sent() >= 5; }, kWait));
  }  // ~TcpRuntime joins all workers and closes all sockets
}

// Regression: a peer-closed fd used to stay armed in the poll set, so the
// reactor spun on POLLIN|POLLHUP at 100% CPU.  A retired slot must leave
// the reactor blocking, and the remaining live channels must keep working.
TEST(TcpRuntime, PeerCloseDoesNotBusySpinReactor) {
  Topology topology(3);
  topology.add_channel(ProcessId(0), ProcessId(1));  // ch0, will half-close
  topology.add_channel(ProcessId(2), ProcessId(1));  // ch1, stays live
  std::vector<ProcessPtr> processes;
  processes.push_back(std::make_unique<StartBurst>(50));
  auto counter = std::make_unique<Counter>();
  Counter* counter_ptr = counter.get();
  processes.push_back(std::move(counter));
  processes.push_back(std::make_unique<Counter>());  // p2: sends on demand

  TcpRuntime runtime(std::move(topology), std::move(processes));
  ASSERT_TRUE(runtime.start());
  ASSERT_TRUE(TcpRuntime::wait_until(
      [&] { return counter_ptr->received.load() == 50; }, kWait));

  // p1 observes EOF on ch0 and must retire the slot, then go back to
  // blocking in poll.
  runtime.half_close_channel(ChannelId(0));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const std::uint64_t idle_start = runtime.poll_iterations();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const std::uint64_t idle_iterations =
      runtime.poll_iterations() - idle_start;
  // A busy-spinning reactor would rack up hundreds of thousands of
  // iterations in 300ms of idle time; a healthy one blocks (the margin
  // allows stray wakeups under load).
  EXPECT_LT(idle_iterations, 1000u)
      << "reactor busy-spinning after peer close";

  // The other inbound channel still delivers.
  runtime.post(ProcessId(2), [](ProcessContext& ctx, Process&) {
    for (int i = 0; i < 20; ++i) {
      ctx.send(ChannelId(1), Message::application(Bytes{0x5a}));
    }
  });
  EXPECT_TRUE(TcpRuntime::wait_until(
      [&] { return counter_ptr->received.load() == 70; }, kWait));
  runtime.shutdown();
}

// Records the TimerId handed to the first set_timer call of the run.
class FirstTimerIdRecorder final : public Process {
 public:
  void on_start(ProcessContext& ctx) override {
    first_id.store(ctx.set_timer(Duration::millis(1)).value());
  }
  void on_message(ProcessContext&, ChannelId, Message) override {}
  void on_timer(ProcessContext&, TimerId) override { fired.store(true); }
  std::atomic<std::uint32_t> first_id{0};
  std::atomic<bool> fired{false};
};

// Regression: timer ids came from a static counter shared by every
// runtime instance in the process, so a second runtime started at
// whatever the first left off (non-deterministic ids, eventual wrap).
// Ids must restart at 1 per instance.
TEST(TcpRuntime, TimerIdsRestartPerRuntimeInstance) {
  for (int instance = 0; instance < 2; ++instance) {
    Topology topology(1);
    std::vector<ProcessPtr> processes;
    auto recorder = std::make_unique<FirstTimerIdRecorder>();
    FirstTimerIdRecorder* recorder_ptr = recorder.get();
    processes.push_back(std::move(recorder));
    TcpRuntime runtime(std::move(topology), std::move(processes));
    ASSERT_TRUE(runtime.start());
    ASSERT_TRUE(TcpRuntime::wait_until(
        [&] { return recorder_ptr->fired.load(); }, kWait));
    runtime.shutdown();
    EXPECT_EQ(recorder_ptr->first_id.load(), 1u)
        << "instance " << instance;
  }
}

}  // namespace
}  // namespace ddbg
