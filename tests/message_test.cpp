// Unit tests for message wire encoding and the command protocol.
#include <gtest/gtest.h>

#include "core/commands.hpp"
#include "net/message.hpp"

namespace ddbg {
namespace {

Message round_trip(const Message& m) {
  ByteWriter writer;
  m.encode(writer);
  ByteReader reader(writer.buffer());
  auto decoded = Message::decode(reader);
  EXPECT_TRUE(decoded.ok());
  EXPECT_TRUE(reader.exhausted());
  return std::move(decoded).value();
}

TEST(Message, ApplicationRoundTrip) {
  Message m = Message::application(Bytes{1, 2, 3});
  m.message_id = 99;
  m.lamport = 7;
  const Message d = round_trip(m);
  EXPECT_EQ(d.kind, MessageKind::kApplication);
  EXPECT_EQ(d.message_id, 99u);
  EXPECT_EQ(d.lamport, 7u);
  EXPECT_EQ(d.payload, (Bytes{1, 2, 3}));
  EXPECT_FALSE(d.halt.has_value());
}

TEST(Message, ApplicationWithVectorClock) {
  Message m = Message::application(Bytes{9});
  m.vclock = VectorClock(3);
  m.vclock.tick(ProcessId(1));
  const Message d = round_trip(m);
  EXPECT_EQ(d.vclock.at(ProcessId(1)), 1u);
}

TEST(Message, HaltMarkerRoundTrip) {
  Message m = Message::halt_marker(HaltId(5), {ProcessId(2), ProcessId(0)});
  const Message d = round_trip(m);
  EXPECT_EQ(d.kind, MessageKind::kHaltMarker);
  ASSERT_TRUE(d.halt.has_value());
  EXPECT_EQ(d.halt->halt_id, HaltId(5));
  ASSERT_EQ(d.halt->halt_path.size(), 2u);
  EXPECT_EQ(d.halt->halt_path[0], ProcessId(2));
  EXPECT_EQ(d.halt->halt_path[1], ProcessId(0));
}

TEST(Message, SnapshotMarkerRoundTrip) {
  const Message d = round_trip(Message::snapshot_marker(17));
  EXPECT_EQ(d.kind, MessageKind::kSnapshotMarker);
  ASSERT_TRUE(d.snapshot.has_value());
  EXPECT_EQ(d.snapshot->snapshot_id, 17u);
}

TEST(Message, PredicateMarkerRoundTrip) {
  const Message d = round_trip(
      Message::predicate_marker(BreakpointId(3), Bytes{0xaa, 0xbb}, 2));
  EXPECT_EQ(d.kind, MessageKind::kPredicateMarker);
  ASSERT_TRUE(d.predicate.has_value());
  EXPECT_EQ(d.predicate->breakpoint, BreakpointId(3));
  EXPECT_EQ(d.predicate->encoded_predicate, (Bytes{0xaa, 0xbb}));
  EXPECT_EQ(d.predicate->stage_index, 2u);
}

TEST(Message, ControlRoundTrip) {
  const Message d = round_trip(Message::control(Bytes{5, 6}));
  EXPECT_EQ(d.kind, MessageKind::kControl);
  EXPECT_EQ(d.payload, (Bytes{5, 6}));
}

TEST(Message, DecodeRejectsGarbageKind) {
  Bytes data{0xff, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  ByteReader reader(data);
  EXPECT_FALSE(Message::decode(reader).ok());
}

TEST(Message, EncodedSizeGrowsWithPayload) {
  Message small = Message::application(Bytes(4, 0));
  Message large = Message::application(Bytes(400, 0));
  EXPECT_LT(small.encoded_size(), large.encoded_size());
  EXPECT_GE(large.encoded_size(), 400u);
}

TEST(Message, DescribeIsInformative) {
  Message m = Message::halt_marker(HaltId(4), {ProcessId(1)});
  const std::string text = m.describe();
  EXPECT_NE(text.find("halt_marker"), std::string::npos);
  EXPECT_NE(text.find("halt_id=4"), std::string::npos);
  EXPECT_NE(text.find("p1"), std::string::npos);
}

// ---- Command protocol ----

Command command_round_trip(const Command& cmd) {
  auto decoded = Command::decode(cmd.encode());
  EXPECT_TRUE(decoded.ok());
  return std::move(decoded).value();
}

TEST(Command, ArmPredicateRoundTrip) {
  const Command d = command_round_trip(
      Command::arm_predicate(BreakpointId(7), Bytes{1, 2}, 3));
  EXPECT_EQ(d.kind, CommandKind::kArmPredicate);
  EXPECT_EQ(d.breakpoint, BreakpointId(7));
  EXPECT_EQ(d.predicate, (Bytes{1, 2}));
  EXPECT_EQ(d.stage_index, 3u);
}

TEST(Command, ResumeRoundTrip) {
  const Command d = command_round_trip(Command::resume(12));
  EXPECT_EQ(d.kind, CommandKind::kResume);
  EXPECT_EQ(d.wave_id, 12u);
}

TEST(Command, HaltReportRoundTrip) {
  ProcessSnapshot snapshot;
  snapshot.process = ProcessId(2);
  snapshot.state = Bytes{9, 8, 7};
  snapshot.description = "bal=5";
  snapshot.halt_path = {ProcessId(1), ProcessId(0)};
  snapshot.in_channels.push_back(
      ChannelState{ChannelId(4), {Bytes{1}, Bytes{2, 2}}});
  snapshot.vclock = VectorClock(3);
  snapshot.vclock.tick(ProcessId(2));
  snapshot.captured_at = TimePoint{12345};

  const Command d =
      command_round_trip(Command::halt_report(ProcessId(2), 6, snapshot));
  EXPECT_EQ(d.kind, CommandKind::kHaltReport);
  EXPECT_EQ(d.reporter, ProcessId(2));
  EXPECT_EQ(d.wave_id, 6u);
  ASSERT_TRUE(d.report.has_value());
  EXPECT_EQ(d.report->state, (Bytes{9, 8, 7}));
  EXPECT_EQ(d.report->description, "bal=5");
  ASSERT_EQ(d.report->halt_path.size(), 2u);
  ASSERT_EQ(d.report->in_channels.size(), 1u);
  EXPECT_EQ(d.report->in_channels[0].channel, ChannelId(4));
  ASSERT_EQ(d.report->in_channels[0].messages.size(), 2u);
  EXPECT_EQ(d.report->in_channels[0].messages[1], (Bytes{2, 2}));
  EXPECT_EQ(d.report->vclock.at(ProcessId(2)), 1u);
  EXPECT_EQ(d.report->captured_at.ns, 12345);
}

TEST(Command, RouteMarkerRoundTrip) {
  const Command d = command_round_trip(Command::route_marker(
      ProcessId(1), ProcessId(4), BreakpointId(2), Bytes{3}, 1));
  EXPECT_EQ(d.kind, CommandKind::kRouteMarker);
  EXPECT_EQ(d.reporter, ProcessId(1));
  EXPECT_EQ(d.target, ProcessId(4));
}

TEST(Command, BreakpointHitRoundTrip) {
  const Command d = command_round_trip(
      Command::breakpoint_hit(ProcessId(0), BreakpointId(9), "p0:event(x)"));
  EXPECT_EQ(d.kind, CommandKind::kBreakpointHit);
  EXPECT_EQ(d.text, "p0:event(x)");
}

TEST(Command, NotifySatisfiedRoundTrip) {
  const Command d = command_round_trip(
      Command::notify_satisfied(ProcessId(3), BreakpointId(1), 2));
  EXPECT_EQ(d.kind, CommandKind::kNotifySatisfied);
  EXPECT_EQ(d.stage_index, 2u);
}

TEST(Command, AggregatedHaltReportRoundTrip) {
  std::vector<ProcessSnapshot> snapshots(2);
  snapshots[0].process = ProcessId(3);
  snapshots[0].state = Bytes{1, 2, 3};
  snapshots[0].halt_path = {ProcessId(9), ProcessId(8)};
  snapshots[0].in_channels.push_back(
      ChannelState{ChannelId(5), {Bytes{4}, Bytes{5, 5}}});
  snapshots[1].process = ProcessId(4);
  snapshots[1].description = "idle";

  const Command d = command_round_trip(
      Command::aggregated_halt_report(ProcessId(10), 7, snapshots));
  EXPECT_EQ(d.kind, CommandKind::kAggregatedHaltReport);
  EXPECT_EQ(d.reporter, ProcessId(10));
  EXPECT_EQ(d.wave_id, 7u);
  ASSERT_EQ(d.reports.size(), 2u);
  EXPECT_EQ(d.reports[0].process, ProcessId(3));
  EXPECT_EQ(d.reports[0].state, (Bytes{1, 2, 3}));
  ASSERT_EQ(d.reports[0].halt_path.size(), 2u);
  EXPECT_EQ(d.reports[0].halt_path[1], ProcessId(8));
  ASSERT_EQ(d.reports[0].in_channels.size(), 1u);
  EXPECT_EQ(d.reports[0].in_channels[0].messages[1], (Bytes{5, 5}));
  EXPECT_EQ(d.reports[1].process, ProcessId(4));
  EXPECT_EQ(d.reports[1].description, "idle");
}

TEST(Command, AggregatedSnapshotReportRoundTrip) {
  std::vector<ProcessSnapshot> snapshots(1);
  snapshots[0].process = ProcessId(0);
  snapshots[0].state = Bytes{6};
  const Command d = command_round_trip(
      Command::aggregated_snapshot_report(ProcessId(5), 2, snapshots));
  EXPECT_EQ(d.kind, CommandKind::kAggregatedSnapshotReport);
  EXPECT_EQ(d.reporter, ProcessId(5));
  EXPECT_EQ(d.wave_id, 2u);
  ASSERT_EQ(d.reports.size(), 1u);
  EXPECT_EQ(d.reports[0].state, (Bytes{6}));
}

TEST(Command, AggregatedReportEmptyRoundTrip) {
  const Command d = command_round_trip(
      Command::aggregated_halt_report(ProcessId(1), 1, {}));
  EXPECT_EQ(d.kind, CommandKind::kAggregatedHaltReport);
  EXPECT_TRUE(d.reports.empty());
}

TEST(Command, TierBroadcastRoundTrip) {
  const Bytes inner = Command::resume(4).encode();
  const Command d = command_round_trip(Command::tier_broadcast(inner));
  EXPECT_EQ(d.kind, CommandKind::kTierBroadcast);
  EXPECT_EQ(d.inner, inner);
  // The envelope's payload decodes back to the carried command.
  auto unwrapped = Command::decode(d.inner);
  ASSERT_TRUE(unwrapped.ok());
  EXPECT_EQ(unwrapped.value().kind, CommandKind::kResume);
  EXPECT_EQ(unwrapped.value().wave_id, 4u);
}

TEST(Command, TierUnicastRoundTrip) {
  const Bytes inner =
      Command::arm_predicate(BreakpointId(2), Bytes{7, 7}, 0).encode();
  const Command d =
      command_round_trip(Command::tier_unicast(ProcessId(6), inner));
  EXPECT_EQ(d.kind, CommandKind::kTierUnicast);
  EXPECT_EQ(d.target, ProcessId(6));
  EXPECT_EQ(d.inner, inner);
}

TEST(Command, DecodeRejectsTruncation) {
  Bytes encoded = Command::resume(3).encode();
  encoded.resize(encoded.size() / 2);
  EXPECT_FALSE(Command::decode(encoded).ok());
}

TEST(Command, DecodeRejectsTrailingBytes) {
  Bytes encoded = Command::resume(3).encode();
  encoded.push_back(0);
  EXPECT_FALSE(Command::decode(encoded).ok());
}

TEST(GlobalState, EquivalenceIgnoresMetadata) {
  ProcessSnapshot a;
  a.process = ProcessId(0);
  a.state = Bytes{1};
  a.halt_path = {ProcessId(3)};
  a.captured_at = TimePoint{1};
  ProcessSnapshot b = a;
  b.halt_path = {};
  b.captured_at = TimePoint{999};

  GlobalState s1(HaltId(1));
  s1.add(a);
  GlobalState s2(HaltId(2));
  s2.add(b);
  EXPECT_TRUE(s1.equivalent(s2));
}

TEST(GlobalState, DifferenceInStateBytesDetected) {
  ProcessSnapshot a;
  a.process = ProcessId(0);
  a.state = Bytes{1};
  ProcessSnapshot b = a;
  b.state = Bytes{2};
  GlobalState s1{HaltId(1)};
  s1.add(a);
  GlobalState s2{HaltId(1)};
  s2.add(b);
  EXPECT_FALSE(s1.equivalent(s2));
  EXPECT_TRUE(s1.first_difference(s2).has_value());
}

TEST(GlobalState, DifferenceInChannelContentsDetected) {
  ProcessSnapshot a;
  a.process = ProcessId(0);
  a.in_channels.push_back(ChannelState{ChannelId(0), {Bytes{1}}});
  ProcessSnapshot b;
  b.process = ProcessId(0);
  b.in_channels.push_back(ChannelState{ChannelId(0), {}});
  GlobalState s1{HaltId(1)};
  s1.add(a);
  GlobalState s2{HaltId(1)};
  s2.add(b);
  EXPECT_FALSE(s1.equivalent(s2));
}

TEST(GlobalState, ChannelOrderNormalized) {
  ProcessSnapshot a;
  a.process = ProcessId(0);
  a.in_channels.push_back(ChannelState{ChannelId(1), {Bytes{1}}});
  a.in_channels.push_back(ChannelState{ChannelId(0), {}});
  ProcessSnapshot b;
  b.process = ProcessId(0);
  b.in_channels.push_back(ChannelState{ChannelId(0), {}});
  b.in_channels.push_back(ChannelState{ChannelId(1), {Bytes{1}}});
  GlobalState s1{HaltId(1)};
  s1.add(a);
  GlobalState s2{HaltId(1)};
  s2.add(b);
  EXPECT_TRUE(s1.equivalent(s2));
  EXPECT_EQ(s1.total_channel_messages(), 1u);
}

}  // namespace
}  // namespace ddbg
