// Unit tests for the common kernel: strong ids, Result/Status, Rng,
// serialization round-trips.
#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <unordered_set>

#include "common/buffer_pool.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/serialization.hpp"
#include "common/time.hpp"

namespace ddbg {
namespace {

TEST(StrongId, DefaultIsInvalid) {
  ProcessId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(to_string(id), "p<invalid>");
}

TEST(StrongId, ValueRoundTrip) {
  ProcessId id(7);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7u);
  EXPECT_EQ(to_string(id), "p7");
}

TEST(StrongId, Comparisons) {
  EXPECT_EQ(ProcessId(3), ProcessId(3));
  EXPECT_NE(ProcessId(3), ProcessId(4));
  EXPECT_LT(ProcessId(3), ProcessId(4));
}

TEST(StrongId, DistinctTypesAreDistinct) {
  // Compile-time property: ProcessId and ChannelId don't cross-convert.
  static_assert(!std::is_convertible_v<ProcessId, ChannelId>);
  static_assert(!std::is_convertible_v<ChannelId, ProcessId>);
}

TEST(StrongId, Hashable) {
  std::unordered_set<ProcessId> set;
  set.insert(ProcessId(1));
  set.insert(ProcessId(2));
  set.insert(ProcessId(1));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Error(ErrorCode::kNotFound, "missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.error().message(), "missing");
  EXPECT_EQ(r.value_or(7), 7);
  EXPECT_EQ(r.error().to_string(), "not_found: missing");
}

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
}

TEST(Status, CarriesError) {
  Status s{Error(ErrorCode::kTimeout, "too slow")};
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kTimeout);
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextInInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.next_in(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextInDegenerateRange) {
  // low == high is a valid (single-point) range, not a modulo-by-zero.
  Rng rng(19);
  EXPECT_EQ(rng.next_in(5, 5), 5);
  EXPECT_EQ(rng.next_in(-3, -3), -3);
  EXPECT_EQ(rng.next_in(std::numeric_limits<std::int64_t>::max(),
                        std::numeric_limits<std::int64_t>::max()),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(rng.next_in(std::numeric_limits<std::int64_t>::min(),
                        std::numeric_limits<std::int64_t>::min()),
            std::numeric_limits<std::int64_t>::min());
}

TEST(Rng, NextInExtremeRanges) {
  Rng rng(23);
  // The full-int64 span overflows a uint64 width by one; the implementation
  // must fall back to a raw draw rather than computing span = 0.
  std::set<std::int64_t> full_range;
  for (int i = 0; i < 100; ++i) {
    full_range.insert(rng.next_in(std::numeric_limits<std::int64_t>::min(),
                                  std::numeric_limits<std::int64_t>::max()));
  }
  EXPECT_GT(full_range.size(), 90u);  // essentially all distinct draws
  // A range that crosses zero and nearly spans the type stays in bounds.
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v =
        rng.next_in(std::numeric_limits<std::int64_t>::min() + 2,
                    std::numeric_limits<std::int64_t>::max() - 2);
    EXPECT_GE(v, std::numeric_limits<std::int64_t>::min() + 2);
    EXPECT_LE(v, std::numeric_limits<std::int64_t>::max() - 2);
  }
  // Both endpoints of a tiny range are reachable (inclusive bounds).
  std::set<std::int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(rng.next_in(std::numeric_limits<std::int64_t>::max() - 1,
                            std::numeric_limits<std::int64_t>::max()));
  }
  EXPECT_EQ(seen.size(), 2u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng rng(17);
  double total = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) total += rng.next_exponential(5.0);
  const double mean = total / kSamples;
  EXPECT_NEAR(mean, 5.0, 0.3);
}

TEST(Rng, ForkIndependent) {
  Rng parent(21);
  Rng child = parent.fork();
  EXPECT_NE(parent.next_u64(), child.next_u64());
}

TEST(Serialization, FixedWidthRoundTrip) {
  ByteWriter writer;
  writer.u8(0xab);
  writer.u16(0x1234);
  writer.u32(0xdeadbeef);
  writer.u64(0x0123456789abcdefULL);
  writer.i64(-42);
  writer.f64(3.5);

  ByteReader reader(writer.buffer());
  EXPECT_EQ(reader.u8().value(), 0xab);
  EXPECT_EQ(reader.u16().value(), 0x1234);
  EXPECT_EQ(reader.u32().value(), 0xdeadbeefu);
  EXPECT_EQ(reader.u64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(reader.i64().value(), -42);
  EXPECT_EQ(reader.f64().value(), 3.5);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Serialization, VarintRoundTrip) {
  const std::uint64_t values[] = {0,    1,    127,        128,
                                  300,  1u << 20, 1ull << 40, ~0ull};
  ByteWriter writer;
  for (const auto v : values) writer.varint(v);
  ByteReader reader(writer.buffer());
  for (const auto v : values) {
    EXPECT_EQ(reader.varint().value(), v);
  }
  EXPECT_TRUE(reader.exhausted());
}

TEST(Serialization, VarintCompact) {
  ByteWriter writer;
  writer.varint(5);
  EXPECT_EQ(writer.size(), 1u);
}

TEST(Serialization, StringRoundTrip) {
  ByteWriter writer;
  writer.str("hello");
  writer.str("");
  writer.str("with \0 byte");
  ByteReader reader(writer.buffer());
  EXPECT_EQ(reader.str().value(), "hello");
  EXPECT_EQ(reader.str().value(), "");
  EXPECT_EQ(reader.str().value(), "with ");  // string_view stops at NUL here
}

TEST(Serialization, BytesRoundTrip) {
  const Bytes data{1, 2, 3, 255, 0, 7};
  ByteWriter writer;
  writer.bytes(data);
  ByteReader reader(writer.buffer());
  EXPECT_EQ(reader.bytes().value(), data);
}

TEST(Serialization, UnderflowIsError) {
  const Bytes data{0x01};
  ByteReader reader(data);
  auto r = reader.u32();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kParseError);
}

TEST(Serialization, TruncatedStringIsError) {
  ByteWriter writer;
  writer.varint(100);  // claims 100 bytes follow
  ByteReader reader(writer.buffer());
  EXPECT_FALSE(reader.str().ok());
}

TEST(Serialization, MalformedVarintIsError) {
  Bytes data(11, 0xff);  // continuation bit forever
  ByteReader reader(data);
  EXPECT_FALSE(reader.varint().ok());
}

TEST(BufferPool, FirstAcquireIsAMiss) {
  BufferPool pool;
  auto lease = pool.acquire();
  EXPECT_FALSE(lease.reused());
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(BufferPool, ReleasedBufferIsReusedWithCapacityRetained) {
  BufferPool pool;
  const std::uint8_t* data = nullptr;
  {
    auto lease = pool.acquire();
    lease.bytes().assign(100, 0xab);
    data = lease.bytes().data();
  }
  EXPECT_EQ(pool.idle(), 1u);
  auto lease = pool.acquire();
  EXPECT_TRUE(lease.reused());
  EXPECT_TRUE(lease.bytes().empty());        // contents cleared...
  EXPECT_GE(lease.bytes().capacity(), 100u);  // ...capacity kept
  EXPECT_EQ(lease.bytes().data(), data);      // same allocation, no alloc
  EXPECT_EQ(pool.hits(), 1u);
}

TEST(BufferPool, TakeDetachesFromPool) {
  BufferPool pool;
  {
    auto lease = pool.acquire();
    lease.bytes().assign(8, 0x01);
    Bytes taken = std::move(lease).take();
    EXPECT_EQ(taken.size(), 8u);
  }
  EXPECT_EQ(pool.idle(), 0u);  // taken buffer never came back
}

TEST(BufferPool, MoveTransfersOwnershipOnce) {
  BufferPool pool;
  {
    auto a = pool.acquire();
    BufferPool::Lease b = std::move(a);
    (void)b;
  }
  // Exactly one recycle despite the moved-from lease also destructing.
  EXPECT_EQ(pool.idle(), 1u);
}

TEST(BufferPool, FreeListDepthIsCapped) {
  BufferPool pool(BufferPool::Config{.max_buffers = 2,
                                     .max_retained_capacity = 1u << 20});
  {
    auto a = pool.acquire();
    auto b = pool.acquire();
    auto c = pool.acquire();
  }
  EXPECT_EQ(pool.idle(), 2u);
}

TEST(BufferPool, OversizedBuffersAreNotRetained) {
  BufferPool pool(
      BufferPool::Config{.max_buffers = 32, .max_retained_capacity = 64});
  {
    auto lease = pool.acquire();
    lease.bytes().assign(1024, 0x00);  // grows capacity past the cap
  }
  EXPECT_EQ(pool.idle(), 0u);
}

TEST(BufferPool, SteadyStateHitRateIsHigh) {
  BufferPool pool;
  for (int i = 0; i < 1000; ++i) {
    auto lease = pool.acquire();
    lease.bytes().assign(64, 0x2a);
  }
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.hits(), 999u);
}

TEST(Time, DurationArithmetic) {
  EXPECT_EQ(Duration::millis(2) + Duration::micros(500),
            Duration::micros(2500));
  EXPECT_EQ(Duration::seconds(1) - Duration::millis(1),
            Duration::micros(999000));
  EXPECT_EQ(Duration::millis(3) * 4, Duration::millis(12));
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
}

TEST(Time, TimePointArithmetic) {
  TimePoint t{1000};
  EXPECT_EQ((t + Duration::nanos(500)).ns, 1500);
  EXPECT_EQ((TimePoint{1500} - t).ns, 500);
}

}  // namespace
}  // namespace ddbg
