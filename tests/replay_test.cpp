// Record/replay: a run recorded on any substrate re-executes
// byte-deterministically in the simulator.
//
// The determinism contract under test (DESIGN.md "Record/replay"): the log
// captures every input a user process is a function of — per-channel
// delivery order, timer creation/firing order, completed halt cuts — so
// replaying those inputs in the logged order reproduces the run exactly:
// identical final states, identical replayed S_h (Theorem-2 equivalence),
// and two replays of one log are byte-identical in full.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "debugger/harness.hpp"
#include "net/fault_plan.hpp"
#include "replay/recorder.hpp"
#include "replay/replay_driver.hpp"
#include "replay/replay_session.hpp"
#include "sim/latency_model.hpp"
#include "workload/behaviors.hpp"

namespace ddbg {
namespace {

constexpr Duration kWait = Duration::seconds(60);

TokenRingConfig ring_config(std::uint32_t rounds) {
  TokenRingConfig config;
  config.rounds = rounds;
  config.hop_delay = Duration::millis(1);
  return config;
}

ReplayLogHeader ring_header(std::uint32_t n, const char* substrate,
                            std::uint64_t seed) {
  ReplayLogHeader header;
  header.seed = seed;
  header.substrate = substrate;
  header.num_user_processes = n;
  header.debugger_fanout = 0;
  header.num_channels = static_cast<std::uint32_t>(
      Topology::ring(n).with_debugger().num_channels());
  return header;
}

// ---------------------------------------------------------------------------
// Simulator-recorded runs
// ---------------------------------------------------------------------------

struct SimRecording {
  ReplayLog log;
  std::vector<std::string> final_states;
};

// Record a ring run in the simulator: a few token hops, one halt/resume
// cycle mid-run, then run to quiescence.
SimRecording record_sim_ring(std::uint32_t n, std::uint32_t halts = 1) {
  auto recorder = std::make_shared<ReplayRecorder>(ring_header(n, "sim", 11));
  HarnessConfig config;
  config.seed = 11;
  config.latency = std::make_unique<ConstantLatency>(Duration::millis(2));
  config.replay = recorder;
  SimDebugHarness harness(Topology::ring(n), make_token_ring(n, ring_config(6)),
                          std::move(config));
  recorder->set_metrics(&harness.sim().metrics());

  Simulation& sim = harness.sim();
  for (std::uint32_t wave = 0; wave < halts; ++wave) {
    sim.run_until(sim.now() + Duration::millis(15));
    harness.session().halt();
    auto info = harness.session().wait_for_halt(kWait);
    EXPECT_TRUE(info.has_value());
    harness.session().resume(kWait);
  }
  sim.run_until_quiescent();

  SimRecording recording;
  recording.log = recorder->log();
  for (std::uint32_t p = 0; p < n; ++p) {
    recording.final_states.push_back(
        harness.shim(ProcessId(p)).describe_state());
  }
  return recording;
}

ReplayDriver::Report replay_ring(const ReplayLog& log, std::uint32_t n,
                                 std::uint64_t stop_after_cut = 0) {
  ReplayDriver::Options options;
  options.stop_after_cut = stop_after_cut;
  ReplayDriver driver(log, Topology::ring(n),
                      make_token_ring(n, ring_config(6)), options);
  return driver.run();
}

TEST(ReplaySim, RecordedRunReplaysExactly) {
  const std::uint32_t n = 4;
  SimRecording recording = record_sim_ring(n);
  ASSERT_GT(recording.log.deliveries(), 0u);
  ASSERT_EQ(recording.log.halt_cuts(), 1u);
  ASSERT_GT(recording.log.timer_fires(), 0u);

  ReplayDriver::Report report = replay_ring(recording.log, n);
  EXPECT_TRUE(report.ok()) << report.error;
  EXPECT_EQ(report.deliveries, recording.log.deliveries());
  EXPECT_EQ(report.timer_fires, recording.log.timer_fires());
  EXPECT_EQ(report.cuts, 1u);
  EXPECT_EQ(report.cuts_matched, 1u) << report.describe();
  EXPECT_EQ(report.divergences, 0u) << report.describe();
  // The replayed run ends in the recorded run's exact final states.
  EXPECT_EQ(report.final_states, recording.final_states);
}

TEST(ReplaySim, TwoReplaysAreByteIdentical) {
  const std::uint32_t n = 4;
  SimRecording recording = record_sim_ring(n);
  ReplayDriver::Report first = replay_ring(recording.log, n);
  ReplayDriver::Report second = replay_ring(recording.log, n);
  EXPECT_TRUE(first.ok()) << first.error;
  EXPECT_EQ(first.describe(), second.describe());
  EXPECT_EQ(first.metrics_json, second.metrics_json);
  EXPECT_EQ(first.final_states, second.final_states);
}

TEST(ReplaySim, ReverseContinueParksAtEarlierCut) {
  const std::uint32_t n = 4;
  SimRecording recording = record_sim_ring(n, /*halts=*/2);
  ASSERT_EQ(recording.log.halt_cuts(), 2u);

  ReplayDriver::Options options;
  options.stop_after_cut = 1;
  ReplayDriver driver(recording.log, Topology::ring(n),
                      make_token_ring(n, ring_config(6)), options);
  ReplayDriver::Report report = driver.run();
  EXPECT_TRUE(report.ok()) << report.error;
  EXPECT_TRUE(report.halted_at_cut);
  EXPECT_EQ(report.cuts, 1u);
  EXPECT_EQ(report.cuts_matched, 1u) << report.describe();
  // The time-traveled system is live and inspectable: the first cut's wave
  // is complete and every user process is frozen (halted).
  auto wave = driver.harness().debugger().latest_halt_wave();
  ASSERT_TRUE(wave.has_value());
  EXPECT_TRUE(wave->complete);
  for (std::uint32_t p = 0; p < n; ++p) {
    EXPECT_TRUE(driver.harness().shim(ProcessId(p)).halted());
  }
}

TEST(ReplaySim, MutatedLogCountsDivergence) {
  const std::uint32_t n = 4;
  SimRecording recording = record_sim_ring(n);
  // Corrupt the payload hash of the first delivery: replay must keep going
  // (the message is still delivered) but flag the divergence.
  for (ReplayRecord& record : recording.log.records) {
    if (record.kind == ReplayRecordKind::kDeliver) {
      record.hash ^= 0xdeadbeefULL;
      break;
    }
  }
  ReplayDriver::Report report = replay_ring(recording.log, n);
  EXPECT_GE(report.divergences, 1u);
}

// ---------------------------------------------------------------------------
// Threaded-runtime-recorded runs
// ---------------------------------------------------------------------------

TEST(ReplayRuntime, ThreadedRunReplaysInSimulator) {
  const std::uint32_t n = 4;
  auto recorder =
      std::make_shared<ReplayRecorder>(ring_header(n, "threads", 1));
  HarnessConfig config;
  config.seed = 1;
  config.replay = recorder;
  RuntimeDebugHarness harness(Topology::ring(n),
                              make_token_ring(n, ring_config(1'000'000)),
                              std::move(config));
  recorder->set_metrics(&harness.runtime().metrics());
  harness.start();

  // Let the token circulate, then freeze a consistent cut mid-flight.
  ASSERT_TRUE(Runtime::wait_until(
      [&] { return recorder->log().deliveries() >= 3 * n; }, kWait));
  harness.session().halt();
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  harness.session().resume(kWait);
  ASSERT_TRUE(Runtime::wait_until(
      [&] { return recorder->log().deliveries() >= 6 * n; }, kWait));
  harness.shutdown();

  const ReplayLog log = recorder->log();
  ASSERT_EQ(log.halt_cuts(), 1u);
  ASSERT_GT(log.timer_fires(), 0u);

  // The wall-clock-scheduled threaded run replays under virtual time.
  ReplayDriver::Report first = replay_ring(log, n);
  EXPECT_TRUE(first.ok()) << first.error << "\n" << first.describe();
  EXPECT_EQ(first.cuts_matched, 1u) << first.describe();
  EXPECT_EQ(first.divergences, 0u) << first.describe();

  ReplayDriver::Report second = replay_ring(log, n);
  EXPECT_EQ(first.describe(), second.describe());
  EXPECT_EQ(first.metrics_json, second.metrics_json);
}

// ---------------------------------------------------------------------------
// TCP-recorded runs under a fault plan
// ---------------------------------------------------------------------------

TEST(ReplayTcp, ChaosRunReplaysAsFaultFreeEquivalent) {
  const std::uint32_t n = 4;
  auto plan = FaultPlan::parse("drop=0.03,delay=0.05,extra_delay=2ms", 5);
  ASSERT_TRUE(plan.ok());

  auto recorder = std::make_shared<ReplayRecorder>(ring_header(n, "tcp", 5));
  HarnessConfig config;
  config.seed = 5;
  config.faults = std::make_shared<FaultPlan>(std::move(plan).value());
  config.replay = recorder;
  TcpDebugHarness harness(Topology::ring(n),
                          make_token_ring(n, ring_config(1'000'000)),
                          std::move(config));
  recorder->set_metrics(&harness.tcp().metrics());
  ASSERT_TRUE(harness.start());

  ASSERT_TRUE(TcpRuntime::wait_until(
      [&] { return recorder->log().deliveries() >= 3 * n; }, kWait));
  harness.session().halt();
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  harness.session().resume(kWait);
  ASSERT_TRUE(TcpRuntime::wait_until(
      [&] { return recorder->log().deliveries() >= 6 * n; }, kWait));
  harness.shutdown();

  const ReplayLog log = recorder->log();
  ASSERT_EQ(log.halt_cuts(), 1u);

  // The reliability layer made user-level delivery exactly-once FIFO, so
  // the replay is the fault-free equivalent run: same inputs, same cut,
  // zero divergences — with the fault draws preserved as annotations.
  ReplayDriver::Report first = replay_ring(log, n);
  EXPECT_TRUE(first.ok()) << first.error << "\n" << first.describe();
  EXPECT_EQ(first.cuts_matched, 1u) << first.describe();
  EXPECT_EQ(first.divergences, 0u) << first.describe();
  EXPECT_EQ(first.annotations, log.annotations());

  ReplayDriver::Report second = replay_ring(log, n);
  EXPECT_EQ(first.describe(), second.describe());
  EXPECT_EQ(first.metrics_json, second.metrics_json);
}

// ---------------------------------------------------------------------------
// Wire round trip + session command surface
// ---------------------------------------------------------------------------

TEST(ReplayLogWire, SaveLoadRoundTrip) {
  const std::uint32_t n = 4;
  SimRecording recording = record_sim_ring(n);
  const std::string path =
      testing::TempDir() + "replay_roundtrip_" +
      std::to_string(::getpid()) + ".log";
  ASSERT_TRUE(recording.log.save(path).ok());
  auto loaded = ReplayLog::load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message();
  EXPECT_EQ(loaded.value().encode(), recording.log.encode());
  std::remove(path.c_str());
}

TEST(ReplaySession, LoadRunBackCut) {
  // Record with the named-workload factory so the handler can rebuild the
  // exact processes from the header alone.
  const std::uint32_t n = 4;
  auto built = make_named_workload("ring", n);
  ASSERT_TRUE(built.ok());

  ReplayLogHeader header = ring_header(n, "sim", 3);
  header.workload = "ring";
  auto recorder = std::make_shared<ReplayRecorder>(header);
  HarnessConfig config;
  config.seed = 3;
  config.latency = std::make_unique<ConstantLatency>(Duration::millis(2));
  config.replay = recorder;
  SimDebugHarness harness(built.value().topology,
                          std::move(built.value().processes),
                          std::move(config));
  recorder->set_metrics(&harness.sim().metrics());
  Simulation& sim = harness.sim();
  for (int wave = 0; wave < 2; ++wave) {
    sim.run_until(sim.now() + Duration::millis(15));
    harness.session().halt();
    ASSERT_TRUE(harness.session().wait_for_halt(kWait).has_value());
    harness.session().resume(kWait);
  }

  const std::string path = testing::TempDir() + "replay_session_" +
                           std::to_string(::getpid()) + ".log";
  ASSERT_TRUE(recorder->save(path).ok());

  ReplayCommandHandler handler;
  auto precondition = handler.handle("run");
  ASSERT_FALSE(precondition.ok());
  EXPECT_EQ(precondition.error().code(), ErrorCode::kFailedPrecondition);

  auto loaded = handler.handle("load " + path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message();
  EXPECT_NE(loaded.value().find("loaded"), std::string::npos);

  auto run = handler.handle("run");
  ASSERT_TRUE(run.ok()) << run.error().message();
  EXPECT_NE(run.value().find("cuts_matched=2/2"), std::string::npos)
      << run.value();
  EXPECT_NE(run.value().find("divergences=0"), std::string::npos);

  // Reverse-continue: back -> cut 2, back -> cut 1, back -> error.
  auto back = handler.handle("back");
  ASSERT_TRUE(back.ok()) << back.error().message();
  EXPECT_NE(back.value().find("time-traveled to cut 2/2"), std::string::npos)
      << back.value();
  auto back2 = handler.handle("back");
  ASSERT_TRUE(back2.ok()) << back2.error().message();
  EXPECT_NE(back2.value().find("time-traveled to cut 1/2"),
            std::string::npos);
  auto back3 = handler.handle("back");
  ASSERT_FALSE(back3.ok());
  EXPECT_EQ(back3.error().code(), ErrorCode::kFailedPrecondition);

  auto cut = handler.handle("cut 2");
  ASSERT_TRUE(cut.ok()) << cut.error().message();
  EXPECT_NE(cut.value().find("time-traveled to cut 2/2"), std::string::npos);

  auto status = handler.handle("status");
  ASSERT_TRUE(status.ok());
  EXPECT_NE(status.value().find("halted at cut 2/2"), std::string::npos);

  auto bogus = handler.handle("cut 9");
  EXPECT_FALSE(bogus.ok());
  EXPECT_FALSE(handler.handle("frobnicate").ok());
  std::remove(path.c_str());
}

// The replay metrics block is kept by both sides: the recorder counts what
// it logs, the driver counts what it re-executes.
TEST(ReplayMetrics, RecorderAndDriverKeepTheReplayBlock) {
  const std::uint32_t n = 4;
  auto recorder = std::make_shared<ReplayRecorder>(ring_header(n, "sim", 11));
  HarnessConfig config;
  config.seed = 11;
  config.latency = std::make_unique<ConstantLatency>(Duration::millis(2));
  config.replay = recorder;
  SimDebugHarness harness(Topology::ring(n), make_token_ring(n, ring_config(6)),
                          std::move(config));
  recorder->set_metrics(&harness.sim().metrics());
  Simulation& sim = harness.sim();
  sim.run_until(sim.now() + Duration::millis(15));
  harness.session().halt();
  ASSERT_TRUE(harness.session().wait_for_halt(kWait).has_value());
  harness.session().resume(kWait);
  sim.run_until_quiescent();

  const auto recorded = harness.sim().metrics().snapshot();
  const ReplayLog log = recorder->log();
  EXPECT_EQ(recorded.replay.records_logged, log.records.size());
  EXPECT_EQ(recorded.replay.deliveries_logged, log.deliveries());
  EXPECT_EQ(recorded.replay.timer_sets_logged, log.timer_sets());
  EXPECT_EQ(recorded.replay.timer_fires_logged, log.timer_fires());
  EXPECT_EQ(recorded.replay.cuts_logged, log.halt_cuts());
  EXPECT_EQ(recorded.replay.deliveries_replayed, 0u);

  ReplayDriver driver(log, Topology::ring(n),
                      make_token_ring(n, ring_config(6)));
  ReplayDriver::Report report = driver.run();
  ASSERT_TRUE(report.ok()) << report.error;
  const auto replayed = driver.harness().sim().metrics().snapshot();
  EXPECT_EQ(replayed.replay.deliveries_replayed, log.deliveries());
  EXPECT_EQ(replayed.replay.timers_replayed, log.timer_fires());
  EXPECT_EQ(replayed.replay.cuts_replayed, log.halt_cuts());
  EXPECT_EQ(replayed.replay.divergences, 0u);
  EXPECT_EQ(replayed.replay.records_logged, 0u);  // replays never re-record
}

}  // namespace
}  // namespace ddbg
