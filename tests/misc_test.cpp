// Odds and ends: logging, simulation limits, session robustness, lazy
// control-channel exemption.
#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "debugger/harness.hpp"
#include "workload/behaviors.hpp"
#include "workload/lazy.hpp"

namespace ddbg {
namespace {

class LogCapture {
 public:
  LogCapture() {
    Logger::instance().set_sink(
        [this](LogLevel level, std::string_view message) {
          lines.emplace_back(level, std::string(message));
        });
  }
  ~LogCapture() {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(LogLevel::kWarn);
  }
  std::vector<std::pair<LogLevel, std::string>> lines;
};

TEST(Logging, LevelFiltering) {
  LogCapture capture;
  Logger::instance().set_level(LogLevel::kWarn);
  DDBG_DEBUG() << "hidden";
  DDBG_INFO() << "also hidden";
  DDBG_WARN() << "visible " << 42;
  DDBG_ERROR() << "very visible";
  ASSERT_EQ(capture.lines.size(), 2u);
  EXPECT_EQ(capture.lines[0].first, LogLevel::kWarn);
  EXPECT_EQ(capture.lines[0].second, "visible 42");
  EXPECT_EQ(capture.lines[1].first, LogLevel::kError);
}

TEST(Logging, DebugLevelShowsEverything) {
  LogCapture capture;
  Logger::instance().set_level(LogLevel::kDebug);
  DDBG_DEBUG() << "now visible";
  ASSERT_EQ(capture.lines.size(), 1u);
  EXPECT_EQ(capture.lines[0].second, "now visible");
}

TEST(Logging, LevelNames) {
  EXPECT_STREQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(to_string(LogLevel::kError), "ERROR");
}

TEST(SimulationLimits, EndlessProgramHitsMaxTime) {
  class Endless final : public Process {
   public:
    void on_start(ProcessContext& ctx) override {
      ctx.set_timer(Duration::millis(1));
    }
    void on_timer(ProcessContext& ctx, TimerId) override {
      ctx.set_timer(Duration::millis(1));
    }
    void on_message(ProcessContext&, ChannelId, Message) override {}
  };
  SimulationConfig config;
  config.max_time = TimePoint{Duration::millis(50).ns};
  Topology topology(1);
  std::vector<ProcessPtr> processes;
  processes.push_back(std::make_unique<Endless>());
  Simulation sim(std::move(topology), std::move(processes),
                 std::move(config));
  EXPECT_FALSE(sim.run_until_quiescent());  // did not quiesce
  EXPECT_LE(sim.now().ns, Duration::millis(51).ns);
}

TEST(SessionRobustness, BreakpointOnUnknownProcessRejected) {
  GossipConfig gossip;
  SimDebugHarness harness(Topology::ring(3), make_gossip(3, gossip));
  auto bp = harness.session().set_breakpoint("p7:event(x)");
  ASSERT_FALSE(bp.ok());
  EXPECT_EQ(bp.error().code(), ErrorCode::kInvalidArgument);
  // The debugger itself is not a valid breakpoint target either (p3 = d).
  EXPECT_FALSE(harness.session().set_breakpoint("p3:recv").ok());
  // And the system still works afterwards.
  ASSERT_TRUE(harness.session().set_breakpoint("p0:sent").ok());
  EXPECT_TRUE(harness.session().wait_for_halt(Duration::seconds(30))
                  .has_value());
}

TEST(SessionRobustness, WaitForHaltTimesOutWithoutBreakpoint) {
  GossipConfig gossip;
  SimDebugHarness harness(Topology::ring(3), make_gossip(3, gossip));
  auto wave = harness.session().wait_for_halt(Duration::millis(20));
  EXPECT_FALSE(wave.has_value());
}

TEST(SessionRobustness, InspectReturnsFreshValues) {
  GossipConfig gossip;
  SimDebugHarness harness(Topology::ring(2), make_gossip(2, gossip));
  harness.sim().run_for(Duration::millis(10));
  auto first = harness.session().inspect(ProcessId(0), Duration::seconds(10));
  ASSERT_TRUE(first.has_value());
  harness.sim().run_for(Duration::millis(30));
  auto second = harness.session().inspect(ProcessId(0), Duration::seconds(10));
  ASSERT_TRUE(second.has_value());
  // The second inspection reflects later state, not the cached report.
  EXPECT_NE(first->description, second->description);
}

TEST(Lazy, ControlTrafficBypassesThePoll) {
  // A lazy process must accept a debugger command immediately even though
  // its application channels are only polled rarely.
  GossipConfig gossip;
  Topology user_topology = Topology::ring(2);
  Topology topology = user_topology.with_debugger();
  std::vector<ProcessPtr> shims =
      wrap_in_shims(topology, make_gossip(2, gossip));
  std::vector<ProcessPtr> wrapped;
  for (auto& shim : shims) {
    wrapped.push_back(std::make_unique<LazyProcess>(std::move(shim),
                                                    Duration::seconds(10)));
  }
  auto debugger = std::make_unique<DebuggerProcess>();
  DebuggerProcess* debugger_ptr = debugger.get();
  wrapped.push_back(std::move(debugger));
  Simulation sim(topology, std::move(wrapped));
  sim.run_for(Duration::millis(10));
  sim.post(topology.debugger_id(), [debugger_ptr](ProcessContext& ctx,
                                                  Process&) {
    debugger_ptr->query_state(ctx, ProcessId(0));
  });
  // Well under the 10-second poll interval: the reply must already be in.
  const bool replied = sim.run_until_condition(
      [&] { return debugger_ptr->state_report(ProcessId(0)).has_value(); },
      sim.now() + Duration::millis(200));
  EXPECT_TRUE(replied);
}

TEST(HarnessConfig, SeedChangesExecution) {
  auto run = [](std::uint64_t seed) {
    GossipConfig gossip;
    gossip.max_sends = 5;
    HarnessConfig config;
    config.seed = seed;
    SimDebugHarness harness(Topology::complete(3), make_gossip(3, gossip),
                            std::move(config));
    harness.sim().run_for(Duration::millis(100));
    std::string state;
    for (std::uint32_t i = 0; i < 3; ++i) {
      state += harness.shim(ProcessId(i)).describe_state() + ";";
    }
    return state;
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(2));
}

}  // namespace
}  // namespace ddbg
