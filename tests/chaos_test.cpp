// Chaos tests: the fault-injection adversary (net/fault_plan.hpp) against
// the reliability layer (net/reliable.hpp) on all three substrates.
//
// The claim under test is the one the paper takes as an axiom (section
// 2.1): channels are reliable, FIFO and unbounded.  With a FaultPlan
// dropping, duplicating, reordering, delaying and resetting transmissions,
// the algorithms above the transport — token circulation, halting waves,
// C&L snapshots, linked-predicate detection — must reach exactly the same
// verdicts as on a clean transport, and the vector-clock consistency
// checks (analysis/consistency) must keep holding on every halted state.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/consistency.hpp"
#include "core/debug_shim.hpp"
#include "debugger/debugger_process.hpp"
#include "debugger/harness.hpp"
#include "debugger/session.hpp"
#include "net/fault_plan.hpp"
#include "net/reliable.hpp"
#include "runtime/runtime.hpp"
#include "runtime/tcp_runtime.hpp"
#include "sim/simulation.hpp"
#include "workload/behaviors.hpp"

namespace ddbg {
namespace {

constexpr Duration kWait = Duration::seconds(30);

// A mixed adversary: every non-reset kind at once.  Probabilities are high
// enough that a few dozen sends are guaranteed (statistically, and pinned
// by the determinism test) to hit every kind.
FaultSpec mixed_spec() {
  FaultSpec spec;
  spec.drop = 0.10;
  spec.duplicate = 0.08;
  spec.reorder = 0.08;
  spec.delay = 0.08;
  return spec;
}

std::shared_ptr<FaultPlan> make_plan(FaultSpec spec, std::uint64_t seed) {
  return std::make_shared<FaultPlan>(spec, seed);
}

// ---------------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------------

TEST(ChaosPlan, ParseFullSpec) {
  auto plan = FaultPlan::parse(
      "drop=0.05,dup=0.02,reorder=0.03,delay=0.05,reset=0.001,"
      "partition=200..260,reorder_delay=8ms,extra_delay=250us",
      42);
  ASSERT_TRUE(plan.ok()) << plan.error().to_string();
  const FaultSpec& spec = plan.value().spec_for(ChannelId(0));
  EXPECT_DOUBLE_EQ(spec.drop, 0.05);
  EXPECT_DOUBLE_EQ(spec.duplicate, 0.02);
  EXPECT_DOUBLE_EQ(spec.reorder, 0.03);
  EXPECT_DOUBLE_EQ(spec.delay, 0.05);
  EXPECT_DOUBLE_EQ(spec.reset, 0.001);
  EXPECT_EQ(spec.partition_from, 200u);
  EXPECT_EQ(spec.partition_until, 260u);
  EXPECT_EQ(spec.reorder_delay, Duration::millis(8));
  EXPECT_EQ(spec.extra_delay, Duration::micros(250));
  EXPECT_EQ(plan.value().seed(), 42u);
}

TEST(ChaosPlan, ParseRejectsGarbage) {
  EXPECT_FALSE(FaultPlan::parse("drop=0.5,warp=0.1", 1).ok());
  EXPECT_FALSE(FaultPlan::parse("drop=not-a-number", 1).ok());
  EXPECT_FALSE(FaultPlan::parse("drop=0.7,dup=0.7", 1).ok());  // sum > 1
  EXPECT_FALSE(FaultPlan::parse("partition=9..3", 1).ok());
  EXPECT_FALSE(FaultPlan::parse("drop", 1).ok());
}

TEST(ChaosPlan, DecisionsAreDeterministicPerSeed) {
  FaultSpec spec = mixed_spec();
  spec.reset = 0.02;
  const FaultPlan a(spec, 7);
  const FaultPlan b(spec, 7);
  const FaultPlan c(spec, 8);
  bool any_difference_across_seeds = false;
  for (std::uint64_t attempt = 0; attempt < 512; ++attempt) {
    const auto da = a.decide(ChannelId(3), attempt);
    const auto db = b.decide(ChannelId(3), attempt);
    EXPECT_EQ(da.kind, db.kind) << "attempt " << attempt;
    EXPECT_EQ(da.extra_delay, db.extra_delay) << "attempt " << attempt;
    if (da.kind != c.decide(ChannelId(3), attempt).kind) {
      any_difference_across_seeds = true;
    }
  }
  EXPECT_TRUE(any_difference_across_seeds);
}

TEST(ChaosPlan, PartitionWindowDropsEveryAttemptInside) {
  FaultSpec spec;
  spec.partition_from = 10;
  spec.partition_until = 20;
  const FaultPlan plan(spec, 1);
  for (std::uint64_t attempt = 0; attempt < 30; ++attempt) {
    const auto decision = plan.decide(ChannelId(0), attempt);
    if (attempt >= 10 && attempt < 20) {
      EXPECT_EQ(decision.kind, FaultKind::kPartition) << attempt;
    } else {
      EXPECT_EQ(decision.kind, FaultKind::kNone) << attempt;
    }
  }
}

TEST(ChaosPlan, AckPathFacesOnlyDropAndDelay) {
  FaultSpec spec;
  spec.duplicate = 0.5;
  spec.reorder = 0.3;
  spec.reset = 0.2;
  const FaultPlan plan(spec, 11);
  for (std::uint64_t attempt = 0; attempt < 256; ++attempt) {
    EXPECT_EQ(plan.decide_ack(ChannelId(2), attempt).kind, FaultKind::kNone);
  }
}

TEST(ChaosPlan, PerChannelOverride) {
  FaultPlan plan(FaultSpec{}, 1);
  FaultSpec lossy;
  lossy.drop = 1.0;
  plan.set_channel(ChannelId(1), lossy);
  EXPECT_EQ(plan.decide(ChannelId(0), 0).kind, FaultKind::kNone);
  EXPECT_EQ(plan.decide(ChannelId(1), 0).kind, FaultKind::kDrop);
}

// ---------------------------------------------------------------------------
// ReliableSender / ReliableReceiver
// ---------------------------------------------------------------------------

Message numbered(std::uint32_t n) {
  ByteWriter writer;
  writer.u32(n);
  return Message::application(std::move(writer).take());
}

TEST(ChaosReliable, InOrderBurstDeliversAndRetires) {
  ReliableSender sender;
  ReliableReceiver receiver;
  std::vector<ReliableReceiver::Delivery> out;
  for (std::uint32_t i = 0; i < 5; ++i) {
    const std::uint64_t seq = sender.stage(numbered(i), i, TimePoint{0});
    EXPECT_EQ(seq, i + 1);
    EXPECT_EQ(receiver.on_frame(seq, numbered(i), i, out),
              ReliableReceiver::Accept::kDelivered);
  }
  ASSERT_EQ(out.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].seq, i + 1);
    EXPECT_EQ(out[i].meta, i);
  }
  EXPECT_EQ(receiver.cum_ack(), 5u);
  EXPECT_EQ(sender.ack(receiver.cum_ack()), 5u);
  EXPECT_EQ(sender.unacked(), 0u);
  EXPECT_EQ(sender.peek(3), nullptr);
}

TEST(ChaosReliable, DuplicatesSuppressedReordersHeld) {
  ReliableReceiver receiver;
  std::vector<ReliableReceiver::Delivery> out;
  // seq 2 arrives early: held, nothing released, cum_ack unchanged.
  EXPECT_EQ(receiver.on_frame(2, numbered(2), 0, out),
            ReliableReceiver::Accept::kBuffered);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(receiver.cum_ack(), 0u);
  EXPECT_EQ(receiver.held(), 1u);
  // A second copy of the held frame is a duplicate, not a re-buffer.
  EXPECT_EQ(receiver.on_frame(2, numbered(2), 0, out),
            ReliableReceiver::Accept::kDuplicate);
  // seq 1 fills the gap: both release, in order.
  EXPECT_EQ(receiver.on_frame(1, numbered(1), 0, out),
            ReliableReceiver::Accept::kDelivered);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].seq, 1u);
  EXPECT_EQ(out[1].seq, 2u);
  EXPECT_EQ(receiver.cum_ack(), 2u);
  // Late duplicate of an already-released frame.
  EXPECT_EQ(receiver.on_frame(1, numbered(1), 0, out),
            ReliableReceiver::Accept::kDuplicate);
}

TEST(ChaosReliable, BackoffDoublesUpToCap) {
  ReliableConfig config;
  config.rto_initial = Duration::millis(25);
  config.rto_max = Duration::millis(400);
  ReliableSender sender(config);
  sender.stage(numbered(1), 0, TimePoint{0});
  ASSERT_TRUE(sender.next_deadline().has_value());
  EXPECT_EQ(sender.next_deadline()->ns, Duration::millis(25).ns);
  // Fire retransmissions at exactly each deadline; each fire doubles the
  // backoff, so the gap to the next deadline runs 50 -> 100 -> 200 -> 400
  // and then pins at the cap.
  TimePoint now{0};
  const std::int64_t expected[] = {50, 100, 200, 400, 400, 400};
  for (const std::int64_t gap_ms : expected) {
    now = *sender.next_deadline();
    const auto due = sender.due(now);
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(due[0], 1u);
    ASSERT_TRUE(sender.next_deadline().has_value());
    EXPECT_EQ(sender.next_deadline()->ns - now.ns,
              Duration::millis(gap_ms).ns)
        << "after firing at " << now.ns;
  }
  // Not due again before the deadline.
  EXPECT_TRUE(sender.due(now).empty());
}

TEST(ChaosReliable, MarkAllDueReplaysTheWindow) {
  ReliableSender sender;
  for (std::uint32_t i = 0; i < 4; ++i) {
    sender.stage(numbered(i), 0, TimePoint{0});
  }
  ASSERT_EQ(sender.ack(2), 2u);
  EXPECT_EQ(sender.mark_all_due(TimePoint{1000}), 2u);
  const auto due = sender.due(TimePoint{1000});
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0], 3u);
  EXPECT_EQ(due[1], 4u);
}

TEST(ChaosReliable, HeaderRoundTrip) {
  RelHeader header;
  header.tag = RelHeader::kData;
  header.seq = 0x1122334455667788ULL;
  header.cum_ack = 0x99aabbccddeeff00ULL;
  ByteWriter writer;
  header.encode(writer);
  const Bytes wire = std::move(writer).take();
  EXPECT_EQ(wire.size(), kRelHeaderSize);
  ByteReader reader(wire);
  const auto decoded = RelHeader::decode(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().tag, header.tag);
  EXPECT_EQ(decoded.value().seq, header.seq);
  EXPECT_EQ(decoded.value().cum_ack, header.cum_ack);

  Bytes corrupt = wire;
  corrupt[0] = 0x7f;  // bad tag
  ByteReader bad(corrupt);
  EXPECT_FALSE(RelHeader::decode(bad).ok());
}

// ---------------------------------------------------------------------------
// Simulator chaos matrix
// ---------------------------------------------------------------------------

// The token must survive every fault kind individually: each round trip is
// a chain of dependent sends, so a single lost (or misordered) hop wedges
// the ring forever unless the reliability layer recovers it.
TEST(ChaosSim, TokenRingSurvivesEachFaultKind) {
  struct Case {
    const char* name;
    FaultSpec spec;
  };
  std::vector<Case> cases;
  {
    Case c{"drop", {}};
    c.spec.drop = 0.25;
    cases.push_back(c);
  }
  {
    Case c{"duplicate", {}};
    c.spec.duplicate = 0.25;
    cases.push_back(c);
  }
  {
    Case c{"reorder", {}};
    c.spec.reorder = 0.25;
    cases.push_back(c);
  }
  {
    Case c{"delay", {}};
    c.spec.delay = 0.25;
    cases.push_back(c);
  }
  {
    Case c{"reset", {}};
    c.spec.reset = 0.10;
    cases.push_back(c);
  }
  {
    Case c{"partition", {}};
    c.spec.partition_from = 5;
    c.spec.partition_until = 25;
    cases.push_back(c);
  }

  constexpr std::uint32_t kRounds = 12;
  for (const Case& test_case : cases) {
    TokenRingConfig ring;
    ring.rounds = kRounds;
    SimulationConfig config;
    config.seed = 9;
    config.faults = make_plan(test_case.spec, 9);
    Simulation sim(Topology::ring(3), make_token_ring(3, ring),
                   std::move(config));
    const auto& p0 =
        dynamic_cast<TokenRingProcess&>(sim.process(ProcessId(0)));
    const bool done = sim.run_until_condition(
        [&] { return p0.tokens_seen() >= kRounds; },
        sim.now() + Duration::seconds(120));
    EXPECT_TRUE(done) << "ring wedged under " << test_case.name;
    const auto snap = sim.metrics().snapshot(sim.now());
    // The adversary demonstrably acted...
    std::uint64_t injected = 0;
    for (const std::uint64_t n : snap.transport.faults_injected) {
      injected += n;
    }
    EXPECT_GT(injected, 0u) << test_case.name;
    // ...and the ledger balances: every send was delivered exactly once.
    EXPECT_EQ(snap.totals.messages_delivered, snap.totals.messages_sent)
        << test_case.name;
  }
}

TEST(ChaosSim, RecoveryCountersPopulated) {
  TokenRingConfig ring;
  ring.rounds = 20;
  FaultSpec spec = mixed_spec();
  spec.reset = 0.05;
  SimulationConfig config;
  config.seed = 3;
  config.faults = make_plan(spec, 3);
  Simulation sim(Topology::ring(3), make_token_ring(3, ring),
                 std::move(config));
  const auto& p0 = dynamic_cast<TokenRingProcess&>(sim.process(ProcessId(0)));
  ASSERT_TRUE(sim.run_until_condition(
      [&] { return p0.tokens_seen() >= 20; },
      sim.now() + Duration::seconds(300)));
  const auto t = sim.metrics().snapshot(sim.now()).transport;
  EXPECT_GT(t.faults_injected[fault_index(FaultKind::kDrop)], 0u);
  EXPECT_GT(t.faults_injected[fault_index(FaultKind::kDuplicate)], 0u);
  EXPECT_GT(t.faults_injected[fault_index(FaultKind::kReset)], 0u);
  EXPECT_GT(t.retransmits, 0u);
  EXPECT_GT(t.dup_suppressed, 0u);
  EXPECT_GT(t.reconnects, 0u);
  EXPECT_GT(t.resync_replayed, 0u);
  EXPECT_GT(t.channel_down, 0u);
}

// Two runs with the same seed and plan are the same run: same faults, same
// recoveries, byte-identical metrics.  This is what makes chaos failures
// reproducible, and it doubles as the E7 guarantee (a null plan leaves the
// legacy path byte-for-byte alone, which the seed suite already pins).
TEST(ChaosSim, SameSeedSamePlanIsByteIdentical) {
  const auto run = [] {
    TokenRingConfig ring;
    ring.rounds = 15;
    FaultSpec spec = mixed_spec();
    spec.reset = 0.03;
    SimulationConfig config;
    config.seed = 21;
    config.faults = make_plan(spec, 21);
    Simulation sim(Topology::ring(4), make_token_ring(4, ring),
                   std::move(config));
    sim.run_for(Duration::seconds(30));
    return sim.metrics().snapshot(sim.now()).to_json();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"faults_injected\""), std::string::npos);
}

// The windowed parallel engine must replay the whole chaos pipeline —
// fault decisions, retransmits, acks, resets and reconnects — in exactly
// the sequential order.  Any divergence shows up as differing metrics
// JSON, event counts or final clocks.
TEST(ChaosSim, ParallelMatchesSequentialUnderMixedFaults) {
  const auto run = [](std::uint32_t workers) {
    TokenRingConfig ring;
    ring.rounds = 15;
    FaultSpec spec = mixed_spec();
    spec.reset = 0.03;
    SimulationConfig config;
    config.seed = 21;
    config.workers = workers;
    config.faults = make_plan(spec, 21);
    Simulation sim(Topology::ring(6), make_token_ring(6, ring),
                   std::move(config));
    sim.run_for(Duration::seconds(30));
    return std::make_tuple(sim.metrics().snapshot(sim.now()).to_json(),
                           sim.events_processed(), sim.now().ns);
  };
  const auto seq = run(1);
  const auto par = run(4);
  EXPECT_EQ(std::get<0>(seq), std::get<0>(par));
  EXPECT_EQ(std::get<1>(seq), std::get<1>(par));
  EXPECT_EQ(std::get<2>(seq), std::get<2>(par));
  EXPECT_NE(std::get<0>(seq).find("\"retransmits\""), std::string::npos);
}

// Same equivalence through the full debugger harness: halt wave verdict,
// consistent cut and metrics must be identical with parallel simulation
// underneath the session machinery.
TEST(ChaosSim, ParallelHaltVerdictMatchesSequential) {
  const auto run = [](std::uint32_t workers) {
    GossipConfig gossip;
    HarnessConfig config;
    config.seed = 5;
    config.workers = workers;
    FaultSpec spec = mixed_spec();
    spec.reset = 0.02;
    config.faults = make_plan(spec, 5);
    SimDebugHarness harness(Topology::ring(4), make_gossip(4, gossip),
                            std::move(config));
    harness.sim().run_for(Duration::millis(50));
    harness.session().halt();
    auto wave = harness.session().wait_for_halt(kWait);
    EXPECT_TRUE(wave.has_value());
    std::string cut;
    if (wave.has_value()) {
      EXPECT_TRUE(wave->complete);
      EXPECT_TRUE(consistent_cut(wave->state));
      for (const auto& [process, snapshot] : wave->state.snapshots()) {
        ByteWriter writer;
        snapshot.encode(writer);
        cut += std::to_string(process.value()) + ":" +
               std::to_string(writer.size()) + ";";
      }
    }
    return std::make_pair(
        cut, harness.sim().metrics().snapshot(harness.sim().now()).to_json());
  };
  const auto seq = run(1);
  const auto par = run(4);
  EXPECT_EQ(seq.first, par.first);
  EXPECT_EQ(seq.second, par.second);
}

// Halting under chaos: the wave completes, every process freezes, the cut
// is consistent, and the verdict matches a fault-free run of the same
// system (completeness, size, per-process halted flags).
TEST(ChaosSim, HaltVerdictMatchesFaultFreeRun) {
  const auto halt_run = [](std::shared_ptr<FaultPlan> faults) {
    GossipConfig gossip;
    HarnessConfig config;
    config.seed = 5;
    config.faults = std::move(faults);
    SimDebugHarness harness(Topology::ring(4), make_gossip(4, gossip),
                            std::move(config));
    harness.sim().run_for(Duration::millis(50));
    harness.session().halt();
    auto wave = harness.session().wait_for_halt(kWait);
    EXPECT_TRUE(wave.has_value());
    if (wave.has_value()) {
      EXPECT_TRUE(wave->complete);
      EXPECT_EQ(wave->state.size(), 4u);
      EXPECT_TRUE(consistent_cut(wave->state));
    }
    for (std::uint32_t i = 0; i < 4; ++i) {
      EXPECT_TRUE(harness.shim(ProcessId(i)).halted());
      EXPECT_EQ(harness.shim(ProcessId(i)).halting().last_halt_id(), 1u);
    }
  };
  halt_run(nullptr);
  FaultSpec spec = mixed_spec();
  spec.reset = 0.02;
  halt_run(make_plan(spec, 5));
}

// Linked-predicate detection under chaos: the breakpoint on p2's token
// event must fire exactly once — a duplicated token would fire it twice, a
// dropped one never.
TEST(ChaosSim, LinkedPredicateVerdictUnchangedByFaults) {
  TokenRingConfig ring;
  ring.rounds = 100;
  // Hold the token until the arm command (which itself crosses the lossy
  // transport and may need retransmits) demonstrably landed on p2 —
  // otherwise the token laps the ring while the arm is in recovery and
  // the exact-one-event assertion races the adversary.
  ring.start_gate = std::make_shared<std::atomic<bool>>(false);
  HarnessConfig config;
  config.seed = 6;
  config.faults = make_plan(mixed_spec(), 6);
  SimDebugHarness harness(Topology::ring(4), make_token_ring(4, ring),
                          std::move(config));
  auto bp = harness.session().set_breakpoint("p2:event(token)");
  ASSERT_TRUE(bp.ok());
  ASSERT_TRUE(harness.sim().run_until_condition(
      [&] { return harness.armed_count() >= 1; },
      harness.sim().now() + Duration::seconds(60)));
  ring.start_gate->store(true);
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  const auto& p2 =
      dynamic_cast<TokenRingProcess&>(harness.shim(ProcessId(2)).user());
  EXPECT_EQ(p2.tokens_seen(), 1u);
  const auto hits = harness.session().hits();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].breakpoint, bp.value());
  EXPECT_EQ(hits[0].process, ProcessId(2));
  EXPECT_TRUE(consistent_cut(wave->state));
}

// C&L snapshot wave under chaos: recorded money is conserved even while
// transfers drop, duplicate and reorder underneath the markers.
TEST(ChaosSim, SnapshotConservesMoneyUnderFaults) {
  BankConfig bank;
  HarnessConfig config;
  config.seed = 8;
  config.faults = make_plan(mixed_spec(), 8);
  SimDebugHarness harness(Topology::complete(3), make_bank(3, bank),
                          std::move(config));
  harness.sim().run_for(Duration::millis(60));
  auto snapshot = harness.session().take_snapshot(kWait);
  ASSERT_TRUE(snapshot.has_value());
  auto total = BankProcess::total_money(snapshot->state);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total.value(), 3 * bank.initial_balance);
}

// ---------------------------------------------------------------------------
// Threaded runtime under chaos
// ---------------------------------------------------------------------------

TEST(ChaosThreads, TokenRingCompletesUnderMixedFaults) {
  constexpr std::uint32_t kRounds = 6;
  TokenRingConfig ring;
  ring.rounds = kRounds;
  ring.hop_delay = Duration::micros(200);
  RuntimeConfig config;
  config.seed = 2;
  config.faults = make_plan(mixed_spec(), 2);
  Runtime runtime(Topology::ring(3), make_token_ring(3, ring), config);
  runtime.start();
  const auto& p0 =
      dynamic_cast<TokenRingProcess&>(runtime.process(ProcessId(0)));
  EXPECT_TRUE(Runtime::wait_until(
      [&] { return p0.tokens_seen() >= kRounds; }, kWait));
  runtime.shutdown();
  const auto snap = runtime.metrics().snapshot(runtime.now());
  EXPECT_EQ(snap.totals.messages_delivered, snap.totals.messages_sent);
  std::uint64_t injected = 0;
  for (const std::uint64_t n : snap.transport.faults_injected) injected += n;
  EXPECT_GT(injected, 0u);
}

TEST(ChaosThreads, HaltingConsistentUnderMixedFaults) {
  GossipConfig gossip;
  gossip.send_interval = Duration::millis(1);
  HarnessConfig config;
  config.seed = 4;
  FaultSpec spec = mixed_spec();
  spec.reset = 0.02;
  config.faults = make_plan(spec, 4);
  RuntimeDebugHarness harness(Topology::ring(3), make_gossip(3, gossip),
                              std::move(config));
  harness.start();
  const auto& p0 =
      dynamic_cast<GossipProcess&>(harness.shim(ProcessId(0)).user());
  ASSERT_TRUE(Runtime::wait_until([&] { return p0.sent() >= 5; }, kWait));
  harness.session().halt();
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  EXPECT_TRUE(wave->complete);
  EXPECT_EQ(wave->state.size(), 3u);
  EXPECT_TRUE(consistent_cut(wave->state));
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(harness.shim(ProcessId(i)).halted());
  }
  harness.shutdown();
}

// ---------------------------------------------------------------------------
// TCP runtime under chaos
// ---------------------------------------------------------------------------

// TcpHost (the session adapter) now lives in debugger/harness.hpp, shared
// with the tier harness.

// Emits `count` numbered messages from its on_start burst.
class Burst final : public Process {
 public:
  explicit Burst(std::uint32_t count) : count_(count) {}
  void on_start(ProcessContext& ctx) override {
    for (std::uint32_t i = 0; i < count_; ++i) {
      for (const ChannelId c : ctx.topology().out_channels(ctx.self())) {
        ByteWriter writer;
        writer.u32(i);
        ctx.send(c, Message::application(std::move(writer).take()));
      }
    }
  }
  void on_message(ProcessContext&, ChannelId, Message) override {}

 private:
  std::uint32_t count_;
};

// Records every payload it sees, in arrival order.
class Recorder final : public Process {
 public:
  void on_message(ProcessContext&, ChannelId, Message message) override {
    ByteReader reader(message.payload);
    const auto value = reader.u32();
    if (value.ok()) {
      std::lock_guard<std::mutex> guard{mutex_};
      values_.push_back(value.value());
    }
    received_.fetch_add(1, std::memory_order_acq_rel);
  }
  [[nodiscard]] std::uint32_t received() const {
    return received_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::vector<std::uint32_t> values() {
    std::lock_guard<std::mutex> guard{mutex_};
    return values_;
  }

 private:
  std::atomic<std::uint32_t> received_{0};
  std::mutex mutex_;
  std::vector<std::uint32_t> values_;
};

// The §2.1 axioms, end to end over real sockets: 60 messages cross a lossy
// channel and arrive exactly once, in exactly the order sent.
TEST(ChaosTcp, ExactlyOnceFifoUnderDropDupReorder) {
  constexpr std::uint32_t kCount = 60;
  FaultSpec spec = mixed_spec();
  spec.reset = 0.03;
  TcpRuntimeConfig config;
  config.faults = make_plan(spec, 13);
  std::vector<ProcessPtr> processes;
  processes.push_back(std::make_unique<Burst>(kCount));
  auto recorder = std::make_unique<Recorder>();
  Recorder* recorder_ptr = recorder.get();
  processes.push_back(std::move(recorder));
  TcpRuntime runtime(Topology::ring(2), std::move(processes), config);
  ASSERT_TRUE(runtime.start());
  EXPECT_TRUE(TcpRuntime::wait_until(
      [&] { return recorder_ptr->received() >= kCount; }, kWait));
  runtime.shutdown();
  const auto values = recorder_ptr->values();
  ASSERT_EQ(values.size(), kCount);  // nothing lost, nothing duplicated
  for (std::uint32_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(values[i], i) << "order broken at " << i;  // FIFO
  }
  const auto t = runtime.metrics().snapshot(runtime.now()).transport;
  std::uint64_t injected = 0;
  for (const std::uint64_t n : t.faults_injected) injected += n;
  EXPECT_GT(injected, 0u);
  EXPECT_GT(t.retransmits, 0u);
}

// Halting over sockets while connections reset underneath: the wave still
// completes on a consistent cut, and the transport demonstrably went down
// and came back (reconnect + resync counters).
TEST(ChaosTcp, HaltingConsistentAcrossReconnects) {
  GossipConfig gossip;
  gossip.send_interval = Duration::millis(1);
  FaultSpec spec = mixed_spec();
  spec.reset = 0.04;
  TcpRuntimeConfig config;
  config.faults = make_plan(spec, 17);

  Topology topology = Topology::ring(3).with_debugger();
  std::vector<ProcessPtr> processes =
      wrap_in_shims(topology, make_gossip(3, gossip));
  auto debugger = std::make_unique<DebuggerProcess>();
  DebuggerProcess* debugger_ptr = debugger.get();
  processes.push_back(std::move(debugger));

  TcpRuntime runtime(topology, std::move(processes), config);
  ASSERT_TRUE(runtime.start());
  TcpHost host(runtime);
  DebuggerSession session(host, *debugger_ptr, topology.debugger_id());

  // Let gossip flow until at least one injected reset has forced a full
  // reconnect round-trip, so the halt below crosses a healed channel.
  ASSERT_TRUE(TcpRuntime::wait_until(
      [&] {
        return runtime.metrics().snapshot(runtime.now()).transport
                   .reconnects >= 1;
      },
      kWait));
  session.halt();
  auto wave = session.wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  EXPECT_TRUE(wave->complete);
  EXPECT_EQ(wave->state.size(), 3u);
  EXPECT_TRUE(consistent_cut(wave->state));
  runtime.shutdown();

  const auto t = runtime.metrics().snapshot(runtime.now()).transport;
  EXPECT_GT(t.faults_injected[fault_index(FaultKind::kReset)], 0u);
  EXPECT_GT(t.reconnects, 0u);
  EXPECT_GT(t.channel_down, 0u);
}

}  // namespace
}  // namespace ddbg
