// Stress and adversarial scenarios: simultaneous initiators everywhere,
// rapid halt/resume cycling, breakpoint storms, zero-latency channels,
// large topologies.  Everything must stay consistent.
#include <gtest/gtest.h>

#include "analysis/consistency.hpp"
#include "core/debug_shim.hpp"
#include "debugger/harness.hpp"
#include "workload/behaviors.hpp"

namespace ddbg {
namespace {

constexpr Duration kWait = Duration::seconds(120);

HarnessConfig seeded(std::uint64_t seed) {
  HarnessConfig config;
  config.seed = seed;
  return config;
}

TEST(Stress, EveryProcessInitiatesSimultaneously) {
  // All processes spontaneously halt at the same virtual instant — the
  // paper's "halting can be initiated spontaneously by more than one
  // process".  One wave, one id, consistent state.
  for (std::uint64_t seed = 61; seed <= 63; ++seed) {
    GossipConfig gossip;
    SimDebugHarness harness(Topology::complete(5), make_gossip(5, gossip),
                            seeded(seed));
    harness.sim().run_for(Duration::millis(20));
    for (std::uint32_t i = 0; i < 5; ++i) {
      harness.sim().post(ProcessId(i), [](ProcessContext& ctx,
                                          Process& process) {
        dynamic_cast<DebugShim&>(process).initiate_halt(ctx);
      });
    }
    auto wave = harness.session().wait_for_halt(kWait);
    ASSERT_TRUE(wave.has_value()) << "seed " << seed;
    EXPECT_EQ(wave->id, 1u);
    EXPECT_TRUE(consistent_cut(wave->state)) << "seed " << seed;
    for (std::uint32_t i = 0; i < 5; ++i) {
      EXPECT_EQ(harness.shim(ProcessId(i)).halting().last_halt_id(), 1u);
      // Everyone initiated: every halt path is empty.
      EXPECT_TRUE(wave->halt_paths.at(ProcessId(i)).empty());
    }
  }
}

TEST(Stress, RapidHaltResumeCycling) {
  GossipConfig gossip;
  SimDebugHarness harness(Topology::ring(4), make_gossip(4, gossip),
                          seeded(64));
  for (std::uint64_t wave_id = 1; wave_id <= 10; ++wave_id) {
    harness.sim().run_for(Duration::millis(3));  // barely any run time
    harness.session().halt();
    const bool complete = harness.sim().run_until_condition(
        [&] { return harness.debugger().halt_complete(wave_id); },
        harness.sim().now() + kWait);
    ASSERT_TRUE(complete) << "wave " << wave_id;
    auto wave = harness.debugger().halt_wave(wave_id);
    ASSERT_TRUE(wave.has_value());
    EXPECT_TRUE(consistent_cut(wave->state)) << "wave " << wave_id;
    harness.session().resume();
  }
  // After all that, the system still makes progress.
  const auto& p0 =
      dynamic_cast<GossipProcess&>(harness.shim(ProcessId(0)).user());
  const std::uint64_t before = p0.sent();
  harness.sim().run_for(Duration::millis(50));
  EXPECT_GT(p0.sent(), before);
}

TEST(Stress, BreakpointStorm) {
  // Many breakpoints race; the first trigger wins and the wave stays
  // consistent; every hit that was reported refers to a real breakpoint.
  TokenRingConfig ring_config;
  ring_config.rounds = 200;
  SimDebugHarness harness(Topology::ring(4), make_token_ring(4, ring_config),
                          seeded(65));
  std::vector<BreakpointId> ids;
  for (std::uint32_t p = 0; p < 4; ++p) {
    for (const char* expr : {"sent", "recv"}) {
      auto bp = harness.session().set_breakpoint(
          "p" + std::to_string(p) + ":" + expr);
      ASSERT_TRUE(bp.ok());
      ids.push_back(bp.value());
    }
  }
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  EXPECT_TRUE(consistent_cut(wave->state));
  ASSERT_GE(harness.session().hits().size(), 1u);
  for (const auto& hit : harness.session().hits()) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), hit.breakpoint), ids.end());
  }
}

TEST(Stress, MonitorAndHaltBreakpointsCoexist) {
  TokenRingConfig ring_config;
  ring_config.rounds = 100;
  SimDebugHarness harness(Topology::ring(3), make_token_ring(3, ring_config),
                          seeded(66));
  auto monitor = harness.session().set_breakpoint(
      "p0:event(token) [monitor]");
  ASSERT_TRUE(monitor.ok());
  auto halter = harness.session().set_breakpoint("(p1:event(token))^4");
  ASSERT_TRUE(halter.ok());
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  // The monitor recorded several abstract events before the halt.
  EXPECT_GE(harness.debugger().hit_count(monitor.value()), 2u);
  EXPECT_EQ(harness.debugger().hit_count(halter.value()), 1u);
  const auto& p1 = dynamic_cast<TokenRingProcess&>(
      harness.shim(ProcessId(1)).user());
  EXPECT_EQ(p1.tokens_seen(), 4u);
}

TEST(Stress, ZeroLatencyChannels) {
  // Degenerate timing: all delays zero; ordering falls back to the event
  // queue's deterministic sequence numbers.  All invariants must hold.
  BankConfig bank;
  HarnessConfig config;
  config.seed = 67;
  config.latency = constant_latency(Duration::nanos(0));
  SimDebugHarness harness(Topology::complete(3), make_bank(3, bank),
                          std::move(config));
  harness.sim().run_for(Duration::millis(30));
  harness.session().halt();
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  EXPECT_TRUE(consistent_cut(wave->state));
  auto total = BankProcess::total_money(wave->state);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total.value(), 3 * bank.initial_balance);
}

TEST(Stress, LargeRandomTopology) {
  const std::uint32_t n = 96;
  Rng topo_rng(68);
  const Topology topology =
      Topology::random_strongly_connected(n, 3 * n, topo_rng);
  GossipConfig gossip;
  SimDebugHarness harness(topology, make_gossip(n, gossip), seeded(68));
  const std::size_t channels_with_control =
      harness.topology().num_channels();
  harness.sim().run_for(Duration::millis(20));
  const std::uint64_t markers_before =
      harness.sim().stats().halt_markers_sent;
  harness.session().halt();
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  EXPECT_EQ(wave->state.size(), n);
  EXPECT_TRUE(consistent_cut(wave->state));
  EXPECT_LE(harness.sim().stats().halt_markers_sent - markers_before,
            channels_with_control);
}

TEST(Stress, HaltDuringSnapshotWave) {
  // A halting wave racing a recording wave: both must complete, the
  // recording possibly only after resume (the halted processes finish it
  // when they run again).
  GossipConfig gossip;
  SimDebugHarness harness(Topology::ring(4), make_gossip(4, gossip),
                          seeded(69));
  harness.sim().run_for(Duration::millis(20));
  // Start a recording and immediately halt.
  harness.sim().post(harness.debugger_id(),
                     [&](ProcessContext& ctx, Process&) {
                       harness.debugger().initiate_snapshot(ctx);
                       harness.debugger().initiate_halt(ctx);
                     });
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  EXPECT_TRUE(consistent_cut(wave->state));
  // Resume; the recording wave finishes.
  harness.session().resume();
  const bool snapshot_done = harness.sim().run_until_condition(
      [&] { return harness.debugger().snapshot_complete(1); },
      harness.sim().now() + kWait);
  EXPECT_TRUE(snapshot_done);
  auto snapshot = harness.debugger().snapshot_wave(1);
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_TRUE(consistent_cut(snapshot->state));
}

}  // namespace
}  // namespace ddbg
