// Tests for time-travel restore: a halted global state re-materialized into
// a fresh system continues correctly — the practical payoff of S_h being
// complete (process states + channel contents).
#include <gtest/gtest.h>

#include "analysis/consistency.hpp"
#include "debugger/restore.hpp"
#include "workload/behaviors.hpp"

namespace ddbg {
namespace {

constexpr Duration kWait = Duration::seconds(60);

HarnessConfig seeded(std::uint64_t seed) {
  HarnessConfig config;
  config.seed = seed;
  return config;
}

TEST(Restore, BankMoneySurvivesRestore) {
  BankConfig bank;
  GlobalState halted;
  {
    SimDebugHarness harness(Topology::complete(3), make_bank(3, bank),
                            seeded(51));
    harness.sim().run_for(Duration::millis(40));
    harness.session().halt();
    auto wave = harness.session().wait_for_halt(kWait);
    ASSERT_TRUE(wave.has_value());
    ASSERT_GT(wave->state.total_channel_messages(), 0u)
        << "need in-flight transfers for a meaningful restore test";
    halted = wave->state;
  }
  // A fresh system, different seed (future behaviour may differ — the
  // restored *state* must still conserve).
  SimDebugHarness fresh(Topology::complete(3), make_bank(3, bank),
                        seeded(99));
  auto status = restore_into(fresh, halted);
  ASSERT_TRUE(status.ok()) << status.error().to_string();
  fresh.sim().run_for(Duration::millis(40));
  fresh.session().halt();
  auto wave = fresh.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  auto total = BankProcess::total_money(wave->state);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total.value(), 3 * bank.initial_balance);
  EXPECT_TRUE(consistent_cut(wave->state));
}

TEST(Restore, TokenRingResumesMidFlight) {
  TokenRingConfig ring_config;
  ring_config.rounds = 6;
  GlobalState halted;
  std::uint32_t tokens_at_halt = 0;
  {
    SimDebugHarness harness(Topology::ring(3),
                            make_token_ring(3, ring_config), seeded(52));
    // Halt while the token is bouncing around.
    ASSERT_TRUE(harness.session().set_breakpoint("(p2:event(token))^2").ok());
    auto wave = harness.session().wait_for_halt(kWait);
    ASSERT_TRUE(wave.has_value());
    halted = wave->state;
    tokens_at_halt = dynamic_cast<TokenRingProcess&>(
                         harness.shim(ProcessId(2)).user())
                         .tokens_seen();
    EXPECT_EQ(tokens_at_halt, 2u);
  }
  SimDebugHarness fresh(Topology::ring(3), make_token_ring(3, ring_config),
                        seeded(52));
  ASSERT_TRUE(restore_into(fresh, halted).ok());
  // The restored ring finishes the remaining rounds: either the token was
  // held by a process (timer re-armed) or it was in a channel (preloaded).
  EXPECT_TRUE(fresh.sim().run_until_quiescent());
  for (std::uint32_t i = 0; i < 3; ++i) {
    const auto& process =
        dynamic_cast<TokenRingProcess&>(fresh.shim(ProcessId(i)).user());
    EXPECT_EQ(process.tokens_seen(), ring_config.rounds) << "p" << i;
  }
}

TEST(Restore, GossipCountersContinue) {
  GossipConfig gossip;
  gossip.max_sends = 30;
  GlobalState halted;
  std::uint64_t sent_at_halt = 0;
  {
    SimDebugHarness harness(Topology::ring(3), make_gossip(3, gossip),
                            seeded(53));
    harness.sim().run_for(Duration::millis(20));
    harness.session().halt();
    auto wave = harness.session().wait_for_halt(kWait);
    ASSERT_TRUE(wave.has_value());
    halted = wave->state;
    sent_at_halt = dynamic_cast<GossipProcess&>(
                       harness.shim(ProcessId(0)).user())
                       .sent();
    ASSERT_GT(sent_at_halt, 0u);
    ASSERT_LT(sent_at_halt, 30u);
  }
  SimDebugHarness fresh(Topology::ring(3), make_gossip(3, gossip),
                        seeded(53));
  ASSERT_TRUE(restore_into(fresh, halted).ok());
  fresh.sim().run_for(Duration::seconds(1));
  const auto& p0 =
      dynamic_cast<GossipProcess&>(fresh.shim(ProcessId(0)).user());
  // Counters continued from the restored values up to the configured cap.
  EXPECT_EQ(p0.sent(), 30u);
}

TEST(Restore, PreloadedMessagesAreDeliveredInOrder) {
  // Direct check of Simulation::preload_channel ordering.
  class Collector final : public Process {
   public:
    void on_message(ProcessContext&, ChannelId, Message message) override {
      payloads.push_back(message.payload);
    }
    std::vector<Bytes> payloads;
  };
  Topology topology(2);
  const ChannelId channel = topology.add_channel(ProcessId(0), ProcessId(1));
  std::vector<ProcessPtr> processes;
  processes.push_back(std::make_unique<Collector>());
  processes.push_back(std::make_unique<Collector>());
  Simulation sim(topology, std::move(processes));
  sim.preload_channel(channel, Bytes{1});
  sim.preload_channel(channel, Bytes{2});
  sim.preload_channel(channel, Bytes{3});
  EXPECT_EQ(sim.in_flight(channel), 3u);
  sim.run_until_quiescent();
  const auto& collector = dynamic_cast<Collector&>(sim.process(ProcessId(1)));
  ASSERT_EQ(collector.payloads.size(), 3u);
  EXPECT_EQ(collector.payloads[0], Bytes{1});
  EXPECT_EQ(collector.payloads[2], Bytes{3});
  EXPECT_EQ(sim.in_flight(channel), 0u);
}

TEST(Restore, RejectsMismatchedProcessCount) {
  BankConfig bank;
  GlobalState halted{HaltId(1)};
  ProcessSnapshot snapshot;
  snapshot.process = ProcessId(0);
  snapshot.state = BankProcess(bank).snapshot_state();
  halted.add(snapshot);
  SimDebugHarness fresh(Topology::complete(3), make_bank(3, bank));
  auto status = restore_into(fresh, halted);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code(), ErrorCode::kInvalidArgument);
}

TEST(Restore, RejectsUnsupportedProcess) {
  class Opaque final : public Debuggable {
   public:
    void on_message(ProcessContext&, ChannelId, Message) override {}
  };
  Topology topology = Topology::ring(2);
  GlobalState halted{HaltId(1)};
  for (std::uint32_t i = 0; i < 2; ++i) {
    ProcessSnapshot snapshot;
    snapshot.process = ProcessId(i);
    snapshot.state = Bytes{1, 2, 3};
    halted.add(snapshot);
  }
  std::vector<ProcessPtr> users;
  users.push_back(std::make_unique<Opaque>());
  users.push_back(std::make_unique<Opaque>());
  SimDebugHarness fresh(topology, std::move(users));
  auto status = restore_into(fresh, halted);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message().find("does not support"),
            std::string::npos);
}

TEST(Restore, RejectsAlreadyRunHarness) {
  BankConfig bank;
  SimDebugHarness harness(Topology::complete(2), make_bank(2, bank));
  harness.sim().run_for(Duration::millis(5));
  GlobalState halted{HaltId(1)};
  auto status = restore_into(harness, halted);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code(), ErrorCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ddbg
