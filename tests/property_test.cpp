// Property-based sweeps (parameterized gtest) over topology families,
// sizes and seeds, asserting the paper's invariants on every run:
//
//   P1  every debugger-initiated halting wave completes;
//   P2  the halted cut is consistent (vector-clock criterion);
//   P3  message accounting is exact: recorded channel state == in-flight
//       per the trace, no orphans, no losses (Lemma 2.2);
//   P4  all last_halt_ids agree (section 2.2.1);
//   P5  halt markers per wave <= total channels (each channel carries at
//       most one marker per wave);
//   P6  S_h == S_r on the same seeded execution (Theorem 2);
//   P7  halt/resume/halt yields a second complete, consistent wave;
//   P8  random predicate expressions survive describe->parse round trips.
#include <gtest/gtest.h>

#include <sstream>
#include <tuple>

#include "analysis/consistency.hpp"
#include "core/predicate_parser.hpp"
#include "debugger/harness.hpp"
#include "workload/behaviors.hpp"

namespace ddbg {
namespace {

constexpr Duration kWait = Duration::seconds(60);

enum class Family { kRing, kStar, kComplete, kRandom, kPipeline };

const char* family_name(Family family) {
  switch (family) {
    case Family::kRing: return "ring";
    case Family::kStar: return "star";
    case Family::kComplete: return "complete";
    case Family::kRandom: return "random";
    case Family::kPipeline: return "pipeline";
  }
  return "?";
}

Topology make_family(Family family, std::uint32_t n, std::uint64_t seed) {
  switch (family) {
    case Family::kRing: return Topology::ring(n);
    case Family::kStar: return Topology::star(n);
    case Family::kComplete: return Topology::complete(n);
    case Family::kPipeline: return Topology::pipeline(n);
    case Family::kRandom: {
      Rng rng(seed);
      return Topology::random_strongly_connected(n, n, rng);
    }
  }
  return Topology::ring(n);
}

using HaltSweepParam = std::tuple<Family, std::uint32_t, std::uint64_t>;

class HaltSweep : public ::testing::TestWithParam<HaltSweepParam> {};

TEST_P(HaltSweep, HaltWaveInvariants) {
  const auto [family, n, seed] = GetParam();
  Trace trace;
  HarnessConfig config;
  config.seed = seed;
  config.shim_options.trace_sink = trace.sink();
  SimDebugHarness harness(make_family(family, n, seed),
                          make_gossip(n, GossipConfig{}), std::move(config));
  const std::size_t total_channels = harness.topology().num_channels();
  harness.sim().run_for(Duration::millis(30));

  const std::uint64_t markers_before =
      harness.sim().stats().halt_markers_sent;
  harness.session().halt();
  auto wave = harness.session().wait_for_halt(kWait);

  // P1: completion.
  ASSERT_TRUE(wave.has_value())
      << family_name(family) << " n=" << n << " seed=" << seed;
  EXPECT_EQ(wave->state.size(), n);

  // P2: consistency.
  const auto violation = find_cut_inconsistency(wave->state);
  EXPECT_FALSE(violation.has_value()) << *violation;

  // P3: exact message accounting.
  const MessageAccounting accounting = account_messages(trace, wave->state);
  EXPECT_EQ(accounting.orphan_receives, 0u);
  EXPECT_EQ(accounting.lost_messages, 0u);
  EXPECT_EQ(accounting.recorded_in_channels, accounting.in_flight_per_trace);

  // P4: agreed halt id.
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(harness.shim(ProcessId(i)).halting().last_halt_id(), 1u);
  }

  // P5: marker bound.
  const std::uint64_t markers =
      harness.sim().stats().halt_markers_sent - markers_before;
  EXPECT_LE(markers, total_channels);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, HaltSweep,
    ::testing::Combine(::testing::Values(Family::kRing, Family::kStar,
                                         Family::kComplete, Family::kRandom,
                                         Family::kPipeline),
                       ::testing::Values(2u, 5u, 9u),
                       ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<HaltSweepParam>& info) {
      std::ostringstream name;
      name << family_name(std::get<0>(info.param)) << "_n"
           << std::get<1>(info.param) << "_s" << std::get<2>(info.param);
      return name.str();
    });

using EquivalenceParam = std::tuple<std::uint32_t, std::uint64_t>;
class EquivalenceSweep : public ::testing::TestWithParam<EquivalenceParam> {};

TEST_P(EquivalenceSweep, HaltedEqualsRecorded) {
  const auto [n, seed] = GetParam();
  Rng topo_rng(seed);
  const Topology topology =
      Topology::random_strongly_connected(n, n / 2, topo_rng);
  const Duration point = Duration::millis(35);

  GlobalState recorded;
  {
    HarnessConfig config;
    config.seed = seed;
    SimDebugHarness harness(topology, make_gossip(n, GossipConfig{}),
                            std::move(config));
    harness.sim().run_for(point);
    auto wave = harness.session().take_snapshot(kWait);
    ASSERT_TRUE(wave.has_value());
    recorded = wave->state;
  }
  HarnessConfig config;
  config.seed = seed;
  SimDebugHarness harness(topology, make_gossip(n, GossipConfig{}),
                          std::move(config));
  harness.sim().run_for(point);
  harness.session().halt();
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  const auto difference = wave->state.first_difference(recorded);
  EXPECT_FALSE(difference.has_value()) << *difference;
}

INSTANTIATE_TEST_SUITE_P(RandomRuns, EquivalenceSweep,
                         ::testing::Combine(::testing::Values(3u, 6u, 12u),
                                            ::testing::Values(10u, 20u, 30u,
                                                              40u)));

using CycleParam = std::tuple<std::uint32_t, std::uint64_t>;
class HaltResumeCycles : public ::testing::TestWithParam<CycleParam> {};

TEST_P(HaltResumeCycles, RepeatedWavesStayConsistent) {
  const auto [n, seed] = GetParam();
  BankConfig bank;
  HarnessConfig config;
  config.seed = seed;
  SimDebugHarness harness(Topology::complete(n), make_bank(n, bank),
                          std::move(config));
  for (std::uint64_t wave_id = 1; wave_id <= 3; ++wave_id) {
    harness.sim().run_for(Duration::millis(25));
    harness.session().halt();
    const bool complete = harness.sim().run_until_condition(
        [&] { return harness.debugger().halt_complete(wave_id); },
        harness.sim().now() + kWait);
    ASSERT_TRUE(complete) << "wave " << wave_id;
    auto wave = harness.debugger().halt_wave(wave_id);
    ASSERT_TRUE(wave.has_value());
    EXPECT_TRUE(consistent_cut(wave->state)) << "wave " << wave_id;
    auto total = BankProcess::total_money(wave->state);
    ASSERT_TRUE(total.ok());
    EXPECT_EQ(total.value(),
              static_cast<std::int64_t>(n) * bank.initial_balance)
        << "wave " << wave_id;
    harness.session().resume();
  }
}

INSTANTIATE_TEST_SUITE_P(Cycles, HaltResumeCycles,
                         ::testing::Combine(::testing::Values(2u, 4u),
                                            ::testing::Values(5u, 6u, 7u)));

// P8: random predicate expressions round-trip through describe/parse.
class PredicateRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

BreakpointSpec random_spec(Rng& rng) {
  auto random_sp = [&rng] {
    const auto p = ProcessId(static_cast<std::uint32_t>(rng.next_below(6)));
    switch (rng.next_below(5)) {
      case 0: return SimplePredicate::user_event(p, "ev");
      case 1: return SimplePredicate::procedure_entered(p, "proc");
      case 2:
        return SimplePredicate::var_compare(
            p, "x", static_cast<CompareOp>(rng.next_in(1, 6)),
            rng.next_in(-100, 100));
      case 3: return SimplePredicate::message_sent(p);
      default: return SimplePredicate::message_received(p);
    }
  };
  BreakpointSpec spec;
  if (rng.next_bool(0.3)) {
    spec.kind = BreakpointSpec::Kind::kConjunctive;
    const auto terms = 2 + rng.next_below(3);
    for (std::uint64_t i = 0; i < terms; ++i) {
      spec.conjunctive.terms.push_back(random_sp());
    }
    spec.mode = rng.next_bool(0.5) ? ConjunctionMode::kOrdered
                                   : ConjunctionMode::kUnordered;
    return spec;
  }
  spec.kind = BreakpointSpec::Kind::kLinked;
  const auto stages = 1 + rng.next_below(4);
  for (std::uint64_t s = 0; s < stages; ++s) {
    DisjunctivePredicate dp;
    const auto alts = 1 + rng.next_below(3);
    for (std::uint64_t a = 0; a < alts; ++a) {
      dp.alternatives.push_back(random_sp());
    }
    spec.linked.stages.push_back(LinkedPredicate::Stage{
        std::move(dp), static_cast<std::uint32_t>(1 + rng.next_below(3))});
  }
  return spec;
}

TEST_P(PredicateRoundTrip, DescribeParseDescribe) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const BreakpointSpec spec = random_spec(rng);
    const std::string text = spec.describe();
    auto reparsed = parse_breakpoint(text);
    ASSERT_TRUE(reparsed.ok()) << text << ": "
                               << reparsed.error().to_string();
    EXPECT_EQ(reparsed.value().describe(), text);
    // Binary round trip as well.
    ByteWriter writer;
    spec.encode(writer);
    ByteReader reader(writer.buffer());
    auto decoded = BreakpointSpec::decode(reader);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().describe(), text);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicateRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace ddbg
