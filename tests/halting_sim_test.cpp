// Integration tests on the deterministic simulator: the Halting Algorithm,
// the C&L recorder, Theorem-2 equivalence, breakpoints (SP/DP/LP/CP),
// resume, halt-order paths, and the basic algorithm's failure modes.
#include <gtest/gtest.h>

#include "analysis/consistency.hpp"
#include "analysis/trace.hpp"
#include "core/debug_shim.hpp"
#include "debugger/harness.hpp"
#include "workload/behaviors.hpp"

namespace ddbg {
namespace {

constexpr Duration kWait = Duration::seconds(30);

HarnessConfig config_with(std::uint64_t seed, Trace* trace = nullptr) {
  HarnessConfig config;
  config.seed = seed;
  if (trace != nullptr) config.shim_options.trace_sink = trace->sink();
  return config;
}

TEST(HaltingSim, DebuggerInitiatedHaltCompletes) {
  GossipConfig gossip;
  SimDebugHarness harness(Topology::ring(4), make_gossip(4, gossip),
                          config_with(1));
  harness.sim().run_for(Duration::millis(50));
  harness.session().halt();
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  EXPECT_TRUE(wave->complete);
  EXPECT_EQ(wave->state.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(harness.shim(ProcessId(i)).halted());
  }
  EXPECT_TRUE(consistent_cut(wave->state));
}

TEST(HaltingSim, HaltIdAgreesEverywhere) {
  SimDebugHarness harness(Topology::ring(5), make_gossip(5, GossipConfig{}),
                          config_with(2));
  harness.sim().run_for(Duration::millis(30));
  harness.session().halt();
  ASSERT_TRUE(harness.session().wait_for_halt(kWait).has_value());
  // "when all processes halt, the value of each process's last_halt_id is
  // the same" (section 2.2.1).
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(harness.shim(ProcessId(i)).halting().last_halt_id(), 1u);
  }
  EXPECT_EQ(harness.debugger().last_halt_id(), 1u);
}

// Theorem 2 / experiment E1: the halted state equals the recorded state on
// the same deterministic execution.
TEST(HaltingSim, HaltedStateEqualsRecordedState) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Duration point = Duration::millis(40);

    SimDebugHarness record_run(Topology::ring(4),
                               make_gossip(4, GossipConfig{}),
                               config_with(seed));
    record_run.sim().run_for(point);
    auto recorded = record_run.session().take_snapshot(kWait);
    ASSERT_TRUE(recorded.has_value()) << "seed " << seed;

    SimDebugHarness halt_run(Topology::ring(4),
                             make_gossip(4, GossipConfig{}),
                             config_with(seed));
    halt_run.sim().run_for(point);
    halt_run.session().halt();
    auto halted = halt_run.session().wait_for_halt(kWait);
    ASSERT_TRUE(halted.has_value()) << "seed " << seed;

    const auto difference = halted->state.first_difference(recorded->state);
    EXPECT_FALSE(difference.has_value())
        << "seed " << seed << ": " << *difference;
  }
}

TEST(HaltingSim, RecordingDoesNotStopExecution) {
  SimDebugHarness harness(Topology::ring(3), make_gossip(3, GossipConfig{}),
                          config_with(3));
  harness.sim().run_for(Duration::millis(30));
  auto snapshot = harness.session().take_snapshot(kWait);
  ASSERT_TRUE(snapshot.has_value());
  const auto& p0 = dynamic_cast<GossipProcess&>(harness.shim(ProcessId(0)).user());
  const std::uint64_t sent_at_snapshot = p0.sent();
  harness.sim().run_for(Duration::millis(50));
  EXPECT_GT(p0.sent(), sent_at_snapshot);  // still running
  EXPECT_FALSE(harness.shim(ProcessId(0)).halted());
}

TEST(HaltingSim, SimpleBreakpointHaltsAtEvent) {
  TokenRingConfig ring_config;
  ring_config.rounds = 100;
  SimDebugHarness harness(Topology::ring(4), make_token_ring(4, ring_config),
                          config_with(4));
  auto bp = harness.session().set_breakpoint("p2:event(token)");
  ASSERT_TRUE(bp.ok());
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  // p2 saw the token exactly once before everything froze.
  const auto& p2 = dynamic_cast<TokenRingProcess&>(
      harness.shim(ProcessId(2)).user());
  EXPECT_EQ(p2.tokens_seen(), 1u);
  const auto hits = harness.session().hits();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].breakpoint, bp.value());
  EXPECT_EQ(hits[0].process, ProcessId(2));
  EXPECT_TRUE(consistent_cut(wave->state));
}

TEST(HaltingSim, SpontaneousInitiatorHasEmptyHaltPath) {
  TokenRingConfig ring_config;
  ring_config.rounds = 100;
  SimDebugHarness harness(Topology::ring(4), make_token_ring(4, ring_config),
                          config_with(5));
  ASSERT_TRUE(harness.session().set_breakpoint("p1:event(token)").ok());
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  // The initiator p1 halted spontaneously: no marker path.  Everyone else
  // halted on a marker whose path begins at p1.
  EXPECT_TRUE(wave->halt_paths.at(ProcessId(1)).empty());
  for (const ProcessId p : {ProcessId(0), ProcessId(2), ProcessId(3)}) {
    const auto& path = wave->halt_paths.at(p);
    ASSERT_FALSE(path.empty()) << to_string(p);
    EXPECT_EQ(path.front(), ProcessId(1)) << to_string(p);
  }
}

TEST(HaltingSim, LinkedPredicateChainAcrossProcesses) {
  TokenRingConfig ring_config;
  ring_config.rounds = 100;
  SimDebugHarness harness(Topology::ring(4), make_token_ring(4, ring_config),
                          config_with(6));
  auto bp = harness.session().set_breakpoint(
      "p1:event(token) -> p2:event(token) -> p3:event(token)");
  ASSERT_TRUE(bp.ok());
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  const auto hits = harness.session().hits();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].process, ProcessId(3));  // chain completes at p3
  EXPECT_TRUE(consistent_cut(wave->state));
}

TEST(HaltingSim, LinkedPredicateRepetition) {
  TokenRingConfig ring_config;
  ring_config.rounds = 100;
  SimDebugHarness harness(Topology::ring(3), make_token_ring(3, ring_config),
                          config_with(7));
  // The token passes p1 once per round; fire on the third pass.
  ASSERT_TRUE(harness.session().set_breakpoint("(p1:event(token))^3").ok());
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  const auto& p1 = dynamic_cast<TokenRingProcess&>(
      harness.shim(ProcessId(1)).user());
  EXPECT_EQ(p1.tokens_seen(), 3u);
}

TEST(HaltingSim, DisjunctionFiresOnEitherProcess) {
  TokenRingConfig ring_config;
  ring_config.rounds = 100;
  SimDebugHarness harness(Topology::ring(4), make_token_ring(4, ring_config),
                          config_with(8));
  ASSERT_TRUE(harness.session()
                  .set_breakpoint("p2:event(token) | p1:event(token)")
                  .ok());
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  // Whichever arm the token reaches first (after the asynchronous arming
  // completes) fires; it must be one of the two named processes.
  const auto hits = harness.session().hits();
  ASSERT_GE(hits.size(), 1u);
  EXPECT_TRUE(hits[0].process == ProcessId(1) ||
              hits[0].process == ProcessId(2))
      << to_string(hits[0].process);
}

TEST(HaltingSim, VariableConditionBreakpoint) {
  BankConfig bank;
  SimDebugHarness harness(Topology::complete(3), make_bank(3, bank),
                          config_with(9));
  // Halt when p0's balance falls below 900.
  ASSERT_TRUE(harness.session().set_breakpoint("p0:balance<900").ok());
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  const auto& p0 =
      dynamic_cast<BankProcess&>(harness.shim(ProcessId(0)).user());
  EXPECT_LT(p0.balance(), 900);
}

TEST(HaltingSim, BankConservationAcrossHaltedState) {
  // The flagship consistency witness: balances plus in-flight transfers
  // must equal the initial total in S_h.
  for (std::uint64_t seed = 11; seed <= 15; ++seed) {
    BankConfig bank;
    SimDebugHarness harness(Topology::complete(4), make_bank(4, bank),
                            config_with(seed));
    harness.sim().run_for(Duration::millis(60));
    harness.session().halt();
    auto wave = harness.session().wait_for_halt(kWait);
    ASSERT_TRUE(wave.has_value()) << "seed " << seed;
    auto total = BankProcess::total_money(wave->state);
    ASSERT_TRUE(total.ok()) << "seed " << seed;
    EXPECT_EQ(total.value(), 4 * bank.initial_balance) << "seed " << seed;
    EXPECT_TRUE(consistent_cut(wave->state)) << "seed " << seed;
  }
}

TEST(HaltingSim, ResumeContinuesExecution) {
  GossipConfig gossip;
  SimDebugHarness harness(Topology::ring(3), make_gossip(3, GossipConfig{}),
                          config_with(16));
  harness.sim().run_for(Duration::millis(30));
  harness.session().halt();
  ASSERT_TRUE(harness.session().wait_for_halt(kWait).has_value());
  const auto& p0 =
      dynamic_cast<GossipProcess&>(harness.shim(ProcessId(0)).user());
  const std::uint64_t sent_at_halt = p0.sent();
  // Frozen: nothing moves.
  harness.sim().run_for(Duration::millis(50));
  EXPECT_EQ(p0.sent(), sent_at_halt);
  // Resume: the computation picks back up.
  harness.session().resume();
  harness.sim().run_for(Duration::millis(80));
  EXPECT_FALSE(harness.shim(ProcessId(0)).halted());
  EXPECT_GT(p0.sent(), sent_at_halt);
}

TEST(HaltingSim, ResumeReplaysChannelState) {
  // Money in recorded channel states must not be lost across resume.
  BankConfig bank;
  SimDebugHarness harness(Topology::complete(3), make_bank(3, bank),
                          config_with(17));
  harness.sim().run_for(Duration::millis(40));
  harness.session().halt();
  auto first = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(first.has_value());
  ASSERT_GT(first->state.total_channel_messages(), 0u)
      << "test needs in-flight transfers to be meaningful";
  harness.session().resume();
  harness.sim().run_for(Duration::millis(40));
  harness.session().halt();
  const bool second_complete = harness.sim().run_until_condition(
      [&] { return harness.debugger().halt_complete(2); },
      harness.sim().now() + kWait);
  ASSERT_TRUE(second_complete);
  auto second = harness.debugger().halt_wave(2);
  ASSERT_TRUE(second.has_value());
  auto total = BankProcess::total_money(second->state);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total.value(), 3 * bank.initial_balance);
}

TEST(HaltingSim, SecondWaveHasFreshChannelStates) {
  GossipConfig gossip;
  SimDebugHarness harness(Topology::ring(3), make_gossip(3, gossip),
                          config_with(18));
  harness.sim().run_for(Duration::millis(20));
  harness.session().halt();
  ASSERT_TRUE(harness.session().wait_for_halt(kWait).has_value());
  harness.session().resume();
  harness.sim().run_for(Duration::millis(20));
  harness.session().halt();
  ASSERT_TRUE(harness.sim().run_until_condition(
      [&] { return harness.debugger().halt_complete(2); },
      harness.sim().now() + kWait));
  auto wave = harness.debugger().halt_wave(2);
  ASSERT_TRUE(wave.has_value());
  EXPECT_TRUE(consistent_cut(wave->state));
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(harness.shim(ProcessId(i)).halting().last_halt_id(), 2u);
  }
}

// Experiment E2's shape: the extended model halts an acyclic pipeline from
// anywhere; the basic algorithm cannot.
TEST(HaltingSim, ExtendedModelHaltsAcyclicPipeline) {
  PipelineConfig pipeline;
  pipeline.items = 0;  // unbounded
  SimDebugHarness harness(Topology::pipeline(4), make_pipeline(4, pipeline),
                          config_with(19));
  harness.sim().run_for(Duration::millis(30));
  harness.session().halt();
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(harness.shim(ProcessId(i)).halted()) << "p" << i;
  }
  EXPECT_TRUE(consistent_cut(wave->state));
}

TEST(HaltingSim, BasicAlgorithmStrandsPipelineProducer) {
  // No debugger process: consumer-initiated halting cannot reach upstream.
  PipelineConfig pipeline;
  pipeline.items = 0;
  Topology topology = Topology::pipeline(3);
  std::vector<ProcessPtr> shims =
      wrap_in_shims(topology, make_pipeline(3, pipeline));
  Simulation sim(topology, std::move(shims));
  sim.run_for(Duration::millis(20));
  sim.post(ProcessId(2), [](ProcessContext& ctx, Process& process) {
    dynamic_cast<DebugShim&>(process).initiate_halt(ctx);
  });
  sim.run_for(Duration::millis(200));
  EXPECT_TRUE(dynamic_cast<DebugShim&>(sim.process(ProcessId(2))).halted());
  EXPECT_FALSE(dynamic_cast<DebugShim&>(sim.process(ProcessId(0))).halted());
  EXPECT_FALSE(dynamic_cast<DebugShim&>(sim.process(ProcessId(1))).halted());
}

TEST(HaltingSim, BasicAlgorithmWorksOnStronglyConnected) {
  // Sanity for the basic model (section 2.2.1): spontaneous initiation in a
  // ring halts everyone, reports collected via the local callback.
  GossipConfig gossip;
  Topology topology = Topology::ring(4);
  auto reports = std::make_shared<std::vector<ProcessId>>();
  DebugShim::Options options;
  options.local_halt_report = [reports](ProcessId p, std::uint64_t,
                                        const ProcessSnapshot&) {
    reports->push_back(p);
  };
  std::vector<ProcessPtr> shims =
      wrap_in_shims(topology, make_gossip(4, gossip), options);
  Simulation sim(topology, std::move(shims));
  sim.run_for(Duration::millis(20));
  sim.post(ProcessId(1), [](ProcessContext& ctx, Process& process) {
    dynamic_cast<DebugShim&>(process).initiate_halt(ctx);
  });
  sim.run_for(Duration::millis(500));
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(dynamic_cast<DebugShim&>(sim.process(ProcessId(i))).halted());
  }
  EXPECT_EQ(reports->size(), 4u);
}

TEST(HaltingSim, SimultaneousInitiationsMergeIntoOneWave) {
  TokenRingConfig ring_config;
  ring_config.rounds = 100;
  SimDebugHarness harness(Topology::ring(4), make_token_ring(4, ring_config),
                          config_with(20));
  // Both p1 and p3 watch for message sends; multiple processes can satisfy
  // their SPs at close virtual times and both initiate halting.
  ASSERT_TRUE(harness.session().set_breakpoint("p1:sent").ok());
  ASSERT_TRUE(harness.session().set_breakpoint("p3:sent").ok());
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  EXPECT_EQ(wave->id, 1u);
  EXPECT_TRUE(consistent_cut(wave->state));
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(harness.shim(ProcessId(i)).halting().last_halt_id(), 1u);
  }
}

// Regression: a halt marker for a *newer* wave reaching an
// already-halted process must be adopted in place, not re-enter the Halt
// Routine (which aborts on double entry) and not wedge in the channel.
TEST(OverlappingHaltWave, NewerWaveReachesHaltedRingAndConverges) {
  GossipConfig gossip;
  Topology topology = Topology::ring(3);
  std::vector<ProcessPtr> shims =
      wrap_in_shims(topology, make_gossip(3, gossip));
  Simulation sim(topology, std::move(shims));
  sim.run_for(Duration::millis(20));

  // Wave 1: p1 halts spontaneously; the ring converges.
  sim.post(ProcessId(1), [](ProcessContext& ctx, Process& process) {
    dynamic_cast<DebugShim&>(process).initiate_halt(ctx);
  });
  sim.run_for(Duration::millis(200));
  for (std::uint32_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(dynamic_cast<DebugShim&>(sim.process(ProcessId(i))).halted());
    ASSERT_EQ(dynamic_cast<DebugShim&>(sim.process(ProcessId(i)))
                  .halting()
                  .last_halt_id(),
              1u);
  }

  // Wave 2 arrives while everyone is already halted: inject a crafted
  // marker from p0 (as a racing second initiator's forwarded marker would
  // look).  The closure runs in p0's process context even though p0 is
  // halted, exactly like an engine-level send.
  const ChannelId out = topology.out_channels(ProcessId(0))[0];
  sim.post(ProcessId(0), [out](ProcessContext& ctx, Process&) {
    ctx.send(out, Message::halt_marker(HaltId(2), {ProcessId(0)}));
  });
  sim.run_for(Duration::millis(200));

  // No abort, everyone still halted, and the ring converged on wave 2 with
  // complete channel state.
  for (std::uint32_t i = 0; i < 3; ++i) {
    auto& shim = dynamic_cast<DebugShim&>(sim.process(ProcessId(i)));
    EXPECT_TRUE(shim.halted()) << "p" << i;
    EXPECT_EQ(shim.halting().last_halt_id(), 2u) << "p" << i;
    EXPECT_TRUE(shim.halting().complete()) << "p" << i;
  }
}

TEST(HaltingSim, OrderedConjunctionHalts) {
  BankConfig bank;
  SimDebugHarness harness(Topology::complete(2), make_bank(2, bank),
                          config_with(21));
  auto bp = harness.session().set_breakpoint("p0:sent & p1:sent");
  ASSERT_TRUE(bp.ok());
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  EXPECT_TRUE(consistent_cut(wave->state));
  ASSERT_GE(harness.session().hits().size(), 1u);
}

TEST(HaltingSim, UnorderedConjunctionGathersAtDebugger) {
  BankConfig bank;
  SimDebugHarness harness(Topology::complete(2), make_bank(2, bank),
                          config_with(22));
  auto bp = harness.session().set_breakpoint("p0:sent & p1:sent [unordered]");
  ASSERT_TRUE(bp.ok());
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  const auto hits = harness.session().hits();
  ASSERT_GE(hits.size(), 1u);
  EXPECT_NE(hits[0].description.find("unordered"), std::string::npos);
}

TEST(HaltingSim, WaitForHaltAfterResumeWaitsForNewWave) {
  TokenRingConfig ring_config;
  ring_config.rounds = 200;
  SimDebugHarness harness(Topology::ring(3), make_token_ring(3, ring_config),
                          config_with(28));
  harness.sim().run_for(Duration::millis(10));
  harness.session().halt();
  auto first = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(first.has_value());
  harness.session().resume();
  // No breakpoint and no halt request: waiting must time out rather than
  // hand back the stale wave.
  auto stale = harness.session().wait_for_halt(Duration::millis(50));
  EXPECT_FALSE(stale.has_value());
  // A fresh breakpoint produces a genuinely new wave.
  ASSERT_TRUE(harness.session().set_breakpoint("p1:event(token)").ok());
  auto second = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->id, 2u);
}

TEST(HaltingSim, MonitorBreakpointRecordsWithoutHalting) {
  // Section 4: the LP detector as an EDL-style abstract-event recognizer.
  TokenRingConfig ring_config;
  ring_config.rounds = 6;
  SimDebugHarness harness(Topology::ring(3), make_token_ring(3, ring_config),
                          config_with(29));
  auto bp = harness.session().set_breakpoint(
      "p0:event(token) -> p1:event(token) [monitor]");
  ASSERT_TRUE(bp.ok());
  // Let the whole 6-round workload finish: no halt must ever happen…
  harness.sim().run_for(Duration::seconds(3));
  EXPECT_EQ(harness.debugger().last_halt_id(), 0u);
  EXPECT_FALSE(harness.shim(ProcessId(0)).halted());
  // …but the abstract event was recognized repeatedly (re-armed each time).
  EXPECT_GE(harness.debugger().hit_count(bp.value()), 3u);
  for (const auto& hit : harness.session().hits()) {
    EXPECT_EQ(hit.process, ProcessId(1));  // the chain completes at p1
  }
}

TEST(HaltingSim, MonitorUnorderedConjunctionRecognizesRepeatedly) {
  GossipConfig gossip;
  SimDebugHarness harness(Topology::complete(2), make_gossip(2, gossip),
                          config_with(30));
  auto bp =
      harness.session().set_breakpoint("p0:sent & p1:sent [unordered] [monitor]");
  ASSERT_TRUE(bp.ok());
  harness.sim().run_for(Duration::millis(100));
  EXPECT_EQ(harness.debugger().last_halt_id(), 0u);  // never halts
  EXPECT_GE(harness.debugger().hit_count(bp.value()), 2u);
}

TEST(HaltingSim, MessageAccountingCleanForHaltedState) {
  Trace trace;
  GossipConfig gossip;
  SimDebugHarness harness(Topology::ring(4), make_gossip(4, gossip),
                          config_with(23, &trace));
  harness.sim().run_for(Duration::millis(40));
  harness.session().halt();
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  const MessageAccounting accounting = account_messages(trace, wave->state);
  EXPECT_EQ(accounting.orphan_receives, 0u);
  EXPECT_EQ(accounting.lost_messages, 0u);
  EXPECT_EQ(accounting.recorded_in_channels, accounting.in_flight_per_trace);
  EXPECT_TRUE(accounting.clean());
}

TEST(HaltingSim, InspectReturnsLiveState) {
  GossipConfig gossip;
  SimDebugHarness harness(Topology::ring(3), make_gossip(3, gossip),
                          config_with(24));
  harness.sim().run_for(Duration::millis(30));
  auto report = harness.session().inspect(ProcessId(1), kWait);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->process, ProcessId(1));
  EXPECT_NE(report->description.find("sent="), std::string::npos);
}

TEST(HaltingSim, HaltOrderPathsGrowAlongRing) {
  // Section 2.2.4: the marker path tells each process who halted before it.
  GossipConfig gossip;
  SimDebugHarness harness(Topology::ring(5), make_gossip(5, gossip),
                          config_with(25));
  harness.sim().run_for(Duration::millis(20));
  harness.session().halt();
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  // Every user process halted on a marker that started at the debugger.
  const ProcessId d = harness.debugger_id();
  for (const auto& [p, path] : wave->halt_paths) {
    ASSERT_FALSE(path.empty()) << to_string(p);
    EXPECT_EQ(path.front(), d) << to_string(p);
  }
}

TEST(HaltingSim, ClearBreakpointPreventsTrigger) {
  TokenRingConfig ring_config;
  ring_config.rounds = 5;
  SimDebugHarness harness(Topology::ring(3), make_token_ring(3, ring_config),
                          config_with(26));
  auto bp = harness.session().set_breakpoint("(p0:event(token))^4");
  ASSERT_TRUE(bp.ok());
  harness.session().clear_breakpoint(bp.value());
  // Let the whole ring workload finish: no halt should ever happen.
  harness.sim().run_for(Duration::seconds(2));
  EXPECT_EQ(harness.debugger().last_halt_id(), 0u);
  EXPECT_FALSE(harness.shim(ProcessId(0)).halted());
}

TEST(HaltingSim, ParseErrorSurfacesToCaller) {
  GossipConfig gossip;
  SimDebugHarness harness(Topology::ring(3), make_gossip(3, gossip),
                          config_with(27));
  auto bp = harness.session().set_breakpoint("p0:event(");
  EXPECT_FALSE(bp.ok());
  EXPECT_EQ(bp.error().code(), ErrorCode::kParseError);
}

}  // namespace
}  // namespace ddbg
