// The hierarchical debugger tier (AggregatorProcess + DebuggerProcess tree
// mode + Topology::with_debugger_tree): shape invariants, flat-vs-tree
// verdict equivalence, marker-suppression equivalence, convergecast move
// semantics, and chaos on interior tier channels.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "analysis/consistency.hpp"
#include "core/debug_shim.hpp"
#include "debugger/harness.hpp"
#include "net/fault_plan.hpp"
#include "obs/metrics.hpp"
#include "workload/behaviors.hpp"

// Replacing operator new is binary-wide, so keep the hooks trivial (same
// pattern as clock_test.cpp): count every allocation so the convergecast
// move-semantics tests can pin "no payload copies" as an allocation budget.
namespace {
std::atomic<std::size_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ddbg {
namespace {

constexpr Duration kWait = Duration::seconds(30);

HarnessConfig tier_config(std::uint64_t seed, std::uint32_t fanout) {
  HarnessConfig config;
  config.seed = seed;
  config.debugger_fanout = fanout;
  return config;
}

// A process with no behaviour: its halted state depends on nothing, which
// isolates the control-plane marker flow from application timing.
class IdleProcess final : public Process {
 public:
  void on_message(ProcessContext&, ChannelId, Message) override {}
  [[nodiscard]] std::string describe_state() const override { return "idle"; }
};

std::vector<ProcessPtr> make_idle(std::uint32_t n) {
  std::vector<ProcessPtr> processes;
  for (std::uint32_t i = 0; i < n; ++i) {
    processes.push_back(std::make_unique<IdleProcess>());
  }
  return processes;
}

// ---------------------------------------------------------------------------
// Topology shape
// ---------------------------------------------------------------------------

TEST(DebuggerTierTopology, TreeShapeInvariants) {
  for (const std::uint32_t n : {1u, 2u, 5u, 16u, 100u}) {
    for (const std::uint32_t fanout : {2u, 4u, 16u}) {
      const Topology t = Topology(n).with_debugger_tree(fanout);
      SCOPED_TRACE("n=" + std::to_string(n) +
                   " fanout=" + std::to_string(fanout));
      ASSERT_TRUE(t.has_debugger());
      EXPECT_EQ(t.num_user_processes(), n);
      EXPECT_EQ(t.num_processes(), n + t.num_tier_processes());
      EXPECT_EQ(t.num_aggregators(), t.num_tier_processes() - 1);
      EXPECT_EQ(t.tier_fanout(), fanout);
      // The root covers every user; the control tree alone makes the
      // topology strongly connected (section 2.2.3's property, preserved).
      EXPECT_EQ(t.tier_user_range(t.debugger_id()),
                (std::pair<std::uint32_t, std::uint32_t>{0, n}));
      EXPECT_TRUE(t.strongly_connected());
      // Every non-root process has a parent that lists it as a child, and
      // control channels to/from that parent.
      std::vector<std::uint32_t> covered(n, 0);
      for (const ProcessId p : t.process_ids()) {
        if (p == t.debugger_id()) {
          EXPECT_FALSE(t.tier_parent(p).valid());
          continue;
        }
        const ProcessId parent = t.tier_parent(p);
        ASSERT_TRUE(parent.valid()) << to_string(p);
        EXPECT_TRUE(t.is_aggregator(parent) || t.is_debugger(parent));
        bool listed = false;
        for (const ProcessId c : t.tier_children(parent)) listed |= c == p;
        EXPECT_TRUE(listed) << to_string(p);
        EXPECT_EQ(t.channel(t.control_to(p)).source, parent);
        EXPECT_EQ(t.channel(t.control_from(p)).destination, parent);
        if (p.value() < n) {
          // User: leaf of the tier.
          EXPECT_TRUE(t.tier_children(p).empty());
        } else {
          // Aggregator: at most `fanout` children whose user ranges tile
          // this node's range.
          const auto children = t.tier_children(p);
          EXPECT_LE(children.size(), fanout);
          EXPECT_FALSE(children.empty());
          auto [lo, hi] = t.tier_user_range(p);
          std::uint32_t cursor = lo;
          for (const ProcessId c : children) {
            const auto [clo, chi] = t.tier_user_range(c);
            EXPECT_EQ(clo, cursor);
            cursor = chi;
          }
          EXPECT_EQ(cursor, hi);
        }
      }
      for (const ProcessId u : t.user_process_ids()) {
        for (std::uint32_t i = t.tier_user_range(u).first;
             i < t.tier_user_range(u).second; ++i) {
          covered[i] += 1;
        }
      }
      for (std::uint32_t i = 0; i < n; ++i) EXPECT_EQ(covered[i], 1u);
    }
  }
}

TEST(DebuggerTierTopology, FlatDebuggerChildrenAreAllUsers) {
  const Topology t = Topology::ring(5).with_debugger();
  EXPECT_EQ(t.num_tier_processes(), 1u);
  EXPECT_EQ(t.tier_fanout(), 0u);
  const auto children = t.tier_children(t.debugger_id());
  ASSERT_EQ(children.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(children[i], ProcessId(i));
    EXPECT_EQ(t.tier_parent(ProcessId(i)), t.debugger_id());
  }
}

// ---------------------------------------------------------------------------
// Flat vs tree verdict equivalence
// ---------------------------------------------------------------------------

// A finished (quiescent) workload halts to a state that does not depend on
// marker timing, so the flat and tree cuts must be Theorem-2 identical.
TEST(DebuggerTier, QuiescedHaltStateIdenticalFlatVsTree) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    for (const std::uint32_t fanout : {2u, 3u}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " fanout=" + std::to_string(fanout));
      TokenRingConfig ring;
      ring.rounds = 3;
      auto run = [&](std::uint32_t debugger_fanout) {
        SimDebugHarness harness(Topology::ring(9), make_token_ring(9, ring),
                                tier_config(seed, debugger_fanout));
        harness.sim().run_for(Duration::seconds(2));  // workload finishes
        harness.session().halt();
        auto wave = harness.session().wait_for_halt(kWait);
        EXPECT_TRUE(wave.has_value());
        return wave;
      };
      auto flat = run(0);
      auto tree = run(fanout);
      ASSERT_TRUE(flat.has_value() && tree.has_value());
      EXPECT_EQ(tree->state.size(), 9u);
      const auto difference = flat->state.first_difference(tree->state);
      EXPECT_FALSE(difference.has_value()) << *difference;
      EXPECT_TRUE(consistent_cut(tree->state));
    }
  }
}

TEST(DebuggerTier, QuiescedSnapshotIdenticalFlatVsTree) {
  TokenRingConfig ring;
  ring.rounds = 2;
  auto run = [&](std::uint32_t fanout) {
    SimDebugHarness harness(Topology::ring(7), make_token_ring(7, ring),
                            tier_config(4, fanout));
    harness.sim().run_for(Duration::seconds(2));
    auto wave = harness.session().take_snapshot(kWait);
    EXPECT_TRUE(wave.has_value());
    return wave;
  };
  auto flat = run(0);
  auto tree = run(2);
  ASSERT_TRUE(flat.has_value() && tree.has_value());
  // Recordings carry no halt paths, so the rendering is byte-identical too.
  EXPECT_EQ(flat->state.describe(), tree->state.describe());
  EXPECT_FALSE(flat->state.first_difference(tree->state).has_value());
}

// Theorem 2 *within* tree mode, mid-flight: S_h == S_r on the same
// deterministic execution, with markers crossing the aggregator tier.
TEST(DebuggerTier, TreeHaltedEqualsTreeRecorded) {
  for (const std::uint64_t seed : {5u, 6u, 7u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const Duration point = Duration::millis(40);
    SimDebugHarness record_run(Topology::ring(9),
                               make_gossip(9, GossipConfig{}),
                               tier_config(seed, 3));
    record_run.sim().run_for(point);
    auto recorded = record_run.session().take_snapshot(kWait);
    ASSERT_TRUE(recorded.has_value());

    SimDebugHarness halt_run(Topology::ring(9), make_gossip(9, GossipConfig{}),
                             tier_config(seed, 3));
    halt_run.sim().run_for(point);
    halt_run.session().halt();
    auto halted = halt_run.session().wait_for_halt(kWait);
    ASSERT_TRUE(halted.has_value());

    const auto difference = halted->state.first_difference(recorded->state);
    EXPECT_FALSE(difference.has_value()) << *difference;
  }
}

// Mid-flight verdict on a tree tier: money in transit plus balances is
// conserved, and the cut is vector-clock consistent.
TEST(DebuggerTier, BankConservationAcrossTreeHaltedState) {
  for (const std::uint64_t seed : {11u, 12u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    BankConfig bank;
    SimDebugHarness harness(Topology::complete(8), make_bank(8, bank),
                            tier_config(seed, 2));
    harness.sim().run_for(Duration::millis(60));
    harness.session().halt();
    auto wave = harness.session().wait_for_halt(kWait);
    ASSERT_TRUE(wave.has_value());
    EXPECT_EQ(wave->state.size(), 8u);
    auto total = BankProcess::total_money(wave->state);
    ASSERT_TRUE(total.ok());
    EXPECT_EQ(total.value(), 8 * bank.initial_balance);
    EXPECT_TRUE(consistent_cut(wave->state));
    for (std::uint32_t i = 0; i < 8; ++i) {
      EXPECT_TRUE(harness.shim(ProcessId(i)).halted());
      EXPECT_EQ(harness.shim(ProcessId(i)).halting().last_halt_id(), 1u);
    }
  }
}

// Halt paths through the tier start at the root and walk aggregators, and
// every user's last_halt_id agrees (section 2.2.1's invariant).
TEST(DebuggerTier, HaltPathsWalkTheTier) {
  SimDebugHarness harness(Topology::ring(8), make_gossip(8, GossipConfig{}),
                          tier_config(13, 2));
  harness.sim().run_for(Duration::millis(20));
  harness.session().halt();
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  const Topology& t = harness.topology();
  const ProcessId root = harness.debugger_id();
  for (const auto& [p, path] : wave->halt_paths) {
    ASSERT_FALSE(path.empty()) << to_string(p);
    EXPECT_EQ(path.front(), root) << to_string(p);
    // Everything on the path before the first user process is tier-side.
    for (const ProcessId hop : path) {
      if (hop.value() < t.num_user_processes()) break;
      EXPECT_TRUE(t.is_aggregator(hop) || t.is_debugger(hop));
    }
  }
}

// ---------------------------------------------------------------------------
// Control-plane routing through the tier
// ---------------------------------------------------------------------------

TEST(DebuggerTier, BreakpointFiresThroughTier) {
  TokenRingConfig ring;
  ring.rounds = 100;
  SimDebugHarness harness(Topology::ring(6), make_token_ring(6, ring),
                          tier_config(14, 2));
  auto bp = harness.session().set_breakpoint(
      "p1:event(token) -> p4:event(token)");
  ASSERT_TRUE(bp.ok());
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  const auto hits = harness.session().hits();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].process, ProcessId(4));  // chain completes at p4
  EXPECT_EQ(hits[0].breakpoint, bp.value());
  EXPECT_TRUE(consistent_cut(wave->state));
}

TEST(DebuggerTier, QueryStateRoutesThroughTier) {
  SimDebugHarness harness(Topology::ring(8), make_gossip(8, GossipConfig{}),
                          tier_config(15, 2));
  harness.sim().run_for(Duration::millis(30));
  auto report = harness.session().inspect(ProcessId(6), kWait);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->process, ProcessId(6));
  EXPECT_NE(report->description.find("sent="), std::string::npos);
}

TEST(DebuggerTier, ResumeThroughTierContinuesExecution) {
  SimDebugHarness harness(Topology::ring(8), make_gossip(8, GossipConfig{}),
                          tier_config(16, 2));
  harness.sim().run_for(Duration::millis(30));
  harness.session().halt();
  ASSERT_TRUE(harness.session().wait_for_halt(kWait).has_value());
  const auto& p0 =
      dynamic_cast<GossipProcess&>(harness.shim(ProcessId(0)).user());
  const std::uint64_t sent_at_halt = p0.sent();
  harness.sim().run_for(Duration::millis(50));
  EXPECT_EQ(p0.sent(), sent_at_halt);  // frozen
  harness.session().resume();
  harness.sim().run_for(Duration::millis(80));
  EXPECT_FALSE(harness.shim(ProcessId(0)).halted());
  EXPECT_GT(p0.sent(), sent_at_halt);
}

TEST(DebuggerTier, RepeatedWavesThroughTierStayConsistent) {
  SimDebugHarness harness(Topology::ring(9), make_gossip(9, GossipConfig{}),
                          tier_config(17, 3));
  for (std::uint64_t wave_id = 1; wave_id <= 3; ++wave_id) {
    harness.sim().run_for(Duration::millis(20));
    harness.session().halt();
    ASSERT_TRUE(harness.sim().run_until_condition(
        [&] { return harness.debugger().halt_complete(wave_id); },
        harness.sim().now() + kWait));
    auto wave = harness.debugger().halt_wave(wave_id);
    ASSERT_TRUE(wave.has_value());
    EXPECT_EQ(wave->state.size(), 9u);
    EXPECT_TRUE(consistent_cut(wave->state));
    harness.session().resume();
  }
}

// ---------------------------------------------------------------------------
// Marker suppression
// ---------------------------------------------------------------------------

// With only control channels, a debugger-initiated halt makes every user
// learn the wave from its parent — each user's single control out-channel
// echo is exactly the redundant send, so the counter is exact.
TEST(DebuggerTier, SuppressionCountsAndPreservesVerdict) {
  auto run = [&](bool suppress, std::uint32_t fanout) {
    HarnessConfig config = tier_config(18, fanout);
    config.shim_options.suppress_redundant_markers = suppress;
    SimDebugHarness harness(Topology(6), make_idle(6), std::move(config));
    harness.sim().run_for(Duration::millis(5));
    harness.session().halt();
    auto wave = harness.session().wait_for_halt(kWait);
    EXPECT_TRUE(wave.has_value());
    EXPECT_TRUE(wave->complete);
    EXPECT_EQ(wave->state.size(), 6u);
    return harness.sim().metrics().snapshot().tier.markers_suppressed;
  };
  EXPECT_EQ(run(/*suppress=*/false, /*fanout=*/0), 0u);
  EXPECT_EQ(run(/*suppress=*/true, /*fanout=*/0), 6u);
  // Tree mode: the six user echoes are suppressed the same way; interior
  // aggregators additionally skip the back-edge toward the wave's sender.
  EXPECT_GE(run(/*suppress=*/true, /*fanout=*/2), 6u);
}

// The flood (suppression off) and the suppressed run halt to Theorem-2
// identical states on a quiesced workload, flat and tree alike.
TEST(DebuggerTier, SuppressionDoesNotChangeQuiescedVerdict) {
  TokenRingConfig ring;
  ring.rounds = 3;
  auto run = [&](bool suppress, std::uint32_t fanout) {
    HarnessConfig config = tier_config(19, fanout);
    config.shim_options.suppress_redundant_markers = suppress;
    SimDebugHarness harness(Topology::ring(6), make_token_ring(6, ring),
                            std::move(config));
    harness.sim().run_for(Duration::seconds(2));
    harness.session().halt();
    auto wave = harness.session().wait_for_halt(kWait);
    EXPECT_TRUE(wave.has_value());
    return wave;
  };
  auto flood = run(false, 0);
  for (const std::uint32_t fanout : {0u, 2u}) {
    auto suppressed = run(true, fanout);
    ASSERT_TRUE(flood.has_value() && suppressed.has_value());
    const auto difference = flood->state.first_difference(suppressed->state);
    EXPECT_FALSE(difference.has_value())
        << "fanout " << fanout << ": " << *difference;
  }
}

// ---------------------------------------------------------------------------
// Convergecast move semantics (allocation pins)
// ---------------------------------------------------------------------------

ProcessSnapshot heavy_snapshot(std::uint32_t pid) {
  ProcessSnapshot snapshot;
  snapshot.process = ProcessId(pid);
  snapshot.state = Bytes(1024, 0x5a);
  for (std::uint32_t c = 0; c < 8; ++c) {
    ChannelState cs;
    cs.channel = ChannelId(c);
    for (std::uint32_t m = 0; m < 16; ++m) {
      cs.messages.push_back(Bytes(256, static_cast<std::uint8_t>(m)));
    }
    snapshot.in_channels.push_back(std::move(cs));
  }
  return snapshot;
}

TEST(GlobalStateMove, AddByRvalueDoesNotCopyPayloads) {
  GlobalState state{HaltId(1)};
  ProcessSnapshot snapshot = heavy_snapshot(3);
  const std::size_t before = g_allocation_count.load();
  state.add(std::move(snapshot));
  const std::size_t allocations = g_allocation_count.load() - before;
  // One map node plus slack; the 128 payload buffers must move, not copy.
  EXPECT_LE(allocations, 4u) << "aggregation path is copying snapshots";
  EXPECT_EQ(state.at(ProcessId(3)).in_channels.size(), 8u);
}

TEST(GlobalStateMove, TakeAllMovesSnapshotsOut) {
  GlobalState state{HaltId(1)};
  for (std::uint32_t p = 0; p < 4; ++p) state.add(heavy_snapshot(p));
  const std::size_t before = g_allocation_count.load();
  std::vector<ProcessSnapshot> all = state.take_all();
  const std::size_t allocations = g_allocation_count.load() - before;
  // One vector allocation plus slack; 4 * 129 payload buffers must move.
  EXPECT_LE(allocations, 4u) << "take_all is copying snapshots";
  EXPECT_EQ(state.size(), 0u);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[2].process, ProcessId(2));
  EXPECT_EQ(all[2].in_channels.size(), 8u);
}

TEST(GlobalStateMove, LvalueAddStillCopies) {
  GlobalState state{HaltId(1)};
  const ProcessSnapshot snapshot = heavy_snapshot(0);
  state.add(snapshot);  // const ref: must copy, caller keeps its snapshot
  EXPECT_EQ(snapshot.in_channels.size(), 8u);
  EXPECT_FALSE(snapshot.state.empty());
  EXPECT_EQ(state.at(ProcessId(0)).in_channels.size(), 8u);
}

// ---------------------------------------------------------------------------
// Chaos on interior tier channels
// ---------------------------------------------------------------------------

// Faults on an interior aggregator's channels (the convergecast trunk):
// with the reliability layer on, the wave still completes with a
// consistent, conservation-clean verdict.
TEST(DebuggerTierChaos, InteriorAggregatorChannelFaults) {
  BankConfig bank;
  const Topology topology = Topology::complete(8).with_debugger_tree(2);
  // Find an interior aggregator (a non-root tier node with aggregator
  // children) and aim the adversary at every channel touching it.
  ProcessId interior;
  for (const ProcessId p : topology.process_ids()) {
    if (!topology.is_aggregator(p)) continue;
    for (const ProcessId c : topology.tier_children(p)) {
      if (topology.is_aggregator(c)) interior = p;
    }
  }
  ASSERT_TRUE(interior.valid()) << "fanout 2 over 8 users has 3 tier levels";
  FaultSpec lossy;
  lossy.drop = 0.15;
  lossy.duplicate = 0.10;
  lossy.reorder = 0.10;
  auto plan = std::make_shared<FaultPlan>(FaultSpec{}, 7);
  for (const ChannelSpec& channel : topology.channels()) {
    if (channel.source == interior || channel.destination == interior) {
      plan->set_channel(channel.id, lossy);
    }
  }
  HarnessConfig config = tier_config(20, 2);
  config.faults = std::move(plan);
  SimDebugHarness harness(Topology::complete(8), make_bank(8, bank),
                          std::move(config));
  harness.sim().run_for(Duration::millis(50));
  harness.session().halt();
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  EXPECT_TRUE(wave->complete);
  EXPECT_EQ(wave->state.size(), 8u);
  auto total = BankProcess::total_money(wave->state);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total.value(), 8 * bank.initial_balance);
  EXPECT_TRUE(consistent_cut(wave->state));
  // The adversary actually bit: the verdict above survived real loss, not a
  // lucky fault-free run.
  const auto transport = harness.sim().metrics().snapshot().transport;
  std::uint64_t injected = 0;
  for (const std::uint64_t count : transport.faults_injected) {
    injected += count;
  }
  EXPECT_GT(injected, 0u);
  EXPECT_GT(transport.retransmits, 0u);
}

// ---------------------------------------------------------------------------
// Threaded runtime
// ---------------------------------------------------------------------------

TEST(DebuggerTierRuntime, TreeHaltOnThreads) {
  GossipConfig gossip;
  RuntimeDebugHarness harness(Topology::ring(8), make_gossip(8, gossip),
                              tier_config(21, 2));
  harness.start();
  auto wave_started = Runtime::wait_until(
      [&] {
        return dynamic_cast<GossipProcess&>(harness.shim(ProcessId(0)).user())
                   .sent() > 0;
      },
      kWait);
  ASSERT_TRUE(wave_started);
  harness.session().halt();
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  EXPECT_TRUE(wave->complete);
  EXPECT_EQ(wave->state.size(), 8u);
  EXPECT_TRUE(consistent_cut(wave->state));
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(harness.shim(ProcessId(i)).halted());
  }
  harness.shutdown();
}

// ---------------------------------------------------------------------------
// TCP runtime: the tier over real sockets (epoll reactor under load)
// ---------------------------------------------------------------------------

// Moderate-N tree halt over TCP loopback: every convergecast hop is a real
// socket frame, repeated waves with resumes in between.  Also pins the
// transport economics — channel multiplexing keeps the socket count below
// the channel count even with a full control tree wired in.
TEST(DebuggerTierTcp, TreeHaltAtModerateN) {
  constexpr std::uint32_t kUsers = 32;
  GossipConfig gossip;
  gossip.send_interval = Duration::millis(1);
  TcpDebugHarness harness(Topology::ring(kUsers), make_gossip(kUsers, gossip),
                          tier_config(22, 4));
  const std::size_t channels = harness.topology().channels().size();
  EXPECT_LT(harness.tcp().data_socket_count(), channels)
      << "pair muxing should need fewer sockets than channels";
  ASSERT_TRUE(harness.start());
  const auto& p0 =
      dynamic_cast<GossipProcess&>(harness.shim(ProcessId(0)).user());
  for (std::uint64_t wave_id = 1; wave_id <= 2; ++wave_id) {
    const std::uint64_t sent_before = p0.sent();
    ASSERT_TRUE(TcpRuntime::wait_until(
        [&] { return p0.sent() > sent_before; }, kWait));
    harness.session().halt();
    ASSERT_TRUE(TcpRuntime::wait_until(
        [&] { return harness.debugger().halt_complete(wave_id); }, kWait));
    auto wave = harness.debugger().halt_wave(wave_id);
    ASSERT_TRUE(wave.has_value());
    EXPECT_TRUE(wave->complete);
    EXPECT_EQ(wave->state.size(), kUsers);
    EXPECT_TRUE(consistent_cut(wave->state));
    for (std::uint32_t i = 0; i < kUsers; ++i) {
      EXPECT_TRUE(harness.shim(ProcessId(i)).halted()) << i;
    }
    harness.session().resume();
  }
  harness.shutdown();
  const auto transport =
      harness.tcp().metrics().snapshot(harness.tcp().now()).transport;
  EXPECT_GT(transport.epoll_wakeups, 0u);
  EXPECT_GE(transport.mux_channels_per_socket, 2u);
}

// A breakpoint armed through the aggregator tier, hit on a socket-borne
// event, halting through the tier again.  The start gate holds the ring
// until the arm command has crossed two tier hops.
TEST(DebuggerTierTcp, BreakpointFiresThroughTierOverSockets) {
  TokenRingConfig ring;
  ring.rounds = 1000;
  ring.hop_delay = Duration::micros(500);
  ring.start_gate = std::make_shared<std::atomic<bool>>(false);
  TcpDebugHarness harness(Topology::ring(6), make_token_ring(6, ring),
                          tier_config(23, 2));
  ASSERT_TRUE(harness.start());
  auto bp = harness.session().set_breakpoint("(p2:event(token))^2");
  ASSERT_TRUE(bp.ok());
  ASSERT_TRUE(harness.wait_for_armed(1, kWait));
  ring.start_gate->store(true, std::memory_order_release);
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  EXPECT_TRUE(wave->complete);
  const auto hits = harness.session().hits();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].process, ProcessId(2));
  EXPECT_EQ(hits[0].breakpoint, bp.value());
  const auto& p2 =
      dynamic_cast<TokenRingProcess&>(harness.shim(ProcessId(2)).user());
  EXPECT_EQ(p2.tokens_seen(), 2u);
  EXPECT_TRUE(consistent_cut(wave->state));
  harness.shutdown();
}

// Connections reset mid-run (including tier control channels), forcing
// reconnects and resyncs underneath a halt wave; the wave must still
// complete on a consistent cut over the healed transport.
TEST(DebuggerTierTcp, ReconnectDuringHaltWave) {
  GossipConfig gossip;
  gossip.send_interval = Duration::millis(1);
  FaultSpec spec;
  spec.drop = 0.05;
  spec.reset = 0.04;
  HarnessConfig config = tier_config(24, 2);
  config.faults = std::make_shared<FaultPlan>(spec, 24);
  TcpDebugHarness harness(Topology::ring(8), make_gossip(8, gossip),
                          std::move(config));
  ASSERT_TRUE(harness.start());
  // Let traffic flow until at least one reset has forced a reconnect, so
  // the halt below crosses a socket that demonstrably went down and back.
  ASSERT_TRUE(TcpRuntime::wait_until(
      [&] {
        return harness.tcp().metrics().snapshot(harness.tcp().now())
                   .transport.reconnects >= 1;
      },
      kWait));
  harness.session().halt();
  auto wave = harness.session().wait_for_halt(kWait);
  ASSERT_TRUE(wave.has_value());
  EXPECT_TRUE(wave->complete);
  EXPECT_EQ(wave->state.size(), 8u);
  EXPECT_TRUE(consistent_cut(wave->state));
  harness.shutdown();
  const auto transport =
      harness.tcp().metrics().snapshot(harness.tcp().now()).transport;
  EXPECT_GT(transport.faults_injected[fault_index(FaultKind::kReset)], 0u);
  EXPECT_GT(transport.reconnects, 0u);
  EXPECT_GT(transport.resync_replayed, 0u);
}

}  // namespace
}  // namespace ddbg
