// Unit tests for the topology graph: construction, generators, SCC and the
// extended-model (debugger) transformation.
#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace ddbg {
namespace {

TEST(Topology, AddProcessesAndChannels) {
  Topology t(3);
  EXPECT_EQ(t.num_processes(), 3u);
  const ChannelId c = t.add_channel(ProcessId(0), ProcessId(1));
  EXPECT_EQ(t.num_channels(), 1u);
  EXPECT_EQ(t.channel(c).source, ProcessId(0));
  EXPECT_EQ(t.channel(c).destination, ProcessId(1));
  EXPECT_FALSE(t.channel(c).is_control);
}

TEST(Topology, OutAndInChannels) {
  Topology t(3);
  const ChannelId c01 = t.add_channel(ProcessId(0), ProcessId(1));
  const ChannelId c02 = t.add_channel(ProcessId(0), ProcessId(2));
  const ChannelId c21 = t.add_channel(ProcessId(2), ProcessId(1));
  ASSERT_EQ(t.out_channels(ProcessId(0)).size(), 2u);
  EXPECT_EQ(t.out_channels(ProcessId(0))[0], c01);
  EXPECT_EQ(t.out_channels(ProcessId(0))[1], c02);
  ASSERT_EQ(t.in_channels(ProcessId(1)).size(), 2u);
  EXPECT_EQ(t.in_channels(ProcessId(1))[0], c01);
  EXPECT_EQ(t.in_channels(ProcessId(1))[1], c21);
  EXPECT_TRUE(t.out_channels(ProcessId(1)).empty());
}

TEST(Topology, ChannelBetween) {
  Topology t = Topology::ring(4);
  auto c = t.channel_between(ProcessId(1), ProcessId(2));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(t.channel(*c).destination, ProcessId(2));
  EXPECT_FALSE(t.channel_between(ProcessId(0), ProcessId(2)).has_value());
}

TEST(Topology, RingShape) {
  Topology t = Topology::ring(5);
  EXPECT_EQ(t.num_processes(), 5u);
  EXPECT_EQ(t.num_channels(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(t.out_channels(ProcessId(i)).size(), 1u);
    EXPECT_EQ(t.in_channels(ProcessId(i)).size(), 1u);
  }
  EXPECT_TRUE(t.strongly_connected());
}

TEST(Topology, StarShape) {
  Topology t = Topology::star(5);
  EXPECT_EQ(t.num_channels(), 8u);  // 4 spokes, 2 channels each
  EXPECT_EQ(t.out_channels(ProcessId(0)).size(), 4u);
  EXPECT_TRUE(t.strongly_connected());
}

TEST(Topology, PipelineIsAcyclic) {
  Topology t = Topology::pipeline(4);
  EXPECT_EQ(t.num_channels(), 3u);
  EXPECT_FALSE(t.strongly_connected());
  EXPECT_EQ(t.num_strongly_connected_components(), 4u);
}

TEST(Topology, CompleteShape) {
  Topology t = Topology::complete(4);
  EXPECT_EQ(t.num_channels(), 12u);
  EXPECT_TRUE(t.strongly_connected());
}

TEST(Topology, TwoNodeCycle) {
  Topology t(2);
  t.add_channel(ProcessId(0), ProcessId(1));
  EXPECT_FALSE(t.strongly_connected());
  t.add_channel(ProcessId(1), ProcessId(0));
  EXPECT_TRUE(t.strongly_connected());
}

TEST(Topology, RandomStronglyConnectedAlwaysIs) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const auto n = static_cast<std::uint32_t>(rng.next_in(2, 20));
    const auto extra = static_cast<std::uint32_t>(rng.next_in(0, 30));
    Topology t = Topology::random_strongly_connected(n, extra, rng);
    EXPECT_TRUE(t.strongly_connected())
        << "n=" << n << " extra=" << extra << " trial=" << trial;
    // The generator clamps the extra edges to the capacity left after the
    // ring (n*(n-1) total ordered pairs, n used by the ring).
    const std::uint64_t capacity =
        static_cast<std::uint64_t>(n) * (n - 1) - n;
    EXPECT_EQ(t.num_channels(), n + std::min<std::uint64_t>(extra, capacity));
  }
}

TEST(Topology, RandomEdgeProbabilityExtremes) {
  Rng rng(7);
  Topology empty = Topology::random(5, 0.0, rng);
  EXPECT_EQ(empty.num_channels(), 0u);
  EXPECT_EQ(empty.num_strongly_connected_components(), 5u);
  Topology full = Topology::random(5, 1.0, rng);
  EXPECT_EQ(full.num_channels(), 20u);
  EXPECT_TRUE(full.strongly_connected());
}

TEST(Topology, WithDebuggerAddsControlChannels) {
  Topology t = Topology::pipeline(3).with_debugger();
  EXPECT_TRUE(t.has_debugger());
  EXPECT_EQ(t.num_processes(), 4u);
  EXPECT_EQ(t.num_user_processes(), 3u);
  EXPECT_EQ(t.debugger_id(), ProcessId(3));
  EXPECT_TRUE(t.is_debugger(ProcessId(3)));
  EXPECT_FALSE(t.is_debugger(ProcessId(0)));
  // 2 pipeline channels + 2 control channels per user process.
  EXPECT_EQ(t.num_channels(), 2u + 6u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    const ChannelSpec& to = t.channel(t.control_to(ProcessId(i)));
    EXPECT_TRUE(to.is_control);
    EXPECT_EQ(to.source, t.debugger_id());
    EXPECT_EQ(to.destination, ProcessId(i));
    const ChannelSpec& from = t.channel(t.control_from(ProcessId(i)));
    EXPECT_TRUE(from.is_control);
    EXPECT_EQ(from.source, ProcessId(i));
    EXPECT_EQ(from.destination, t.debugger_id());
  }
}

// Section 2.2.3's claim: the debugger process makes *any* topology strongly
// connected.
TEST(Topology, DebuggerMakesAnythingStronglyConnected) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    Topology t = Topology::random(8, 0.1, rng);
    EXPECT_TRUE(t.with_debugger().strongly_connected()) << "trial " << trial;
  }
  EXPECT_TRUE(Topology::pipeline(6).with_debugger().strongly_connected());
}

TEST(Topology, ChannelBetweenIgnoresControlChannels) {
  Topology t = Topology::pipeline(2).with_debugger();
  // p0 -> debugger exists only as a control channel.
  EXPECT_FALSE(t.channel_between(ProcessId(0), t.debugger_id()).has_value());
  EXPECT_TRUE(t.channel_between(ProcessId(0), ProcessId(1)).has_value());
}

TEST(Topology, UserProcessIds) {
  Topology t = Topology::ring(3).with_debugger();
  const auto users = t.user_process_ids();
  ASSERT_EQ(users.size(), 3u);
  EXPECT_EQ(users[0], ProcessId(0));
  EXPECT_EQ(users[2], ProcessId(2));
  EXPECT_EQ(t.process_ids().size(), 4u);
}

TEST(Topology, DescribeMentionsCounts) {
  Topology t = Topology::ring(3);
  EXPECT_NE(t.describe().find("3 processes"), std::string::npos);
}

TEST(Topology, TreeIsStronglyConnectedAndShaped) {
  const Topology t = Topology::tree(10, 2);
  EXPECT_EQ(t.num_processes(), 10u);
  EXPECT_EQ(t.num_channels(), 18u);  // 2 per tree edge
  EXPECT_TRUE(t.strongly_connected());
  // Child 4's parent under branching 2 is (4 - 1) / 2 = 1.
  EXPECT_TRUE(t.channel_between(ProcessId(1), ProcessId(4)).has_value());
  EXPECT_TRUE(t.channel_between(ProcessId(4), ProcessId(1)).has_value());
  EXPECT_FALSE(t.channel_between(ProcessId(0), ProcessId(4)).has_value());

  const Topology wide = Topology::tree(7, 3);
  EXPECT_TRUE(wide.strongly_connected());
  EXPECT_EQ(wide.out_channels(ProcessId(0)).size(), 3u);
}

// The large-N generator checks: complete() at N = 1024 builds ~1M channels
// with 64-bit count arithmetic, and channel_between stays O(1) (an
// out-degree scan here would make this test conspicuously slow).
TEST(Topology, LargeGeneratorsAndConstantTimeLookup) {
  const std::uint32_t n = 1024;
  const Topology complete = Topology::complete(n);
  EXPECT_EQ(complete.num_channels(),
            static_cast<std::size_t>(n) * (n - 1));
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(complete.out_channels(ProcessId(i)).size(), n - 1);
    EXPECT_EQ(complete.in_channels(ProcessId(i)).size(), n - 1);
  }
  // Every ordered pair resolves; spot the full first row and diagonal.
  for (std::uint32_t j = 1; j < n; ++j) {
    const auto c = complete.channel_between(ProcessId(0), ProcessId(j));
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(complete.channel(*c).destination, ProcessId(j));
  }
  EXPECT_FALSE(
      complete.channel_between(ProcessId(5), ProcessId(5)).has_value());

  const Topology ring = Topology::ring(n);
  EXPECT_EQ(ring.num_channels(), static_cast<std::size_t>(n));
  EXPECT_TRUE(ring.channel_between(ProcessId(n - 1), ProcessId(0)));

  const Topology tree = Topology::tree(n, 4);
  EXPECT_EQ(tree.num_channels(), 2u * (n - 1));
  EXPECT_TRUE(tree.strongly_connected());
}

TEST(Topology, ChannelBetweenReturnsFirstDataChannel) {
  Topology t(2);
  const ChannelId first = t.add_channel(ProcessId(0), ProcessId(1));
  t.add_channel(ProcessId(0), ProcessId(1));  // parallel duplicate
  const auto found = t.channel_between(ProcessId(0), ProcessId(1));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, first);
}

}  // namespace
}  // namespace ddbg
