// Tests for the deterministic discrete-event simulator: delivery, FIFO
// order under random latencies, timers, determinism, injection.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "sim/simulation.hpp"

namespace ddbg {
namespace {

// Records everything it receives; can echo.
class Recorder final : public Process {
 public:
  void on_message(ProcessContext& ctx, ChannelId in, Message message) override {
    received.emplace_back(in, message);
    receive_times.push_back(ctx.now());
  }
  std::vector<std::pair<ChannelId, Message>> received;
  std::vector<TimePoint> receive_times;
};

// Sends `count` numbered messages on every outgoing channel at start.
class Burster final : public Process {
 public:
  explicit Burster(int count) : count_(count) {}
  void on_start(ProcessContext& ctx) override {
    for (int i = 0; i < count_; ++i) {
      for (const ChannelId c : ctx.topology().out_channels(ctx.self())) {
        ByteWriter writer;
        writer.u32(static_cast<std::uint32_t>(i));
        ctx.send(c, Message::application(std::move(writer).take()));
      }
    }
  }
  void on_message(ProcessContext&, ChannelId, Message) override {}

 private:
  int count_;
};

// Fires a timer chain: schedules the next timer until `count` firings.
class TimerChain final : public Process {
 public:
  TimerChain(Duration interval, int count)
      : interval_(interval), count_(count) {}
  void on_start(ProcessContext& ctx) override {
    if (count_ > 0) ctx.set_timer(interval_);
  }
  void on_timer(ProcessContext& ctx, TimerId) override {
    fire_times.push_back(ctx.now());
    if (static_cast<int>(fire_times.size()) < count_) {
      ctx.set_timer(interval_);
    }
  }
  void on_message(ProcessContext&, ChannelId, Message) override {}
  std::vector<TimePoint> fire_times;

 private:
  Duration interval_;
  int count_;
};

Topology two_process_line() {
  Topology t(2);
  t.add_channel(ProcessId(0), ProcessId(1));
  return t;
}

TEST(Simulation, DeliversMessages) {
  std::vector<ProcessPtr> procs;
  procs.push_back(std::make_unique<Burster>(3));
  procs.push_back(std::make_unique<Recorder>());
  Simulation sim(two_process_line(), std::move(procs));
  EXPECT_TRUE(sim.run_until_quiescent());
  auto& recorder = dynamic_cast<Recorder&>(sim.process(ProcessId(1)));
  EXPECT_EQ(recorder.received.size(), 3u);
  EXPECT_EQ(sim.stats().messages_sent, 3u);
  EXPECT_EQ(sim.stats().messages_delivered, 3u);
  EXPECT_EQ(sim.stats().app_messages_sent, 3u);
}

TEST(Simulation, FifoUnderRandomLatency) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    std::vector<ProcessPtr> procs;
    procs.push_back(std::make_unique<Burster>(50));
    procs.push_back(std::make_unique<Recorder>());
    SimulationConfig config;
    config.seed = seed;
    config.latency = uniform_latency(Duration::micros(1), Duration::millis(20));
    Simulation sim(two_process_line(), std::move(procs), std::move(config));
    EXPECT_TRUE(sim.run_until_quiescent());
    auto& recorder = dynamic_cast<Recorder&>(sim.process(ProcessId(1)));
    ASSERT_EQ(recorder.received.size(), 50u);
    for (std::size_t i = 0; i < recorder.received.size(); ++i) {
      ByteReader reader(recorder.received[i].second.payload);
      EXPECT_EQ(reader.u32().value(), i) << "seed " << seed;
    }
  }
}

TEST(Simulation, MessageIdsAssignedAndUnique) {
  std::vector<ProcessPtr> procs;
  procs.push_back(std::make_unique<Burster>(5));
  procs.push_back(std::make_unique<Recorder>());
  Simulation sim(two_process_line(), std::move(procs));
  sim.run_until_quiescent();
  auto& recorder = dynamic_cast<Recorder&>(sim.process(ProcessId(1)));
  std::set<std::uint64_t> ids;
  for (auto& [channel, message] : recorder.received) {
    EXPECT_NE(message.message_id, 0u);
    ids.insert(message.message_id);
  }
  EXPECT_EQ(ids.size(), 5u);
}

TEST(Simulation, TimersFireInOrder) {
  Topology t(1);
  std::vector<ProcessPtr> procs;
  procs.push_back(std::make_unique<TimerChain>(Duration::millis(5), 4));
  Simulation sim(std::move(t), std::move(procs));
  EXPECT_TRUE(sim.run_until_quiescent());
  auto& chain = dynamic_cast<TimerChain&>(sim.process(ProcessId(0)));
  ASSERT_EQ(chain.fire_times.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(chain.fire_times[i].ns, (static_cast<int>(i) + 1) * 5'000'000);
  }
}

TEST(Simulation, CancelledTimerDoesNotFire) {
  class Canceller final : public Process {
   public:
    void on_start(ProcessContext& ctx) override {
      const TimerId t = ctx.set_timer(Duration::millis(1));
      ctx.cancel_timer(t);
      ctx.set_timer(Duration::millis(2));
    }
    void on_timer(ProcessContext&, TimerId) override { ++fired; }
    void on_message(ProcessContext&, ChannelId, Message) override {}
    int fired = 0;
  };
  Topology t(1);
  std::vector<ProcessPtr> procs;
  procs.push_back(std::make_unique<Canceller>());
  Simulation sim(std::move(t), std::move(procs));
  sim.run_until_quiescent();
  EXPECT_EQ(dynamic_cast<Canceller&>(sim.process(ProcessId(0))).fired, 1);
}

TEST(Simulation, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    std::vector<ProcessPtr> procs;
    procs.push_back(std::make_unique<Burster>(20));
    procs.push_back(std::make_unique<Recorder>());
    SimulationConfig config;
    config.seed = seed;
    config.latency = uniform_latency(Duration::micros(10), Duration::millis(3));
    Simulation sim(two_process_line(), std::move(procs), std::move(config));
    sim.run_until_quiescent();
    auto& recorder = dynamic_cast<Recorder&>(sim.process(ProcessId(1)));
    return recorder.receive_times;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(Simulation, RunUntilStopsAtTime) {
  Topology t(1);
  std::vector<ProcessPtr> procs;
  procs.push_back(std::make_unique<TimerChain>(Duration::millis(10), 100));
  Simulation sim(std::move(t), std::move(procs));
  sim.run_until(TimePoint{Duration::millis(35).ns});
  auto& chain = dynamic_cast<TimerChain&>(sim.process(ProcessId(0)));
  EXPECT_EQ(chain.fire_times.size(), 3u);
  EXPECT_EQ(sim.now().ns, Duration::millis(35).ns);
}

TEST(Simulation, InFlightAccounting) {
  std::vector<ProcessPtr> procs;
  procs.push_back(std::make_unique<Burster>(4));
  procs.push_back(std::make_unique<Recorder>());
  SimulationConfig config;
  config.latency = constant_latency(Duration::millis(10));
  Simulation sim(two_process_line(), std::move(procs), std::move(config));
  sim.run_until(TimePoint{Duration::millis(1).ns});
  EXPECT_EQ(sim.total_in_flight(), 4u);
  sim.run_until_quiescent();
  EXPECT_EQ(sim.total_in_flight(), 0u);
}

TEST(Simulation, ScheduleCallRunsAtTime) {
  Topology t(1);
  std::vector<ProcessPtr> procs;
  procs.push_back(std::make_unique<Recorder>());
  Simulation sim(std::move(t), std::move(procs));
  bool ran = false;
  sim.schedule_call(TimePoint{Duration::millis(7).ns}, [&] { ran = true; });
  sim.run_until(TimePoint{Duration::millis(6).ns});
  EXPECT_FALSE(ran);
  sim.run_until(TimePoint{Duration::millis(8).ns});
  EXPECT_TRUE(ran);
}

TEST(Simulation, PostRunsInProcessContext) {
  Topology t = two_process_line();
  std::vector<ProcessPtr> procs;
  procs.push_back(std::make_unique<Burster>(0));
  procs.push_back(std::make_unique<Recorder>());
  Simulation sim(std::move(t), std::move(procs));
  sim.run_until_quiescent();
  ProcessId seen;
  sim.post(ProcessId(1), [&](ProcessContext& ctx, Process& process) {
    seen = ctx.self();
    EXPECT_NE(dynamic_cast<Recorder*>(&process), nullptr);
  });
  sim.run_until_quiescent();
  EXPECT_EQ(seen, ProcessId(1));
}

TEST(Simulation, RunUntilConditionStopsEarly) {
  Topology t(1);
  std::vector<ProcessPtr> procs;
  auto chain = std::make_unique<TimerChain>(Duration::millis(1), 100);
  TimerChain* chain_ptr = chain.get();
  procs.push_back(std::move(chain));
  Simulation sim(std::move(t), std::move(procs));
  const bool met = sim.run_until_condition(
      [&] { return chain_ptr->fire_times.size() >= 5; },
      TimePoint{Duration::seconds(1).ns});
  EXPECT_TRUE(met);
  EXPECT_EQ(chain_ptr->fire_times.size(), 5u);
}

TEST(Simulation, ExponentialLatencyClampsPathologicalTail) {
  // A mean near the int64 ceiling makes nearly every exponential draw
  // overflow Duration's nanosecond clock; the sample must clamp to the
  // documented cap instead of hitting double->int64 UB.
  const Duration min_delay = Duration::micros(1);
  ExponentialLatency model(
      Duration{std::numeric_limits<std::int64_t>::max() / 2}, min_delay);
  Rng rng(31);
  bool clamped = false;
  for (int i = 0; i < 200; ++i) {
    const Duration d = model.sample(ChannelId(0), rng);
    EXPECT_GE(d.ns, min_delay.ns);
    EXPECT_LE(d.ns, min_delay.ns + ExponentialLatency::kMaxExtraDelay.ns);
    if (d.ns == min_delay.ns + ExponentialLatency::kMaxExtraDelay.ns) {
      clamped = true;
    }
  }
  EXPECT_TRUE(clamped);  // the cap demonstrably engaged
}

TEST(Simulation, ExponentialLatencyStillFifo) {
  std::vector<ProcessPtr> procs;
  procs.push_back(std::make_unique<Burster>(30));
  procs.push_back(std::make_unique<Recorder>());
  SimulationConfig config;
  config.latency = exponential_latency(Duration::millis(5), Duration::micros(100));
  Simulation sim(two_process_line(), std::move(procs), std::move(config));
  sim.run_until_quiescent();
  auto& recorder = dynamic_cast<Recorder&>(sim.process(ProcessId(1)));
  ASSERT_EQ(recorder.received.size(), 30u);
  for (std::size_t i = 1; i < recorder.receive_times.size(); ++i) {
    EXPECT_LE(recorder.receive_times[i - 1], recorder.receive_times[i]);
  }
}

}  // namespace
}  // namespace ddbg
