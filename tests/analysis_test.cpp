// Unit tests for the analysis layer: traces, consistency checking, message
// accounting, SCP classification and summary statistics.
#include <gtest/gtest.h>

#include "analysis/consistency.hpp"
#include "analysis/scp.hpp"
#include "analysis/stats.hpp"
#include "analysis/trace.hpp"

namespace ddbg {
namespace {

LocalEvent event_at(ProcessId p, std::uint64_t seq, LocalEventKind kind,
                    VectorClock vclock, std::uint64_t message_id = 0,
                    ChannelId channel = ChannelId()) {
  LocalEvent event;
  event.process = p;
  event.local_seq = seq;
  event.kind = kind;
  event.vclock = std::move(vclock);
  event.message_id = message_id;
  event.channel = channel;
  return event;
}

VectorClock vc(std::initializer_list<std::uint64_t> counts) {
  VectorClock clock(counts.size());
  std::uint32_t i = 0;
  for (const std::uint64_t c : counts) {
    for (std::uint64_t k = 0; k < c; ++k) clock.tick(ProcessId(i));
    ++i;
  }
  return clock;
}

ProcessSnapshot snap(ProcessId p, VectorClock clock) {
  ProcessSnapshot snapshot;
  snapshot.process = p;
  snapshot.vclock = std::move(clock);
  return snapshot;
}

TEST(Trace, RecordsAndMatches) {
  Trace trace;
  auto sink = trace.sink();
  sink(event_at(ProcessId(0), 0, LocalEventKind::kUserEvent, vc({1, 0})));
  sink(event_at(ProcessId(1), 0, LocalEventKind::kUserEvent, vc({0, 1})));
  EXPECT_EQ(trace.size(), 2u);

  SimplePredicate sp;
  sp.process = ProcessId(0);
  sp.kind = LocalEventKind::kUserEvent;
  EXPECT_EQ(trace.matching(sp).size(), 1u);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
}

TEST(Trace, GraphHasProgramAndMessageEdges) {
  Trace trace;
  // p0: send(m1); p1: recv(m1) then a local event.
  trace.record(event_at(ProcessId(0), 0, LocalEventKind::kMessageSent,
                        vc({1, 0}), 42, ChannelId(0)));
  trace.record(event_at(ProcessId(1), 0, LocalEventKind::kMessageReceived,
                        vc({1, 1}), 42, ChannelId(0)));
  trace.record(event_at(ProcessId(1), 1, LocalEventKind::kUserEvent,
                        vc({1, 2})));
  const Trace::Graph graph = trace.build_graph();
  ASSERT_EQ(graph.events.size(), 3u);
  // Find indices by (process, seq).
  auto find = [&](ProcessId p, std::uint64_t seq) {
    for (EventIndex i = 0; i < graph.events.size(); ++i) {
      if (graph.events[i].process == p && graph.events[i].local_seq == seq) {
        return i;
      }
    }
    return EventIndex(999);
  };
  const EventIndex send = find(ProcessId(0), 0);
  const EventIndex recv = find(ProcessId(1), 0);
  const EventIndex local = find(ProcessId(1), 1);
  EXPECT_TRUE(graph.graph.happened_before(send, recv));
  EXPECT_TRUE(graph.graph.happened_before(recv, local));
  EXPECT_TRUE(graph.graph.happened_before(send, local));
  EXPECT_FALSE(graph.graph.happened_before(local, send));
}

TEST(Consistency, ConsistentCutAccepted) {
  GlobalState state{HaltId(1)};
  state.add(snap(ProcessId(0), vc({3, 1})));
  state.add(snap(ProcessId(1), vc({2, 5})));
  EXPECT_TRUE(consistent_cut(state));
}

TEST(Consistency, InconsistentCutDetected) {
  // p1 observed p0 at 4, but p0's own cut point is 3: p1 "saw the future".
  GlobalState state{HaltId(1)};
  state.add(snap(ProcessId(0), vc({3, 0})));
  state.add(snap(ProcessId(1), vc({4, 2})));
  const auto violation = find_cut_inconsistency(state);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("p1 observed p0"), std::string::npos);
}

TEST(Consistency, SingleProcessAlwaysConsistent) {
  GlobalState state{HaltId(1)};
  state.add(snap(ProcessId(0), vc({7})));
  EXPECT_TRUE(consistent_cut(state));
}

TEST(Accounting, CleanWhenChannelStateMatches) {
  Trace trace;
  // m1 sent in cut, received in cut.  m2 sent in cut, in flight, recorded.
  trace.record(event_at(ProcessId(0), 0, LocalEventKind::kMessageSent,
                        vc({1, 0}), 1, ChannelId(0)));
  trace.record(event_at(ProcessId(1), 0, LocalEventKind::kMessageReceived,
                        vc({1, 1}), 1, ChannelId(0)));
  trace.record(event_at(ProcessId(0), 1, LocalEventKind::kMessageSent,
                        vc({2, 0}), 2, ChannelId(0)));

  GlobalState state{HaltId(1)};
  auto s0 = snap(ProcessId(0), vc({2, 0}));
  auto s1 = snap(ProcessId(1), vc({1, 1}));
  s1.in_channels.push_back(ChannelState{ChannelId(0), {Bytes{0}}});
  state.add(s0);
  state.add(s1);

  const MessageAccounting accounting = account_messages(trace, state);
  EXPECT_EQ(accounting.orphan_receives, 0u);
  EXPECT_EQ(accounting.in_flight_per_trace, 1u);
  EXPECT_EQ(accounting.recorded_in_channels, 1u);
  EXPECT_EQ(accounting.lost_messages, 0u);
  EXPECT_TRUE(accounting.clean());
}

TEST(Accounting, LostMessageDetected) {
  Trace trace;
  trace.record(event_at(ProcessId(0), 0, LocalEventKind::kMessageSent,
                        vc({1, 0}), 1, ChannelId(0)));
  GlobalState state{HaltId(1)};
  state.add(snap(ProcessId(0), vc({1, 0})));
  state.add(snap(ProcessId(1), vc({0, 0})));  // no channel state recorded
  const MessageAccounting accounting = account_messages(trace, state);
  EXPECT_EQ(accounting.in_flight_per_trace, 1u);
  EXPECT_EQ(accounting.lost_messages, 1u);
  EXPECT_FALSE(accounting.clean());
}

TEST(Accounting, OrphanReceiveDetected) {
  Trace trace;
  // Receive inside the cut whose send is outside the cut.
  trace.record(event_at(ProcessId(0), 0, LocalEventKind::kMessageSent,
                        vc({5, 0}), 1, ChannelId(0)));
  trace.record(event_at(ProcessId(1), 0, LocalEventKind::kMessageReceived,
                        vc({5, 1}), 1, ChannelId(0)));
  GlobalState state{HaltId(1)};
  state.add(snap(ProcessId(0), vc({4, 0})));  // send (seq 5) outside
  state.add(snap(ProcessId(1), vc({5, 1})));  // receive inside
  const MessageAccounting accounting = account_messages(trace, state);
  EXPECT_EQ(accounting.orphan_receives, 1u);
}

TEST(Scp, ClassifiesOrderedAndUnordered) {
  Trace trace;
  // p0 event at vc(1,0); p1 events at vc(0,1) [concurrent] and vc(2,3)
  // [after a message from p0's vc(2,0)].
  trace.record(event_at(ProcessId(0), 0, LocalEventKind::kUserEvent,
                        vc({1, 0})));
  trace.record(event_at(ProcessId(1), 0, LocalEventKind::kUserEvent,
                        vc({0, 1})));
  trace.record(event_at(ProcessId(1), 1, LocalEventKind::kUserEvent,
                        vc({2, 3})));
  SimplePredicate sp0;
  sp0.process = ProcessId(0);
  sp0.kind = LocalEventKind::kUserEvent;
  SimplePredicate sp1;
  sp1.process = ProcessId(1);
  sp1.kind = LocalEventKind::kUserEvent;

  const ScpAnalysis analysis = analyze_scp(trace, sp0, sp1, true);
  EXPECT_EQ(analysis.satisfactions_sp1, 1u);
  EXPECT_EQ(analysis.satisfactions_sp2, 2u);
  EXPECT_EQ(analysis.ordered_pairs, 1u);
  EXPECT_EQ(analysis.unordered_pairs, 1u);
  EXPECT_DOUBLE_EQ(analysis.ordered_fraction(), 0.5);
  ASSERT_EQ(analysis.pairs.size(), 2u);
}

TEST(Scp, EmptyTraceYieldsNoPairs) {
  Trace trace;
  SimplePredicate sp0;
  sp0.process = ProcessId(0);
  const ScpAnalysis analysis = analyze_scp(trace, sp0, sp0);
  EXPECT_EQ(analysis.total_pairs(), 0u);
  EXPECT_DOUBLE_EQ(analysis.ordered_fraction(), 0.0);
}

TEST(Trace, TimelineRendersCausalOrder) {
  Trace trace;
  trace.record(event_at(ProcessId(1), 0, LocalEventKind::kUserEvent,
                        vc({0, 3})));
  trace.record(event_at(ProcessId(0), 0, LocalEventKind::kMessageSent,
                        vc({1, 0}), 42, ChannelId(0)));
  trace.record(event_at(ProcessId(1), 1, LocalEventKind::kMessageReceived,
                        vc({1, 4}), 42, ChannelId(0)));
  auto with_lamport = [&](LocalEvent event, std::uint64_t lamport) {
    event.lamport = lamport;
    return event;
  };
  Trace stamped;
  auto events = trace.events();
  stamped.record(with_lamport(events[0], 5));
  stamped.record(with_lamport(events[1], 1));
  stamped.record(with_lamport(events[2], 2));

  const std::string timeline = stamped.render_timeline();
  // Lamport order: the send (L1) precedes the receive (L2) precedes L5.
  const auto send_pos = timeline.find("send #42 -> p1");
  const auto recv_pos = timeline.find("recv #42 <- p0");
  const auto user_pos = timeline.find("[L5]");
  ASSERT_NE(send_pos, std::string::npos) << timeline;
  ASSERT_NE(recv_pos, std::string::npos) << timeline;
  ASSERT_NE(user_pos, std::string::npos) << timeline;
  EXPECT_LT(send_pos, recv_pos);
  EXPECT_LT(recv_pos, user_pos);
}

TEST(Trace, TimelineMarksUnreceivedAsInFlight) {
  Trace trace;
  auto event = event_at(ProcessId(0), 0, LocalEventKind::kMessageSent,
                        vc({1, 0}), 7, ChannelId(0));
  event.lamport = 1;
  trace.record(event);
  EXPECT_NE(trace.render_timeline().find("(in flight)"), std::string::npos);
}

TEST(Trace, TimelineTruncates) {
  Trace trace;
  for (std::uint64_t i = 0; i < 10; ++i) {
    auto event =
        event_at(ProcessId(0), i, LocalEventKind::kUserEvent, vc({i + 1}));
    event.lamport = i + 1;
    trace.record(event);
  }
  const std::string timeline = trace.render_timeline(3);
  EXPECT_NE(timeline.find("7 more events"), std::string::npos);
}

TEST(Stats, SummaryBasics) {
  const Summary s = summarize({4.0, 1.0, 3.0, 2.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

TEST(Stats, EmptySummary) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, SingleElement) {
  const Summary s = summarize({42.0});
  EXPECT_DOUBLE_EQ(s.min, 42.0);
  EXPECT_DOUBLE_EQ(s.p95, 42.0);
}

}  // namespace
}  // namespace ddbg
