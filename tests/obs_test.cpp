// Observability layer: MetricsRegistry unit tests, snapshot/JSON schema
// sanity, and counter parity — the same deterministic workload must
// produce the same traffic counters on the simulator, the threaded
// runtime and the TCP runtime.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/debug_shim.hpp"
#include "core/event.hpp"
#include "obs/metrics.hpp"
#include "runtime/runtime.hpp"
#include "runtime/tcp_runtime.hpp"
#include "sim/simulation.hpp"
#include "workload/behaviors.hpp"

namespace ddbg {
namespace {

constexpr Duration kWait = Duration::seconds(20);

// Traffic-class indices (pinned to MessageKind by a static_assert in
// net/transport_hooks.hpp).
constexpr std::uint8_t kApp = 0;
constexpr std::uint8_t kControl = 4;

obs::MetricsRegistry make_registry() {
  // Two processes, channel 0: 0 -> 1 (app), channel 1: 1 -> 0 (control).
  std::vector<obs::ChannelMeta> meta;
  meta.push_back(obs::ChannelMeta{0, 1, false});
  meta.push_back(obs::ChannelMeta{1, 0, true});
  return obs::MetricsRegistry("sim", 2, std::move(meta));
}

TEST(Metrics, CountersAccumulatePerChannelAndClass) {
  obs::MetricsRegistry registry = make_registry();
  registry.on_send(0, kApp, 10);
  registry.on_send(0, kApp, 14);
  registry.on_deliver(0, kApp, 10);
  registry.on_send(1, kControl, 7);
  registry.observe_backlog(0, 3);
  registry.observe_backlog(0, 1);
  registry.add_send_blocked(1, 500);
  registry.observe_queue_depth(1, 9);

  const obs::TotalsSnapshot totals = registry.totals();
  EXPECT_EQ(totals.sent[kApp], 2u);
  EXPECT_EQ(totals.sent[kControl], 1u);
  EXPECT_EQ(totals.delivered[kApp], 1u);
  EXPECT_EQ(totals.messages_sent, 3u);
  EXPECT_EQ(totals.messages_delivered, 1u);
  EXPECT_EQ(totals.bytes_sent, 31u);
  EXPECT_EQ(totals.bytes_delivered, 10u);

  const obs::MetricsSnapshot snap = registry.snapshot(TimePoint{1000});
  ASSERT_EQ(snap.channels.size(), 2u);
  EXPECT_EQ(snap.channels[0].sent[kApp], 2u);
  EXPECT_EQ(snap.channels[0].bytes_sent, 24u);
  EXPECT_EQ(snap.channels[0].max_backlog, 3u);
  EXPECT_FALSE(snap.channels[0].is_control);
  EXPECT_EQ(snap.channels[1].sent[kControl], 1u);
  EXPECT_EQ(snap.channels[1].send_blocked_ns, 500u);
  EXPECT_TRUE(snap.channels[1].is_control);

  // Per-process attribution: process 0 sent on channel 0 and received on
  // channel 1; process 1 the reverse.
  ASSERT_EQ(snap.processes.size(), 2u);
  EXPECT_EQ(snap.processes[0].sent[kApp], 2u);
  EXPECT_EQ(snap.processes[0].delivered[kControl], 0u);
  EXPECT_EQ(snap.processes[1].delivered[kApp], 1u);
  EXPECT_EQ(snap.processes[1].sent[kControl], 1u);
  EXPECT_EQ(snap.processes[1].max_queue_depth, 9u);
  EXPECT_EQ(snap.elapsed_ns, 1000);
}

TEST(Metrics, SpanLifecycle) {
  obs::MetricsRegistry registry = make_registry();
  registry.span_begin(obs::Span::kHaltWave, 1, TimePoint{100});
  registry.span_end(obs::Span::kHaltWave, 1, TimePoint{350});
  const obs::LatencyStat& stat = registry.span_stat(obs::Span::kHaltWave);
  EXPECT_EQ(stat.count(), 1u);
  EXPECT_EQ(stat.total_ns(), 250u);
  EXPECT_EQ(stat.min_ns(), 250u);
  EXPECT_EQ(stat.max_ns(), 250u);
}

TEST(Metrics, SpanEndWithoutBeginIsNoOp) {
  obs::MetricsRegistry registry = make_registry();
  registry.span_end(obs::Span::kArm, 42, TimePoint{500});
  EXPECT_EQ(registry.span_stat(obs::Span::kArm).count(), 0u);
}

TEST(Metrics, SpanEarliestBeginWins) {
  obs::MetricsRegistry registry = make_registry();
  registry.span_begin(obs::Span::kArm, 7, TimePoint{100});
  registry.span_begin(obs::Span::kArm, 7, TimePoint{900});  // ignored
  registry.span_end(obs::Span::kArm, 7, TimePoint{1100});
  const obs::LatencyStat& stat = registry.span_stat(obs::Span::kArm);
  EXPECT_EQ(stat.count(), 1u);
  EXPECT_EQ(stat.total_ns(), 1000u);
}

TEST(Metrics, EmptyLatencyStatReportsZeroMin) {
  obs::LatencyStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_EQ(stat.min_ns(), 0u);
  EXPECT_EQ(stat.max_ns(), 0u);
}

TEST(Metrics, SpanKeyPacksPair) {
  EXPECT_EQ(obs::MetricsRegistry::key(0, 0), 0u);
  EXPECT_EQ(obs::MetricsRegistry::key(1, 2), (1ULL << 32) | 2);
  EXPECT_NE(obs::MetricsRegistry::key(1, 2), obs::MetricsRegistry::key(2, 1));
}

TEST(Metrics, JsonSchemaStableAndWellFormed) {
  obs::MetricsRegistry registry = make_registry();
  registry.on_send(0, kApp, 12);
  registry.on_deliver(0, kApp, 12);
  registry.span_begin(obs::Span::kHaltWave, 1, TimePoint{0});
  registry.span_end(obs::Span::kHaltWave, 1, TimePoint{777});

  const std::string a = registry.snapshot(TimePoint{5000}).to_json();
  const std::string b = registry.snapshot(TimePoint{5000}).to_json();
  // Byte-identical for identical state: the schema promises stability.
  EXPECT_EQ(a, b);

  EXPECT_NE(a.find("\"schema\":\"ddbg.metrics.v1\""), std::string::npos);
  EXPECT_NE(a.find("\"runtime\":\"sim\""), std::string::npos);
  EXPECT_NE(a.find("\"elapsed_ns\":5000"), std::string::npos);
  EXPECT_NE(a.find("\"totals\":"), std::string::npos);
  EXPECT_NE(a.find("\"transport\":"), std::string::npos);
  EXPECT_NE(a.find("\"pool_hits\":"), std::string::npos);
  EXPECT_NE(a.find("\"deliver_batches\":"), std::string::npos);
  EXPECT_NE(a.find("\"write_batches\":"), std::string::npos);
  EXPECT_NE(a.find("\"processes\":["), std::string::npos);
  EXPECT_NE(a.find("\"channels\":["), std::string::npos);
  EXPECT_NE(a.find("\"latencies\":"), std::string::npos);
  EXPECT_NE(a.find("\"halt_wave\":"), std::string::npos);
  EXPECT_EQ(a.front(), '{');
  EXPECT_EQ(a.back(), '}');
  // Balanced braces and brackets (no nesting tricks in this schema).
  int braces = 0;
  int brackets = 0;
  for (const char c : a) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  // Integer-only schema: the only dots are the two in the schema string.
  EXPECT_EQ(std::count(a.begin(), a.end(), '.'), 2);
}

// ---------------------------------------------------------------------------
// Counter parity across runtimes.
//
// A token ring of n processes running r rounds sends exactly n*r
// application messages (token values 1..n*r, the last one retiring the
// token), whatever substrate executes it.  The observability layer must
// report the same counters from all three.
// ---------------------------------------------------------------------------

constexpr std::uint32_t kRingSize = 4;
constexpr std::uint32_t kRounds = 5;
constexpr std::uint64_t kExpectedTokens = kRingSize * kRounds;

TokenRingConfig ring_config() {
  TokenRingConfig config;
  config.rounds = kRounds;
  config.hop_delay = Duration::millis(1);
  return config;
}

std::uint64_t total_tokens(const std::vector<TokenRingProcess*>& procs) {
  std::uint64_t total = 0;
  for (const TokenRingProcess* p : procs) total += p->tokens_seen();
  return total;
}

// Collects raw pointers before the ProcessPtrs are moved into a runtime.
std::vector<TokenRingProcess*> ring_pointers(
    const std::vector<ProcessPtr>& processes) {
  std::vector<TokenRingProcess*> pointers;
  for (const auto& p : processes) {
    pointers.push_back(dynamic_cast<TokenRingProcess*>(p.get()));
  }
  return pointers;
}

void check_ring_totals(const obs::MetricsSnapshot& snap) {
  std::uint64_t app_sent = 0;
  std::uint64_t app_delivered = 0;
  std::uint64_t other = 0;
  for (std::size_t cls = 0; cls < obs::kNumTrafficClasses; ++cls) {
    if (cls == kApp) {
      app_sent = snap.totals.sent[cls];
      app_delivered = snap.totals.delivered[cls];
    } else {
      other += snap.totals.sent[cls] + snap.totals.delivered[cls];
    }
  }
  EXPECT_EQ(app_sent, kExpectedTokens);
  EXPECT_EQ(app_delivered, kExpectedTokens);
  EXPECT_EQ(other, 0u) << "plain workload must have no marker/control traffic";
  EXPECT_EQ(snap.totals.bytes_sent, snap.totals.bytes_delivered);
  EXPECT_EQ(snap.processes.size(), kRingSize);
  // Each ring process forwards kRounds tokens (p0's first launch included).
  for (const auto& process : snap.processes) {
    EXPECT_EQ(process.sent[kApp], kRounds);
    EXPECT_EQ(process.delivered[kApp], kRounds);
  }
}

obs::MetricsSnapshot run_ring_sim() {
  Simulation sim(Topology::ring(kRingSize),
                 make_token_ring(kRingSize, ring_config()));
  sim.run_for(Duration::seconds(2));
  return sim.metrics().snapshot(sim.now());
}

obs::MetricsSnapshot run_ring_threads() {
  auto processes = make_token_ring(kRingSize, ring_config());
  const auto pointers = ring_pointers(processes);
  Runtime runtime(Topology::ring(kRingSize), std::move(processes));
  runtime.start();
  EXPECT_TRUE(Runtime::wait_until(
      [&] { return total_tokens(pointers) == kExpectedTokens; }, kWait));
  runtime.shutdown();
  return runtime.metrics().snapshot(runtime.now());
}

obs::MetricsSnapshot run_ring_tcp() {
  auto processes = make_token_ring(kRingSize, ring_config());
  const auto pointers = ring_pointers(processes);
  TcpRuntime runtime(Topology::ring(kRingSize), std::move(processes));
  EXPECT_TRUE(runtime.start());
  EXPECT_TRUE(TcpRuntime::wait_until(
      [&] { return total_tokens(pointers) == kExpectedTokens; }, kWait));
  runtime.shutdown();
  return runtime.metrics().snapshot(runtime.now());
}

TEST(MetricsParity, SimTokenRingCounters) { check_ring_totals(run_ring_sim()); }

TEST(MetricsParity, RuntimeTokenRingCounters) {
  check_ring_totals(run_ring_threads());
}

TEST(MetricsParity, TcpRuntimeTokenRingCounters) {
  check_ring_totals(run_ring_tcp());
}

TEST(MetricsParity, IdenticalWorkloadIdenticalBytesAcrossRuntimes) {
  const obs::MetricsSnapshot sim = run_ring_sim();
  const obs::MetricsSnapshot threads = run_ring_threads();
  const obs::MetricsSnapshot tcp = run_ring_tcp();
  // All three account message bytes as the encoded message size (the TCP
  // runtime excludes its 4-byte frame prefix), so byte counters agree
  // exactly, not just message counts.
  EXPECT_EQ(sim.totals.bytes_sent, threads.totals.bytes_sent);
  EXPECT_EQ(sim.totals.bytes_sent, tcp.totals.bytes_sent);
  EXPECT_EQ(sim.totals.messages_sent, threads.totals.messages_sent);
  EXPECT_EQ(sim.totals.messages_sent, tcp.totals.messages_sent);
  EXPECT_EQ(sim.runtime, "sim");
  EXPECT_EQ(threads.runtime, "threads");
  EXPECT_EQ(tcp.runtime, "tcp");
}

// Hot-path transport counters (pool + batching) must be populated by all
// three runtimes and obey the same invariants: one pooled acquire per send
// (misses bounded by warmup), batch-message totals equal to deliveries.
void check_ring_transport(const obs::MetricsSnapshot& snap,
                          bool has_write_path) {
  const obs::TransportSnapshot& t = snap.transport;
  // Every send encodes through exactly one pooled buffer.
  EXPECT_EQ(t.pool_hits + t.pool_misses, snap.totals.messages_sent);
  EXPECT_GT(t.pool_hits, 0u);
  // Cold misses only: at most one buffer per worker pool warms up (the
  // sim has a single pool and shows exactly one).
  EXPECT_LE(t.pool_misses, kRingSize);
  // Batched delivery accounts for every delivered message exactly once.
  EXPECT_EQ(t.deliver_batch_messages, snap.totals.messages_delivered);
  EXPECT_GT(t.deliver_batches, 0u);
  EXPECT_GE(t.max_deliver_batch, 1u);
  if (has_write_path) {
    // The TCP runtime flushes every frame through a gathered write.
    EXPECT_EQ(t.write_batch_frames, snap.totals.messages_sent);
    EXPECT_GT(t.write_batches, 0u);
    EXPECT_GE(t.max_write_batch, 1u);
  } else {
    // In-memory delivery: no socket write path, counters stay zero.
    EXPECT_EQ(t.write_batches, 0u);
    EXPECT_EQ(t.write_batch_frames, 0u);
    EXPECT_EQ(t.max_write_batch, 0u);
  }
}

TEST(MetricsParity, SimTransportCounters) {
  check_ring_transport(run_ring_sim(), /*has_write_path=*/false);
}

TEST(MetricsParity, RuntimeTransportCounters) {
  check_ring_transport(run_ring_threads(), /*has_write_path=*/false);
}

TEST(MetricsParity, TcpRuntimeTransportCounters) {
  check_ring_transport(run_ring_tcp(), /*has_write_path=*/true);
}

// The TransportStats compatibility view must agree with the registry it is
// derived from.
TEST(MetricsParity, TransportStatsViewMatchesRegistry) {
  Simulation sim(Topology::ring(kRingSize),
                 make_token_ring(kRingSize, ring_config()));
  sim.run_for(Duration::seconds(2));
  const TransportStats stats = sim.stats();
  const obs::TotalsSnapshot totals = sim.metrics().totals();
  EXPECT_EQ(stats.messages_sent, totals.messages_sent);
  EXPECT_EQ(stats.bytes_sent, totals.bytes_sent);
  EXPECT_EQ(stats.app_messages_sent, totals.sent[kApp]);
  EXPECT_EQ(stats.messages_sent, kExpectedTokens);
}

// ---------------------------------------------------------------------------
// Golden outputs
// ---------------------------------------------------------------------------

// Byte-for-byte pins of the trace and the ddbg.metrics.v1 JSON for a tiny
// fixed run.  This is the regression tripwire for any ordering leak — an
// unordered container iterated into a trace, a metrics field emitted in
// hash order, or the parallel engine replaying effects out of sequence
// changes these literal bytes.
TEST(MetricsGolden, TinyTokenRingTraceAndJsonArePinned) {
  constexpr const char* kGoldenTrace =
      "p0/process_started @L1 seq0\n"
      "p0/channel_created on c0 @L2 seq1\n"
      "p1/process_started @L1 seq0\n"
      "p1/channel_created on c1 @L2 seq1\n"
      "p0/procedure_entered(forward_token) @L3 seq2\n"
      "p0/message_sent on c0 @L4 seq3\n"
      "p1/message_received on c0 @L5 seq2\n"
      "p1/user_event(token)=1 @L6 seq3\n"
      "p1/state_change(tokens_seen)=1 @L7 seq4\n"
      "p1/procedure_entered(forward_token) @L8 seq5\n"
      "p1/message_sent on c1 @L9 seq6\n"
      "p0/message_received on c1 @L10 seq4\n"
      "p0/user_event(token)=2 @L11 seq5\n"
      "p0/state_change(tokens_seen)=1 @L12 seq6\n"
      "p0/user_event(token_retired)=2 @L13 seq7\n"
      "p0/process_terminated @L14 seq8\n";
  constexpr const char* kGoldenJson =
      R"({"schema":"ddbg.metrics.v1","runtime":"sim","elapsed_ns":4000000,)"
      R"("totals":{"messages_sent":2,"messages_delivered":2,"bytes_sent":45,)"
      R"("bytes_delivered":45,"sent":{"app":2,"halt_marker":0,)"
      R"("snapshot_marker":0,"predicate_marker":0,"control":0},"delivered":{)"
      R"("app":2,"halt_marker":0,"snapshot_marker":0,"predicate_marker":0,)"
      R"("control":0}},"transport":{"pool_hits":1,"pool_misses":1,)"
      R"("deliver_batches":2,"deliver_batch_messages":2,"max_deliver_batch":1,)"
      R"("write_batches":0,"write_batch_frames":0,"max_write_batch":0,)"
      R"("epoll_wakeups":0,"frames_per_wakeup_max":0,"eagain_deferrals":0,)"
      R"("mux_channels_per_socket":0,)"
      R"("faults_injected":{"drop":0,"duplicate":0,"reorder":0,"delay":0,)"
      R"("partition":0,"reset":0},"retransmits":0,"dup_suppressed":0,)"
      R"("reconnects":0,"resync_replayed":0,"channel_down":0},"tier":{)"
      R"("tree_fanout":0,"acks_aggregated":0,"markers_suppressed":0},)"
      R"("session":{"opened":0,"closed":0,"active_peak":0,"requests":0,)"
      R"("request_errors":0,"halts_handed_off":0,"halts_released":0},)"
      R"("replay":{"records_logged":0,"deliveries_logged":0,)"
      R"("timer_sets_logged":0,"timer_fires_logged":0,"cuts_logged":0,)"
      R"("annotations_logged":0,"log_bytes":0,"deliveries_replayed":0,)"
      R"("timers_replayed":0,"cuts_replayed":0,"divergences":0},)"
      R"("processes":[{)"
      R"("id":0,"bytes_sent":22,"bytes_delivered":23,"max_queue_depth":0,)"
      R"("sent":{"app":1,"halt_marker":0,"snapshot_marker":0,)"
      R"("predicate_marker":0,"control":0},"delivered":{"app":1,)"
      R"("halt_marker":0,"snapshot_marker":0,"predicate_marker":0,)"
      R"("control":0}},{"id":1,"bytes_sent":23,"bytes_delivered":22,)"
      R"("max_queue_depth":0,"sent":{"app":1,"halt_marker":0,)"
      R"("snapshot_marker":0,"predicate_marker":0,"control":0},"delivered":{)"
      R"("app":1,"halt_marker":0,"snapshot_marker":0,"predicate_marker":0,)"
      R"("control":0}}],"channels":[{"id":0,"source":0,"destination":1,)"
      R"("control":false,"bytes_sent":22,"bytes_delivered":22,)"
      R"("send_blocked_ns":0,"max_backlog":1,"sent":{"app":1,)"
      R"("halt_marker":0,"snapshot_marker":0,"predicate_marker":0,)"
      R"("control":0},"delivered":{"app":1,"halt_marker":0,)"
      R"("snapshot_marker":0,"predicate_marker":0,"control":0}},{"id":1,)"
      R"("source":1,"destination":0,"control":false,"bytes_sent":23,)"
      R"("bytes_delivered":23,"send_blocked_ns":0,"max_backlog":1,"sent":{)"
      R"("app":1,"halt_marker":0,"snapshot_marker":0,"predicate_marker":0,)"
      R"("control":0},"delivered":{"app":1,"halt_marker":0,)"
      R"("snapshot_marker":0,"predicate_marker":0,"control":0}}],)"
      R"("latencies":{"halt_wave":{"count":0,"total_ns":0,"min_ns":0,)"
      R"("max_ns":0},"snapshot_wave":{"count":0,"total_ns":0,"min_ns":0,)"
      R"("max_ns":0},"breakpoint_notify":{"count":0,"total_ns":0,"min_ns":0,)"
      R"("max_ns":0},"arm":{"count":0,"total_ns":0,"min_ns":0,"max_ns":0}}})";

  for (const std::uint32_t workers : {1u, 2u}) {
    std::ostringstream trace;
    DebugShim::Options options;
    options.trace_sink = [&trace](const LocalEvent& event) {
      trace << event.describe() << "\n";
    };
    Topology topology = Topology::ring(2);
    std::vector<ProcessPtr> users;
    for (int i = 0; i < 2; ++i) {
      TokenRingConfig token_config;
      token_config.rounds = 1;
      users.push_back(std::make_unique<TokenRingProcess>(token_config));
    }
    SimulationConfig config;
    config.seed = 1;
    config.latency = constant_latency(Duration::millis(1));
    config.workers = workers;
    Simulation sim(topology, wrap_in_shims(topology, std::move(users), options),
                   std::move(config));
    ASSERT_TRUE(sim.run_until_quiescent());
    EXPECT_EQ(trace.str(), kGoldenTrace) << "workers=" << workers;
    EXPECT_EQ(sim.metrics().snapshot(sim.now()).to_json(), kGoldenJson)
        << "workers=" << workers;
  }
}

}  // namespace
}  // namespace ddbg
