// Unit tests for the comparison baselines: central-hub rerouting and the
// naive out-of-band halt.
#include <gtest/gtest.h>

#include "analysis/consistency.hpp"
#include "baselines/central_hub.hpp"
#include "baselines/naive_halt.hpp"
#include "sim/simulation.hpp"
#include "workload/behaviors.hpp"

namespace ddbg {
namespace {

TEST(CentralHub, TopologyHasHubChannels) {
  const HubTopology info = make_hub_topology(Topology::ring(3));
  EXPECT_EQ(info.topology.num_processes(), 4u);
  EXPECT_EQ(info.hub, ProcessId(3));
  EXPECT_EQ(info.to_hub.size(), 3u);
  EXPECT_EQ(info.from_hub.size(), 3u);
  // ring channels + 2 hub channels per process
  EXPECT_EQ(info.topology.num_channels(), 3u + 6u);
  EXPECT_EQ(info.user_topology.num_channels(), 3u);
}

TEST(CentralHub, MessagesFlowThroughHub) {
  const HubTopology info = make_hub_topology(Topology::ring(3));
  TokenRingConfig ring_config;
  ring_config.rounds = 4;
  Simulation sim(info.topology,
                 wrap_for_hub(info, make_token_ring(3, ring_config)));
  EXPECT_TRUE(sim.run_until_quiescent());
  // The application behaves identically: all processes saw 4 tokens.
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_NE(sim.process(ProcessId(i)).describe_state().find(
                  "tokens_seen=4"),
              std::string::npos)
        << "p" << i;
  }
  const auto& hub = dynamic_cast<HubRouterProcess&>(sim.process(info.hub));
  EXPECT_EQ(hub.forwarded(), 12u);  // every token hop crossed the hub
  // Exactly double the wire messages of the direct run.
  EXPECT_EQ(sim.stats().messages_sent, 24u);
}

TEST(CentralHub, DoublesMessageCountVsDirect) {
  GossipConfig gossip;
  gossip.max_sends = 10;

  std::uint64_t direct_messages = 0;
  {
    Simulation sim(Topology::ring(4), make_gossip(4, gossip));
    sim.run_until_quiescent();
    direct_messages = sim.stats().messages_sent;
  }
  const HubTopology info = make_hub_topology(Topology::ring(4));
  Simulation sim(info.topology, wrap_for_hub(info, make_gossip(4, gossip)));
  sim.run_until_quiescent();
  EXPECT_EQ(sim.stats().messages_sent, 2 * direct_messages);
}

TEST(CentralHub, UserSeesOriginalTopology) {
  const HubTopology info = make_hub_topology(Topology::ring(3));
  auto seen = std::make_shared<std::vector<std::size_t>>();
  class TopologyChecker final : public Process {
   public:
    explicit TopologyChecker(std::shared_ptr<std::vector<std::size_t>> out)
        : out_(std::move(out)) {}
    void on_start(ProcessContext& ctx) override {
      out_->push_back(ctx.topology().num_channels());
    }
    void on_message(ProcessContext&, ChannelId, Message) override {}

   private:
    std::shared_ptr<std::vector<std::size_t>> out_;
  };
  std::vector<ProcessPtr> users;
  for (int i = 0; i < 3; ++i) {
    users.push_back(std::make_unique<TopologyChecker>(seen));
  }
  Simulation sim(info.topology, wrap_for_hub(info, std::move(users)));
  sim.run_until_quiescent();
  // Each user saw the original 3-channel ring, not the 9-channel hub graph.
  ASSERT_EQ(seen->size(), 3u);
  for (const std::size_t channels : *seen) EXPECT_EQ(channels, 3u);
}

TEST(NaiveHalt, FreezeStopsExecutionAndDropsArrivals) {
  Topology topology(2);
  topology.add_channel(ProcessId(0), ProcessId(1));
  topology.add_channel(ProcessId(1), ProcessId(0));

  GossipConfig gossip;
  std::vector<ProcessPtr> shims = wrap_in_naive_shims(
      topology, make_gossip(2, gossip), NaiveHaltShim::Options{});
  Simulation sim(topology, std::move(shims));
  sim.run_for(Duration::millis(20));

  sim.post(ProcessId(1), [](ProcessContext& ctx, Process& process) {
    dynamic_cast<NaiveHaltShim&>(process).halt_now(ctx);
  });
  sim.run_for(Duration::millis(1));
  auto& frozen = dynamic_cast<NaiveHaltShim&>(sim.process(ProcessId(1)));
  ASSERT_TRUE(frozen.halted());
  const std::string state_at_halt = frozen.snapshot().description;

  // p0 keeps sending into the frozen process: arrivals are dropped.
  sim.run_for(Duration::millis(30));
  EXPECT_GT(frozen.dropped_messages(), 0u);
  EXPECT_EQ(frozen.describe_state(), state_at_halt);  // truly frozen
}

TEST(NaiveHalt, SnapshotCapturesClockAndState) {
  Topology topology(2);
  topology.add_channel(ProcessId(0), ProcessId(1));
  topology.add_channel(ProcessId(1), ProcessId(0));
  Trace trace;
  NaiveHaltShim::Options options;
  options.trace_sink = trace.sink();
  GossipConfig gossip;
  std::vector<ProcessPtr> shims =
      wrap_in_naive_shims(topology, make_gossip(2, gossip), options);
  Simulation sim(topology, std::move(shims));
  sim.run_for(Duration::millis(20));
  for (std::uint32_t i = 0; i < 2; ++i) {
    sim.post(ProcessId(i), [](ProcessContext& ctx, Process& process) {
      dynamic_cast<NaiveHaltShim&>(process).halt_now(ctx);
    });
  }
  sim.run_for(Duration::millis(1));

  GlobalState state{HaltId(1)};
  for (std::uint32_t i = 0; i < 2; ++i) {
    state.add(
        dynamic_cast<NaiveHaltShim&>(sim.process(ProcessId(i))).snapshot());
  }
  // Simultaneous real-time freeze: the cut of process states is consistent…
  EXPECT_TRUE(consistent_cut(state));
  // …but nothing was recorded for the channels.
  EXPECT_EQ(state.total_channel_messages(), 0u);
  EXPECT_GT(trace.size(), 0u);
}

TEST(NaiveHalt, HaltNowIsIdempotent) {
  Topology topology(2);
  topology.add_channel(ProcessId(0), ProcessId(1));
  GossipConfig gossip;
  std::vector<ProcessPtr> shims = wrap_in_naive_shims(
      topology, make_gossip(2, gossip), NaiveHaltShim::Options{});
  Simulation sim(topology, std::move(shims));
  sim.run_for(Duration::millis(5));
  for (int repeat = 0; repeat < 2; ++repeat) {
    sim.post(ProcessId(0), [](ProcessContext& ctx, Process& process) {
      dynamic_cast<NaiveHaltShim&>(process).halt_now(ctx);
    });
  }
  sim.run_for(Duration::millis(1));
  EXPECT_TRUE(
      dynamic_cast<NaiveHaltShim&>(sim.process(ProcessId(0))).halted());
}

}  // namespace
}  // namespace ddbg
