// Control-socket session server: protocol round trips, multi-session
// isolation, and the halt-ownership teardown contract (a client dying
// mid-halt must never leave the target halted forever).
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "debugger/harness.hpp"
#include "debugger/port_file.hpp"
#include "debugger/session_client.hpp"
#include "debugger/session_protocol.hpp"
#include "debugger/session_repl.hpp"
#include "debugger/session_server.hpp"
#include "workload/behaviors.hpp"
#include "workload/resources.hpp"

namespace ddbg {
namespace {

constexpr Duration kWait = Duration::seconds(10);

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

TEST(SessionProtocol, RequestRoundTrip) {
  SessionRequest request;
  request.req_id = 42;
  request.op = SessionOp::kBreak;
  request.text = "p0:event(token) -> p2:recv";
  request.number = -7;

  ByteWriter writer;
  request.encode(writer);
  const Bytes wire = std::move(writer).take();

  auto decoded = SessionRequest::decode(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(decoded.value().req_id, 42u);
  EXPECT_EQ(decoded.value().op, SessionOp::kBreak);
  EXPECT_EQ(decoded.value().text, request.text);
  EXPECT_EQ(decoded.value().number, -7);
}

TEST(SessionProtocol, ResponseRoundTripAndErrorCodes) {
  SessionResponse ok = SessionResponse::success(7, "done", 3, {1, 2, 3});
  ByteWriter writer;
  ok.encode(writer);
  auto decoded = SessionResponse::decode(std::move(writer).take());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().ok());
  EXPECT_EQ(decoded.value().text, "done");
  EXPECT_EQ(decoded.value().payload, (Bytes{1, 2, 3}));

  SessionResponse failed = SessionResponse::failure(
      8, Error(ErrorCode::kTimeout, "too slow"));
  EXPECT_FALSE(failed.ok());
  ASSERT_TRUE(failed.error_code().has_value());
  EXPECT_EQ(*failed.error_code(), ErrorCode::kTimeout);
}

TEST(SessionProtocol, UnknownOpRejected) {
  ByteWriter writer;
  writer.u64(1);
  writer.u8(200);  // far past kQuit
  writer.str("");
  writer.i64(0);
  auto decoded = SessionRequest::decode(std::move(writer).take());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code(), ErrorCode::kParseError);
}

// ---------------------------------------------------------------------------
// REPL command parser
// ---------------------------------------------------------------------------

TEST(SessionRepl, ParsesCommandsAndOperands) {
  auto brk = parse_repl_line("  break p0:recv -> p1:recv  ");
  ASSERT_TRUE(brk.ok());
  EXPECT_EQ(brk.value().op, SessionOp::kBreak);
  EXPECT_EQ(brk.value().text, "p0:recv -> p1:recv");

  auto inspect = parse_repl_line("inspect p3");
  ASSERT_TRUE(inspect.ok());
  EXPECT_EQ(inspect.value().op, SessionOp::kInspect);
  EXPECT_EQ(inspect.value().number, 3);

  auto clear = parse_repl_line("clear 2");
  ASSERT_TRUE(clear.ok());
  EXPECT_EQ(clear.value().op, SessionOp::kClear);
  EXPECT_EQ(clear.value().number, 2);

  auto comment = parse_repl_line("# a comment");
  ASSERT_TRUE(comment.ok());
  EXPECT_EQ(comment.value().kind, ReplLine::Kind::kEmpty);

  auto expect = parse_repl_line("expect no deadlock");
  ASSERT_TRUE(expect.ok());
  EXPECT_EQ(expect.value().kind, ReplLine::Kind::kExpect);
  EXPECT_EQ(expect.value().text, "no deadlock");
}

TEST(SessionRepl, RejectsMalformedLines) {
  EXPECT_FALSE(parse_repl_line("break").ok());
  EXPECT_FALSE(parse_repl_line("clear zero").ok());
  EXPECT_FALSE(parse_repl_line("inspect").ok());
  EXPECT_FALSE(parse_repl_line("halt now").ok());
  EXPECT_FALSE(parse_repl_line("frobnicate").ok());
  EXPECT_FALSE(parse_repl_line("clear 99999999999999999999").ok());
}

// ---------------------------------------------------------------------------
// set_breakpoint error discrimination (satellite bugfix)
// ---------------------------------------------------------------------------

// A host that drops every post: the debugger never acknowledges the arm,
// so the Result must be kTimeout — not the old kInvalidArgument conflation.
class DroppingHost final : public SessionHost {
 public:
  void post(ProcessId,
            std::function<void(ProcessContext&, Process&)>) override {}
  bool wait(const std::function<bool()>& condition, Duration) override {
    return condition();  // never becomes true; report expiry immediately
  }
};

TEST(SessionErrors, ParseFailureIsParseErrorWithColumn) {
  SimDebugHarness harness(Topology::ring(3), make_token_ring(3, {}));
  auto result = harness.session().set_breakpoint("p0:@bad");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kParseError);
  EXPECT_NE(result.error().message().find("syntax error at column"),
            std::string::npos)
      << result.error().message();
}

TEST(SessionErrors, ArmTimeoutIsTimeout) {
  SimDebugHarness harness(Topology::ring(3), make_token_ring(3, {}));
  DroppingHost dropping;
  DebuggerSession session(dropping, harness.debugger(),
                          harness.debugger_id());
  auto result = session.set_breakpoint("p0:recv", Duration::millis(50));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kTimeout);
  EXPECT_NE(result.error().message().find("did not ack arm"),
            std::string::npos)
      << result.error().message();
}

TEST(SessionErrors, UnknownProcessIsInvalidArgument) {
  SimDebugHarness harness(Topology::ring(3), make_token_ring(3, {}));
  auto result = harness.session().set_breakpoint("p9:recv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// End-to-end over TCP
// ---------------------------------------------------------------------------

struct TcpTarget {
  explicit TcpTarget(std::uint32_t n = 4, std::uint32_t fanout = 0)
      : harness(Topology::ring(n), make_token_ring(n, ring_config()),
                make_harness_config(fanout)),
        host(harness.tcp()),
        server(host, harness.debugger(), harness.debugger_id(),
               &harness.tcp().metrics(),
               SessionServerConfig{.command_timeout = Duration::seconds(5),
                                   .num_user_processes = n}) {
    server.set_metrics_json_source([this] {
      return harness.tcp().metrics().snapshot(harness.tcp().now()).to_json();
    });
    harness.tcp().set_control_acceptor(server.acceptor());
  }

  ~TcpTarget() {
    server.stop();
    harness.shutdown();
  }

  static TokenRingConfig ring_config() {
    TokenRingConfig config;
    config.rounds = 1'000'000;
    config.hop_delay = Duration::millis(1);
    return config;
  }

  static HarnessConfig make_harness_config(std::uint32_t fanout) {
    HarnessConfig config;
    config.seed = 1;
    config.debugger_fanout = fanout;
    return config;
  }

  [[nodiscard]] bool start() { return harness.start(); }
  [[nodiscard]] std::uint16_t port() {
    return harness.tcp().control_port();
  }

  TcpDebugHarness harness;
  TcpHost host;
  SessionServer server;
};

TEST(SessionServerTcp, FullCommandCycle) {
  TcpTarget target;
  ASSERT_TRUE(target.start());
  ASSERT_NE(target.port(), 0);

  SessionClient client;
  ASSERT_TRUE(client.connect(target.port()).ok());

  auto hello = client.call(SessionOp::kHello, "test");
  ASSERT_TRUE(hello.ok());
  ASSERT_TRUE(hello.value().ok());
  EXPECT_EQ(hello.value().number, 1);  // first session

  auto brk = client.call(SessionOp::kBreak, "p1:sent>=5");
  ASSERT_TRUE(brk.ok());
  ASSERT_TRUE(brk.value().ok()) << brk.value().text;
  EXPECT_GT(brk.value().number, 0);

  auto bad = client.call(SessionOp::kBreak, "p0:@");
  ASSERT_TRUE(bad.ok());
  ASSERT_FALSE(bad.value().ok());
  EXPECT_EQ(*bad.value().error_code(), ErrorCode::kParseError);
  EXPECT_NE(bad.value().text.find("column"), std::string::npos);

  // state before any halt: a clean precondition failure, not a hang.
  auto early = client.call(SessionOp::kState);
  ASSERT_TRUE(early.ok());
  ASSERT_FALSE(early.value().ok());
  EXPECT_EQ(*early.value().error_code(), ErrorCode::kFailedPrecondition);

  auto halt = client.call(SessionOp::kHalt);
  ASSERT_TRUE(halt.ok());
  ASSERT_TRUE(halt.value().ok()) << halt.value().text;
  EXPECT_GT(halt.value().number, 0);
  EXPECT_EQ(target.server.halt_owner(), 1u);

  auto state = client.call(SessionOp::kState);
  ASSERT_TRUE(state.ok());
  ASSERT_TRUE(state.value().ok()) << state.value().text;
  // Payload: varint count + one ProcessSnapshot per user process.
  ByteReader reader(state.value().payload);
  auto count = reader.varint();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 4u);
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    auto snapshot = ProcessSnapshot::decode(reader);
    ASSERT_TRUE(snapshot.ok()) << snapshot.error().to_string();
  }

  // The deadlock verdict is a successful command on any workload; a lively
  // token ring reports "no deadlock" (number 0) rather than an error.
  auto deadlock = client.call(SessionOp::kDeadlock);
  ASSERT_TRUE(deadlock.ok());
  ASSERT_TRUE(deadlock.value().ok()) << deadlock.value().text;
  EXPECT_EQ(deadlock.value().number, 0) << deadlock.value().text;
  EXPECT_NE(deadlock.value().text.find("no deadlock"), std::string::npos);

  auto inspect = client.call(SessionOp::kInspect, "", 2);
  ASSERT_TRUE(inspect.ok());
  ASSERT_TRUE(inspect.value().ok()) << inspect.value().text;

  auto outside = client.call(SessionOp::kInspect, "", 99);
  ASSERT_TRUE(outside.ok());
  ASSERT_FALSE(outside.value().ok());
  EXPECT_EQ(*outside.value().error_code(), ErrorCode::kInvalidArgument);

  auto metrics = client.call(SessionOp::kMetrics);
  ASSERT_TRUE(metrics.ok());
  ASSERT_TRUE(metrics.value().ok());
  EXPECT_NE(metrics.value().text.find("\"ddbg.metrics.v1\""),
            std::string::npos);
  EXPECT_NE(metrics.value().text.find("\"session\":{\"opened\":1"),
            std::string::npos);

  auto resume = client.call(SessionOp::kResume);
  ASSERT_TRUE(resume.ok());
  ASSERT_TRUE(resume.value().ok());
  EXPECT_EQ(target.server.halt_owner(), 0u);

  auto quit = client.call(SessionOp::kQuit);
  ASSERT_TRUE(quit.ok());
  EXPECT_TRUE(quit.value().ok());

  EXPECT_TRUE(TcpRuntime::wait_until(
      [&] { return target.server.active_sessions() == 0; }, kWait));
}

TEST(SessionServerTcp, DeadlockVerdictOnResourceRing) {
  const std::uint32_t n = 3;
  // Real threads do not tick in lockstep, so widen the hold-own window far
  // past startup skew: every process sits on its own resource before
  // requesting the successor's, and the circular wait closes on the first
  // acquisition cycle.
  ResourceRingConfig rcfg;
  rcfg.acquire_delay = Duration::millis(30);
  HarnessConfig hcfg;
  TcpDebugHarness harness(resource_ring_topology(n),
                          make_resource_ring(n, rcfg), std::move(hcfg));
  TcpHost host(harness.tcp());
  SessionServer server(host, harness.debugger(), harness.debugger_id(),
                       &harness.tcp().metrics(),
                       SessionServerConfig{.num_user_processes = n});
  harness.tcp().set_control_acceptor(server.acceptor());
  ASSERT_TRUE(harness.start());

  SessionClient client;
  ASSERT_TRUE(client.connect(harness.tcp().control_port()).ok());

  // Let every process grab its own resource and send its (delayed)
  // request, then halt and analyze.  Retry: a halt can still land inside
  // the startup transient.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  bool deadlocked = false;
  for (int attempt = 0; attempt < 20 && !deadlocked; ++attempt) {
    auto halt = client.call(SessionOp::kHalt);
    ASSERT_TRUE(halt.ok());
    ASSERT_TRUE(halt.value().ok()) << halt.value().text;
    auto verdict = client.call(SessionOp::kDeadlock);
    ASSERT_TRUE(verdict.ok());
    ASSERT_TRUE(verdict.value().ok()) << verdict.value().text;
    if (verdict.value().number == 1) {
      deadlocked = true;
      EXPECT_NE(verdict.value().text.find("DEADLOCK"), std::string::npos);
    } else {
      auto resume = client.call(SessionOp::kResume);
      ASSERT_TRUE(resume.ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  EXPECT_TRUE(deadlocked);

  server.stop();
  harness.shutdown();
}

TEST(SessionServerTcp, FourConcurrentSessionsAreIsolated) {
  TcpTarget target(5);
  ASSERT_TRUE(target.start());

  constexpr int kClients = 4;
  SessionClient clients[kClients];
  for (auto& client : clients) {
    ASSERT_TRUE(client.connect(target.port()).ok());
    auto hello = client.call(SessionOp::kHello);
    ASSERT_TRUE(hello.ok());
    ASSERT_TRUE(hello.value().ok());
  }
  EXPECT_EQ(target.server.active_sessions(), 4u);

  // Interleave requests across all sessions from one thread; each session
  // must answer with its own req_id stream intact.
  std::vector<std::int64_t> breakpoint_ids;
  for (int i = 0; i < kClients; ++i) {
    auto brk = clients[i].call(
        SessionOp::kBreak, "p" + std::to_string(i) + ":sent>=1000");
    ASSERT_TRUE(brk.ok());
    ASSERT_TRUE(brk.value().ok()) << brk.value().text;
    breakpoint_ids.push_back(brk.value().number);
  }
  // Distinct breakpoints — the sessions share the debugger but not state.
  for (int i = 0; i < kClients; ++i) {
    for (int j = i + 1; j < kClients; ++j) {
      EXPECT_NE(breakpoint_ids[i], breakpoint_ids[j]);
    }
  }

  // One session halts; the others can read the same S_h.
  auto halt = clients[0].call(SessionOp::kHalt);
  ASSERT_TRUE(halt.ok());
  ASSERT_TRUE(halt.value().ok());
  for (int i = 1; i < kClients; ++i) {
    auto state = clients[i].call(SessionOp::kState);
    ASSERT_TRUE(state.ok());
    ASSERT_TRUE(state.value().ok()) << state.value().text;
  }
  auto resume = clients[0].call(SessionOp::kResume);
  ASSERT_TRUE(resume.ok());

  for (auto& client : clients) {
    auto quit = client.call(SessionOp::kQuit);
    ASSERT_TRUE(quit.ok());
  }
  EXPECT_TRUE(TcpRuntime::wait_until(
      [&] { return target.server.active_sessions() == 0; }, kWait));
  EXPECT_EQ(target.server.sessions_served(), 4u);
}

// A resume arriving while another session's halt wave is still
// propagating would strand that wave incomplete; the server serializes
// the wave-mutating ops, so a storm of concurrent halt/resume cycles
// from many sessions must all succeed.
TEST(SessionServerTcp, ConcurrentHaltResumeStormSerializes) {
  TcpTarget target(6);
  ASSERT_TRUE(target.start());

  constexpr int kClients = 4;
  constexpr int kCycles = 3;
  std::vector<std::thread> threads;
  std::mutex failures_mutex;
  std::vector<std::string> failures;
  const auto fail = [&](std::string what) {
    std::lock_guard<std::mutex> guard{failures_mutex};
    failures.push_back(std::move(what));
  };
  const auto check = [&](const char* op,
                         const Result<SessionResponse>& result) {
    if (!result.ok()) {
      fail(std::string(op) + ": " + result.error().to_string());
      return false;
    }
    if (!result.value().ok()) {
      fail(std::string(op) + ": " + result.value().text);
      return false;
    }
    return true;
  };
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&target, &fail, &check] {
      SessionClient client;
      if (auto status = client.connect(target.port()); !status.ok()) {
        fail("connect: " + status.error().to_string());
        return;
      }
      for (int cycle = 0; cycle < kCycles; ++cycle) {
        if (!check("halt", client.call(SessionOp::kHalt))) return;
        if (!check("state", client.call(SessionOp::kState))) return;
        if (!check("resume", client.call(SessionOp::kResume))) return;
      }
      auto quit = client.call(SessionOp::kQuit);
      (void)quit;
    });
  }
  for (auto& thread : threads) thread.join();
  for (const std::string& failure : failures) ADD_FAILURE() << failure;
}

// The disconnect-mid-halt contract, case 1: last session out — the server
// must resume the computation outright.
TEST(SessionServerTcp, DisconnectMidHaltReleasesTarget) {
  TcpTarget target;
  ASSERT_TRUE(target.start());

  {
    SessionClient client;
    ASSERT_TRUE(client.connect(target.port()).ok());
    auto halt = client.call(SessionOp::kHalt);
    ASSERT_TRUE(halt.ok());
    ASSERT_TRUE(halt.value().ok()) << halt.value().text;
    EXPECT_EQ(target.server.halt_owner(), 1u);
    client.close();  // vanish without resume or quit
  }

  ASSERT_TRUE(TcpRuntime::wait_until(
      [&] { return target.server.halt_owner() == 0; }, kWait));
  // The ring must actually move again: message totals grow past the
  // halted-state count.
  const auto before = target.harness.tcp().metrics().totals();
  EXPECT_TRUE(TcpRuntime::wait_until(
      [&] {
        return target.harness.tcp().metrics().totals().messages_delivered >
               before.messages_delivered;
      },
      kWait));
  // The serve thread bumps the counter after running the resume; poll
  // rather than racing it.
  EXPECT_TRUE(TcpRuntime::wait_until(
      [&] {
        return target.harness.tcp().metrics().snapshot().session
                   .halts_released == 1u;
      },
      kWait));
  EXPECT_EQ(
      target.harness.tcp().metrics().snapshot().session.halts_handed_off,
      0u);
}

// Case 2: another session survives — ownership transfers instead of
// resuming under the survivor's feet.
TEST(SessionServerTcp, DisconnectMidHaltHandsOffToSurvivor) {
  TcpTarget target;
  ASSERT_TRUE(target.start());

  SessionClient survivor;
  ASSERT_TRUE(survivor.connect(target.port()).ok());
  auto hello = survivor.call(SessionOp::kHello);
  ASSERT_TRUE(hello.ok());
  const std::uint64_t survivor_id =
      static_cast<std::uint64_t>(hello.value().number);

  {
    SessionClient owner;
    ASSERT_TRUE(owner.connect(target.port()).ok());
    auto halt = owner.call(SessionOp::kHalt);
    ASSERT_TRUE(halt.ok());
    ASSERT_TRUE(halt.value().ok());
    owner.close();  // vanish mid-halt
  }

  ASSERT_TRUE(TcpRuntime::wait_until(
      [&] { return target.server.halt_owner() == survivor_id; }, kWait));
  // The survivor still sees the halted state and owns the resume.
  auto state = survivor.call(SessionOp::kState);
  ASSERT_TRUE(state.ok());
  ASSERT_TRUE(state.value().ok()) << state.value().text;
  auto resume = survivor.call(SessionOp::kResume);
  ASSERT_TRUE(resume.ok());
  ASSERT_TRUE(resume.value().ok());
  EXPECT_EQ(target.server.halt_owner(), 0u);

  const auto snap = target.harness.tcp().metrics().snapshot();
  EXPECT_EQ(snap.session.halts_handed_off, 1u);
  EXPECT_EQ(snap.session.halts_released, 0u);
}

// -- Port files: the target -> client rendezvous (debugger/port_file) ------
//
// Regression suite for the stale-port race: a port file left behind by a
// dead target used to make the client dial a recycled port.  The fixed
// scheme writes atomically (tmp + rename) and names the server PID so the
// reader can reject entries whose server is gone.

namespace {

std::string port_file_path(const char* tag) {
  return testing::TempDir() + "ddbg_port_" + tag + "_" +
         std::to_string(::getpid());
}

}  // namespace

TEST(PortFile, WriteReadRoundTripCarriesLivePid) {
  const std::string path = port_file_path("roundtrip");
  ASSERT_TRUE(write_port_file(path, 41233).ok());
  auto entry = read_port_file(path);
  ASSERT_TRUE(entry.ok()) << entry.error().message();
  EXPECT_EQ(entry.value().port, 41233);
  EXPECT_EQ(entry.value().pid, static_cast<std::int64_t>(::getpid()));
  // The atomic write must not leave its temporary behind.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(PortFile, StaleEntryFromDeadServerIsRejected) {
  // A freshly reaped child is a guaranteed-dead PID that was just alive —
  // exactly what a crashed ddbg_target leaves in its port file.
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) ::_exit(0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_FALSE(process_alive(child));

  const std::string path = port_file_path("stale");
  {
    std::ofstream out(path);
    out << "DDBG_CONTROL_PORT=41233\n"
        << "DDBG_SERVER_PID=" << child << "\n";
  }
  auto entry = read_port_file(path);
  ASSERT_FALSE(entry.ok());
  EXPECT_EQ(entry.error().code(), ErrorCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(PortFile, LegacyBarePortFileStillAccepted) {
  const std::string path = port_file_path("legacy");
  {
    std::ofstream out(path);
    out << "41233\n";
  }
  auto entry = read_port_file(path);
  ASSERT_TRUE(entry.ok()) << entry.error().message();
  EXPECT_EQ(entry.value().port, 41233);
  EXPECT_EQ(entry.value().pid, 0);  // no PID, no liveness check
  std::remove(path.c_str());
}

TEST(PortFile, MissingAndEmptyFilesReadAsNotReady) {
  auto missing = read_port_file(port_file_path("missing"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code(), ErrorCode::kNotFound);

  const std::string path = port_file_path("empty");
  { std::ofstream out(path); }
  auto empty = read_port_file(path);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.error().code(), ErrorCode::kNotFound);

  // A PID with no port is also "not ready yet", not a dialable entry.
  {
    std::ofstream out(path);
    out << "DDBG_SERVER_PID=" << ::getpid() << "\n";
  }
  auto pid_only = read_port_file(path);
  ASSERT_FALSE(pid_only.ok());
  EXPECT_EQ(pid_only.error().code(), ErrorCode::kNotFound);
  std::remove(path.c_str());
}

TEST(PortFile, MalformedEntriesAreParseErrors) {
  const std::string path = port_file_path("malformed");
  for (const char* content :
       {"DDBG_CONTROL_PORT=banana\n", "DDBG_CONTROL_PORT=99999999\n",
        "DDBG_SERVER_PID=banana\nDDBG_CONTROL_PORT=41233\n",
        "not a port file\n"}) {
    {
      std::ofstream out(path);
      out << content;
    }
    auto entry = read_port_file(path);
    ASSERT_FALSE(entry.ok()) << content;
    EXPECT_EQ(entry.error().code(), ErrorCode::kParseError) << content;
  }
  std::remove(path.c_str());
}

TEST(PortFile, RewriteReplacesEntryAtomically) {
  // A target restarting on the same path must atomically supersede its old
  // entry; the reader sees either the old complete entry or the new one.
  const std::string path = port_file_path("rewrite");
  ASSERT_TRUE(write_port_file(path, 1111).ok());
  ASSERT_TRUE(write_port_file(path, 2222).ok());
  auto entry = read_port_file(path);
  ASSERT_TRUE(entry.ok()) << entry.error().message();
  EXPECT_EQ(entry.value().port, 2222);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ddbg
