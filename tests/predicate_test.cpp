// Unit tests for the predicate AST: SP matching, DP/LP/CP semantics,
// encoding, ordered-CP compilation, and the per-process LP detector.
#include <gtest/gtest.h>

#include "core/lp_detector.hpp"
#include "core/predicate.hpp"

namespace ddbg {
namespace {

LocalEvent make_event(ProcessId p, LocalEventKind kind, std::string name = "",
                      std::int64_t value = 0) {
  LocalEvent event;
  event.process = p;
  event.kind = kind;
  event.name = std::move(name);
  event.value = value;
  return event;
}

TEST(SimplePredicate, MatchesUserEventByName) {
  const auto sp = SimplePredicate::user_event(ProcessId(0), "token");
  EXPECT_TRUE(sp.matches(
      make_event(ProcessId(0), LocalEventKind::kUserEvent, "token")));
  EXPECT_FALSE(sp.matches(
      make_event(ProcessId(0), LocalEventKind::kUserEvent, "other")));
  EXPECT_FALSE(sp.matches(
      make_event(ProcessId(1), LocalEventKind::kUserEvent, "token")));
  EXPECT_FALSE(sp.matches(
      make_event(ProcessId(0), LocalEventKind::kProcedureEntered, "token")));
}

TEST(SimplePredicate, EmptyNameMatchesAny) {
  SimplePredicate sp;
  sp.process = ProcessId(0);
  sp.kind = LocalEventKind::kUserEvent;
  EXPECT_TRUE(sp.matches(
      make_event(ProcessId(0), LocalEventKind::kUserEvent, "anything")));
}

TEST(SimplePredicate, VarCompareOps) {
  const struct {
    CompareOp op;
    std::int64_t threshold;
    std::int64_t value;
    bool expect;
  } cases[] = {
      {CompareOp::kEq, 7, 7, true},   {CompareOp::kEq, 7, 8, false},
      {CompareOp::kNe, 7, 8, true},   {CompareOp::kNe, 7, 7, false},
      {CompareOp::kLt, 7, 6, true},   {CompareOp::kLt, 7, 7, false},
      {CompareOp::kLe, 7, 7, true},   {CompareOp::kLe, 7, 8, false},
      {CompareOp::kGt, 7, 8, true},   {CompareOp::kGt, 7, 7, false},
      {CompareOp::kGe, 7, 7, true},   {CompareOp::kGe, 7, 6, false},
  };
  for (const auto& c : cases) {
    const auto sp =
        SimplePredicate::var_compare(ProcessId(0), "x", c.op, c.threshold);
    EXPECT_EQ(sp.matches(make_event(ProcessId(0),
                                    LocalEventKind::kStateChange, "x",
                                    c.value)),
              c.expect)
        << "op=" << to_string(c.op) << " value=" << c.value;
  }
}

TEST(SimplePredicate, MessageEventsWithChannelFilter) {
  auto sp = SimplePredicate::message_received(ProcessId(1));
  auto event = make_event(ProcessId(1), LocalEventKind::kMessageReceived);
  event.channel = ChannelId(3);
  EXPECT_TRUE(sp.matches(event));
  sp.channel_filter = ChannelId(3);
  EXPECT_TRUE(sp.matches(event));
  sp.channel_filter = ChannelId(4);
  EXPECT_FALSE(sp.matches(event));
}

TEST(SimplePredicate, EncodingRoundTrip) {
  auto sp = SimplePredicate::var_compare(ProcessId(5), "balance",
                                         CompareOp::kLt, -100);
  sp.channel_filter = ChannelId(2);
  ByteWriter writer;
  sp.encode(writer);
  ByteReader reader(writer.buffer());
  auto decoded = SimplePredicate::decode(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().process, ProcessId(5));
  EXPECT_EQ(decoded.value().name, "balance");
  EXPECT_EQ(decoded.value().op, CompareOp::kLt);
  EXPECT_EQ(decoded.value().value, -100);
  EXPECT_EQ(decoded.value().channel_filter, ChannelId(2));
}

TEST(SimplePredicate, Describe) {
  EXPECT_EQ(SimplePredicate::user_event(ProcessId(0), "go").describe(),
            "p0:event(go)");
  EXPECT_EQ(SimplePredicate::var_compare(ProcessId(2), "x", CompareOp::kGe, 7)
                .describe(),
            "p2:x>=7");
}

TEST(DisjunctivePredicate, MatchesAnyAlternative) {
  DisjunctivePredicate dp;
  dp.alternatives.push_back(SimplePredicate::user_event(ProcessId(0), "a"));
  dp.alternatives.push_back(SimplePredicate::user_event(ProcessId(1), "b"));
  EXPECT_TRUE(
      dp.matches(make_event(ProcessId(0), LocalEventKind::kUserEvent, "a")));
  EXPECT_TRUE(
      dp.matches(make_event(ProcessId(1), LocalEventKind::kUserEvent, "b")));
  EXPECT_FALSE(
      dp.matches(make_event(ProcessId(0), LocalEventKind::kUserEvent, "b")));
}

TEST(DisjunctivePredicate, InvolvedProcessesDeduplicated) {
  DisjunctivePredicate dp;
  dp.alternatives.push_back(SimplePredicate::user_event(ProcessId(1), "a"));
  dp.alternatives.push_back(SimplePredicate::user_event(ProcessId(1), "b"));
  dp.alternatives.push_back(SimplePredicate::user_event(ProcessId(0), "c"));
  const auto involved = dp.involved_processes();
  ASSERT_EQ(involved.size(), 2u);
  EXPECT_TRUE(dp.involves(ProcessId(0)));
  EXPECT_TRUE(dp.involves(ProcessId(1)));
  EXPECT_FALSE(dp.involves(ProcessId(2)));
}

LinkedPredicate two_stage_lp() {
  DisjunctivePredicate dp1;
  dp1.alternatives.push_back(SimplePredicate::user_event(ProcessId(0), "a"));
  DisjunctivePredicate dp2;
  dp2.alternatives.push_back(SimplePredicate::user_event(ProcessId(1), "b"));
  return LinkedPredicate::chain({dp1, dp2});
}

TEST(LinkedPredicate, ExpansionOfRepeats) {
  LinkedPredicate lp = two_stage_lp();
  lp.stages[1].repeat = 3;
  EXPECT_EQ(lp.depth(), 4u);
  const LinkedPredicate expanded = lp.expanded();
  ASSERT_EQ(expanded.stages.size(), 4u);
  for (const auto& stage : expanded.stages) EXPECT_EQ(stage.repeat, 1u);
  EXPECT_EQ(expanded.stages[1].dp.describe(),
            expanded.stages[3].dp.describe());
}

TEST(LinkedPredicate, RestDropsFirstStage) {
  const LinkedPredicate lp = two_stage_lp();
  const LinkedPredicate rest = lp.rest();
  ASSERT_EQ(rest.stages.size(), 1u);
  EXPECT_TRUE(rest.first().involves(ProcessId(1)));
  EXPECT_TRUE(rest.rest().empty());
}

TEST(LinkedPredicate, EncodingRoundTrip) {
  LinkedPredicate lp = two_stage_lp();
  lp.stages[0].repeat = 2;
  auto decoded = LinkedPredicate::decode_from_bytes(lp.encode_to_bytes());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().describe(), lp.describe());
  EXPECT_EQ(decoded.value().depth(), 3u);
}

TEST(LinkedPredicate, DescribeUsesArrowsAndCarets) {
  LinkedPredicate lp = two_stage_lp();
  lp.stages[1].repeat = 2;
  EXPECT_EQ(lp.describe(), "p0:event(a) -> (p1:event(b))^2");
}

TEST(ConjunctivePredicate, CompileOrderedPermutations) {
  ConjunctivePredicate cp;
  cp.terms.push_back(SimplePredicate::user_event(ProcessId(0), "a"));
  cp.terms.push_back(SimplePredicate::user_event(ProcessId(1), "b"));
  cp.terms.push_back(SimplePredicate::user_event(ProcessId(2), "c"));
  auto chains = cp.compile_ordered();
  ASSERT_TRUE(chains.ok());
  EXPECT_EQ(chains.value().size(), 6u);  // 3!
  for (const LinkedPredicate& lp : chains.value()) {
    EXPECT_EQ(lp.depth(), 3u);
  }
}

TEST(ConjunctivePredicate, CompileOrderedRejectsTooMany) {
  ConjunctivePredicate cp;
  for (std::uint32_t i = 0; i < 6; ++i) {
    cp.terms.push_back(SimplePredicate::user_event(ProcessId(i), "x"));
  }
  EXPECT_FALSE(cp.compile_ordered().ok());
}

TEST(ConjunctivePredicate, CompileOrderedRejectsEmpty) {
  ConjunctivePredicate cp;
  EXPECT_FALSE(cp.compile_ordered().ok());
}

TEST(BreakpointSpec, EncodingRoundTripLinked) {
  BreakpointSpec spec;
  spec.kind = BreakpointSpec::Kind::kLinked;
  spec.linked = two_stage_lp();
  ByteWriter writer;
  spec.encode(writer);
  ByteReader reader(writer.buffer());
  auto decoded = BreakpointSpec::decode(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().describe(), spec.describe());
}

TEST(BreakpointSpec, EncodingRoundTripConjunctive) {
  BreakpointSpec spec;
  spec.kind = BreakpointSpec::Kind::kConjunctive;
  spec.conjunctive.terms.push_back(
      SimplePredicate::user_event(ProcessId(0), "a"));
  spec.conjunctive.terms.push_back(
      SimplePredicate::user_event(ProcessId(1), "b"));
  spec.mode = ConjunctionMode::kUnordered;
  ByteWriter writer;
  spec.encode(writer);
  ByteReader reader(writer.buffer());
  auto decoded = BreakpointSpec::decode(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().mode, ConjunctionMode::kUnordered);
  EXPECT_EQ(decoded.value().describe(), spec.describe());
}

// ---- LP detector ----

struct DetectorFixture {
  std::vector<BreakpointId> triggers;
  std::vector<std::pair<ProcessId, std::uint32_t>> forwards;
  std::vector<std::pair<BreakpointId, std::uint32_t>> notifies;
  LinkedPredicateDetector detector;

  std::vector<std::pair<BreakpointId, bool>> monitor_triggers;

  explicit DetectorFixture(ProcessId self)
      : detector(self,
                 LinkedPredicateDetector::Callbacks{
                     [this](BreakpointId bp, const LocalEvent&,
                            bool monitor) {
                       triggers.push_back(bp);
                       monitor_triggers.emplace_back(bp, monitor);
                     },
                     [this](ProcessId target, BreakpointId,
                            const LinkedPredicate&, std::uint32_t stage,
                            bool) {
                       forwards.emplace_back(target, stage);
                     },
                     [this](BreakpointId bp, std::uint32_t term,
                            const LocalEvent&) {
                       notifies.emplace_back(bp, term);
                     }}) {}
};

TEST(LpDetector, SingleStageTriggers) {
  DetectorFixture fx{ProcessId(0)};
  DisjunctivePredicate dp;
  dp.alternatives.push_back(SimplePredicate::user_event(ProcessId(0), "go"));
  fx.detector.arm(BreakpointId(1), LinkedPredicate::single(dp), 0);
  EXPECT_EQ(fx.detector.num_watches(), 1u);

  fx.detector.on_local_event(
      make_event(ProcessId(0), LocalEventKind::kUserEvent, "other"));
  EXPECT_TRUE(fx.triggers.empty());

  fx.detector.on_local_event(
      make_event(ProcessId(0), LocalEventKind::kUserEvent, "go"));
  ASSERT_EQ(fx.triggers.size(), 1u);
  EXPECT_EQ(fx.triggers[0], BreakpointId(1));
  EXPECT_EQ(fx.detector.num_watches(), 0u);  // one-shot
}

TEST(LpDetector, MultiStageForwards) {
  DetectorFixture fx{ProcessId(0)};
  fx.detector.arm(BreakpointId(2), two_stage_lp(), 0);
  fx.detector.on_local_event(
      make_event(ProcessId(0), LocalEventKind::kUserEvent, "a"));
  EXPECT_TRUE(fx.triggers.empty());
  ASSERT_EQ(fx.forwards.size(), 1u);
  EXPECT_EQ(fx.forwards[0].first, ProcessId(1));
  EXPECT_EQ(fx.forwards[0].second, 1u);  // next stage index
}

TEST(LpDetector, IntermediateEventsIgnored) {
  // LP semantics DPi [Σ−DPj] DPj: other events between stages don't reset.
  DetectorFixture fx{ProcessId(0)};
  DisjunctivePredicate dp1;
  dp1.alternatives.push_back(SimplePredicate::user_event(ProcessId(0), "a"));
  DisjunctivePredicate dp2;
  dp2.alternatives.push_back(SimplePredicate::user_event(ProcessId(0), "b"));
  fx.detector.arm(BreakpointId(1), LinkedPredicate::chain({dp1, dp2}), 0);

  fx.detector.on_local_event(
      make_event(ProcessId(0), LocalEventKind::kUserEvent, "a"));
  // Next DP is local to the same process: the detector forwards to self.
  ASSERT_EQ(fx.forwards.size(), 1u);
  EXPECT_EQ(fx.forwards[0].first, ProcessId(0));
}

TEST(LpDetector, DisarmRemovesWatches) {
  DetectorFixture fx{ProcessId(0)};
  fx.detector.arm(BreakpointId(1), two_stage_lp(), 0);
  fx.detector.arm(BreakpointId(2), two_stage_lp(), 0);
  EXPECT_EQ(fx.detector.disarm(BreakpointId(1)), 1u);
  EXPECT_EQ(fx.detector.num_watches(), 1u);
  EXPECT_EQ(fx.detector.disarm(BreakpointId(9)), 0u);
}

TEST(LpDetector, NotifyWatchesPersist) {
  DetectorFixture fx{ProcessId(0)};
  fx.detector.arm_notify(BreakpointId(3),
                         SimplePredicate::user_event(ProcessId(0), "tick"),
                         1);
  for (int i = 0; i < 3; ++i) {
    fx.detector.on_local_event(
        make_event(ProcessId(0), LocalEventKind::kUserEvent, "tick"));
  }
  EXPECT_EQ(fx.notifies.size(), 3u);
  EXPECT_EQ(fx.detector.num_watches(), 1u);
}

TEST(LpDetector, MonitorFlagPropagatesToTrigger) {
  DetectorFixture fx{ProcessId(0)};
  DisjunctivePredicate dp;
  dp.alternatives.push_back(SimplePredicate::user_event(ProcessId(0), "go"));
  fx.detector.arm(BreakpointId(1), LinkedPredicate::single(dp), 0,
                  /*monitor=*/true);
  fx.detector.on_local_event(
      make_event(ProcessId(0), LocalEventKind::kUserEvent, "go"));
  ASSERT_EQ(fx.monitor_triggers.size(), 1u);
  EXPECT_TRUE(fx.monitor_triggers[0].second);
}

TEST(LpDetector, MultipleWatchesFireOnOneEvent) {
  DetectorFixture fx{ProcessId(0)};
  DisjunctivePredicate dp;
  dp.alternatives.push_back(SimplePredicate::user_event(ProcessId(0), "go"));
  fx.detector.arm(BreakpointId(1), LinkedPredicate::single(dp), 0);
  fx.detector.arm(BreakpointId(2), LinkedPredicate::single(dp), 0);
  fx.detector.on_local_event(
      make_event(ProcessId(0), LocalEventKind::kUserEvent, "go"));
  EXPECT_EQ(fx.triggers.size(), 2u);
}

}  // namespace
}  // namespace ddbg
