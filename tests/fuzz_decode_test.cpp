// Decode robustness: random and mutated byte strings must never crash the
// decoders — they either parse or return a kParseError.  (Wire input is
// attacker-ish data by definition: another machine produced it.)
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/commands.hpp"
#include "core/predicate.hpp"
#include "net/message.hpp"

namespace ddbg {
namespace {

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes bytes(rng.next_below(max_len + 1));
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
  return bytes;
}

class FuzzDecode : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzDecode, RandomBytesNeverCrashMessageDecode) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const Bytes bytes = random_bytes(rng, 64);
    ByteReader reader(bytes);
    auto result = Message::decode(reader);
    if (result.ok()) {
      // Whatever decoded must re-encode without crashing.
      ByteWriter writer;
      result.value().encode(writer);
    }
  }
}

TEST_P(FuzzDecode, RandomBytesNeverCrashCommandDecode) {
  Rng rng(GetParam() ^ 0x1111);
  for (int i = 0; i < 2000; ++i) {
    const Bytes bytes = random_bytes(rng, 96);
    auto result = Command::decode(bytes);
    if (result.ok()) {
      (void)result.value().encode();
    }
  }
}

TEST_P(FuzzDecode, RandomBytesNeverCrashPredicateDecode) {
  Rng rng(GetParam() ^ 0x2222);
  for (int i = 0; i < 2000; ++i) {
    const Bytes bytes = random_bytes(rng, 64);
    auto lp = LinkedPredicate::decode_from_bytes(bytes);
    if (lp.ok()) (void)lp.value().describe();
    ByteReader reader(bytes);
    auto spec = BreakpointSpec::decode(reader);
    if (spec.ok()) (void)spec.value().describe();
  }
}

TEST_P(FuzzDecode, TruncationsOfValidMessagesFailCleanly) {
  Rng rng(GetParam() ^ 0x3333);
  Message valid = Message::halt_marker(HaltId(7), {ProcessId(1), ProcessId(2)});
  valid.vclock = VectorClock(4);
  valid.vclock.tick(ProcessId(3));
  valid.payload = Bytes{1, 2, 3, 4, 5};
  ByteWriter writer;
  valid.encode(writer);
  const Bytes& encoded = writer.buffer();
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    Bytes truncated(encoded.begin(),
                    encoded.begin() + static_cast<std::ptrdiff_t>(cut));
    ByteReader reader(truncated);
    auto result = Message::decode(reader);
    // Truncations must never "succeed" into garbage beyond the buffer.
    if (result.ok()) {
      EXPECT_TRUE(reader.exhausted() || cut < encoded.size());
    }
  }
}

TEST_P(FuzzDecode, BitFlipsOfValidCommandsFailCleanlyOrRoundTrip) {
  Rng rng(GetParam() ^ 0x4444);
  ProcessSnapshot snapshot;
  snapshot.process = ProcessId(1);
  snapshot.state = Bytes{9, 9};
  snapshot.in_channels.push_back(ChannelState{ChannelId(0), {Bytes{1}}});
  const Bytes encoded =
      Command::halt_report(ProcessId(1), 3, snapshot).encode();
  for (int i = 0; i < 500; ++i) {
    Bytes mutated = encoded;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    auto result = Command::decode(mutated);
    if (result.ok()) (void)result.value().encode();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDecode,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace ddbg
