// Decode robustness: random and mutated byte strings must never crash the
// decoders — they either parse or return a kParseError.  (Wire input is
// attacker-ish data by definition: another machine produced it.)
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "core/commands.hpp"
#include "core/predicate.hpp"
#include "net/framing.hpp"
#include "net/message.hpp"

namespace ddbg {
namespace {

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes bytes(rng.next_below(max_len + 1));
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
  return bytes;
}

class FuzzDecode : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzDecode, RandomBytesNeverCrashMessageDecode) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const Bytes bytes = random_bytes(rng, 64);
    ByteReader reader(bytes);
    auto result = Message::decode(reader);
    if (result.ok()) {
      // Whatever decoded must re-encode without crashing.
      ByteWriter writer;
      result.value().encode(writer);
    }
  }
}

TEST_P(FuzzDecode, RandomBytesNeverCrashCommandDecode) {
  Rng rng(GetParam() ^ 0x1111);
  for (int i = 0; i < 2000; ++i) {
    const Bytes bytes = random_bytes(rng, 96);
    auto result = Command::decode(bytes);
    if (result.ok()) {
      (void)result.value().encode();
    }
  }
}

TEST_P(FuzzDecode, RandomBytesNeverCrashPredicateDecode) {
  Rng rng(GetParam() ^ 0x2222);
  for (int i = 0; i < 2000; ++i) {
    const Bytes bytes = random_bytes(rng, 64);
    auto lp = LinkedPredicate::decode_from_bytes(bytes);
    if (lp.ok()) (void)lp.value().describe();
    ByteReader reader(bytes);
    auto spec = BreakpointSpec::decode(reader);
    if (spec.ok()) (void)spec.value().describe();
  }
}

TEST_P(FuzzDecode, TruncationsOfValidMessagesFailCleanly) {
  Rng rng(GetParam() ^ 0x3333);
  Message valid = Message::halt_marker(HaltId(7), {ProcessId(1), ProcessId(2)});
  valid.vclock = VectorClock(4);
  valid.vclock.tick(ProcessId(3));
  valid.payload = Bytes{1, 2, 3, 4, 5};
  ByteWriter writer;
  valid.encode(writer);
  const Bytes& encoded = writer.buffer();
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    Bytes truncated(encoded.begin(),
                    encoded.begin() + static_cast<std::ptrdiff_t>(cut));
    ByteReader reader(truncated);
    auto result = Message::decode(reader);
    // Truncations must never "succeed" into garbage beyond the buffer.
    if (result.ok()) {
      EXPECT_TRUE(reader.exhausted() || cut < encoded.size());
    }
  }
}

TEST_P(FuzzDecode, BitFlipsOfValidCommandsFailCleanlyOrRoundTrip) {
  Rng rng(GetParam() ^ 0x4444);
  ProcessSnapshot snapshot;
  snapshot.process = ProcessId(1);
  snapshot.state = Bytes{9, 9};
  snapshot.in_channels.push_back(ChannelState{ChannelId(0), {Bytes{1}}});
  const Bytes encoded =
      Command::halt_report(ProcessId(1), 3, snapshot).encode();
  for (int i = 0; i < 500; ++i) {
    Bytes mutated = encoded;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    auto result = Command::decode(mutated);
    if (result.ok()) (void)result.value().encode();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDecode,
                         ::testing::Values(1u, 2u, 3u, 4u));

// Boundary-value corpus: crafted inputs at the edges of the varint and
// length-prefix encodings.  These target the exact overflow modes random
// fuzzing is unlikely to hit: length prefixes near UINT64_MAX (where
// `pos_ + len` wraps) and 10-byte varints whose spare bits do not fit in
// 64 bits.

// A varint-encoded length claiming nearly UINT64_MAX bytes must fail the
// bounds check, not wrap it.
TEST(DecodeBoundary, HugeLengthPrefixFailsStr) {
  for (const std::uint64_t len :
       {~0ULL, ~0ULL - 1, ~0ULL - 7, 1ULL << 63, (1ULL << 32) + 1}) {
    ByteWriter writer;
    writer.varint(len);
    writer.u8('x');  // a few real bytes after the lying prefix
    writer.u8('y');
    const Bytes encoded = std::move(writer).take();
    ByteReader reader(encoded);
    auto result = reader.str();
    EXPECT_FALSE(result.ok()) << "len=" << len;
  }
}

TEST(DecodeBoundary, HugeLengthPrefixFailsBytes) {
  for (const std::uint64_t len : {~0ULL, ~0ULL - 3, 1ULL << 62}) {
    ByteWriter writer;
    writer.varint(len);
    writer.u8(0xaa);
    const Bytes encoded = std::move(writer).take();
    ByteReader reader(encoded);
    auto result = reader.bytes();
    EXPECT_FALSE(result.ok()) << "len=" << len;
  }
}

// The length that would make `pos_ + len` exactly wrap to a small value.
TEST(DecodeBoundary, WrappingLengthPrefixFails) {
  ByteWriter writer;
  writer.varint(0);  // placeholder; rebuilt below with a precise length
  Bytes prefix;
  {
    // After reading the varint, pos_ is the prefix size; a length of
    // (UINT64_MAX - pos_ + 1) makes pos_ + len == 0 under wraparound.
    ByteWriter w;
    w.varint(~0ULL - 9);  // 10-byte varint, so pos_ == 10 after the read
    prefix = std::move(w).take();
    ASSERT_EQ(prefix.size(), 10u);
  }
  ByteReader reader(prefix);
  auto result = reader.bytes();
  EXPECT_FALSE(result.ok());
}

// Canonical UINT64_MAX: nine 0xff continuation bytes, final byte 0x01.
TEST(DecodeBoundary, MaxVarintRoundTrips) {
  for (const std::uint64_t v :
       {~0ULL, ~0ULL - 1, 1ULL << 63, (1ULL << 63) - 1}) {
    ByteWriter writer;
    writer.varint(v);
    const Bytes encoded = std::move(writer).take();
    ByteReader reader(encoded);
    auto result = reader.varint();
    ASSERT_TRUE(result.ok()) << "v=" << v;
    EXPECT_EQ(result.value(), v);
    EXPECT_TRUE(reader.exhausted());
  }
}

// Ten-byte varints whose tenth byte carries payload bits beyond bit 63
// (0x7e mask) encode values that cannot fit in a u64; accepting them would
// silently truncate.  Before the fix these decoded to wrong values.
TEST(DecodeBoundary, TenByteVarintWithSpareBitsRejected) {
  for (const std::uint8_t last : {0x02, 0x03, 0x7e, 0x7f}) {
    Bytes encoded(9, 0xff);
    encoded.push_back(last);
    ByteReader reader(encoded);
    auto result = reader.varint();
    EXPECT_FALSE(result.ok()) << "last=" << static_cast<int>(last);
  }
}

// An eleventh byte is always too long, whatever the bits.
TEST(DecodeBoundary, ElevenByteVarintRejected) {
  Bytes encoded(10, 0x80);  // ten continuation bytes with zero payload
  encoded.push_back(0x01);
  ByteReader reader(encoded);
  auto result = reader.varint();
  EXPECT_FALSE(result.ok());
}

// Truncated prefixes: the varint length parses but the payload is short.
TEST(DecodeBoundary, TruncatedLengthPrefixFailsCleanly) {
  ByteWriter writer;
  writer.str("hello world");
  Bytes encoded = std::move(writer).take();
  for (std::size_t cut = 1; cut < encoded.size(); ++cut) {
    Bytes truncated(encoded.begin(),
                    encoded.begin() + static_cast<std::ptrdiff_t>(cut));
    ByteReader reader(truncated);
    auto result = reader.str();
    EXPECT_FALSE(result.ok()) << "cut=" << cut;
  }
}

TEST(DecodeBoundary, TruncatedFixedWidthFailsCleanly) {
  ByteWriter writer;
  writer.u64(0x1122334455667788ULL);
  Bytes encoded = std::move(writer).take();
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    Bytes truncated(encoded.begin(),
                    encoded.begin() + static_cast<std::ptrdiff_t>(cut));
    ByteReader reader(truncated);
    EXPECT_FALSE(reader.u64().ok()) << "cut=" << cut;
  }
}

// A message whose embedded string length claims UINT64_MAX must fail the
// whole decode, not crash.  (Message layout: kind byte first; the payload
// length prefix is deeper in, so craft via a valid message then stomp the
// length varint region with a maximal one.)
TEST(DecodeBoundary, MessageWithHugePayloadLengthFails) {
  // Build directly: a bytes field with a lying length inside an otherwise
  // plausible buffer exercises the same reader path Message::decode uses.
  ByteWriter writer;
  writer.u8(0);  // plausible leading byte
  writer.varint(~0ULL);
  for (int i = 0; i < 16; ++i) writer.u8(0xee);
  const Bytes encoded = std::move(writer).take();
  ByteReader reader(encoded);
  (void)reader.u8();
  EXPECT_FALSE(reader.bytes().ok());
}

// -- FrameParser: stream reassembly and the frame-length sanity cap --------

namespace framing_test {

Bytes make_frame(const Bytes& body) {
  Bytes frame;
  const std::size_t header_at = begin_frame(frame);
  frame.insert(frame.end(), body.begin(), body.end());
  end_frame(frame, header_at);
  return frame;
}

}  // namespace framing_test

TEST(FrameParser, SingleFrameRoundTrips) {
  FrameParser parser;
  const Bytes body{1, 2, 3, 4, 5};
  const Bytes frame = framing_test::make_frame(body);
  parser.append(frame);
  const auto got = parser.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(std::equal(got->begin(), got->end(), body.begin(), body.end()));
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(FrameParser, FrameSplitAcrossArbitraryAppendBoundaries) {
  const Bytes body{10, 20, 30, 40, 50, 60, 70};
  const Bytes frame = framing_test::make_frame(body);
  // Every split point, including mid-header.
  for (std::size_t cut = 0; cut <= frame.size(); ++cut) {
    FrameParser parser;
    parser.append(std::span<const std::uint8_t>(frame.data(), cut));
    if (cut < frame.size()) {
      EXPECT_FALSE(parser.next().has_value());
    }
    parser.append(
        std::span<const std::uint8_t>(frame.data() + cut, frame.size() - cut));
    const auto got = parser.next();
    ASSERT_TRUE(got.has_value()) << "cut=" << cut;
    EXPECT_TRUE(
        std::equal(got->begin(), got->end(), body.begin(), body.end()));
  }
}

TEST(FrameParser, BurstOfFramesInOneAppend) {
  FrameParser parser;
  Bytes stream;
  for (std::uint8_t i = 0; i < 10; ++i) {
    const Bytes frame = framing_test::make_frame(Bytes(i + 1, i));
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  parser.append(stream);
  for (std::uint8_t i = 0; i < 10; ++i) {
    const auto got = parser.next();
    ASSERT_TRUE(got.has_value()) << "frame " << int(i);
    EXPECT_EQ(got->size(), static_cast<std::size_t>(i) + 1);
  }
  EXPECT_FALSE(parser.next().has_value());
}

TEST(FrameParser, ZeroLengthBodyIsAValidFrame) {
  FrameParser parser;
  parser.append(framing_test::make_frame(Bytes{}));
  const auto got = parser.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), 0u);
}

TEST(FrameParser, OversizedFrameLengthMarksStreamCorrupt) {
  FrameParser parser(/*max_frame_len=*/1024);
  Bytes header(kFrameHeaderSize);
  const std::uint32_t huge = 0xfffffff0u;
  std::memcpy(header.data(), &huge, sizeof(huge));
  parser.append(header);
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_TRUE(parser.corrupt());
  EXPECT_EQ(parser.rejected_frame_len(), huge);
  // Corrupt is sticky: even a well-formed frame afterwards is not parsed
  // (the transport must drop the connection).
  parser.append(framing_test::make_frame(Bytes{1}));
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_TRUE(parser.corrupt());
}

TEST(FrameParser, LengthJustAboveCapRejectedAtCapAccepted) {
  FrameParser small(/*max_frame_len=*/8);
  small.append(framing_test::make_frame(Bytes(9, 0x11)));
  EXPECT_FALSE(small.next().has_value());
  EXPECT_TRUE(small.corrupt());
  EXPECT_EQ(small.rejected_frame_len(), 9u);

  FrameParser exact(/*max_frame_len=*/8);
  exact.append(framing_test::make_frame(Bytes(8, 0x11)));
  EXPECT_TRUE(exact.next().has_value());
  EXPECT_FALSE(exact.corrupt());
}

TEST(FrameParser, RandomChunkingNeverLosesOrCorruptsFrames) {
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    Bytes stream;
    std::vector<std::size_t> sizes;
    for (int i = 0; i < 20; ++i) {
      const std::size_t len = rng.next_below(100);
      sizes.push_back(len);
      const Bytes frame = framing_test::make_frame(
          Bytes(len, static_cast<std::uint8_t>(i)));
      stream.insert(stream.end(), frame.begin(), frame.end());
    }
    FrameParser parser;
    std::size_t fed = 0;
    std::size_t seen = 0;
    while (seen < sizes.size()) {
      if (fed < stream.size()) {
        const std::size_t chunk =
            std::min(stream.size() - fed, rng.next_below(64) + 1);
        parser.append(
            std::span<const std::uint8_t>(stream.data() + fed, chunk));
        fed += chunk;
      }
      while (const auto got = parser.next()) {
        ASSERT_LT(seen, sizes.size());
        EXPECT_EQ(got->size(), sizes[seen]);
        ++seen;
      }
      ASSERT_FALSE(parser.corrupt());
    }
    EXPECT_EQ(parser.buffered_bytes(), 0u);
  }
}

}  // namespace
}  // namespace ddbg
