// Decode robustness: random and mutated byte strings must never crash the
// decoders — they either parse or return a kParseError.  (Wire input is
// attacker-ish data by definition: another machine produced it.)
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "core/commands.hpp"
#include "core/predicate.hpp"
#include "net/framing.hpp"
#include "net/message.hpp"
#include "replay/replay_log.hpp"

namespace ddbg {
namespace {

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes bytes(rng.next_below(max_len + 1));
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
  return bytes;
}

class FuzzDecode : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzDecode, RandomBytesNeverCrashMessageDecode) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const Bytes bytes = random_bytes(rng, 64);
    ByteReader reader(bytes);
    auto result = Message::decode(reader);
    if (result.ok()) {
      // Whatever decoded must re-encode without crashing.
      ByteWriter writer;
      result.value().encode(writer);
    }
  }
}

TEST_P(FuzzDecode, RandomBytesNeverCrashCommandDecode) {
  Rng rng(GetParam() ^ 0x1111);
  for (int i = 0; i < 2000; ++i) {
    const Bytes bytes = random_bytes(rng, 96);
    auto result = Command::decode(bytes);
    if (result.ok()) {
      (void)result.value().encode();
    }
  }
}

TEST_P(FuzzDecode, RandomBytesNeverCrashPredicateDecode) {
  Rng rng(GetParam() ^ 0x2222);
  for (int i = 0; i < 2000; ++i) {
    const Bytes bytes = random_bytes(rng, 64);
    auto lp = LinkedPredicate::decode_from_bytes(bytes);
    if (lp.ok()) (void)lp.value().describe();
    ByteReader reader(bytes);
    auto spec = BreakpointSpec::decode(reader);
    if (spec.ok()) (void)spec.value().describe();
  }
}

TEST_P(FuzzDecode, TruncationsOfValidMessagesFailCleanly) {
  Rng rng(GetParam() ^ 0x3333);
  Message valid = Message::halt_marker(HaltId(7), {ProcessId(1), ProcessId(2)});
  valid.vclock = VectorClock(4);
  valid.vclock.tick(ProcessId(3));
  valid.payload = Bytes{1, 2, 3, 4, 5};
  ByteWriter writer;
  valid.encode(writer);
  const Bytes& encoded = writer.buffer();
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    Bytes truncated(encoded.begin(),
                    encoded.begin() + static_cast<std::ptrdiff_t>(cut));
    ByteReader reader(truncated);
    auto result = Message::decode(reader);
    // Truncations must never "succeed" into garbage beyond the buffer.
    if (result.ok()) {
      EXPECT_TRUE(reader.exhausted() || cut < encoded.size());
    }
  }
}

TEST_P(FuzzDecode, BitFlipsOfValidCommandsFailCleanlyOrRoundTrip) {
  Rng rng(GetParam() ^ 0x4444);
  ProcessSnapshot snapshot;
  snapshot.process = ProcessId(1);
  snapshot.state = Bytes{9, 9};
  snapshot.in_channels.push_back(ChannelState{ChannelId(0), {Bytes{1}}});
  const Bytes encoded =
      Command::halt_report(ProcessId(1), 3, snapshot).encode();
  for (int i = 0; i < 500; ++i) {
    Bytes mutated = encoded;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    auto result = Command::decode(mutated);
    if (result.ok()) (void)result.value().encode();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDecode,
                         ::testing::Values(1u, 2u, 3u, 4u));

// Boundary-value corpus: crafted inputs at the edges of the varint and
// length-prefix encodings.  These target the exact overflow modes random
// fuzzing is unlikely to hit: length prefixes near UINT64_MAX (where
// `pos_ + len` wraps) and 10-byte varints whose spare bits do not fit in
// 64 bits.

// A varint-encoded length claiming nearly UINT64_MAX bytes must fail the
// bounds check, not wrap it.
TEST(DecodeBoundary, HugeLengthPrefixFailsStr) {
  for (const std::uint64_t len :
       {~0ULL, ~0ULL - 1, ~0ULL - 7, 1ULL << 63, (1ULL << 32) + 1}) {
    ByteWriter writer;
    writer.varint(len);
    writer.u8('x');  // a few real bytes after the lying prefix
    writer.u8('y');
    const Bytes encoded = std::move(writer).take();
    ByteReader reader(encoded);
    auto result = reader.str();
    EXPECT_FALSE(result.ok()) << "len=" << len;
  }
}

TEST(DecodeBoundary, HugeLengthPrefixFailsBytes) {
  for (const std::uint64_t len : {~0ULL, ~0ULL - 3, 1ULL << 62}) {
    ByteWriter writer;
    writer.varint(len);
    writer.u8(0xaa);
    const Bytes encoded = std::move(writer).take();
    ByteReader reader(encoded);
    auto result = reader.bytes();
    EXPECT_FALSE(result.ok()) << "len=" << len;
  }
}

// The length that would make `pos_ + len` exactly wrap to a small value.
TEST(DecodeBoundary, WrappingLengthPrefixFails) {
  ByteWriter writer;
  writer.varint(0);  // placeholder; rebuilt below with a precise length
  Bytes prefix;
  {
    // After reading the varint, pos_ is the prefix size; a length of
    // (UINT64_MAX - pos_ + 1) makes pos_ + len == 0 under wraparound.
    ByteWriter w;
    w.varint(~0ULL - 9);  // 10-byte varint, so pos_ == 10 after the read
    prefix = std::move(w).take();
    ASSERT_EQ(prefix.size(), 10u);
  }
  ByteReader reader(prefix);
  auto result = reader.bytes();
  EXPECT_FALSE(result.ok());
}

// Canonical UINT64_MAX: nine 0xff continuation bytes, final byte 0x01.
TEST(DecodeBoundary, MaxVarintRoundTrips) {
  for (const std::uint64_t v :
       {~0ULL, ~0ULL - 1, 1ULL << 63, (1ULL << 63) - 1}) {
    ByteWriter writer;
    writer.varint(v);
    const Bytes encoded = std::move(writer).take();
    ByteReader reader(encoded);
    auto result = reader.varint();
    ASSERT_TRUE(result.ok()) << "v=" << v;
    EXPECT_EQ(result.value(), v);
    EXPECT_TRUE(reader.exhausted());
  }
}

// Ten-byte varints whose tenth byte carries payload bits beyond bit 63
// (0x7e mask) encode values that cannot fit in a u64; accepting them would
// silently truncate.  Before the fix these decoded to wrong values.
TEST(DecodeBoundary, TenByteVarintWithSpareBitsRejected) {
  for (const std::uint8_t last : {0x02, 0x03, 0x7e, 0x7f}) {
    Bytes encoded(9, 0xff);
    encoded.push_back(last);
    ByteReader reader(encoded);
    auto result = reader.varint();
    EXPECT_FALSE(result.ok()) << "last=" << static_cast<int>(last);
  }
}

// An eleventh byte is always too long, whatever the bits.
TEST(DecodeBoundary, ElevenByteVarintRejected) {
  Bytes encoded(10, 0x80);  // ten continuation bytes with zero payload
  encoded.push_back(0x01);
  ByteReader reader(encoded);
  auto result = reader.varint();
  EXPECT_FALSE(result.ok());
}

// Truncated prefixes: the varint length parses but the payload is short.
TEST(DecodeBoundary, TruncatedLengthPrefixFailsCleanly) {
  ByteWriter writer;
  writer.str("hello world");
  Bytes encoded = std::move(writer).take();
  for (std::size_t cut = 1; cut < encoded.size(); ++cut) {
    Bytes truncated(encoded.begin(),
                    encoded.begin() + static_cast<std::ptrdiff_t>(cut));
    ByteReader reader(truncated);
    auto result = reader.str();
    EXPECT_FALSE(result.ok()) << "cut=" << cut;
  }
}

TEST(DecodeBoundary, TruncatedFixedWidthFailsCleanly) {
  ByteWriter writer;
  writer.u64(0x1122334455667788ULL);
  Bytes encoded = std::move(writer).take();
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    Bytes truncated(encoded.begin(),
                    encoded.begin() + static_cast<std::ptrdiff_t>(cut));
    ByteReader reader(truncated);
    EXPECT_FALSE(reader.u64().ok()) << "cut=" << cut;
  }
}

// A message whose embedded string length claims UINT64_MAX must fail the
// whole decode, not crash.  (Message layout: kind byte first; the payload
// length prefix is deeper in, so craft via a valid message then stomp the
// length varint region with a maximal one.)
TEST(DecodeBoundary, MessageWithHugePayloadLengthFails) {
  // Build directly: a bytes field with a lying length inside an otherwise
  // plausible buffer exercises the same reader path Message::decode uses.
  ByteWriter writer;
  writer.u8(0);  // plausible leading byte
  writer.varint(~0ULL);
  for (int i = 0; i < 16; ++i) writer.u8(0xee);
  const Bytes encoded = std::move(writer).take();
  ByteReader reader(encoded);
  (void)reader.u8();
  EXPECT_FALSE(reader.bytes().ok());
}

// -- FrameParser: stream reassembly and the frame-length sanity cap --------

namespace framing_test {

Bytes make_frame(const Bytes& body) {
  Bytes frame;
  const std::size_t header_at = begin_frame(frame);
  frame.insert(frame.end(), body.begin(), body.end());
  end_frame(frame, header_at);
  return frame;
}

}  // namespace framing_test

TEST(FrameParser, SingleFrameRoundTrips) {
  FrameParser parser;
  const Bytes body{1, 2, 3, 4, 5};
  const Bytes frame = framing_test::make_frame(body);
  parser.append(frame);
  const auto got = parser.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(std::equal(got->begin(), got->end(), body.begin(), body.end()));
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(FrameParser, FrameSplitAcrossArbitraryAppendBoundaries) {
  const Bytes body{10, 20, 30, 40, 50, 60, 70};
  const Bytes frame = framing_test::make_frame(body);
  // Every split point, including mid-header.
  for (std::size_t cut = 0; cut <= frame.size(); ++cut) {
    FrameParser parser;
    parser.append(std::span<const std::uint8_t>(frame.data(), cut));
    if (cut < frame.size()) {
      EXPECT_FALSE(parser.next().has_value());
    }
    parser.append(
        std::span<const std::uint8_t>(frame.data() + cut, frame.size() - cut));
    const auto got = parser.next();
    ASSERT_TRUE(got.has_value()) << "cut=" << cut;
    EXPECT_TRUE(
        std::equal(got->begin(), got->end(), body.begin(), body.end()));
  }
}

TEST(FrameParser, BurstOfFramesInOneAppend) {
  FrameParser parser;
  Bytes stream;
  for (std::uint8_t i = 0; i < 10; ++i) {
    const Bytes frame = framing_test::make_frame(Bytes(i + 1, i));
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  parser.append(stream);
  for (std::uint8_t i = 0; i < 10; ++i) {
    const auto got = parser.next();
    ASSERT_TRUE(got.has_value()) << "frame " << int(i);
    EXPECT_EQ(got->size(), static_cast<std::size_t>(i) + 1);
  }
  EXPECT_FALSE(parser.next().has_value());
}

TEST(FrameParser, ZeroLengthBodyIsAValidFrame) {
  FrameParser parser;
  parser.append(framing_test::make_frame(Bytes{}));
  const auto got = parser.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), 0u);
}

TEST(FrameParser, OversizedFrameLengthMarksStreamCorrupt) {
  FrameParser parser(/*max_frame_len=*/1024);
  Bytes header(kFrameHeaderSize);
  const std::uint32_t huge = 0xfffffff0u;
  std::memcpy(header.data(), &huge, sizeof(huge));
  parser.append(header);
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_TRUE(parser.corrupt());
  EXPECT_EQ(parser.rejected_frame_len(), huge);
  // Corrupt is sticky: even a well-formed frame afterwards is not parsed
  // (the transport must drop the connection).
  parser.append(framing_test::make_frame(Bytes{1}));
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_TRUE(parser.corrupt());
}

TEST(FrameParser, LengthJustAboveCapRejectedAtCapAccepted) {
  FrameParser small(/*max_frame_len=*/8);
  small.append(framing_test::make_frame(Bytes(9, 0x11)));
  EXPECT_FALSE(small.next().has_value());
  EXPECT_TRUE(small.corrupt());
  EXPECT_EQ(small.rejected_frame_len(), 9u);

  FrameParser exact(/*max_frame_len=*/8);
  exact.append(framing_test::make_frame(Bytes(8, 0x11)));
  EXPECT_TRUE(exact.next().has_value());
  EXPECT_FALSE(exact.corrupt());
}

// -- ReplayLog: the record/replay wire format (src/replay) -----------------
//
// A replay log is loaded from disk, so it is wire input like everything
// else here: random bytes, truncations and bit flips must come back as a
// clean kParseError (or a valid prefix), never UB.  The boundary corpus
// targets the log's semantic validation — sequential delivery ordinals,
// fires referencing created timers, bounded ids — on top of the framing
// and varint edges the generic corpus already covers.

namespace replay_log_test {

// A small valid log exercising every record kind.
ReplayLog make_log() {
  ReplayLog log;
  log.header.seed = 42;
  log.header.substrate = "sim";
  log.header.workload = "ring";
  log.header.num_user_processes = 3;
  log.header.debugger_fanout = 0;
  log.header.num_channels = 10;

  ReplayRecord set;
  set.kind = ReplayRecordKind::kTimerSet;
  set.process = 0;
  set.ordinal = 0;
  set.timer = 17;
  log.records.push_back(set);

  for (std::uint64_t i = 0; i < 3; ++i) {
    ReplayRecord deliver;
    deliver.kind = ReplayRecordKind::kDeliver;
    deliver.process = 1;
    deliver.channel = 2;
    deliver.ordinal = i;
    deliver.hash = 0x1234567890abcdefULL + i;
    deliver.detail = 8;
    log.records.push_back(deliver);
  }

  ReplayRecord fire;
  fire.kind = ReplayRecordKind::kTimerFire;
  fire.process = 0;
  fire.ordinal = 0;
  log.records.push_back(fire);

  ReplayRecord cut;
  cut.kind = ReplayRecordKind::kHaltCut;
  cut.wave = 1;
  cut.state = Bytes{1, 2, 3};
  log.records.push_back(cut);

  ReplayRecord note;
  note.kind = ReplayRecordKind::kAnnotation;
  note.annotation = 0;  // fault kind 0 (drop)
  note.channel = 4;
  note.detail = 9;
  log.records.push_back(note);
  return log;
}

// One framed record appended to a valid header, for crafting bad records.
Bytes log_with_record_frame(const Bytes& record_body) {
  ReplayLog log = make_log();
  log.records.clear();
  Bytes encoded = log.encode();
  const std::size_t at = begin_frame(encoded);
  encoded.insert(encoded.end(), record_body.begin(), record_body.end());
  end_frame(encoded, at);
  return encoded;
}

}  // namespace replay_log_test

TEST_P(FuzzDecode, RandomBytesNeverCrashReplayLogDecode) {
  Rng rng(GetParam() ^ 0x5555);
  for (int i = 0; i < 2000; ++i) {
    const Bytes bytes = random_bytes(rng, 128);
    auto result = ReplayLog::decode(bytes);
    if (result.ok()) (void)result.value().encode();
  }
}

TEST_P(FuzzDecode, BitFlipsOfValidReplayLogFailCleanlyOrReencode) {
  Rng rng(GetParam() ^ 0x6666);
  const Bytes encoded = replay_log_test::make_log().encode();
  for (int i = 0; i < 500; ++i) {
    Bytes mutated = encoded;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    auto result = ReplayLog::decode(mutated);
    if (result.ok()) (void)result.value().encode();
  }
}

// Every truncation either fails cleanly or decodes a strict record prefix
// (cuts on a frame boundary lose whole trailing records, nothing else).
TEST(ReplayLogBoundary, TruncationsFailCleanlyOrDecodeAPrefix) {
  const ReplayLog log = replay_log_test::make_log();
  const Bytes encoded = log.encode();
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    Bytes truncated(encoded.begin(),
                    encoded.begin() + static_cast<std::ptrdiff_t>(cut));
    auto result = ReplayLog::decode(truncated);
    if (!result.ok()) {
      EXPECT_EQ(result.error().code(), ErrorCode::kParseError)
          << "cut=" << cut;
      continue;
    }
    ASSERT_LT(result.value().records.size(), log.records.size())
        << "cut=" << cut;
    const Bytes reencoded = result.value().encode();
    EXPECT_TRUE(std::equal(reencoded.begin(), reencoded.end(),
                           encoded.begin()))
        << "cut=" << cut;
  }
}

TEST(ReplayLogBoundary, BadMagicAndVersionRejected) {
  ReplayLog log = replay_log_test::make_log();
  Bytes encoded = log.encode();
  // Frame header is kFrameHeaderSize bytes, then the u32 magic.
  Bytes bad_magic = encoded;
  bad_magic[kFrameHeaderSize] ^= 0xff;
  EXPECT_FALSE(ReplayLog::decode(bad_magic).ok());
  Bytes bad_version = encoded;
  bad_version[kFrameHeaderSize + 4] ^= 0xff;
  EXPECT_FALSE(ReplayLog::decode(bad_version).ok());
}

TEST(ReplayLogBoundary, UnknownRecordKindRejected) {
  for (const std::uint8_t kind : {kMaxReplayRecordKind + 1, 0x7f, 0xff}) {
    ByteWriter writer;
    writer.u8(static_cast<std::uint8_t>(kind));
    const Bytes encoded =
        replay_log_test::log_with_record_frame(std::move(writer).take());
    auto result = ReplayLog::decode(encoded);
    ASSERT_FALSE(result.ok()) << "kind=" << int(kind);
    EXPECT_EQ(result.error().code(), ErrorCode::kParseError);
  }
}

TEST(ReplayLogBoundary, OutOfRangeProcessAndChannelRejected) {
  // Deliver naming process 3 in a 3-process log (valid ids are 0..2).
  {
    ByteWriter writer;
    writer.u8(static_cast<std::uint8_t>(ReplayRecordKind::kDeliver));
    writer.varint(3);
    writer.varint(0);
    writer.varint(0);
    writer.u64(0);
    writer.varint(0);
    EXPECT_FALSE(ReplayLog::decode(replay_log_test::log_with_record_frame(
                                       std::move(writer).take()))
                     .ok());
  }
  // Deliver naming channel 10 in a 10-channel log (valid ids are 0..9).
  {
    ByteWriter writer;
    writer.u8(static_cast<std::uint8_t>(ReplayRecordKind::kDeliver));
    writer.varint(0);
    writer.varint(10);
    writer.varint(0);
    writer.u64(0);
    writer.varint(0);
    EXPECT_FALSE(ReplayLog::decode(replay_log_test::log_with_record_frame(
                                       std::move(writer).take()))
                     .ok());
  }
}

// Per-channel delivery ordinals are sequential from 0; a gap (or a replayed
// ordinal) is corruption, not a reorderable input.
TEST(ReplayLogBoundary, DeliveryOrdinalGapRejected) {
  for (const std::uint64_t first : {1ULL, 2ULL, ~0ULL}) {
    ByteWriter writer;
    writer.u8(static_cast<std::uint8_t>(ReplayRecordKind::kDeliver));
    writer.varint(0);
    writer.varint(0);
    writer.varint(first);  // channel 0 expects ordinal 0 first
    writer.u64(0);
    writer.varint(0);
    auto result = ReplayLog::decode(
        replay_log_test::log_with_record_frame(std::move(writer).take()));
    ASSERT_FALSE(result.ok()) << "first=" << first;
    EXPECT_EQ(result.error().code(), ErrorCode::kParseError);
  }
}

TEST(ReplayLogBoundary, TimerFireBeforeAnySetRejected) {
  ByteWriter writer;
  writer.u8(static_cast<std::uint8_t>(ReplayRecordKind::kTimerFire));
  writer.varint(0);
  writer.varint(0);  // process 0 has created no timers yet
  EXPECT_FALSE(ReplayLog::decode(replay_log_test::log_with_record_frame(
                                     std::move(writer).take()))
                   .ok());
}

TEST(ReplayLogBoundary, TrailingBytesInRecordFrameRejected) {
  ByteWriter writer;
  writer.u8(static_cast<std::uint8_t>(ReplayRecordKind::kTimerSet));
  writer.varint(0);
  writer.varint(0);
  writer.u32(5);
  writer.u8(0xcc);  // one stray byte after a complete record
  EXPECT_FALSE(ReplayLog::decode(replay_log_test::log_with_record_frame(
                                     std::move(writer).take()))
                   .ok());
}

// Non-canonical varints inside a record: a 10-byte encoding whose spare
// bits overflow u64 must fail the whole log decode, and an over-long
// encoding of a small ordinal must not crash (the reader may accept or
// reject it; accepting yields the same value, which then re-encodes
// canonically).
TEST(ReplayLogBoundary, NonCanonicalVarintInRecordHandledCleanly) {
  {
    Bytes body;
    body.push_back(static_cast<std::uint8_t>(ReplayRecordKind::kTimerFire));
    body.insert(body.end(), 9, 0xff);  // process varint: overflowing u64
    body.push_back(0x7f);
    auto result =
        ReplayLog::decode(replay_log_test::log_with_record_frame(body));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), ErrorCode::kParseError);
  }
  {
    Bytes body;
    body.push_back(static_cast<std::uint8_t>(ReplayRecordKind::kTimerSet));
    body.push_back(0x80);  // process = 0 in a padded two-byte encoding
    body.push_back(0x00);
    body.push_back(0x00);            // ordinal 0
    for (int i = 0; i < 4; ++i) body.push_back(0x05);  // timer u32
    auto result =
        ReplayLog::decode(replay_log_test::log_with_record_frame(body));
    if (result.ok()) {
      const auto& records = result.value().records;
      ASSERT_EQ(records.size(), 1u);
      EXPECT_EQ(records[0].process, 0u);
      (void)result.value().encode();
    } else {
      EXPECT_EQ(result.error().code(), ErrorCode::kParseError);
    }
  }
}

// A huge claimed S_h length inside a HaltCut record must fail the bounds
// check, not allocate or wrap.
TEST(ReplayLogBoundary, HaltCutWithHugeStateLengthRejected) {
  ByteWriter writer;
  writer.u8(static_cast<std::uint8_t>(ReplayRecordKind::kHaltCut));
  writer.varint(1);      // wave
  writer.varint(~0ULL);  // state length prefix claiming UINT64_MAX bytes
  writer.u8(0xaa);
  EXPECT_FALSE(ReplayLog::decode(replay_log_test::log_with_record_frame(
                                     std::move(writer).take()))
                   .ok());
}

TEST(ReplayLogBoundary, ValidLogRoundTripsThroughDecode) {
  const ReplayLog log = replay_log_test::make_log();
  const Bytes encoded = log.encode();
  auto decoded = ReplayLog::decode(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message();
  EXPECT_EQ(decoded.value().records.size(), log.records.size());
  EXPECT_EQ(decoded.value().encode(), encoded);
  EXPECT_EQ(decoded.value().deliveries(), 3u);
  EXPECT_EQ(decoded.value().timer_sets(), 1u);
  EXPECT_EQ(decoded.value().timer_fires(), 1u);
  EXPECT_EQ(decoded.value().halt_cuts(), 1u);
  EXPECT_EQ(decoded.value().annotations(), 1u);
}

TEST(FrameParser, RandomChunkingNeverLosesOrCorruptsFrames) {
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    Bytes stream;
    std::vector<std::size_t> sizes;
    for (int i = 0; i < 20; ++i) {
      const std::size_t len = rng.next_below(100);
      sizes.push_back(len);
      const Bytes frame = framing_test::make_frame(
          Bytes(len, static_cast<std::uint8_t>(i)));
      stream.insert(stream.end(), frame.begin(), frame.end());
    }
    FrameParser parser;
    std::size_t fed = 0;
    std::size_t seen = 0;
    while (seen < sizes.size()) {
      if (fed < stream.size()) {
        const std::size_t chunk =
            std::min(stream.size() - fed, rng.next_below(64) + 1);
        parser.append(
            std::span<const std::uint8_t>(stream.data() + fed, chunk));
        fed += chunk;
      }
      while (const auto got = parser.next()) {
        ASSERT_LT(seen, sizes.size());
        EXPECT_EQ(got->size(), sizes[seen]);
        ++seen;
      }
      ASSERT_FALSE(parser.corrupt());
    }
    EXPECT_EQ(parser.buffered_bytes(), 0u);
  }
}

}  // namespace
}  // namespace ddbg
