// Decode robustness: random and mutated byte strings must never crash the
// decoders — they either parse or return a kParseError.  (Wire input is
// attacker-ish data by definition: another machine produced it.)
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/commands.hpp"
#include "core/predicate.hpp"
#include "net/message.hpp"

namespace ddbg {
namespace {

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes bytes(rng.next_below(max_len + 1));
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
  return bytes;
}

class FuzzDecode : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzDecode, RandomBytesNeverCrashMessageDecode) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const Bytes bytes = random_bytes(rng, 64);
    ByteReader reader(bytes);
    auto result = Message::decode(reader);
    if (result.ok()) {
      // Whatever decoded must re-encode without crashing.
      ByteWriter writer;
      result.value().encode(writer);
    }
  }
}

TEST_P(FuzzDecode, RandomBytesNeverCrashCommandDecode) {
  Rng rng(GetParam() ^ 0x1111);
  for (int i = 0; i < 2000; ++i) {
    const Bytes bytes = random_bytes(rng, 96);
    auto result = Command::decode(bytes);
    if (result.ok()) {
      (void)result.value().encode();
    }
  }
}

TEST_P(FuzzDecode, RandomBytesNeverCrashPredicateDecode) {
  Rng rng(GetParam() ^ 0x2222);
  for (int i = 0; i < 2000; ++i) {
    const Bytes bytes = random_bytes(rng, 64);
    auto lp = LinkedPredicate::decode_from_bytes(bytes);
    if (lp.ok()) (void)lp.value().describe();
    ByteReader reader(bytes);
    auto spec = BreakpointSpec::decode(reader);
    if (spec.ok()) (void)spec.value().describe();
  }
}

TEST_P(FuzzDecode, TruncationsOfValidMessagesFailCleanly) {
  Rng rng(GetParam() ^ 0x3333);
  Message valid = Message::halt_marker(HaltId(7), {ProcessId(1), ProcessId(2)});
  valid.vclock = VectorClock(4);
  valid.vclock.tick(ProcessId(3));
  valid.payload = Bytes{1, 2, 3, 4, 5};
  ByteWriter writer;
  valid.encode(writer);
  const Bytes& encoded = writer.buffer();
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    Bytes truncated(encoded.begin(),
                    encoded.begin() + static_cast<std::ptrdiff_t>(cut));
    ByteReader reader(truncated);
    auto result = Message::decode(reader);
    // Truncations must never "succeed" into garbage beyond the buffer.
    if (result.ok()) {
      EXPECT_TRUE(reader.exhausted() || cut < encoded.size());
    }
  }
}

TEST_P(FuzzDecode, BitFlipsOfValidCommandsFailCleanlyOrRoundTrip) {
  Rng rng(GetParam() ^ 0x4444);
  ProcessSnapshot snapshot;
  snapshot.process = ProcessId(1);
  snapshot.state = Bytes{9, 9};
  snapshot.in_channels.push_back(ChannelState{ChannelId(0), {Bytes{1}}});
  const Bytes encoded =
      Command::halt_report(ProcessId(1), 3, snapshot).encode();
  for (int i = 0; i < 500; ++i) {
    Bytes mutated = encoded;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    auto result = Command::decode(mutated);
    if (result.ok()) (void)result.value().encode();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDecode,
                         ::testing::Values(1u, 2u, 3u, 4u));

// Boundary-value corpus: crafted inputs at the edges of the varint and
// length-prefix encodings.  These target the exact overflow modes random
// fuzzing is unlikely to hit: length prefixes near UINT64_MAX (where
// `pos_ + len` wraps) and 10-byte varints whose spare bits do not fit in
// 64 bits.

// A varint-encoded length claiming nearly UINT64_MAX bytes must fail the
// bounds check, not wrap it.
TEST(DecodeBoundary, HugeLengthPrefixFailsStr) {
  for (const std::uint64_t len :
       {~0ULL, ~0ULL - 1, ~0ULL - 7, 1ULL << 63, (1ULL << 32) + 1}) {
    ByteWriter writer;
    writer.varint(len);
    writer.u8('x');  // a few real bytes after the lying prefix
    writer.u8('y');
    const Bytes encoded = std::move(writer).take();
    ByteReader reader(encoded);
    auto result = reader.str();
    EXPECT_FALSE(result.ok()) << "len=" << len;
  }
}

TEST(DecodeBoundary, HugeLengthPrefixFailsBytes) {
  for (const std::uint64_t len : {~0ULL, ~0ULL - 3, 1ULL << 62}) {
    ByteWriter writer;
    writer.varint(len);
    writer.u8(0xaa);
    const Bytes encoded = std::move(writer).take();
    ByteReader reader(encoded);
    auto result = reader.bytes();
    EXPECT_FALSE(result.ok()) << "len=" << len;
  }
}

// The length that would make `pos_ + len` exactly wrap to a small value.
TEST(DecodeBoundary, WrappingLengthPrefixFails) {
  ByteWriter writer;
  writer.varint(0);  // placeholder; rebuilt below with a precise length
  Bytes prefix;
  {
    // After reading the varint, pos_ is the prefix size; a length of
    // (UINT64_MAX - pos_ + 1) makes pos_ + len == 0 under wraparound.
    ByteWriter w;
    w.varint(~0ULL - 9);  // 10-byte varint, so pos_ == 10 after the read
    prefix = std::move(w).take();
    ASSERT_EQ(prefix.size(), 10u);
  }
  ByteReader reader(prefix);
  auto result = reader.bytes();
  EXPECT_FALSE(result.ok());
}

// Canonical UINT64_MAX: nine 0xff continuation bytes, final byte 0x01.
TEST(DecodeBoundary, MaxVarintRoundTrips) {
  for (const std::uint64_t v :
       {~0ULL, ~0ULL - 1, 1ULL << 63, (1ULL << 63) - 1}) {
    ByteWriter writer;
    writer.varint(v);
    const Bytes encoded = std::move(writer).take();
    ByteReader reader(encoded);
    auto result = reader.varint();
    ASSERT_TRUE(result.ok()) << "v=" << v;
    EXPECT_EQ(result.value(), v);
    EXPECT_TRUE(reader.exhausted());
  }
}

// Ten-byte varints whose tenth byte carries payload bits beyond bit 63
// (0x7e mask) encode values that cannot fit in a u64; accepting them would
// silently truncate.  Before the fix these decoded to wrong values.
TEST(DecodeBoundary, TenByteVarintWithSpareBitsRejected) {
  for (const std::uint8_t last : {0x02, 0x03, 0x7e, 0x7f}) {
    Bytes encoded(9, 0xff);
    encoded.push_back(last);
    ByteReader reader(encoded);
    auto result = reader.varint();
    EXPECT_FALSE(result.ok()) << "last=" << static_cast<int>(last);
  }
}

// An eleventh byte is always too long, whatever the bits.
TEST(DecodeBoundary, ElevenByteVarintRejected) {
  Bytes encoded(10, 0x80);  // ten continuation bytes with zero payload
  encoded.push_back(0x01);
  ByteReader reader(encoded);
  auto result = reader.varint();
  EXPECT_FALSE(result.ok());
}

// Truncated prefixes: the varint length parses but the payload is short.
TEST(DecodeBoundary, TruncatedLengthPrefixFailsCleanly) {
  ByteWriter writer;
  writer.str("hello world");
  Bytes encoded = std::move(writer).take();
  for (std::size_t cut = 1; cut < encoded.size(); ++cut) {
    Bytes truncated(encoded.begin(),
                    encoded.begin() + static_cast<std::ptrdiff_t>(cut));
    ByteReader reader(truncated);
    auto result = reader.str();
    EXPECT_FALSE(result.ok()) << "cut=" << cut;
  }
}

TEST(DecodeBoundary, TruncatedFixedWidthFailsCleanly) {
  ByteWriter writer;
  writer.u64(0x1122334455667788ULL);
  Bytes encoded = std::move(writer).take();
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    Bytes truncated(encoded.begin(),
                    encoded.begin() + static_cast<std::ptrdiff_t>(cut));
    ByteReader reader(truncated);
    EXPECT_FALSE(reader.u64().ok()) << "cut=" << cut;
  }
}

// A message whose embedded string length claims UINT64_MAX must fail the
// whole decode, not crash.  (Message layout: kind byte first; the payload
// length prefix is deeper in, so craft via a valid message then stomp the
// length varint region with a maximal one.)
TEST(DecodeBoundary, MessageWithHugePayloadLengthFails) {
  // Build directly: a bytes field with a lying length inside an otherwise
  // plausible buffer exercises the same reader path Message::decode uses.
  ByteWriter writer;
  writer.u8(0);  // plausible leading byte
  writer.varint(~0ULL);
  for (int i = 0; i < 16; ++i) writer.u8(0xee);
  const Bytes encoded = std::move(writer).take();
  ByteReader reader(encoded);
  (void)reader.u8();
  EXPECT_FALSE(reader.bytes().ok());
}

}  // namespace
}  // namespace ddbg
