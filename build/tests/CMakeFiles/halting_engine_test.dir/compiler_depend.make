# Empty compiler generated dependencies file for halting_engine_test.
# This may be replaced when dependencies are built.
