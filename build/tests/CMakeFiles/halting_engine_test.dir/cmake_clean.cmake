file(REMOVE_RECURSE
  "CMakeFiles/halting_engine_test.dir/halting_engine_test.cpp.o"
  "CMakeFiles/halting_engine_test.dir/halting_engine_test.cpp.o.d"
  "halting_engine_test"
  "halting_engine_test.pdb"
  "halting_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halting_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
