# Empty dependencies file for restore_test.
# This may be replaced when dependencies are built.
