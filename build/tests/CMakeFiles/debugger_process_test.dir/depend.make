# Empty dependencies file for debugger_process_test.
# This may be replaced when dependencies are built.
