file(REMOVE_RECURSE
  "CMakeFiles/debugger_process_test.dir/debugger_process_test.cpp.o"
  "CMakeFiles/debugger_process_test.dir/debugger_process_test.cpp.o.d"
  "debugger_process_test"
  "debugger_process_test.pdb"
  "debugger_process_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debugger_process_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
