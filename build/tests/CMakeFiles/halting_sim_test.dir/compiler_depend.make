# Empty compiler generated dependencies file for halting_sim_test.
# This may be replaced when dependencies are built.
