file(REMOVE_RECURSE
  "CMakeFiles/halting_sim_test.dir/halting_sim_test.cpp.o"
  "CMakeFiles/halting_sim_test.dir/halting_sim_test.cpp.o.d"
  "halting_sim_test"
  "halting_sim_test.pdb"
  "halting_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halting_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
