# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/clock_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/message_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/predicate_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/halting_engine_test[1]_include.cmake")
include("/root/repo/build/tests/halting_sim_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_runtime_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/shim_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/debugger_process_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_decode_test[1]_include.cmake")
include("/root/repo/build/tests/restore_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/deadlock_test[1]_include.cmake")
