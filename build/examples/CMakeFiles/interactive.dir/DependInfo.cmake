
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/interactive.cpp" "examples/CMakeFiles/interactive.dir/interactive.cpp.o" "gcc" "examples/CMakeFiles/interactive.dir/interactive.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/debugger/CMakeFiles/ddbg_debugger.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ddbg_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ddbg_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ddbg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ddbg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ddbg_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ddbg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ddbg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/ddbg_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ddbg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
