# Empty dependencies file for scp_explorer.
# This may be replaced when dependencies are built.
