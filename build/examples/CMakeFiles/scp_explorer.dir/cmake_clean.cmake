file(REMOVE_RECURSE
  "CMakeFiles/scp_explorer.dir/scp_explorer.cpp.o"
  "CMakeFiles/scp_explorer.dir/scp_explorer.cpp.o.d"
  "scp_explorer"
  "scp_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scp_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
