# Empty compiler generated dependencies file for pipeline_debug.
# This may be replaced when dependencies are built.
