file(REMOVE_RECURSE
  "CMakeFiles/pipeline_debug.dir/pipeline_debug.cpp.o"
  "CMakeFiles/pipeline_debug.dir/pipeline_debug.cpp.o.d"
  "pipeline_debug"
  "pipeline_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
