file(REMOVE_RECURSE
  "CMakeFiles/deadlock_hunt.dir/deadlock_hunt.cpp.o"
  "CMakeFiles/deadlock_hunt.dir/deadlock_hunt.cpp.o.d"
  "deadlock_hunt"
  "deadlock_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadlock_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
