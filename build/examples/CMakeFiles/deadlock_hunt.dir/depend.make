# Empty dependencies file for deadlock_hunt.
# This may be replaced when dependencies are built.
