file(REMOVE_RECURSE
  "CMakeFiles/ddbg_analysis.dir/consistency.cpp.o"
  "CMakeFiles/ddbg_analysis.dir/consistency.cpp.o.d"
  "CMakeFiles/ddbg_analysis.dir/deadlock.cpp.o"
  "CMakeFiles/ddbg_analysis.dir/deadlock.cpp.o.d"
  "CMakeFiles/ddbg_analysis.dir/scp.cpp.o"
  "CMakeFiles/ddbg_analysis.dir/scp.cpp.o.d"
  "CMakeFiles/ddbg_analysis.dir/trace.cpp.o"
  "CMakeFiles/ddbg_analysis.dir/trace.cpp.o.d"
  "libddbg_analysis.a"
  "libddbg_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddbg_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
