
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/consistency.cpp" "src/analysis/CMakeFiles/ddbg_analysis.dir/consistency.cpp.o" "gcc" "src/analysis/CMakeFiles/ddbg_analysis.dir/consistency.cpp.o.d"
  "/root/repo/src/analysis/deadlock.cpp" "src/analysis/CMakeFiles/ddbg_analysis.dir/deadlock.cpp.o" "gcc" "src/analysis/CMakeFiles/ddbg_analysis.dir/deadlock.cpp.o.d"
  "/root/repo/src/analysis/scp.cpp" "src/analysis/CMakeFiles/ddbg_analysis.dir/scp.cpp.o" "gcc" "src/analysis/CMakeFiles/ddbg_analysis.dir/scp.cpp.o.d"
  "/root/repo/src/analysis/trace.cpp" "src/analysis/CMakeFiles/ddbg_analysis.dir/trace.cpp.o" "gcc" "src/analysis/CMakeFiles/ddbg_analysis.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ddbg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ddbg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ddbg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/ddbg_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ddbg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
