# Empty dependencies file for ddbg_analysis.
# This may be replaced when dependencies are built.
