file(REMOVE_RECURSE
  "libddbg_analysis.a"
)
