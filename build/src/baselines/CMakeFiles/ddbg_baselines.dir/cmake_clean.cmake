file(REMOVE_RECURSE
  "CMakeFiles/ddbg_baselines.dir/central_hub.cpp.o"
  "CMakeFiles/ddbg_baselines.dir/central_hub.cpp.o.d"
  "CMakeFiles/ddbg_baselines.dir/naive_halt.cpp.o"
  "CMakeFiles/ddbg_baselines.dir/naive_halt.cpp.o.d"
  "libddbg_baselines.a"
  "libddbg_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddbg_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
