file(REMOVE_RECURSE
  "libddbg_baselines.a"
)
