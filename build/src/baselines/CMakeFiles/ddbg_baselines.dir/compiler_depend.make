# Empty compiler generated dependencies file for ddbg_baselines.
# This may be replaced when dependencies are built.
