
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/runtime.cpp" "src/runtime/CMakeFiles/ddbg_runtime.dir/runtime.cpp.o" "gcc" "src/runtime/CMakeFiles/ddbg_runtime.dir/runtime.cpp.o.d"
  "/root/repo/src/runtime/tcp_runtime.cpp" "src/runtime/CMakeFiles/ddbg_runtime.dir/tcp_runtime.cpp.o" "gcc" "src/runtime/CMakeFiles/ddbg_runtime.dir/tcp_runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ddbg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/ddbg_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ddbg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
