file(REMOVE_RECURSE
  "libddbg_runtime.a"
)
