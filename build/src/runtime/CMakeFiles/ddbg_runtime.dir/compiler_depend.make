# Empty compiler generated dependencies file for ddbg_runtime.
# This may be replaced when dependencies are built.
