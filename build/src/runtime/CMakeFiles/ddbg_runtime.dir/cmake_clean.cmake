file(REMOVE_RECURSE
  "CMakeFiles/ddbg_runtime.dir/runtime.cpp.o"
  "CMakeFiles/ddbg_runtime.dir/runtime.cpp.o.d"
  "CMakeFiles/ddbg_runtime.dir/tcp_runtime.cpp.o"
  "CMakeFiles/ddbg_runtime.dir/tcp_runtime.cpp.o.d"
  "libddbg_runtime.a"
  "libddbg_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddbg_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
