file(REMOVE_RECURSE
  "CMakeFiles/ddbg_common.dir/logging.cpp.o"
  "CMakeFiles/ddbg_common.dir/logging.cpp.o.d"
  "libddbg_common.a"
  "libddbg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddbg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
