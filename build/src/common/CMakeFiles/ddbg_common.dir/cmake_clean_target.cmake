file(REMOVE_RECURSE
  "libddbg_common.a"
)
