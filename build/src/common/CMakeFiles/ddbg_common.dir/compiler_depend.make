# Empty compiler generated dependencies file for ddbg_common.
# This may be replaced when dependencies are built.
