file(REMOVE_RECURSE
  "libddbg_clock.a"
)
