# Empty dependencies file for ddbg_clock.
# This may be replaced when dependencies are built.
