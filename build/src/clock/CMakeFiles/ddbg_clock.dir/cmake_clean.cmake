file(REMOVE_RECURSE
  "CMakeFiles/ddbg_clock.dir/happened_before.cpp.o"
  "CMakeFiles/ddbg_clock.dir/happened_before.cpp.o.d"
  "CMakeFiles/ddbg_clock.dir/vector_clock.cpp.o"
  "CMakeFiles/ddbg_clock.dir/vector_clock.cpp.o.d"
  "libddbg_clock.a"
  "libddbg_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddbg_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
