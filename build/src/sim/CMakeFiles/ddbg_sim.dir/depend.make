# Empty dependencies file for ddbg_sim.
# This may be replaced when dependencies are built.
