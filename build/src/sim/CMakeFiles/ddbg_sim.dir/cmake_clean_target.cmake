file(REMOVE_RECURSE
  "libddbg_sim.a"
)
