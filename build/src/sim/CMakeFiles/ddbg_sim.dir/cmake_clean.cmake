file(REMOVE_RECURSE
  "CMakeFiles/ddbg_sim.dir/simulation.cpp.o"
  "CMakeFiles/ddbg_sim.dir/simulation.cpp.o.d"
  "libddbg_sim.a"
  "libddbg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddbg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
