file(REMOVE_RECURSE
  "CMakeFiles/ddbg_debugger.dir/debugger_process.cpp.o"
  "CMakeFiles/ddbg_debugger.dir/debugger_process.cpp.o.d"
  "CMakeFiles/ddbg_debugger.dir/harness.cpp.o"
  "CMakeFiles/ddbg_debugger.dir/harness.cpp.o.d"
  "CMakeFiles/ddbg_debugger.dir/restore.cpp.o"
  "CMakeFiles/ddbg_debugger.dir/restore.cpp.o.d"
  "CMakeFiles/ddbg_debugger.dir/session.cpp.o"
  "CMakeFiles/ddbg_debugger.dir/session.cpp.o.d"
  "libddbg_debugger.a"
  "libddbg_debugger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddbg_debugger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
