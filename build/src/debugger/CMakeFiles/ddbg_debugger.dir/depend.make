# Empty dependencies file for ddbg_debugger.
# This may be replaced when dependencies are built.
