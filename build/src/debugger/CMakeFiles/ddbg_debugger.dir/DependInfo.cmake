
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/debugger/debugger_process.cpp" "src/debugger/CMakeFiles/ddbg_debugger.dir/debugger_process.cpp.o" "gcc" "src/debugger/CMakeFiles/ddbg_debugger.dir/debugger_process.cpp.o.d"
  "/root/repo/src/debugger/harness.cpp" "src/debugger/CMakeFiles/ddbg_debugger.dir/harness.cpp.o" "gcc" "src/debugger/CMakeFiles/ddbg_debugger.dir/harness.cpp.o.d"
  "/root/repo/src/debugger/restore.cpp" "src/debugger/CMakeFiles/ddbg_debugger.dir/restore.cpp.o" "gcc" "src/debugger/CMakeFiles/ddbg_debugger.dir/restore.cpp.o.d"
  "/root/repo/src/debugger/session.cpp" "src/debugger/CMakeFiles/ddbg_debugger.dir/session.cpp.o" "gcc" "src/debugger/CMakeFiles/ddbg_debugger.dir/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ddbg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ddbg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ddbg_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ddbg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/ddbg_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ddbg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
