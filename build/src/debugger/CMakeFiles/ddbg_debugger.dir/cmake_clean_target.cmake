file(REMOVE_RECURSE
  "libddbg_debugger.a"
)
