# Empty dependencies file for ddbg_net.
# This may be replaced when dependencies are built.
