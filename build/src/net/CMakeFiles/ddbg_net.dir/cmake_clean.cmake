file(REMOVE_RECURSE
  "CMakeFiles/ddbg_net.dir/message.cpp.o"
  "CMakeFiles/ddbg_net.dir/message.cpp.o.d"
  "CMakeFiles/ddbg_net.dir/topology.cpp.o"
  "CMakeFiles/ddbg_net.dir/topology.cpp.o.d"
  "libddbg_net.a"
  "libddbg_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddbg_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
