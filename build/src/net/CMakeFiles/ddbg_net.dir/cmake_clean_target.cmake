file(REMOVE_RECURSE
  "libddbg_net.a"
)
