file(REMOVE_RECURSE
  "CMakeFiles/ddbg_core.dir/commands.cpp.o"
  "CMakeFiles/ddbg_core.dir/commands.cpp.o.d"
  "CMakeFiles/ddbg_core.dir/debug_shim.cpp.o"
  "CMakeFiles/ddbg_core.dir/debug_shim.cpp.o.d"
  "CMakeFiles/ddbg_core.dir/event.cpp.o"
  "CMakeFiles/ddbg_core.dir/event.cpp.o.d"
  "CMakeFiles/ddbg_core.dir/global_state.cpp.o"
  "CMakeFiles/ddbg_core.dir/global_state.cpp.o.d"
  "CMakeFiles/ddbg_core.dir/halting.cpp.o"
  "CMakeFiles/ddbg_core.dir/halting.cpp.o.d"
  "CMakeFiles/ddbg_core.dir/lp_detector.cpp.o"
  "CMakeFiles/ddbg_core.dir/lp_detector.cpp.o.d"
  "CMakeFiles/ddbg_core.dir/predicate.cpp.o"
  "CMakeFiles/ddbg_core.dir/predicate.cpp.o.d"
  "CMakeFiles/ddbg_core.dir/predicate_parser.cpp.o"
  "CMakeFiles/ddbg_core.dir/predicate_parser.cpp.o.d"
  "CMakeFiles/ddbg_core.dir/snapshot.cpp.o"
  "CMakeFiles/ddbg_core.dir/snapshot.cpp.o.d"
  "libddbg_core.a"
  "libddbg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddbg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
