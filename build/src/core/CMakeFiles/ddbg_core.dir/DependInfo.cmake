
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/commands.cpp" "src/core/CMakeFiles/ddbg_core.dir/commands.cpp.o" "gcc" "src/core/CMakeFiles/ddbg_core.dir/commands.cpp.o.d"
  "/root/repo/src/core/debug_shim.cpp" "src/core/CMakeFiles/ddbg_core.dir/debug_shim.cpp.o" "gcc" "src/core/CMakeFiles/ddbg_core.dir/debug_shim.cpp.o.d"
  "/root/repo/src/core/event.cpp" "src/core/CMakeFiles/ddbg_core.dir/event.cpp.o" "gcc" "src/core/CMakeFiles/ddbg_core.dir/event.cpp.o.d"
  "/root/repo/src/core/global_state.cpp" "src/core/CMakeFiles/ddbg_core.dir/global_state.cpp.o" "gcc" "src/core/CMakeFiles/ddbg_core.dir/global_state.cpp.o.d"
  "/root/repo/src/core/halting.cpp" "src/core/CMakeFiles/ddbg_core.dir/halting.cpp.o" "gcc" "src/core/CMakeFiles/ddbg_core.dir/halting.cpp.o.d"
  "/root/repo/src/core/lp_detector.cpp" "src/core/CMakeFiles/ddbg_core.dir/lp_detector.cpp.o" "gcc" "src/core/CMakeFiles/ddbg_core.dir/lp_detector.cpp.o.d"
  "/root/repo/src/core/predicate.cpp" "src/core/CMakeFiles/ddbg_core.dir/predicate.cpp.o" "gcc" "src/core/CMakeFiles/ddbg_core.dir/predicate.cpp.o.d"
  "/root/repo/src/core/predicate_parser.cpp" "src/core/CMakeFiles/ddbg_core.dir/predicate_parser.cpp.o" "gcc" "src/core/CMakeFiles/ddbg_core.dir/predicate_parser.cpp.o.d"
  "/root/repo/src/core/snapshot.cpp" "src/core/CMakeFiles/ddbg_core.dir/snapshot.cpp.o" "gcc" "src/core/CMakeFiles/ddbg_core.dir/snapshot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ddbg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/ddbg_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ddbg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
