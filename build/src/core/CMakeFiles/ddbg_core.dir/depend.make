# Empty dependencies file for ddbg_core.
# This may be replaced when dependencies are built.
