file(REMOVE_RECURSE
  "libddbg_core.a"
)
