file(REMOVE_RECURSE
  "libddbg_workload.a"
)
