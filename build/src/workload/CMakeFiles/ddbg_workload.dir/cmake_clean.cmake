file(REMOVE_RECURSE
  "CMakeFiles/ddbg_workload.dir/behaviors.cpp.o"
  "CMakeFiles/ddbg_workload.dir/behaviors.cpp.o.d"
  "CMakeFiles/ddbg_workload.dir/resources.cpp.o"
  "CMakeFiles/ddbg_workload.dir/resources.cpp.o.d"
  "libddbg_workload.a"
  "libddbg_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddbg_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
