# Empty dependencies file for ddbg_workload.
# This may be replaced when dependencies are built.
