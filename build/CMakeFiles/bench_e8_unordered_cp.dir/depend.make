# Empty dependencies file for bench_e8_unordered_cp.
# This may be replaced when dependencies are built.
