file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_unordered_cp.dir/bench/bench_e8_unordered_cp.cpp.o"
  "CMakeFiles/bench_e8_unordered_cp.dir/bench/bench_e8_unordered_cp.cpp.o.d"
  "bench/bench_e8_unordered_cp"
  "bench/bench_e8_unordered_cp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_unordered_cp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
