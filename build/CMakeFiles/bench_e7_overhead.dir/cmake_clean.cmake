file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_overhead.dir/bench/bench_e7_overhead.cpp.o"
  "CMakeFiles/bench_e7_overhead.dir/bench/bench_e7_overhead.cpp.o.d"
  "bench/bench_e7_overhead"
  "bench/bench_e7_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
