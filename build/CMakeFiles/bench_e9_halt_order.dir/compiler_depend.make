# Empty compiler generated dependencies file for bench_e9_halt_order.
# This may be replaced when dependencies are built.
