file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_halt_order.dir/bench/bench_e9_halt_order.cpp.o"
  "CMakeFiles/bench_e9_halt_order.dir/bench/bench_e9_halt_order.cpp.o.d"
  "bench/bench_e9_halt_order"
  "bench/bench_e9_halt_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_halt_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
