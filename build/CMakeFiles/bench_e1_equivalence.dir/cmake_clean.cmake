file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_equivalence.dir/bench/bench_e1_equivalence.cpp.o"
  "CMakeFiles/bench_e1_equivalence.dir/bench/bench_e1_equivalence.cpp.o.d"
  "bench/bench_e1_equivalence"
  "bench/bench_e1_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
