# Empty dependencies file for bench_e10_naive_halt.
# This may be replaced when dependencies are built.
