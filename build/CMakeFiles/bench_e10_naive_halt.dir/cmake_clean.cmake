file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_naive_halt.dir/bench/bench_e10_naive_halt.cpp.o"
  "CMakeFiles/bench_e10_naive_halt.dir/bench/bench_e10_naive_halt.cpp.o.d"
  "bench/bench_e10_naive_halt"
  "bench/bench_e10_naive_halt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_naive_halt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
