file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_scp.dir/bench/bench_e4_scp.cpp.o"
  "CMakeFiles/bench_e4_scp.dir/bench/bench_e4_scp.cpp.o.d"
  "bench/bench_e4_scp"
  "bench/bench_e4_scp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_scp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
