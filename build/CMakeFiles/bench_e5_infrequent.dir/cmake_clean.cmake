file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_infrequent.dir/bench/bench_e5_infrequent.cpp.o"
  "CMakeFiles/bench_e5_infrequent.dir/bench/bench_e5_infrequent.cpp.o.d"
  "bench/bench_e5_infrequent"
  "bench/bench_e5_infrequent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_infrequent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
