# Empty dependencies file for bench_e6_linked_predicates.
# This may be replaced when dependencies are built.
