file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_linked_predicates.dir/bench/bench_e6_linked_predicates.cpp.o"
  "CMakeFiles/bench_e6_linked_predicates.dir/bench/bench_e6_linked_predicates.cpp.o.d"
  "bench/bench_e6_linked_predicates"
  "bench/bench_e6_linked_predicates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_linked_predicates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
