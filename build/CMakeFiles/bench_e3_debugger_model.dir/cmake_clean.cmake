file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_debugger_model.dir/bench/bench_e3_debugger_model.cpp.o"
  "CMakeFiles/bench_e3_debugger_model.dir/bench/bench_e3_debugger_model.cpp.o.d"
  "bench/bench_e3_debugger_model"
  "bench/bench_e3_debugger_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_debugger_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
