# Empty compiler generated dependencies file for bench_e3_debugger_model.
# This may be replaced when dependencies are built.
