file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_acyclic.dir/bench/bench_e2_acyclic.cpp.o"
  "CMakeFiles/bench_e2_acyclic.dir/bench/bench_e2_acyclic.cpp.o.d"
  "bench/bench_e2_acyclic"
  "bench/bench_e2_acyclic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_acyclic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
