# Empty compiler generated dependencies file for bench_e2_acyclic.
# This may be replaced when dependencies are built.
