// SCP analysis (section 3.5, figure 4 of the paper).
//
// For a conjunctive predicate SP1 ∧ SP2, the set of virtual-time pairs at
// which both are satisfied,
//
//   SCP = {(t1, t2) | SP1(t1) ∧ SP2(t2)},
//
// splits into ordered-SCP (the satisfactions are related by
// happened-before) and unordered-SCP (concurrent).  Ordered pairs are
// detectable with Linked Predicates; unordered pairs are not detectable in
// time.  This module computes the two subsets from a recorded trace using
// the piggybacked vector clocks, which is how experiment E4 regenerates
// figure 4 quantitatively.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/trace.hpp"
#include "core/predicate.hpp"

namespace ddbg {

struct ScpPair {
  LocalEvent first;   // satisfaction of SP1
  LocalEvent second;  // satisfaction of SP2
  CausalOrder order = CausalOrder::kConcurrent;
};

struct ScpAnalysis {
  std::size_t satisfactions_sp1 = 0;
  std::size_t satisfactions_sp2 = 0;
  std::size_t ordered_pairs = 0;    // |ordered-SCP|
  std::size_t unordered_pairs = 0;  // |unordered-SCP|
  std::vector<ScpPair> pairs;       // filled only if keep_pairs

  [[nodiscard]] std::size_t total_pairs() const {
    return ordered_pairs + unordered_pairs;
  }
  [[nodiscard]] double ordered_fraction() const {
    const std::size_t total = total_pairs();
    return total == 0 ? 0.0
                      : static_cast<double>(ordered_pairs) /
                            static_cast<double>(total);
  }
};

// Classify every (SP1-satisfaction, SP2-satisfaction) pair in the trace by
// vector-clock comparison.  SP1 and SP2 must be on different processes for
// the ordered/unordered split to be meaningful (same-process pairs are
// always ordered by program order).
[[nodiscard]] ScpAnalysis analyze_scp(const Trace& trace,
                                      const SimplePredicate& sp1,
                                      const SimplePredicate& sp2,
                                      bool keep_pairs = false);

// Cross-check: classify the same pairs with an explicit happened-before
// graph instead of vector clocks.  Used by tests to validate both
// mechanisms against each other.
[[nodiscard]] ScpAnalysis analyze_scp_via_graph(const Trace& trace,
                                                const SimplePredicate& sp1,
                                                const SimplePredicate& sp2);

}  // namespace ddbg
