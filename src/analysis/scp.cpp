#include "analysis/scp.hpp"

namespace ddbg {

ScpAnalysis analyze_scp(const Trace& trace, const SimplePredicate& sp1,
                        const SimplePredicate& sp2, bool keep_pairs) {
  ScpAnalysis analysis;
  const std::vector<LocalEvent> first = trace.matching(sp1);
  const std::vector<LocalEvent> second = trace.matching(sp2);
  analysis.satisfactions_sp1 = first.size();
  analysis.satisfactions_sp2 = second.size();

  for (const LocalEvent& e1 : first) {
    for (const LocalEvent& e2 : second) {
      const CausalOrder order = e1.vclock.compare(e2.vclock);
      if (order == CausalOrder::kConcurrent) {
        ++analysis.unordered_pairs;
      } else {
        ++analysis.ordered_pairs;
      }
      if (keep_pairs) {
        analysis.pairs.push_back(ScpPair{e1, e2, order});
      }
    }
  }
  return analysis;
}

ScpAnalysis analyze_scp_via_graph(const Trace& trace,
                                  const SimplePredicate& sp1,
                                  const SimplePredicate& sp2) {
  ScpAnalysis analysis;
  const Trace::Graph graph = trace.build_graph();

  std::vector<EventIndex> first;
  std::vector<EventIndex> second;
  for (EventIndex i = 0; i < graph.events.size(); ++i) {
    if (sp1.matches(graph.events[i])) first.push_back(i);
    if (sp2.matches(graph.events[i])) second.push_back(i);
  }
  analysis.satisfactions_sp1 = first.size();
  analysis.satisfactions_sp2 = second.size();

  for (const EventIndex a : first) {
    for (const EventIndex b : second) {
      if (graph.graph.concurrent(a, b)) {
        ++analysis.unordered_pairs;
      } else {
        ++analysis.ordered_pairs;
      }
    }
  }
  return analysis;
}

}  // namespace ddbg
