// Event traces: the analysis layer's record of what happened.
//
// A Trace collects the LocalEvents emitted by the debug shims (install
// Trace::sink() as DebugShim::Options::trace_sink).  It is thread-safe so
// the multithreaded runtime's shims can share one.  From a trace the
// analysis layer derives happened-before graphs, SCP classifications and
// cut-consistency witnesses.
#pragma once

#include <mutex>
#include <vector>

#include "clock/happened_before.hpp"
#include "core/event.hpp"
#include "core/predicate.hpp"

namespace ddbg {

class Trace {
 public:
  Trace() = default;

  void record(const LocalEvent& event) {
    std::lock_guard<std::mutex> guard{mutex_};
    events_.push_back(event);
  }

  // A sink bound to this trace, suitable for DebugShim::Options.
  [[nodiscard]] std::function<void(const LocalEvent&)> sink() {
    return [this](const LocalEvent& event) { record(event); };
  }

  [[nodiscard]] std::vector<LocalEvent> events() const {
    std::lock_guard<std::mutex> guard{mutex_};
    return events_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> guard{mutex_};
    return events_.size();
  }

  void clear() {
    std::lock_guard<std::mutex> guard{mutex_};
    events_.clear();
  }

  // All events matching a Simple Predicate, in recording order.
  [[nodiscard]] std::vector<LocalEvent> matching(
      const SimplePredicate& sp) const;

  // Build an explicit happened-before graph: program-order edges within
  // each process (by local_seq) and send->receive edges (by message_id).
  // Returns the graph plus, aligned by index, the events used.
  struct Graph {
    HappenedBeforeGraph graph;
    std::vector<LocalEvent> events;
  };
  [[nodiscard]] Graph build_graph() const;

  // Human-readable causal timeline: events ordered by (Lamport time,
  // process), one line each, with sends and receives paired by message id.
  // Truncates to max_events lines (0 = no limit).
  [[nodiscard]] std::string render_timeline(std::size_t max_events = 200) const;

 private:
  mutable std::mutex mutex_;
  std::vector<LocalEvent> events_;
};

}  // namespace ddbg
