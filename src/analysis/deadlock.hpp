// Deadlock detection on a consistent global state — the canonical "now
// that the program is halted, what do I do with S_h" analysis.
//
// A circular wait is a *stable* property: once present it persists, so a
// consistent snapshot either shows it or the system was not deadlocked at
// the cut.  Soundness, however, needs the channel contents: a process whose
// snapshot says "blocked waiting for a grant" is not actually stuck if the
// GRANT is already in flight.  Per-process inspection (or the naive halt of
// experiment E10, which loses channel state) reports such *phantom
// deadlocks*; S_h does not, because the Halting Algorithm records every
// in-flight message.
//
// The analysis is written against the ResourceRingProcess workload's state
// encoding (workload/resources.hpp).
#pragma once

#include <vector>

#include "common/result.hpp"
#include "core/global_state.hpp"
#include "workload/resources.hpp"

namespace ddbg {

struct DeadlockReport {
  bool deadlocked = false;
  // One circular wait, in ring order, when deadlocked.
  std::vector<ProcessId> cycle;
  // Processes whose snapshot says "blocked" (before channel rescue).
  std::size_t blocked_processes = 0;
  // Blocked processes whose unblocking message was found in a recorded
  // channel state (phantom-deadlock candidates a naive analysis would get
  // wrong).
  std::size_t rescued_by_channel_state = 0;
};

// Analyze a halted/recorded global state of a ResourceRingProcess system.
[[nodiscard]] Result<DeadlockReport> find_deadlock(const GlobalState& state);

}  // namespace ddbg
