// Consistency verification for global states.
//
// Theorem 1 of the paper (due to Chandy & Lamport) asserts the recorded
// state is globally consistent, and Theorem 2 that the halted state equals
// it.  This module *checks* those claims on actual executions:
//
//   * vector-clock criterion: a cut {C_p} is consistent iff for all p, q:
//     C_q[p] <= C_p[p] — no process has observed another past its own
//     recorded point;
//   * message accounting against a trace: every receive inside the cut has
//     its send inside the cut (no orphan messages), and every message sent
//     inside the cut but not received inside it appears in a recorded
//     channel state (no lost messages).
//
// The naive-halt baseline (experiment E10) fails the accounting check;
// the Halting Algorithm passes both by construction.
#pragma once

#include <optional>
#include <string>

#include "analysis/trace.hpp"
#include "core/global_state.hpp"

namespace ddbg {

// Vector-clock cut consistency.  Returns a description of the first
// violation, or nullopt if consistent.
[[nodiscard]] std::optional<std::string> find_cut_inconsistency(
    const GlobalState& state);

[[nodiscard]] inline bool consistent_cut(const GlobalState& state) {
  return !find_cut_inconsistency(state).has_value();
}

struct MessageAccounting {
  // Receives inside the cut whose send is outside it (must be 0 for a
  // consistent cut).
  std::size_t orphan_receives = 0;
  // Messages sent inside the cut, not received inside it, and missing from
  // the recorded channel states ("lost" in-flight messages).
  std::size_t lost_messages = 0;
  // Messages recorded in channel states (for cross-checking).
  std::size_t recorded_in_channels = 0;
  // In-flight messages according to the trace (sent inside, received
  // outside or never).
  std::size_t in_flight_per_trace = 0;

  [[nodiscard]] bool clean() const {
    return orphan_receives == 0 && lost_messages == 0 &&
           recorded_in_channels == in_flight_per_trace;
  }
};

// Account for every application message in `trace` against the cut defined
// by `state`'s per-process vector clocks.  An event at process p is inside
// the cut iff event.vclock[p] <= state.at(p).vclock[p].
[[nodiscard]] MessageAccounting account_messages(const Trace& trace,
                                                 const GlobalState& state);

}  // namespace ddbg
