#include "analysis/deadlock.hpp"

#include <algorithm>
#include <map>

namespace ddbg {

namespace {

// Does any recorded in-flight message to this process unblock its wait?
bool unblocking_message_in_flight(
    const ProcessSnapshot& snapshot,
    ResourceRingProcess::WaitKind wait_kind) {
  const ResourceMessage needed =
      wait_kind == ResourceRingProcess::WaitKind::kGrant
          ? ResourceMessage::kGrant
          : ResourceMessage::kRelease;
  for (const ChannelState& channel : snapshot.in_channels) {
    for (const Bytes& payload : channel.messages) {
      auto kind = ResourceRingProcess::decode_message(payload);
      if (kind.ok() && kind.value() == needed) return true;
    }
  }
  return false;
}

}  // namespace

Result<DeadlockReport> find_deadlock(const GlobalState& state) {
  const auto n = static_cast<std::uint32_t>(state.size());
  if (n < 2) {
    return Error(ErrorCode::kInvalidArgument,
                 "deadlock analysis needs at least 2 processes");
  }

  DeadlockReport report;
  // waits_for[p] = the process p is genuinely blocked on (at most one).
  std::map<ProcessId, ProcessId> waits_for;

  for (const auto& [process, snapshot] : state.snapshots()) {
    auto decoded = ResourceRingProcess::decode_state(snapshot.state);
    if (!decoded.ok()) return decoded.error();
    if (decoded.value().wait_kind == ResourceRingProcess::WaitKind::kNone) {
      continue;
    }
    ++report.blocked_processes;
    if (unblocking_message_in_flight(snapshot, decoded.value().wait_kind)) {
      // The wait is about to be satisfied: not a real edge.  A naive
      // analysis without channel state would count it.
      ++report.rescued_by_channel_state;
      continue;
    }
    // Ring positions determine the wait target.
    const std::uint32_t i = process.value();
    const ProcessId target =
        decoded.value().wait_kind == ResourceRingProcess::WaitKind::kGrant
            ? ProcessId((i + 1) % n)     // successor holds what we want
            : ProcessId((i + n - 1) % n);  // predecessor has our resource
    waits_for[process] = target;
  }

  // Cycle detection on the (out-degree <= 1) waits-for graph.
  enum class Color { kWhite, kGray, kBlack };
  std::map<ProcessId, Color> color;
  for (const auto& [p, target] : waits_for) color[p] = Color::kWhite;

  for (const auto& [start, start_target] : waits_for) {
    if (color[start] != Color::kWhite) continue;
    std::vector<ProcessId> path;
    ProcessId current = start;
    while (true) {
      auto edge = waits_for.find(current);
      if (edge == waits_for.end() || color[current] == Color::kBlack) {
        break;  // chain ends at an unblocked (or already-cleared) process
      }
      if (color[current] == Color::kGray) {
        // Found a cycle: extract it from the path.
        report.deadlocked = true;
        auto cycle_start =
            std::find(path.begin(), path.end(), current);
        report.cycle.assign(cycle_start, path.end());
        return report;
      }
      color[current] = Color::kGray;
      path.push_back(current);
      current = edge->second;
    }
    for (const ProcessId p : path) color[p] = Color::kBlack;
  }
  return report;
}

}  // namespace ddbg
