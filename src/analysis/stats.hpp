// Small summary-statistics helper for the experiment harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

namespace ddbg {

struct Summary {
  std::size_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
};

[[nodiscard]] inline Summary summarize(std::vector<double> samples) {
  Summary summary;
  summary.count = samples.size();
  if (samples.empty()) return summary;
  std::sort(samples.begin(), samples.end());
  summary.min = samples.front();
  summary.max = samples.back();
  double total = 0;
  for (const double s : samples) total += s;
  summary.mean = total / static_cast<double>(samples.size());
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1) + 0.5);
    return samples[std::min(idx, samples.size() - 1)];
  };
  summary.p50 = at(0.50);
  summary.p95 = at(0.95);
  return summary;
}

}  // namespace ddbg
