#include "analysis/consistency.hpp"

#include <map>
#include <sstream>

namespace ddbg {

std::optional<std::string> find_cut_inconsistency(const GlobalState& state) {
  // C_q[p] <= C_p[p] for all p, q: nobody observed p beyond p's own
  // recorded progress.
  for (const auto& [p, snap_p] : state.snapshots()) {
    const std::uint64_t own_progress = snap_p.vclock.at(p);
    for (const auto& [q, snap_q] : state.snapshots()) {
      if (p == q) continue;
      const std::uint64_t observed = snap_q.vclock.at(p);
      if (observed > own_progress) {
        std::ostringstream out;
        out << to_string(q) << " observed " << to_string(p) << " at "
            << observed << " but " << to_string(p) << " recorded only "
            << own_progress;
        return out.str();
      }
    }
  }
  return std::nullopt;
}

MessageAccounting account_messages(const Trace& trace,
                                   const GlobalState& state) {
  MessageAccounting accounting;

  const auto in_cut = [&](const LocalEvent& event) {
    if (!state.has(event.process)) return false;
    const ProcessSnapshot& snapshot = state.at(event.process);
    return event.vclock.at(event.process) <=
           snapshot.vclock.at(event.process);
  };

  struct MessageInfo {
    bool sent_in_cut = false;
    bool seen_send = false;
    bool received = false;
    bool received_in_cut = false;
    ChannelId channel;
  };
  std::map<std::uint64_t, MessageInfo> messages;

  for (const LocalEvent& event : trace.events()) {
    if (event.message_id == 0) continue;
    if (event.kind == LocalEventKind::kMessageSent) {
      MessageInfo& info = messages[event.message_id];
      info.seen_send = true;
      info.sent_in_cut = in_cut(event);
      info.channel = event.channel;
    } else if (event.kind == LocalEventKind::kMessageReceived) {
      MessageInfo& info = messages[event.message_id];
      info.received = true;
      info.received_in_cut = in_cut(event);
    }
  }

  std::map<ChannelId, std::size_t> in_flight_per_channel;
  for (const auto& [id, info] : messages) {
    if (info.received_in_cut && !(info.seen_send && info.sent_in_cut)) {
      ++accounting.orphan_receives;
    }
    if (info.seen_send && info.sent_in_cut && !info.received_in_cut) {
      ++accounting.in_flight_per_trace;
      ++in_flight_per_channel[info.channel];
    }
  }

  std::map<ChannelId, std::size_t> recorded_per_channel;
  for (const auto& [p, snapshot] : state.snapshots()) {
    for (const ChannelState& channel : snapshot.in_channels) {
      recorded_per_channel[channel.channel] += channel.messages.size();
      accounting.recorded_in_channels += channel.messages.size();
    }
  }

  for (const auto& [channel, in_flight] : in_flight_per_channel) {
    auto it = recorded_per_channel.find(channel);
    const std::size_t recorded =
        it != recorded_per_channel.end() ? it->second : 0;
    if (in_flight > recorded) {
      accounting.lost_messages += in_flight - recorded;
    }
  }
  return accounting;
}

}  // namespace ddbg
