#include "analysis/trace.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace ddbg {

std::vector<LocalEvent> Trace::matching(const SimplePredicate& sp) const {
  std::vector<LocalEvent> out;
  std::lock_guard<std::mutex> guard{mutex_};
  for (const LocalEvent& event : events_) {
    if (sp.matches(event)) out.push_back(event);
  }
  return out;
}

Trace::Graph Trace::build_graph() const {
  Graph result;
  result.events = events();
  // Sort by (process, local_seq) for program order, remembering original
  // indices so message edges can be added afterwards.
  std::vector<std::size_t> order(result.events.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const LocalEvent& ea = result.events[a];
    const LocalEvent& eb = result.events[b];
    if (ea.process != eb.process) return ea.process < eb.process;
    return ea.local_seq < eb.local_seq;
  });

  std::vector<EventIndex> node_of(result.events.size());
  for (const std::size_t i : order) {
    node_of[i] = result.graph.add_event(result.events[i].process);
  }

  // Program-order edges.
  for (std::size_t k = 1; k < order.size(); ++k) {
    const LocalEvent& prev = result.events[order[k - 1]];
    const LocalEvent& curr = result.events[order[k]];
    if (prev.process == curr.process) {
      result.graph.add_edge(node_of[order[k - 1]], node_of[order[k]]);
    }
  }

  // Message edges.
  for (std::size_t i = 0; i < result.events.size(); ++i) {
    const LocalEvent& event = result.events[i];
    if (event.kind == LocalEventKind::kMessageSent && event.message_id != 0) {
      result.graph.register_send(event.message_id, node_of[i]);
    }
  }
  for (std::size_t i = 0; i < result.events.size(); ++i) {
    const LocalEvent& event = result.events[i];
    if (event.kind == LocalEventKind::kMessageReceived &&
        event.message_id != 0) {
      result.graph.link_receive(event.message_id, node_of[i]);
    }
  }

  // Reorder stored events to match node indices (node k == events[k]).
  std::vector<LocalEvent> reordered(result.events.size());
  for (std::size_t i = 0; i < result.events.size(); ++i) {
    reordered[node_of[i]] = result.events[i];
  }
  result.events = std::move(reordered);
  return result;
}

std::string Trace::render_timeline(std::size_t max_events) const {
  std::vector<LocalEvent> sorted = events();
  std::sort(sorted.begin(), sorted.end(),
            [](const LocalEvent& a, const LocalEvent& b) {
              if (a.lamport != b.lamport) return a.lamport < b.lamport;
              if (a.process != b.process) return a.process < b.process;
              return a.local_seq < b.local_seq;
            });

  // Pair sends with receivers (and vice versa) for the arrows.
  std::map<std::uint64_t, ProcessId> sender_of;
  std::map<std::uint64_t, ProcessId> receiver_of;
  for (const LocalEvent& event : sorted) {
    if (event.message_id == 0) continue;
    if (event.kind == LocalEventKind::kMessageSent) {
      sender_of[event.message_id] = event.process;
    } else if (event.kind == LocalEventKind::kMessageReceived) {
      receiver_of[event.message_id] = event.process;
    }
  }

  std::ostringstream out;
  std::size_t printed = 0;
  for (const LocalEvent& event : sorted) {
    if (max_events != 0 && printed >= max_events) {
      out << "... (" << sorted.size() - printed << " more events)\n";
      break;
    }
    out << "[L" << event.lamport << "]\t" << to_string(event.process)
        << "  ";
    switch (event.kind) {
      case LocalEventKind::kMessageSent: {
        out << "send #" << event.message_id;
        auto to = receiver_of.find(event.message_id);
        if (to != receiver_of.end()) {
          out << " -> " << to_string(to->second);
        } else {
          out << " -> (in flight)";
        }
        break;
      }
      case LocalEventKind::kMessageReceived: {
        out << "recv #" << event.message_id;
        auto from = sender_of.find(event.message_id);
        if (from != sender_of.end()) {
          out << " <- " << to_string(from->second);
        }
        break;
      }
      case LocalEventKind::kUserEvent:
        out << "event(" << event.name << ")=" << event.value;
        break;
      case LocalEventKind::kProcedureEntered:
        out << "enter " << event.name << "()";
        break;
      case LocalEventKind::kStateChange:
        out << event.name << " := " << event.value;
        break;
      default:
        out << to_string(event.kind);
        break;
    }
    out << '\n';
    ++printed;
  }
  return out.str();
}

}  // namespace ddbg
