#include "obs/metrics.hpp"

#include <utility>

namespace ddbg::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

void append_latency(std::string& out, const char* name,
                    const LatencySnapshot& l) {
  out += '"';
  out += name;
  out += "\":{\"count\":";
  append_u64(out, l.count);
  out += ",\"total_ns\":";
  append_u64(out, l.total_ns);
  out += ",\"min_ns\":";
  append_u64(out, l.min_ns);
  out += ",\"max_ns\":";
  append_u64(out, l.max_ns);
  out += '}';
}

void append_class_counts(std::string& out, const char* name,
                         const std::uint64_t (&counts)[kNumTrafficClasses]) {
  out += '"';
  out += name;
  out += "\":{";
  for (std::size_t i = 0; i < kNumTrafficClasses; ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += kTrafficClassNames[i];
    out += "\":";
    append_u64(out, counts[i]);
  }
  out += '}';
}

}  // namespace

std::uint64_t ChannelSnapshot::messages_sent() const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : sent) total += n;
  return total;
}

std::uint64_t ChannelSnapshot::messages_delivered() const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : delivered) total += n;
  return total;
}

MetricsRegistry::MetricsRegistry(std::string runtime_label,
                                 std::size_t num_processes,
                                 std::vector<ChannelMeta> channels)
    : runtime_label_(std::move(runtime_label)),
      meta_(std::move(channels)),
      channels_(meta_.size()),
      process_queue_depth_(num_processes) {}

void MetricsRegistry::span_begin(Span span, std::uint64_t key, TimePoint now) {
  std::lock_guard<std::mutex> guard{span_mutex_};
  // Keep the earliest begin for a key: concurrent begin attempts (e.g. a
  // halt wave observed by several workers in the same window) must resolve
  // to the same span start regardless of arrival order.
  auto& open = open_spans_[static_cast<std::size_t>(span)];
  auto [it, inserted] = open.try_emplace(key, now.ns);
  if (!inserted && now.ns < it->second) it->second = now.ns;
}

void MetricsRegistry::span_end(Span span, std::uint64_t key, TimePoint now) {
  std::int64_t started = 0;
  {
    std::lock_guard<std::mutex> guard{span_mutex_};
    auto& open = open_spans_[static_cast<std::size_t>(span)];
    auto it = open.find(key);
    if (it == open.end()) return;
    started = it->second;
    open.erase(it);
  }
  span_stats_[static_cast<std::size_t>(span)].record(now.ns - started);
}

TotalsSnapshot MetricsRegistry::totals() const {
  TotalsSnapshot t;
  for (const ChannelCells& c : channels_) {
    for (std::size_t k = 0; k < kNumTrafficClasses; ++k) {
      t.sent[k] += c.sent[k].get();
      t.delivered[k] += c.delivered[k].get();
    }
    t.bytes_sent += c.bytes_sent.get();
    t.bytes_delivered += c.bytes_delivered.get();
  }
  for (std::size_t k = 0; k < kNumTrafficClasses; ++k) {
    t.messages_sent += t.sent[k];
    t.messages_delivered += t.delivered[k];
  }
  return t;
}

MetricsSnapshot MetricsRegistry::snapshot(TimePoint now) const {
  MetricsSnapshot snap;
  snap.runtime = runtime_label_;
  snap.elapsed_ns = now.ns;

  snap.transport.pool_hits = transport_.pool_hits.get();
  snap.transport.pool_misses = transport_.pool_misses.get();
  snap.transport.deliver_batches = transport_.deliver_batches.get();
  snap.transport.deliver_batch_messages =
      transport_.deliver_batch_messages.get();
  snap.transport.max_deliver_batch = transport_.max_deliver_batch.get();
  snap.transport.write_batches = transport_.write_batches.get();
  snap.transport.write_batch_frames = transport_.write_batch_frames.get();
  snap.transport.max_write_batch = transport_.max_write_batch.get();
  snap.transport.epoll_wakeups = transport_.epoll_wakeups.get();
  snap.transport.frames_per_wakeup_max =
      transport_.frames_per_wakeup_max.get();
  snap.transport.eagain_deferrals = transport_.eagain_deferrals.get();
  snap.transport.mux_channels_per_socket =
      transport_.mux_channels_per_socket.get();
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    snap.transport.faults_injected[k] = transport_.faults_injected[k].get();
  }
  snap.transport.retransmits = transport_.retransmits.get();
  snap.transport.dup_suppressed = transport_.dup_suppressed.get();
  snap.transport.reconnects = transport_.reconnects.get();
  snap.transport.resync_replayed = transport_.resync_replayed.get();
  snap.transport.channel_down = transport_.channel_down.get();

  snap.tier.tree_fanout = tier_.tree_fanout.get();
  snap.tier.acks_aggregated = tier_.acks_aggregated.get();
  snap.tier.markers_suppressed = tier_.markers_suppressed.get();

  snap.session.opened = session_.opened.get();
  snap.session.closed = session_.closed.get();
  snap.session.active_peak = session_.active_peak.get();
  snap.session.requests = session_.requests.get();
  snap.session.request_errors = session_.request_errors.get();
  snap.session.halts_handed_off = session_.halts_handed_off.get();
  snap.session.halts_released = session_.halts_released.get();

  snap.replay.deliveries_logged = replay_.deliveries_logged.get();
  snap.replay.timer_sets_logged = replay_.timer_sets_logged.get();
  snap.replay.timer_fires_logged = replay_.timer_fires_logged.get();
  snap.replay.cuts_logged = replay_.cuts_logged.get();
  snap.replay.annotations_logged = replay_.annotations_logged.get();
  snap.replay.records_logged =
      snap.replay.deliveries_logged + snap.replay.timer_sets_logged +
      snap.replay.timer_fires_logged + snap.replay.cuts_logged +
      snap.replay.annotations_logged;
  snap.replay.log_bytes = replay_.log_bytes.get();
  snap.replay.deliveries_replayed = replay_.deliveries_replayed.get();
  snap.replay.timers_replayed = replay_.timers_replayed.get();
  snap.replay.cuts_replayed = replay_.cuts_replayed.get();
  snap.replay.divergences = replay_.divergences.get();

  snap.processes.resize(process_queue_depth_.size());
  for (std::size_t i = 0; i < snap.processes.size(); ++i) {
    snap.processes[i].id = static_cast<std::uint32_t>(i);
    snap.processes[i].max_queue_depth = process_queue_depth_[i].get();
  }

  // Channels are materialized sparsely: every cell still feeds the totals
  // and the per-process attribution, but only channels with some activity
  // get an entry (a complete graph at N=1024 has ~1M channels, nearly all
  // idle in any one run).
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    const ChannelCells& cells = channels_[i];
    ChannelSnapshot ch;
    ch.id = static_cast<std::uint32_t>(i);
    ch.source = meta_[i].source;
    ch.destination = meta_[i].destination;
    ch.is_control = meta_[i].is_control;
    for (std::size_t k = 0; k < kNumTrafficClasses; ++k) {
      ch.sent[k] = cells.sent[k].get();
      ch.delivered[k] = cells.delivered[k].get();
    }
    ch.bytes_sent = cells.bytes_sent.get();
    ch.bytes_delivered = cells.bytes_delivered.get();
    ch.send_blocked_ns = cells.send_blocked_ns.get();
    ch.max_backlog = cells.max_backlog.get();

    // Attribute channel traffic to its endpoint processes.
    if (ch.source < snap.processes.size()) {
      ProcessSnapshotCounters& p = snap.processes[ch.source];
      for (std::size_t k = 0; k < kNumTrafficClasses; ++k) {
        p.sent[k] += ch.sent[k];
      }
      p.bytes_sent += ch.bytes_sent;
    }
    if (ch.destination < snap.processes.size()) {
      ProcessSnapshotCounters& p = snap.processes[ch.destination];
      for (std::size_t k = 0; k < kNumTrafficClasses; ++k) {
        p.delivered[k] += ch.delivered[k];
      }
      p.bytes_delivered += ch.bytes_delivered;
    }

    for (std::size_t k = 0; k < kNumTrafficClasses; ++k) {
      snap.totals.sent[k] += ch.sent[k];
      snap.totals.delivered[k] += ch.delivered[k];
    }
    snap.totals.bytes_sent += ch.bytes_sent;
    snap.totals.bytes_delivered += ch.bytes_delivered;

    const bool active = ch.messages_sent() != 0 ||
                        ch.messages_delivered() != 0 || ch.bytes_sent != 0 ||
                        ch.bytes_delivered != 0 || ch.send_blocked_ns != 0 ||
                        ch.max_backlog != 0;
    if (active) snap.channels.push_back(ch);
  }
  for (std::size_t k = 0; k < kNumTrafficClasses; ++k) {
    snap.totals.messages_sent += snap.totals.sent[k];
    snap.totals.messages_delivered += snap.totals.delivered[k];
  }

  for (std::size_t s = 0; s < kNumSpans; ++s) {
    const LatencyStat& stat = span_stats_[s];
    snap.spans[s] = LatencySnapshot{stat.count(), stat.total_ns(),
                                    stat.min_ns(), stat.max_ns()};
  }
  return snap;
}

std::string MetricsSnapshot::to_json() const {
  std::string out;
  out.reserve(512 + channels.size() * 256 + processes.size() * 160);

  out += "{\"schema\":\"ddbg.metrics.v1\",\"runtime\":\"";
  out += runtime;  // labels are fixed identifiers; no escaping needed
  out += "\",\"elapsed_ns\":";
  out += std::to_string(elapsed_ns);

  out += ",\"totals\":{\"messages_sent\":";
  append_u64(out, totals.messages_sent);
  out += ",\"messages_delivered\":";
  append_u64(out, totals.messages_delivered);
  out += ",\"bytes_sent\":";
  append_u64(out, totals.bytes_sent);
  out += ",\"bytes_delivered\":";
  append_u64(out, totals.bytes_delivered);
  out += ',';
  append_class_counts(out, "sent", totals.sent);
  out += ',';
  append_class_counts(out, "delivered", totals.delivered);
  out += '}';

  out += ",\"transport\":{\"pool_hits\":";
  append_u64(out, transport.pool_hits);
  out += ",\"pool_misses\":";
  append_u64(out, transport.pool_misses);
  out += ",\"deliver_batches\":";
  append_u64(out, transport.deliver_batches);
  out += ",\"deliver_batch_messages\":";
  append_u64(out, transport.deliver_batch_messages);
  out += ",\"max_deliver_batch\":";
  append_u64(out, transport.max_deliver_batch);
  out += ",\"write_batches\":";
  append_u64(out, transport.write_batches);
  out += ",\"write_batch_frames\":";
  append_u64(out, transport.write_batch_frames);
  out += ",\"max_write_batch\":";
  append_u64(out, transport.max_write_batch);
  out += ",\"epoll_wakeups\":";
  append_u64(out, transport.epoll_wakeups);
  out += ",\"frames_per_wakeup_max\":";
  append_u64(out, transport.frames_per_wakeup_max);
  out += ",\"eagain_deferrals\":";
  append_u64(out, transport.eagain_deferrals);
  out += ",\"mux_channels_per_socket\":";
  append_u64(out, transport.mux_channels_per_socket);
  out += ",\"faults_injected\":{";
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    if (k != 0) out += ',';
    out += '"';
    out += kFaultKindNames[k];
    out += "\":";
    append_u64(out, transport.faults_injected[k]);
  }
  out += "},\"retransmits\":";
  append_u64(out, transport.retransmits);
  out += ",\"dup_suppressed\":";
  append_u64(out, transport.dup_suppressed);
  out += ",\"reconnects\":";
  append_u64(out, transport.reconnects);
  out += ",\"resync_replayed\":";
  append_u64(out, transport.resync_replayed);
  out += ",\"channel_down\":";
  append_u64(out, transport.channel_down);
  out += '}';

  out += ",\"tier\":{\"tree_fanout\":";
  append_u64(out, tier.tree_fanout);
  out += ",\"acks_aggregated\":";
  append_u64(out, tier.acks_aggregated);
  out += ",\"markers_suppressed\":";
  append_u64(out, tier.markers_suppressed);
  out += '}';

  out += ",\"session\":{\"opened\":";
  append_u64(out, session.opened);
  out += ",\"closed\":";
  append_u64(out, session.closed);
  out += ",\"active_peak\":";
  append_u64(out, session.active_peak);
  out += ",\"requests\":";
  append_u64(out, session.requests);
  out += ",\"request_errors\":";
  append_u64(out, session.request_errors);
  out += ",\"halts_handed_off\":";
  append_u64(out, session.halts_handed_off);
  out += ",\"halts_released\":";
  append_u64(out, session.halts_released);
  out += '}';

  out += ",\"replay\":{\"records_logged\":";
  append_u64(out, replay.records_logged);
  out += ",\"deliveries_logged\":";
  append_u64(out, replay.deliveries_logged);
  out += ",\"timer_sets_logged\":";
  append_u64(out, replay.timer_sets_logged);
  out += ",\"timer_fires_logged\":";
  append_u64(out, replay.timer_fires_logged);
  out += ",\"cuts_logged\":";
  append_u64(out, replay.cuts_logged);
  out += ",\"annotations_logged\":";
  append_u64(out, replay.annotations_logged);
  out += ",\"log_bytes\":";
  append_u64(out, replay.log_bytes);
  out += ",\"deliveries_replayed\":";
  append_u64(out, replay.deliveries_replayed);
  out += ",\"timers_replayed\":";
  append_u64(out, replay.timers_replayed);
  out += ",\"cuts_replayed\":";
  append_u64(out, replay.cuts_replayed);
  out += ",\"divergences\":";
  append_u64(out, replay.divergences);
  out += '}';

  out += ",\"processes\":[";
  for (std::size_t i = 0; i < processes.size(); ++i) {
    const ProcessSnapshotCounters& p = processes[i];
    if (i != 0) out += ',';
    out += "{\"id\":";
    append_u64(out, p.id);
    out += ",\"bytes_sent\":";
    append_u64(out, p.bytes_sent);
    out += ",\"bytes_delivered\":";
    append_u64(out, p.bytes_delivered);
    out += ",\"max_queue_depth\":";
    append_u64(out, p.max_queue_depth);
    out += ',';
    append_class_counts(out, "sent", p.sent);
    out += ',';
    append_class_counts(out, "delivered", p.delivered);
    out += '}';
  }
  out += ']';

  out += ",\"channels\":[";
  for (std::size_t i = 0; i < channels.size(); ++i) {
    const ChannelSnapshot& ch = channels[i];
    if (i != 0) out += ',';
    out += "{\"id\":";
    append_u64(out, ch.id);
    out += ",\"source\":";
    append_u64(out, ch.source);
    out += ",\"destination\":";
    append_u64(out, ch.destination);
    out += ",\"control\":";
    out += ch.is_control ? "true" : "false";
    out += ",\"bytes_sent\":";
    append_u64(out, ch.bytes_sent);
    out += ",\"bytes_delivered\":";
    append_u64(out, ch.bytes_delivered);
    out += ",\"send_blocked_ns\":";
    append_u64(out, ch.send_blocked_ns);
    out += ",\"max_backlog\":";
    append_u64(out, ch.max_backlog);
    out += ',';
    append_class_counts(out, "sent", ch.sent);
    out += ',';
    append_class_counts(out, "delivered", ch.delivered);
    out += '}';
  }
  out += ']';

  out += ",\"latencies\":{";
  for (std::size_t s = 0; s < kNumSpans; ++s) {
    if (s != 0) out += ',';
    append_latency(out, kSpanNames[s], spans[s]);
  }
  out += "}}";
  return out;
}

}  // namespace ddbg::obs
