// Runtime observability: always-on counters and event-latency tracing.
//
// The paper's evaluation (section 6 / experiment E7) quantifies what the
// debugging machinery costs; this layer is what makes that measurable from
// the inside rather than by wall-clock deltas.  One MetricsRegistry per
// runtime substrate accumulates:
//
//   * per-channel traffic counters — messages and bytes, sent and
//     delivered, with marker and control-plane traffic split out from
//     application traffic (one slot per MessageKind);
//   * per-channel send-blocked time (TCP: time spent inside the socket
//     write) and peak backlog (sim: in-flight messages; TCP: bytes
//     buffered awaiting frame parse);
//   * per-process peak inbox depth (threaded runtime);
//   * latency spans for the rare control-plane events the experiments
//     care about: halt-wave start -> all halted, snapshot-wave start ->
//     all recorded, breakpoint-predicate hit -> debugger notified, and
//     arm command sent -> shim armed.
//
// Hot-path discipline: counter updates are single relaxed-atomic
// increments into slots that only one thread ever writes (each channel's
// send slots are written by the source process's thread, its delivery
// slots by the destination's thread, each process's queue gauge by its
// own thread), so the accumulation is thread-local by construction —
// relaxed ordering is enough and the cache line never bounces between
// writers.  No allocation, no locks.  Span bookkeeping (a keyed map of
// open spans) takes a mutex, but spans only cover control-plane events
// that occur a handful of times per run.
//
// snapshot() is the cold path: it sums the slots into a MetricsSnapshot
// that serializes to a stable JSON schema ("ddbg.metrics.v1") so bench
// output stays comparable across revisions.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"

namespace ddbg::obs {

// Mirrors MessageKind (net/message.hpp) value-for-value; kept as a plain
// index here so the obs layer does not depend on the network headers.
inline constexpr std::size_t kNumTrafficClasses = 5;
inline constexpr const char* kTrafficClassNames[kNumTrafficClasses] = {
    "app", "halt_marker", "snapshot_marker", "predicate_marker", "control"};

// Mirrors the non-kNone FaultKind values (net/fault_plan.hpp) index-for-
// index; like the traffic classes, kept as plain indices so obs stays free
// of network headers (net/transport_hooks.hpp pins the correspondence).
inline constexpr std::size_t kNumFaultKinds = 6;
inline constexpr const char* kFaultKindNames[kNumFaultKinds] = {
    "drop", "duplicate", "reorder", "delay", "partition", "reset"};

// The traced control-plane latencies.
enum class Span : std::uint8_t {
  kHaltWave = 0,        // halt initiated -> every process reported halted
  kSnapshotWave = 1,    // recording initiated -> every process reported
  kBreakpointNotify = 2,  // predicate hit at a shim -> debugger recorded it
  kArm = 3,             // arm command sent -> shim armed the watch
};
inline constexpr std::size_t kNumSpans = 4;
inline constexpr const char* kSpanNames[kNumSpans] = {
    "halt_wave", "snapshot_wave", "breakpoint_notify", "arm"};

// A monotonically increasing count; relaxed because every slot has a
// single writer (see the header comment) and readers only ever snapshot.
class Counter {
 public:
  void add(std::uint64_t n) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }
  [[nodiscard]] std::uint64_t get() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// A high-water-mark gauge (peak queue depth / backlog).
class MaxGauge {
 public:
  void observe(std::uint64_t v) noexcept {
    std::uint64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::uint64_t get() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// count/total/min/max of a latency distribution, in nanoseconds.
class LatencyStat {
 public:
  void record(std::int64_t ns) noexcept {
    if (ns < 0) ns = 0;
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(static_cast<std::uint64_t>(ns),
                        std::memory_order_relaxed);
    std::uint64_t v = static_cast<std::uint64_t>(ns);
    std::uint64_t cur = min_ns_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_ns_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = max_ns_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_ns_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_ns() const noexcept {
    return total_ns_.load(std::memory_order_relaxed);
  }
  // 0 when empty (the sentinel is never exposed).
  [[nodiscard]] std::uint64_t min_ns() const noexcept {
    return count() == 0 ? 0 : min_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max_ns() const noexcept {
    return max_ns_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> min_ns_{~0ULL};
  std::atomic<std::uint64_t> max_ns_{0};
};

// Static description of one channel, captured at registry construction so
// snapshots can attribute per-channel counts to processes without a
// dependency on the Topology type.
struct ChannelMeta {
  std::uint32_t source = 0;
  std::uint32_t destination = 0;
  bool is_control = false;
};

// ---------------------------------------------------------------------------
// Snapshot: plain data + stable JSON rendering (the cold path).
// ---------------------------------------------------------------------------

struct LatencySnapshot {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
};

struct ChannelSnapshot {
  std::uint32_t id = 0;
  std::uint32_t source = 0;
  std::uint32_t destination = 0;
  bool is_control = false;
  std::uint64_t sent[kNumTrafficClasses] = {};
  std::uint64_t delivered[kNumTrafficClasses] = {};
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t send_blocked_ns = 0;
  std::uint64_t max_backlog = 0;

  [[nodiscard]] std::uint64_t messages_sent() const;
  [[nodiscard]] std::uint64_t messages_delivered() const;
};

struct ProcessSnapshotCounters {
  std::uint32_t id = 0;
  std::uint64_t sent[kNumTrafficClasses] = {};
  std::uint64_t delivered[kNumTrafficClasses] = {};
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t max_queue_depth = 0;
};

struct TotalsSnapshot {
  std::uint64_t sent[kNumTrafficClasses] = {};
  std::uint64_t delivered[kNumTrafficClasses] = {};
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
};

// Message-pipeline mechanics: encode-buffer pool reuse and batching on the
// delivery and socket-write paths.  These quantify the hot-path overhaul
// the per-channel traffic counters cannot see (a pooled send and a
// malloc-per-send both count one message).
struct TransportSnapshot {
  std::uint64_t pool_hits = 0;    // encode buffer served from the free list
  std::uint64_t pool_misses = 0;  // encode buffer freshly allocated
  std::uint64_t deliver_batches = 0;        // handler-dispatch batches
  std::uint64_t deliver_batch_messages = 0; // messages across those batches
  std::uint64_t max_deliver_batch = 0;
  std::uint64_t write_batches = 0;        // socket writes (one sendmsg each)
  std::uint64_t write_batch_frames = 0;   // frames across those writes
  std::uint64_t max_write_batch = 0;
  // Epoll reactor mechanics (TCP runtime).  All zero on the sim/threads
  // substrates, which have no reactor.
  std::uint64_t epoll_wakeups = 0;  // epoll_wait returns across all workers
  std::uint64_t frames_per_wakeup_max = 0;  // most frames parsed per wakeup
  std::uint64_t eagain_deferrals = 0;  // sendmsg EAGAIN/partial -> EPOLLOUT
  std::uint64_t mux_channels_per_socket = 0;  // widest channel->socket fan-in
  // Fault injection + reliability layer.  All zero when no FaultPlan is
  // active (the fault-off path never touches them).
  std::uint64_t faults_injected[kNumFaultKinds] = {};
  std::uint64_t retransmits = 0;      // frames re-sent after an RTO expiry
  std::uint64_t dup_suppressed = 0;   // arrivals discarded as duplicates
  std::uint64_t reconnects = 0;       // TCP channels re-dialed after a reset
  std::uint64_t resync_replayed = 0;  // unacked frames replayed on reconnect
  std::uint64_t channel_down = 0;     // sends that hit a closed/failed peer
};

// Debugger-tier counters (hierarchical debugger; see with_debugger_tree).
// All zero under a flat debugger or no debugger at all.
struct TierSnapshot {
  std::uint64_t tree_fanout = 0;       // widest tier node observed (gauge)
  std::uint64_t acks_aggregated = 0;   // combined subtree reports sent up
  std::uint64_t markers_suppressed = 0;  // redundant wave markers not sent
};

// Control-socket debugger sessions (session_server.hpp).  All zero when no
// SessionServer is attached to the run.
struct SessionSnapshot {
  std::uint64_t opened = 0;        // client sockets adopted
  std::uint64_t closed = 0;        // sessions fully torn down
  std::uint64_t active_peak = 0;   // most concurrently live sessions (gauge)
  std::uint64_t requests = 0;      // protocol requests handled
  std::uint64_t request_errors = 0;  // requests answered with an error status
  // Disconnect-mid-halt outcomes: halt handed to a surviving session vs.
  // released by resuming the computation (last session out).
  std::uint64_t halts_handed_off = 0;
  std::uint64_t halts_released = 0;
};

// Record/replay bookkeeping (src/replay).  The *_logged counters count
// records appended while recording; the *_replayed counters count records
// re-executed by a ReplayDriver.  A registry only ever sees one side: the
// recorded run logs, the replaying simulation replays.  All zero when no
// recorder/driver is attached.
struct ReplaySnapshot {
  std::uint64_t records_logged = 0;  // sum of the five *_logged counters
  std::uint64_t deliveries_logged = 0;
  std::uint64_t timer_sets_logged = 0;
  std::uint64_t timer_fires_logged = 0;
  std::uint64_t cuts_logged = 0;
  std::uint64_t annotations_logged = 0;
  std::uint64_t log_bytes = 0;  // encoded log size at save (gauge)
  std::uint64_t deliveries_replayed = 0;
  std::uint64_t timers_replayed = 0;
  std::uint64_t cuts_replayed = 0;
  std::uint64_t divergences = 0;  // payload-hash mismatches during replay
};

struct MetricsSnapshot {
  std::string runtime;  // "sim" | "threads" | "tcp"
  std::int64_t elapsed_ns = 0;
  TotalsSnapshot totals;
  TransportSnapshot transport;
  TierSnapshot tier;
  SessionSnapshot session;
  ReplaySnapshot replay;
  std::vector<ProcessSnapshotCounters> processes;
  // Sparse: only channels with any recorded activity appear (an idle
  // channel contributes nothing to totals, so the cross-sums still hold).
  std::vector<ChannelSnapshot> channels;
  LatencySnapshot spans[kNumSpans];

  // Stable schema "ddbg.metrics.v1": fixed key order, integers only, no
  // floats — byte-identical for identical runs.
  [[nodiscard]] std::string to_json() const;
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

class MetricsRegistry {
 public:
  // `runtime_label` names the substrate in snapshots ("sim", "threads",
  // "tcp"); `channels[i]` describes ChannelId(i).
  MetricsRegistry(std::string runtime_label, std::size_t num_processes,
                  std::vector<ChannelMeta> channels);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // ---- hot path (single relaxed increments; no allocation) ----
  void on_send(std::uint32_t channel, std::uint8_t traffic_class,
               std::size_t wire_bytes) noexcept {
    ChannelCells& c = channels_[channel];
    c.sent[traffic_class].inc();
    c.bytes_sent.add(wire_bytes);
  }
  void on_deliver(std::uint32_t channel, std::uint8_t traffic_class,
                  std::size_t wire_bytes) noexcept {
    ChannelCells& c = channels_[channel];
    c.delivered[traffic_class].inc();
    c.bytes_delivered.add(wire_bytes);
  }
  void observe_backlog(std::uint32_t channel, std::uint64_t depth) noexcept {
    channels_[channel].max_backlog.observe(depth);
  }
  void add_send_blocked(std::uint32_t channel, std::int64_t ns) noexcept {
    if (ns > 0) {
      channels_[channel].send_blocked_ns.add(static_cast<std::uint64_t>(ns));
    }
  }
  void observe_queue_depth(std::uint32_t process,
                           std::uint64_t depth) noexcept {
    process_queue_depth_[process].observe(depth);
  }
  // Transport-mechanics counters.  Unlike the per-channel cells these are
  // shared across worker threads, so the relaxed atomic add is contended —
  // still correct, and these fire at most once per batch/send.
  void on_pool_acquire(bool hit) noexcept {
    (hit ? transport_.pool_hits : transport_.pool_misses).inc();
  }
  void on_deliver_batch(std::size_t messages) noexcept {
    transport_.deliver_batches.inc();
    transport_.deliver_batch_messages.add(messages);
    transport_.max_deliver_batch.observe(messages);
  }
  void on_write_batch(std::size_t frames) noexcept {
    transport_.write_batches.inc();
    transport_.write_batch_frames.add(frames);
    transport_.max_write_batch.observe(frames);
  }
  // Epoll reactor counters (TCP runtime only).
  void on_epoll_wakeup() noexcept { transport_.epoll_wakeups.inc(); }
  void observe_frames_per_wakeup(std::size_t frames) noexcept {
    transport_.frames_per_wakeup_max.observe(frames);
  }
  void on_eagain_deferral() noexcept { transport_.eagain_deferrals.inc(); }
  void observe_mux_channels(std::uint64_t channels) noexcept {
    transport_.mux_channels_per_socket.observe(channels);
  }
  // Fault/reliability counters.  `kind_index` is fault_index(FaultKind),
  // i.e. the slot in kFaultKindNames.
  void on_fault(std::size_t kind_index) noexcept {
    transport_.faults_injected[kind_index].inc();
  }
  void on_retransmit() noexcept { transport_.retransmits.inc(); }
  void on_dup_suppressed() noexcept { transport_.dup_suppressed.inc(); }
  void on_reconnect() noexcept { transport_.reconnects.inc(); }
  void on_resync_replayed(std::size_t frames) noexcept {
    transport_.resync_replayed.add(frames);
  }
  void on_channel_down() noexcept { transport_.channel_down.inc(); }
  // Debugger-tier counters.  Fired by aggregators / the wave engines, so a
  // given slot has one writer per tier process — same relaxed discipline.
  void observe_tree_fanout(std::uint64_t children) noexcept {
    tier_.tree_fanout.observe(children);
  }
  void on_ack_aggregated() noexcept { tier_.acks_aggregated.inc(); }
  void on_marker_suppressed() noexcept { tier_.markers_suppressed.inc(); }
  // Debugger-session counters (session_server.hpp).  Fired from session
  // service threads; contended but rare (once per request at most).
  void on_session_opened() noexcept { session_.opened.inc(); }
  void on_session_closed() noexcept { session_.closed.inc(); }
  void observe_active_sessions(std::uint64_t active) noexcept {
    session_.active_peak.observe(active);
  }
  void on_session_request(bool ok) noexcept {
    session_.requests.inc();
    if (!ok) session_.request_errors.inc();
  }
  void on_halt_handed_off() noexcept { session_.halts_handed_off.inc(); }
  void on_halt_released_on_disconnect() noexcept {
    session_.halts_released.inc();
  }
  // Record/replay counters (src/replay).  Recording fires from process and
  // reactor threads under the recorder's mutex; replay fires from the
  // single-threaded driver loop.
  void on_replay_delivery_logged() noexcept {
    replay_.deliveries_logged.inc();
  }
  void on_replay_timer_set_logged() noexcept {
    replay_.timer_sets_logged.inc();
  }
  void on_replay_timer_fire_logged() noexcept {
    replay_.timer_fires_logged.inc();
  }
  void on_replay_cut_logged() noexcept { replay_.cuts_logged.inc(); }
  void on_replay_annotation_logged() noexcept {
    replay_.annotations_logged.inc();
  }
  void on_replay_log_bytes(std::uint64_t bytes) noexcept {
    replay_.log_bytes.observe(bytes);
  }
  void on_replay_delivery_replayed() noexcept {
    replay_.deliveries_replayed.inc();
  }
  void on_replay_timer_replayed() noexcept { replay_.timers_replayed.inc(); }
  void on_replay_cut_replayed() noexcept { replay_.cuts_replayed.inc(); }
  void on_replay_divergence() noexcept { replay_.divergences.inc(); }

  // ---- latency spans (rare control-plane events; mutex-guarded) ----
  // Opens a span unless one with the same key is already open (the
  // earliest begin wins).  Keys are caller-chosen, e.g. a wave id or
  // (breakpoint id, process id) packed into 64 bits.
  void span_begin(Span span, std::uint64_t key, TimePoint now);
  // Closes the span and records its latency; a span_end with no matching
  // begin is a no-op (e.g. a stage re-arm the debugger never initiated).
  void span_end(Span span, std::uint64_t key, TimePoint now);
  [[nodiscard]] const LatencyStat& span_stat(Span span) const {
    return span_stats_[static_cast<std::size_t>(span)];
  }

  // ---- cold path ----
  [[nodiscard]] std::size_t num_processes() const {
    return process_queue_depth_.size();
  }
  [[nodiscard]] std::size_t num_channels() const { return channels_.size(); }
  [[nodiscard]] TotalsSnapshot totals() const;
  [[nodiscard]] MetricsSnapshot snapshot(TimePoint now = {}) const;

  // Packs a (breakpoint/wave, process) pair into a span key.
  [[nodiscard]] static std::uint64_t key(std::uint64_t a, std::uint32_t b) {
    return (a << 32) | b;
  }

 private:
  // One cache line per channel so the source's and destination's relaxed
  // increments never contend with other channels' traffic.
  struct alignas(64) ChannelCells {
    Counter sent[kNumTrafficClasses];
    Counter delivered[kNumTrafficClasses];
    Counter bytes_sent;
    Counter bytes_delivered;
    Counter send_blocked_ns;
    MaxGauge max_backlog;
  };

  struct TierCells {
    MaxGauge tree_fanout;
    Counter acks_aggregated;
    Counter markers_suppressed;
  };

  struct SessionCells {
    Counter opened;
    Counter closed;
    MaxGauge active_peak;
    Counter requests;
    Counter request_errors;
    Counter halts_handed_off;
    Counter halts_released;
  };

  struct ReplayCells {
    Counter deliveries_logged;
    Counter timer_sets_logged;
    Counter timer_fires_logged;
    Counter cuts_logged;
    Counter annotations_logged;
    MaxGauge log_bytes;
    Counter deliveries_replayed;
    Counter timers_replayed;
    Counter cuts_replayed;
    Counter divergences;
  };

  struct TransportCells {
    Counter pool_hits;
    Counter pool_misses;
    Counter deliver_batches;
    Counter deliver_batch_messages;
    MaxGauge max_deliver_batch;
    Counter write_batches;
    Counter write_batch_frames;
    MaxGauge max_write_batch;
    Counter epoll_wakeups;
    MaxGauge frames_per_wakeup_max;
    Counter eagain_deferrals;
    MaxGauge mux_channels_per_socket;
    Counter faults_injected[kNumFaultKinds];
    Counter retransmits;
    Counter dup_suppressed;
    Counter reconnects;
    Counter resync_replayed;
    Counter channel_down;
  };

  std::string runtime_label_;
  std::vector<ChannelMeta> meta_;
  std::vector<ChannelCells> channels_;
  std::vector<MaxGauge> process_queue_depth_;
  TransportCells transport_;
  TierCells tier_;
  SessionCells session_;
  ReplayCells replay_;

  LatencyStat span_stats_[kNumSpans];
  std::mutex span_mutex_;
  std::unordered_map<std::uint64_t, std::int64_t> open_spans_[kNumSpans];
};

}  // namespace ddbg::obs
