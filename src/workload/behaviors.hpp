// Application workloads used by examples, tests and experiments.
//
// All of them derive from Debuggable and expose events/variables through
// the DebugApi, so breakpoints can be set on them; all of them run
// unchanged on the simulator and the threaded runtime.
//
//   TokenRingProcess — a token circulates a ring; event "token" fires per
//       hop (the canonical Linked-Predicate workload).
//   PipelineProcess  — producer -> stages -> consumer on an acyclic
//       pipeline (the paper's figure-2 shape; used to show the basic
//       halting algorithm failing and the extended model succeeding).
//   GossipProcess    — each process periodically sends to random outgoing
//       channels (background traffic for snapshot/halting experiments).
//   BankProcess      — processes hold balances and transfer money; the sum
//       of balances plus in-flight transfers is invariant, so a consistent
//       global state must conserve it (the classic snapshot correctness
//       witness).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/serialization.hpp"
#include "core/debug_api.hpp"
#include "core/global_state.hpp"
#include "net/process.hpp"

namespace ddbg {

// ---------------------------------------------------------------------------
// Token ring
// ---------------------------------------------------------------------------

struct TokenRingConfig {
  // The token makes this many full rounds, then the ring goes quiet.
  std::uint32_t rounds = 10;
  Duration hop_delay = Duration::millis(1);
  // Optional start gate: while the gate is closed, process 0 holds the
  // token and re-checks on a timer instead of launching it.  Lets a test
  // finish asynchronous setup (arming breakpoints on the ring) before any
  // token moves, making event counts deterministic under real threads.
  std::shared_ptr<std::atomic<bool>> start_gate;
};

class TokenRingProcess final : public Debuggable {
 public:
  explicit TokenRingProcess(TokenRingConfig config) : config_(config) {}

  void on_start(ProcessContext& ctx) override;
  void on_message(ProcessContext& ctx, ChannelId in, Message message) override;
  void on_timer(ProcessContext& ctx, TimerId timer) override;

  [[nodiscard]] Bytes snapshot_state() const override;
  bool restore_state(const Bytes& state) override;
  [[nodiscard]] std::string describe_state() const override;

  [[nodiscard]] std::uint32_t tokens_seen() const {
    return tokens_seen_.load(std::memory_order_acquire);
  }

 private:
  void forward_token(ProcessContext& ctx);

  TokenRingConfig config_;
  // Observable from other threads (test/debugger polling) while the
  // process's own thread mutates it.
  std::atomic<std::uint32_t> tokens_seen_{0};
  std::uint32_t pending_value_ = 0;
  bool holding_token_ = false;
  bool restored_ = false;
};

// ---------------------------------------------------------------------------
// Pipeline (producer -> stages -> consumer)
// ---------------------------------------------------------------------------

struct PipelineConfig {
  // Items the producer emits; 0 = unbounded.
  std::uint32_t items = 100;
  Duration production_interval = Duration::millis(2);
};

class PipelineProcess final : public Debuggable {
 public:
  explicit PipelineProcess(PipelineConfig config) : config_(config) {}

  void on_start(ProcessContext& ctx) override;
  void on_message(ProcessContext& ctx, ChannelId in, Message message) override;
  void on_timer(ProcessContext& ctx, TimerId timer) override;

  [[nodiscard]] Bytes snapshot_state() const override;
  bool restore_state(const Bytes& state) override;
  [[nodiscard]] std::string describe_state() const override;

  [[nodiscard]] std::uint64_t items_seen() const { return items_seen_; }

 private:
  [[nodiscard]] static bool is_producer(const ProcessContext& ctx);

  PipelineConfig config_;
  std::uint64_t items_seen_ = 0;   // produced (producer) / received (others)
  std::uint64_t checksum_ = 0;
};

// ---------------------------------------------------------------------------
// Gossip
// ---------------------------------------------------------------------------

struct GossipConfig {
  Duration send_interval = Duration::millis(2);
  // Stop after this many sends per process; 0 = unbounded.
  std::uint32_t max_sends = 0;
  std::uint32_t payload_bytes = 16;
};

class GossipProcess final : public Debuggable {
 public:
  explicit GossipProcess(GossipConfig config) : config_(config) {}

  void on_start(ProcessContext& ctx) override;
  void on_message(ProcessContext& ctx, ChannelId in, Message message) override;
  void on_timer(ProcessContext& ctx, TimerId timer) override;

  [[nodiscard]] Bytes snapshot_state() const override;
  bool restore_state(const Bytes& state) override;
  [[nodiscard]] std::string describe_state() const override;

  [[nodiscard]] std::uint64_t sent() const {
    return sent_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t received() const {
    return received_.load(std::memory_order_acquire);
  }

 private:
  void schedule_next(ProcessContext& ctx);

  GossipConfig config_;
  // Polled by test/session threads while this process's thread sends.
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> received_{0};
};

// ---------------------------------------------------------------------------
// Bank
// ---------------------------------------------------------------------------

struct BankConfig {
  std::int64_t initial_balance = 1000;
  Duration transfer_interval = Duration::millis(2);
  std::int64_t max_transfer = 50;
  // Stop after this many transfers per process; 0 = unbounded.
  std::uint32_t max_transfers = 0;
};

class BankProcess final : public Debuggable {
 public:
  explicit BankProcess(BankConfig config)
      : config_(config), balance_(config.initial_balance) {}

  void on_start(ProcessContext& ctx) override;
  void on_message(ProcessContext& ctx, ChannelId in, Message message) override;
  void on_timer(ProcessContext& ctx, TimerId timer) override;

  [[nodiscard]] Bytes snapshot_state() const override;
  bool restore_state(const Bytes& state) override;
  [[nodiscard]] std::string describe_state() const override;

  [[nodiscard]] std::int64_t balance() const {
    return balance_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint32_t transfers_made() const {
    return transfers_made_.load(std::memory_order_acquire);
  }

  // Decode a BankProcess state snapshot back to a balance.
  [[nodiscard]] static Result<std::int64_t> decode_balance(const Bytes& state);
  // Decode a transfer payload back to an amount.
  [[nodiscard]] static Result<std::int64_t> decode_transfer(
      const Bytes& payload);
  // Conservation check: sum of balances plus in-flight transfer amounts in
  // a global state.  A consistent cut of an n-process bank must total
  // n * initial_balance.
  [[nodiscard]] static Result<std::int64_t> total_money(
      const GlobalState& state);

 private:
  void schedule_next(ProcessContext& ctx);

  BankConfig config_;
  // Observable from other threads while this process's thread transacts.
  std::atomic<std::int64_t> balance_;
  std::atomic<std::uint32_t> transfers_made_{0};
};

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

[[nodiscard]] std::vector<ProcessPtr> make_token_ring(std::uint32_t n,
                                                      TokenRingConfig config);
[[nodiscard]] std::vector<ProcessPtr> make_pipeline(std::uint32_t n,
                                                    PipelineConfig config);
[[nodiscard]] std::vector<ProcessPtr> make_gossip(std::uint32_t n,
                                                  GossipConfig config);
[[nodiscard]] std::vector<ProcessPtr> make_bank(std::uint32_t n,
                                                BankConfig config);

}  // namespace ddbg
