#include "workload/behaviors.hpp"

#include <sstream>

#include "common/logging.hpp"

namespace ddbg {

namespace {

// First non-control outgoing channel, or all of them.
std::vector<ChannelId> app_out_channels(const ProcessContext& ctx) {
  std::vector<ChannelId> channels;
  for (const ChannelId c : ctx.topology().out_channels(ctx.self())) {
    if (!ctx.topology().channel(c).is_control) channels.push_back(c);
  }
  return channels;
}

bool has_app_in_channels(const ProcessContext& ctx) {
  for (const ChannelId c : ctx.topology().in_channels(ctx.self())) {
    if (!ctx.topology().channel(c).is_control) return true;
  }
  return false;
}

Bytes encode_u64(std::uint64_t value) {
  ByteWriter writer;
  writer.u64(value);
  return std::move(writer).take();
}

Result<std::uint64_t> decode_u64(const Bytes& payload) {
  ByteReader reader(payload);
  return reader.u64();
}

}  // namespace

// ---------------------------------------------------------------------------
// TokenRingProcess
// ---------------------------------------------------------------------------

void TokenRingProcess::on_start(ProcessContext& ctx) {
  if (restored_) {
    // Resume from the restored state: re-arm the forward timer if we held
    // the token at the halt; a token in flight arrives as a normal message.
    if (holding_token_) ctx.set_timer(config_.hop_delay);
    return;
  }
  if (ctx.self() == ProcessId(0)) {
    holding_token_ = true;
    pending_value_ = 0;
    ctx.set_timer(config_.hop_delay);
  }
}

bool TokenRingProcess::restore_state(const Bytes& state) {
  ByteReader reader(state);
  auto tokens = reader.u32();
  auto pending = reader.u32();
  auto holding = reader.u8();
  if (!tokens.ok() || !pending.ok() || !holding.ok()) return false;
  tokens_seen_.store(tokens.value(), std::memory_order_release);
  pending_value_ = pending.value();
  holding_token_ = holding.value() != 0;
  restored_ = true;
  return true;
}

void TokenRingProcess::on_timer(ProcessContext& ctx, TimerId /*timer*/) {
  if (!holding_token_) return;
  if (config_.start_gate &&
      !config_.start_gate->load(std::memory_order_acquire)) {
    // Gate still closed: hold the token and check again after a hop delay.
    ctx.set_timer(config_.hop_delay);
    return;
  }
  forward_token(ctx);
}

void TokenRingProcess::on_message(ProcessContext& ctx, ChannelId /*in*/,
                                  Message message) {
  auto value = decode_u64(message.payload);
  if (!value.ok()) {
    DDBG_WARN() << "token ring: bad token payload";
    return;
  }
  const std::uint32_t seen =
      tokens_seen_.fetch_add(1, std::memory_order_acq_rel) + 1;
  pending_value_ = static_cast<std::uint32_t>(value.value());
  debug().event("token", pending_value_);
  debug().set_var("tokens_seen", seen);

  const std::uint32_t ring_size = [&] {
    std::uint32_t users = ctx.topology().num_user_processes();
    return users > 0 ? users : ctx.topology().num_processes();
  }();
  if (pending_value_ < config_.rounds * ring_size) {
    holding_token_ = true;
    ctx.set_timer(config_.hop_delay);
  } else {
    debug().event("token_retired", pending_value_);
    ctx.stop_self();
  }
}

void TokenRingProcess::forward_token(ProcessContext& ctx) {
  holding_token_ = false;
  const auto out = app_out_channels(ctx);
  DDBG_ASSERT(!out.empty(), "token ring process needs an outgoing channel");
  debug().enter_procedure("forward_token");
  ctx.send(out.front(), Message::application(encode_u64(pending_value_ + 1)));
}

Bytes TokenRingProcess::snapshot_state() const {
  ByteWriter writer;
  writer.u32(tokens_seen());
  writer.u32(pending_value_);
  writer.u8(holding_token_ ? 1 : 0);
  return std::move(writer).take();
}

std::string TokenRingProcess::describe_state() const {
  std::ostringstream out;
  out << "tokens_seen=" << tokens_seen()
      << (holding_token_ ? " (holding)" : "");
  return out.str();
}

// ---------------------------------------------------------------------------
// PipelineProcess
// ---------------------------------------------------------------------------

bool PipelineProcess::is_producer(const ProcessContext& ctx) {
  return !has_app_in_channels(ctx);
}

void PipelineProcess::on_start(ProcessContext& ctx) {
  if (is_producer(ctx)) ctx.set_timer(config_.production_interval);
}

void PipelineProcess::on_timer(ProcessContext& ctx, TimerId /*timer*/) {
  if (!is_producer(ctx)) return;
  if (config_.items != 0 && items_seen_ >= config_.items) return;
  ++items_seen_;
  checksum_ += items_seen_;
  debug().enter_procedure("produce");
  for (const ChannelId c : app_out_channels(ctx)) {
    ctx.send(c, Message::application(encode_u64(items_seen_)));
  }
  debug().event("produced", static_cast<std::int64_t>(items_seen_));
  debug().set_var("produced", static_cast<std::int64_t>(items_seen_));
  if (config_.items == 0 || items_seen_ < config_.items) {
    ctx.set_timer(config_.production_interval);
  }
}

void PipelineProcess::on_message(ProcessContext& ctx, ChannelId /*in*/,
                                 Message message) {
  auto value = decode_u64(message.payload);
  if (!value.ok()) {
    DDBG_WARN() << "pipeline: bad item payload";
    return;
  }
  ++items_seen_;
  checksum_ += value.value();
  const auto out = app_out_channels(ctx);
  if (out.empty()) {
    debug().event("consumed", static_cast<std::int64_t>(value.value()));
    debug().set_var("consumed", static_cast<std::int64_t>(items_seen_));
  } else {
    for (const ChannelId c : out) {
      ctx.send(c, Message::application(encode_u64(value.value())));
    }
    debug().event("forwarded", static_cast<std::int64_t>(value.value()));
  }
}

bool PipelineProcess::restore_state(const Bytes& state) {
  ByteReader reader(state);
  auto items = reader.u64();
  auto checksum = reader.u64();
  if (!items.ok() || !checksum.ok()) return false;
  items_seen_ = items.value();
  checksum_ = checksum.value();
  return true;
}

Bytes PipelineProcess::snapshot_state() const {
  ByteWriter writer;
  writer.u64(items_seen_);
  writer.u64(checksum_);
  return std::move(writer).take();
}

std::string PipelineProcess::describe_state() const {
  std::ostringstream out;
  out << "items=" << items_seen_ << " checksum=" << checksum_;
  return out.str();
}

// ---------------------------------------------------------------------------
// GossipProcess
// ---------------------------------------------------------------------------

void GossipProcess::schedule_next(ProcessContext& ctx) {
  if (config_.max_sends != 0 && sent() >= config_.max_sends) return;
  ctx.set_timer(config_.send_interval);
}

void GossipProcess::on_start(ProcessContext& ctx) {
  if (!app_out_channels(ctx).empty()) schedule_next(ctx);
}

void GossipProcess::on_timer(ProcessContext& ctx, TimerId /*timer*/) {
  const auto out = app_out_channels(ctx);
  if (out.empty()) return;
  const std::uint64_t seq = sent();
  if (config_.max_sends != 0 && seq >= config_.max_sends) return;
  const std::size_t pick = ctx.rng().next_below(out.size());

  Bytes payload(config_.payload_bytes, 0);
  ByteWriter writer;
  writer.u64(seq);
  const Bytes header = std::move(writer).take();
  for (std::size_t i = 0; i < header.size() && i < payload.size(); ++i) {
    payload[i] = header[i];
  }
  sent_.store(seq + 1, std::memory_order_release);
  ctx.send(out[pick], Message::application(std::move(payload)));
  debug().set_var("sent", static_cast<std::int64_t>(seq + 1));
  schedule_next(ctx);
}

void GossipProcess::on_message(ProcessContext& /*ctx*/, ChannelId /*in*/,
                               Message /*message*/) {
  const std::uint64_t got =
      received_.fetch_add(1, std::memory_order_acq_rel) + 1;
  debug().set_var("received", static_cast<std::int64_t>(got));
}

bool GossipProcess::restore_state(const Bytes& state) {
  ByteReader reader(state);
  auto sent = reader.u64();
  auto received = reader.u64();
  if (!sent.ok() || !received.ok()) return false;
  sent_.store(sent.value(), std::memory_order_release);
  received_.store(received.value(), std::memory_order_release);
  return true;
}

Bytes GossipProcess::snapshot_state() const {
  ByteWriter writer;
  writer.u64(sent());
  writer.u64(received());
  return std::move(writer).take();
}

std::string GossipProcess::describe_state() const {
  std::ostringstream out;
  out << "sent=" << sent() << " received=" << received();
  return out.str();
}

// ---------------------------------------------------------------------------
// BankProcess
// ---------------------------------------------------------------------------

void BankProcess::schedule_next(ProcessContext& ctx) {
  if (config_.max_transfers != 0 &&
      transfers_made() >= config_.max_transfers) {
    return;
  }
  ctx.set_timer(config_.transfer_interval);
}

void BankProcess::on_start(ProcessContext& ctx) {
  debug().set_var("balance", balance());
  if (!app_out_channels(ctx).empty()) schedule_next(ctx);
}

void BankProcess::on_timer(ProcessContext& ctx, TimerId /*timer*/) {
  const auto out = app_out_channels(ctx);
  if (out.empty()) return;
  if (config_.max_transfers != 0 &&
      transfers_made() >= config_.max_transfers) {
    return;
  }
  const std::int64_t amount = ctx.rng().next_in(1, config_.max_transfer);
  if (balance() >= amount) {
    const std::size_t pick = ctx.rng().next_below(out.size());
    debug().enter_procedure("transfer");
    const std::int64_t after =
        balance_.fetch_sub(amount, std::memory_order_acq_rel) - amount;
    transfers_made_.fetch_add(1, std::memory_order_acq_rel);
    ctx.send(out[pick],
             Message::application(encode_u64(static_cast<std::uint64_t>(
                 amount))));
    debug().set_var("balance", after);
  }
  schedule_next(ctx);
}

void BankProcess::on_message(ProcessContext& /*ctx*/, ChannelId /*in*/,
                             Message message) {
  auto amount = decode_transfer(message.payload);
  if (!amount.ok()) {
    DDBG_WARN() << "bank: bad transfer payload";
    return;
  }
  const std::int64_t after =
      balance_.fetch_add(amount.value(), std::memory_order_acq_rel) +
      amount.value();
  debug().event("deposit", amount.value());
  debug().set_var("balance", after);
}

bool BankProcess::restore_state(const Bytes& state) {
  ByteReader reader(state);
  auto balance = reader.i64();
  auto transfers = reader.u32();
  if (!balance.ok() || !transfers.ok()) return false;
  balance_.store(balance.value(), std::memory_order_release);
  transfers_made_.store(transfers.value(), std::memory_order_release);
  return true;
}

Bytes BankProcess::snapshot_state() const {
  ByteWriter writer;
  writer.i64(balance());
  writer.u32(transfers_made());
  return std::move(writer).take();
}

std::string BankProcess::describe_state() const {
  std::ostringstream out;
  out << "balance=" << balance();
  return out.str();
}

Result<std::int64_t> BankProcess::decode_balance(const Bytes& state) {
  ByteReader reader(state);
  return reader.i64();
}

Result<std::int64_t> BankProcess::decode_transfer(const Bytes& payload) {
  ByteReader reader(payload);
  auto amount = reader.u64();
  if (!amount.ok()) return amount.error();
  return static_cast<std::int64_t>(amount.value());
}

Result<std::int64_t> BankProcess::total_money(const GlobalState& state) {
  std::int64_t total = 0;
  for (const auto& [process, snapshot] : state.snapshots()) {
    auto balance = decode_balance(snapshot.state);
    if (!balance.ok()) return balance.error();
    total += balance.value();
    for (const ChannelState& channel : snapshot.in_channels) {
      for (const Bytes& payload : channel.messages) {
        auto amount = decode_transfer(payload);
        if (!amount.ok()) return amount.error();
        total += amount.value();
      }
    }
  }
  return total;
}

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

namespace {
template <typename P, typename C>
std::vector<ProcessPtr> make_n(std::uint32_t n, const C& config) {
  std::vector<ProcessPtr> processes;
  processes.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    processes.push_back(std::make_unique<P>(config));
  }
  return processes;
}
}  // namespace

std::vector<ProcessPtr> make_token_ring(std::uint32_t n,
                                        TokenRingConfig config) {
  return make_n<TokenRingProcess>(n, config);
}
std::vector<ProcessPtr> make_pipeline(std::uint32_t n, PipelineConfig config) {
  return make_n<PipelineProcess>(n, config);
}
std::vector<ProcessPtr> make_gossip(std::uint32_t n, GossipConfig config) {
  return make_n<GossipProcess>(n, config);
}
std::vector<ProcessPtr> make_bank(std::uint32_t n, BankConfig config) {
  return make_n<BankProcess>(n, config);
}

}  // namespace ddbg
