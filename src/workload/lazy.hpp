// LazyProcess: models a process with *infrequent interactions* (the first
// problem of section 2.2.2).
//
// The paper: "how to halt a process that has only infrequent interactions
// with the other processes of the computation.  The process would
// eventually halt, potentially long after all other processes have halted."
//
// A LazyProcess wraps another process (typically a DebugShim) and services
// its application channels only at its own interaction points — a periodic
// poll — so a peer's halt marker sits unread until the next poll.  Control
// channels are exempt: "user processes are always willing to accept a
// message from the debugger process" (section 2.2.3), which is exactly why
// the extended model fixes the problem.  Experiment E5 sweeps the poll
// interval and shows basic-algorithm halt latency growing with it while the
// extended model stays flat.
#pragma once

#include <deque>
#include <memory>

#include "net/process.hpp"

namespace ddbg {

class LazyProcess final : public Process {
 public:
  LazyProcess(ProcessPtr inner, Duration poll_interval)
      : inner_(std::move(inner)), poll_interval_(poll_interval) {}

  void on_start(ProcessContext& ctx) override {
    topology_ = &ctx.topology();
    inner_->on_start(ctx);
    poll_timer_ = ctx.set_timer(poll_interval_);
  }

  void on_message(ProcessContext& ctx, ChannelId in, Message message) override {
    if (topology_->channel(in).is_control) {
      // Debugger traffic is always serviced immediately.
      inner_->on_message(ctx, in, std::move(message));
      return;
    }
    stash_.emplace_back(in, std::move(message));
  }

  void on_timer(ProcessContext& ctx, TimerId timer) override {
    if (timer == poll_timer_) {
      // An interaction point: service everything that accumulated.
      while (!stash_.empty()) {
        auto [channel, message] = std::move(stash_.front());
        stash_.pop_front();
        inner_->on_message(ctx, channel, std::move(message));
      }
      poll_timer_ = ctx.set_timer(poll_interval_);
      return;
    }
    inner_->on_timer(ctx, timer);
  }

  [[nodiscard]] Bytes snapshot_state() const override {
    return inner_->snapshot_state();
  }
  [[nodiscard]] std::string describe_state() const override {
    return inner_->describe_state();
  }

  [[nodiscard]] Process& inner() { return *inner_; }
  [[nodiscard]] std::size_t stashed() const { return stash_.size(); }

 private:
  ProcessPtr inner_;
  Duration poll_interval_;
  const Topology* topology_ = nullptr;
  TimerId poll_timer_;
  std::deque<std::pair<ChannelId, Message>> stash_;
};

}  // namespace ddbg
