#include "workload/resources.hpp"

#include <sstream>

#include "common/logging.hpp"

namespace ddbg {

namespace {

ProcessId ring_successor(const ProcessContext& ctx) {
  const std::uint32_t n = ctx.topology().num_user_processes();
  return ProcessId((ctx.self().value() + 1) % n);
}

ProcessId ring_predecessor(const ProcessContext& ctx) {
  const std::uint32_t n = ctx.topology().num_user_processes();
  return ProcessId((ctx.self().value() + n - 1) % n);
}

ChannelId channel_to(const ProcessContext& ctx, ProcessId target) {
  auto channel = ctx.topology().channel_between(ctx.self(), target);
  DDBG_ASSERT(channel.has_value(), "resource ring needs both directions");
  return *channel;
}

}  // namespace

Bytes ResourceRingProcess::encode_message(ResourceMessage kind) {
  ByteWriter writer;
  writer.u8(static_cast<std::uint8_t>(kind));
  return std::move(writer).take();
}

Result<ResourceMessage> ResourceRingProcess::decode_message(
    const Bytes& payload) {
  ByteReader reader(payload);
  auto kind = reader.u8();
  if (!kind.ok()) return kind.error();
  if (kind.value() > static_cast<std::uint8_t>(ResourceMessage::kRelease)) {
    return Error(ErrorCode::kParseError, "bad resource message");
  }
  return static_cast<ResourceMessage>(kind.value());
}

bool ResourceRingProcess::is_polite(const ProcessContext& ctx) const {
  return config_.strategy == ResourceStrategy::kPolite &&
         ctx.self() == ProcessId(0);
}

void ResourceRingProcess::on_start(ProcessContext& ctx) {
  debug().set_var("work_done", 0);
  ctx.set_timer(config_.think_time);
}

void ResourceRingProcess::begin_acquisition(ProcessContext& ctx) {
  debug().enter_procedure("acquire");
  if (is_polite(ctx)) {
    // The symmetry breaker: request the successor's resource *before*
    // taking our own, so our own stays grantable while we wait.
    phase_ = Phase::kWaitingForGrant;
    ctx.send(channel_to(ctx, ring_successor(ctx)),
             Message::application(encode_message(ResourceMessage::kRequest)));
    return;
  }
  // Greedy: own first.
  if (own_lent_out_) {
    phase_ = Phase::kWantOwn;
    return;
  }
  holding_own_ = true;
  phase_ = Phase::kWaitingForGrant;
  request_neighbor(ctx);
}

void ResourceRingProcess::request_neighbor(ProcessContext& ctx) {
  if (config_.acquire_delay > Duration::nanos(0)) {
    request_pending_send_ = true;
    request_timer_ = ctx.set_timer(config_.acquire_delay);
    return;
  }
  ctx.send(channel_to(ctx, ring_successor(ctx)),
           Message::application(encode_message(ResourceMessage::kRequest)));
}

void ResourceRingProcess::try_advance(ProcessContext& ctx) {
  if (phase_ == Phase::kWantOwn && !own_lent_out_) {
    holding_own_ = true;
    if (holding_neighbor_) {
      start_work(ctx);
    } else {
      phase_ = Phase::kWaitingForGrant;
      request_neighbor(ctx);
    }
  }
}

void ResourceRingProcess::start_work(ProcessContext& ctx) {
  DDBG_ASSERT(holding_own_ && holding_neighbor_,
              "work needs both resources");
  phase_ = Phase::kWorking;
  debug().event("working", work_done_);
  work_timer_ = ctx.set_timer(config_.work_time);
}

void ResourceRingProcess::finish_work(ProcessContext& ctx) {
  ++work_done_;
  debug().set_var("work_done", work_done_);

  // Return the successor's resource.
  holding_neighbor_ = false;
  ctx.send(channel_to(ctx, ring_successor(ctx)),
           Message::application(encode_message(ResourceMessage::kRelease)));
  // Free our own; serve a queued request from the predecessor.
  holding_own_ = false;
  if (pending_request_) {
    pending_request_ = false;
    own_lent_out_ = true;
    ctx.send(channel_to(ctx, ring_predecessor(ctx)),
             Message::application(encode_message(ResourceMessage::kGrant)));
  }

  phase_ = Phase::kThinking;
  if (config_.max_work_units == 0 || work_done_ < config_.max_work_units) {
    ctx.set_timer(config_.think_time);
  } else {
    ctx.stop_self();
  }
}

void ResourceRingProcess::on_timer(ProcessContext& ctx, TimerId timer) {
  if (phase_ == Phase::kWorking && timer == work_timer_) {
    finish_work(ctx);
    return;
  }
  if (request_pending_send_ && timer == request_timer_) {
    request_pending_send_ = false;
    if (phase_ == Phase::kWaitingForGrant) {
      ctx.send(channel_to(ctx, ring_successor(ctx)),
               Message::application(
                   encode_message(ResourceMessage::kRequest)));
    }
    return;
  }
  if (phase_ == Phase::kThinking) begin_acquisition(ctx);
}

void ResourceRingProcess::on_message(ProcessContext& ctx, ChannelId /*in*/,
                                     Message message) {
  auto kind = decode_message(message.payload);
  if (!kind.ok()) {
    DDBG_WARN() << "resource ring: bad payload";
    return;
  }
  switch (kind.value()) {
    case ResourceMessage::kRequest:
      // The predecessor wants our resource.
      if (!holding_own_ && !own_lent_out_) {
        own_lent_out_ = true;
        ctx.send(channel_to(ctx, ring_predecessor(ctx)),
                 Message::application(
                     encode_message(ResourceMessage::kGrant)));
      } else {
        pending_request_ = true;
      }
      return;
    case ResourceMessage::kGrant:
      // The successor granted us its resource.
      holding_neighbor_ = true;
      debug().event("granted");
      if (holding_own_) {
        start_work(ctx);
      } else if (own_lent_out_) {
        phase_ = Phase::kWantOwn;  // polite path: still need our own back
      } else {
        holding_own_ = true;
        start_work(ctx);
      }
      return;
    case ResourceMessage::kRelease:
      // The predecessor returned our resource.
      own_lent_out_ = false;
      try_advance(ctx);
      return;
  }
}

Bytes ResourceRingProcess::snapshot_state() const {
  ByteWriter writer;
  std::uint8_t flags = 0;
  if (holding_own_) flags |= 1u << 0;
  if (holding_neighbor_) flags |= 1u << 1;
  if (own_lent_out_) flags |= 1u << 2;
  if (pending_request_) flags |= 1u << 3;
  writer.u8(flags);
  writer.u8(static_cast<std::uint8_t>(phase_));
  writer.u32(work_done_);
  return std::move(writer).take();
}

Result<ResourceRingProcess::DecodedState> ResourceRingProcess::decode_state(
    const Bytes& state) {
  ByteReader reader(state);
  auto flags = reader.u8();
  if (!flags.ok()) return flags.error();
  auto phase = reader.u8();
  if (!phase.ok()) return phase.error();
  auto work = reader.u32();
  if (!work.ok()) return work.error();

  DecodedState decoded;
  decoded.holding_own = (flags.value() & (1u << 0)) != 0;
  decoded.holding_neighbor = (flags.value() & (1u << 1)) != 0;
  decoded.work_done = work.value();
  switch (static_cast<Phase>(phase.value())) {
    case Phase::kWaitingForGrant:
      decoded.wait_kind = WaitKind::kGrant;
      break;
    case Phase::kWantOwn:
      decoded.wait_kind = WaitKind::kRelease;
      break;
    default:
      decoded.wait_kind = WaitKind::kNone;
      break;
  }
  // waiting_for (ring successor/predecessor) is filled by the analysis
  // layer, which knows the process's position in the ring.
  return decoded;
}

std::string ResourceRingProcess::describe_state() const {
  std::ostringstream out;
  out << "work=" << work_done_;
  switch (phase_) {
    case Phase::kThinking: out << " thinking"; break;
    case Phase::kWantOwn: out << " BLOCKED(own)"; break;
    case Phase::kWaitingForGrant: out << " BLOCKED(grant)"; break;
    case Phase::kWorking: out << " working"; break;
  }
  if (own_lent_out_) out << " lent";
  return out.str();
}

std::vector<ProcessPtr> make_resource_ring(std::uint32_t n,
                                           ResourceRingConfig config) {
  std::vector<ProcessPtr> processes;
  processes.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    processes.push_back(std::make_unique<ResourceRingProcess>(config));
  }
  return processes;
}

Topology resource_ring_topology(std::uint32_t n) {
  DDBG_ASSERT(n >= 2, "resource ring needs at least 2 processes");
  Topology topology(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    topology.add_channel(ProcessId(i), ProcessId((i + 1) % n));  // forward
    topology.add_channel(ProcessId((i + 1) % n), ProcessId(i));  // backward
  }
  return topology;
}

}  // namespace ddbg
