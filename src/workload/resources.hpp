// A deadlockable resource workload: each process owns one resource and
// needs its own plus its ring-successor's to do a unit of work.
//
//   grab own -> REQUEST successor's -> (GRANT) -> work -> RELEASE -> repeat
//
// In the kGreedy strategy every process grabs its own resource before
// requesting — the textbook circular wait: with all processes greedy the
// ring deadlocks almost immediately.  kPolite breaks the symmetry the
// classic way: process 0 acquires in the opposite order, so no cycle can
// close and the ring runs forever.
//
// Why it is here: detecting the deadlock *soundly* needs a consistent
// global state.  Inspecting processes one by one can report a phantom
// deadlock (a GRANT may be in flight), and the naive halt of E10 loses
// exactly that message.  S_h contains the channel contents, so
// find_deadlock (analysis/deadlock.hpp) can tell a real cycle from a
// phantom one — the canonical "what do I do with a halted state" debugging
// story.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "common/serialization.hpp"
#include "core/debug_api.hpp"
#include "net/process.hpp"

namespace ddbg {

enum class ResourceStrategy : std::uint8_t {
  kGreedy = 0,  // grab own, then request successor's (deadlock-prone)
  kPolite = 1,  // process 0 reverses its acquisition order (deadlock-free)
};

enum class ResourceMessage : std::uint8_t {
  kRequest = 0,
  kGrant = 1,
  kRelease = 2,
};

struct ResourceRingConfig {
  ResourceStrategy strategy = ResourceStrategy::kGreedy;
  Duration think_time = Duration::millis(2);  // between work units
  Duration work_time = Duration::millis(1);   // holding both resources
  std::uint32_t max_work_units = 0;           // 0 = unbounded
  // Greedy only: hold the own resource this long before sending the
  // REQUEST for the successor's.  Zero sends immediately.  On the threaded
  // runtime, where real message latency is microseconds, a delay much
  // larger than the scheduling skew between processes makes the circular
  // hold windows overlap, so the ring deadlocks on its first acquisition
  // cycle instead of relying on lockstep timers (which only the
  // deterministic simulator provides).
  Duration acquire_delay = Duration::nanos(0);
};

class ResourceRingProcess final : public Debuggable {
 public:
  explicit ResourceRingProcess(ResourceRingConfig config) : config_(config) {}

  void on_start(ProcessContext& ctx) override;
  void on_message(ProcessContext& ctx, ChannelId in, Message message) override;
  void on_timer(ProcessContext& ctx, TimerId timer) override;

  [[nodiscard]] Bytes snapshot_state() const override;
  [[nodiscard]] std::string describe_state() const override;

  [[nodiscard]] std::uint32_t work_done() const { return work_done_; }

  // ---- wire/state codecs shared with the analysis layer ----
  enum class WaitKind : std::uint8_t {
    kNone = 0,
    kGrant = 1,    // blocked until the successor's GRANT arrives
    kRelease = 2,  // blocked until the predecessor RELEASEs our resource
  };
  struct DecodedState {
    bool holding_own = false;
    bool holding_neighbor = false;
    WaitKind wait_kind = WaitKind::kNone;
    // The process whose action we are blocked on (valid iff wait_kind !=
    // kNone).
    ProcessId waiting_for;
    std::uint32_t work_done = 0;
  };
  [[nodiscard]] static Result<DecodedState> decode_state(const Bytes& state);
  [[nodiscard]] static Result<ResourceMessage> decode_message(
      const Bytes& payload);
  [[nodiscard]] static Bytes encode_message(ResourceMessage kind);

 private:
  enum class Phase : std::uint8_t {
    kThinking,         // timer running until the next work unit
    kWantOwn,          // own resource lent out; waiting for its RELEASE
    kWaitingForGrant,  // REQUEST sent, successor's GRANT pending
    kWorking,          // both resources held, work timer running
  };

  void begin_acquisition(ProcessContext& ctx);
  void request_neighbor(ProcessContext& ctx);
  void try_advance(ProcessContext& ctx);
  void start_work(ProcessContext& ctx);
  void finish_work(ProcessContext& ctx);
  [[nodiscard]] bool is_polite(const ProcessContext& ctx) const;

  ResourceRingConfig config_;
  Phase phase_ = Phase::kThinking;
  bool holding_own_ = false;        // own resource in our hands
  bool holding_neighbor_ = false;   // successor's resource granted to us
  bool own_lent_out_ = false;       // own resource granted to predecessor
  bool pending_request_ = false;    // predecessor waits for our resource
  std::uint32_t work_done_ = 0;
  TimerId work_timer_;
  TimerId request_timer_;
  bool request_pending_send_ = false;  // acquire_delay timer armed
};

[[nodiscard]] std::vector<ProcessPtr> make_resource_ring(
    std::uint32_t n, ResourceRingConfig config);

// The ring topology this workload requires: forward channels p->p+1 for
// requests/releases and backward channels p+1->p for grants.
[[nodiscard]] Topology resource_ring_topology(std::uint32_t n);

}  // namespace ddbg
