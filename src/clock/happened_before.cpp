#include "clock/happened_before.hpp"

#include <deque>

namespace ddbg {

EventIndex HappenedBeforeGraph::add_event(ProcessId process) {
  process_of_.push_back(process);
  successors_.emplace_back();
  return process_of_.size() - 1;
}

void HappenedBeforeGraph::add_edge(EventIndex earlier, EventIndex later) {
  DDBG_ASSERT(earlier < num_events() && later < num_events(),
              "happened-before edge endpoints must exist");
  successors_[earlier].push_back(later);
}

void HappenedBeforeGraph::register_send(std::uint64_t message_id,
                                        EventIndex send_event) {
  pending_sends_[message_id] = send_event;
}

void HappenedBeforeGraph::link_receive(std::uint64_t message_id,
                                       EventIndex receive_event) {
  auto it = pending_sends_.find(message_id);
  if (it == pending_sends_.end()) return;  // untracked message; tolerated
  add_edge(it->second, receive_event);
  pending_sends_.erase(it);
}

bool HappenedBeforeGraph::happened_before(EventIndex a, EventIndex b) const {
  if (a == b) return false;
  // Plain BFS.  Traces in this library are bounded (tests and benches cap
  // event counts), so memoization buys little over a direct search.
  std::vector<bool> visited(num_events(), false);
  std::deque<EventIndex> frontier{a};
  visited[a] = true;
  while (!frontier.empty()) {
    const EventIndex current = frontier.front();
    frontier.pop_front();
    for (const EventIndex next : successors_[current]) {
      if (next == b) return true;
      if (!visited[next]) {
        visited[next] = true;
        frontier.push_back(next);
      }
    }
  }
  return false;
}

}  // namespace ddbg
