// Lamport scalar clocks (Lamport 1978, the paper's reference [2]).
//
// The Halting Algorithm itself needs no clocks, but the analysis layer and
// the workloads use Lamport timestamps as the cheap "virtual time" the paper
// talks about: each process halts at the same *virtual* instant even though
// the physical instants differ.
#pragma once

#include <algorithm>
#include <cstdint>

namespace ddbg {

class LamportClock {
 public:
  // Tick for a purely local event; returns the event's timestamp.
  std::uint64_t tick() { return ++time_; }

  // Timestamp an outgoing message: a send is an event, so tick first.
  std::uint64_t on_send() { return tick(); }

  // Merge the timestamp of a received message: the receive event is ordered
  // after both the local past and the send.
  std::uint64_t on_receive(std::uint64_t message_time) {
    time_ = std::max(time_, message_time) + 1;
    return time_;
  }

  [[nodiscard]] std::uint64_t now() const { return time_; }

 private:
  std::uint64_t time_ = 0;
};

}  // namespace ddbg
