// Vector clocks and the happened-before partial order.
//
// The paper's distributed breakpoints are defined over events "that can be
// partially ordered" (section 3).  Vector clocks characterize that order
// exactly: VC(a) < VC(b) iff a happened-before b.  The debug shim
// piggybacks a vector clock on every application message (this is debug
// instrumentation, not part of the halting algorithm), which lets the
// analysis layer verify that halted cuts are consistent and classify
// conjunctive-predicate time pairs into ordered-SCP / unordered-SCP
// (section 3.5, figure 4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/serialization.hpp"

namespace ddbg {

enum class CausalOrder {
  kBefore,      // a happened-before b
  kAfter,       // b happened-before a
  kEqual,       // identical clocks
  kConcurrent,  // no ordering (the paper's "unordered")
};

[[nodiscard]] constexpr const char* to_string(CausalOrder order) {
  switch (order) {
    case CausalOrder::kBefore: return "before";
    case CausalOrder::kAfter: return "after";
    case CausalOrder::kEqual: return "equal";
    case CausalOrder::kConcurrent: return "concurrent";
  }
  return "?";
}

class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(std::size_t num_processes)
      : counts_(num_processes, 0) {}

  [[nodiscard]] std::size_t size() const { return counts_.size(); }
  [[nodiscard]] bool empty() const { return counts_.empty(); }

  [[nodiscard]] std::uint64_t at(ProcessId p) const {
    return p.value() < counts_.size() ? counts_[p.value()] : 0;
  }

  // Tick the local component for an event at process `self`.
  void tick(ProcessId self) {
    ensure_size(self.value() + 1);
    ++counts_[self.value()];
  }

  // Component-wise max merge (receive rule), without the local tick.
  void merge(const VectorClock& other) {
    ensure_size(other.counts_.size());
    for (std::size_t i = 0; i < other.counts_.size(); ++i) {
      if (other.counts_[i] > counts_[i]) counts_[i] = other.counts_[i];
    }
  }

  // The full receive rule: merge then tick.
  void on_receive(ProcessId self, const VectorClock& message_clock) {
    merge(message_clock);
    tick(self);
  }

  [[nodiscard]] CausalOrder compare(const VectorClock& other) const;

  // True iff this clock happened-before (strictly) `other`.
  [[nodiscard]] bool before(const VectorClock& other) const {
    return compare(other) == CausalOrder::kBefore;
  }
  [[nodiscard]] bool concurrent_with(const VectorClock& other) const {
    return compare(other) == CausalOrder::kConcurrent;
  }

  friend bool operator==(const VectorClock& a, const VectorClock& b) {
    return a.compare(b) == CausalOrder::kEqual;
  }

  void encode(ByteWriter& writer) const;
  [[nodiscard]] static Result<VectorClock> decode(ByteReader& reader);

  [[nodiscard]] std::string to_string() const;

 private:
  void ensure_size(std::size_t n) {
    if (counts_.size() < n) counts_.resize(n, 0);
  }

  std::vector<std::uint64_t> counts_;
};

}  // namespace ddbg
