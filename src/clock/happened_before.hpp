// An explicit happened-before graph over recorded events.
//
// Built by the analysis layer from event traces; used to answer reachability
// (did event a causally precede event b?) independently of the piggybacked
// vector clocks, so tests can cross-check the two mechanisms against each
// other on random executions.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"

namespace ddbg {

// Index of an event in a trace (see analysis/trace.hpp).
using EventIndex = std::size_t;

class HappenedBeforeGraph {
 public:
  // Add an event and return its index.  Events must be added in an order
  // consistent with each process's local order (trace order satisfies this).
  EventIndex add_event(ProcessId process);

  // Record that `earlier` immediately precedes `later` (same-process program
  // order or a send→receive message edge).
  void add_edge(EventIndex earlier, EventIndex later);

  // Convenience for message edges keyed by an opaque message id: the sender
  // registers the send, the receiver links its receive to it.
  void register_send(std::uint64_t message_id, EventIndex send_event);
  void link_receive(std::uint64_t message_id, EventIndex receive_event);

  [[nodiscard]] std::size_t num_events() const { return process_of_.size(); }
  [[nodiscard]] ProcessId process_of(EventIndex e) const {
    return process_of_[e];
  }

  // True iff a happened-before b (strict; reflexive pairs return false).
  // Computed by forward BFS with memoized reachability for repeated queries.
  [[nodiscard]] bool happened_before(EventIndex a, EventIndex b) const;

  [[nodiscard]] bool concurrent(EventIndex a, EventIndex b) const {
    return a != b && !happened_before(a, b) && !happened_before(b, a);
  }

 private:
  std::vector<ProcessId> process_of_;
  std::vector<std::vector<EventIndex>> successors_;
  std::unordered_map<std::uint64_t, EventIndex> pending_sends_;
};

}  // namespace ddbg
