#include "clock/vector_clock.hpp"

#include <algorithm>
#include <sstream>

namespace ddbg {

CausalOrder VectorClock::compare(const VectorClock& other) const {
  const std::size_t n = std::max(counts_.size(), other.counts_.size());
  bool less_somewhere = false;
  bool greater_somewhere = false;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t a = i < counts_.size() ? counts_[i] : 0;
    const std::uint64_t b = i < other.counts_.size() ? other.counts_[i] : 0;
    if (a < b) less_somewhere = true;
    if (a > b) greater_somewhere = true;
    // Divergence in both directions is already kConcurrent; the remaining
    // components cannot change the verdict.
    if (less_somewhere && greater_somewhere) return CausalOrder::kConcurrent;
  }
  if (less_somewhere && greater_somewhere) return CausalOrder::kConcurrent;
  if (less_somewhere) return CausalOrder::kBefore;
  if (greater_somewhere) return CausalOrder::kAfter;
  return CausalOrder::kEqual;
}

void VectorClock::encode(ByteWriter& writer) const {
  writer.varint(counts_.size());
  for (const std::uint64_t c : counts_) writer.varint(c);
}

Result<VectorClock> VectorClock::decode(ByteReader& reader) {
  auto n = reader.count();
  if (!n.ok()) return n.error();
  VectorClock clock;
  clock.counts_.reserve(n.value());
  for (std::uint64_t i = 0; i < n.value(); ++i) {
    auto c = reader.varint();
    if (!c.ok()) return c.error();
    clock.counts_.push_back(c.value());
  }
  return clock;
}

std::string VectorClock::to_string() const {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (i != 0) out << ',';
    out << counts_[i];
  }
  out << ']';
  return out.str();
}

}  // namespace ddbg
