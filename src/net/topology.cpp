#include "net/topology.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

namespace ddbg {

namespace {

[[nodiscard]] std::uint64_t pair_key(ProcessId source, ProcessId destination) {
  return (static_cast<std::uint64_t>(source.value()) << 32) |
         destination.value();
}

}  // namespace

Topology::Topology(std::uint32_t num_processes) {
  for (std::uint32_t i = 0; i < num_processes; ++i) add_process();
}

ProcessId Topology::add_process() {
  DDBG_ASSERT(out_channels_.size() < ProcessId::kInvalid,
              "process id space exhausted");
  const ProcessId id(static_cast<std::uint32_t>(out_channels_.size()));
  out_channels_.emplace_back();
  in_channels_.emplace_back();
  return id;
}

ChannelId Topology::add_channel(ProcessId source, ProcessId destination,
                                bool is_control) {
  DDBG_ASSERT(source.value() < num_processes(), "channel source must exist");
  DDBG_ASSERT(destination.value() < num_processes(),
              "channel destination must exist");
  DDBG_ASSERT(source != destination, "self-channels are not modeled");
  DDBG_ASSERT(channels_.size() < ChannelId::kInvalid,
              "channel id space exhausted");
  const ChannelId id(static_cast<std::uint32_t>(channels_.size()));
  channels_.push_back(ChannelSpec{id, source, destination, is_control});
  out_channels_[source.value()].push_back(id);
  in_channels_[destination.value()].push_back(id);
  if (!is_control) {
    // Keep the first data channel per pair (channel_between's contract).
    data_channel_index_.try_emplace(pair_key(source, destination), id);
  }
  return id;
}

Topology Topology::with_debugger() const {
  DDBG_ASSERT(!has_debugger(), "topology already has a debugger process");
  Topology extended = *this;
  const ProcessId d = extended.add_process();
  extended.debugger_ = d;
  const std::uint32_t users = num_processes();
  extended.num_tier_ = 1;
  extended.init_tier_metadata();
  for (std::uint32_t i = 0; i < users; ++i) {
    const ProcessId p(i);
    extended.control_to_[i] = extended.add_channel(d, p, /*is_control=*/true);
    extended.control_from_[i] =
        extended.add_channel(p, d, /*is_control=*/true);
    extended.tier_parent_[i] = d;
    extended.tier_children_[d.value()].push_back(p);
  }
  return extended;
}

Topology Topology::with_debugger_tree(std::uint32_t fanout) const {
  DDBG_ASSERT(!has_debugger(), "topology already has a debugger process");
  DDBG_ASSERT(fanout >= 2, "debugger tier needs fan-out of at least 2");
  Topology extended = *this;
  const std::uint32_t users = num_processes();
  // Count the tier up front so metadata vectors can be sized once.
  std::uint32_t tier = 0;
  for (std::uint32_t width = users; width > 1;
       width = (width + fanout - 1) / fanout) {
    tier += (width + fanout - 1) / fanout;
  }
  if (users == 1) tier = 1;  // degenerate: the root alone oversees one user
  extended.num_tier_ = tier;
  extended.tier_fanout_ = fanout;
  for (std::uint32_t i = 0; i < tier; ++i) extended.add_process();
  extended.debugger_ = ProcessId(users + tier - 1);  // root appended last
  extended.init_tier_metadata();

  // Build level by level: group the current level `fanout` at a time under
  // freshly numbered parents, keeping user order so every subtree covers a
  // contiguous user range.
  std::vector<ProcessId> level;
  level.reserve(users);
  for (std::uint32_t i = 0; i < users; ++i) level.emplace_back(i);
  std::uint32_t next_tier_id = users;
  while (level.size() > 1 || next_tier_id == users) {
    const std::size_t groups = (level.size() + fanout - 1) / fanout;
    std::vector<ProcessId> parents;
    parents.reserve(groups);
    for (std::size_t g = 0; g < groups; ++g) {
      const ProcessId parent(next_tier_id++);
      std::uint32_t lo = 0xffffffffu;
      std::uint32_t hi = 0;
      const std::size_t begin = g * fanout;
      const std::size_t end = std::min(begin + fanout, level.size());
      for (std::size_t c = begin; c < end; ++c) {
        const ProcessId child = level[c];
        extended.control_to_[child.value()] =
            extended.add_channel(parent, child, /*is_control=*/true);
        extended.control_from_[child.value()] =
            extended.add_channel(child, parent, /*is_control=*/true);
        extended.tier_parent_[child.value()] = parent;
        extended.tier_children_[parent.value()].push_back(child);
        const auto range = extended.tier_user_range_[child.value()];
        lo = std::min(lo, range.first);
        hi = std::max(hi, range.second);
      }
      extended.tier_user_range_[parent.value()] = {lo, hi};
      parents.push_back(parent);
    }
    level = std::move(parents);
  }
  DDBG_ASSERT(level.size() == 1 && level[0] == extended.debugger_,
              "tier construction must end at the root");
  return extended;
}

void Topology::init_tier_metadata() {
  const std::uint32_t n = num_processes();
  tier_parent_.assign(n, ProcessId());
  tier_children_.assign(n, {});
  tier_user_range_.assign(n, {0, 0});
  const std::uint32_t users = num_user_processes();
  for (std::uint32_t i = 0; i < users; ++i) tier_user_range_[i] = {i, i + 1};
  for (std::uint32_t i = users; i < n; ++i) tier_user_range_[i] = {0, users};
  control_to_.resize(n);
  control_from_.resize(n);
}

std::uint32_t Topology::num_user_processes() const {
  return num_processes() - num_tier_;
}

ProcessId Topology::tier_parent(ProcessId p) const {
  DDBG_ASSERT(has_debugger(), "no debugger in this topology");
  DDBG_ASSERT(p.value() < tier_parent_.size(), "unknown process id");
  return tier_parent_[p.value()];
}

std::span<const ProcessId> Topology::tier_children(ProcessId p) const {
  DDBG_ASSERT(has_debugger(), "no debugger in this topology");
  DDBG_ASSERT(p.value() < tier_children_.size(), "unknown process id");
  return tier_children_[p.value()];
}

std::pair<std::uint32_t, std::uint32_t> Topology::tier_user_range(
    ProcessId p) const {
  DDBG_ASSERT(has_debugger(), "no debugger in this topology");
  DDBG_ASSERT(p.value() < tier_user_range_.size(), "unknown process id");
  return tier_user_range_[p.value()];
}

const ChannelSpec& Topology::channel(ChannelId id) const {
  DDBG_ASSERT(id.value() < channels_.size(), "unknown channel id");
  return channels_[id.value()];
}

std::span<const ChannelId> Topology::out_channels(ProcessId p) const {
  DDBG_ASSERT(p.value() < num_processes(), "unknown process id");
  return out_channels_[p.value()];
}

std::span<const ChannelId> Topology::in_channels(ProcessId p) const {
  DDBG_ASSERT(p.value() < num_processes(), "unknown process id");
  return in_channels_[p.value()];
}

std::optional<ChannelId> Topology::channel_between(
    ProcessId source, ProcessId destination) const {
  DDBG_ASSERT(source.value() < num_processes(), "unknown process id");
  const auto it = data_channel_index_.find(pair_key(source, destination));
  if (it == data_channel_index_.end()) return std::nullopt;
  return it->second;
}

ChannelId Topology::control_to(ProcessId p) const {
  DDBG_ASSERT(has_debugger(), "no debugger in this topology");
  DDBG_ASSERT(p != debugger_, "the tier root has no parent channel");
  DDBG_ASSERT(p.value() < control_to_.size(), "unknown process id");
  return control_to_[p.value()];
}

ChannelId Topology::control_from(ProcessId p) const {
  DDBG_ASSERT(has_debugger(), "no debugger in this topology");
  DDBG_ASSERT(p != debugger_, "the tier root has no parent channel");
  DDBG_ASSERT(p.value() < control_from_.size(), "unknown process id");
  return control_from_[p.value()];
}

std::vector<ProcessId> Topology::process_ids() const {
  std::vector<ProcessId> ids;
  ids.reserve(num_processes());
  for (std::uint32_t i = 0; i < num_processes(); ++i) ids.emplace_back(i);
  return ids;
}

std::vector<ProcessId> Topology::user_process_ids() const {
  std::vector<ProcessId> ids;
  ids.reserve(num_user_processes());
  for (std::uint32_t i = 0; i < num_user_processes(); ++i) ids.emplace_back(i);
  return ids;
}

namespace {

// Iterative Tarjan SCC.
class TarjanScc {
 public:
  explicit TarjanScc(const Topology& topology) : topology_(topology) {
    const std::uint32_t n = topology.num_processes();
    index_.assign(n, kUnvisited);
    lowlink_.assign(n, 0);
    on_stack_.assign(n, false);
  }

  std::size_t count_components() {
    for (std::uint32_t v = 0; v < topology_.num_processes(); ++v) {
      if (index_[v] == kUnvisited) strong_connect(v);
    }
    return components_;
  }

 private:
  static constexpr std::uint32_t kUnvisited = 0xffffffffu;

  void strong_connect(std::uint32_t root) {
    // Explicit stack frames to avoid deep recursion on long pipelines.
    struct Frame {
      std::uint32_t vertex;
      std::size_t next_edge = 0;
    };
    std::vector<Frame> call_stack{{root}};
    visit(root);
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const auto out = topology_.out_channels(ProcessId(frame.vertex));
      if (frame.next_edge < out.size()) {
        const std::uint32_t w =
            topology_.channel(out[frame.next_edge]).destination.value();
        ++frame.next_edge;
        if (index_[w] == kUnvisited) {
          visit(w);
          call_stack.push_back(Frame{w});
        } else if (on_stack_[w]) {
          lowlink_[frame.vertex] =
              std::min(lowlink_[frame.vertex], index_[w]);
        }
      } else {
        const std::uint32_t v = frame.vertex;
        if (lowlink_[v] == index_[v]) {
          ++components_;
          while (true) {
            const std::uint32_t w = scc_stack_.back();
            scc_stack_.pop_back();
            on_stack_[w] = false;
            if (w == v) break;
          }
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const std::uint32_t parent = call_stack.back().vertex;
          lowlink_[parent] = std::min(lowlink_[parent], lowlink_[v]);
        }
      }
    }
  }

  void visit(std::uint32_t v) {
    index_[v] = next_index_;
    lowlink_[v] = next_index_;
    ++next_index_;
    scc_stack_.push_back(v);
    on_stack_[v] = true;
  }

  const Topology& topology_;
  std::vector<std::uint32_t> index_;
  std::vector<std::uint32_t> lowlink_;
  std::vector<bool> on_stack_;
  std::vector<std::uint32_t> scc_stack_;
  std::uint32_t next_index_ = 0;
  std::size_t components_ = 0;
};

}  // namespace

bool Topology::strongly_connected() const {
  if (num_processes() == 0) return true;
  return num_strongly_connected_components() == 1;
}

std::size_t Topology::num_strongly_connected_components() const {
  return TarjanScc(*this).count_components();
}

std::string Topology::describe() const {
  std::ostringstream out;
  out << num_processes() << " processes";
  if (has_debugger()) out << " (incl. debugger " << to_string(debugger_) << ")";
  out << ", " << num_channels() << " channels";
  return out.str();
}

Topology Topology::ring(std::uint32_t n) {
  DDBG_ASSERT(n >= 2, "ring needs at least 2 processes");
  Topology t(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    t.add_channel(ProcessId(i), ProcessId((i + 1) % n));
  }
  return t;
}

Topology Topology::star(std::uint32_t n) {
  DDBG_ASSERT(n >= 2, "star needs at least 2 processes");
  Topology t(n);
  for (std::uint32_t i = 1; i < n; ++i) {
    t.add_channel(ProcessId(0), ProcessId(i));
    t.add_channel(ProcessId(i), ProcessId(0));
  }
  return t;
}

Topology Topology::pipeline(std::uint32_t n) {
  DDBG_ASSERT(n >= 2, "pipeline needs at least 2 processes");
  Topology t(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    t.add_channel(ProcessId(i), ProcessId(i + 1));
  }
  return t;
}

Topology Topology::tree(std::uint32_t n, std::uint32_t branching) {
  DDBG_ASSERT(n >= 2, "tree needs at least 2 processes");
  DDBG_ASSERT(branching >= 1, "tree needs fan-out of at least 1");
  Topology t(n);
  // 2 channels per tree edge, n-1 edges.
  t.channels_.reserve(2ULL * (n - 1));
  for (std::uint32_t child = 1; child < n; ++child) {
    const std::uint32_t parent = (child - 1) / branching;
    t.add_channel(ProcessId(parent), ProcessId(child));
    t.add_channel(ProcessId(child), ProcessId(parent));
  }
  return t;
}

Topology Topology::complete(std::uint32_t n) {
  DDBG_ASSERT(n >= 2, "complete graph needs at least 2 processes");
  Topology t(n);
  // All ordered pairs: counted in 64 bits — n * (n - 1) overflows uint32
  // from n = 65537, well inside the representable process-id range.
  const std::uint64_t num_channels =
      static_cast<std::uint64_t>(n) * (n - 1);
  DDBG_ASSERT(num_channels < ChannelId::kInvalid,
              "complete graph exceeds the channel id space");
  t.channels_.reserve(num_channels);
  t.data_channel_index_.reserve(num_channels);
  for (std::uint32_t i = 0; i < n; ++i) {
    t.out_channels_[i].reserve(n - 1);
    t.in_channels_[i].reserve(n - 1);
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      if (i != j) t.add_channel(ProcessId(i), ProcessId(j));
    }
  }
  return t;
}

Topology Topology::random_strongly_connected(std::uint32_t n,
                                             std::uint32_t extra_edges,
                                             Rng& rng) {
  DDBG_ASSERT(n >= 2, "need at least 2 processes");
  Topology t(n);
  // Random permutation ring guarantees strong connectivity.
  std::vector<std::uint32_t> order(n);
  for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
  for (std::uint32_t i = n - 1; i > 0; --i) {
    const auto j = static_cast<std::uint32_t>(rng.next_below(i + 1));
    std::swap(order[i], order[j]);
  }
  std::set<std::pair<std::uint32_t, std::uint32_t>> used;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t a = order[i];
    const std::uint32_t b = order[(i + 1) % n];
    t.add_channel(ProcessId(a), ProcessId(b));
    used.insert({a, b});
  }
  const std::uint64_t max_extra =
      static_cast<std::uint64_t>(n) * (n - 1) - used.size();
  std::uint32_t added = 0;
  const auto target = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(extra_edges, max_extra));
  while (added < target) {
    const auto a = static_cast<std::uint32_t>(rng.next_below(n));
    const auto b = static_cast<std::uint32_t>(rng.next_below(n));
    if (a == b || used.contains({a, b})) continue;
    t.add_channel(ProcessId(a), ProcessId(b));
    used.insert({a, b});
    ++added;
  }
  return t;
}

Topology Topology::random(std::uint32_t n, double edge_probability, Rng& rng) {
  DDBG_ASSERT(n >= 1, "need at least 1 process");
  Topology t(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      if (i != j && rng.next_bool(edge_probability)) {
        t.add_channel(ProcessId(i), ProcessId(j));
      }
    }
  }
  return t;
}

}  // namespace ddbg
