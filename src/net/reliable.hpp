// Reliable-channel recovery: exactly-once FIFO delivery over a lossy
// transport.
//
// Section 2.1 of the paper assumes channels are reliable, FIFO and
// unbounded, and every algorithm above the transport (halting waves,
// C&L recording, linked-predicate marker chains) leans on that.  When the
// transport underneath is allowed to drop, duplicate, reorder or reset
// (net/fault_plan.hpp), this layer re-establishes the axioms:
//
//   * ReliableSender stamps every message with a per-channel sequence
//     number and keeps it in a retransmit queue until cumulatively acked,
//     with exponential backoff up to a cap;
//   * ReliableReceiver suppresses duplicates and releases messages in
//     sequence order, holding early arrivals until the gap fills;
//   * RelHeader is the wire header piggybacked on byte-stream frames
//     (sequence number out, cumulative ack back).
//
// Both machines are pure state — no I/O, no clocks, no locks.  Each
// runtime drives them from its own send/deliver path and timer source, so
// one implementation serves the simulator and both threaded runtimes (and
// the unit tests exercise loss patterns no real socket would produce on
// demand).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "common/serialization.hpp"
#include "common/time.hpp"
#include "net/message.hpp"

namespace ddbg {

struct ReliableConfig {
  // First retransmit fires this long after the original send.
  Duration rto_initial = Duration::millis(25);
  // Backoff doubles per retransmit of the same message, capped here.
  Duration rto_max = Duration::millis(400);
};

class ReliableSender {
 public:
  explicit ReliableSender(ReliableConfig config = {}) : config_(config) {}

  // A message and an opaque caller word carried alongside it (the runtimes
  // stash the wire size so retransmissions and late releases account bytes
  // without re-encoding).
  struct Staged {
    Message message;
    std::uint64_t meta = 0;
  };

  // Track `message` until cumulatively acked.  Returns its sequence number
  // (data sequences start at 1; 0 never names a message).
  std::uint64_t stage(Message message, std::uint64_t meta, TimePoint now);

  // Cumulative ack: retires every entry with seq <= cum_ack.  Returns how
  // many entries were retired.
  std::size_t ack(std::uint64_t cum_ack);

  // Sequence numbers due for retransmission at `now`.  Each returned entry
  // has its backoff doubled (up to the cap) and its deadline pushed out, so
  // calling again immediately returns nothing.
  [[nodiscard]] std::vector<std::uint64_t> due(TimePoint now);

  // Make every unacked entry due immediately (reconnect resync: the new
  // connection replays the whole window).  Returns how many entries there
  // were.
  std::size_t mark_all_due(TimePoint now);

  // Earliest retransmit deadline among unacked entries, if any.
  [[nodiscard]] std::optional<TimePoint> next_deadline() const;

  // The staged message for `seq`, or nullptr if already acked.
  [[nodiscard]] const Staged* peek(std::uint64_t seq) const;

  [[nodiscard]] std::size_t unacked() const { return window_.size(); }
  [[nodiscard]] std::uint64_t last_staged() const { return next_seq_ - 1; }
  [[nodiscard]] std::uint64_t cum_acked() const { return acked_; }

 private:
  struct Entry {
    std::uint64_t seq = 0;
    Staged staged;
    TimePoint next_retry{0};
    Duration rto{0};
  };

  ReliableConfig config_;
  std::deque<Entry> window_;  // unacked, ascending seq
  std::uint64_t next_seq_ = 1;
  std::uint64_t acked_ = 0;
};

class ReliableReceiver {
 public:
  enum class Accept : std::uint8_t {
    kDelivered,  // in order: released (possibly with buffered successors)
    kDuplicate,  // seq already delivered once — suppressed
    kBuffered,   // early arrival: held until the gap fills
  };

  struct Delivery {
    std::uint64_t seq = 0;
    Message message;
    std::uint64_t meta = 0;
  };

  // Feed one arriving data frame.  Messages that become deliverable (the
  // frame itself and any buffered run it unblocks) are appended to `out`
  // in sequence order.
  Accept on_frame(std::uint64_t seq, Message message, std::uint64_t meta,
                  std::vector<Delivery>& out);

  // Highest sequence number below which everything has been delivered.
  [[nodiscard]] std::uint64_t cum_ack() const { return expected_ - 1; }
  [[nodiscard]] std::size_t held() const { return held_.size(); }

 private:
  std::uint64_t expected_ = 1;  // next in-order seq
  std::map<std::uint64_t, Delivery> held_;
};

// Wire header for reliable byte-stream frames, written between the length
// prefix and the encoded message.  Data frames carry (seq, cum_ack); ack
// frames carry only cum_ack and no message body.
struct RelHeader {
  static constexpr std::uint8_t kData = 1;
  static constexpr std::uint8_t kAck = 2;

  std::uint8_t tag = kData;
  std::uint64_t seq = 0;      // data frames: channel sequence number
  std::uint64_t cum_ack = 0;  // receiver's cumulative ack (piggybacked)

  void encode(ByteWriter& writer) const;
  [[nodiscard]] static Result<RelHeader> decode(ByteReader& reader);
};

// Encoded RelHeader size: tag (1) + seq (8) + cum_ack (8).
inline constexpr std::size_t kRelHeaderSize = 17;

}  // namespace ddbg
