#include "net/reliable.hpp"

#include "common/logging.hpp"

namespace ddbg {

std::uint64_t ReliableSender::stage(Message message, std::uint64_t meta,
                                    TimePoint now) {
  Entry entry;
  entry.seq = next_seq_++;
  entry.staged = Staged{std::move(message), meta};
  entry.rto = config_.rto_initial;
  entry.next_retry = now + entry.rto;
  window_.push_back(std::move(entry));
  return window_.back().seq;
}

std::size_t ReliableSender::ack(std::uint64_t cum_ack) {
  std::size_t retired = 0;
  while (!window_.empty() && window_.front().seq <= cum_ack) {
    window_.pop_front();
    ++retired;
  }
  if (cum_ack > acked_) acked_ = cum_ack;
  return retired;
}

std::vector<std::uint64_t> ReliableSender::due(TimePoint now) {
  std::vector<std::uint64_t> out;
  for (auto& entry : window_) {
    if (entry.next_retry > now) continue;
    out.push_back(entry.seq);
    entry.rto = entry.rto * 2;
    if (entry.rto > config_.rto_max) entry.rto = config_.rto_max;
    entry.next_retry = now + entry.rto;
  }
  return out;
}

std::size_t ReliableSender::mark_all_due(TimePoint now) {
  for (auto& entry : window_) {
    entry.next_retry = now;
  }
  return window_.size();
}

std::optional<TimePoint> ReliableSender::next_deadline() const {
  std::optional<TimePoint> earliest;
  for (const auto& entry : window_) {
    if (!earliest.has_value() || entry.next_retry < *earliest) {
      earliest = entry.next_retry;
    }
  }
  return earliest;
}

const ReliableSender::Staged* ReliableSender::peek(std::uint64_t seq) const {
  for (const auto& entry : window_) {
    if (entry.seq == seq) return &entry.staged;
  }
  return nullptr;
}

ReliableReceiver::Accept ReliableReceiver::on_frame(
    std::uint64_t seq, Message message, std::uint64_t meta,
    std::vector<Delivery>& out) {
  if (seq < expected_ || held_.count(seq) != 0) {
    return Accept::kDuplicate;
  }
  if (seq > expected_) {
    held_.emplace(seq, Delivery{seq, std::move(message), meta});
    return Accept::kBuffered;
  }
  out.push_back(Delivery{seq, std::move(message), meta});
  ++expected_;
  // Release the buffered run this frame unblocked.
  auto it = held_.begin();
  while (it != held_.end() && it->first == expected_) {
    out.push_back(std::move(it->second));
    it = held_.erase(it);
    ++expected_;
  }
  return Accept::kDelivered;
}

void RelHeader::encode(ByteWriter& writer) const {
  writer.u8(tag);
  writer.u64(seq);
  writer.u64(cum_ack);
}

Result<RelHeader> RelHeader::decode(ByteReader& reader) {
  RelHeader header;
  auto tag = reader.u8();
  if (!tag.ok()) return tag.error();
  header.tag = tag.value();
  if (header.tag != kData && header.tag != kAck) {
    return Error(ErrorCode::kParseError, "reliable frame: bad tag");
  }
  auto seq = reader.u64();
  if (!seq.ok()) return seq.error();
  header.seq = seq.value();
  auto cum_ack = reader.u64();
  if (!cum_ack.ok()) return cum_ack.error();
  header.cum_ack = cum_ack.value();
  return header;
}

}  // namespace ddbg
