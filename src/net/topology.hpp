// Process/channel graphs (the paper's figure 1), generators for the shapes
// used in the experiments, and the strong-connectivity check on which the
// *basic* halting algorithm depends (section 2.2.2: "The C&L Algorithm
// avoids this problem by assuming that the processes are strongly
// connected").
//
// with_debugger() realizes the extended model of section 2.2.3 / figure 3:
// an extra debugger process `d` with a control channel to and from every
// user process, which makes any topology strongly connected.
//
// with_debugger_tree() generalizes that single `d` into a spanning tree of
// aggregator processes (broadcast/convergecast in the style of Aspnes'
// notes): every user process keeps exactly one control channel pair, but it
// now leads to a leaf aggregator instead of the root, so no single process
// owns O(n) control channels.  The root of the tier plays the paper's `d`.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"

namespace ddbg {

struct ChannelSpec {
  ChannelId id;
  ProcessId source;
  ProcessId destination;
  // Control channels connect the debugger process with user processes and
  // carry only debugger traffic; see section 2.2.3.
  bool is_control = false;
};

class Topology {
 public:
  Topology() = default;
  explicit Topology(std::uint32_t num_processes);

  // ---- construction ----
  ProcessId add_process();
  ChannelId add_channel(ProcessId source, ProcessId destination,
                        bool is_control = false);

  // Returns a copy of this topology extended with a debugger process that
  // has one control channel to and one from every existing process.
  [[nodiscard]] Topology with_debugger() const;

  // Returns a copy of this topology extended with a debugger *tier*: user
  // processes are grouped `fanout` at a time under leaf aggregators, those
  // aggregators under higher aggregators, until a single root remains.  The
  // root is the debugger process; every non-root process has exactly one
  // control channel to and one from its tier parent.  Requires fanout >= 2.
  [[nodiscard]] Topology with_debugger_tree(std::uint32_t fanout) const;

  // ---- queries ----
  [[nodiscard]] std::uint32_t num_processes() const {
    return static_cast<std::uint32_t>(out_channels_.size());
  }
  // Number of processes excluding the debugger (== num_processes() when
  // there is no debugger).
  [[nodiscard]] std::uint32_t num_user_processes() const;

  [[nodiscard]] std::size_t num_channels() const { return channels_.size(); }
  [[nodiscard]] const ChannelSpec& channel(ChannelId id) const;
  [[nodiscard]] std::span<const ChannelSpec> channels() const {
    return channels_;
  }

  [[nodiscard]] std::span<const ChannelId> out_channels(ProcessId p) const;
  [[nodiscard]] std::span<const ChannelId> in_channels(ProcessId p) const;

  // First (non-control) channel from source to destination, if any.
  [[nodiscard]] std::optional<ChannelId> channel_between(
      ProcessId source, ProcessId destination) const;

  [[nodiscard]] bool has_debugger() const { return debugger_.valid(); }
  [[nodiscard]] ProcessId debugger_id() const { return debugger_; }
  [[nodiscard]] bool is_debugger(ProcessId p) const {
    return has_debugger() && p == debugger_;
  }
  // Control channel from p's tier parent to p / from p to its tier parent.
  // With a flat debugger the parent of every user process is the debugger
  // itself, so these keep their original meaning.
  [[nodiscard]] ChannelId control_to(ProcessId p) const;
  [[nodiscard]] ChannelId control_from(ProcessId p) const;

  // ---- debugger tier queries ----
  // Number of debugger-tier processes (aggregators + root); 1 for a flat
  // debugger, 0 without one.
  [[nodiscard]] std::uint32_t num_tier_processes() const { return num_tier_; }
  [[nodiscard]] std::uint32_t num_aggregators() const {
    return num_tier_ > 0 ? num_tier_ - 1 : 0;
  }
  // Tier processes are appended after the user processes, root last.
  [[nodiscard]] bool is_aggregator(ProcessId p) const {
    return has_debugger() && p != debugger_ &&
           p.value() >= num_user_processes();
  }
  // Fan-out the tier was built with; 0 for a flat with_debugger() topology.
  [[nodiscard]] std::uint32_t tier_fanout() const { return tier_fanout_; }
  // Tier parent of p (the debugger itself in flat mode); invalid for the
  // root.  Defined for every process once a debugger exists.
  [[nodiscard]] ProcessId tier_parent(ProcessId p) const;
  // Direct tier children of p (empty for user processes).  For a flat
  // debugger the root's children are all user processes, in id order.
  [[nodiscard]] std::span<const ProcessId> tier_children(ProcessId p) const;
  // Contiguous half-open range [lo, hi) of user process ids covered by p's
  // subtree ([p, p+1) for a user process itself).
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> tier_user_range(
      ProcessId p) const;

  [[nodiscard]] std::vector<ProcessId> process_ids() const;
  [[nodiscard]] std::vector<ProcessId> user_process_ids() const;

  // Tarjan's strongly-connected-components algorithm over all channels.
  [[nodiscard]] bool strongly_connected() const;
  [[nodiscard]] std::size_t num_strongly_connected_components() const;

  [[nodiscard]] std::string describe() const;

  // ---- generators (user processes only; call with_debugger() to extend) ----
  // Unidirectional ring p0 -> p1 -> ... -> p(n-1) -> p0.
  [[nodiscard]] static Topology ring(std::uint32_t n);
  // Bidirectional star centered on p0.
  [[nodiscard]] static Topology star(std::uint32_t n);
  // Acyclic pipeline p0 -> p1 -> ... -> p(n-1): the paper's figure 2
  // producer-consumer shape generalized.
  [[nodiscard]] static Topology pipeline(std::uint32_t n);
  // Rooted tree with fan-out `branching`, every edge bidirectional (parent
  // <-> child), so the result is strongly connected.  The hierarchical
  // shape for the scale sweeps: diameter O(log n) at O(n) channels.
  [[nodiscard]] static Topology tree(std::uint32_t n,
                                     std::uint32_t branching = 2);
  // All ordered pairs connected.
  [[nodiscard]] static Topology complete(std::uint32_t n);
  // Random strongly-connected digraph: a random ring through all processes
  // plus `extra_edges` distinct random edges.
  [[nodiscard]] static Topology random_strongly_connected(
      std::uint32_t n, std::uint32_t extra_edges, Rng& rng);
  // Random digraph where each ordered pair gets a channel with probability
  // `edge_probability` (may be disconnected; used for SCC tests).
  [[nodiscard]] static Topology random(std::uint32_t n,
                                       double edge_probability, Rng& rng);

 private:
  // Sizes the tier metadata vectors once the debugger (tier) processes have
  // been appended; callers then fill parents/children/ranges.
  void init_tier_metadata();

  std::vector<ChannelSpec> channels_;
  std::vector<std::vector<ChannelId>> out_channels_;
  std::vector<std::vector<ChannelId>> in_channels_;
  // First data (non-control) channel per ordered (source, destination)
  // pair, so channel_between is O(1) instead of an out-degree scan — on a
  // complete graph at N=1024 that scan is 1023 entries per lookup.  Lookup
  // only; nothing ever iterates this map, so its hash order cannot leak
  // into any output.
  std::unordered_map<std::uint64_t, ChannelId> data_channel_index_;
  ProcessId debugger_;
  // For each non-root process: control channels to/from its tier parent
  // (the debugger itself when the tier is flat).
  std::vector<ChannelId> control_to_;
  std::vector<ChannelId> control_from_;
  // Debugger-tier shape; see with_debugger_tree().  All vectors are indexed
  // by process id and sized num_processes() once a debugger exists.
  std::uint32_t num_tier_ = 0;
  std::uint32_t tier_fanout_ = 0;
  std::vector<ProcessId> tier_parent_;
  std::vector<std::vector<ProcessId>> tier_children_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> tier_user_range_;
};

}  // namespace ddbg
