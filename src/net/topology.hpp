// Process/channel graphs (the paper's figure 1), generators for the shapes
// used in the experiments, and the strong-connectivity check on which the
// *basic* halting algorithm depends (section 2.2.2: "The C&L Algorithm
// avoids this problem by assuming that the processes are strongly
// connected").
//
// with_debugger() realizes the extended model of section 2.2.3 / figure 3:
// an extra debugger process `d` with a control channel to and from every
// user process, which makes any topology strongly connected.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"

namespace ddbg {

struct ChannelSpec {
  ChannelId id;
  ProcessId source;
  ProcessId destination;
  // Control channels connect the debugger process with user processes and
  // carry only debugger traffic; see section 2.2.3.
  bool is_control = false;
};

class Topology {
 public:
  Topology() = default;
  explicit Topology(std::uint32_t num_processes);

  // ---- construction ----
  ProcessId add_process();
  ChannelId add_channel(ProcessId source, ProcessId destination,
                        bool is_control = false);

  // Returns a copy of this topology extended with a debugger process that
  // has one control channel to and one from every existing process.
  [[nodiscard]] Topology with_debugger() const;

  // ---- queries ----
  [[nodiscard]] std::uint32_t num_processes() const {
    return static_cast<std::uint32_t>(out_channels_.size());
  }
  // Number of processes excluding the debugger (== num_processes() when
  // there is no debugger).
  [[nodiscard]] std::uint32_t num_user_processes() const;

  [[nodiscard]] std::size_t num_channels() const { return channels_.size(); }
  [[nodiscard]] const ChannelSpec& channel(ChannelId id) const;
  [[nodiscard]] std::span<const ChannelSpec> channels() const {
    return channels_;
  }

  [[nodiscard]] std::span<const ChannelId> out_channels(ProcessId p) const;
  [[nodiscard]] std::span<const ChannelId> in_channels(ProcessId p) const;

  // First (non-control) channel from source to destination, if any.
  [[nodiscard]] std::optional<ChannelId> channel_between(
      ProcessId source, ProcessId destination) const;

  [[nodiscard]] bool has_debugger() const { return debugger_.valid(); }
  [[nodiscard]] ProcessId debugger_id() const { return debugger_; }
  [[nodiscard]] bool is_debugger(ProcessId p) const {
    return has_debugger() && p == debugger_;
  }
  // Control channel from the debugger to p / from p to the debugger.
  [[nodiscard]] ChannelId control_to(ProcessId p) const;
  [[nodiscard]] ChannelId control_from(ProcessId p) const;

  [[nodiscard]] std::vector<ProcessId> process_ids() const;
  [[nodiscard]] std::vector<ProcessId> user_process_ids() const;

  // Tarjan's strongly-connected-components algorithm over all channels.
  [[nodiscard]] bool strongly_connected() const;
  [[nodiscard]] std::size_t num_strongly_connected_components() const;

  [[nodiscard]] std::string describe() const;

  // ---- generators (user processes only; call with_debugger() to extend) ----
  // Unidirectional ring p0 -> p1 -> ... -> p(n-1) -> p0.
  [[nodiscard]] static Topology ring(std::uint32_t n);
  // Bidirectional star centered on p0.
  [[nodiscard]] static Topology star(std::uint32_t n);
  // Acyclic pipeline p0 -> p1 -> ... -> p(n-1): the paper's figure 2
  // producer-consumer shape generalized.
  [[nodiscard]] static Topology pipeline(std::uint32_t n);
  // Rooted tree with fan-out `branching`, every edge bidirectional (parent
  // <-> child), so the result is strongly connected.  The hierarchical
  // shape for the scale sweeps: diameter O(log n) at O(n) channels.
  [[nodiscard]] static Topology tree(std::uint32_t n,
                                     std::uint32_t branching = 2);
  // All ordered pairs connected.
  [[nodiscard]] static Topology complete(std::uint32_t n);
  // Random strongly-connected digraph: a random ring through all processes
  // plus `extra_edges` distinct random edges.
  [[nodiscard]] static Topology random_strongly_connected(
      std::uint32_t n, std::uint32_t extra_edges, Rng& rng);
  // Random digraph where each ordered pair gets a channel with probability
  // `edge_probability` (may be disconnected; used for SCC tests).
  [[nodiscard]] static Topology random(std::uint32_t n,
                                       double edge_probability, Rng& rng);

 private:
  std::vector<ChannelSpec> channels_;
  std::vector<std::vector<ChannelId>> out_channels_;
  std::vector<std::vector<ChannelId>> in_channels_;
  // First data (non-control) channel per ordered (source, destination)
  // pair, so channel_between is O(1) instead of an out-degree scan — on a
  // complete graph at N=1024 that scan is 1023 entries per lookup.  Lookup
  // only; nothing ever iterates this map, so its hash order cannot leak
  // into any output.
  std::unordered_map<std::uint64_t, ChannelId> data_channel_index_;
  ProcessId debugger_;
  // For each user process: control channels to/from the debugger.
  std::vector<ChannelId> control_to_;
  std::vector<ChannelId> control_from_;
};

}  // namespace ddbg
