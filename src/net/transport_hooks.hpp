// Observation hooks shared by the runtimes.
//
// Both the simulator and the threaded runtimes report message sends and
// deliveries through a TransportObserver so the analysis layer (traces,
// statistics, in-flight accounting for the naive-halt experiment) works
// identically on either substrate.
//
// Cumulative accounting lives in obs::MetricsRegistry (src/obs); this
// header provides the glue between it and the network layer: the
// channel-metadata extraction the registries are constructed from, and
// the legacy TransportStats summary view that tests and experiments
// consume.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "net/fault_plan.hpp"
#include "net/message.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"

namespace ddbg {

class TransportObserver {
 public:
  virtual ~TransportObserver() = default;

  virtual void on_send(TimePoint when, ChannelId channel,
                       const Message& message) = 0;
  virtual void on_deliver(TimePoint when, ChannelId channel,
                          const Message& message) = 0;
};

// obs::MetricsRegistry indexes traffic classes by the MessageKind tag; the
// obs layer deliberately does not include network headers, so pin the
// correspondence here.
static_assert(static_cast<std::size_t>(MessageKind::kApplication) == 0 &&
                  static_cast<std::size_t>(MessageKind::kHaltMarker) == 1 &&
                  static_cast<std::size_t>(MessageKind::kSnapshotMarker) == 2 &&
                  static_cast<std::size_t>(MessageKind::kPredicateMarker) ==
                      3 &&
                  static_cast<std::size_t>(MessageKind::kControl) == 4 &&
                  obs::kNumTrafficClasses == 5,
              "obs traffic classes must mirror MessageKind");

[[nodiscard]] constexpr std::uint8_t traffic_class(MessageKind kind) {
  return static_cast<std::uint8_t>(kind);
}

// Likewise, obs indexes its faults_injected slots by fault_index(FaultKind)
// without depending on net/fault_plan.hpp; pin that correspondence too.
static_assert(fault_index(FaultKind::kDrop) == 0 &&
                  fault_index(FaultKind::kDuplicate) == 1 &&
                  fault_index(FaultKind::kReorder) == 2 &&
                  fault_index(FaultKind::kDelay) == 3 &&
                  fault_index(FaultKind::kPartition) == 4 &&
                  fault_index(FaultKind::kReset) == 5 &&
                  kNumFaultKinds == obs::kNumFaultKinds,
              "obs fault-kind slots must mirror FaultKind");

// Per-channel metadata for a MetricsRegistry covering `topology`.
[[nodiscard]] inline std::vector<obs::ChannelMeta> channel_meta(
    const Topology& topology) {
  std::vector<obs::ChannelMeta> meta;
  meta.reserve(topology.num_channels());
  for (const ChannelSpec& spec : topology.channels()) {
    meta.push_back(obs::ChannelMeta{spec.source.value(),
                                    spec.destination.value(),
                                    spec.is_control});
  }
  return meta;
}

// Cumulative transport statistics: the summary view of a MetricsRegistry
// that tests and the experiment tables consume.
struct TransportStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t bytes_sent = 0;  // wire-encoded sizes
  std::uint64_t app_messages_sent = 0;
  std::uint64_t halt_markers_sent = 0;
  std::uint64_t snapshot_markers_sent = 0;
  std::uint64_t predicate_markers_sent = 0;
  std::uint64_t control_messages_sent = 0;
};

[[nodiscard]] inline TransportStats transport_stats_from(
    const obs::MetricsRegistry& metrics) {
  const obs::TotalsSnapshot totals = metrics.totals();
  TransportStats stats;
  stats.messages_sent = totals.messages_sent;
  stats.messages_delivered = totals.messages_delivered;
  stats.bytes_sent = totals.bytes_sent;
  stats.app_messages_sent =
      totals.sent[traffic_class(MessageKind::kApplication)];
  stats.halt_markers_sent =
      totals.sent[traffic_class(MessageKind::kHaltMarker)];
  stats.snapshot_markers_sent =
      totals.sent[traffic_class(MessageKind::kSnapshotMarker)];
  stats.predicate_markers_sent =
      totals.sent[traffic_class(MessageKind::kPredicateMarker)];
  stats.control_messages_sent =
      totals.sent[traffic_class(MessageKind::kControl)];
  return stats;
}

}  // namespace ddbg
