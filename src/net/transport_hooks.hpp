// Observation hooks shared by the runtimes.
//
// Both the simulator and the threaded runtime report message sends and
// deliveries through a TransportObserver so the analysis layer (traces,
// statistics, in-flight accounting for the naive-halt experiment) works
// identically on either substrate.
#pragma once

#include <cstdint>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "net/message.hpp"

namespace ddbg {

class TransportObserver {
 public:
  virtual ~TransportObserver() = default;

  virtual void on_send(TimePoint when, ChannelId channel,
                       const Message& message) = 0;
  virtual void on_deliver(TimePoint when, ChannelId channel,
                          const Message& message) = 0;
};

// Cumulative transport statistics, cheap enough to collect always.
struct TransportStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t bytes_sent = 0;  // wire-encoded sizes
  std::uint64_t app_messages_sent = 0;
  std::uint64_t halt_markers_sent = 0;
  std::uint64_t snapshot_markers_sent = 0;
  std::uint64_t predicate_markers_sent = 0;
  std::uint64_t control_messages_sent = 0;

  void note_send(const Message& message) {
    ++messages_sent;
    bytes_sent += message.encoded_size();
    switch (message.kind) {
      case MessageKind::kApplication: ++app_messages_sent; break;
      case MessageKind::kHaltMarker: ++halt_markers_sent; break;
      case MessageKind::kSnapshotMarker: ++snapshot_markers_sent; break;
      case MessageKind::kPredicateMarker: ++predicate_markers_sent; break;
      case MessageKind::kControl: ++control_messages_sent; break;
    }
  }
};

}  // namespace ddbg
