// Length-prefixed framing for byte-stream transports.
//
// The wire format is a 4-byte little-endian body length followed by the
// encoded message.  Senders build frames in place (begin_frame reserves
// the prefix, end_frame patches it once the body is encoded after it), so
// one pooled buffer carries header and body with no body->frame copy.
//
// Receivers feed raw socket bytes into a FrameParser, which yields one
// complete frame body at a time.  A frame length above the sanity cap
// marks the stream corrupt and stops parsing: a flipped length byte near
// UINT32_MAX must not silently grow the receive buffer toward 4 GiB while
// the channel wedges — the caller drops the connection instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>

#include "common/serialization.hpp"

namespace ddbg {

inline constexpr std::size_t kFrameHeaderSize = 4;
// Largest frame body a receiver accepts.  Generous for debugger traffic
// (snapshots included) while catching corrupt lengths early.
inline constexpr std::uint32_t kMaxFrameLen = 64u * 1024 * 1024;

// Append a frame-header placeholder to `out`; returns its offset for
// end_frame.  The body is whatever the caller appends afterwards.
inline std::size_t begin_frame(Bytes& out) {
  const std::size_t header_at = out.size();
  out.resize(header_at + kFrameHeaderSize);
  return header_at;
}

// Patch the placeholder with the length of the body appended since
// begin_frame.
inline void end_frame(Bytes& out, std::size_t header_at) {
  const auto body_len =
      static_cast<std::uint32_t>(out.size() - header_at - kFrameHeaderSize);
  std::memcpy(out.data() + header_at, &body_len, sizeof(body_len));
}

// Incremental frame reassembly over an append-only byte stream.  Consumed
// bytes are compacted away lazily (only when the parser runs dry), so a
// burst of frames in one recv is parsed without shifting the buffer once
// per frame.
class FrameParser {
 public:
  explicit FrameParser(std::uint32_t max_frame_len = kMaxFrameLen)
      : max_frame_len_(max_frame_len) {}

  void append(std::span<const std::uint8_t> data) {
    buffer_.insert(buffer_.end(), data.begin(), data.end());
  }

  // The next complete frame body, or nullopt when more bytes are needed or
  // the stream is corrupt.  The span points into the parser's buffer and is
  // invalidated by the next append() or next() call.
  [[nodiscard]] std::optional<std::span<const std::uint8_t>> next() {
    if (corrupt_) return std::nullopt;
    if (buffer_.size() - offset_ < kFrameHeaderSize) {
      compact();
      return std::nullopt;
    }
    std::uint32_t body_len = 0;
    std::memcpy(&body_len, buffer_.data() + offset_, sizeof(body_len));
    if (body_len > max_frame_len_) {
      corrupt_ = true;
      rejected_frame_len_ = body_len;
      return std::nullopt;
    }
    if (buffer_.size() - offset_ - kFrameHeaderSize < body_len) {
      compact();
      return std::nullopt;
    }
    const std::span<const std::uint8_t> body(
        buffer_.data() + offset_ + kFrameHeaderSize, body_len);
    offset_ += kFrameHeaderSize + body_len;
    return body;
  }

  // Corrupt streams stay corrupt: the transport must drop the connection.
  [[nodiscard]] bool corrupt() const { return corrupt_; }
  [[nodiscard]] std::uint32_t rejected_frame_len() const {
    return rejected_frame_len_;
  }
  [[nodiscard]] std::size_t buffered_bytes() const {
    return buffer_.size() - offset_;
  }

 private:
  void compact() {
    if (offset_ == 0) return;
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(offset_));
    offset_ = 0;
  }

  std::uint32_t max_frame_len_;
  Bytes buffer_;
  std::size_t offset_ = 0;
  bool corrupt_ = false;
  std::uint32_t rejected_frame_len_ = 0;
};

}  // namespace ddbg
