#include "net/fault_plan.hpp"

#include <cstdlib>
#include <cstring>

#include "common/logging.hpp"

namespace ddbg {

namespace {

// Independent mixing constants for the data and ack fault streams, so the
// ack adversary is uncorrelated with the data adversary on the same
// channel/attempt pair.
constexpr std::uint64_t kDataStream = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kAckStream = 0xc2b2ae3d27d4eb4fULL;

[[nodiscard]] Rng attempt_rng(std::uint64_t seed, std::uint32_t channel,
                              std::uint64_t attempt, std::uint64_t stream) {
  return Rng(seed ^ (static_cast<std::uint64_t>(channel) + 1) * stream ^
             (attempt + 1) * 0xd6e8feb86659fd93ULL);
}

[[nodiscard]] Result<double> parse_probability(const std::string& value) {
  char* end = nullptr;
  const double p = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
    return Error(ErrorCode::kParseError, "fault plan: bad probability '" + value + "'");
  }
  return p;
}

[[nodiscard]] Result<Duration> parse_duration(const std::string& value) {
  char* end = nullptr;
  const double n = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || n < 0.0) {
    return Error(ErrorCode::kParseError, "fault plan: bad duration '" + value + "'");
  }
  const std::string unit(end);
  double ns = 0.0;
  if (unit.empty() || unit == "ms") {
    ns = n * 1e6;
  } else if (unit == "ns") {
    ns = n;
  } else if (unit == "us") {
    ns = n * 1e3;
  } else if (unit == "s") {
    ns = n * 1e9;
  } else {
    return Error(ErrorCode::kParseError, "fault plan: bad duration unit '" + unit + "'");
  }
  return Duration{static_cast<std::int64_t>(ns)};
}

}  // namespace

void FaultPlan::set_channel(ChannelId channel, FaultSpec spec) {
  for (auto& [id, existing] : overrides_) {
    if (id == channel.value()) {
      existing = spec;
      return;
    }
  }
  overrides_.emplace_back(channel.value(), spec);
}

const FaultSpec& FaultPlan::spec_for(ChannelId channel) const {
  for (const auto& [id, spec] : overrides_) {
    if (id == channel.value()) return spec;
  }
  return default_spec_;
}

FaultDecision FaultPlan::decide(ChannelId channel,
                                std::uint64_t attempt) const {
  const FaultSpec& spec = spec_for(channel);
  if (attempt >= spec.partition_from && attempt < spec.partition_until) {
    return FaultDecision{FaultKind::kPartition, Duration{0}};
  }
  Rng rng = attempt_rng(seed_, channel.value(), attempt, kDataStream);
  double u = rng.next_double();
  if (u < spec.drop) return FaultDecision{FaultKind::kDrop, Duration{0}};
  u -= spec.drop;
  if (u < spec.duplicate) {
    return FaultDecision{FaultKind::kDuplicate, Duration{0}};
  }
  u -= spec.duplicate;
  if (u < spec.reorder) {
    return FaultDecision{FaultKind::kReorder, spec.reorder_delay};
  }
  u -= spec.reorder;
  if (u < spec.delay) {
    return FaultDecision{FaultKind::kDelay, spec.extra_delay};
  }
  u -= spec.delay;
  if (u < spec.reset) return FaultDecision{FaultKind::kReset, Duration{0}};
  return FaultDecision{};
}

FaultDecision FaultPlan::decide_ack(ChannelId channel,
                                    std::uint64_t attempt) const {
  const FaultSpec& spec = spec_for(channel);
  Rng rng = attempt_rng(seed_, channel.value(), attempt, kAckStream);
  double u = rng.next_double();
  if (u < spec.drop) return FaultDecision{FaultKind::kDrop, Duration{0}};
  u -= spec.drop;
  if (u < spec.delay) {
    return FaultDecision{FaultKind::kDelay, spec.extra_delay};
  }
  return FaultDecision{};
}

Result<FaultPlan> FaultPlan::parse(const std::string& text,
                                   std::uint64_t seed) {
  FaultSpec spec;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return Error(ErrorCode::kParseError, "fault plan: expected key=value, got '" + item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "drop" || key == "dup" || key == "duplicate" ||
        key == "reorder" || key == "delay" || key == "reset") {
      auto p = parse_probability(value);
      if (!p.ok()) return p.error();
      if (key == "drop") spec.drop = p.value();
      else if (key == "dup" || key == "duplicate") spec.duplicate = p.value();
      else if (key == "reorder") spec.reorder = p.value();
      else if (key == "delay") spec.delay = p.value();
      else spec.reset = p.value();
    } else if (key == "reorder_delay" || key == "extra_delay") {
      auto d = parse_duration(value);
      if (!d.ok()) return d.error();
      if (key == "reorder_delay") spec.reorder_delay = d.value();
      else spec.extra_delay = d.value();
    } else if (key == "partition") {
      const std::size_t dots = value.find("..");
      char* end = nullptr;
      if (dots == std::string::npos) {
        return Error(ErrorCode::kParseError, "fault plan: partition wants from..until, got '" + value +
                     "'");
      }
      spec.partition_from = std::strtoull(value.c_str(), &end, 10);
      spec.partition_until =
          std::strtoull(value.c_str() + dots + 2, &end, 10);
      if (spec.partition_until < spec.partition_from) {
        return Error(ErrorCode::kParseError, "fault plan: partition window ends before it starts");
      }
    } else {
      return Error(ErrorCode::kParseError, "fault plan: unknown key '" + key + "'");
    }
  }
  const double total =
      spec.drop + spec.duplicate + spec.reorder + spec.delay + spec.reset;
  if (total > 1.0) {
    return Error(ErrorCode::kParseError, "fault plan: probabilities sum to > 1");
  }
  return FaultPlan(spec, seed);
}

std::shared_ptr<FaultPlan> FaultPlan::from_env() {
  const char* plan_text = std::getenv("DDBG_FAULT_PLAN");
  if (plan_text == nullptr || *plan_text == '\0') return nullptr;
  std::uint64_t seed = 1;
  if (const char* seed_text = std::getenv("DDBG_FAULT_SEED")) {
    seed = std::strtoull(seed_text, nullptr, 10);
  }
  auto plan = parse(plan_text, seed);
  if (!plan.ok()) {
    DDBG_ERROR() << "DDBG_FAULT_PLAN rejected: " << plan.error().to_string();
    return nullptr;
  }
  return std::make_shared<FaultPlan>(std::move(plan).value());
}

}  // namespace ddbg
