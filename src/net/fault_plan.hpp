// Deterministic per-channel fault injection.
//
// The paper's algorithms (halting waves, snapshot recording, linked-
// predicate detection) are proved correct under section 2.1's channel
// axioms: reliable, FIFO, unbounded.  A real transport violates all three
// — frames drop, peers reset, kernels reorder across reconnects.  The
// FaultPlan is the adversary: it decides, deterministically from a seed,
// which transmission attempts on which channels are dropped, duplicated,
// reordered, delayed, partitioned away or met with a connection reset.
// The reliability layer (net/reliable.hpp) must then re-establish the
// axioms on top; the chaos tests assert the algorithms cannot tell the
// difference.
//
// Decisions are a pure function of (seed, channel, attempt index), the
// same stateless-stream trick the simulator uses for latency: two runs
// with the same seed and plan inject exactly the same faults, so every
// chaos failure reproduces.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"

namespace ddbg {

// Kinds of injected faults.  Order mirrors obs::kFaultKindNames; the
// static_assert in net/transport_hooks.hpp pins the correspondence.
enum class FaultKind : std::uint8_t {
  kNone = 0,
  kDrop = 1,       // frame vanishes
  kDuplicate = 2,  // frame arrives twice
  kReorder = 3,    // frame held back past later traffic
  kDelay = 4,      // frame arrives late (FIFO order may still break)
  kPartition = 5,  // sustained outage window: every attempt inside drops
  kReset = 6,      // connection torn down; transport must reconnect+resync
};
inline constexpr std::size_t kNumFaultKinds = 6;  // excluding kNone

[[nodiscard]] constexpr const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kReset: return "reset";
  }
  return "?";
}

// Counter slot for a non-kNone fault kind (obs::TransportSnapshot index).
[[nodiscard]] constexpr std::size_t fault_index(FaultKind kind) {
  return static_cast<std::size_t>(kind) - 1;
}

// Per-channel fault probabilities and parameters.  Probabilities are
// per-transmission-attempt and mutually exclusive (at most one fault per
// attempt); they must sum to <= 1.
struct FaultSpec {
  double drop = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double delay = 0.0;
  double reset = 0.0;
  // Extra in-flight time for reorder faults: long enough that later
  // attempts overtake the held frame.
  Duration reorder_delay = Duration::millis(8);
  // Extra in-flight time for delay faults.
  Duration extra_delay = Duration::millis(3);
  // Attempts with per-channel attempt index in [partition_from,
  // partition_until) are dropped as kPartition faults — a sustained
  // outage the retransmit backoff has to ride out.  Empty when equal.
  std::uint64_t partition_from = 0;
  std::uint64_t partition_until = 0;

  [[nodiscard]] bool any() const {
    return drop > 0.0 || duplicate > 0.0 || reorder > 0.0 || delay > 0.0 ||
           reset > 0.0 || partition_until > partition_from;
  }
};

// The decision for one transmission attempt.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  Duration extra_delay{0};
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(FaultSpec default_spec, std::uint64_t seed = 1)
      : default_spec_(default_spec), seed_(seed) {}

  // Override the spec for one channel (e.g. to partition a single edge).
  void set_channel(ChannelId channel, FaultSpec spec);

  // The fault (if any) for transmission attempt `attempt` on `channel`.
  // Attempts are counted per channel by the caller, retransmissions
  // included — retransmitted frames face the same adversary.
  [[nodiscard]] FaultDecision decide(ChannelId channel,
                                     std::uint64_t attempt) const;
  // Same, for the reverse (ack) direction.  Only drop and delay apply:
  // acks are transport-internal, so duplication/reorder of an ack is
  // indistinguishable from a benign re-ack.
  [[nodiscard]] FaultDecision decide_ack(ChannelId channel,
                                         std::uint64_t attempt) const;

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] const FaultSpec& spec_for(ChannelId channel) const;

  // Parse a plan spec string:
  //   "drop=0.05,dup=0.02,reorder=0.03,delay=0.05,reset=0.001,
  //    partition=200..260,reorder_delay=8ms,extra_delay=3ms"
  // Keys may appear in any order; unknown keys are errors.  Durations
  // accept ns/us/ms/s suffixes (default ms).
  [[nodiscard]] static Result<FaultPlan> parse(const std::string& spec,
                                               std::uint64_t seed);

  // Plan described by $DDBG_FAULT_PLAN with seed $DDBG_FAULT_SEED
  // (default 1), or nullptr when DDBG_FAULT_PLAN is unset/empty.  A
  // malformed plan is an error worth failing loudly on: returns nullptr
  // after logging, so a typo'd chaos run does not silently run fault-free
  // with its chaos counters all zero (the validator invariants catch it).
  [[nodiscard]] static std::shared_ptr<FaultPlan> from_env();

 private:
  FaultSpec default_spec_;
  std::vector<std::pair<std::uint32_t, FaultSpec>> overrides_;
  std::uint64_t seed_ = 1;
};

}  // namespace ddbg
