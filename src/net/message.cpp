#include "net/message.hpp"

#include <sstream>

namespace ddbg {

namespace {
constexpr std::uint8_t kHasHalt = 1u << 0;
constexpr std::uint8_t kHasSnapshot = 1u << 1;
constexpr std::uint8_t kHasPredicate = 1u << 2;
constexpr std::uint8_t kHasVClock = 1u << 3;
}  // namespace

void Message::encode(ByteWriter& writer) const {
  writer.u8(static_cast<std::uint8_t>(kind));
  writer.u64(message_id);
  writer.varint(lamport);

  std::uint8_t flags = 0;
  if (halt) flags |= kHasHalt;
  if (snapshot) flags |= kHasSnapshot;
  if (predicate) flags |= kHasPredicate;
  if (!vclock.empty()) flags |= kHasVClock;
  writer.u8(flags);

  writer.bytes(payload);
  if (!vclock.empty()) vclock.encode(writer);
  if (halt) {
    writer.varint(halt->halt_id.value());
    writer.varint(halt->halt_path.size());
    for (const ProcessId p : halt->halt_path) writer.varint(p.value());
  }
  if (snapshot) writer.varint(snapshot->snapshot_id);
  if (predicate) {
    writer.varint(predicate->breakpoint.value());
    writer.varint(predicate->stage_index);
    writer.u8(predicate->monitor ? 1 : 0);
    writer.bytes(predicate->encoded_predicate);
  }
}

Result<Message> Message::decode(ByteReader& reader) {
  Message m;
  auto kind = reader.u8();
  if (!kind.ok()) return kind.error();
  if (kind.value() > static_cast<std::uint8_t>(MessageKind::kControl)) {
    return Error(ErrorCode::kParseError, "unknown message kind");
  }
  m.kind = static_cast<MessageKind>(kind.value());

  auto id = reader.u64();
  if (!id.ok()) return id.error();
  m.message_id = id.value();

  auto lamport = reader.varint();
  if (!lamport.ok()) return lamport.error();
  m.lamport = lamport.value();

  auto flags = reader.u8();
  if (!flags.ok()) return flags.error();

  auto payload = reader.bytes();
  if (!payload.ok()) return payload.error();
  m.payload = std::move(payload).value();

  if (flags.value() & kHasVClock) {
    auto vc = VectorClock::decode(reader);
    if (!vc.ok()) return vc.error();
    m.vclock = std::move(vc).value();
  }
  if (flags.value() & kHasHalt) {
    auto halt_id = reader.varint();
    if (!halt_id.ok()) return halt_id.error();
    auto path_len = reader.count();
    if (!path_len.ok()) return path_len.error();
    HaltMarkerData data;
    data.halt_id = HaltId(halt_id.value());
    data.halt_path.reserve(path_len.value());
    for (std::uint64_t i = 0; i < path_len.value(); ++i) {
      auto p = reader.varint();
      if (!p.ok()) return p.error();
      data.halt_path.push_back(ProcessId(static_cast<std::uint32_t>(p.value())));
    }
    m.halt = std::move(data);
  }
  if (flags.value() & kHasSnapshot) {
    auto sid = reader.varint();
    if (!sid.ok()) return sid.error();
    m.snapshot = SnapshotMarkerData{sid.value()};
  }
  if (flags.value() & kHasPredicate) {
    auto bp = reader.varint();
    if (!bp.ok()) return bp.error();
    auto stage = reader.varint();
    if (!stage.ok()) return stage.error();
    auto monitor = reader.u8();
    if (!monitor.ok()) return monitor.error();
    auto lp = reader.bytes();
    if (!lp.ok()) return lp.error();
    m.predicate = PredicateMarkerData{
        BreakpointId(static_cast<std::uint32_t>(bp.value())),
        std::move(lp).value(), static_cast<std::uint32_t>(stage.value()),
        monitor.value() != 0};
  }
  return m;
}

std::size_t Message::encoded_size() const {
  ByteWriter writer;
  encode(writer);
  return writer.size();
}

std::string Message::describe() const {
  std::ostringstream out;
  out << to_string(kind) << "#" << message_id;
  if (halt) {
    out << "{halt_id=" << halt->halt_id.value() << ", path=[";
    for (std::size_t i = 0; i < halt->halt_path.size(); ++i) {
      if (i != 0) out << ',';
      out << to_string(halt->halt_path[i]);
    }
    out << "]}";
  }
  if (snapshot) out << "{snapshot_id=" << snapshot->snapshot_id << "}";
  if (predicate) {
    out << "{bp=" << predicate->breakpoint.value()
        << ", stage=" << predicate->stage_index << "}";
  }
  if (!payload.empty()) out << " payload=" << payload.size() << "B";
  return out.str();
}

}  // namespace ddbg
