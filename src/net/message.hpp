// The messages that travel over channels.
//
// Section 3.6 of the paper: "we can append to every message originated by
// the program some kind of tag so that each process can distinguish the
// genuine messages from halt markers and predicate markers which are
// introduced by the debugging system."  MessageKind is that tag.
//
// Application messages additionally piggyback debug instrumentation (a
// vector clock and a Lamport timestamp) added by the debug shim; the
// instrumentation is *not* consulted by the halting algorithm — it exists so
// the analysis layer can verify consistency and classify event orderings.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "clock/vector_clock.hpp"
#include "common/ids.hpp"
#include "common/serialization.hpp"

namespace ddbg {

enum class MessageKind : std::uint8_t {
  kApplication = 0,      // genuine program message
  kHaltMarker = 1,       // Halting Algorithm marker (section 2.2)
  kSnapshotMarker = 2,   // plain C&L recording marker (section 2.1)
  kPredicateMarker = 3,  // Linked-Predicate detection marker (section 3.6)
  kControl = 4,          // debugger <-> process command traffic (section 2.2.3)
};

[[nodiscard]] constexpr const char* to_string(MessageKind kind) {
  switch (kind) {
    case MessageKind::kApplication: return "app";
    case MessageKind::kHaltMarker: return "halt_marker";
    case MessageKind::kSnapshotMarker: return "snapshot_marker";
    case MessageKind::kPredicateMarker: return "predicate_marker";
    case MessageKind::kControl: return "control";
  }
  return "?";
}

// Payload of a halt marker.  halt_id distinguishes halting waves; halt_path
// is the section-2.2.4 extension: each process appends its name before
// forwarding, so a received marker describes which processes already halted.
struct HaltMarkerData {
  HaltId halt_id;
  std::vector<ProcessId> halt_path;
};

// Payload of a C&L snapshot marker (monitor-only recording).
struct SnapshotMarkerData {
  std::uint64_t snapshot_id = 0;
};

// Payload of a predicate marker: the remaining Linked Predicate, encoded by
// core/predicate.cpp.  Kept as opaque bytes here so the network layer does
// not depend on the predicate machinery.
struct PredicateMarkerData {
  BreakpointId breakpoint;
  Bytes encoded_predicate;
  // Number of LP stages already consumed, for tracing/benchmarks.
  std::uint32_t stage_index = 0;
  // Monitor-mode chains record an abstract event instead of halting.
  bool monitor = false;
};

struct Message {
  MessageKind kind = MessageKind::kApplication;

  // Unique per run; assigned at send time by the transport.  Used by the
  // analysis layer to pair sends with receives.
  std::uint64_t message_id = 0;

  // Application payload or encoded control command.
  Bytes payload;

  // Debug instrumentation piggybacked on application messages by the shim.
  VectorClock vclock;
  std::uint64_t lamport = 0;

  std::optional<HaltMarkerData> halt;
  std::optional<SnapshotMarkerData> snapshot;
  std::optional<PredicateMarkerData> predicate;

  [[nodiscard]] static Message application(Bytes payload) {
    Message m;
    m.kind = MessageKind::kApplication;
    m.payload = std::move(payload);
    return m;
  }

  [[nodiscard]] static Message halt_marker(HaltId id,
                                           std::vector<ProcessId> path) {
    Message m;
    m.kind = MessageKind::kHaltMarker;
    m.halt = HaltMarkerData{id, std::move(path)};
    return m;
  }

  [[nodiscard]] static Message snapshot_marker(std::uint64_t snapshot_id) {
    Message m;
    m.kind = MessageKind::kSnapshotMarker;
    m.snapshot = SnapshotMarkerData{snapshot_id};
    return m;
  }

  [[nodiscard]] static Message predicate_marker(BreakpointId bp, Bytes lp,
                                                std::uint32_t stage_index,
                                                bool monitor = false) {
    Message m;
    m.kind = MessageKind::kPredicateMarker;
    m.predicate = PredicateMarkerData{bp, std::move(lp), stage_index, monitor};
    return m;
  }

  [[nodiscard]] static Message control(Bytes command) {
    Message m;
    m.kind = MessageKind::kControl;
    m.payload = std::move(command);
    return m;
  }

  // Wire encoding.  In-memory transports hand the struct across directly;
  // encode/decode exist for wire realism (size accounting in the overhead
  // experiments) and for any byte-oriented transport.
  void encode(ByteWriter& writer) const;
  [[nodiscard]] static Result<Message> decode(ByteReader& reader);
  [[nodiscard]] std::size_t encoded_size() const;

  [[nodiscard]] std::string describe() const;
};

}  // namespace ddbg
