// The process model: reactive state machines driven by message deliveries
// and timers.  One Process implementation runs unchanged on both the
// deterministic simulator (src/sim) and the multithreaded runtime
// (src/runtime); the ProcessContext is the runtime's face toward the
// process.
//
// Handlers run one at a time per process (an "event" in the paper's 5-tuple
// sense <p, s, ss, M, c> is exactly one handler invocation), so Process
// implementations need no internal locking.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/serialization.hpp"
#include "common/time.hpp"
#include "net/message.hpp"
#include "net/topology.hpp"

namespace ddbg {

namespace obs {
class MetricsRegistry;
}  // namespace obs

class ProcessContext {
 public:
  virtual ~ProcessContext() = default;

  [[nodiscard]] virtual ProcessId self() const = 0;
  [[nodiscard]] virtual TimePoint now() const = 0;
  [[nodiscard]] virtual const Topology& topology() const = 0;

  // The hosting runtime's metrics registry, for control-plane latency
  // tracing (debug shim / debugger process).  May be null on contexts that
  // do not carry one (e.g. bare test fixtures).
  [[nodiscard]] virtual obs::MetricsRegistry* metrics() const {
    return nullptr;
  }

  // Enqueue a message on an outgoing channel.  The channel must be one of
  // topology().out_channels(self()).  Channels are reliable, FIFO and
  // unbounded (section 2.1's model), so send never fails or blocks.
  virtual void send(ChannelId channel, Message message) = 0;

  // One-shot timer; fires on_timer after `delay`.  Returns an id that can be
  // cancelled.  Timers give processes autonomous (spontaneous) behaviour.
  virtual TimerId set_timer(Duration delay) = 0;
  virtual void cancel_timer(TimerId timer) = 0;

  // Deterministic per-process randomness.
  [[nodiscard]] virtual Rng& rng() = 0;

  // Run `fn` at a point where effects from different processes are totally
  // ordered.  On the sequential simulator and the threaded runtimes that is
  // right now (handlers already interleave in a well-defined order, or the
  // caller synchronizes); the parallel simulator defers `fn` to the commit
  // of the current time window, where staged effects replay in the exact
  // order the sequential engine would have produced them.  The debug shim
  // routes its externally observable callbacks (trace sink, halt/arm
  // notifications) through this so analysis traces come out byte-identical
  // in every execution mode.
  virtual void run_ordered(std::function<void()> fn) { fn(); }

  // Marks this process as finished with its own work.  A stopped process
  // still receives messages (so markers keep flowing) but schedules no more
  // timers; the runtimes use the flag for quiescence detection.
  virtual void stop_self() = 0;
};

class Process {
 public:
  virtual ~Process() = default;

  virtual void on_start(ProcessContext& /*ctx*/) {}
  virtual void on_message(ProcessContext& ctx, ChannelId in,
                          Message message) = 0;
  virtual void on_timer(ProcessContext& /*ctx*/, TimerId /*timer*/) {}

  // Snapshot of the process's application state, captured by the debug shim
  // at halt/record time (the `s` of the paper's event tuples).  The bytes
  // are opaque to the library; equality of snapshots is byte equality.
  [[nodiscard]] virtual Bytes snapshot_state() const { return {}; }

  // Reinitialize from a snapshot_state() encoding (time-travel restore from
  // a halted global state).  Called before on_start; a restored process's
  // on_start must resume from the restored state rather than initialize.
  // Returns false if this process does not support restoration.
  virtual bool restore_state(const Bytes& /*state*/) { return false; }

  // Human-readable rendering of the current state, for the debugger UI.
  [[nodiscard]] virtual std::string describe_state() const { return ""; }
};

using ProcessPtr = std::unique_ptr<Process>;

}  // namespace ddbg
