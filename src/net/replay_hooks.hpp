// Recording hooks for the record/replay subsystem (src/replay).
//
// The threaded and TCP runtimes are nondeterministic: thread scheduling and
// the kernel pick the cross-channel interleaving, the fault adversary rolls
// dice per transmission attempt.  Deterministic re-execution needs exactly
// the inputs a process behavior is a function of — the per-channel order in
// which application messages reached each user process, the order its
// timers fired, and the halt cuts the debugger took — plus annotations for
// the transport-level events replay re-derives rather than re-injects
// (fault draws, reconnects, resyncs; the reliability layer hides those from
// the user boundary, so they are diagnostic context, not replay inputs).
//
// ReplaySink is the abstract recording surface.  It lives here, below every
// substrate, so Runtime/TcpRuntime/DebugShim/DebuggerProcess can record
// without depending on src/replay; the concrete ReplayRecorder (writing the
// compact binary log) implements it at the top of the stack.  A null sink
// is the record-off fast path — callers guard every hook with a pointer
// check and touch nothing else, so unrecorded runs stay byte-identical.
#pragma once

#include <cstdint>
#include <span>

#include "common/ids.hpp"
#include "common/serialization.hpp"

namespace ddbg {

// Annotation kinds beyond the fault kinds.  Slots 0..5 mirror
// fault_index(FaultKind) (net/fault_plan.hpp / obs::kFaultKindNames).
inline constexpr std::uint8_t kReplayAnnotationReconnect = 6;
inline constexpr std::uint8_t kReplayAnnotationResync = 7;
inline constexpr std::uint8_t kNumReplayAnnotationKinds = 8;

class ReplaySink {
 public:
  virtual ~ReplaySink() = default;

  // An application message crossed the user-process boundary: the shim is
  // about to hand the `ordinal`-th delivery on channel `in` to process `p`.
  // The payload itself is not logged (replay re-derives it from re-executed
  // sends); the hash pins divergence detection.
  virtual void record_delivery(ProcessId p, ChannelId in,
                               std::uint64_t ordinal,
                               std::uint64_t payload_hash,
                               std::uint64_t payload_bytes) = 0;

  // Process `p` created its `ordinal`-th timer; `timer` is the id the
  // hosting substrate returned (replay hands the same id back so process
  // state that stores timer ids reproduces byte-for-byte).
  virtual void record_timer_set(ProcessId p, std::uint64_t ordinal,
                                TimerId timer) = 0;

  // The timer created as `p`'s `ordinal`-th fired (uncancelled).
  virtual void record_timer_fire(ProcessId p, std::uint64_t ordinal) = 0;

  // A halt wave completed with the assembled S_h; `encoded_state` is the
  // varint-count + ProcessSnapshot wire encoding (core/global_state.hpp).
  // Everything logged before this record is a pre-cut event — processes
  // stay halted (and log nothing) until the resume that follows assembly.
  virtual void record_halt_cut(std::uint64_t wave, Bytes encoded_state) = 0;

  // Transport-level nondeterminism that replay re-derives: a fault draw
  // (kind 0..5), a reconnect (6) or a resync replay (7) on `channel`;
  // `detail` carries the attempt index / frames replayed.
  virtual void record_annotation(std::uint8_t kind, ChannelId channel,
                                 std::uint64_t detail) = 0;
};

// FNV-1a over payload bytes: the divergence-detection hash recorded with
// every delivery.  Stable, seedless, and cheap enough for the record path.
[[nodiscard]] inline std::uint64_t replay_payload_hash(
    std::span<const std::uint8_t> payload) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::uint8_t b : payload) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace ddbg
