// TcpRuntime: the distributed deployment substrate.
//
// One OS thread per process.  Unlike Runtime's in-memory inboxes, traffic
// crosses real TCP connections over loopback — but connections are
// multiplexed: all channels between an unordered process pair share one
// socket, and every frame carries the 4-byte channel id it belongs to
// right after the length prefix.  A tree(N,k) tier topology therefore
// costs O(adjacent pairs) fds, not O(channels).
//
// Each worker runs a level-triggered epoll reactor: fds are registered
// once and interest sets are mutated on state change (EPOLLOUT is armed
// only while a pair's out-queue is blocked on a full socket buffer, and a
// dead fd is deleted from the set, never re-polled).  Writes are
// nonblocking gathered sendmsg calls under an adaptive byte budget that
// grows while backpressure persists; EAGAIN and partial writes park the
// queue on EPOLLOUT instead of spinning or blocking the worker.
//
// TCP still gives exactly the paper's channel model per channel: reliable,
// FIFO, unbounded (one stream carries each pair's channels in order, so
// per-channel FIFO is preserved).  Process implementations, debug shims
// and the debugger process run on this runtime unchanged; tests drive a
// full halting wave across sockets.  Single-host by construction
// (loopback), but nothing in the protocol assumes it — the address table
// is the only thing to change.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/time.hpp"
#include "net/fault_plan.hpp"
#include "net/process.hpp"
#include "net/reliable.hpp"
#include "net/replay_hooks.hpp"
#include "net/topology.hpp"
#include "net/transport_hooks.hpp"

namespace ddbg {

struct TcpRuntimeConfig {
  std::uint64_t seed = 1;
  // Fault adversary.  When set, every frame carries a reliability header
  // after its channel id (per-channel sequence numbers out, cumulative
  // acks back on the same pair socket), sends are held in a retransmit
  // window until acked, and a connection reset — injected or real —
  // triggers reconnect-with-resync: the pair's dialer side re-dials the
  // acceptor's listener and both sides replay every unacked frame, with
  // receivers suppressing what they already saw.  Null (default) keeps
  // the bare-TCP fast path untouched.
  std::shared_ptr<FaultPlan> faults;
  ReliableConfig reliable;
  // Socket-buffer overrides applied to every pair socket; 0 keeps the
  // kernel default.  Tests set a tiny SO_SNDBUF to force EAGAIN/partial
  // writes on the nonblocking send path deterministically.
  int sndbuf_bytes = 0;
  int rcvbuf_bytes = 0;
  // Control-socket debugger sessions: when set, the debugger's worker (or
  // worker 0 without a debugger) binds a second loopback listener and the
  // reactor hands every accepted client fd to this callback.  The callee
  // must not block the reactor — SessionServer::adopt only registers the
  // fd and spawns a service thread, which is the intended receiver.
  std::function<void(int fd)> on_control_accept;
  // Record/replay sink (src/replay).  The reactor appends transport-level
  // annotations — fault draws, reconnects, resync replays — as diagnostic
  // provenance; the user-boundary inputs are recorded by the DebugShims.
  // Null (default) leaves every path untouched.
  std::shared_ptr<ReplaySink> replay;
};

class TcpRuntime {
 public:
  TcpRuntime(Topology topology, std::vector<ProcessPtr> processes,
             TcpRuntimeConfig config = {});
  ~TcpRuntime();

  TcpRuntime(const TcpRuntime&) = delete;
  TcpRuntime& operator=(const TcpRuntime&) = delete;

  // Bind/listen/connect one socket per host pair, then launch the process
  // threads.  Returns false (with everything torn down) if setup fails.
  bool start();
  void shutdown();

  // Post a closure to run on `target`'s thread, in process context.
  void post(ProcessId target,
            std::function<void(ProcessContext&, Process&)> action);

  static bool wait_until(const std::function<bool()>& condition,
                         Duration timeout);

  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] Process& process(ProcessId id);
  [[nodiscard]] TransportStats stats() const {
    return transport_stats_from(metrics_);
  }
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return metrics_;
  }
  [[nodiscard]] TimePoint now() const;

  // Port of the debugger-session control listener; 0 when
  // on_control_accept is unset or start() has not run.
  [[nodiscard]] std::uint16_t control_port() const;
  // Late-bound alternative to TcpRuntimeConfig::on_control_accept for
  // embedders whose acceptor (e.g. a SessionServer) is built after the
  // runtime.  Must be called before start().
  void set_control_acceptor(std::function<void(int fd)> acceptor) {
    DDBG_ASSERT(!started_.load(), "set_control_acceptor after start");
    config_.on_control_accept = std::move(acceptor);
  }

  // Multiplexing introspection: how many TCP connections carry how many
  // channels.  The soak bench asserts data_socket_count() << num_channels.
  [[nodiscard]] std::size_t data_socket_count() const { return pairs_.size(); }
  [[nodiscard]] std::size_t max_channels_per_socket() const;

  // Fault injection for tests: half-close the sending direction of
  // `channel`'s pair socket so its destination observes EOF mid-run.
  // Subsequent sends by that side (on any channel of the pair) fail and
  // are counted like any dead-peer write.
  void half_close_channel(ChannelId channel);
  // Total reactor loop iterations across all workers — a diagnostic for
  // busy-spin regressions (a dead fd left registered would make this grow
  // without bound while the runtime idles).  Not part of the metrics JSON.
  [[nodiscard]] std::uint64_t poll_iterations() const;

 private:
  friend class TcpProcessContext;
  class Worker;

  // An unordered process pair with at least one channel; exactly one TCP
  // connection realizes it.  Side 0 is a's end (a <= b; a dials at startup
  // and re-dials after a loss), side 1 is b's end (accepted).
  struct HostPair {
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::uint32_t num_channels = 0;
  };

  void do_send(ProcessId sender, ChannelId channel, Message message);

  Topology topology_;
  TcpRuntimeConfig config_;
  obs::MetricsRegistry metrics_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<HostPair> pairs_;
  std::vector<std::uint32_t> channel_pair_;  // ChannelId -> pair index
  std::vector<std::vector<std::uint32_t>> pairs_of_process_;
  // fd of each end of each pair connection, indexed 2 * pair + side.
  // Atomic because with reliability enabled the owning worker replaces the
  // fd on reconnect while shutdown()/half_close_channel() read it from
  // another thread.
  std::vector<std::atomic<int>> pair_fd_;
  std::atomic<std::uint64_t> next_message_id_{1};
  // Per-runtime (not static): ids restart at 1 for every instance, so runs
  // are deterministic per instance and long test suites cannot wrap.
  std::atomic<std::uint32_t> next_timer_id_{1};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace ddbg
