// TcpRuntime: the distributed deployment substrate.
//
// One OS thread per process, and — unlike Runtime's in-memory inboxes —
// every channel is a real TCP connection over loopback: messages are
// wire-encoded (net/message.hpp), framed with a 4-byte length prefix,
// written by the sender's thread and read by the receiver's poll loop.
// TCP gives exactly the paper's channel model: reliable, FIFO, unbounded
// (in the kernel's and our userspace buffers).
//
// Process implementations, debug shims and the debugger process run on
// this runtime unchanged; tests drive a full halting wave across sockets.
// Single-host by construction (loopback), but nothing in the protocol
// assumes it — the address table is the only thing to change.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "net/fault_plan.hpp"
#include "net/process.hpp"
#include "net/reliable.hpp"
#include "net/topology.hpp"
#include "net/transport_hooks.hpp"

namespace ddbg {

struct TcpRuntimeConfig {
  std::uint64_t seed = 1;
  // Fault adversary.  When set, every frame carries a reliability header
  // (per-channel sequence numbers out, cumulative acks back on the same
  // socket), sends are held in a retransmit window until acked, and a
  // connection reset — injected or real — triggers reconnect-with-resync:
  // the source re-dials the destination's listener and replays every
  // unacked frame, with the receiver suppressing what it already saw.
  // Null (default) keeps the bare-TCP fast path untouched.
  std::shared_ptr<FaultPlan> faults;
  ReliableConfig reliable;
};

class TcpRuntime {
 public:
  TcpRuntime(Topology topology, std::vector<ProcessPtr> processes,
             TcpRuntimeConfig config = {});
  ~TcpRuntime();

  TcpRuntime(const TcpRuntime&) = delete;
  TcpRuntime& operator=(const TcpRuntime&) = delete;

  // Bind/listen/connect all channels, then launch the process threads.
  // Returns false (with everything torn down) if socket setup fails.
  bool start();
  void shutdown();

  // Post a closure to run on `target`'s thread, in process context.
  void post(ProcessId target,
            std::function<void(ProcessContext&, Process&)> action);

  static bool wait_until(const std::function<bool()>& condition,
                         Duration timeout);

  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] Process& process(ProcessId id);
  [[nodiscard]] TransportStats stats() const {
    return transport_stats_from(metrics_);
  }
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return metrics_;
  }
  [[nodiscard]] TimePoint now() const;

  // Fault injection for tests: half-close the sending side of `channel`
  // so its destination observes EOF mid-run.  Subsequent sends on the
  // channel fail (and are logged) like any dead-peer write.
  void half_close_channel(ChannelId channel);
  // Total reactor loop iterations across all workers — a diagnostic for
  // busy-spin regressions (a dead fd left in the poll set makes this grow
  // without bound while the runtime idles).  Not part of the metrics JSON.
  [[nodiscard]] std::uint64_t poll_iterations() const;

 private:
  friend class TcpProcessContext;
  class Worker;

  void do_send(ProcessId sender, ChannelId channel, Message message);

  Topology topology_;
  TcpRuntimeConfig config_;
  obs::MetricsRegistry metrics_;
  std::vector<std::unique_ptr<Worker>> workers_;
  // fd of the sending end of each channel (owned by the source's worker).
  // Atomic because with reliability enabled the source worker replaces the
  // fd on reconnect while shutdown()/half_close_channel() read it from
  // another thread.
  std::vector<std::atomic<int>> channel_fd_;
  std::atomic<std::uint64_t> next_message_id_{1};
  // Per-runtime (not static): ids restart at 1 for every instance, so runs
  // are deterministic per instance and long test suites cannot wrap.
  std::atomic<std::uint32_t> next_timer_id_{1};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace ddbg
