// Multithreaded runtime: one OS thread per process, blocking inboxes,
// immediate (in-memory) channel delivery.
//
// This runtime exists to demonstrate the algorithms under real concurrency
// and real (scheduler-induced) communication delay: handlers race across
// processes exactly as they would across machines, while each process's
// handlers stay serialized on its own thread.  Process implementations run
// unchanged on this runtime and on the deterministic simulator.
//
// Channel model: send() pushes the message into the destination process's
// inbox under a lock, so channels are reliable, unbounded and FIFO
// (section 2.1's assumptions).
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "net/fault_plan.hpp"
#include "net/process.hpp"
#include "net/reliable.hpp"
#include "net/replay_hooks.hpp"
#include "net/topology.hpp"
#include "net/transport_hooks.hpp"

namespace ddbg {

struct RuntimeConfig {
  std::uint64_t seed = 1;
  // Fault adversary.  When set, sends are staged in per-channel reliability
  // senders (owned by the sending worker's thread) and subjected to the
  // plan; receivers suppress duplicates and release in sequence order, so
  // processes still observe section 2.1's reliable FIFO channels.  Null
  // (default) keeps the direct-delivery fast path untouched.
  std::shared_ptr<FaultPlan> faults;
  ReliableConfig reliable;
  // Record/replay sink (src/replay).  The runtime appends transport-level
  // annotations — fault draws, reconnects, resync replays — as diagnostic
  // provenance; the user-boundary inputs are recorded by the DebugShims.
  // Null (default) leaves every path untouched.
  std::shared_ptr<ReplaySink> replay;
};

class Runtime {
 public:
  Runtime(Topology topology, std::vector<ProcessPtr> processes,
          RuntimeConfig config = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // Launch all process threads (calls on_start on each thread).
  void start();
  // Stop all process threads; idempotent.  Pending inbox items are dropped.
  void shutdown();

  // Post a closure to run on `target`'s thread, in process context,
  // serialized with its handlers.  The cross-thread injection point used by
  // the debugger session.
  void post(ProcessId target,
            std::function<void(ProcessContext&, Process&)> action);

  // Post a closure and wait for it to run; returns false on timeout or if
  // the runtime is shut down first.  Must not be called from a process
  // thread.
  bool call(ProcessId target,
            std::function<void(ProcessContext&, Process&)> action,
            Duration timeout);

  // Spin-poll `condition` (evaluated on the caller's thread) until it holds
  // or `timeout` elapses.
  static bool wait_until(const std::function<bool()>& condition,
                         Duration timeout);

  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] Process& process(ProcessId id);
  [[nodiscard]] TransportStats stats() const {
    return transport_stats_from(metrics_);
  }
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return metrics_;
  }
  [[nodiscard]] TimePoint now() const;

 private:
  friend class ThreadProcessContext;
  class Worker;

  void do_send(ProcessId sender, ChannelId channel, Message message);

  Topology topology_;
  RuntimeConfig config_;
  obs::MetricsRegistry metrics_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::uint64_t> next_message_id_{1};
  // Per-runtime (not static): ids restart at 1 for every instance, so runs
  // are deterministic per instance and long test suites cannot wrap.
  std::atomic<std::uint32_t> next_timer_id_{1};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace ddbg
