#include "runtime/tcp_runtime.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <thread>
#include <unordered_map>

#include "common/buffer_pool.hpp"
#include "common/logging.hpp"
#include "common/serialization.hpp"
#include "net/framing.hpp"

namespace ddbg {

namespace {

using SteadyClock = std::chrono::steady_clock;

// Frames batched into one sendmsg call; small because a handler rarely
// emits more, and each iovec points at a whole frame (header included).
constexpr std::size_t kMaxWriteBatch = 16;

// Write the whole buffer, retrying on short writes.  Loopback writes of
// debugger-sized frames essentially never block for long.  MSG_NOSIGNAL:
// during shutdown the peer's worker may already have closed its end, and a
// plain write would raise SIGPIPE and kill the process instead of failing
// the send.
bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n =
        ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

// Gathered write of `count` iovecs totalling `total` bytes, retrying on
// short writes by advancing the iovec array in place.  sendmsg rather than
// writev so the write keeps MSG_NOSIGNAL (writev has no flags parameter,
// and a dead peer must fail the send, not SIGPIPE the process).
bool write_all_iov(int fd, iovec* iov, std::size_t count, std::size_t total) {
  std::size_t written = 0;
  while (written < total) {
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = count;
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
    std::size_t advance = static_cast<std::size_t>(n);
    while (advance > 0 && count > 0) {
      if (advance >= iov[0].iov_len) {
        advance -= iov[0].iov_len;
        ++iov;
        --count;
      } else {
        iov[0].iov_base = static_cast<std::uint8_t*>(iov[0].iov_base) + advance;
        iov[0].iov_len -= advance;
        advance = 0;
      }
    }
  }
  return true;
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

class TcpProcessContext;

class TcpRuntime::Worker {
 public:
  Worker(TcpRuntime& runtime, ProcessId id, ProcessPtr process, Rng rng);
  ~Worker();

  bool init_sockets();           // create listener
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] int listen_fd() const { return listen_fd_; }
  // Accept all expected inbound connections and map them to channels.
  bool accept_inbound();

  void start();
  void stop_and_join();
  void request_stop();

  void push_closure(std::function<void(ProcessContext&, Process&)> action);
  TimerId add_timer(Duration delay);
  void cancel_timer(TimerId timer);

  // Encode `message` into a pooled frame and queue it for flush_sends().
  // Runs on this worker's own thread only (the sender's), like all sends.
  void stage_send(ChannelId channel, int fd, const Message& message);

  [[nodiscard]] Process& process() { return *process_; }
  [[nodiscard]] TcpRuntime& runtime() { return runtime_; }
  [[nodiscard]] ProcessId id() const { return id_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] std::uint64_t poll_iterations() const {
    return poll_iterations_.load(std::memory_order_relaxed);
  }

 private:
  void thread_main();
  void wake();
  // Returns false once nothing more will arrive on the slot's fd (peer
  // closed, error, or corrupt framing): the caller retires it.
  [[nodiscard]] bool drain_fd(std::size_t slot);
  void parse_frames(std::size_t slot);
  void fire_due_timers();
  void flush_sends();
  [[nodiscard]] int poll_timeout_ms();

  TcpRuntime& runtime_;
  ProcessId id_;
  ProcessPtr process_;
  Rng rng_;
  std::unique_ptr<TcpProcessContext> context_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  int pipe_read_ = -1;
  int pipe_write_ = -1;

  // Inbound connections, parallel arrays: fd, channel, frame reassembly.
  std::vector<int> in_fds_;
  std::vector<ChannelId> in_channels_;
  std::vector<FrameParser> in_parsers_;

  // Outbound frames staged by this worker's handlers since the last flush.
  // Thread-local by construction (only this worker's thread stages and
  // flushes), so no lock.
  struct PendingSend {
    ChannelId channel;
    int fd = -1;
    BufferPool::Lease frame;
  };
  std::vector<PendingSend> pending_sends_;
  BufferPool pool_;

  std::mutex mutex_;
  std::deque<std::function<void(ProcessContext&, Process&)>> closures_;
  std::map<std::pair<SteadyClock::time_point, std::uint32_t>, TimerId>
      timers_;
  std::unordered_map<std::uint32_t, SteadyClock::time_point> timer_deadline_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> poll_iterations_{0};

  std::thread thread_;
};

class TcpProcessContext final : public ProcessContext {
 public:
  explicit TcpProcessContext(TcpRuntime::Worker& worker) : worker_(worker) {}

  [[nodiscard]] ProcessId self() const override { return worker_.id(); }
  [[nodiscard]] TimePoint now() const override {
    return worker_.runtime().now();
  }
  [[nodiscard]] const Topology& topology() const override {
    return worker_.runtime().topology();
  }
  void send(ChannelId channel, Message message) override {
    worker_.runtime().do_send(worker_.id(), channel, std::move(message));
  }
  TimerId set_timer(Duration delay) override {
    return worker_.add_timer(delay);
  }
  void cancel_timer(TimerId timer) override { worker_.cancel_timer(timer); }
  [[nodiscard]] Rng& rng() override { return worker_.rng(); }
  [[nodiscard]] obs::MetricsRegistry* metrics() const override {
    return &worker_.runtime().metrics();
  }
  void stop_self() override {}

 private:
  TcpRuntime::Worker& worker_;
};

TcpRuntime::Worker::Worker(TcpRuntime& runtime, ProcessId id,
                           ProcessPtr process, Rng rng)
    : runtime_(runtime), id_(id), process_(std::move(process)), rng_(rng) {
  context_ = std::make_unique<TcpProcessContext>(*this);
}

TcpRuntime::Worker::~Worker() {
  stop_and_join();
  for (int& fd : in_fds_) close_fd(fd);
  close_fd(listen_fd_);
  close_fd(pipe_read_);
  close_fd(pipe_write_);
}

bool TcpRuntime::Worker::init_sockets() {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return false;
  pipe_read_ = pipe_fds[0];
  pipe_write_ = pipe_fds[1];

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return false;
  }
  if (::listen(listen_fd_, 128) != 0) return false;
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return false;
  }
  port_ = ntohs(addr.sin_port);
  return true;
}

bool TcpRuntime::Worker::accept_inbound() {
  const std::size_t expected =
      runtime_.topology().in_channels(id_).size();
  for (std::size_t i = 0; i < expected; ++i) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return false;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Hello frame: the 4-byte channel id this connection realizes.
    std::uint8_t hello[4];
    std::size_t got = 0;
    while (got < sizeof(hello)) {
      const ssize_t n = ::read(fd, hello + got, sizeof(hello) - got);
      if (n <= 0) {
        ::close(fd);
        return false;
      }
      got += static_cast<std::size_t>(n);
    }
    std::uint32_t channel_id = 0;
    std::memcpy(&channel_id, hello, sizeof(channel_id));
    in_fds_.push_back(fd);
    in_channels_.push_back(ChannelId(channel_id));
    in_parsers_.emplace_back();
  }
  return true;
}

void TcpRuntime::Worker::start() {
  thread_ = std::thread([this] { thread_main(); });
}

void TcpRuntime::Worker::request_stop() {
  stopping_.store(true);
  wake();
}

void TcpRuntime::Worker::stop_and_join() {
  request_stop();
  if (thread_.joinable()) thread_.join();
}

void TcpRuntime::Worker::wake() {
  if (pipe_write_ >= 0) {
    const std::uint8_t byte = 1;
    (void)!::write(pipe_write_, &byte, 1);
  }
}

void TcpRuntime::Worker::push_closure(
    std::function<void(ProcessContext&, Process&)> action) {
  {
    std::lock_guard<std::mutex> guard{mutex_};
    closures_.push_back(std::move(action));
  }
  wake();
}

TimerId TcpRuntime::Worker::add_timer(Duration delay) {
  const TimerId id(runtime_.next_timer_id_.fetch_add(1));
  const auto deadline =
      SteadyClock::now() + std::chrono::nanoseconds(delay.ns);
  {
    std::lock_guard<std::mutex> guard{mutex_};
    timers_.emplace(std::make_pair(deadline, id.value()), id);
    timer_deadline_.emplace(id.value(), deadline);
  }
  wake();
  return id;
}

void TcpRuntime::Worker::cancel_timer(TimerId timer) {
  std::lock_guard<std::mutex> guard{mutex_};
  const auto it = timer_deadline_.find(timer.value());
  if (it == timer_deadline_.end()) return;  // already fired or cancelled
  timers_.erase(std::make_pair(it->second, timer.value()));
  timer_deadline_.erase(it);
}

int TcpRuntime::Worker::poll_timeout_ms() {
  std::lock_guard<std::mutex> guard{mutex_};
  if (!closures_.empty()) return 0;
  if (timers_.empty()) return -1;
  const auto deadline = timers_.begin()->first.first;
  const auto now = SteadyClock::now();
  if (deadline <= now) return 0;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - now)
                      .count();
  return static_cast<int>(std::min<long long>(ms + 1, 1000));
}

void TcpRuntime::Worker::fire_due_timers() {
  while (true) {
    TimerId due;
    {
      std::lock_guard<std::mutex> guard{mutex_};
      if (timers_.empty() ||
          timers_.begin()->first.first > SteadyClock::now()) {
        return;
      }
      due = timers_.begin()->second;
      timer_deadline_.erase(due.value());
      timers_.erase(timers_.begin());
    }
    process_->on_timer(*context_, due);
  }
}

void TcpRuntime::Worker::parse_frames(std::size_t slot) {
  FrameParser& parser = in_parsers_[slot];
  std::size_t frames = 0;
  while (const auto body = parser.next()) {
    ByteReader reader(*body);
    auto message = Message::decode(reader);
    if (!message.ok()) {
      DDBG_ERROR() << "tcp: bad frame on " << to_string(in_channels_[slot])
                   << ": " << message.error().to_string();
      continue;
    }
    ++frames;
    runtime_.metrics_.on_deliver(in_channels_[slot].value(),
                                 traffic_class(message.value().kind),
                                 static_cast<std::uint32_t>(body->size()));
    process_->on_message(*context_, in_channels_[slot],
                         std::move(message).value());
  }
  if (frames > 0) runtime_.metrics_.on_deliver_batch(frames);
}

bool TcpRuntime::Worker::drain_fd(std::size_t slot) {
  FrameParser& parser = in_parsers_[slot];
  std::uint8_t chunk[4096];
  bool alive = true;
  while (true) {
    const ssize_t n =
        ::recv(in_fds_[slot], chunk, sizeof(chunk), MSG_DONTWAIT);
    if (n > 0) {
      parser.append(
          std::span<const std::uint8_t>(chunk, static_cast<std::size_t>(n)));
      runtime_.metrics_.observe_backlog(in_channels_[slot].value(),
                                        parser.buffered_bytes());
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // Peer closed (or error): nothing more will arrive on this channel.
    alive = false;
    break;
  }
  parse_frames(slot);
  if (parser.corrupt()) {
    DDBG_ERROR() << "tcp: frame length " << parser.rejected_frame_len()
                 << " exceeds cap on " << to_string(in_channels_[slot])
                 << "; dropping connection";
    alive = false;
  }
  return alive;
}

void TcpRuntime::Worker::stage_send(ChannelId channel, int fd,
                                    const Message& message) {
  BufferPool::Lease lease = pool_.acquire();
  runtime_.metrics_.on_pool_acquire(lease.reused());
  Bytes& frame = lease.bytes();
  const std::size_t header_at = begin_frame(frame);
  ByteWriter writer(frame);
  message.encode(writer);
  end_frame(frame, header_at);
  runtime_.metrics_.on_send(
      channel.value(), traffic_class(message.kind),
      static_cast<std::uint32_t>(frame.size() - kFrameHeaderSize));
  PendingSend pending;
  pending.channel = channel;
  pending.fd = fd;
  pending.frame = std::move(lease);
  pending_sends_.push_back(std::move(pending));
}

void TcpRuntime::Worker::flush_sends() {
  std::size_t i = 0;
  while (i < pending_sends_.size()) {
    // Group the run of consecutive frames bound for the same fd (one
    // channel — each fd realizes exactly one channel) into a gathered
    // write, so a handler that emits a burst pays one syscall, not one
    // per message.
    const int fd = pending_sends_[i].fd;
    const ChannelId channel = pending_sends_[i].channel;
    std::size_t count = 1;
    while (i + count < pending_sends_.size() && count < kMaxWriteBatch &&
           pending_sends_[i + count].fd == fd) {
      ++count;
    }
    iovec iov[kMaxWriteBatch];
    std::size_t total = 0;
    for (std::size_t k = 0; k < count; ++k) {
      Bytes& frame = pending_sends_[i + k].frame.bytes();
      iov[k].iov_base = frame.data();
      iov[k].iov_len = frame.size();
      total += frame.size();
    }
    // Only this worker's thread writes to the fd, so frames are never
    // interleaved.  The send-blocked clock brackets the write: on loopback
    // it is normally ~0, and it surfaces the time a sender spends wedged
    // against a full socket buffer (a halted or slow receiver).
    const auto write_start = SteadyClock::now();
    const bool wrote = write_all_iov(fd, iov, count, total);
    runtime_.metrics_.add_send_blocked(
        channel.value(),
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            SteadyClock::now() - write_start)
            .count());
    runtime_.metrics_.on_write_batch(count);
    if (!wrote) {
      // Failed writes are expected while shutting down (channels are
      // half-closed to unblock writers); only a live-system failure is
      // news.
      if (!runtime_.stopped_.load(std::memory_order_relaxed)) {
        DDBG_ERROR() << "tcp: write failed on " << to_string(channel);
      }
    }
    i += count;
  }
  pending_sends_.clear();
}

void TcpRuntime::Worker::thread_main() {
  process_->on_start(*context_);
  flush_sends();

  std::vector<pollfd> fds;
  fds.push_back(pollfd{pipe_read_, POLLIN, 0});
  for (const int fd : in_fds_) fds.push_back(pollfd{fd, POLLIN, 0});

  std::deque<std::function<void(ProcessContext&, Process&)>> batch;
  while (!stopping_.load()) {
    poll_iterations_.fetch_add(1, std::memory_order_relaxed);
    const int timeout = poll_timeout_ms();
    const int ready = ::poll(fds.data(), fds.size(), timeout);
    if (ready < 0 && errno != EINTR) break;

    // Drain the wake pipe (blocking fd: one read takes whatever poll saw).
    if (fds[0].revents & POLLIN) {
      std::uint8_t sink[256];
      (void)!::read(pipe_read_, sink, sizeof(sink));
    }

    // Run queued closures: swap the whole queue out under one lock and
    // dispatch the batch lock-free while posters refill a fresh deque.
    {
      std::lock_guard<std::mutex> guard{mutex_};
      batch.swap(closures_);
    }
    for (auto& closure : batch) closure(*context_, *process_);
    batch.clear();

    fire_due_timers();

    for (std::size_t i = 1; i < fds.size(); ++i) {
      // A retired slot keeps fd = -1: poll ignores negative fds, so a
      // peer-closed connection cannot busy-spin the reactor with
      // POLLIN|POLLHUP forever.
      if (fds[i].fd >= 0 && (fds[i].revents & (POLLIN | POLLHUP))) {
        if (!drain_fd(i - 1)) fds[i].fd = -1;
      }
      fds[i].revents = 0;
    }
    fds[0].revents = 0;

    // Everything handlers staged this iteration leaves before the next
    // poll sleep.
    flush_sends();
  }
  flush_sends();
}

// ---------------------------------------------------------------------------
// TcpRuntime
// ---------------------------------------------------------------------------

TcpRuntime::TcpRuntime(Topology topology, std::vector<ProcessPtr> processes,
                       TcpRuntimeConfig config)
    : topology_(std::move(topology)),
      config_(config),
      metrics_("tcp", topology_.num_processes(), channel_meta(topology_)) {
  DDBG_ASSERT(processes.size() == topology_.num_processes(),
              "one Process per topology process required");
  Rng root(config_.seed);
  workers_.reserve(processes.size());
  for (std::size_t i = 0; i < processes.size(); ++i) {
    workers_.push_back(std::make_unique<Worker>(
        *this, ProcessId(static_cast<std::uint32_t>(i)),
        std::move(processes[i]), root.fork()));
  }
  channel_fd_.assign(topology_.num_channels(), -1);
  epoch_ = SteadyClock::now();
}

TcpRuntime::~TcpRuntime() {
  shutdown();
  for (int& fd : channel_fd_) close_fd(fd);
}

bool TcpRuntime::start() {
  DDBG_ASSERT(!started_.exchange(true), "TcpRuntime::start called twice");
  for (auto& worker : workers_) {
    if (!worker->init_sockets()) return false;
  }
  // Connect every channel: source dials destination's listener and sends
  // the channel-id hello.  Backlogs hold the pending connections until the
  // destinations accept below.
  for (const ChannelSpec& spec : topology_.channels()) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(workers_[spec.destination.value()]->port());
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return false;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const std::uint32_t channel_id = spec.id.value();
    std::uint8_t hello[4];
    std::memcpy(hello, &channel_id, sizeof(channel_id));
    if (!write_all(fd, hello, sizeof(hello))) {
      ::close(fd);
      return false;
    }
    channel_fd_[spec.id.value()] = fd;
  }
  for (auto& worker : workers_) {
    if (!worker->accept_inbound()) return false;
  }
  epoch_ = SteadyClock::now();
  for (auto& worker : workers_) worker->start();
  return true;
}

void TcpRuntime::shutdown() {
  if (stopped_.exchange(true)) return;
  for (auto& worker : workers_) worker->request_stop();
  // Unblock any process thread stuck in a blocking send: half-close every
  // channel so pending writes fail instead of waiting for a reader that is
  // itself shutting down.  ::shutdown (unlike ::close) is safe while
  // another thread uses the fd, and pending inbox data is dropped by
  // contract.
  for (const int fd : channel_fd_) {
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& worker : workers_) worker->stop_and_join();
}

void TcpRuntime::post(ProcessId target,
                      std::function<void(ProcessContext&, Process&)> action) {
  DDBG_ASSERT(target.value() < workers_.size(), "unknown process");
  workers_[target.value()]->push_closure(std::move(action));
}

bool TcpRuntime::wait_until(const std::function<bool()>& condition,
                            Duration timeout) {
  const auto deadline =
      SteadyClock::now() + std::chrono::nanoseconds(timeout.ns);
  while (!condition()) {
    if (SteadyClock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  return true;
}

Process& TcpRuntime::process(ProcessId id) {
  DDBG_ASSERT(id.value() < workers_.size(), "unknown process");
  return workers_[id.value()]->process();
}

TimePoint TcpRuntime::now() const {
  const auto elapsed = SteadyClock::now() - epoch_;
  return TimePoint{
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()};
}

void TcpRuntime::do_send(ProcessId sender, ChannelId channel,
                         Message message) {
  const ChannelSpec& spec = topology_.channel(channel);
  DDBG_ASSERT(spec.source == sender,
              "process may only send on its own outgoing channels");
  if (message.message_id == 0) {
    message.message_id = next_message_id_.fetch_add(1);
  }
  const int fd = channel_fd_[channel.value()];
  DDBG_ASSERT(fd >= 0, "channel not connected");
  // do_send runs on the sender's own worker thread, so the frame encodes
  // into that worker's pooled buffer and queues for the next flush: a
  // handler emitting several messages pays one gathered write, and
  // steady-state sends allocate nothing.
  workers_[sender.value()]->stage_send(channel, fd, message);
}

void TcpRuntime::half_close_channel(ChannelId channel) {
  DDBG_ASSERT(channel.value() < channel_fd_.size(), "unknown channel");
  const int fd = channel_fd_[channel.value()];
  if (fd >= 0) ::shutdown(fd, SHUT_WR);
}

std::uint64_t TcpRuntime::poll_iterations() const {
  std::uint64_t total = 0;
  for (const auto& worker : workers_) total += worker->poll_iterations();
  return total;
}

}  // namespace ddbg
