#include "runtime/tcp_runtime.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <thread>
#include <unordered_map>

#include "common/buffer_pool.hpp"
#include "common/logging.hpp"
#include "common/serialization.hpp"
#include "net/framing.hpp"
#include "net/reliable.hpp"

namespace ddbg {

namespace {

using SteadyClock = std::chrono::steady_clock;

// Frames batched into one sendmsg call; small because a handler rarely
// emits more, and each iovec points at a whole frame (header included).
constexpr std::size_t kMaxWriteBatch = 16;

// Write the whole buffer, retrying on short writes.  Loopback writes of
// debugger-sized frames essentially never block for long.  MSG_NOSIGNAL:
// during shutdown the peer's worker may already have closed its end, and a
// plain write would raise SIGPIPE and kill the process instead of failing
// the send.
bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n =
        ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

// Gathered write of `count` iovecs totalling `total` bytes, retrying on
// short writes by advancing the iovec array in place.  sendmsg rather than
// writev so the write keeps MSG_NOSIGNAL (writev has no flags parameter,
// and a dead peer must fail the send, not SIGPIPE the process).
bool write_all_iov(int fd, iovec* iov, std::size_t count, std::size_t total) {
  std::size_t written = 0;
  while (written < total) {
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = count;
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
    std::size_t advance = static_cast<std::size_t>(n);
    while (advance > 0 && count > 0) {
      if (advance >= iov[0].iov_len) {
        advance -= iov[0].iov_len;
        ++iov;
        --count;
      } else {
        iov[0].iov_base = static_cast<std::uint8_t*>(iov[0].iov_base) + advance;
        iov[0].iov_len -= advance;
        advance = 0;
      }
    }
  }
  return true;
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

class TcpProcessContext;

class TcpRuntime::Worker {
 public:
  Worker(TcpRuntime& runtime, ProcessId id, ProcessPtr process, Rng rng);
  ~Worker();

  bool init_sockets();           // create listener
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] int listen_fd() const { return listen_fd_; }
  // Accept all expected inbound connections and map them to channels.
  bool accept_inbound();

  void start();
  void stop_and_join();
  void request_stop();

  void push_closure(std::function<void(ProcessContext&, Process&)> action);
  TimerId add_timer(Duration delay);
  void cancel_timer(TimerId timer);

  // Encode `message` into a pooled frame and queue it for flush_sends().
  // Runs on this worker's own thread only (the sender's), like all sends.
  void stage_send(ChannelId channel, int fd, const Message& message);

  // Reliability-layer entry point for do_send (runtime_.config_.faults
  // only): stage in the retransmit window and attempt transmission under
  // the fault plan.  Runs on this worker's own thread.
  void rel_send_message(ChannelId channel, const Message& message);

  [[nodiscard]] Process& process() { return *process_; }
  [[nodiscard]] TcpRuntime& runtime() { return runtime_; }
  [[nodiscard]] ProcessId id() const { return id_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] std::uint64_t poll_iterations() const {
    return poll_iterations_.load(std::memory_order_relaxed);
  }

 private:
  void thread_main();
  void wake();
  // Returns false once nothing more will arrive on the slot's fd (peer
  // closed, error, or corrupt framing): the caller retires it.
  [[nodiscard]] bool drain_fd(std::size_t slot);
  void parse_frames(std::size_t slot);
  void fire_due_timers();
  void flush_sends();
  [[nodiscard]] int poll_timeout_ms();

  // ---- reliability layer (runtime_.config_.faults only) ----
  // All state below is owned by this worker's thread: sender-side windows
  // and attempt counters for its out-channels, receiver-side sequencers
  // for its in-slots.
  void rel_reactor();  // replaces the static-poll-set loop
  [[nodiscard]] std::size_t out_slot(ChannelId channel) const;
  void rel_transmit(std::size_t slot, std::uint64_t seq);
  void rel_write_data(std::size_t slot, std::uint64_t seq);
  void rel_write_ack(std::size_t in_slot);        // fault-checked
  void rel_write_ack_frame(std::size_t in_slot);  // unconditional build
  void rel_parse_in_frames(std::size_t slot);
  void rel_on_ack_fd(std::size_t slot);
  void rel_begin_reconnect(std::size_t slot);
  void rel_try_reconnect(std::size_t slot);
  void rel_fire_due();
  [[nodiscard]] SteadyClock::time_point rel_next_deadline() const;
  void accept_runtime_connection();
  void retire_out_fd(int fd);

  TcpRuntime& runtime_;
  ProcessId id_;
  ProcessPtr process_;
  Rng rng_;
  std::unique_ptr<TcpProcessContext> context_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  int pipe_read_ = -1;
  int pipe_write_ = -1;

  // Inbound connections, parallel arrays: fd, channel, frame reassembly.
  std::vector<int> in_fds_;
  std::vector<ChannelId> in_channels_;
  std::vector<FrameParser> in_parsers_;

  // Outbound frames staged by this worker's handlers since the last flush.
  // Thread-local by construction (only this worker's thread stages and
  // flushes), so no lock.
  struct PendingSend {
    ChannelId channel;
    int fd = -1;
    bool is_ack = false;
    BufferPool::Lease frame;
  };
  std::vector<PendingSend> pending_sends_;
  BufferPool pool_;

  // Reliability state; sized only when a FaultPlan is configured.
  std::vector<ChannelId> out_channels_;  // channels this worker sources
  std::vector<FrameParser> out_parsers_;  // acks arriving on out fds
  std::vector<ReliableSender> rel_send_;  // by out slot
  std::vector<std::uint64_t> out_attempts_;  // data fault stream
  std::vector<SteadyClock::time_point> out_reconnect_at_;  // max() = none
  std::vector<ReliableReceiver> in_recv_;  // by in slot
  std::vector<std::uint64_t> in_ack_attempts_;  // ack fault stream
  // Frames held back by delay/reorder faults, fired by the reactor.
  struct DelayedWire {
    bool is_ack = false;
    std::size_t slot = 0;   // out slot (data) / in slot (ack)
    std::uint64_t seq = 0;  // data only
  };
  std::multimap<SteadyClock::time_point, DelayedWire> delayed_;
  // Replaced connection fds are shut down but closed only at destruction,
  // so a racing shutdown() snapshot of channel_fd_ can never hit a reused
  // descriptor number.
  std::vector<int> retired_fds_;

  std::mutex mutex_;
  std::deque<std::function<void(ProcessContext&, Process&)>> closures_;
  std::map<std::pair<SteadyClock::time_point, std::uint32_t>, TimerId>
      timers_;
  std::unordered_map<std::uint32_t, SteadyClock::time_point> timer_deadline_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> poll_iterations_{0};

  std::thread thread_;
};

class TcpProcessContext final : public ProcessContext {
 public:
  explicit TcpProcessContext(TcpRuntime::Worker& worker) : worker_(worker) {}

  [[nodiscard]] ProcessId self() const override { return worker_.id(); }
  [[nodiscard]] TimePoint now() const override {
    return worker_.runtime().now();
  }
  [[nodiscard]] const Topology& topology() const override {
    return worker_.runtime().topology();
  }
  void send(ChannelId channel, Message message) override {
    worker_.runtime().do_send(worker_.id(), channel, std::move(message));
  }
  TimerId set_timer(Duration delay) override {
    return worker_.add_timer(delay);
  }
  void cancel_timer(TimerId timer) override { worker_.cancel_timer(timer); }
  [[nodiscard]] Rng& rng() override { return worker_.rng(); }
  [[nodiscard]] obs::MetricsRegistry* metrics() const override {
    return &worker_.runtime().metrics();
  }
  void stop_self() override {}

 private:
  TcpRuntime::Worker& worker_;
};

TcpRuntime::Worker::Worker(TcpRuntime& runtime, ProcessId id,
                           ProcessPtr process, Rng rng)
    : runtime_(runtime), id_(id), process_(std::move(process)), rng_(rng) {
  context_ = std::make_unique<TcpProcessContext>(*this);
  if (runtime_.config_.faults) {
    for (const ChannelId channel : runtime_.topology_.out_channels(id_)) {
      out_channels_.push_back(channel);
    }
    const std::size_t n = out_channels_.size();
    out_parsers_.resize(n);
    rel_send_.assign(n, ReliableSender(runtime_.config_.reliable));
    out_attempts_.assign(n, 0);
    out_reconnect_at_.assign(n, SteadyClock::time_point::max());
  }
}

TcpRuntime::Worker::~Worker() {
  stop_and_join();
  for (int& fd : in_fds_) close_fd(fd);
  for (int& fd : retired_fds_) close_fd(fd);
  close_fd(listen_fd_);
  close_fd(pipe_read_);
  close_fd(pipe_write_);
}

bool TcpRuntime::Worker::init_sockets() {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return false;
  pipe_read_ = pipe_fds[0];
  pipe_write_ = pipe_fds[1];

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return false;
  }
  if (::listen(listen_fd_, 128) != 0) return false;
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return false;
  }
  port_ = ntohs(addr.sin_port);
  return true;
}

bool TcpRuntime::Worker::accept_inbound() {
  const std::size_t expected =
      runtime_.topology().in_channels(id_).size();
  for (std::size_t i = 0; i < expected; ++i) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return false;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Hello frame: the 4-byte channel id this connection realizes.
    std::uint8_t hello[4];
    std::size_t got = 0;
    while (got < sizeof(hello)) {
      const ssize_t n = ::read(fd, hello + got, sizeof(hello) - got);
      if (n <= 0) {
        ::close(fd);
        return false;
      }
      got += static_cast<std::size_t>(n);
    }
    std::uint32_t channel_id = 0;
    std::memcpy(&channel_id, hello, sizeof(channel_id));
    in_fds_.push_back(fd);
    in_channels_.push_back(ChannelId(channel_id));
    in_parsers_.emplace_back();
    if (runtime_.config_.faults) {
      in_recv_.emplace_back();
      in_ack_attempts_.push_back(0);
    }
  }
  return true;
}

void TcpRuntime::Worker::start() {
  thread_ = std::thread([this] { thread_main(); });
}

void TcpRuntime::Worker::request_stop() {
  stopping_.store(true);
  wake();
}

void TcpRuntime::Worker::stop_and_join() {
  request_stop();
  if (thread_.joinable()) thread_.join();
}

void TcpRuntime::Worker::wake() {
  if (pipe_write_ >= 0) {
    const std::uint8_t byte = 1;
    (void)!::write(pipe_write_, &byte, 1);
  }
}

void TcpRuntime::Worker::push_closure(
    std::function<void(ProcessContext&, Process&)> action) {
  {
    std::lock_guard<std::mutex> guard{mutex_};
    closures_.push_back(std::move(action));
  }
  wake();
}

TimerId TcpRuntime::Worker::add_timer(Duration delay) {
  const TimerId id(runtime_.next_timer_id_.fetch_add(1));
  const auto deadline =
      SteadyClock::now() + std::chrono::nanoseconds(delay.ns);
  {
    std::lock_guard<std::mutex> guard{mutex_};
    timers_.emplace(std::make_pair(deadline, id.value()), id);
    timer_deadline_.emplace(id.value(), deadline);
  }
  wake();
  return id;
}

void TcpRuntime::Worker::cancel_timer(TimerId timer) {
  std::lock_guard<std::mutex> guard{mutex_};
  const auto it = timer_deadline_.find(timer.value());
  if (it == timer_deadline_.end()) return;  // already fired or cancelled
  timers_.erase(std::make_pair(it->second, timer.value()));
  timer_deadline_.erase(it);
}

int TcpRuntime::Worker::poll_timeout_ms() {
  auto deadline = SteadyClock::time_point::max();
  {
    std::lock_guard<std::mutex> guard{mutex_};
    if (!closures_.empty()) return 0;
    if (!timers_.empty()) deadline = timers_.begin()->first.first;
  }
  if (runtime_.config_.faults) {
    const auto rel = rel_next_deadline();
    if (rel < deadline) deadline = rel;
  }
  if (deadline == SteadyClock::time_point::max()) return -1;
  const auto now = SteadyClock::now();
  if (deadline <= now) return 0;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - now)
                      .count();
  return static_cast<int>(std::min<long long>(ms + 1, 1000));
}

void TcpRuntime::Worker::fire_due_timers() {
  while (true) {
    TimerId due;
    {
      std::lock_guard<std::mutex> guard{mutex_};
      if (timers_.empty() ||
          timers_.begin()->first.first > SteadyClock::now()) {
        return;
      }
      due = timers_.begin()->second;
      timer_deadline_.erase(due.value());
      timers_.erase(timers_.begin());
    }
    process_->on_timer(*context_, due);
  }
}

void TcpRuntime::Worker::parse_frames(std::size_t slot) {
  FrameParser& parser = in_parsers_[slot];
  std::size_t frames = 0;
  while (const auto body = parser.next()) {
    ByteReader reader(*body);
    auto message = Message::decode(reader);
    if (!message.ok()) {
      DDBG_ERROR() << "tcp: bad frame on " << to_string(in_channels_[slot])
                   << ": " << message.error().to_string();
      continue;
    }
    ++frames;
    runtime_.metrics_.on_deliver(in_channels_[slot].value(),
                                 traffic_class(message.value().kind),
                                 static_cast<std::uint32_t>(body->size()));
    process_->on_message(*context_, in_channels_[slot],
                         std::move(message).value());
  }
  if (frames > 0) runtime_.metrics_.on_deliver_batch(frames);
}

bool TcpRuntime::Worker::drain_fd(std::size_t slot) {
  FrameParser& parser = in_parsers_[slot];
  std::uint8_t chunk[4096];
  bool alive = true;
  while (true) {
    const ssize_t n =
        ::recv(in_fds_[slot], chunk, sizeof(chunk), MSG_DONTWAIT);
    if (n > 0) {
      parser.append(
          std::span<const std::uint8_t>(chunk, static_cast<std::size_t>(n)));
      runtime_.metrics_.observe_backlog(in_channels_[slot].value(),
                                        parser.buffered_bytes());
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // Peer closed (or error): nothing more will arrive on this channel.
    alive = false;
    break;
  }
  if (runtime_.config_.faults) {
    rel_parse_in_frames(slot);
  } else {
    parse_frames(slot);
  }
  if (parser.corrupt()) {
    DDBG_ERROR() << "tcp: frame length " << parser.rejected_frame_len()
                 << " exceeds cap on " << to_string(in_channels_[slot])
                 << "; dropping connection";
    alive = false;
  }
  return alive;
}

void TcpRuntime::Worker::stage_send(ChannelId channel, int fd,
                                    const Message& message) {
  BufferPool::Lease lease = pool_.acquire();
  runtime_.metrics_.on_pool_acquire(lease.reused());
  Bytes& frame = lease.bytes();
  const std::size_t header_at = begin_frame(frame);
  ByteWriter writer(frame);
  message.encode(writer);
  end_frame(frame, header_at);
  runtime_.metrics_.on_send(
      channel.value(), traffic_class(message.kind),
      static_cast<std::uint32_t>(frame.size() - kFrameHeaderSize));
  PendingSend pending;
  pending.channel = channel;
  pending.fd = fd;
  pending.frame = std::move(lease);
  pending_sends_.push_back(std::move(pending));
}

void TcpRuntime::Worker::flush_sends() {
  std::size_t i = 0;
  while (i < pending_sends_.size()) {
    // Group the run of consecutive frames bound for the same fd (one
    // channel — each fd realizes exactly one channel) into a gathered
    // write, so a handler that emits a burst pays one syscall, not one
    // per message.
    const int fd = pending_sends_[i].fd;
    const ChannelId channel = pending_sends_[i].channel;
    std::size_t count = 1;
    while (i + count < pending_sends_.size() && count < kMaxWriteBatch &&
           pending_sends_[i + count].fd == fd) {
      ++count;
    }
    iovec iov[kMaxWriteBatch];
    std::size_t total = 0;
    for (std::size_t k = 0; k < count; ++k) {
      Bytes& frame = pending_sends_[i + k].frame.bytes();
      iov[k].iov_base = frame.data();
      iov[k].iov_len = frame.size();
      total += frame.size();
    }
    // Only this worker's thread writes to the fd, so frames are never
    // interleaved.  The send-blocked clock brackets the write: on loopback
    // it is normally ~0, and it surfaces the time a sender spends wedged
    // against a full socket buffer (a halted or slow receiver).
    const auto write_start = SteadyClock::now();
    const bool wrote = write_all_iov(fd, iov, count, total);
    runtime_.metrics_.add_send_blocked(
        channel.value(),
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            SteadyClock::now() - write_start)
            .count());
    runtime_.metrics_.on_write_batch(count);
    if (!wrote) {
      // Failed writes are expected while shutting down (channels are
      // half-closed to unblock writers); only a live-system failure is
      // news.
      const bool live =
          !runtime_.stopped_.load(std::memory_order_relaxed) &&
          !stopping_.load(std::memory_order_relaxed);
      if (runtime_.config_.faults) {
        // The connection is gone mid-flush, but nothing is lost: every
        // data frame in this batch is still staged in the retransmit
        // window, so kick reconnect-with-resync and let the replay carry
        // them.  A failed ack frame needs no action — the sender's
        // retransmit covers the gap and a later cumulative ack supersedes
        // this one.
        if (live && !pending_sends_[i].is_ack) {
          if (runtime_.channel_fd_[channel.value()].load() >= 0) {
            runtime_.metrics_.on_channel_down();
          }
          rel_begin_reconnect(out_slot(channel));
        }
      } else if (live) {
        // Bare-TCP mode has no retransmit window: this batch of staged
        // frames is lost with the connection.  Count the event so tests
        // and operators see the drop instead of relying on a log line.
        runtime_.metrics_.on_channel_down();
        DDBG_ERROR() << "tcp: write failed on " << to_string(channel);
      }
    }
    i += count;
  }
  pending_sends_.clear();
}

void TcpRuntime::Worker::thread_main() {
  process_->on_start(*context_);
  flush_sends();

  if (runtime_.config_.faults) {
    // Reliability mode rebuilds its poll set per iteration (fds come and
    // go with reconnects) — a different loop entirely.
    rel_reactor();
    return;
  }

  std::vector<pollfd> fds;
  fds.push_back(pollfd{pipe_read_, POLLIN, 0});
  for (const int fd : in_fds_) fds.push_back(pollfd{fd, POLLIN, 0});

  std::deque<std::function<void(ProcessContext&, Process&)>> batch;
  while (!stopping_.load()) {
    poll_iterations_.fetch_add(1, std::memory_order_relaxed);
    const int timeout = poll_timeout_ms();
    const int ready = ::poll(fds.data(), fds.size(), timeout);
    if (ready < 0 && errno != EINTR) break;

    // Drain the wake pipe (blocking fd: one read takes whatever poll saw).
    if (fds[0].revents & POLLIN) {
      std::uint8_t sink[256];
      (void)!::read(pipe_read_, sink, sizeof(sink));
    }

    // Run queued closures: swap the whole queue out under one lock and
    // dispatch the batch lock-free while posters refill a fresh deque.
    {
      std::lock_guard<std::mutex> guard{mutex_};
      batch.swap(closures_);
    }
    for (auto& closure : batch) closure(*context_, *process_);
    batch.clear();

    fire_due_timers();

    for (std::size_t i = 1; i < fds.size(); ++i) {
      // A retired slot keeps fd = -1: poll ignores negative fds, so a
      // peer-closed connection cannot busy-spin the reactor with
      // POLLIN|POLLHUP forever.
      if (fds[i].fd >= 0 && (fds[i].revents & (POLLIN | POLLHUP))) {
        if (!drain_fd(i - 1)) fds[i].fd = -1;
      }
      fds[i].revents = 0;
    }
    fds[0].revents = 0;

    // Everything handlers staged this iteration leaves before the next
    // poll sleep.
    flush_sends();
  }
  flush_sends();
}

// ---------------------------------------------------------------------------
// Worker: reliability layer
// ---------------------------------------------------------------------------

std::size_t TcpRuntime::Worker::out_slot(ChannelId channel) const {
  for (std::size_t slot = 0; slot < out_channels_.size(); ++slot) {
    if (out_channels_[slot] == channel) return slot;
  }
  DDBG_ASSERT(false, "channel is not sourced by this worker");
  return 0;
}

void TcpRuntime::Worker::rel_send_message(ChannelId channel,
                                          const Message& message) {
  const std::size_t slot = out_slot(channel);
  // Bytes accounted once per logical send, like the bare-TCP path; the
  // wire frame itself is rebuilt per transmission attempt, and the size is
  // stashed alongside the staged message so retransmissions never
  // re-measure.
  const std::uint64_t wire = message.encoded_size();
  runtime_.metrics_.on_send(channel.value(), traffic_class(message.kind),
                            static_cast<std::uint32_t>(wire));
  const std::uint64_t seq =
      rel_send_[slot].stage(message, wire, runtime_.now());
  rel_transmit(slot, seq);
}

void TcpRuntime::Worker::rel_transmit(std::size_t slot, std::uint64_t seq) {
  if (rel_send_[slot].peek(seq) == nullptr) return;  // acked meanwhile
  const ChannelId channel = out_channels_[slot];
  const std::uint64_t attempt = out_attempts_[slot]++;
  const FaultDecision fault =
      runtime_.config_.faults->decide(channel, attempt);
  switch (fault.kind) {
    case FaultKind::kNone:
      rel_write_data(slot, seq);
      return;
    case FaultKind::kDrop:
    case FaultKind::kPartition:
      // Swallowed by the adversary; the retransmit timer recovers.
      runtime_.metrics_.on_fault(fault_index(fault.kind));
      return;
    case FaultKind::kReset:
      // Connection torn down under the frame: quarantine the fd and dial
      // again after a backoff.  Resync on the fresh connection replays the
      // whole unacked window, this frame included.
      runtime_.metrics_.on_fault(fault_index(fault.kind));
      if (runtime_.channel_fd_[channel.value()].load() >= 0) {
        runtime_.metrics_.on_channel_down();
      }
      rel_begin_reconnect(slot);
      return;
    case FaultKind::kDuplicate:
      runtime_.metrics_.on_fault(fault_index(fault.kind));
      rel_write_data(slot, seq);
      rel_write_data(slot, seq);
      return;
    case FaultKind::kReorder:
    case FaultKind::kDelay:
      // Held back and fired by the reactor; later frames on the channel
      // overtake this one on the wire, and the receiver's sequencer puts
      // the order back.
      runtime_.metrics_.on_fault(fault_index(fault.kind));
      delayed_.emplace(SteadyClock::now() +
                           std::chrono::nanoseconds(fault.extra_delay.ns),
                       DelayedWire{false, slot, seq});
      return;
  }
}

void TcpRuntime::Worker::rel_write_data(std::size_t slot, std::uint64_t seq) {
  const ReliableSender::Staged* staged = rel_send_[slot].peek(seq);
  if (staged == nullptr) return;  // acked before a delayed copy fired
  const ChannelId channel = out_channels_[slot];
  const int fd = runtime_.channel_fd_[channel.value()].load();
  if (fd < 0) return;  // channel down; reconnect resync replays the window
  BufferPool::Lease lease = pool_.acquire();
  runtime_.metrics_.on_pool_acquire(lease.reused());
  Bytes& frame = lease.bytes();
  const std::size_t header_at = begin_frame(frame);
  ByteWriter writer(frame);
  RelHeader header;
  header.tag = RelHeader::kData;
  header.seq = seq;
  header.encode(writer);
  staged->message.encode(writer);
  end_frame(frame, header_at);
  PendingSend pending;
  pending.channel = channel;
  pending.fd = fd;
  pending.frame = std::move(lease);
  pending_sends_.push_back(std::move(pending));
}

void TcpRuntime::Worker::rel_write_ack(std::size_t in_slot) {
  const std::uint64_t attempt = in_ack_attempts_[in_slot]++;
  const FaultDecision fault =
      runtime_.config_.faults->decide_ack(in_channels_[in_slot], attempt);
  if (fault.kind == FaultKind::kDrop) {
    // Cumulative acks make a lost one free: the next carries its news.
    runtime_.metrics_.on_fault(fault_index(fault.kind));
    return;
  }
  if (fault.kind == FaultKind::kDelay) {
    runtime_.metrics_.on_fault(fault_index(fault.kind));
    delayed_.emplace(SteadyClock::now() +
                         std::chrono::nanoseconds(fault.extra_delay.ns),
                     DelayedWire{true, in_slot, 0});
    return;
  }
  rel_write_ack_frame(in_slot);
}

void TcpRuntime::Worker::rel_write_ack_frame(std::size_t in_slot) {
  const int fd = in_fds_[in_slot];
  if (fd < 0) return;  // connection being replaced; resync re-acks
  BufferPool::Lease lease = pool_.acquire();
  runtime_.metrics_.on_pool_acquire(lease.reused());
  Bytes& frame = lease.bytes();
  const std::size_t header_at = begin_frame(frame);
  ByteWriter writer(frame);
  RelHeader header;
  header.tag = RelHeader::kAck;
  header.cum_ack = in_recv_[in_slot].cum_ack();
  header.encode(writer);
  end_frame(frame, header_at);
  PendingSend pending;
  pending.channel = in_channels_[in_slot];
  pending.fd = fd;
  pending.is_ack = true;
  pending.frame = std::move(lease);
  pending_sends_.push_back(std::move(pending));
}

void TcpRuntime::Worker::rel_parse_in_frames(std::size_t slot) {
  FrameParser& parser = in_parsers_[slot];
  const ChannelId channel = in_channels_[slot];
  std::size_t delivered = 0;
  bool arrived = false;
  std::vector<ReliableReceiver::Delivery> releases;
  while (const auto body = parser.next()) {
    ByteReader reader(*body);
    auto header = RelHeader::decode(reader);
    if (!header.ok()) {
      DDBG_ERROR() << "tcp: bad reliable frame on " << to_string(channel)
                   << ": " << header.error().to_string();
      continue;
    }
    if (header.value().tag != RelHeader::kData) continue;
    auto message = Message::decode(reader);
    if (!message.ok()) {
      DDBG_ERROR() << "tcp: bad frame on " << to_string(channel) << ": "
                   << message.error().to_string();
      continue;
    }
    arrived = true;
    const std::uint64_t wire = body->size() - kRelHeaderSize;
    releases.clear();
    const auto accept = in_recv_[slot].on_frame(
        header.value().seq, std::move(message).value(), wire, releases);
    if (accept == ReliableReceiver::Accept::kDuplicate) {
      runtime_.metrics_.on_dup_suppressed();
    }
    for (auto& release : releases) {
      ++delivered;
      runtime_.metrics_.on_deliver(
          channel.value(), traffic_class(release.message.kind),
          static_cast<std::uint32_t>(release.meta));
      process_->on_message(*context_, channel, std::move(release.message));
    }
  }
  // One cumulative ack per drained batch — it carries the furthest
  // in-order point whether the batch delivered, buffered or suppressed.
  if (arrived) rel_write_ack(slot);
  if (delivered > 0) runtime_.metrics_.on_deliver_batch(delivered);
}

void TcpRuntime::Worker::rel_on_ack_fd(std::size_t slot) {
  const int fd = runtime_.channel_fd_[out_channels_[slot].value()].load();
  if (fd < 0) return;
  FrameParser& parser = out_parsers_[slot];
  std::uint8_t chunk[4096];
  bool alive = true;
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (n > 0) {
      parser.append(
          std::span<const std::uint8_t>(chunk, static_cast<std::size_t>(n)));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    alive = false;
    break;
  }
  while (const auto body = parser.next()) {
    ByteReader reader(*body);
    auto header = RelHeader::decode(reader);
    if (!header.ok() || header.value().tag != RelHeader::kAck) continue;
    rel_send_[slot].ack(header.value().cum_ack);
  }
  if (parser.corrupt()) alive = false;
  if (!alive && !stopping_.load(std::memory_order_relaxed) &&
      !runtime_.stopped_.load(std::memory_order_relaxed)) {
    // The destination closed its end (or the stream corrupted): real
    // channel loss, same recovery as an injected reset.
    runtime_.metrics_.on_channel_down();
    rel_begin_reconnect(slot);
  }
}

void TcpRuntime::Worker::retire_out_fd(int fd) {
  // shutdown() now, close() at worker destruction: a concurrently running
  // TcpRuntime::shutdown may have snapshotted this fd, and keeping the
  // number allocated guarantees its ::shutdown can never hit a stranger.
  ::shutdown(fd, SHUT_RDWR);
  retired_fds_.push_back(fd);
}

void TcpRuntime::Worker::rel_begin_reconnect(std::size_t slot) {
  if (stopping_.load(std::memory_order_relaxed) ||
      runtime_.stopped_.load(std::memory_order_relaxed)) {
    return;
  }
  const ChannelId channel = out_channels_[slot];
  const int old = runtime_.channel_fd_[channel.value()].exchange(-1);
  if (old >= 0) retire_out_fd(old);
  out_parsers_[slot] = FrameParser();
  if (out_reconnect_at_[slot] == SteadyClock::time_point::max()) {
    out_reconnect_at_[slot] =
        SteadyClock::now() +
        std::chrono::nanoseconds(runtime_.config_.reliable.rto_initial.ns);
  }
}

void TcpRuntime::Worker::rel_try_reconnect(std::size_t slot) {
  out_reconnect_at_[slot] = SteadyClock::time_point::max();
  if (stopping_.load(std::memory_order_relaxed) ||
      runtime_.stopped_.load(std::memory_order_relaxed)) {
    return;
  }
  const ChannelId channel = out_channels_[slot];
  const ChannelSpec& spec = runtime_.topology_.channel(channel);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  bool ok = fd >= 0;
  if (ok) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port =
        htons(runtime_.workers_[spec.destination.value()]->port());
    ok = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  if (ok) {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const std::uint32_t channel_id = channel.value();
    std::uint8_t hello[4];
    std::memcpy(hello, &channel_id, sizeof(channel_id));
    ok = write_all(fd, hello, sizeof(hello));
  }
  if (!ok) {
    if (fd >= 0) ::close(fd);
    out_reconnect_at_[slot] =
        SteadyClock::now() +
        std::chrono::nanoseconds(runtime_.config_.reliable.rto_initial.ns);
    return;
  }
  const int old = runtime_.channel_fd_[channel.value()].exchange(fd);
  if (old >= 0) retire_out_fd(old);
  out_parsers_[slot] = FrameParser();
  runtime_.metrics_.on_reconnect();
  // Resync: everything unacked becomes due at once and flows out through
  // the normal retransmit path (counted as both replayed and retransmits).
  const std::size_t replayed = rel_send_[slot].mark_all_due(runtime_.now());
  if (replayed > 0) runtime_.metrics_.on_resync_replayed(replayed);
}

void TcpRuntime::Worker::accept_runtime_connection() {
  const int fd = ::accept(listen_fd_, nullptr, nullptr);
  if (fd < 0) return;
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Same 4-byte channel-id hello as the startup dial.  The dialer writes
  // it immediately after connect, so this blocking read is momentary.
  std::uint8_t hello[4];
  std::size_t got = 0;
  while (got < sizeof(hello)) {
    const ssize_t n = ::read(fd, hello + got, sizeof(hello) - got);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      return;
    }
    got += static_cast<std::size_t>(n);
  }
  std::uint32_t channel_id = 0;
  std::memcpy(&channel_id, hello, sizeof(channel_id));
  for (std::size_t slot = 0; slot < in_channels_.size(); ++slot) {
    if (in_channels_[slot].value() != channel_id) continue;
    if (in_fds_[slot] >= 0) retire_out_fd(in_fds_[slot]);
    in_fds_[slot] = fd;
    in_parsers_[slot] = FrameParser();
    // in_recv_[slot] survives on purpose: its delivered-prefix state is
    // exactly what suppresses the replayed frames the reconnecting sender
    // is about to resend.
    return;
  }
  DDBG_ERROR() << "tcp: reconnect hello for unknown channel " << channel_id;
  ::close(fd);
}

void TcpRuntime::Worker::rel_fire_due() {
  const auto now = SteadyClock::now();
  for (std::size_t slot = 0; slot < out_channels_.size(); ++slot) {
    if (out_reconnect_at_[slot] <= now) rel_try_reconnect(slot);
  }
  while (!delayed_.empty() && delayed_.begin()->first <= now) {
    const DelayedWire wire = delayed_.begin()->second;
    delayed_.erase(delayed_.begin());
    // No second fault roll: the frame already paid its delay.
    if (wire.is_ack) {
      rel_write_ack_frame(wire.slot);
    } else {
      rel_write_data(wire.slot, wire.seq);
    }
  }
  for (std::size_t slot = 0; slot < out_channels_.size(); ++slot) {
    for (const std::uint64_t seq : rel_send_[slot].due(runtime_.now())) {
      runtime_.metrics_.on_retransmit();
      rel_transmit(slot, seq);
    }
  }
}

SteadyClock::time_point TcpRuntime::Worker::rel_next_deadline() const {
  auto deadline = SteadyClock::time_point::max();
  for (const auto at : out_reconnect_at_) {
    if (at < deadline) deadline = at;
  }
  if (!delayed_.empty() && delayed_.begin()->first < deadline) {
    deadline = delayed_.begin()->first;
  }
  for (const auto& sender : rel_send_) {
    if (const auto next = sender.next_deadline()) {
      const auto when = runtime_.epoch_ + std::chrono::nanoseconds(next->ns);
      if (when < deadline) deadline = when;
    }
  }
  return deadline;
}

void TcpRuntime::Worker::rel_reactor() {
  // The poll set is rebuilt every iteration: in-fds get replaced by
  // reconnecting peers, out-fds by our own re-dials, and the listener must
  // always be watched for those dials.  refs[i] says what fds[i] is.
  struct FdRef {
    std::uint8_t type = 0;  // 0 = wake pipe, 1 = in, 2 = listener, 3 = out
    std::size_t slot = 0;
  };
  std::vector<pollfd> fds;
  std::vector<FdRef> refs;
  std::deque<std::function<void(ProcessContext&, Process&)>> batch;
  while (!stopping_.load()) {
    poll_iterations_.fetch_add(1, std::memory_order_relaxed);
    fds.clear();
    refs.clear();
    fds.push_back(pollfd{pipe_read_, POLLIN, 0});
    refs.push_back(FdRef{0, 0});
    for (std::size_t slot = 0; slot < in_fds_.size(); ++slot) {
      if (in_fds_[slot] < 0) continue;
      fds.push_back(pollfd{in_fds_[slot], POLLIN, 0});
      refs.push_back(FdRef{1, slot});
    }
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    refs.push_back(FdRef{2, 0});
    for (std::size_t slot = 0; slot < out_channels_.size(); ++slot) {
      const int fd =
          runtime_.channel_fd_[out_channels_[slot].value()].load();
      if (fd < 0) continue;
      // Watched for acks flowing backwards (and for EOF on peer loss).
      fds.push_back(pollfd{fd, POLLIN, 0});
      refs.push_back(FdRef{3, slot});
    }

    const int timeout = poll_timeout_ms();
    const int ready = ::poll(fds.data(), fds.size(), timeout);
    if (ready < 0 && errno != EINTR) break;

    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      switch (refs[i].type) {
        case 0: {
          std::uint8_t sink[256];
          (void)!::read(pipe_read_, sink, sizeof(sink));
          break;
        }
        case 1:
          if (!drain_fd(refs[i].slot)) {
            // Peer's send side went away (injected reset or real close):
            // quarantine the fd and wait for the reconnect dial.
            retire_out_fd(in_fds_[refs[i].slot]);
            in_fds_[refs[i].slot] = -1;
          }
          break;
        case 2:
          accept_runtime_connection();
          break;
        case 3:
          rel_on_ack_fd(refs[i].slot);
          break;
      }
    }

    {
      std::lock_guard<std::mutex> guard{mutex_};
      batch.swap(closures_);
    }
    for (auto& closure : batch) closure(*context_, *process_);
    batch.clear();

    fire_due_timers();
    rel_fire_due();
    flush_sends();
  }
  flush_sends();
}

// ---------------------------------------------------------------------------
// TcpRuntime
// ---------------------------------------------------------------------------

TcpRuntime::TcpRuntime(Topology topology, std::vector<ProcessPtr> processes,
                       TcpRuntimeConfig config)
    : topology_(std::move(topology)),
      config_(config),
      metrics_("tcp", topology_.num_processes(), channel_meta(topology_)) {
  DDBG_ASSERT(processes.size() == topology_.num_processes(),
              "one Process per topology process required");
  Rng root(config_.seed);
  workers_.reserve(processes.size());
  for (std::size_t i = 0; i < processes.size(); ++i) {
    workers_.push_back(std::make_unique<Worker>(
        *this, ProcessId(static_cast<std::uint32_t>(i)),
        std::move(processes[i]), root.fork()));
  }
  channel_fd_ = std::vector<std::atomic<int>>(topology_.num_channels());
  for (auto& fd : channel_fd_) fd.store(-1, std::memory_order_relaxed);
  epoch_ = SteadyClock::now();
}

TcpRuntime::~TcpRuntime() {
  shutdown();
  for (auto& slot : channel_fd_) {
    const int fd = slot.exchange(-1);
    if (fd >= 0) ::close(fd);
  }
}

bool TcpRuntime::start() {
  DDBG_ASSERT(!started_.exchange(true), "TcpRuntime::start called twice");
  for (auto& worker : workers_) {
    if (!worker->init_sockets()) return false;
  }
  // Connect every channel: source dials destination's listener and sends
  // the channel-id hello.  Backlogs hold the pending connections until the
  // destinations accept below.
  for (const ChannelSpec& spec : topology_.channels()) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(workers_[spec.destination.value()]->port());
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return false;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const std::uint32_t channel_id = spec.id.value();
    std::uint8_t hello[4];
    std::memcpy(hello, &channel_id, sizeof(channel_id));
    if (!write_all(fd, hello, sizeof(hello))) {
      ::close(fd);
      return false;
    }
    channel_fd_[spec.id.value()].store(fd);
  }
  for (auto& worker : workers_) {
    if (!worker->accept_inbound()) return false;
  }
  epoch_ = SteadyClock::now();
  for (auto& worker : workers_) worker->start();
  return true;
}

void TcpRuntime::shutdown() {
  if (stopped_.exchange(true)) return;
  for (auto& worker : workers_) worker->request_stop();
  // Unblock any process thread stuck in a blocking send: half-close every
  // channel so pending writes fail instead of waiting for a reader that is
  // itself shutting down.  ::shutdown (unlike ::close) is safe while
  // another thread uses the fd, and pending inbox data is dropped by
  // contract.
  for (const auto& slot : channel_fd_) {
    const int fd = slot.load();
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& worker : workers_) worker->stop_and_join();
}

void TcpRuntime::post(ProcessId target,
                      std::function<void(ProcessContext&, Process&)> action) {
  DDBG_ASSERT(target.value() < workers_.size(), "unknown process");
  workers_[target.value()]->push_closure(std::move(action));
}

bool TcpRuntime::wait_until(const std::function<bool()>& condition,
                            Duration timeout) {
  const auto deadline =
      SteadyClock::now() + std::chrono::nanoseconds(timeout.ns);
  while (!condition()) {
    if (SteadyClock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  return true;
}

Process& TcpRuntime::process(ProcessId id) {
  DDBG_ASSERT(id.value() < workers_.size(), "unknown process");
  return workers_[id.value()]->process();
}

TimePoint TcpRuntime::now() const {
  const auto elapsed = SteadyClock::now() - epoch_;
  return TimePoint{
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()};
}

void TcpRuntime::do_send(ProcessId sender, ChannelId channel,
                         Message message) {
  const ChannelSpec& spec = topology_.channel(channel);
  DDBG_ASSERT(spec.source == sender,
              "process may only send on its own outgoing channels");
  if (message.message_id == 0) {
    message.message_id = next_message_id_.fetch_add(1);
  }
  if (config_.faults) {
    // Reliability path: stage in the sending worker's retransmit window
    // and transmit under the fault plan.  The channel fd is legitimately
    // -1 mid-reconnect; the window replays once the new connection is up.
    workers_[sender.value()]->rel_send_message(channel, message);
    return;
  }
  const int fd = channel_fd_[channel.value()].load();
  DDBG_ASSERT(fd >= 0, "channel not connected");
  // do_send runs on the sender's own worker thread, so the frame encodes
  // into that worker's pooled buffer and queues for the next flush: a
  // handler emitting several messages pays one gathered write, and
  // steady-state sends allocate nothing.
  workers_[sender.value()]->stage_send(channel, fd, message);
}

void TcpRuntime::half_close_channel(ChannelId channel) {
  DDBG_ASSERT(channel.value() < channel_fd_.size(), "unknown channel");
  const int fd = channel_fd_[channel.value()].load();
  if (fd >= 0) ::shutdown(fd, SHUT_WR);
}

std::uint64_t TcpRuntime::poll_iterations() const {
  std::uint64_t total = 0;
  for (const auto& worker : workers_) total += worker->poll_iterations();
  return total;
}

}  // namespace ddbg
