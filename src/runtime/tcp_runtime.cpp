#include "runtime/tcp_runtime.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <thread>
#include <unordered_map>

#include "common/buffer_pool.hpp"
#include "common/logging.hpp"
#include "common/serialization.hpp"
#include "net/framing.hpp"
#include "net/reliable.hpp"

namespace ddbg {

namespace {

using SteadyClock = std::chrono::steady_clock;

// Replay-log annotation for transport-level nondeterminism (fault draws,
// reconnects, resyncs).  Diagnostic provenance only — the null check keeps
// unrecorded runs untouched.
void annotate(const std::shared_ptr<ReplaySink>& sink, std::uint8_t kind,
              ChannelId channel, std::uint64_t detail) {
  if (sink != nullptr) sink->record_annotation(kind, channel, detail);
}

// Every frame body starts with the 4-byte channel id it belongs to — the
// demultiplexing key on a shared pair socket.
constexpr std::size_t kChannelPrefixSize = 4;

// Adaptive write budget: the most bytes one gathered sendmsg may carry.
// Starts small (a handler burst fits in one call), doubles while the pair
// stays backpressured, and decays once the queue drains.
constexpr std::size_t kWriteBudgetMin = 16 * 1024;
constexpr std::size_t kWriteBudgetMax = 1024 * 1024;
// Frames per gathered write; a cap on iovec array size, not on batching —
// the reactor loops until the budget or the socket buffer is exhausted.
constexpr std::size_t kMaxWriteIov = 64;

constexpr int kMaxEpollEvents = 64;

// epoll user-data tags for the non-pair fds; pair connections use their
// slot index directly.
constexpr std::uint64_t kTagWake = ~std::uint64_t{0};
constexpr std::uint64_t kTagListen = ~std::uint64_t{0} - 1;
// Debugger-session control listener (config.on_control_accept).
constexpr std::uint64_t kTagControl = ~std::uint64_t{0} - 2;

// Write the whole buffer on a *blocking* fd, retrying on short writes.
// Only the tiny connection hellos use this; data flows through the
// nonblocking reactor path.  MSG_NOSIGNAL: a dead peer must fail the
// send, not SIGPIPE the process.
bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n =
        ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

void apply_pair_socket_options(int fd, const TcpRuntimeConfig& config) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (config.sndbuf_bytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config.sndbuf_bytes,
                 sizeof(config.sndbuf_bytes));
  }
  if (config.rcvbuf_bytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &config.rcvbuf_bytes,
                 sizeof(config.rcvbuf_bytes));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

class TcpProcessContext;

class TcpRuntime::Worker {
 public:
  Worker(TcpRuntime& runtime, ProcessId id, ProcessPtr process, Rng rng);
  ~Worker();

  bool init_sockets();           // create listener + wake pipe
  [[nodiscard]] std::uint16_t port() const { return port_; }
  // Bind the debugger-session control listener on this worker (runs in
  // start(), before any thread launches).
  bool init_control_listener();
  [[nodiscard]] std::uint16_t control_port() const { return control_port_; }
  // Accept the startup connection for every pair this worker is the
  // acceptor side of.
  bool accept_inbound();

  void start();
  void stop_and_join();
  void request_stop();

  void push_closure(std::function<void(ProcessContext&, Process&)> action);
  TimerId add_timer(Duration delay);
  void cancel_timer(TimerId timer);

  // Encode `message` into a pooled frame (channel id + body) and queue it
  // on the channel's pair connection.  Runs on this worker's own thread
  // only (the sender's), like all sends.
  void stage_send(ChannelId channel, const Message& message);

  // Reliability-layer entry point for do_send (runtime_.config_.faults
  // only): stage in the retransmit window and attempt transmission under
  // the fault plan.  Runs on this worker's own thread.
  void rel_send_message(ChannelId channel, const Message& message);

  [[nodiscard]] Process& process() { return *process_; }
  [[nodiscard]] TcpRuntime& runtime() { return runtime_; }
  [[nodiscard]] ProcessId id() const { return id_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] std::uint64_t poll_iterations() const {
    return poll_iterations_.load(std::memory_order_relaxed);
  }

 private:
  // One multiplexed connection endpoint.  Slots are stable for the
  // worker's lifetime; only the fd inside comes and goes (epoll interest
  // follows it, so a dead fd is never re-polled).
  struct PairConn {
    std::uint32_t pair = 0;
    std::uint8_t side = 0;  // 0 = dialer end (pair.a), 1 = acceptor end
    int fd = -1;
    bool read_open = false;
    bool write_open = false;
    bool want_write = false;      // EPOLLOUT armed (queue hit EAGAIN)
    std::uint32_t epoll_mask = 0;  // currently registered interest
    std::size_t write_budget = kWriteBudgetMin;
    FrameParser parser;
    struct QueuedFrame {
      ChannelId channel;
      BufferPool::Lease frame;
    };
    std::deque<QueuedFrame> outq;
    std::size_t front_offset = 0;  // bytes of outq.front() already written
    SteadyClock::time_point blocked_since{};
    ChannelId blocked_channel{};
    // Dialer-side redial backoff; max() = no redial scheduled.
    SteadyClock::time_point reconnect_at = SteadyClock::time_point::max();
  };

  void thread_main();
  void wake();
  void setup_conns();
  void setup_epoll();
  void update_epoll_interest(std::size_t slot);
  void epoll_add_conn(std::size_t slot);
  void handle_readable(std::size_t slot, std::uint32_t events);
  void parse_pair_frames(std::size_t slot);
  void fire_due_timers();
  [[nodiscard]] int next_timeout_ms();

  // ---- send path ----
  void queue_frame(ChannelId channel, BufferPool::Lease frame);
  void queue_frame_on(std::size_t slot, ChannelId channel,
                      BufferPool::Lease frame);
  void flush_sends();
  void try_flush(std::size_t slot);
  void continue_flush(std::size_t slot);
  // Retire fully written frames against `written` bytes; returns how many
  // frames completed.
  std::size_t advance_out_queue(PairConn& conn, std::size_t written);
  void fail_write_side(std::size_t slot);

  // ---- connection lifecycle ----
  // Tear the pair endpoint down (epoll DEL, quarantine the fd, flush
  // state).  With faults, the dialer side schedules a redial and the
  // acceptor side waits for the peer's dial.
  void conn_down(std::size_t slot, bool count_loss);
  void retire_fd_from_epoll(int fd);

  // ---- reliability layer (runtime_.config_.faults only) ----
  [[nodiscard]] std::size_t out_slot(ChannelId channel) const;
  void rel_transmit(std::size_t slot, std::uint64_t seq);
  void rel_write_data(std::size_t slot, std::uint64_t seq);
  void rel_write_ack(std::size_t in_slot, std::size_t conn_slot);
  void rel_write_ack_frame(std::size_t in_slot, std::size_t conn_slot);
  void rel_try_reconnect(std::size_t slot);
  void rel_fire_due();
  void resync_pair(std::uint32_t pair);
  [[nodiscard]] SteadyClock::time_point rel_next_deadline() const;
  void accept_runtime_connection();
  void accept_control_connections();

  TcpRuntime& runtime_;
  ProcessId id_;
  ProcessPtr process_;
  Rng rng_;
  std::unique_ptr<TcpProcessContext> context_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  int control_listen_fd_ = -1;
  std::uint16_t control_port_ = 0;
  int pipe_read_ = -1;
  int pipe_write_ = -1;
  int epoll_fd_ = -1;

  // Declared before conns_: the queued frames in PairConn hold leases that
  // recycle into this pool when destroyed, so the pool must outlive them.
  BufferPool pool_;

  // deque, not vector: PairConn holds move-only pooled leases and must
  // never be relocated (epoll events reference slots by index).
  std::deque<PairConn> conns_;
  // pair index -> the conn slot this worker sends on (side 0 for a
  // self-pair, the worker's only side otherwise).
  std::unordered_map<std::uint32_t, std::uint32_t> send_slot_of_pair_;
  // Demultiplexing tables: channel id -> dense slot in the in/out arrays.
  std::unordered_map<std::uint32_t, std::uint32_t> in_slot_of_channel_;
  std::unordered_map<std::uint32_t, std::uint32_t> out_slot_of_channel_;
  std::vector<ChannelId> in_channels_;
  std::vector<ChannelId> out_channels_;

  std::size_t frames_this_wakeup_ = 0;
  // Scratch: in-slots that received data in the current parse batch (one
  // cumulative ack each).
  std::vector<std::uint32_t> ack_pending_;

  // Reliability state; sized only when a FaultPlan is configured.
  std::vector<ReliableSender> rel_send_;   // by out slot
  std::vector<std::uint64_t> out_attempts_;  // data fault stream, by out slot
  std::vector<ReliableReceiver> in_recv_;    // by in slot
  std::vector<std::uint64_t> in_ack_attempts_;  // ack fault stream
  // Frames held back by delay/reorder faults, fired by the reactor.
  struct DelayedWire {
    bool is_ack = false;
    std::size_t slot = 0;       // out slot (data) / in slot (ack)
    std::size_t conn_slot = 0;  // ack only: the conn the data arrived on
    std::uint64_t seq = 0;      // data only
  };
  std::multimap<SteadyClock::time_point, DelayedWire> delayed_;
  // Replaced connection fds are shut down but closed only at destruction,
  // so a racing shutdown() snapshot of pair_fd_ can never hit a reused
  // descriptor number.
  std::vector<int> retired_fds_;

  std::mutex mutex_;
  std::deque<std::function<void(ProcessContext&, Process&)>> closures_;
  std::map<std::pair<SteadyClock::time_point, std::uint32_t>, TimerId>
      timers_;
  std::unordered_map<std::uint32_t, SteadyClock::time_point> timer_deadline_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> poll_iterations_{0};

  std::thread thread_;
};

class TcpProcessContext final : public ProcessContext {
 public:
  explicit TcpProcessContext(TcpRuntime::Worker& worker) : worker_(worker) {}

  [[nodiscard]] ProcessId self() const override { return worker_.id(); }
  [[nodiscard]] TimePoint now() const override {
    return worker_.runtime().now();
  }
  [[nodiscard]] const Topology& topology() const override {
    return worker_.runtime().topology();
  }
  void send(ChannelId channel, Message message) override {
    worker_.runtime().do_send(worker_.id(), channel, std::move(message));
  }
  TimerId set_timer(Duration delay) override {
    return worker_.add_timer(delay);
  }
  void cancel_timer(TimerId timer) override { worker_.cancel_timer(timer); }
  [[nodiscard]] Rng& rng() override { return worker_.rng(); }
  [[nodiscard]] obs::MetricsRegistry* metrics() const override {
    return &worker_.runtime().metrics();
  }
  void stop_self() override {}

 private:
  TcpRuntime::Worker& worker_;
};

TcpRuntime::Worker::Worker(TcpRuntime& runtime, ProcessId id,
                           ProcessPtr process, Rng rng)
    : runtime_(runtime), id_(id), process_(std::move(process)), rng_(rng) {
  context_ = std::make_unique<TcpProcessContext>(*this);
  for (const ChannelId channel : runtime_.topology_.out_channels(id_)) {
    out_slot_of_channel_.emplace(
        channel.value(), static_cast<std::uint32_t>(out_channels_.size()));
    out_channels_.push_back(channel);
  }
  for (const ChannelId channel : runtime_.topology_.in_channels(id_)) {
    in_slot_of_channel_.emplace(
        channel.value(), static_cast<std::uint32_t>(in_channels_.size()));
    in_channels_.push_back(channel);
  }
  if (runtime_.config_.faults) {
    rel_send_.assign(out_channels_.size(),
                     ReliableSender(runtime_.config_.reliable));
    out_attempts_.assign(out_channels_.size(), 0);
    in_recv_.resize(in_channels_.size());
    in_ack_attempts_.assign(in_channels_.size(), 0);
  }
}

TcpRuntime::Worker::~Worker() {
  stop_and_join();
  for (PairConn& conn : conns_) close_fd(conn.fd);
  for (int& fd : retired_fds_) close_fd(fd);
  close_fd(listen_fd_);
  close_fd(control_listen_fd_);
  close_fd(pipe_read_);
  close_fd(pipe_write_);
  close_fd(epoll_fd_);
}

bool TcpRuntime::Worker::init_sockets() {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return false;
  pipe_read_ = pipe_fds[0];
  pipe_write_ = pipe_fds[1];
  if (!set_nonblocking(pipe_read_)) return false;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return false;
  }
  // start() dials every pair before any worker accepts, so the backlog
  // must hold this worker's whole acceptor-side fan-in.
  if (::listen(listen_fd_, 1024) != 0) return false;
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return false;
  }
  port_ = ntohs(addr.sin_port);
  return true;
}

bool TcpRuntime::Worker::init_control_listener() {
  control_listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (control_listen_fd_ < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(control_listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return false;
  }
  if (::listen(control_listen_fd_, 64) != 0) return false;
  socklen_t len = sizeof(addr);
  if (::getsockname(control_listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0) {
    return false;
  }
  // Nonblocking so the reactor's accept loop can drain until EAGAIN.
  if (!set_nonblocking(control_listen_fd_)) return false;
  control_port_ = ntohs(addr.sin_port);
  return true;
}

bool TcpRuntime::Worker::accept_inbound() {
  std::size_t expected = 0;
  for (const std::uint32_t p : runtime_.pairs_of_process_[id_.value()]) {
    if (runtime_.pairs_[p].b == id_.value()) ++expected;
  }
  for (std::size_t i = 0; i < expected; ++i) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return false;
    // Hello frame: the 4-byte pair index this connection realizes.
    std::uint8_t hello[4];
    std::size_t got = 0;
    while (got < sizeof(hello)) {
      const ssize_t n = ::read(fd, hello + got, sizeof(hello) - got);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        ::close(fd);
        return false;
      }
      got += static_cast<std::size_t>(n);
    }
    std::uint32_t pair = 0;
    std::memcpy(&pair, hello, sizeof(pair));
    if (pair >= runtime_.pairs_.size() ||
        runtime_.pairs_[pair].b != id_.value()) {
      ::close(fd);
      return false;
    }
    apply_pair_socket_options(fd, runtime_.config_);
    if (!set_nonblocking(fd)) {
      ::close(fd);
      return false;
    }
    runtime_.pair_fd_[2 * pair + 1].store(fd);
  }
  return true;
}

void TcpRuntime::Worker::start() {
  thread_ = std::thread([this] { thread_main(); });
}

void TcpRuntime::Worker::request_stop() {
  stopping_.store(true);
  wake();
}

void TcpRuntime::Worker::stop_and_join() {
  request_stop();
  if (thread_.joinable()) thread_.join();
}

void TcpRuntime::Worker::wake() {
  if (pipe_write_ >= 0) {
    const std::uint8_t byte = 1;
    (void)!::write(pipe_write_, &byte, 1);
  }
}

void TcpRuntime::Worker::push_closure(
    std::function<void(ProcessContext&, Process&)> action) {
  {
    std::lock_guard<std::mutex> guard{mutex_};
    closures_.push_back(std::move(action));
  }
  wake();
}

TimerId TcpRuntime::Worker::add_timer(Duration delay) {
  const TimerId id(runtime_.next_timer_id_.fetch_add(1));
  const auto deadline =
      SteadyClock::now() + std::chrono::nanoseconds(delay.ns);
  {
    std::lock_guard<std::mutex> guard{mutex_};
    timers_.emplace(std::make_pair(deadline, id.value()), id);
    timer_deadline_.emplace(id.value(), deadline);
  }
  wake();
  return id;
}

void TcpRuntime::Worker::cancel_timer(TimerId timer) {
  std::lock_guard<std::mutex> guard{mutex_};
  const auto it = timer_deadline_.find(timer.value());
  if (it == timer_deadline_.end()) return;  // already fired or cancelled
  timers_.erase(std::make_pair(it->second, timer.value()));
  timer_deadline_.erase(it);
}

// The single wakeup-deadline computation: pending closures, the nearest
// user timer, and — with faults — every reliability deadline (retransmit
// RTOs, delayed frames, redial backoffs) all clamp the same epoll_wait
// timeout.  A long reconnect backoff can therefore never oversleep a user
// timer or vice versa; whichever deadline is nearest bounds the sleep.
int TcpRuntime::Worker::next_timeout_ms() {
  auto deadline = SteadyClock::time_point::max();
  {
    std::lock_guard<std::mutex> guard{mutex_};
    if (!closures_.empty()) return 0;
    if (!timers_.empty()) deadline = timers_.begin()->first.first;
  }
  if (runtime_.config_.faults) {
    const auto rel = rel_next_deadline();
    if (rel < deadline) deadline = rel;
  }
  if (deadline == SteadyClock::time_point::max()) return -1;
  const auto now = SteadyClock::now();
  if (deadline <= now) return 0;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - now)
                      .count();
  return static_cast<int>(std::min<long long>(ms + 1, 1000));
}

void TcpRuntime::Worker::fire_due_timers() {
  while (true) {
    TimerId due;
    {
      std::lock_guard<std::mutex> guard{mutex_};
      if (timers_.empty() ||
          timers_.begin()->first.first > SteadyClock::now()) {
        return;
      }
      due = timers_.begin()->second;
      timer_deadline_.erase(due.value());
      timers_.erase(timers_.begin());
    }
    process_->on_timer(*context_, due);
  }
}

// ---------------------------------------------------------------------------
// Worker: epoll reactor
// ---------------------------------------------------------------------------

void TcpRuntime::Worker::setup_conns() {
  for (const std::uint32_t p : runtime_.pairs_of_process_[id_.value()]) {
    const HostPair& pair = runtime_.pairs_[p];
    if (pair.a == id_.value()) {
      send_slot_of_pair_[p] = static_cast<std::uint32_t>(conns_.size());
      PairConn& conn = conns_.emplace_back();
      conn.pair = p;
      conn.side = 0;
      conn.fd = runtime_.pair_fd_[2 * p].load();
      conn.read_open = conn.write_open = conn.fd >= 0;
    }
    if (pair.b == id_.value()) {
      // The acceptor end sends here unless this is a self-pair (then side
      // 0, registered above, is the send end and this one only receives).
      if (pair.a != pair.b) {
        send_slot_of_pair_[p] = static_cast<std::uint32_t>(conns_.size());
      }
      PairConn& conn = conns_.emplace_back();
      conn.pair = p;
      conn.side = 1;
      conn.fd = runtime_.pair_fd_[2 * p + 1].load();
      conn.read_open = conn.write_open = conn.fd >= 0;
    }
  }
}

void TcpRuntime::Worker::setup_epoll() {
  epoll_fd_ = ::epoll_create1(0);
  DDBG_ASSERT(epoll_fd_ >= 0, "epoll_create1 failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kTagWake;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, pipe_read_, &ev);
  if (runtime_.config_.faults) {
    // The listener only matters for reconnect dials, which only the fault
    // path performs.
    ev.events = EPOLLIN;
    ev.data.u64 = kTagListen;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  }
  if (control_listen_fd_ >= 0) {
    ev.events = EPOLLIN;
    ev.data.u64 = kTagControl;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, control_listen_fd_, &ev);
  }
  for (std::size_t slot = 0; slot < conns_.size(); ++slot) {
    if (conns_[slot].fd >= 0) epoll_add_conn(slot);
  }
}

void TcpRuntime::Worker::epoll_add_conn(std::size_t slot) {
  PairConn& conn = conns_[slot];
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = slot;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn.fd, &ev);
  conn.epoll_mask = EPOLLIN;
}

void TcpRuntime::Worker::update_epoll_interest(std::size_t slot) {
  PairConn& conn = conns_[slot];
  if (conn.fd < 0) return;
  const std::uint32_t desired = (conn.read_open ? EPOLLIN : 0u) |
                                (conn.want_write ? EPOLLOUT : 0u);
  if (desired == conn.epoll_mask) return;
  epoll_event ev{};
  ev.events = desired;
  ev.data.u64 = slot;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  conn.epoll_mask = desired;
}

void TcpRuntime::Worker::retire_fd_from_epoll(int fd) {
  // shutdown() now, close() at worker destruction: a concurrently running
  // TcpRuntime::shutdown may have snapshotted this fd, and keeping the
  // number allocated guarantees its ::shutdown can never hit a stranger.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::shutdown(fd, SHUT_RDWR);
  retired_fds_.push_back(fd);
}

void TcpRuntime::Worker::conn_down(std::size_t slot, bool count_loss) {
  PairConn& conn = conns_[slot];
  if (conn.fd < 0) return;
  const bool live = !stopping_.load(std::memory_order_relaxed) &&
                    !runtime_.stopped_.load(std::memory_order_relaxed);
  if (count_loss && live) runtime_.metrics_.on_channel_down();
  runtime_.pair_fd_[2 * conn.pair + conn.side].store(-1);
  retire_fd_from_epoll(conn.fd);
  conn.fd = -1;
  conn.read_open = conn.write_open = false;
  conn.want_write = false;
  conn.epoll_mask = 0;
  conn.parser = FrameParser();
  conn.outq.clear();
  conn.front_offset = 0;
  conn.write_budget = kWriteBudgetMin;
  if (runtime_.config_.faults && live && conn.side == 0 &&
      conn.reconnect_at == SteadyClock::time_point::max()) {
    conn.reconnect_at =
        SteadyClock::now() +
        std::chrono::nanoseconds(runtime_.config_.reliable.rto_initial.ns);
  }
}

void TcpRuntime::Worker::handle_readable(std::size_t slot,
                                         std::uint32_t events) {
  PairConn& conn = conns_[slot];
  if (!conn.read_open) {
    // Read side already half-closed: only a full hangup is news (and it
    // must retire the fd, or level-triggered EPOLLHUP would spin).
    if (events & (EPOLLHUP | EPOLLERR)) {
      conn_down(slot, /*count_loss=*/runtime_.config_.faults != nullptr);
    }
    return;
  }
  bool closed = false;
  std::uint8_t chunk[4096];
  while (true) {
    const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (n > 0) {
      conn.parser.append(
          std::span<const std::uint8_t>(chunk, static_cast<std::size_t>(n)));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // Peer closed its write side (or error): nothing more arrives here.
    closed = true;
    break;
  }
  parse_pair_frames(slot);
  if (conn.parser.corrupt()) {
    DDBG_ERROR() << "tcp: frame length " << conn.parser.rejected_frame_len()
                 << " exceeds cap on pair " << conn.pair
                 << "; dropping connection";
    conn_down(slot, /*count_loss=*/true);
    return;
  }
  if (!closed) return;
  if (runtime_.config_.faults) {
    // Connection loss under reliability: quarantine and reconnect-with-
    // resync (the dialer side redials, this side may be either).
    conn_down(slot, /*count_loss=*/true);
    return;
  }
  // Bare mode: a half-closed peer stops our reading but the reverse
  // direction may still flow.  Drop EPOLLIN so EOF cannot busy-spin the
  // reactor; a later full hangup retires the fd above.
  conn.read_open = false;
  if (!conn.write_open) {
    conn_down(slot, /*count_loss=*/false);
    return;
  }
  update_epoll_interest(slot);
}

void TcpRuntime::Worker::parse_pair_frames(std::size_t slot) {
  PairConn& conn = conns_[slot];
  FrameParser& parser = conn.parser;
  std::size_t delivered = 0;
  ack_pending_.clear();
  while (const auto body = parser.next()) {
    ++frames_this_wakeup_;
    if (body->size() < kChannelPrefixSize) continue;
    ByteReader reader(*body);
    std::uint32_t channel_id = 0;
    {
      const auto ch = reader.u32();
      if (!ch.ok()) continue;
      channel_id = ch.value();
    }
    if (!runtime_.config_.faults) {
      const auto it = in_slot_of_channel_.find(channel_id);
      if (it == in_slot_of_channel_.end()) {
        DDBG_ERROR() << "tcp: frame for foreign channel " << channel_id
                     << " on pair " << conn.pair;
        continue;
      }
      const ChannelId channel = in_channels_[it->second];
      auto message = Message::decode(reader);
      if (!message.ok()) {
        DDBG_ERROR() << "tcp: bad frame on " << to_string(channel) << ": "
                     << message.error().to_string();
        continue;
      }
      ++delivered;
      runtime_.metrics_.on_deliver(
          channel_id, traffic_class(message.value().kind),
          static_cast<std::uint32_t>(body->size() - kChannelPrefixSize));
      runtime_.metrics_.observe_backlog(channel_id, parser.buffered_bytes());
      process_->on_message(*context_, channel,
                           std::move(message).value());
      continue;
    }
    auto header = RelHeader::decode(reader);
    if (!header.ok()) {
      DDBG_ERROR() << "tcp: bad reliable frame on channel " << channel_id
                   << ": " << header.error().to_string();
      continue;
    }
    if (header.value().tag == RelHeader::kAck) {
      const auto it = out_slot_of_channel_.find(channel_id);
      if (it == out_slot_of_channel_.end()) continue;
      rel_send_[it->second].ack(header.value().cum_ack);
      continue;
    }
    const auto it = in_slot_of_channel_.find(channel_id);
    if (it == in_slot_of_channel_.end()) {
      DDBG_ERROR() << "tcp: frame for foreign channel " << channel_id
                   << " on pair " << conn.pair;
      continue;
    }
    const std::uint32_t in_idx = it->second;
    const ChannelId channel = in_channels_[in_idx];
    auto message = Message::decode(reader);
    if (!message.ok()) {
      DDBG_ERROR() << "tcp: bad frame on " << to_string(channel) << ": "
                   << message.error().to_string();
      continue;
    }
    const std::uint64_t wire =
        body->size() - kChannelPrefixSize - kRelHeaderSize;
    static thread_local std::vector<ReliableReceiver::Delivery> releases;
    releases.clear();
    const auto accept = in_recv_[in_idx].on_frame(
        header.value().seq, std::move(message).value(), wire, releases);
    if (accept == ReliableReceiver::Accept::kDuplicate) {
      runtime_.metrics_.on_dup_suppressed();
    }
    for (auto& release : releases) {
      ++delivered;
      runtime_.metrics_.on_deliver(
          channel_id, traffic_class(release.message.kind),
          static_cast<std::uint32_t>(release.meta));
      process_->on_message(*context_, channel, std::move(release.message));
    }
    runtime_.metrics_.observe_backlog(channel_id, parser.buffered_bytes());
    if (std::find(ack_pending_.begin(), ack_pending_.end(), in_idx) ==
        ack_pending_.end()) {
      ack_pending_.push_back(in_idx);
    }
  }
  // One cumulative ack per channel per drained batch — it carries the
  // furthest in-order point whether the batch delivered, buffered or
  // suppressed.
  for (const std::uint32_t in_idx : ack_pending_) {
    rel_write_ack(in_idx, slot);
  }
  ack_pending_.clear();
  if (delivered > 0) runtime_.metrics_.on_deliver_batch(delivered);
}

void TcpRuntime::Worker::thread_main() {
  setup_conns();
  setup_epoll();
  process_->on_start(*context_);
  flush_sends();

  epoll_event events[kMaxEpollEvents];
  std::deque<std::function<void(ProcessContext&, Process&)>> batch;
  while (!stopping_.load()) {
    poll_iterations_.fetch_add(1, std::memory_order_relaxed);
    const int timeout = next_timeout_ms();
    const int ready =
        ::epoll_wait(epoll_fd_, events, kMaxEpollEvents, timeout);
    if (ready < 0 && errno != EINTR) break;
    runtime_.metrics_.on_epoll_wakeup();
    frames_this_wakeup_ = 0;

    for (int i = 0; i < ready; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kTagWake) {
        std::uint8_t sink[256];
        while (::read(pipe_read_, sink, sizeof(sink)) > 0) {
        }
        continue;
      }
      if (tag == kTagListen) {
        accept_runtime_connection();
        continue;
      }
      if (tag == kTagControl) {
        accept_control_connections();
        continue;
      }
      const auto slot = static_cast<std::size_t>(tag);
      if (slot >= conns_.size() || conns_[slot].fd < 0) continue;
      if (events[i].events & EPOLLOUT) continue_flush(slot);
      if (conns_[slot].fd >= 0 &&
          (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR))) {
        handle_readable(slot, events[i].events);
      }
    }

    // Run queued closures: swap the whole queue out under one lock and
    // dispatch the batch lock-free while posters refill a fresh deque.
    {
      std::lock_guard<std::mutex> guard{mutex_};
      batch.swap(closures_);
    }
    for (auto& closure : batch) closure(*context_, *process_);
    batch.clear();

    fire_due_timers();
    if (runtime_.config_.faults) rel_fire_due();

    // Everything handlers staged this iteration is offered to the kernel
    // before the next sleep; whatever does not fit parks on EPOLLOUT.
    flush_sends();
    if (frames_this_wakeup_ > 0) {
      runtime_.metrics_.observe_frames_per_wakeup(frames_this_wakeup_);
    }
  }
  flush_sends();
}

// ---------------------------------------------------------------------------
// Worker: send path
// ---------------------------------------------------------------------------

void TcpRuntime::Worker::stage_send(ChannelId channel,
                                    const Message& message) {
  BufferPool::Lease lease = pool_.acquire();
  runtime_.metrics_.on_pool_acquire(lease.reused());
  Bytes& frame = lease.bytes();
  const std::size_t header_at = begin_frame(frame);
  ByteWriter writer(frame);
  writer.u32(channel.value());
  message.encode(writer);
  end_frame(frame, header_at);
  // Wire bytes exclude the frame prefix and the channel id so byte
  // accounting stays identical across the sim/threads/tcp substrates.
  runtime_.metrics_.on_send(
      channel.value(), traffic_class(message.kind),
      static_cast<std::uint32_t>(frame.size() - kFrameHeaderSize -
                                 kChannelPrefixSize));
  queue_frame(channel, std::move(lease));
}

void TcpRuntime::Worker::queue_frame(ChannelId channel,
                                     BufferPool::Lease frame) {
  const std::uint32_t pair = runtime_.channel_pair_[channel.value()];
  const auto it = send_slot_of_pair_.find(pair);
  DDBG_ASSERT(it != send_slot_of_pair_.end(),
              "send on a pair this worker does not own");
  queue_frame_on(it->second, channel, std::move(frame));
}

void TcpRuntime::Worker::queue_frame_on(std::size_t slot, ChannelId channel,
                                        BufferPool::Lease frame) {
  PairConn& conn = conns_[slot];
  if (!conn.write_open) {
    // Bare mode: the loss was counted when the write side died; with
    // faults the retransmit window replays once the pair reconnects.
    return;
  }
  conn.outq.push_back(PairConn::QueuedFrame{channel, std::move(frame)});
}

std::size_t TcpRuntime::Worker::advance_out_queue(PairConn& conn,
                                                  std::size_t written) {
  std::size_t retired = 0;
  while (written > 0 && !conn.outq.empty()) {
    const std::size_t remaining =
        conn.outq.front().frame.bytes().size() - conn.front_offset;
    if (written >= remaining) {
      written -= remaining;
      conn.front_offset = 0;
      conn.outq.pop_front();
      ++retired;
    } else {
      conn.front_offset += written;
      written = 0;
    }
  }
  return retired;
}

void TcpRuntime::Worker::fail_write_side(std::size_t slot) {
  PairConn& conn = conns_[slot];
  const bool live = !stopping_.load(std::memory_order_relaxed) &&
                    !runtime_.stopped_.load(std::memory_order_relaxed);
  if (runtime_.config_.faults) {
    // Nothing is lost: every data frame is still staged in its retransmit
    // window, so tear the pair down and let reconnect-with-resync replay.
    conn_down(slot, /*count_loss=*/true);
    return;
  }
  if (live) {
    // Bare-TCP mode has no retransmit window: the queued frames are lost
    // with the connection.  Count the event so tests and operators see
    // the drop instead of relying on a log line.
    runtime_.metrics_.on_channel_down();
    DDBG_ERROR() << "tcp: write failed on pair " << conn.pair;
  }
  conn.write_open = false;
  conn.want_write = false;
  conn.outq.clear();
  conn.front_offset = 0;
  if (!conn.read_open) {
    conn_down(slot, /*count_loss=*/false);
    return;
  }
  update_epoll_interest(slot);
}

void TcpRuntime::Worker::try_flush(std::size_t slot) {
  PairConn& conn = conns_[slot];
  while (conn.fd >= 0 && conn.write_open && !conn.outq.empty()) {
    // Gather frames under the adaptive byte budget (always at least the
    // remainder of the front frame, so progress is guaranteed).
    iovec iov[kMaxWriteIov];
    std::size_t count = 0;
    std::size_t total = 0;
    for (PairConn::QueuedFrame& queued : conn.outq) {
      if (count == kMaxWriteIov) break;
      Bytes& bytes = queued.frame.bytes();
      const std::size_t offset = count == 0 ? conn.front_offset : 0;
      iov[count].iov_base = bytes.data() + offset;
      iov[count].iov_len = bytes.size() - offset;
      total += iov[count].iov_len;
      ++count;
      if (total >= conn.write_budget) break;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = count;
    // The send-blocked clock brackets the syscall; on a nonblocking fd it
    // is ~0, and the real wedge time (EPOLLOUT armed -> queue drained) is
    // added in continue_flush when the backpressure clears.
    const ChannelId front_channel = conn.outq.front().channel;
    const auto write_start = SteadyClock::now();
    const ssize_t n = ::sendmsg(conn.fd, &msg, MSG_NOSIGNAL);
    runtime_.metrics_.add_send_blocked(
        front_channel.value(),
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            SteadyClock::now() - write_start)
            .count());
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Socket buffer full: park the queue on EPOLLOUT instead of
        // spinning — the reactor resumes the flush when space frees up.
        runtime_.metrics_.on_eagain_deferral();
        if (!conn.want_write) {
          conn.want_write = true;
          conn.blocked_since = SteadyClock::now();
          conn.blocked_channel = front_channel;
          update_epoll_interest(slot);
        }
        return;
      }
      fail_write_side(slot);
      return;
    }
    const auto written = static_cast<std::size_t>(n);
    const std::size_t retired = advance_out_queue(conn, written);
    if (retired > 0) runtime_.metrics_.on_write_batch(retired);
    if (written < total) {
      // Partial write: the kernel buffer is full mid-frame.  Same
      // deferral as EAGAIN, and sustained backpressure earns a bigger
      // budget so the next writable window moves more per syscall.
      runtime_.metrics_.on_eagain_deferral();
      conn.write_budget = std::min(conn.write_budget * 2, kWriteBudgetMax);
      if (!conn.want_write) {
        conn.want_write = true;
        conn.blocked_since = SteadyClock::now();
        conn.blocked_channel = front_channel;
        update_epoll_interest(slot);
      }
      return;
    }
    if (!conn.outq.empty()) {
      // Budget-limited, not kernel-limited: grow and keep draining.
      conn.write_budget = std::min(conn.write_budget * 2, kWriteBudgetMax);
    }
  }
  if (conn.outq.empty()) {
    conn.write_budget = std::max(conn.write_budget / 2, kWriteBudgetMin);
    if (conn.want_write) {
      conn.want_write = false;
      runtime_.metrics_.add_send_blocked(
          conn.blocked_channel.value(),
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              SteadyClock::now() - conn.blocked_since)
              .count());
      update_epoll_interest(slot);
    }
  }
}

void TcpRuntime::Worker::continue_flush(std::size_t slot) {
  try_flush(slot);
}

void TcpRuntime::Worker::flush_sends() {
  for (std::size_t slot = 0; slot < conns_.size(); ++slot) {
    if (!conns_[slot].outq.empty() && !conns_[slot].want_write) {
      try_flush(slot);
    }
  }
}

// ---------------------------------------------------------------------------
// Worker: reliability layer
// ---------------------------------------------------------------------------

std::size_t TcpRuntime::Worker::out_slot(ChannelId channel) const {
  const auto it = out_slot_of_channel_.find(channel.value());
  DDBG_ASSERT(it != out_slot_of_channel_.end(),
              "channel is not sourced by this worker");
  return it->second;
}

void TcpRuntime::Worker::rel_send_message(ChannelId channel,
                                          const Message& message) {
  const std::size_t slot = out_slot(channel);
  // Bytes accounted once per logical send, like the bare-TCP path; the
  // wire frame itself is rebuilt per transmission attempt, and the size is
  // stashed alongside the staged message so retransmissions never
  // re-measure.
  const std::uint64_t wire = message.encoded_size();
  runtime_.metrics_.on_send(channel.value(), traffic_class(message.kind),
                            static_cast<std::uint32_t>(wire));
  const std::uint64_t seq =
      rel_send_[slot].stage(message, wire, runtime_.now());
  rel_transmit(slot, seq);
}

void TcpRuntime::Worker::rel_transmit(std::size_t slot, std::uint64_t seq) {
  if (rel_send_[slot].peek(seq) == nullptr) return;  // acked meanwhile
  const ChannelId channel = out_channels_[slot];
  const std::uint64_t attempt = out_attempts_[slot]++;
  const FaultDecision fault =
      runtime_.config_.faults->decide(channel, attempt);
  switch (fault.kind) {
    case FaultKind::kNone:
      rel_write_data(slot, seq);
      return;
    case FaultKind::kDrop:
    case FaultKind::kPartition:
      // Swallowed by the adversary; the retransmit timer recovers.
      runtime_.metrics_.on_fault(fault_index(fault.kind));
      annotate(runtime_.config_.replay,
               static_cast<std::uint8_t>(fault_index(fault.kind)), channel,
               attempt);
      return;
    case FaultKind::kReset: {
      // Connection torn down under the frame: quarantine the pair socket
      // and redial after a backoff.  Resync on the fresh connection
      // replays the whole unacked window, this frame included.
      runtime_.metrics_.on_fault(fault_index(fault.kind));
      annotate(runtime_.config_.replay,
               static_cast<std::uint8_t>(fault_index(fault.kind)), channel,
               attempt);
      const std::uint32_t pair = runtime_.channel_pair_[channel.value()];
      conn_down(send_slot_of_pair_.at(pair), /*count_loss=*/true);
      return;
    }
    case FaultKind::kDuplicate:
      runtime_.metrics_.on_fault(fault_index(fault.kind));
      annotate(runtime_.config_.replay,
               static_cast<std::uint8_t>(fault_index(fault.kind)), channel,
               attempt);
      rel_write_data(slot, seq);
      rel_write_data(slot, seq);
      return;
    case FaultKind::kReorder:
    case FaultKind::kDelay:
      // Held back and fired by the reactor; later frames on the channel
      // overtake this one on the wire, and the receiver's sequencer puts
      // the order back.
      runtime_.metrics_.on_fault(fault_index(fault.kind));
      annotate(runtime_.config_.replay,
               static_cast<std::uint8_t>(fault_index(fault.kind)), channel,
               attempt);
      delayed_.emplace(SteadyClock::now() +
                           std::chrono::nanoseconds(fault.extra_delay.ns),
                       DelayedWire{false, slot, 0, seq});
      return;
  }
}

void TcpRuntime::Worker::rel_write_data(std::size_t slot, std::uint64_t seq) {
  const ReliableSender::Staged* staged = rel_send_[slot].peek(seq);
  if (staged == nullptr) return;  // acked before a delayed copy fired
  const ChannelId channel = out_channels_[slot];
  BufferPool::Lease lease = pool_.acquire();
  runtime_.metrics_.on_pool_acquire(lease.reused());
  Bytes& frame = lease.bytes();
  const std::size_t header_at = begin_frame(frame);
  ByteWriter writer(frame);
  writer.u32(channel.value());
  RelHeader header;
  header.tag = RelHeader::kData;
  header.seq = seq;
  header.encode(writer);
  staged->message.encode(writer);
  end_frame(frame, header_at);
  queue_frame(channel, std::move(lease));
}

void TcpRuntime::Worker::rel_write_ack(std::size_t in_slot,
                                       std::size_t conn_slot) {
  const std::uint64_t attempt = in_ack_attempts_[in_slot]++;
  const FaultDecision fault = runtime_.config_.faults->decide_ack(
      in_channels_[in_slot], attempt);
  if (fault.kind == FaultKind::kDrop) {
    // Cumulative acks make a lost one free: the next carries its news.
    runtime_.metrics_.on_fault(fault_index(fault.kind));
    annotate(runtime_.config_.replay,
             static_cast<std::uint8_t>(fault_index(fault.kind)),
             in_channels_[in_slot], attempt);
    return;
  }
  if (fault.kind == FaultKind::kDelay) {
    runtime_.metrics_.on_fault(fault_index(fault.kind));
    annotate(runtime_.config_.replay,
             static_cast<std::uint8_t>(fault_index(fault.kind)),
             in_channels_[in_slot], attempt);
    delayed_.emplace(SteadyClock::now() +
                         std::chrono::nanoseconds(fault.extra_delay.ns),
                     DelayedWire{true, in_slot, conn_slot, 0});
    return;
  }
  rel_write_ack_frame(in_slot, conn_slot);
}

void TcpRuntime::Worker::rel_write_ack_frame(std::size_t in_slot,
                                             std::size_t conn_slot) {
  // The ack rides the same pair socket the data arrived on (full duplex);
  // if that connection is being replaced, resync re-acks.
  const PairConn& conn = conns_[conn_slot];
  if (conn.fd < 0 || !conn.write_open) return;
  const ChannelId channel = in_channels_[in_slot];
  BufferPool::Lease lease = pool_.acquire();
  runtime_.metrics_.on_pool_acquire(lease.reused());
  Bytes& frame = lease.bytes();
  const std::size_t header_at = begin_frame(frame);
  ByteWriter writer(frame);
  writer.u32(channel.value());
  RelHeader header;
  header.tag = RelHeader::kAck;
  header.cum_ack = in_recv_[in_slot].cum_ack();
  header.encode(writer);
  end_frame(frame, header_at);
  queue_frame_on(conn_slot, channel, std::move(lease));
}

void TcpRuntime::Worker::resync_pair(std::uint32_t pair) {
  // Everything unacked on this worker's out-channels crossing the pair
  // becomes due at once and flows out through the normal retransmit path
  // (counted as both replayed and retransmits).
  for (std::size_t slot = 0; slot < out_channels_.size(); ++slot) {
    if (runtime_.channel_pair_[out_channels_[slot].value()] != pair) {
      continue;
    }
    const std::size_t replayed = rel_send_[slot].mark_all_due(runtime_.now());
    if (replayed > 0) {
      runtime_.metrics_.on_resync_replayed(replayed);
      annotate(runtime_.config_.replay, kReplayAnnotationResync,
               out_channels_[slot], replayed);
    }
  }
}

void TcpRuntime::Worker::rel_try_reconnect(std::size_t slot) {
  PairConn& conn = conns_[slot];
  conn.reconnect_at = SteadyClock::time_point::max();
  if (stopping_.load(std::memory_order_relaxed) ||
      runtime_.stopped_.load(std::memory_order_relaxed)) {
    return;
  }
  const HostPair& pair = runtime_.pairs_[conn.pair];
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  bool ok = fd >= 0;
  if (ok) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(runtime_.workers_[pair.b]->port());
    ok = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  if (ok) {
    const std::uint32_t pair_index = conn.pair;
    std::uint8_t hello[4];
    std::memcpy(hello, &pair_index, sizeof(pair_index));
    ok = write_all(fd, hello, sizeof(hello));
  }
  if (ok) {
    apply_pair_socket_options(fd, runtime_.config_);
    ok = set_nonblocking(fd);
  }
  if (!ok) {
    if (fd >= 0) ::close(fd);
    conn.reconnect_at =
        SteadyClock::now() +
        std::chrono::nanoseconds(runtime_.config_.reliable.rto_initial.ns);
    return;
  }
  if (conn.fd >= 0) retire_fd_from_epoll(conn.fd);
  conn.fd = fd;
  conn.read_open = conn.write_open = true;
  conn.want_write = false;
  conn.parser = FrameParser();
  conn.outq.clear();
  conn.front_offset = 0;
  epoll_add_conn(slot);
  runtime_.pair_fd_[2 * conn.pair].store(fd);
  runtime_.metrics_.on_reconnect();
  annotate(runtime_.config_.replay, kReplayAnnotationReconnect,
           ChannelId(conn.pair), conn.pair);
  resync_pair(conn.pair);
}

void TcpRuntime::Worker::accept_runtime_connection() {
  const int fd = ::accept(listen_fd_, nullptr, nullptr);
  if (fd < 0) return;
  // Same 4-byte pair-index hello as the startup dial.  The dialer writes
  // it immediately after connect, so this blocking read is momentary.
  std::uint8_t hello[4];
  std::size_t got = 0;
  while (got < sizeof(hello)) {
    const ssize_t n = ::read(fd, hello + got, sizeof(hello) - got);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      return;
    }
    got += static_cast<std::size_t>(n);
  }
  std::uint32_t pair = 0;
  std::memcpy(&pair, hello, sizeof(pair));
  for (std::size_t slot = 0; slot < conns_.size(); ++slot) {
    PairConn& conn = conns_[slot];
    if (conn.pair != pair || conn.side != 1) continue;
    if (conn.fd >= 0) retire_fd_from_epoll(conn.fd);
    apply_pair_socket_options(fd, runtime_.config_);
    if (!set_nonblocking(fd)) {
      ::close(fd);
      return;
    }
    conn.fd = fd;
    conn.read_open = conn.write_open = true;
    conn.want_write = false;
    conn.parser = FrameParser();
    conn.outq.clear();
    conn.front_offset = 0;
    epoll_add_conn(slot);
    runtime_.pair_fd_[2 * pair + 1].store(fd);
    // in_recv_ state survives on purpose: its delivered-prefix state is
    // exactly what suppresses the replayed frames the reconnecting peer
    // is about to resend.  Our own unacked sends replay too — the peer's
    // receiver suppresses what it already saw.
    resync_pair(pair);
    return;
  }
  DDBG_ERROR() << "tcp: reconnect hello for unknown pair " << pair;
  ::close(fd);
}

void TcpRuntime::Worker::accept_control_connections() {
  // Level-triggered + nonblocking listener: drain the whole backlog now
  // so a burst of debugger clients costs one wakeup.
  while (true) {
    const int fd = ::accept(control_listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: backlog drained (or listener gone)
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // The accepted fd stays *blocking* (O_NONBLOCK does not inherit
    // through accept): the session server's per-client thread does
    // straightforward blocking I/O on it.
    runtime_.config_.on_control_accept(fd);
  }
}

void TcpRuntime::Worker::rel_fire_due() {
  const auto now = SteadyClock::now();
  for (std::size_t slot = 0; slot < conns_.size(); ++slot) {
    if (conns_[slot].reconnect_at <= now) rel_try_reconnect(slot);
  }
  while (!delayed_.empty() && delayed_.begin()->first <= now) {
    const DelayedWire wire = delayed_.begin()->second;
    delayed_.erase(delayed_.begin());
    // No second fault roll: the frame already paid its delay.
    if (wire.is_ack) {
      rel_write_ack_frame(wire.slot, wire.conn_slot);
    } else {
      rel_write_data(wire.slot, wire.seq);
    }
  }
  for (std::size_t slot = 0; slot < out_channels_.size(); ++slot) {
    for (const std::uint64_t seq : rel_send_[slot].due(runtime_.now())) {
      runtime_.metrics_.on_retransmit();
      rel_transmit(slot, seq);
    }
  }
}

SteadyClock::time_point TcpRuntime::Worker::rel_next_deadline() const {
  auto deadline = SteadyClock::time_point::max();
  for (const PairConn& conn : conns_) {
    if (conn.reconnect_at < deadline) deadline = conn.reconnect_at;
  }
  if (!delayed_.empty() && delayed_.begin()->first < deadline) {
    deadline = delayed_.begin()->first;
  }
  for (const auto& sender : rel_send_) {
    if (const auto next = sender.next_deadline()) {
      const auto when = runtime_.epoch_ + std::chrono::nanoseconds(next->ns);
      if (when < deadline) deadline = when;
    }
  }
  return deadline;
}

// ---------------------------------------------------------------------------
// TcpRuntime
// ---------------------------------------------------------------------------

TcpRuntime::TcpRuntime(Topology topology, std::vector<ProcessPtr> processes,
                       TcpRuntimeConfig config)
    : topology_(std::move(topology)),
      config_(config),
      metrics_("tcp", topology_.num_processes(), channel_meta(topology_)) {
  DDBG_ASSERT(processes.size() == topology_.num_processes(),
              "one Process per topology process required");
  // Enumerate host pairs: every unordered process pair with at least one
  // channel gets exactly one connection, shared by all its channels.
  channel_pair_.resize(topology_.num_channels());
  pairs_of_process_.resize(topology_.num_processes());
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t>
      pair_index;
  for (const ChannelSpec& spec : topology_.channels()) {
    const std::uint32_t a =
        std::min(spec.source.value(), spec.destination.value());
    const std::uint32_t b =
        std::max(spec.source.value(), spec.destination.value());
    const auto [it, inserted] = pair_index.try_emplace(
        std::make_pair(a, b), static_cast<std::uint32_t>(pairs_.size()));
    if (inserted) {
      pairs_.push_back(HostPair{a, b, 0});
      pairs_of_process_[a].push_back(it->second);
      if (b != a) pairs_of_process_[b].push_back(it->second);
    }
    ++pairs_[it->second].num_channels;
    channel_pair_[spec.id.value()] = it->second;
  }
  for (const HostPair& pair : pairs_) {
    metrics_.observe_mux_channels(pair.num_channels);
  }
  pair_fd_ = std::vector<std::atomic<int>>(2 * pairs_.size());
  for (auto& fd : pair_fd_) fd.store(-1, std::memory_order_relaxed);

  Rng root(config_.seed);
  workers_.reserve(processes.size());
  for (std::size_t i = 0; i < processes.size(); ++i) {
    workers_.push_back(std::make_unique<Worker>(
        *this, ProcessId(static_cast<std::uint32_t>(i)),
        std::move(processes[i]), root.fork()));
  }
  epoch_ = SteadyClock::now();
}

TcpRuntime::~TcpRuntime() {
  shutdown();
  for (auto& slot : pair_fd_) {
    const int fd = slot.exchange(-1);
    if (fd >= 0) ::close(fd);
  }
}

std::uint16_t TcpRuntime::control_port() const {
  for (const auto& worker : workers_) {
    if (worker->control_port() != 0) return worker->control_port();
  }
  return 0;
}

std::size_t TcpRuntime::max_channels_per_socket() const {
  std::size_t widest = 0;
  for (const HostPair& pair : pairs_) {
    widest = std::max<std::size_t>(widest, pair.num_channels);
  }
  return widest;
}

bool TcpRuntime::start() {
  DDBG_ASSERT(!started_.exchange(true), "TcpRuntime::start called twice");
  for (auto& worker : workers_) {
    if (!worker->init_sockets()) return false;
  }
  if (config_.on_control_accept) {
    // The control listener lives on the debugger's worker so accepted
    // sessions share a reactor with the process they drive.
    const std::uint32_t host =
        topology_.has_debugger() ? topology_.debugger_id().value() : 0;
    if (!workers_[host]->init_control_listener()) return false;
  }
  // Connect every pair: side a dials side b's listener and sends the
  // pair-index hello.  Backlogs hold the pending connections until the
  // acceptors drain them below.
  for (std::size_t p = 0; p < pairs_.size(); ++p) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(workers_[pairs_[p].b]->port());
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return false;
    }
    const auto pair_index = static_cast<std::uint32_t>(p);
    std::uint8_t hello[4];
    std::memcpy(hello, &pair_index, sizeof(pair_index));
    if (!write_all(fd, hello, sizeof(hello))) {
      ::close(fd);
      return false;
    }
    apply_pair_socket_options(fd, config_);
    if (!set_nonblocking(fd)) {
      ::close(fd);
      return false;
    }
    pair_fd_[2 * p].store(fd);
  }
  for (auto& worker : workers_) {
    if (!worker->accept_inbound()) return false;
  }
  epoch_ = SteadyClock::now();
  for (auto& worker : workers_) worker->start();
  return true;
}

void TcpRuntime::shutdown() {
  if (stopped_.exchange(true)) return;
  for (auto& worker : workers_) worker->request_stop();
  // Unblock the reactors: half-close every pair socket so parked writes
  // fail instead of waiting for a reader that is itself shutting down.
  // ::shutdown (unlike ::close) is safe while another thread uses the fd,
  // and pending inbox data is dropped by contract.
  for (const auto& slot : pair_fd_) {
    const int fd = slot.load();
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& worker : workers_) worker->stop_and_join();
}

void TcpRuntime::post(ProcessId target,
                      std::function<void(ProcessContext&, Process&)> action) {
  DDBG_ASSERT(target.value() < workers_.size(), "unknown process");
  workers_[target.value()]->push_closure(std::move(action));
}

bool TcpRuntime::wait_until(const std::function<bool()>& condition,
                            Duration timeout) {
  const auto deadline =
      SteadyClock::now() + std::chrono::nanoseconds(timeout.ns);
  while (!condition()) {
    if (SteadyClock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  return true;
}

Process& TcpRuntime::process(ProcessId id) {
  DDBG_ASSERT(id.value() < workers_.size(), "unknown process");
  return workers_[id.value()]->process();
}

TimePoint TcpRuntime::now() const {
  const auto elapsed = SteadyClock::now() - epoch_;
  return TimePoint{
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()};
}

void TcpRuntime::do_send(ProcessId sender, ChannelId channel,
                         Message message) {
  const ChannelSpec& spec = topology_.channel(channel);
  DDBG_ASSERT(spec.source == sender,
              "process may only send on its own outgoing channels");
  if (message.message_id == 0) {
    message.message_id = next_message_id_.fetch_add(1);
  }
  if (config_.faults) {
    // Reliability path: stage in the sending worker's retransmit window
    // and transmit under the fault plan.  The pair is legitimately down
    // mid-reconnect; the window replays once the new connection is up.
    workers_[sender.value()]->rel_send_message(channel, message);
    return;
  }
  // do_send runs on the sender's own worker thread, so the frame encodes
  // into that worker's pooled buffer and queues on the pair connection: a
  // handler emitting several messages pays one gathered write, and
  // steady-state sends allocate nothing.
  workers_[sender.value()]->stage_send(channel, message);
}

void TcpRuntime::half_close_channel(ChannelId channel) {
  DDBG_ASSERT(channel.value() < channel_pair_.size(), "unknown channel");
  const ChannelSpec& spec = topology_.channel(channel);
  const std::uint32_t pair = channel_pair_[channel.value()];
  const std::uint32_t side = spec.source.value() == pairs_[pair].a ? 0 : 1;
  const int fd = pair_fd_[2 * pair + side].load();
  if (fd >= 0) ::shutdown(fd, SHUT_WR);
}

std::uint64_t TcpRuntime::poll_iterations() const {
  std::uint64_t total = 0;
  for (const auto& worker : workers_) total += worker->poll_iterations();
  return total;
}

}  // namespace ddbg
