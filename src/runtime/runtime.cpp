#include "runtime/runtime.hpp"

#include <chrono>
#include <deque>
#include <future>
#include <map>
#include <unordered_map>
#include <utility>

#include "common/buffer_pool.hpp"
#include "common/logging.hpp"
#include "common/serialization.hpp"

namespace ddbg {

namespace {
using SteadyClock = std::chrono::steady_clock;

// Replay-log annotation for transport-level nondeterminism (fault draws,
// reconnects, resyncs).  Diagnostic provenance only — the null check keeps
// unrecorded runs untouched.
void annotate(const std::shared_ptr<ReplaySink>& sink, std::uint8_t kind,
              ChannelId channel, std::uint64_t detail) {
  if (sink != nullptr) sink->record_annotation(kind, channel, detail);
}
}  // namespace

// ---------------------------------------------------------------------------
// Worker: one process, its inbox, its timers and its thread.
// ---------------------------------------------------------------------------

class ThreadProcessContext;

class Runtime::Worker {
 public:
  Worker(Runtime& runtime, ProcessId id, ProcessPtr process, Rng rng);
  ~Worker();

  void start();
  void stop();

  void push_delivery(ChannelId channel, Message message,
                     std::uint32_t wire_bytes);
  void push_closure(std::function<void(ProcessContext&, Process&)> action);

  // ---- reliability layer (runtime_.config_.faults only) ----
  // Sender-side state (rel_send_, attempt counters, retry arming) is owned
  // by this worker's thread: do_send runs on it, acks and internal
  // deadlines are dispatched on it.  Receiver-side state (rel_recv_, ack
  // attempt counters) is owned by the destination worker's thread.
  std::uint64_t rel_stage(ChannelId channel, Message message,
                          std::uint32_t wire_bytes);
  void rel_transmit(ChannelId channel, std::uint64_t seq);
  void rel_check_retries(ChannelId channel);
  void push_rel_frame(ChannelId channel, std::uint64_t seq, Message message,
                      std::uint32_t wire_bytes);
  void push_ack(ChannelId channel, std::uint64_t cum_ack);

  TimerId add_timer(Duration delay);
  void cancel_timer(TimerId timer);

  [[nodiscard]] Process& process() { return *process_; }
  [[nodiscard]] Runtime& runtime() { return runtime_; }
  [[nodiscard]] ProcessId id() const { return id_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  // Encode-buffer pool for sends issued from this worker's thread; only
  // that thread may touch it.
  [[nodiscard]] BufferPool& pool() { return pool_; }

 private:
  struct Item {
    // kRelFrame: a reliability data frame arriving at this worker's
    // receiver; kAck: a cumulative ack arriving back at this worker's
    // sender; kInternal: a deadline-fired reliability action (retransmit
    // check, delayed frame/ack, reconnect resync).
    enum class Kind {
      kDeliver,
      kClosure,
      kTimer,
      kRelFrame,
      kAck,
      kInternal,
    } kind;
    ChannelId channel;
    Message message;
    std::uint32_t wire_bytes = 0;
    std::uint64_t rel_seq = 0;  // kRelFrame: data seq; kAck: cum ack
    std::function<void(ProcessContext&, Process&)> closure;
    std::function<void()> fn;
    TimerId timer;
  };

  void thread_main();
  void rel_arm_retry(ChannelId channel);
  void rel_deliver_frame(ChannelId channel, std::uint64_t seq,
                         Duration extra);
  void rel_on_frame(Item& item, std::size_t& deliveries);
  void schedule_internal(SteadyClock::time_point when,
                         std::function<void()> fn);
  // Fills `out` with the next runnable work: the whole inbox swapped out
  // under one lock acquisition (from_inbox=true), or a single due timer.
  // Blocks until work arrives; returns false when the worker is stopping.
  bool next_batch(std::deque<Item>& out, bool& from_inbox);

  Runtime& runtime_;
  ProcessId id_;
  ProcessPtr process_;
  Rng rng_;
  std::unique_ptr<ThreadProcessContext> context_;
  BufferPool pool_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Item> inbox_;
  // Pending timers ordered by deadline; TimerId breaks ties.  The index
  // maps a timer id back to its deadline so cancel_timer erases the exact
  // map key instead of scanning.
  std::map<std::pair<SteadyClock::time_point, std::uint32_t>, TimerId>
      timers_;
  std::unordered_map<std::uint32_t, SteadyClock::time_point> timer_deadline_;
  // Deadline-fired reliability actions; inserted under mutex_, executed on
  // this worker's thread.
  std::multimap<SteadyClock::time_point, std::function<void()>> internal_;
  bool stopping_ = false;

  // Reliability state, indexed by channel id; sized only when a FaultPlan
  // is configured.  Each worker touches only its own channels' slots.
  std::vector<ReliableSender> rel_send_;      // this worker's out-channels
  std::vector<ReliableReceiver> rel_recv_;    // this worker's in-channels
  std::vector<std::uint64_t> attempts_;       // out: data fault stream
  std::vector<std::uint64_t> ack_attempts_;   // in: ack fault stream
  std::vector<SteadyClock::time_point> retry_arm_;  // earliest armed check
  std::vector<char> reconnect_pending_;

  std::thread thread_;
};

class ThreadProcessContext final : public ProcessContext {
 public:
  explicit ThreadProcessContext(Runtime::Worker& worker) : worker_(worker) {}

  [[nodiscard]] ProcessId self() const override { return worker_.id(); }
  [[nodiscard]] TimePoint now() const override {
    return worker_.runtime().now();
  }
  [[nodiscard]] const Topology& topology() const override {
    return worker_.runtime().topology();
  }

  void send(ChannelId channel, Message message) override {
    worker_.runtime().do_send(worker_.id(), channel, std::move(message));
  }

  TimerId set_timer(Duration delay) override {
    return worker_.add_timer(delay);
  }
  void cancel_timer(TimerId timer) override { worker_.cancel_timer(timer); }

  [[nodiscard]] Rng& rng() override { return worker_.rng(); }

  [[nodiscard]] obs::MetricsRegistry* metrics() const override {
    return &worker_.runtime().metrics();
  }

  void stop_self() override {
    // No dedicated bookkeeping: a "stopped" process simply schedules no
    // further timers; its thread keeps serving messages so markers flow.
  }

 private:
  Runtime::Worker& worker_;
};

Runtime::Worker::Worker(Runtime& runtime, ProcessId id, ProcessPtr process,
                        Rng rng)
    : runtime_(runtime), id_(id), process_(std::move(process)), rng_(rng) {
  context_ = std::make_unique<ThreadProcessContext>(*this);
  if (runtime_.config_.faults) {
    const std::size_t n = runtime_.topology_.num_channels();
    rel_send_.assign(n, ReliableSender(runtime_.config_.reliable));
    rel_recv_.assign(n, ReliableReceiver());
    attempts_.assign(n, 0);
    ack_attempts_.assign(n, 0);
    retry_arm_.assign(n, SteadyClock::time_point::max());
    reconnect_pending_.assign(n, 0);
  }
}

Runtime::Worker::~Worker() { stop(); }

void Runtime::Worker::start() {
  thread_ = std::thread([this] { thread_main(); });
}

void Runtime::Worker::stop() {
  {
    std::lock_guard<std::mutex> guard{mutex_};
    if (stopping_) {
      // Already stopping; still need to join below if joinable.
    }
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Runtime::Worker::push_delivery(ChannelId channel, Message message,
                                    std::uint32_t wire_bytes) {
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> guard{mutex_};
    if (stopping_) return;
    Item item;
    item.kind = Item::Kind::kDeliver;
    item.channel = channel;
    item.message = std::move(message);
    item.wire_bytes = wire_bytes;
    inbox_.push_back(std::move(item));
    depth = inbox_.size();
  }
  runtime_.metrics_.observe_queue_depth(id_.value(), depth);
  cv_.notify_one();
}

void Runtime::Worker::push_closure(
    std::function<void(ProcessContext&, Process&)> action) {
  {
    std::lock_guard<std::mutex> guard{mutex_};
    if (stopping_) return;
    Item item;
    item.kind = Item::Kind::kClosure;
    item.closure = std::move(action);
    inbox_.push_back(std::move(item));
  }
  cv_.notify_one();
}

TimerId Runtime::Worker::add_timer(Duration delay) {
  const TimerId id(runtime_.next_timer_id_.fetch_add(1));
  const auto deadline =
      SteadyClock::now() + std::chrono::nanoseconds(delay.ns);
  {
    std::lock_guard<std::mutex> guard{mutex_};
    timers_.emplace(std::make_pair(deadline, id.value()), id);
    timer_deadline_.emplace(id.value(), deadline);
  }
  cv_.notify_one();
  return id;
}

void Runtime::Worker::cancel_timer(TimerId timer) {
  std::lock_guard<std::mutex> guard{mutex_};
  const auto it = timer_deadline_.find(timer.value());
  if (it == timer_deadline_.end()) return;  // already fired or cancelled
  timers_.erase(std::make_pair(it->second, timer.value()));
  timer_deadline_.erase(it);
}

bool Runtime::Worker::next_batch(std::deque<Item>& out, bool& from_inbox) {
  std::unique_lock<std::mutex> lock{mutex_};
  while (true) {
    if (stopping_) return false;
    if (!inbox_.empty()) {
      // Swap the whole inbox out: the batch dispatches lock-free while
      // senders refill a fresh deque.  Messages keep priority over due
      // timers, exactly as the one-item-per-lock loop behaved.
      out.swap(inbox_);
      from_inbox = true;
      return true;
    }
    const auto now = SteadyClock::now();
    // Internal reliability deadlines (retransmit checks, delayed frames)
    // fire with the same priority as process timers.
    if (!internal_.empty() && internal_.begin()->first <= now) {
      Item item;
      item.kind = Item::Kind::kInternal;
      item.fn = std::move(internal_.begin()->second);
      internal_.erase(internal_.begin());
      out.push_back(std::move(item));
      from_inbox = false;
      return true;
    }
    if (!timers_.empty() && timers_.begin()->first.first <= now) {
      Item item;
      item.kind = Item::Kind::kTimer;
      item.timer = timers_.begin()->second;
      timer_deadline_.erase(item.timer.value());
      timers_.erase(timers_.begin());
      out.push_back(std::move(item));
      from_inbox = false;
      return true;
    }
    auto deadline = SteadyClock::time_point::max();
    if (!timers_.empty()) deadline = timers_.begin()->first.first;
    if (!internal_.empty() && internal_.begin()->first < deadline) {
      deadline = internal_.begin()->first;
    }
    if (deadline != SteadyClock::time_point::max()) {
      cv_.wait_until(lock, deadline);
    } else {
      cv_.wait(lock);
    }
  }
}

void Runtime::Worker::thread_main() {
  process_->on_start(*context_);
  std::deque<Item> batch;
  bool from_inbox = false;
  while (next_batch(batch, from_inbox)) {
    std::size_t deliveries = 0;
    for (Item& item : batch) {
      switch (item.kind) {
        case Item::Kind::kDeliver: {
          ++deliveries;
          runtime_.metrics_.on_deliver(item.channel.value(),
                                       traffic_class(item.message.kind),
                                       item.wire_bytes);
          process_->on_message(*context_, item.channel,
                               std::move(item.message));
          break;
        }
        case Item::Kind::kClosure:
          item.closure(*context_, *process_);
          break;
        case Item::Kind::kTimer:
          process_->on_timer(*context_, item.timer);
          break;
        case Item::Kind::kRelFrame:
          rel_on_frame(item, deliveries);
          break;
        case Item::Kind::kAck:
          rel_send_[item.channel.value()].ack(item.rel_seq);
          rel_arm_retry(item.channel);
          break;
        case Item::Kind::kInternal:
          item.fn();
          break;
      }
    }
    if (from_inbox && deliveries > 0) {
      runtime_.metrics_.on_deliver_batch(deliveries);
    }
    batch.clear();
  }
}

// ---------------------------------------------------------------------------
// Worker: reliability layer
// ---------------------------------------------------------------------------

void Runtime::Worker::schedule_internal(SteadyClock::time_point when,
                                        std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> guard{mutex_};
    if (stopping_) return;
    internal_.emplace(when, std::move(fn));
  }
  cv_.notify_one();
}

std::uint64_t Runtime::Worker::rel_stage(ChannelId channel, Message message,
                                         std::uint32_t wire_bytes) {
  return rel_send_[channel.value()].stage(std::move(message), wire_bytes,
                                          runtime_.now());
}

void Runtime::Worker::rel_transmit(ChannelId channel, std::uint64_t seq) {
  const std::size_t c = channel.value();
  if (rel_send_[c].peek(seq) == nullptr) return;  // acked meanwhile
  const std::uint64_t attempt = attempts_[c]++;
  const FaultDecision fault =
      runtime_.config_.faults->decide(channel, attempt);
  switch (fault.kind) {
    case FaultKind::kDrop:
    case FaultKind::kPartition:
      runtime_.metrics_.on_fault(fault_index(fault.kind));
      annotate(runtime_.config_.replay,
               static_cast<std::uint8_t>(fault_index(fault.kind)), channel,
               attempt);
      break;  // frame vanishes; the retransmit timer recovers
    case FaultKind::kReset: {
      runtime_.metrics_.on_fault(fault_index(fault.kind));
      runtime_.metrics_.on_channel_down();
      annotate(runtime_.config_.replay,
               static_cast<std::uint8_t>(fault_index(fault.kind)), channel,
               attempt);
      // The frame is lost with the "connection"; after a redial delay,
      // resync replays the whole unacked window.
      if (reconnect_pending_[c] != 0) break;
      reconnect_pending_[c] = 1;
      const auto redial =
          SteadyClock::now() +
          std::chrono::nanoseconds(runtime_.config_.reliable.rto_initial.ns);
      schedule_internal(redial, [this, channel] {
        const std::size_t cc = channel.value();
        reconnect_pending_[cc] = 0;
        runtime_.metrics_.on_reconnect();
        annotate(runtime_.config_.replay, kReplayAnnotationReconnect, channel,
                 0);
        const std::size_t replayed =
            rel_send_[cc].mark_all_due(runtime_.now());
        runtime_.metrics_.on_resync_replayed(replayed);
        annotate(runtime_.config_.replay, kReplayAnnotationResync, channel,
                 replayed);
        rel_check_retries(channel);
      });
      break;
    }
    case FaultKind::kDuplicate:
      runtime_.metrics_.on_fault(fault_index(fault.kind));
      annotate(runtime_.config_.replay,
               static_cast<std::uint8_t>(fault_index(fault.kind)), channel,
               attempt);
      rel_deliver_frame(channel, seq, Duration{0});
      rel_deliver_frame(channel, seq, Duration{0});
      break;
    case FaultKind::kReorder:
    case FaultKind::kDelay:
      runtime_.metrics_.on_fault(fault_index(fault.kind));
      annotate(runtime_.config_.replay,
               static_cast<std::uint8_t>(fault_index(fault.kind)), channel,
               attempt);
      rel_deliver_frame(channel, seq, fault.extra_delay);
      break;
    case FaultKind::kNone:
      rel_deliver_frame(channel, seq, Duration{0});
      break;
  }
  rel_arm_retry(channel);
}

void Runtime::Worker::rel_deliver_frame(ChannelId channel, std::uint64_t seq,
                                        Duration extra) {
  const std::size_t c = channel.value();
  const ReliableSender::Staged* staged = rel_send_[c].peek(seq);
  if (staged == nullptr) return;
  Worker& dest =
      *runtime_.workers_[runtime_.topology_.channel(channel).destination
                             .value()];
  // Frame contents are fixed at transmission time: copy now even for a
  // delayed frame, so an ack retiring the window entry cannot invalidate
  // the closure.
  Message copy = staged->message;
  const auto wire_bytes = static_cast<std::uint32_t>(staged->meta);
  if (extra.ns <= 0) {
    dest.push_rel_frame(channel, seq, std::move(copy), wire_bytes);
    return;
  }
  const auto when = SteadyClock::now() + std::chrono::nanoseconds(extra.ns);
  schedule_internal(when, [&dest, channel, seq, copy = std::move(copy),
                           wire_bytes]() mutable {
    dest.push_rel_frame(channel, seq, std::move(copy), wire_bytes);
  });
}

void Runtime::Worker::rel_check_retries(ChannelId channel) {
  const std::size_t c = channel.value();
  retry_arm_[c] = SteadyClock::time_point::max();
  for (const std::uint64_t seq : rel_send_[c].due(runtime_.now())) {
    runtime_.metrics_.on_retransmit();
    rel_transmit(channel, seq);
  }
  rel_arm_retry(channel);
}

void Runtime::Worker::rel_arm_retry(ChannelId channel) {
  const std::size_t c = channel.value();
  const auto deadline = rel_send_[c].next_deadline();
  if (!deadline.has_value()) return;
  const auto when =
      runtime_.epoch_ + std::chrono::nanoseconds(deadline->ns);
  if (retry_arm_[c] <= when) return;  // an earlier check covers this
  retry_arm_[c] = when;
  schedule_internal(when, [this, channel] { rel_check_retries(channel); });
}

void Runtime::Worker::push_rel_frame(ChannelId channel, std::uint64_t seq,
                                     Message message,
                                     std::uint32_t wire_bytes) {
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> guard{mutex_};
    if (stopping_) return;
    Item item;
    item.kind = Item::Kind::kRelFrame;
    item.channel = channel;
    item.rel_seq = seq;
    item.message = std::move(message);
    item.wire_bytes = wire_bytes;
    inbox_.push_back(std::move(item));
    depth = inbox_.size();
  }
  runtime_.metrics_.observe_queue_depth(id_.value(), depth);
  cv_.notify_one();
}

void Runtime::Worker::push_ack(ChannelId channel, std::uint64_t cum_ack) {
  {
    std::lock_guard<std::mutex> guard{mutex_};
    if (stopping_) return;
    Item item;
    item.kind = Item::Kind::kAck;
    item.channel = channel;
    item.rel_seq = cum_ack;
    inbox_.push_back(std::move(item));
  }
  cv_.notify_one();
}

void Runtime::Worker::rel_on_frame(Item& item, std::size_t& deliveries) {
  const std::size_t c = item.channel.value();
  std::vector<ReliableReceiver::Delivery> released;
  const auto accept = rel_recv_[c].on_frame(
      item.rel_seq, std::move(item.message), item.wire_bytes, released);
  if (accept == ReliableReceiver::Accept::kDuplicate) {
    runtime_.metrics_.on_dup_suppressed();
  }
  for (auto& delivery : released) {
    ++deliveries;
    runtime_.metrics_.on_deliver(c, traffic_class(delivery.message.kind),
                                 static_cast<std::uint32_t>(delivery.meta));
    process_->on_message(*context_, item.channel,
                         std::move(delivery.message));
  }
  // Ack every arrival, duplicates included: a re-ack is what stops the
  // sender retransmitting a frame whose ack was lost.
  const std::uint64_t attempt = ack_attempts_[c]++;
  const FaultDecision fault =
      runtime_.config_.faults->decide_ack(item.channel, attempt);
  if (fault.kind == FaultKind::kDrop) {
    runtime_.metrics_.on_fault(fault_index(fault.kind));
    annotate(runtime_.config_.replay,
             static_cast<std::uint8_t>(fault_index(fault.kind)), item.channel,
             attempt);
    return;
  }
  Worker& src =
      *runtime_.workers_[runtime_.topology_.channel(item.channel).source
                             .value()];
  const std::uint64_t cum = rel_recv_[c].cum_ack();
  if (fault.kind == FaultKind::kDelay) {
    runtime_.metrics_.on_fault(fault_index(fault.kind));
    annotate(runtime_.config_.replay,
             static_cast<std::uint8_t>(fault_index(fault.kind)), item.channel,
             attempt);
    const auto when =
        SteadyClock::now() + std::chrono::nanoseconds(fault.extra_delay.ns);
    const ChannelId ch = item.channel;
    schedule_internal(when,
                      [&src, ch, cum] { src.push_ack(ch, cum); });
    return;
  }
  src.push_ack(item.channel, cum);
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

Runtime::Runtime(Topology topology, std::vector<ProcessPtr> processes,
                 RuntimeConfig config)
    : topology_(std::move(topology)),
      config_(config),
      metrics_("threads", topology_.num_processes(),
               channel_meta(topology_)) {
  DDBG_ASSERT(processes.size() == topology_.num_processes(),
              "one Process per topology process required");
  Rng root(config_.seed);
  workers_.reserve(processes.size());
  for (std::size_t i = 0; i < processes.size(); ++i) {
    workers_.push_back(std::make_unique<Worker>(
        *this, ProcessId(static_cast<std::uint32_t>(i)),
        std::move(processes[i]), root.fork()));
  }
  epoch_ = SteadyClock::now();
}

Runtime::~Runtime() { shutdown(); }

void Runtime::start() {
  DDBG_ASSERT(!started_.exchange(true), "Runtime::start called twice");
  epoch_ = SteadyClock::now();
  for (auto& worker : workers_) worker->start();
}

void Runtime::shutdown() {
  if (stopped_.exchange(true)) return;
  for (auto& worker : workers_) worker->stop();
}

void Runtime::post(ProcessId target,
                   std::function<void(ProcessContext&, Process&)> action) {
  DDBG_ASSERT(target.value() < workers_.size(), "unknown process");
  workers_[target.value()]->push_closure(std::move(action));
}

bool Runtime::call(ProcessId target,
                   std::function<void(ProcessContext&, Process&)> action,
                   Duration timeout) {
  auto done = std::make_shared<std::promise<void>>();
  auto future = done->get_future();
  post(target, [action = std::move(action), done](ProcessContext& ctx,
                                                  Process& process) {
    action(ctx, process);
    done->set_value();
  });
  return future.wait_for(std::chrono::nanoseconds(timeout.ns)) ==
         std::future_status::ready;
}

bool Runtime::wait_until(const std::function<bool()>& condition,
                         Duration timeout) {
  const auto deadline =
      SteadyClock::now() + std::chrono::nanoseconds(timeout.ns);
  while (!condition()) {
    if (SteadyClock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

Process& Runtime::process(ProcessId id) {
  DDBG_ASSERT(id.value() < workers_.size(), "unknown process");
  return workers_[id.value()]->process();
}

TimePoint Runtime::now() const {
  const auto elapsed = SteadyClock::now() - epoch_;
  return TimePoint{
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()};
}

void Runtime::do_send(ProcessId sender, ChannelId channel, Message message) {
  const ChannelSpec& spec = topology_.channel(channel);
  DDBG_ASSERT(spec.source == sender,
              "process may only send on its own outgoing channels");
  if (message.message_id == 0) {
    message.message_id = next_message_id_.fetch_add(1);
  }
  // Wire-size accounting encodes into the sending worker's pooled buffer
  // (do_send runs on the sender's thread), so steady-state sends allocate
  // nothing.
  std::uint32_t wire_bytes = 0;
  {
    BufferPool::Lease lease = workers_[sender.value()]->pool().acquire();
    metrics_.on_pool_acquire(lease.reused());
    ByteWriter writer(lease.bytes());
    message.encode(writer);
    wire_bytes = static_cast<std::uint32_t>(writer.size());
  }
  metrics_.on_send(channel.value(), traffic_class(message.kind), wire_bytes);
  if (config_.faults) {
    // Lossy transport: stage in the sending worker's retransmit window
    // (do_send runs on the sender's thread) and transmit under the fault
    // plan; the destination's receiver restores FIFO exactly-once order.
    Worker& src = *workers_[sender.value()];
    const std::uint64_t seq =
        src.rel_stage(channel, std::move(message), wire_bytes);
    src.rel_transmit(channel, seq);
    return;
  }
  workers_[spec.destination.value()]->push_delivery(channel,
                                                    std::move(message),
                                                    wire_bytes);
}

}  // namespace ddbg
