#include "runtime/runtime.hpp"

#include <chrono>
#include <deque>
#include <future>
#include <map>
#include <unordered_map>
#include <utility>

#include "common/buffer_pool.hpp"
#include "common/logging.hpp"
#include "common/serialization.hpp"

namespace ddbg {

namespace {
using SteadyClock = std::chrono::steady_clock;
}  // namespace

// ---------------------------------------------------------------------------
// Worker: one process, its inbox, its timers and its thread.
// ---------------------------------------------------------------------------

class ThreadProcessContext;

class Runtime::Worker {
 public:
  Worker(Runtime& runtime, ProcessId id, ProcessPtr process, Rng rng);
  ~Worker();

  void start();
  void stop();

  void push_delivery(ChannelId channel, Message message,
                     std::uint32_t wire_bytes);
  void push_closure(std::function<void(ProcessContext&, Process&)> action);

  TimerId add_timer(Duration delay);
  void cancel_timer(TimerId timer);

  [[nodiscard]] Process& process() { return *process_; }
  [[nodiscard]] Runtime& runtime() { return runtime_; }
  [[nodiscard]] ProcessId id() const { return id_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  // Encode-buffer pool for sends issued from this worker's thread; only
  // that thread may touch it.
  [[nodiscard]] BufferPool& pool() { return pool_; }

 private:
  struct Item {
    enum class Kind { kDeliver, kClosure, kTimer } kind;
    ChannelId channel;
    Message message;
    std::uint32_t wire_bytes = 0;
    std::function<void(ProcessContext&, Process&)> closure;
    TimerId timer;
  };

  void thread_main();
  // Fills `out` with the next runnable work: the whole inbox swapped out
  // under one lock acquisition (from_inbox=true), or a single due timer.
  // Blocks until work arrives; returns false when the worker is stopping.
  bool next_batch(std::deque<Item>& out, bool& from_inbox);

  Runtime& runtime_;
  ProcessId id_;
  ProcessPtr process_;
  Rng rng_;
  std::unique_ptr<ThreadProcessContext> context_;
  BufferPool pool_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Item> inbox_;
  // Pending timers ordered by deadline; TimerId breaks ties.  The index
  // maps a timer id back to its deadline so cancel_timer erases the exact
  // map key instead of scanning.
  std::map<std::pair<SteadyClock::time_point, std::uint32_t>, TimerId>
      timers_;
  std::unordered_map<std::uint32_t, SteadyClock::time_point> timer_deadline_;
  bool stopping_ = false;

  std::thread thread_;
};

class ThreadProcessContext final : public ProcessContext {
 public:
  explicit ThreadProcessContext(Runtime::Worker& worker) : worker_(worker) {}

  [[nodiscard]] ProcessId self() const override { return worker_.id(); }
  [[nodiscard]] TimePoint now() const override {
    return worker_.runtime().now();
  }
  [[nodiscard]] const Topology& topology() const override {
    return worker_.runtime().topology();
  }

  void send(ChannelId channel, Message message) override {
    worker_.runtime().do_send(worker_.id(), channel, std::move(message));
  }

  TimerId set_timer(Duration delay) override {
    return worker_.add_timer(delay);
  }
  void cancel_timer(TimerId timer) override { worker_.cancel_timer(timer); }

  [[nodiscard]] Rng& rng() override { return worker_.rng(); }

  [[nodiscard]] obs::MetricsRegistry* metrics() const override {
    return &worker_.runtime().metrics();
  }

  void stop_self() override {
    // No dedicated bookkeeping: a "stopped" process simply schedules no
    // further timers; its thread keeps serving messages so markers flow.
  }

 private:
  Runtime::Worker& worker_;
};

Runtime::Worker::Worker(Runtime& runtime, ProcessId id, ProcessPtr process,
                        Rng rng)
    : runtime_(runtime), id_(id), process_(std::move(process)), rng_(rng) {
  context_ = std::make_unique<ThreadProcessContext>(*this);
}

Runtime::Worker::~Worker() { stop(); }

void Runtime::Worker::start() {
  thread_ = std::thread([this] { thread_main(); });
}

void Runtime::Worker::stop() {
  {
    std::lock_guard<std::mutex> guard{mutex_};
    if (stopping_) {
      // Already stopping; still need to join below if joinable.
    }
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Runtime::Worker::push_delivery(ChannelId channel, Message message,
                                    std::uint32_t wire_bytes) {
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> guard{mutex_};
    if (stopping_) return;
    Item item;
    item.kind = Item::Kind::kDeliver;
    item.channel = channel;
    item.message = std::move(message);
    item.wire_bytes = wire_bytes;
    inbox_.push_back(std::move(item));
    depth = inbox_.size();
  }
  runtime_.metrics_.observe_queue_depth(id_.value(), depth);
  cv_.notify_one();
}

void Runtime::Worker::push_closure(
    std::function<void(ProcessContext&, Process&)> action) {
  {
    std::lock_guard<std::mutex> guard{mutex_};
    if (stopping_) return;
    Item item;
    item.kind = Item::Kind::kClosure;
    item.closure = std::move(action);
    inbox_.push_back(std::move(item));
  }
  cv_.notify_one();
}

TimerId Runtime::Worker::add_timer(Duration delay) {
  const TimerId id(runtime_.next_timer_id_.fetch_add(1));
  const auto deadline =
      SteadyClock::now() + std::chrono::nanoseconds(delay.ns);
  {
    std::lock_guard<std::mutex> guard{mutex_};
    timers_.emplace(std::make_pair(deadline, id.value()), id);
    timer_deadline_.emplace(id.value(), deadline);
  }
  cv_.notify_one();
  return id;
}

void Runtime::Worker::cancel_timer(TimerId timer) {
  std::lock_guard<std::mutex> guard{mutex_};
  const auto it = timer_deadline_.find(timer.value());
  if (it == timer_deadline_.end()) return;  // already fired or cancelled
  timers_.erase(std::make_pair(it->second, timer.value()));
  timer_deadline_.erase(it);
}

bool Runtime::Worker::next_batch(std::deque<Item>& out, bool& from_inbox) {
  std::unique_lock<std::mutex> lock{mutex_};
  while (true) {
    if (stopping_) return false;
    if (!inbox_.empty()) {
      // Swap the whole inbox out: the batch dispatches lock-free while
      // senders refill a fresh deque.  Messages keep priority over due
      // timers, exactly as the one-item-per-lock loop behaved.
      out.swap(inbox_);
      from_inbox = true;
      return true;
    }
    if (!timers_.empty()) {
      const auto deadline = timers_.begin()->first.first;
      if (SteadyClock::now() >= deadline) {
        Item item;
        item.kind = Item::Kind::kTimer;
        item.timer = timers_.begin()->second;
        timer_deadline_.erase(item.timer.value());
        timers_.erase(timers_.begin());
        out.push_back(std::move(item));
        from_inbox = false;
        return true;
      }
      cv_.wait_until(lock, deadline);
    } else {
      cv_.wait(lock);
    }
  }
}

void Runtime::Worker::thread_main() {
  process_->on_start(*context_);
  std::deque<Item> batch;
  bool from_inbox = false;
  while (next_batch(batch, from_inbox)) {
    std::size_t deliveries = 0;
    for (Item& item : batch) {
      switch (item.kind) {
        case Item::Kind::kDeliver: {
          ++deliveries;
          runtime_.metrics_.on_deliver(item.channel.value(),
                                       traffic_class(item.message.kind),
                                       item.wire_bytes);
          process_->on_message(*context_, item.channel,
                               std::move(item.message));
          break;
        }
        case Item::Kind::kClosure:
          item.closure(*context_, *process_);
          break;
        case Item::Kind::kTimer:
          process_->on_timer(*context_, item.timer);
          break;
      }
    }
    if (from_inbox && deliveries > 0) {
      runtime_.metrics_.on_deliver_batch(deliveries);
    }
    batch.clear();
  }
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

Runtime::Runtime(Topology topology, std::vector<ProcessPtr> processes,
                 RuntimeConfig config)
    : topology_(std::move(topology)),
      config_(config),
      metrics_("threads", topology_.num_processes(),
               channel_meta(topology_)) {
  DDBG_ASSERT(processes.size() == topology_.num_processes(),
              "one Process per topology process required");
  Rng root(config_.seed);
  workers_.reserve(processes.size());
  for (std::size_t i = 0; i < processes.size(); ++i) {
    workers_.push_back(std::make_unique<Worker>(
        *this, ProcessId(static_cast<std::uint32_t>(i)),
        std::move(processes[i]), root.fork()));
  }
  epoch_ = SteadyClock::now();
}

Runtime::~Runtime() { shutdown(); }

void Runtime::start() {
  DDBG_ASSERT(!started_.exchange(true), "Runtime::start called twice");
  epoch_ = SteadyClock::now();
  for (auto& worker : workers_) worker->start();
}

void Runtime::shutdown() {
  if (stopped_.exchange(true)) return;
  for (auto& worker : workers_) worker->stop();
}

void Runtime::post(ProcessId target,
                   std::function<void(ProcessContext&, Process&)> action) {
  DDBG_ASSERT(target.value() < workers_.size(), "unknown process");
  workers_[target.value()]->push_closure(std::move(action));
}

bool Runtime::call(ProcessId target,
                   std::function<void(ProcessContext&, Process&)> action,
                   Duration timeout) {
  auto done = std::make_shared<std::promise<void>>();
  auto future = done->get_future();
  post(target, [action = std::move(action), done](ProcessContext& ctx,
                                                  Process& process) {
    action(ctx, process);
    done->set_value();
  });
  return future.wait_for(std::chrono::nanoseconds(timeout.ns)) ==
         std::future_status::ready;
}

bool Runtime::wait_until(const std::function<bool()>& condition,
                         Duration timeout) {
  const auto deadline =
      SteadyClock::now() + std::chrono::nanoseconds(timeout.ns);
  while (!condition()) {
    if (SteadyClock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

Process& Runtime::process(ProcessId id) {
  DDBG_ASSERT(id.value() < workers_.size(), "unknown process");
  return workers_[id.value()]->process();
}

TimePoint Runtime::now() const {
  const auto elapsed = SteadyClock::now() - epoch_;
  return TimePoint{
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()};
}

void Runtime::do_send(ProcessId sender, ChannelId channel, Message message) {
  const ChannelSpec& spec = topology_.channel(channel);
  DDBG_ASSERT(spec.source == sender,
              "process may only send on its own outgoing channels");
  if (message.message_id == 0) {
    message.message_id = next_message_id_.fetch_add(1);
  }
  // Wire-size accounting encodes into the sending worker's pooled buffer
  // (do_send runs on the sender's thread), so steady-state sends allocate
  // nothing.
  std::uint32_t wire_bytes = 0;
  {
    BufferPool::Lease lease = workers_[sender.value()]->pool().acquire();
    metrics_.on_pool_acquire(lease.reused());
    ByteWriter writer(lease.bytes());
    message.encode(writer);
    wire_bytes = static_cast<std::uint32_t>(writer.size());
  }
  metrics_.on_send(channel.value(), traffic_class(message.kind), wire_bytes);
  workers_[spec.destination.value()]->push_delivery(channel,
                                                    std::move(message),
                                                    wire_bytes);
}

}  // namespace ddbg
