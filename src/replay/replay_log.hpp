// The compact binary replay log: what a recorded run writes and what the
// ReplayDriver re-executes.
//
// Determinism contract (DESIGN.md "Record/replay"): a process behavior is
// a pure function of its start state, its per-process RNG stream, the
// sequence of application messages handed to it (per-channel FIFO order),
// and the order its timers fired.  The log therefore stores *inputs at the
// user-process boundary* — one record per delivery (channel + per-channel
// ordinal + payload hash), per timer creation (with the substrate's timer
// id, handed back verbatim on replay), per timer firing, and per completed
// halt cut (the assembled S_h, for Theorem-2 verification) — not transport
// frames.  Fault draws, reconnects and resyncs are appended as annotation
// records: the reliability layer already guarantees user-level exactly-once
// FIFO delivery, so replay re-derives a fault-free equivalent run and the
// annotations remain diagnostic provenance.
//
// Global record order is the recorder's append order, which respects
// causality: the record that triggered a send is always appended before
// the delivery record of the message it sent.  Replaying records in log
// order with per-channel FIFO release is therefore always feasible.
//
// Wire format: length-prefixed frames (net/framing.hpp).  Frame 0 is the
// header, every following frame one record, bodies encoded with
// ByteWriter/ByteReader.  decode() validates structurally (kinds, bounds)
// and semantically (per-channel delivery ordinals must be sequential,
// timer fires must reference an already-created ordinal), so a truncated
// or bit-flipped log is a clean Error, never UB.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/serialization.hpp"

namespace ddbg {

inline constexpr std::uint32_t kReplayLogMagic = 0x4C505244;  // "DRPL"
inline constexpr std::uint16_t kReplayLogVersion = 1;
// Default file name inside a --record directory.
inline constexpr const char* kReplayLogFileName = "replay.log";

struct ReplayLogHeader {
  std::uint64_t seed = 1;
  // Substrate the run was recorded on: "sim" | "threads" | "tcp".
  std::string substrate;
  // Workload name + parameters, enough for an embedder's factory to build
  // fresh user processes (empty workload = caller supplies processes).
  std::string workload;
  std::uint32_t num_user_processes = 0;
  std::uint32_t debugger_fanout = 0;
  // Channel count of the full (debugger-extended) topology; bounds-checks
  // every channel id in the body.
  std::uint32_t num_channels = 0;
  // Fault-plan spec string of the recorded run ("" = fault-free) —
  // provenance only; replay runs fault-free by construction.
  std::string fault_spec;

  void encode(ByteWriter& writer) const;
  [[nodiscard]] static Result<ReplayLogHeader> decode(ByteReader& reader);
  [[nodiscard]] std::string describe() const;
};

enum class ReplayRecordKind : std::uint8_t {
  kDeliver = 0,
  kTimerSet = 1,
  kTimerFire = 2,
  kHaltCut = 3,
  kAnnotation = 4,
};
inline constexpr std::uint8_t kMaxReplayRecordKind =
    static_cast<std::uint8_t>(ReplayRecordKind::kAnnotation);

struct ReplayRecord {
  ReplayRecordKind kind = ReplayRecordKind::kDeliver;
  std::uint32_t process = 0;   // deliver / timer_set / timer_fire
  std::uint32_t channel = 0;   // deliver / annotation
  std::uint64_t ordinal = 0;   // deliver: per-channel index; timers: creation
  std::uint64_t hash = 0;      // deliver: payload FNV-1a
  std::uint64_t detail = 0;    // deliver: payload bytes; annotation: detail
  std::uint32_t timer = 0;     // timer_set: substrate TimerId value
  std::uint64_t wave = 0;      // halt_cut
  std::uint8_t annotation = 0; // annotation kind (replay_hooks.hpp)
  Bytes state;                 // halt_cut: encoded S_h snapshots

  void encode(ByteWriter& writer) const;
};

class ReplayLog {
 public:
  ReplayLogHeader header;
  std::vector<ReplayRecord> records;

  // ---- summary counts ----
  [[nodiscard]] std::size_t deliveries() const;
  [[nodiscard]] std::size_t timer_sets() const;
  [[nodiscard]] std::size_t timer_fires() const;
  [[nodiscard]] std::size_t halt_cuts() const;
  [[nodiscard]] std::size_t annotations() const;
  [[nodiscard]] std::string describe() const;

  // ---- wire ----
  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<ReplayLog> decode(
      std::span<const std::uint8_t> data);

  // ---- files ----
  [[nodiscard]] Status save(const std::string& path) const;
  [[nodiscard]] static Result<ReplayLog> load(const std::string& path);
};

}  // namespace ddbg
