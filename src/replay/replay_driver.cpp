#include "replay/replay_driver.hpp"

#include <sstream>
#include <utility>

#include "core/global_state.hpp"
#include "sim/latency_model.hpp"

namespace ddbg {

namespace {

// Replay latency: any positive constant works (release order is scripted by
// the log, not by arrival timing), and a constant keeps per-channel FIFO —
// the property the gate's channel-state argument needs.
constexpr Duration kReplayLatency = Duration::millis(1);

}  // namespace

ReplayDriver::ReplayDriver(ReplayLog log, const Topology& user_topology,
                           std::vector<ProcessPtr> users)
    : ReplayDriver(std::move(log), user_topology, std::move(users),
                   Options()) {}

ReplayDriver::ReplayDriver(ReplayLog log, const Topology& user_topology,
                           std::vector<ProcessPtr> users, Options options)
    : log_(std::move(log)), options_(std::move(options)) {
  num_users_ = log_.header.num_user_processes;

  HarnessConfig config;
  config.seed = log_.header.seed;
  config.debugger_fanout = log_.header.debugger_fanout;
  config.latency = std::make_unique<ConstantLatency>(kReplayLatency);
  config.shim_options = std::move(options_.shim_options);
  config.shim_options.replay_gate = true;
  config.shim_options.replay_record = nullptr;  // a replay never re-records
  harness_ = std::make_unique<SimDebugHarness>(user_topology,
                                               std::move(users),
                                               std::move(config));

  // Hand every shim the TimerIds the recorded substrate returned, indexed
  // by creation ordinal.  This must happen before the first event runs:
  // workloads create their first timers in on_start, which the simulator
  // has queued but not yet executed.
  std::vector<std::vector<TimerId>> scripts(num_users_);
  for (const ReplayRecord& record : log_.records) {
    if (record.kind == ReplayRecordKind::kTimerSet &&
        record.process < num_users_) {
      scripts[record.process].emplace_back(record.timer);
    }
  }
  for (std::uint32_t p = 0; p < num_users_; ++p) {
    harness_->shim(ProcessId(p)).replay_preload_timer_ids(
        std::move(scripts[p]));
  }
}

bool ReplayDriver::pump(const std::function<bool()>& condition) {
  if (condition()) return true;
  Simulation& sim = harness_->sim();
  return sim.run_until_condition(condition,
                                 sim.now() + options_.step_timeout);
}

bool ReplayDriver::replay_deliver(const ReplayRecord& record, Report& report) {
  Simulation& sim = harness_->sim();
  const ProcessId target(record.process);
  const ChannelId channel(record.channel);
  DebugShim& shim = harness_->shim(target);

  // The message this record releases was sent by an earlier record's
  // handler (log order respects causality), so it is either in the gate
  // already or in flight one constant latency away.
  if (!pump([&] { return shim.replay_gate_depth(channel) > 0; })) {
    std::ostringstream out;
    out << "deliver p" << record.process << " ch" << record.channel << " #"
        << record.ordinal << ": no message reached the gate";
    report.error = out.str();
    sim.metrics().on_replay_divergence();
    return false;
  }

  bool done = false;
  bool released = false;
  sim.post(target, [&](ProcessContext& ctx, Process&) {
    released = shim.replay_release(ctx, channel, record.ordinal, record.hash);
    done = true;
  });
  if (!pump([&] { return done; }) || !released) {
    std::ostringstream out;
    out << "deliver p" << record.process << " ch" << record.channel << " #"
        << record.ordinal << ": release did not run";
    report.error = out.str();
    sim.metrics().on_replay_divergence();
    return false;
  }
  ++report.deliveries;
  return true;
}

bool ReplayDriver::replay_timer_fire(const ReplayRecord& record,
                                     Report& report) {
  Simulation& sim = harness_->sim();
  const ProcessId target(record.process);
  DebugShim& shim = harness_->shim(target);

  bool done = false;
  bool fired = false;
  sim.post(target, [&](ProcessContext& ctx, Process&) {
    fired = shim.replay_fire_timer(ctx, record.ordinal);
    done = true;
  });
  if (!pump([&] { return done; })) {
    std::ostringstream out;
    out << "timer p" << record.process << " #" << record.ordinal
        << ": fire did not run";
    report.error = out.str();
    sim.metrics().on_replay_divergence();
    return false;
  }
  // A missing/cancelled timer was counted as a divergence by the shim;
  // keep replaying — later records may still be consumable.
  ++report.timer_fires;
  return true;
}

bool ReplayDriver::replay_halt_cut(const ReplayRecord& record, Report& report,
                                   std::uint64_t cut_index) {
  Simulation& sim = harness_->sim();
  DebuggerSession& session = harness_->session();

  // Every input the original run consumed before this cut has been
  // released; drive a fresh halt wave and the markers will freeze each
  // process at the same point in its input sequence, with the gate backlog
  // becoming the recorded channel state.
  session.halt();
  auto wave = session.wait_for_halt(options_.halt_timeout);
  if (!wave.has_value()) {
    std::ostringstream out;
    out << "cut #" << cut_index << " (recorded wave " << record.wave
        << "): replayed halt wave never completed";
    report.error = out.str();
    sim.metrics().on_replay_divergence();
    return false;
  }
  ++report.cuts;
  sim.metrics().on_replay_cut_replayed();

  auto recorded = GlobalState::decode_snapshots(HaltId(record.wave),
                                                record.state);
  if (!recorded.ok()) {
    std::ostringstream out;
    out << "cut #" << cut_index << ": recorded S_h undecodable: "
        << recorded.error().message();
    report.error = out.str();
    return false;
  }
  if (wave->state.equivalent(recorded.value())) {
    ++report.cuts_matched;
  } else {
    auto diff = wave->state.first_difference(recorded.value());
    std::ostringstream out;
    out << "cut #" << cut_index << ": "
        << (diff.has_value() ? *diff : std::string("states differ"));
    report.cut_diffs.push_back(out.str());
    sim.metrics().on_replay_divergence();
  }

  if (options_.stop_after_cut != 0 && cut_index == options_.stop_after_cut) {
    report.halted_at_cut = true;  // leave the system halted here
    return false;
  }
  session.resume(options_.halt_timeout);
  return true;
}

ReplayDriver::Report ReplayDriver::run() {
  Report report;
  DDBG_ASSERT(!ran_, "ReplayDriver::run called twice");
  ran_ = true;

  std::uint64_t cut_index = 0;
  for (const ReplayRecord& record : log_.records) {
    bool proceed = true;
    switch (record.kind) {
      case ReplayRecordKind::kDeliver:
        proceed = replay_deliver(record, report);
        break;
      case ReplayRecordKind::kTimerSet:
        ++report.timer_sets;  // consumed via the preloaded id script
        break;
      case ReplayRecordKind::kTimerFire:
        proceed = replay_timer_fire(record, report);
        break;
      case ReplayRecordKind::kHaltCut:
        proceed = replay_halt_cut(record, report, ++cut_index);
        break;
      case ReplayRecordKind::kAnnotation:
        ++report.annotations;  // provenance only; replay runs fault-free
        break;
    }
    if (!proceed) break;
  }

  // Let trailing sends settle into the gates (bounded: gated messages
  // never run user handlers, so no new work is generated) — unless we are
  // parked at a cut, where the frozen state is the point.
  if (!report.halted_at_cut && report.ok()) {
    harness_->sim().run_until_quiescent();
  }

  for (std::uint32_t p = 0; p < num_users_; ++p) {
    report.final_states.push_back(
        harness_->shim(ProcessId(p)).describe_state());
  }
  const auto snapshot = harness_->sim().metrics().snapshot();
  report.divergences = snapshot.replay.divergences;
  report.metrics_json = snapshot.to_json();
  return report;
}

std::string ReplayDriver::Report::describe() const {
  std::ostringstream out;
  out << "replayed: deliveries=" << deliveries << " timer_sets=" << timer_sets
      << " timer_fires=" << timer_fires << " cuts=" << cuts
      << " annotations=" << annotations << "\n";
  out << "cuts_matched=" << cuts_matched << "/" << cuts
      << " divergences=" << divergences << "\n";
  for (const std::string& diff : cut_diffs) out << "cut_diff: " << diff << "\n";
  if (halted_at_cut) out << "halted_at_cut\n";
  if (!error.empty()) out << "error: " << error << "\n";
  for (std::size_t p = 0; p < final_states.size(); ++p) {
    out << "p" << p << ": " << final_states[p] << "\n";
  }
  return out.str();
}

}  // namespace ddbg
